test/test_util.ml: Alcotest Array Gen Gpu_util List QCheck QCheck_alcotest String
