test/test_catt.ml: Alcotest Array Catt Gpu_util Gpusim List Minicuda Printf QCheck QCheck_alcotest
