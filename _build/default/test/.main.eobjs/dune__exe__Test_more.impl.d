test/test_more.ml: Alcotest Array Catt Experiments Float Gpusim List Minicuda Printf Workloads
