test/test_workloads.ml: Alcotest Array Experiments Gpusim List Minicuda Printf String Workloads
