test/test_properties.ml: Alcotest Array Catt Experiments Gpu_util Gpusim List Minicuda Printf QCheck QCheck_alcotest Workloads
