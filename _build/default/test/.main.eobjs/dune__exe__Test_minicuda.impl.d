test/test_minicuda.ml: Alcotest Float List Minicuda Printexc QCheck QCheck_alcotest
