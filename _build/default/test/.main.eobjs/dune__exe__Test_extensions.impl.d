test/test_extensions.ml: Alcotest Array Catt Experiments Gpu_util Gpusim List Minicuda Workloads
