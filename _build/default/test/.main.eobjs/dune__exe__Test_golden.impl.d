test/test_golden.ml: Alcotest Catt Experiments List Workloads
