test/test_experiments.ml: Alcotest Experiments Gpusim List Workloads
