test/main.mli:
