test/test_gpusim.ml: Alcotest Array Fmt Gen Gpusim List Minicuda Printf QCheck QCheck_alcotest
