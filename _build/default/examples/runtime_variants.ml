(** Runtime-unknown launch parameters (the paper's Section 4.3, last
    paragraph): when grid/block sizes are only decided at run time, CATT
    duplicates the kernel with different throttling factors and the host
    dispatches to the right copy.  This example builds the variant table
    for an ATAX-like kernel over several anticipated geometries, shows the
    emitted multi-kernel translation unit, and dispatches a few launches —
    including one geometry that was never anticipated.

    Run with: dune exec examples/runtime_variants.exe *)

let source =
  {|
#define NX 2048
#define NY 256
__global__ void gather_rows(float *A, float *x, float *out) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < NX) {
    for (int j = 0; j < NY; j++) {
      out[i] += A[i * NY + j] * x[j];
    }
  }
}
|}

let geo grid =
  { Catt.Analysis.grid_x = grid; grid_y = 1; block_x = 256; block_y = 1 }

let () =
  let cfg = Gpusim.Config.scaled ~num_sms:4 ~onchip_bytes:(32 * 1024) () in
  let kernel = Minicuda.Parser.parse_kernel source in
  let anticipated = [ 1; 2; 4; 8 ] in
  print_endline "=== kernel duplication for runtime-unknown launches ===\n";
  Printf.printf "anticipated grids: %s (x 256 threads)\n\n"
    (String.concat ", " (List.map string_of_int anticipated));
  match
    Catt.Variants.specialize cfg kernel
      ~geometries:(List.map geo anticipated)
  with
  | Error msg -> failwith msg
  | Ok table ->
    Printf.printf "%d geometry classes -> %d kernel copies:\n\n"
      (List.length anticipated)
      (List.length table.Catt.Variants.variants);
    List.iter
      (fun (v : Catt.Variants.variant) ->
        let grids =
          String.concat ", "
            (List.map
               (fun (g : Catt.Analysis.geometry) ->
                 string_of_int g.Catt.Analysis.grid_x)
               v.Catt.Variants.geometries)
        in
        let d = v.Catt.Variants.analysis in
        Printf.printf "  %-24s serves grids {%s}, TLP %s\n"
          v.Catt.Variants.kernel.Minicuda.Ast.kernel_name grids
          (let w, t = Catt.Driver.selected_tlp d ~loop_id:0 in
           Printf.sprintf "(%d,%d)" w t))
      table.Catt.Variants.variants;
    print_endline "\n--- emitted translation unit ---";
    print_endline (Minicuda.Pretty.program (Catt.Variants.program_of table));
    print_endline "--- host-side dispatch ---";
    List.iter
      (fun grid ->
        let v = Catt.Variants.select table (geo grid) in
        Printf.printf "launch grid %2d -> %s%s\n" grid
          v.Catt.Variants.kernel.Minicuda.Ast.kernel_name
          (if List.mem (geo grid) v.Catt.Variants.geometries then ""
           else "   (nearest-class fallback)"))
      [ 1; 4; 8; 6 ]
