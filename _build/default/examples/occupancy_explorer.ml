(** Occupancy explorer: how shared-memory and register usage bound
    concurrency (the paper's Eqs. 1-4), and which L1D/shared carveout CATT
    picks for each point.

    Run with: dune exec examples/occupancy_explorer.exe *)

let () =
  let cfg = Gpusim.Config.volta ~num_sms:4 () in
  Format.printf "%a@\n@\n" Gpusim.Config.pp cfg;

  print_endline "Eq. 1-3 limits for a 256-thread TB as shared usage grows:";
  let table =
    Gpu_util.Table.create
      [ "shared/TB"; "#TB_shm"; "#TB_reg"; "#TB_HW"; "#TB_SM (Eq.3)"; "carveout"; "L1D" ]
  in
  List.iter
    (fun shared_kb ->
      let shared_bytes = shared_kb * 1024 in
      match
        Catt.Occupancy.configure cfg ~tb_threads:256 ~num_regs:32 ~shared_bytes ()
      with
      | Error msg ->
        Gpu_util.Table.add_row table
          [ Printf.sprintf "%dKB" shared_kb; "-"; "-"; "-"; msg; "-"; "-" ]
      | Ok occ ->
        let limits =
          Gpusim.Cta_scheduler.limits cfg ~tb_threads:256 ~num_regs:32
            ~shared_bytes ~smem_carveout:occ.Catt.Occupancy.smem_carveout
        in
        let show n = if n > 1000 then "inf" else string_of_int n in
        Gpu_util.Table.add_row table
          [
            Printf.sprintf "%dKB" shared_kb;
            show limits.Gpusim.Cta_scheduler.by_shared;
            show limits.Gpusim.Cta_scheduler.by_registers;
            show limits.Gpusim.Cta_scheduler.by_warp_slots;
            string_of_int occ.Catt.Occupancy.tbs_per_sm;
            Printf.sprintf "%dKB" (occ.Catt.Occupancy.smem_carveout / 1024);
            Printf.sprintf "%dKB" (occ.Catt.Occupancy.l1d_bytes / 1024);
          ])
    [ 0; 2; 4; 8; 16; 24; 48; 96 ];
  Gpu_util.Table.print table;

  print_endline "\nregister pressure at 0 shared (Eq. 2 becomes binding):";
  let table2 = Gpu_util.Table.create [ "regs/thread"; "#TB_SM"; "warps/SM" ] in
  List.iter
    (fun regs ->
      match Catt.Occupancy.configure cfg ~tb_threads:256 ~num_regs:regs ~shared_bytes:0 () with
      | Error msg -> Gpu_util.Table.add_row table2 [ string_of_int regs; msg; "-" ]
      | Ok occ ->
        Gpu_util.Table.add_row table2
          [
            string_of_int regs;
            string_of_int occ.Catt.Occupancy.tbs_per_sm;
            string_of_int occ.Catt.Occupancy.concurrent_warps;
          ])
    [ 16; 32; 64; 128; 256 ];
  Gpu_util.Table.print table2;

  print_endline
    "\nTB-level throttling plans (paper Fig. 5): dummy shared bytes that cap\n\
     residency at a target, for a 256-thread TB with no static shared:";
  let table3 = Gpu_util.Table.create [ "target TBs"; "carveout"; "dummy bytes"; "L1D left" ] in
  List.iter
    (fun target ->
      match
        Catt.Transform.plan_tb_throttle cfg ~tb_threads:256 ~num_regs:32
          ~shared_bytes:0 ~target_tbs:target
      with
      | None -> Gpu_util.Table.add_row table3 [ string_of_int target; "-"; "infeasible"; "-" ]
      | Some (carveout, dummy) ->
        Gpu_util.Table.add_row table3
          [
            string_of_int target;
            Printf.sprintf "%dKB" (carveout / 1024);
            string_of_int dummy;
            Printf.sprintf "%dKB" ((cfg.Gpusim.Config.onchip_bytes - carveout) / 1024);
          ])
    [ 7; 6; 4; 3; 2; 1 ];
  Gpu_util.Table.print table3
