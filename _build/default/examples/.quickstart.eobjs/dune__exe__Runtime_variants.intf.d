examples/runtime_variants.mli:
