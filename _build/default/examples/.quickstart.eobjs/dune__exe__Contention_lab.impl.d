examples/contention_lab.ml: Array Catt Gpu_util Gpusim List Minicuda Printf
