examples/occupancy_explorer.ml: Catt Format Gpu_util Gpusim List Printf
