examples/quickstart.ml: Array Catt Gpu_util Gpusim Minicuda Printf
