examples/runtime_variants.ml: Catt Gpusim List Minicuda Printf String
