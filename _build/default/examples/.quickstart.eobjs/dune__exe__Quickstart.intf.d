examples/quickstart.mli:
