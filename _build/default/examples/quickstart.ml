(** Quickstart: the paper's running example (ATAX kernel 1, Figs. 1 & 4)
    end to end — parse, analyze, transform, and measure the effect on the
    simulated GPU.

    Run with: dune exec examples/quickstart.exe *)

let source =
  {|
#define NX 2048
#define NY 512
__global__ void atax_kernel1(float *A, float *x, float *tmp) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < NX) {
    for (int j = 0; j < NY; j++) {
      tmp[i] += A[i * NY + j] * x[j];
    }
  }
}
|}

let simulate cfg kernel ~label =
  let prog = Gpusim.Codegen.compile_kernel kernel in
  let dev = Gpusim.Gpu.create cfg in
  let nx = 2048 and ny = 512 in
  let rng = Gpu_util.Rng.create 7 in
  Gpusim.Gpu.upload dev "A" (Array.init (nx * ny) (fun _ -> Gpu_util.Rng.float rng 1.));
  Gpusim.Gpu.upload dev "x" (Array.init ny (fun _ -> Gpu_util.Rng.float rng 1.));
  Gpusim.Gpu.alloc dev "tmp" nx;
  let launch =
    Gpusim.Gpu.default_launch ~prog ~grid:(nx / 256, 1) ~block:(256, 1)
      [ Gpusim.Gpu.Arr "A"; Gpusim.Gpu.Arr "x"; Gpusim.Gpu.Arr "tmp" ]
  in
  let stats, _ = Gpusim.Gpu.launch dev launch in
  Printf.printf "%-12s %9d cycles, L1D hit rate %5.1f%%\n" label
    stats.Gpusim.Stats.cycles
    (Gpusim.Stats.l1_hit_rate stats *. 100.);
  stats.Gpusim.Stats.cycles

let () =
  print_endline "=== CATT quickstart: the paper's ATAX example ===\n";
  (* 1. parse *)
  let kernel = Minicuda.Parser.parse_kernel source in
  Printf.printf "parsed kernel %s\n\n" kernel.Minicuda.Ast.kernel_name;
  (* 2. analyze: Eqs. 1-9 *)
  let cfg = Gpusim.Config.scaled ~num_sms:4 ~onchip_bytes:(32 * 1024) () in
  let geo = { Catt.Analysis.grid_x = 8; grid_y = 1; block_x = 256; block_y = 1 } in
  let t =
    match Catt.Driver.analyze cfg kernel geo with
    | Ok t -> t
    | Error msg -> failwith msg
  in
  Catt.Report.print cfg t;
  (* 3. the transformed source (paper Fig. 4) *)
  print_endline "\n--- throttled source ---";
  print_endline (Minicuda.Pretty.kernel t.Catt.Driver.transformed);
  (* 4. measure *)
  print_endline "\n--- simulation ---";
  let before = simulate cfg kernel ~label:"baseline" in
  let after = simulate cfg t.Catt.Driver.transformed ~label:"CATT" in
  Printf.printf "\nspeedup: %.2fx\n" (float_of_int before /. float_of_int after)
