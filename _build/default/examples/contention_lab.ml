(** Contention lab: build kernels with a configurable inter-thread stride
    (the paper's C_tid of Eq. 5) and watch coalescing, the footprint
    estimate, CATT's decision, and the measured effect all change together.

    Run with: dune exec examples/contention_lab.exe *)

let kernel_with_stride stride =
  Printf.sprintf
    {|
#define N 2048
#define SPAN 256
__global__ void stride_kernel(float *data, float *out) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < N) {
    float acc = 0.0;
    for (int j = 0; j < SPAN; j++) {
      acc += data[i * %d + j];
    }
    out[i] = acc;
  }
}
|}
    stride

let measure cfg (kernel : Minicuda.Ast.kernel) stride =
  let prog = Gpusim.Codegen.compile_kernel kernel in
  let dev = Gpusim.Gpu.create cfg in
  let n = 2048 and span = 256 in
  let len = ((n - 1) * stride) + span in
  Gpusim.Gpu.upload dev "data" (Array.init len (fun i -> float_of_int (i land 7)));
  Gpusim.Gpu.alloc dev "out" n;
  let launch =
    Gpusim.Gpu.default_launch ~prog ~grid:(n / 256, 1) ~block:(256, 1)
      [ Gpusim.Gpu.Arr "data"; Gpusim.Gpu.Arr "out" ]
  in
  let stats, _ = Gpusim.Gpu.launch dev launch in
  stats

let () =
  let cfg = Gpusim.Config.scaled ~num_sms:4 ~onchip_bytes:(32 * 1024) () in
  let geo = { Catt.Analysis.grid_x = 8; grid_y = 1; block_x = 256; block_y = 1 } in
  print_endline
    "Sweeping the inter-thread stride (Eq. 5's C_tid) of data[i*stride + j]:\n";
  let table =
    Gpu_util.Table.create
      [
        "C_tid"; "REQ/warp (Eq.7)"; "CATT decision"; "base cycles"; "CATT cycles";
        "speedup"; "base hit"; "CATT hit";
      ]
  in
  List.iter
    (fun stride ->
      let kernel = Minicuda.Parser.parse_kernel (kernel_with_stride stride) in
      let t =
        match Catt.Driver.analyze cfg kernel geo with
        | Ok t -> t
        | Error msg -> failwith msg
      in
      let loop = List.hd t.Catt.Driver.loops in
      let req =
        (List.hd loop.Catt.Driver.footprint.Catt.Footprint.summaries)
          .Catt.Footprint.req_warp
      in
      let d = loop.Catt.Driver.decision in
      let decision =
        if not d.Catt.Throttle.resolved then "unresolvable"
        else if not d.Catt.Throttle.throttled then "keep TLP"
        else
          Printf.sprintf "N=%d,M=%d -> (%d,%d)" d.Catt.Throttle.n
            d.Catt.Throttle.m d.Catt.Throttle.active_warps_per_tb
            d.Catt.Throttle.active_tbs
      in
      let base = measure cfg kernel stride in
      let catt = measure cfg t.Catt.Driver.transformed stride in
      Gpu_util.Table.add_row table
        [
          string_of_int stride;
          string_of_int req;
          decision;
          string_of_int base.Gpusim.Stats.cycles;
          string_of_int catt.Gpusim.Stats.cycles;
          Printf.sprintf "%.2fx"
            (float_of_int base.Gpusim.Stats.cycles
            /. float_of_int catt.Gpusim.Stats.cycles);
          Gpu_util.Table.cell_pct (Gpusim.Stats.l1_hit_rate base);
          Gpu_util.Table.cell_pct (Gpusim.Stats.l1_hit_rate catt);
        ])
    [ 1; 4; 8; 16; 32; 64; 256 ];
  Gpu_util.Table.print table;
  print_endline
    "\nC_tid <= 1: perfectly coalesced, CATT keeps full TLP.\n\
     C_tid >= 32: one line per lane per instruction; the footprint blows\n\
     past the L1D and CATT throttles, recovering the intra-thread reuse."
