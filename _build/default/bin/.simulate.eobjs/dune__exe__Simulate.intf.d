bin/simulate.mli:
