bin/simulate.ml: Arg Cmd Cmdliner Experiments Format Gpusim List Printf String Term Workloads
