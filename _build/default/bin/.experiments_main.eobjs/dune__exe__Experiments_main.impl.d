bin/experiments_main.ml: Array Experiments List Printf String Sys
