(** [simulate] — run one benchmark application on the simulator under a
    chosen scheme and print per-kernel counters.

    Usage: simulate WORKLOAD [--scheme baseline|catt|NxM] [--onchip KB] [--list] *)

open Cmdliner

let parse_scheme s =
  match String.lowercase_ascii s with
  | "baseline" -> Experiments.Runner.Baseline
  | "catt" -> Experiments.Runner.Catt
  | other -> (
    match String.split_on_char 'x' other with
    | [ n; m ] -> Experiments.Runner.Fixed (int_of_string n, int_of_string m)
    | _ -> invalid_arg "scheme must be baseline, catt, or NxM (e.g. 4x1)")

let print_sweep cfg w =
  Printf.printf "throttling-factor sweep for %s (N = warp split, M = TB cut):\n"
    w.Workloads.Workload.name;
  let sweep = Experiments.Runner.sweep cfg w in
  let base =
    match sweep with ((1, 0), r) :: _ -> r.Experiments.Runner.total_cycles | _ -> 1
  in
  List.iter
    (fun ((n, m), (r : Experiments.Runner.app_run)) ->
      Printf.printf "  N=%2d M=%2d  %10d cycles  %.2fx\n" n m
        r.Experiments.Runner.total_cycles
        (float_of_int r.Experiments.Runner.total_cycles /. float_of_int base))
    sweep;
  let k, swl = Experiments.Runner.best_swl cfg w in
  Printf.printf "  best-SWL (k=%d warps): %d cycles\n" k
    swl.Experiments.Runner.total_cycles;
  let catt = Experiments.Runner.run cfg w Experiments.Runner.Catt in
  Printf.printf "  CATT:                  %d cycles\n" catt.Experiments.Runner.total_cycles

let run name scheme onchip list_only sweep =
  if list_only then
    List.iter print_endline (Workloads.Registry.names `All)
  else if sweep then
    let cfg =
      Gpusim.Config.scaled ~num_sms:Experiments.Configs.num_sms
        ~onchip_bytes:(onchip * 1024) ()
    in
    print_sweep cfg (Workloads.Registry.find name)
  else begin
    let cfg =
      Gpusim.Config.scaled ~num_sms:Experiments.Configs.num_sms
        ~onchip_bytes:(onchip * 1024) ()
    in
    let w = Workloads.Registry.find name in
    let scheme = parse_scheme scheme in
    let r = Experiments.Runner.run cfg w scheme in
    Printf.printf "%s under %s: %d cycles total\n" w.Workloads.Workload.name
      (Experiments.Runner.scheme_label scheme)
      r.Experiments.Runner.total_cycles;
    List.iter
      (fun (ks : Experiments.Runner.kernel_stats) ->
        Printf.printf "  %-20s TLP (%2d,%2d)  %s\n" ks.kernel_name
          (fst ks.Experiments.Runner.tlp) (snd ks.Experiments.Runner.tlp)
          (Format.asprintf "%a" Gpusim.Stats.pp ks.Experiments.Runner.stats))
      r.Experiments.Runner.kernels;
    match r.Experiments.Runner.verified with
    | Ok () -> print_endline "verification: OK"
    | Error msg ->
      Printf.printf "verification: FAILED (%s)\n" msg;
      exit 1
  end

let () =
  let name_arg =
    Arg.(value & pos 0 string "ATAX" & info [] ~docv:"WORKLOAD" ~doc:"benchmark name")
  in
  let scheme =
    Arg.(value & opt string "baseline" & info [ "scheme" ] ~docv:"S" ~doc:"baseline, catt, or NxM")
  in
  let onchip =
    Arg.(value & opt int 32 & info [ "onchip" ] ~docv:"KB" ~doc:"on-chip memory per SM, KB")
  in
  let list_only = Arg.(value & flag & info [ "list" ] ~doc:"list workloads and exit") in
  let sweep =
    Arg.(value & flag & info [ "sweep" ] ~doc:"print the full throttling-factor sweep (Fig. 9 axis) plus best-SWL and CATT")
  in
  let cmd =
    Cmd.v (Cmd.info "simulate" ~doc:"run a workload on the GPU simulator")
      Term.(const run $ name_arg $ scheme $ onchip $ list_only $ sweep)
  in
  exit (Cmd.eval cmd)
