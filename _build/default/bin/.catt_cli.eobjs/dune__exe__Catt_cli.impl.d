bin/catt_cli.ml: Arg Catt Cmd Cmdliner Gpusim List Minicuda Printf String Term
