bin/catt_cli.mli:
