(** [catt] — the compiler CLI: analyze a mini-CUDA kernel and emit the
    throttled source, mirroring how the paper's tool wraps its ANTLR pass.

    Usage:
      catt_cli analyze  FILE --grid GX[,GY] --block BX[,BY] [--onchip KB]
      catt_cli transform FILE --grid … --block …   (prints transformed source)
      catt_cli disasm   FILE                       (SASS-lite dump)
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

let parse_pair s =
  match String.split_on_char ',' s with
  | [ x ] -> (int_of_string x, 1)
  | [ x; y ] -> (int_of_string x, int_of_string y)
  | _ -> invalid_arg "expected N or N,M"

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"mini-CUDA source file")

let grid_arg =
  Arg.(value & opt string "4,1" & info [ "grid" ] ~docv:"GX[,GY]" ~doc:"grid dimensions")

let block_arg =
  Arg.(value & opt string "256,1" & info [ "block" ] ~docv:"BX[,BY]" ~doc:"thread-block dimensions")

let onchip_arg =
  Arg.(value & opt int 32 & info [ "onchip" ] ~docv:"KB" ~doc:"on-chip memory (L1D+shared) per SM, KB")

let sms_arg =
  Arg.(value & opt int 4 & info [ "sms" ] ~docv:"N" ~doc:"number of SMs")

let config ~onchip_kb ~sms =
  Gpusim.Config.scaled ~num_sms:sms ~onchip_bytes:(onchip_kb * 1024) ()

let with_kernels path f =
  let program = Minicuda.Parser.parse_program (read_file path) in
  List.iter f program.Minicuda.Ast.kernels

let analyses path grid block onchip sms =
  let gx, gy = parse_pair grid and bx, by = parse_pair block in
  let geo = { Catt.Analysis.grid_x = gx; grid_y = gy; block_x = bx; block_y = by } in
  let cfg = config ~onchip_kb:onchip ~sms in
  let results = ref [] in
  with_kernels path (fun kernel ->
      match Catt.Driver.analyze cfg kernel geo with
      | Ok t -> results := (kernel, t) :: !results
      | Error msg ->
        Printf.eprintf "%s: %s\n" kernel.Minicuda.Ast.kernel_name msg);
  (cfg, List.rev !results)

let analyze_cmd =
  let run path grid block onchip sms =
    let cfg, results = analyses path grid block onchip sms in
    List.iter (fun (_, t) -> Catt.Report.print cfg t) results
  in
  Cmd.v (Cmd.info "analyze" ~doc:"print the per-loop contention analysis")
    Term.(const run $ file_arg $ grid_arg $ block_arg $ onchip_arg $ sms_arg)

let transform_cmd =
  let run path grid block onchip sms =
    let _, results = analyses path grid block onchip sms in
    List.iter
      (fun (_, (t : Catt.Driver.t)) ->
        print_endline (Minicuda.Pretty.kernel t.Catt.Driver.transformed);
        print_newline ())
      results
  in
  Cmd.v (Cmd.info "transform" ~doc:"print the throttled source")
    Term.(const run $ file_arg $ grid_arg $ block_arg $ onchip_arg $ sms_arg)

let disasm_cmd =
  let file0 =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"source file")
  in
  let run path =
    with_kernels path (fun kernel ->
        print_string (Gpusim.Bytecode.disassemble (Gpusim.Codegen.compile_kernel kernel)))
  in
  Cmd.v (Cmd.info "disasm" ~doc:"dump SASS-lite bytecode") Term.(const run $ file0)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "catt_cli" ~doc:"compiler-assisted GPU thread throttling" in
  exit (Cmd.eval (Cmd.group ~default info [ analyze_cmd; transform_cmd; disasm_cmd ]))
