(** [experiments] — regenerate any of the paper's tables and figures.

    Usage: experiments [ARTIFACT…]   (default: all)
    Artifacts: table3 fig2 fig3 fig6 fig7 fig8 fig9 fig10 overhead *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let targets =
    match args with
    | [] | [ "all" ] -> Experiments.Report.artifacts
    | ids ->
      List.map
        (fun id ->
          match Experiments.Report.find id with
          | Some a -> a
          | None ->
            Printf.eprintf "unknown artifact %s (known: %s)\n" id
              (String.concat " " Experiments.Report.ids);
            exit 2)
        ids
  in
  List.iter
    (fun (a : Experiments.Report.artifact) ->
      Printf.printf "==== %s ====\n\n%s\n\n%!" a.title (a.render ()))
    targets
