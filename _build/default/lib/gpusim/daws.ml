(** Divergence-aware warp scheduling (Rogers et al., MICRO-46) — the
    {e proactive} dynamic baseline of the paper's Section 2.2, simplified.

    Where CCWS reacts to lost locality, DAWS predicts: each loop's memory
    divergence is profiled from the warps running it (EWMA of cache lines
    per off-chip instruction), giving a per-warp footprint prediction
    [ewma * mem_instrs].  The loop then admits at most
    [target = max 1 (l1_lines / prediction)] warps: newcomers wait at the
    loop entry, and — because the profile is only learned {e after} the
    first iterations — warps already inside are re-checked at every back
    edge and stall there when their age-rank exceeds the target
    (the descheduling side of DAWS).  The oldest warp inside always runs,
    so progress is guaranteed and the simulation stays deterministic. *)

type loop_state = {
  mem_instrs : int;
  mutable total_requests : int;
  mutable samples : int;
  mutable inside : int list;  (* warp ages, ascending = admission rank *)
}

type t = {
  l1_lines : int;
  loops : (int, loop_state) Hashtbl.t;  (* loop begin_pc -> state *)
  mutable blocks : int;  (* stat: denied entries / back-edge stalls *)
}

let create ~l1_lines ~extents =
  let loops = Hashtbl.create 16 in
  List.iter
    (fun (begin_pc, _end_pc, mem_instrs) ->
      Hashtbl.replace loops begin_pc
        { mem_instrs; total_requests = 0; samples = 0; inside = [] })
    extents;
  { l1_lines; loops; blocks = 0 }

let state t loop_pc = Hashtbl.find_opt t.loops loop_pc

(* cumulative mean rather than an EWMA: under GTO the warps phase-lock at
   the long-latency divergent load, so an instantaneous average is always
   sampled in the coalesced phase at back edges and never sees the
   divergence *)
let lines_per_instr s =
  if s.samples = 0 then 1.
  else float_of_int s.total_requests /. float_of_int s.samples

let prediction_per_warp s =
  max 1. (lines_per_instr s *. float_of_int (max 1 s.mem_instrs))

let prediction_per_warp_lines t ~loop_pc =
  match state t loop_pc with None -> 0. | Some s -> prediction_per_warp s

let target t s = max 1 (int_of_float (float_of_int t.l1_lines /. prediction_per_warp s))

(** Admission at the loop entry.  [true] registers the warp inside. *)
let try_enter t ~loop_pc ~age =
  match state t loop_pc with
  | None -> true  (* not a profiled loop (no off-chip accesses) *)
  | Some s ->
    if List.mem age s.inside then true  (* re-entry of an outer iteration *)
    else if List.length s.inside < target t s then begin
      s.inside <- List.sort compare (age :: s.inside);
      true
    end
    else begin
      t.blocks <- t.blocks + 1;
      false
    end

(** Back-edge check: may the registered warp start another iteration?
    The oldest warp inside always may. *)
let may_continue t ~loop_pc ~age =
  match state t loop_pc with
  | None -> true
  | Some s ->
    let rec rank i = function
      | [] -> 0  (* unregistered (shouldn't happen): allow *)
      | a :: rest -> if a = age then i else rank (i + 1) rest
    in
    let ok = rank 0 s.inside < target t s in
    if not ok then t.blocks <- t.blocks + 1;
    ok

let on_loop_exit t ~loop_pc ~age =
  match state t loop_pc with
  | None -> ()
  | Some s -> s.inside <- List.filter (fun a -> a <> age) s.inside

(** Sample an executed off-chip instruction inside the loop at [loop_pc]:
    it produced [requests] lines after coalescing. *)
let on_mem_instr t ~loop_pc ~requests =
  match state t loop_pc with
  | None -> ()
  | Some s ->
    s.samples <- s.samples + 1;
    s.total_requests <- s.total_requests + requests

let blocks t = t.blocks


