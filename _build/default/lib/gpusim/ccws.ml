(** Cache-conscious wavefront scheduling (Rogers et al., MICRO-45), the
    dynamic warp-granular baseline the paper compares against in
    Section 2.2 — simplified to what the comparison needs.

    Each warp owns a small direct-mapped victim tag array (VTA) of line
    tags it recently missed on.  A warp re-missing a line still present in
    its VTA has {e lost intra-warp locality} (the line was evicted between
    its own uses), so its lost-locality score (LLS) jumps; scores decay
    back toward the base over time.  At schedule time, warps are stacked
    by descending score under a fixed cutoff of
    [base_score * max_warps]: warps whose cumulative height exceeds the
    cutoff are de-scheduled.  High-score warps keep priority — CCWS's key
    inversion: the thrashing warp is allowed to finish its reuse while the
    TLP around it shrinks. *)

type warp_state = {
  mutable score : float;
  vta : int array;  (* direct-mapped, -1 = empty *)
}

type t = {
  vta_entries : int;
  base_score : float;
  gain : float;  (** score added on a detected locality loss *)
  decay : float;  (** multiplicative per-update pull toward base *)
  cutoff : float;
  warps : (int, warp_state) Hashtbl.t;  (* keyed by warp age *)
}

let create ?(vta_entries = 16) ?(gain = 32.) ?(decay = 0.999) ~max_warps () =
  if max_warps <= 0 then invalid_arg "Ccws.create: max_warps must be positive";
  let base_score = 1. in
  {
    vta_entries;
    base_score;
    gain;
    decay;
    cutoff = base_score *. float_of_int max_warps;
    warps = Hashtbl.create 64;
  }

let state t warp_id =
  match Hashtbl.find_opt t.warps warp_id with
  | Some s -> s
  | None ->
    let s = { score = t.base_score; vta = Array.make t.vta_entries (-1) } in
    Hashtbl.replace t.warps warp_id s;
    s

(** Report an L1D miss by [warp_id] on [line].  Returns [true] when the
    miss was a detected locality loss (useful for stats/tests). *)
let on_miss t ~warp_id ~line =
  let s = state t warp_id in
  let slot = (line mod t.vta_entries + t.vta_entries) mod t.vta_entries in
  let lost = s.vta.(slot) = line in
  if lost then s.score <- s.score +. t.gain;
  s.vta.(slot) <- line;
  lost

(** Decay every score toward the base; call once per scheduling step. *)
let tick t =
  Hashtbl.iter
    (fun _ s ->
      if s.score > t.base_score then
        s.score <- max t.base_score (s.score *. t.decay))
    t.warps

let score t ~warp_id = (state t warp_id).score

(** The subset of [warp_ids] the scheduler may consider: stack warps by
    descending score and admit while the cumulative score fits the cutoff.
    The highest-score warp is always admitted. *)
let allowed t warp_ids =
  let scored = List.map (fun id -> (id, (state t id).score)) warp_ids in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) scored in
  let rec admit acc height = function
    | [] -> acc
    | (id, s) :: rest ->
      if acc = [] || height +. s <= t.cutoff then
        admit (id :: acc) (height +. s) rest
      else acc
  in
  admit [] 0. sorted

let retire t ~warp_id = Hashtbl.remove t.warps warp_id
