(** DYNCTA-style run-time thread-block throttling (Kayiran et al.,
    PACT 2013) — the coarse dynamic baseline the paper's Section 2.2
    compares against.

    An epoch-based hill climber on per-SM IPC: each epoch the TB cap moves
    one step in the current direction and reverses when IPC drops.  The
    monitoring lag and coarse granularity are exactly the weaknesses the
    paper's compile-time scheme avoids; the ablation benches measure the
    difference. *)

type t

val create : ?epoch_cycles:int -> init_cap:int -> unit -> t
(** [epoch_cycles] defaults to 2000.  The cap never drops below 1. *)

val cap : t -> int
(** Current number of TBs the scheduler may draw warps from. *)

val on_issue : t -> unit
(** Count one issued instruction toward the epoch's IPC. *)

val on_cycle : t -> now:int -> max_cap:int -> unit
(** Advance the controller's clock; on epoch edges, compare IPC with the
    previous epoch and move/reverse the cap within [1, max_cap]. *)
