(** Dynamic off-chip access trace — the data series of the paper's Fig. 2.

    When enabled, every global-memory instruction executed on one chosen SM
    records its post-coalescing request count, in dynamic program order. *)

type entry = { pc : int; requests : int; cycle : int }

type t

val disabled : t
(** Records nothing; zero-cost. *)

val create : ?sm:int -> unit -> t
(** [create ~sm ()] records events from SM [sm] (default 0). *)

val record : t -> sm:int -> pc:int -> requests:int -> cycle:int -> unit

val length : t -> int

val to_array : t -> entry array

val request_series : t -> float array
(** Just the request counts, as floats, ready for plotting. *)
