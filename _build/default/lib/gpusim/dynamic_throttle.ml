(** Run-time thread throttling — the class of schemes the paper argues
    against (CCWS/DYNCTA, Section 2.2): a hardware monitor adjusts the
    number of schedulable warps per SM by feedback, paying detection lag
    and coarse decisions where CATT decides statically per loop.

    This is an epoch-based hill climber on per-SM IPC, in the spirit of
    DYNCTA's "neither more nor less" controller: each epoch it moves the
    warp cap in the current direction and reverses when IPC drops.  It is
    used by the ablation benches to reproduce the paper's static-vs-dynamic
    comparison. *)

type t = {
  epoch_cycles : int;
  min_cap : int;
  mutable cap : int;
  mutable direction : int;  (* +1 growing, -1 shrinking *)
  mutable epoch_start : int;
  mutable instrs_this_epoch : int;
  mutable last_ipc : float;
}

let create ?(epoch_cycles = 2000) ~init_cap () =
  {
    epoch_cycles;
    min_cap = 1;
    cap = init_cap;
    direction = -1;  (* first probe: try throttling down *)
    epoch_start = 0;
    instrs_this_epoch = 0;
    last_ipc = -1.;
  }

let cap t = t.cap

let on_issue t = t.instrs_this_epoch <- t.instrs_this_epoch + 1

(* called once per SM scheduling step; adjusts the cap on epoch edges *)
let on_cycle t ~now ~max_cap =
  if now - t.epoch_start >= t.epoch_cycles then begin
    let elapsed = max 1 (now - t.epoch_start) in
    let ipc = float_of_int t.instrs_this_epoch /. float_of_int elapsed in
    if t.last_ipc >= 0. && ipc < t.last_ipc then
      (* the last move hurt: go back the other way *)
      t.direction <- -t.direction;
    let proposed =
      if t.direction > 0 then min max_cap (t.cap + 1) else max t.min_cap (t.cap - 1)
    in
    t.cap <- proposed;
    t.last_ipc <- ipc;
    t.epoch_start <- now;
    t.instrs_this_epoch <- 0
  end
