(** Lowering from mini-CUDA ASTs to SASS-lite bytecode.

    The generator performs a light type inference (mirroring
    {!Minicuda.Typecheck}) to pick integer vs. float ALU variants — integer
    division must truncate because throttled kernels compute warp ids as
    [threadIdx.x / WARP_SIZE] — and uses a stack-discipline temporary
    allocator so the reported per-thread register count stays realistic
    (it feeds the paper's Eq. 2 occupancy bound). *)

exception Unsupported of string

val compile_kernel : Minicuda.Ast.kernel -> Bytecode.program
(** Typechecks and lowers one kernel.  Raises {!Minicuda.Typecheck.Type_error}
    on ill-typed input and {!Unsupported} on constructs outside the ISA. *)

val compile_program : Minicuda.Ast.program -> Bytecode.program list
