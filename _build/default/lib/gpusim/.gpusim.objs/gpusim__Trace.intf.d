lib/gpusim/trace.mli:
