lib/gpusim/cache.mli:
