lib/gpusim/codegen.ml: Array Bytecode List Minicuda Printf Seq
