lib/gpusim/cta_scheduler.ml: Config
