lib/gpusim/ccws.mli:
