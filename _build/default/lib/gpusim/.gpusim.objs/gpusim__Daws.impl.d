lib/gpusim/daws.ml: Hashtbl List
