lib/gpusim/sm.ml: Array Bytecode Cache Ccws Coalescer Config Daws Dynamic_throttle List Minicuda Printf Stats Trace
