lib/gpusim/ccws.ml: Array Hashtbl List
