lib/gpusim/stats.mli: Format
