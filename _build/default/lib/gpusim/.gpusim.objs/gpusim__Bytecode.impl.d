lib/gpusim/bytecode.ml: Array Buffer List Printf String
