lib/gpusim/gpu.ml: Array Bytecode Cache Ccws Config Cta_scheduler Daws Dynamic_throttle Hashtbl List Printf Sm Stats Trace
