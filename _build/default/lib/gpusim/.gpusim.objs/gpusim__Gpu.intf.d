lib/gpusim/gpu.mli: Bytecode Config Sm Stats Trace
