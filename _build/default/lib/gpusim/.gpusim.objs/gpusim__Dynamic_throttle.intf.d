lib/gpusim/dynamic_throttle.mli:
