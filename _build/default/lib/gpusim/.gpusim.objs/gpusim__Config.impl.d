lib/gpusim/config.ml: Format List
