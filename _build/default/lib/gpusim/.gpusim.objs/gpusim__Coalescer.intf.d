lib/gpusim/coalescer.mli:
