lib/gpusim/coalescer.ml: Array List
