lib/gpusim/dynamic_throttle.ml:
