lib/gpusim/codegen.mli: Bytecode Minicuda
