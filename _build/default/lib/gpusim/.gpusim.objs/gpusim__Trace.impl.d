lib/gpusim/trace.ml: Array
