lib/gpusim/daws.mli:
