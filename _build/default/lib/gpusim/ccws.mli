(** Cache-conscious wavefront scheduling (Rogers et al., MICRO-45) — the
    warp-granular dynamic baseline of the paper's Section 2.2, simplified.

    Per-warp victim tag arrays detect lost intra-warp locality (a warp
    re-missing a line it recently missed on); warps accumulate a
    lost-locality score that decays over time; at schedule time warps are
    stacked by descending score under a cutoff of [base * max_warps], and
    the ones that do not fit are de-scheduled.  The thrashing warp keeps
    priority — CCWS's key inversion: it gets to finish its reuse while the
    TLP around it shrinks. *)

type t

val create :
  ?vta_entries:int -> ?gain:float -> ?decay:float -> max_warps:int -> unit -> t
(** Defaults: 16 VTA entries per warp, gain 32, decay 0.999/step. *)

val on_miss : t -> warp_id:int -> line:int -> bool
(** Report an L1D miss.  [true] when it was a detected locality loss. *)

val tick : t -> unit
(** Decay all scores one step toward the base; call once per SM cycle. *)

val score : t -> warp_id:int -> float

val allowed : t -> int list -> int list
(** The subset of the given warp ids the scheduler may consider.  Never
    empty when the input is non-empty. *)

val retire : t -> warp_id:int -> unit
(** Forget a warp's state (its TB completed). *)
