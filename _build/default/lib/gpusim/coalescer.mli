(** Memory-request coalescing.

    A warp's memory instruction produces one byte address per active lane;
    the coalescer reduces them to the set of distinct cache lines, which is
    the unit of L1D traffic.  The per-warp request count it produces is
    exactly the quantity the paper's Eq. 7 estimates statically — perfectly
    coalesced accesses give 1 line, fully divergent ones give up to
    [warp_size] lines. *)

val lines : line_bytes:int -> addrs:int array -> mask:int -> int list
(** [lines ~line_bytes ~addrs ~mask] returns the distinct line indices
    touched by lanes whose bit is set in [mask], in first-touch order.
    [addrs.(lane)] is a byte address and is ignored for inactive lanes. *)

val count : line_bytes:int -> addrs:int array -> mask:int -> int
(** [List.length (lines …)] without building the list. *)
