(** Dynamic off-chip access trace.

    Records, in dynamic program order, the post-coalescing request count of
    every global-memory instruction executed on a chosen SM — the data
    series plotted in the paper's Fig. 2 (memory requests per off-chip
    instruction over time). *)

type entry = { pc : int; requests : int; cycle : int }

type t = {
  mutable entries : entry array;
  mutable len : int;
  enabled : bool;
  sm_filter : int;  (** only record events from this SM *)
}

let disabled = { entries = [||]; len = 0; enabled = false; sm_filter = -1 }

let create ?(sm = 0) () =
  { entries = Array.make 1024 { pc = 0; requests = 0; cycle = 0 }; len = 0; enabled = true; sm_filter = sm }

let record t ~sm ~pc ~requests ~cycle =
  if t.enabled && sm = t.sm_filter then begin
    if t.len = Array.length t.entries then begin
      let bigger =
        Array.make (2 * Array.length t.entries) { pc = 0; requests = 0; cycle = 0 }
      in
      Array.blit t.entries 0 bigger 0 t.len;
      t.entries <- bigger
    end;
    t.entries.(t.len) <- { pc; requests; cycle };
    t.len <- t.len + 1
  end

let length t = t.len

let to_array t = Array.sub t.entries 0 t.len

let request_series t =
  Array.map (fun e -> float_of_int e.requests) (to_array t)
