(* Warps are at most 32 lanes, so a small association list beats hashing. *)

let lines ~line_bytes ~addrs ~mask =
  let acc = ref [] in
  let n = Array.length addrs in
  for lane = 0 to n - 1 do
    if mask land (1 lsl lane) <> 0 then begin
      let line = addrs.(lane) / line_bytes in
      if not (List.mem line !acc) then acc := line :: !acc
    end
  done;
  List.rev !acc

let count ~line_bytes ~addrs ~mask =
  List.length (lines ~line_bytes ~addrs ~mask)
