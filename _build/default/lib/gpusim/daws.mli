(** Divergence-aware warp scheduling (Rogers et al., MICRO-46) — the
    proactive dynamic baseline of the paper's Section 2.2, simplified.

    Per static loop, the observed cache lines per off-chip instruction
    (cumulative mean over all warps) predicts a per-warp footprint
    [mean * mem_instrs]; the loop admits at most
    [max 1 (l1_lines / prediction)] warps.  Newcomers wait at the loop
    entry; warps already inside are re-checked at every back edge and the
    youngest stall when the learned divergence shrinks the target — the
    descheduling side of DAWS.  The oldest warp inside always proceeds, so
    progress is guaranteed. *)

type t

val create : l1_lines:int -> extents:(int * int * int) list -> t
(** [extents] is {!Bytecode.loop_extents}: (begin pc, end pc, off-chip
    instruction count) per loop. *)

val try_enter : t -> loop_pc:int -> age:int -> bool
(** Admission at the loop entry; [true] registers the warp inside (idempotent
    for re-entries).  Always true for unprofiled loops. *)

val may_continue : t -> loop_pc:int -> age:int -> bool
(** Back-edge check for a registered warp; the oldest inside always may. *)

val on_loop_exit : t -> loop_pc:int -> age:int -> unit

val on_mem_instr : t -> loop_pc:int -> requests:int -> unit
(** Sample an executed off-chip instruction's post-coalescing line count. *)

val prediction_per_warp_lines : t -> loop_pc:int -> float
(** Current per-warp footprint prediction for a loop (testing). *)

val blocks : t -> int
(** Denied entries plus back-edge stalls so far (testing/stats). *)
