type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* splitmix64: passes BigCrush, one multiply-xor-shift chain per draw. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* keep 62 bits so the OCaml int is guaranteed non-negative *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, same construction as Random.float *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  arr
