type align = Left | Right | Center

type line = Row of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  arity : int;
  mutable lines : line list; (* reversed *)
}

let default_aligns n =
  List.init n (fun i -> if i = 0 then Left else Right)

let create ?aligns headers =
  let arity = List.length headers in
  if arity = 0 then invalid_arg "Table.create: no columns";
  let aligns =
    match aligns with
    | None -> default_aligns arity
    | Some a ->
      if List.length a <> arity then
        invalid_arg "Table.create: aligns arity mismatch";
      a
  in
  { headers; aligns; arity; lines = [] }

let add_row t row =
  if List.length row <> t.arity then
    invalid_arg "Table.add_row: arity mismatch";
  t.lines <- Row row :: t.lines

let add_separator t = t.lines <- Separator :: t.lines

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else
    let missing = width - len in
    match align with
    | Left -> s ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ s
    | Center ->
      let left = missing / 2 in
      String.make left ' ' ^ s ^ String.make (missing - left) ' '

let render t =
  let rows = List.rev t.lines in
  let widths = Array.of_list (List.map String.length t.headers) in
  let update_widths = function
    | Separator -> ()
    | Row cells ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        cells
  in
  List.iter update_widths rows;
  let aligns = Array.of_list t.aligns in
  let render_cells cells =
    let padded = List.mapi (fun i c -> pad aligns.(i) widths.(i) c) cells in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    let dashes = Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths) in
    "|" ^ String.concat "+" dashes ^ "|"
  in
  let body =
    List.map
      (function Row cells -> render_cells cells | Separator -> rule)
      rows
  in
  String.concat "\n" (render_cells t.headers :: rule :: body)

let print t =
  print_string (render t);
  print_newline ()

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_pct ?(decimals = 2) x = Printf.sprintf "%.*f%%" decimals (x *. 100.)
