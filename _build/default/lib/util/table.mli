(** Plain-text table rendering for experiment reports.

    The experiment harness prints every reproduced table and figure as an
    aligned ASCII table; this module owns the layout logic so that all
    reports share one look. *)

type align = Left | Right | Center

type t
(** A table under construction. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table.  [aligns] defaults to [Left] for the
    first column and [Right] for the rest, the usual layout for a label
    column followed by numeric columns.  If provided, [aligns] must have the
    same length as [headers]. *)

val add_row : t -> string list -> unit
(** Appends a row.  Raises [Invalid_argument] when the arity differs from
    the header's. *)

val add_separator : t -> unit
(** Appends a horizontal rule, rendered between row groups. *)

val render : t -> string
(** Renders with column padding, a header rule, and [|]-separated cells. *)

val print : t -> unit
(** [render] followed by [print_string] and a trailing newline. *)

val cell_float : ?decimals:int -> float -> string
(** Fixed-point cell formatting, default 2 decimals. *)

val cell_pct : ?decimals:int -> float -> string
(** [cell_pct 0.4296] is ["42.96%"] with default decimals. *)
