let bar width value max_value =
  if value <= 0. || max_value <= 0. then ""
  else
    let n = int_of_float (value /. max_value *. float_of_int width +. 0.5) in
    String.make (min width (max 0 n)) '#'

let bar_chart ?(width = 50) ?(unit_label = "") entries =
  if entries = [] then ""
  else
    let label_width =
      List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
    in
    let max_value = List.fold_left (fun acc (_, v) -> max acc v) 0. entries in
    let line (label, value) =
      Printf.sprintf "%-*s | %s %.3f%s" label_width label
        (bar width value max_value)
        value unit_label
    in
    String.concat "\n" (List.map line entries)

let grouped_bar_chart ?(width = 40) ~series rows =
  let arity = List.length series in
  List.iter
    (fun (_, values) ->
      if List.length values <> arity then
        invalid_arg "Ascii_plot.grouped_bar_chart: arity mismatch")
    rows;
  if rows = [] then ""
  else
    let label_width =
      let row_w =
        List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
      in
      List.fold_left (fun acc s -> max acc (String.length s + 2)) row_w series
    in
    let max_value =
      List.fold_left
        (fun acc (_, values) -> List.fold_left max acc values)
        0. rows
    in
    let render_row (label, values) =
      let lines =
        List.map2
          (fun name value ->
            Printf.sprintf "%-*s | %s %.3f"
              label_width
              ("  " ^ name)
              (bar width value max_value)
              value)
          series values
      in
      Printf.sprintf "%-*s |" label_width label :: lines
    in
    String.concat "\n" (List.concat_map render_row rows)

let resample samples width =
  let n = Array.length samples in
  if n <= width then Array.copy samples
  else
    (* average each destination bucket so spikes survive down-sampling *)
    Array.init width (fun i ->
        let lo = i * n / width and hi = (i + 1) * n / width in
        let hi = max (lo + 1) hi in
        let sum = ref 0. in
        for j = lo to hi - 1 do
          sum := !sum +. samples.(j)
        done;
        !sum /. float_of_int (hi - lo))

let series ?(width = 72) ?(height = 12) samples =
  if Array.length samples = 0 then ""
  else
    let data = resample samples width in
    let lo = Array.fold_left min data.(0) data in
    let hi = Array.fold_left max data.(0) data in
    let span = if hi -. lo <= 0. then 1. else hi -. lo in
    let grid = Array.make_matrix height (Array.length data) ' ' in
    Array.iteri
      (fun x v ->
        let y =
          int_of_float ((v -. lo) /. span *. float_of_int (height - 1) +. 0.5)
        in
        grid.(height - 1 - y).(x) <- '*')
      data;
    let rows =
      Array.to_list
        (Array.mapi
           (fun i row ->
             let label =
               if i = 0 then Printf.sprintf "%8.1f |" hi
               else if i = height - 1 then Printf.sprintf "%8.1f |" lo
               else String.make 9 ' ' ^ "|"
             in
             label ^ String.init (Array.length row) (Array.get row))
           grid)
    in
    String.concat "\n" rows

let sparkline samples =
  let ramp = " .:-=+*#%@" in
  if Array.length samples = 0 then ""
  else
    let lo = Array.fold_left min samples.(0) samples in
    let hi = Array.fold_left max samples.(0) samples in
    let span = if hi -. lo <= 0. then 1. else hi -. lo in
    String.init (Array.length samples) (fun i ->
        let v = (samples.(i) -. lo) /. span in
        ramp.[int_of_float (v *. 9.)])
