(** Minimal terminal plotting for the figure regenerators.

    The paper's figures are bar charts (Figs. 6–10) and time series
    (Fig. 2); this module renders both as fixed-width ASCII so a figure's
    shape can be eyeballed straight from the experiment runner's output. *)

val bar_chart :
  ?width:int -> ?unit_label:string -> (string * float) list -> string
(** [bar_chart entries] renders one horizontal bar per [(label, value)],
    scaled so the largest value spans [width] (default 50) characters.
    Non-positive values render as empty bars. *)

val grouped_bar_chart :
  ?width:int -> series:string list -> (string * float list) list -> string
(** [grouped_bar_chart ~series rows] renders grouped bars: every row is a
    label plus one value per series (e.g. baseline / BFTT / CATT).  Raises
    [Invalid_argument] on arity mismatch. *)

val series : ?width:int -> ?height:int -> float array -> string
(** [series samples] renders a down-sampled line plot of [samples] in a
    [width] x [height] (default 72 x 12) character grid. *)

val sparkline : float array -> string
(** One-line unicode-free sparkline using [" .:-=+*#%@"] density ramp. *)
