(** Deterministic pseudo-random number generation.

    All stochastic inputs in this repository (graph topologies, feature
    vectors, mesh connectivity, …) are drawn from this splitmix64-based
    generator so that every experiment is reproducible bit-for-bit from a
    seed.  The interface deliberately mirrors the small subset of
    [Stdlib.Random] that the workload generators need. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  Two generators
    created from the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Useful to give each workload its own stream without coupling their
    consumption rates. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0 .. n-1]. *)
