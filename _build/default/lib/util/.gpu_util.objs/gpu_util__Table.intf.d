lib/util/table.mli:
