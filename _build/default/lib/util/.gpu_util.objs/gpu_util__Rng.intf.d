lib/util/rng.mli:
