lib/util/ascii_plot.ml: Array List Printf String
