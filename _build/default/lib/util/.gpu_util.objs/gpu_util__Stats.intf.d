lib/util/stats.mli:
