(** Paper Fig. 9: normalized execution time of every CS kernel across the
    full range of throttling factors (max TLP → min TLP), with the factor
    CATT selected marked by a star.  Checks the accuracy of the static
    analysis: for regular kernels the star should sit at (or next to) the
    minimum. *)

type kernel_curve = {
  app : string;
  kernel : string;
  factors : ((int * int) * float) list;  (** (n, m) → normalized time *)
  catt_pick : int * int;  (** the (n, m) CATT's decision corresponds to *)
  star_is_best : bool;
  star_within : float;  (** star time / best time *)
}

(* map CATT's per-kernel decision back onto the sweep's (n, m) axis *)
let catt_factor cfg (w : Workloads.Workload.t) kernel_name =
  let run = Runner.run cfg w Runner.Catt in
  match List.assoc_opt kernel_name run.Runner.catt_analyses with
  | None -> (1, 0)
  | Some t ->
    List.fold_left
      (fun (n_acc, m_acc) (l : Catt.Driver.loop_decision) ->
        let d = l.Catt.Driver.decision in
        if d.Catt.Throttle.throttled then (max n_acc d.Catt.Throttle.n, max m_acc d.Catt.Throttle.m)
        else (n_acc, m_acc))
      (1, 0) t.Catt.Driver.loops

let kernel_cycles (r : Runner.app_run) kernel_name =
  match
    List.find_opt
      (fun (ks : Runner.kernel_stats) -> ks.Runner.kernel_name = kernel_name)
      r.Runner.kernels
  with
  | Some ks -> float_of_int ks.Runner.stats.Gpusim.Stats.cycles
  | None -> nan

let curves cfg (w : Workloads.Workload.t) =
  let sweep = Runner.sweep cfg w in
  let base =
    match sweep with
    | ((1, 0), r) :: _ -> r
    | _ -> Runner.run cfg w Runner.Baseline
  in
  List.map
    (fun (kernel_name, _) ->
      let base_cycles = kernel_cycles base kernel_name in
      let factors =
        List.map
          (fun (f, r) -> (f, kernel_cycles r kernel_name /. base_cycles))
          sweep
      in
      let pick = catt_factor cfg w kernel_name in
      (* the star: the sweep point matching CATT's factor (clamped like the
         runner clamps) — fall back to baseline when CATT didn't throttle *)
      let star_time =
        match List.assoc_opt pick factors with
        | Some t -> t
        | None -> 1.
      in
      let best = List.fold_left (fun acc (_, t) -> min acc t) infinity factors in
      {
        app = w.Workloads.Workload.name;
        kernel = kernel_name;
        factors;
        catt_pick = pick;
        star_is_best = star_time <= best +. 1e-9;
        star_within = star_time /. best;
      })
    (Workloads.Workload.kernels w)

let render () =
  let cfg = Configs.max_l1d () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Figure 9: normalized execution time across throttling factors (CS \
     kernels)\n(star * = the factor CATT selected; 1.00 = baseline)\n";
  let total = ref 0 and hits = ref 0 in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      List.iter
        (fun c ->
          incr total;
          if c.star_within <= 1.05 then incr hits;
          Buffer.add_string buf (Printf.sprintf "\n%s / %s\n" c.app c.kernel);
          Buffer.add_string buf
            (Gpu_util.Ascii_plot.bar_chart ~unit_label:"x"
               (List.map
                  (fun ((n, m), t) ->
                    ( Printf.sprintf "N=%2d M=%d%s" n m
                        (if (n, m) = c.catt_pick then " *" else ""),
                      t ))
                  c.factors));
          Buffer.add_char buf '\n')
        (curves cfg w))
    Workloads.Registry.cs;
  Buffer.add_string buf
    (Printf.sprintf
       "\nCATT's pick within 5%% of the sweep optimum for %d/%d kernels\n"
       !hits !total);
  Buffer.contents buf
