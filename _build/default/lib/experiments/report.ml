(** Dispatch table of all reproduced artifacts. *)

type artifact = {
  id : string;
  title : string;
  render : unit -> string;
}

let artifacts =
  [
    {
      id = "table2";
      title = "Table 2/Sec 3: cache-sensitivity classification";
      render = Classify.render;
    };
    { id = "table3"; title = "Table 3: selected TLP per kernel/loop"; render = Table3.render };
    { id = "fig2"; title = "Fig 2: off-chip requests over time"; render = Fig2.render };
    { id = "fig3"; title = "Fig 3: TLP vs footprint microbenchmarks"; render = Fig3.render };
    { id = "fig6"; title = "Fig 6: L1D hit rates"; render = Perf_figs.render_fig6 };
    { id = "fig7"; title = "Fig 7: CS performance, max L1D"; render = Perf_figs.render_fig7 };
    { id = "fig8"; title = "Fig 8: CI performance, max L1D"; render = Perf_figs.render_fig8 };
    { id = "fig9"; title = "Fig 9: throttling-factor sensitivity"; render = Fig9.render };
    { id = "fig10"; title = "Fig 10: CS performance, reduced L1D"; render = Perf_figs.render_fig10 };
    { id = "overhead"; title = "Sec 5.1.4: analysis overhead"; render = Overhead.render };
    {
      id = "ablations";
      title = "Ablations: dynamic / bypass / scheduler (Sec 2 arguments)";
      render = Ablations.render;
    };
  ]

let find id = List.find_opt (fun a -> a.id = id) artifacts

let ids = List.map (fun a -> a.id) artifacts

let render_all () =
  String.concat "\n\n"
    (List.map
       (fun a -> Printf.sprintf "==== %s ====\n\n%s" a.title (a.render ()))
       artifacts)
