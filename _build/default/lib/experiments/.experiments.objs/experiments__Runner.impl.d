lib/experiments/runner.ml: Catt Gpu_util Gpusim Hashtbl List Printf Workloads
