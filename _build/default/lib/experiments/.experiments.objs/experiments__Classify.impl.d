lib/experiments/classify.ml: Configs Gpu_util Gpusim List Printf Runner Workloads
