lib/experiments/ablations.ml: Array Catt Configs Gpu_util Gpusim List Printf Runner Workloads
