lib/experiments/overhead.ml: Catt Configs Gpu_util List Minicuda Printf Unix Workloads
