lib/experiments/fig9.ml: Buffer Catt Configs Gpu_util Gpusim List Printf Runner Workloads
