lib/experiments/fig2.ml: Array Buffer Configs Gpu_util Gpusim List Printf Runner Workloads
