lib/experiments/report.ml: Ablations Classify Fig2 Fig3 Fig9 List Overhead Perf_figs Printf String Table3
