lib/experiments/fig3.ml: Buffer Configs Gpu_util Gpusim List Printf Workloads
