lib/experiments/configs.ml: Gpusim Printf
