lib/experiments/table3.ml: Catt Configs Gpu_util List Printf Runner Workloads
