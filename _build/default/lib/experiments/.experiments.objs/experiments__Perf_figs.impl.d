lib/experiments/perf_figs.ml: Array Configs Gpu_util Gpusim List Printf Runner Workloads
