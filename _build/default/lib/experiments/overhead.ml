(** Paper Section 5.1.4: static-analysis overhead.  The paper reports 1–2
    seconds per application with an ANTLR front end; our whole pass
    (parse → typecheck → affine analysis → Eq. 9 search → transform) is
    linear in the source and completes in milliseconds. *)

type entry = { app : string; kernels : int; seconds : float }

let measure cfg (w : Workloads.Workload.t) =
  let started = Unix.gettimeofday () in
  let program = Workloads.Workload.parse w in
  let count = ref 0 in
  List.iter
    (fun (kernel : Minicuda.Ast.kernel) ->
      match
        List.find_opt
          (fun (l : Workloads.Workload.kernel_launch) ->
            l.Workloads.Workload.kernel_name = kernel.Minicuda.Ast.kernel_name)
          w.Workloads.Workload.launches
      with
      | None -> ()
      | Some l ->
        incr count;
        ignore (Catt.Driver.analyze cfg kernel (Workloads.Workload.geometry_of l)))
    program.Minicuda.Ast.kernels;
  {
    app = w.Workloads.Workload.name;
    kernels = !count;
    seconds = Unix.gettimeofday () -. started;
  }

let render () =
  let cfg = Configs.max_l1d () in
  let entries = List.map (measure cfg) Workloads.Registry.all in
  let table = Gpu_util.Table.create [ "App"; "kernels"; "analysis time (ms)" ] in
  List.iter
    (fun e ->
      Gpu_util.Table.add_row table
        [ e.app; string_of_int e.kernels; Gpu_util.Table.cell_float (e.seconds *. 1000.) ])
    entries;
  let total = List.fold_left (fun acc e -> acc +. e.seconds) 0. entries in
  Printf.sprintf
    "Analysis overhead (paper Sec 5.1.4: 1-2 s per application with ANTLR)\n%s\n\
     total for all %d applications: %.1f ms\n"
    (Gpu_util.Table.render table) (List.length entries) (total *. 1000.)
