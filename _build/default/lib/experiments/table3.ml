(** Paper Table 3: selected TLP (#warps_TB, #TBs) per kernel and loop for
    the baseline, BFTT and CATT, at the reduced and the maximum L1D. *)

let tlp_cell (w, t) = Printf.sprintf "(%d,%d)" w t

(* CATT's per-loop TLP strings for one kernel under one config *)
let catt_loop_tlps cfg (w : Workloads.Workload.t) kernel_name =
  let run = Runner.run cfg w Runner.Catt in
  match List.assoc_opt kernel_name run.Runner.catt_analyses with
  | None -> [ ("-", tlp_cell (0, 0)) ]
  | Some t ->
    let loops = t.Catt.Driver.loops in
    if loops = [] then [ ("-", tlp_cell t.Catt.Driver.baseline_tlp) ]
    else
      List.map
        (fun (l : Catt.Driver.loop_decision) ->
          let id = l.Catt.Driver.footprint.Catt.Footprint.loop.Catt.Analysis.loop_id in
          ( string_of_int (id + 1),
            tlp_cell (Catt.Driver.selected_tlp t ~loop_id:id) ))
        loops

let bftt_tlp cfg (w : Workloads.Workload.t) kernel_name =
  let _, best = Runner.bftt cfg w in
  match
    List.find_opt
      (fun (ks : Runner.kernel_stats) -> ks.Runner.kernel_name = kernel_name)
      best.Runner.kernels
  with
  | Some ks -> tlp_cell ks.Runner.tlp
  | None -> "-"

let baseline_tlp cfg (w : Workloads.Workload.t) kernel_name =
  let run = Runner.run cfg w Runner.Baseline in
  match
    List.find_opt
      (fun (ks : Runner.kernel_stats) -> ks.Runner.kernel_name = kernel_name)
      run.Runner.kernels
  with
  | Some ks -> tlp_cell ks.Runner.tlp
  | None -> "-"

let render () =
  let small = Configs.small_l1d () and max_cfg = Configs.max_l1d () in
  let table =
    Gpu_util.Table.create
      [
        "App"; "Kernel"; "Loop"; "Baseline"; "BFTT@16K"; "CATT@16K";
        "BFTT@32K"; "CATT@32K";
      ]
  in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let kernel_names =
        List.map fst (Workloads.Workload.kernels w)
      in
      List.iteri
        (fun ki kernel_name ->
          let loops_small = catt_loop_tlps small w kernel_name in
          let loops_max = catt_loop_tlps max_cfg w kernel_name in
          List.iteri
            (fun li (loop_label, catt_small) ->
              let catt_max =
                match List.nth_opt loops_max li with
                | Some (_, c) -> c
                | None -> "-"
              in
              let first = li = 0 in
              Gpu_util.Table.add_row table
                [
                  (if first && ki = 0 then w.Workloads.Workload.name else "");
                  (if first then Printf.sprintf "#%d" (ki + 1) else "");
                  loop_label;
                  (if first then baseline_tlp small w kernel_name else "");
                  (if first then bftt_tlp small w kernel_name else "");
                  catt_small;
                  (if first then bftt_tlp max_cfg w kernel_name else "");
                  catt_max;
                ])
            loops_small)
        kernel_names;
      Gpu_util.Table.add_separator table)
    Workloads.Registry.cs;
  "Table 3: TLP per SM (#warps_TB, #TBs) selected by each method\n"
  ^ Gpu_util.Table.render table
