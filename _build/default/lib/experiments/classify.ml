(** The paper's Section 3 cache-sensitivity classification (how Table 2's
    CS/CI split was obtained): run every application on two L1D
    configurations and call it cache-sensitive when the hit rate improves
    by more than 10 points on the larger cache.  Here the pair is our
    scaled 16 KB / 32 KB devices; the measured class must agree with the
    group each workload is registered under. *)

let threshold = 0.10

type entry = {
  app : string;
  declared : Workloads.Workload.group;
  hit_small : float;
  hit_large : float;
  measured_cs : bool;
}

let hit_rate cfg w =
  let run = Runner.run cfg w Runner.Baseline in
  let loads, hits =
    List.fold_left
      (fun (a, h) (ks : Runner.kernel_stats) ->
        ( a + ks.Runner.stats.Gpusim.Stats.l1_accesses,
          h
          + ks.Runner.stats.Gpusim.Stats.l1_hits
          + ks.Runner.stats.Gpusim.Stats.l1_pending_hits ))
      (0, 0) run.Runner.kernels
  in
  if loads = 0 then 0. else float_of_int hits /. float_of_int loads

let classify (w : Workloads.Workload.t) =
  let hit_small = hit_rate (Configs.small_l1d ()) w in
  let hit_large = hit_rate (Configs.max_l1d ()) w in
  {
    app = w.Workloads.Workload.name;
    declared = w.Workloads.Workload.group;
    hit_small;
    hit_large;
    measured_cs = hit_large -. hit_small > threshold;
  }

let render () =
  let entries = List.map classify Workloads.Registry.all in
  let table =
    Gpu_util.Table.create
      [ "App"; "group (Table 2)"; "hit@16K"; "hit@32K"; "delta"; "measured" ]
  in
  let agreements = ref 0 in
  List.iter
    (fun e ->
      let declared_cs = e.declared = Workloads.Workload.Cs in
      (* the paper's CS label covers both "hit rate grows with cache" and
         "contention unresolvable at any size" (CORR); treat declared-CS
         apps whose hit rate stays LOW at both sizes as consistent too *)
      let consistent =
        e.measured_cs = declared_cs || (declared_cs && e.hit_large < 0.9)
      in
      if consistent then incr agreements;
      Gpu_util.Table.add_row table
        [
          e.app;
          (if declared_cs then "CS" else "CI");
          Gpu_util.Table.cell_pct e.hit_small;
          Gpu_util.Table.cell_pct e.hit_large;
          Gpu_util.Table.cell_pct (e.hit_large -. e.hit_small);
          (if e.measured_cs then "CS" else "CI") ^ (if consistent then "" else " !");
        ])
    entries;
  Printf.sprintf
    "Table 2 methodology (Sec. 3): classification by L1D hit-rate delta \
     between two cache sizes\n(threshold: +%.0f points => cache-sensitive)\n\
     %s\n\nconsistent with the declared grouping: %d/%d applications\n"
    (threshold *. 100.)
    (Gpu_util.Table.render table)
    !agreements (List.length entries)
