(** The performance comparisons:

    - Fig. 6 — L1D hit rate per CS kernel (baseline / BFTT / CATT, max L1D)
    - Fig. 7 — normalized execution time, CS group, max L1D
    - Fig. 8 — normalized execution time, CI group, max L1D
    - Fig. 10 — normalized execution time, CS group, reduced L1D

    The paper's headline numbers these must qualitatively reproduce:
    CATT ≈ 1.43x over baseline and ≈ 9 points over BFTT on CS at max L1D;
    larger gains (≈ 1.89x / 1.68x) at the reduced L1D; no change on CI. *)

type row = {
  app : string;
  base_cycles : int;
  bftt_cycles : int;
  bftt_pick : int * int;
  catt_cycles : int;
  verified : bool;
}

let row cfg (w : Workloads.Workload.t) =
  let base = Runner.run cfg w Runner.Baseline in
  let pick, bftt = Runner.bftt cfg w in
  let catt = Runner.run cfg w Runner.Catt in
  let ok r = r.Runner.verified = Ok () in
  {
    app = w.Workloads.Workload.name;
    base_cycles = base.Runner.total_cycles;
    bftt_cycles = bftt.Runner.total_cycles;
    bftt_pick = pick;
    catt_cycles = catt.Runner.total_cycles;
    verified = ok base && ok bftt && ok catt;
  }

let rows cfg group = List.map (row cfg) group

let speedups rows pick =
  Gpu_util.Stats.geomean
    (Array.of_list
       (List.map
          (fun r -> float_of_int r.base_cycles /. float_of_int (pick r))
          rows))

let render_perf ~title ~note cfg group =
  let rows = rows cfg group in
  let table =
    Gpu_util.Table.create
      [ "App"; "baseline"; "BFTT"; "CATT"; "BFTT pick"; "norm BFTT"; "norm CATT"; "ok" ]
  in
  List.iter
    (fun r ->
      Gpu_util.Table.add_row table
        [
          r.app;
          string_of_int r.base_cycles;
          string_of_int r.bftt_cycles;
          string_of_int r.catt_cycles;
          (let n, m = r.bftt_pick in Printf.sprintf "N=%d M=%d" n m);
          Gpu_util.Table.cell_float
            (float_of_int r.bftt_cycles /. float_of_int r.base_cycles);
          Gpu_util.Table.cell_float
            (float_of_int r.catt_cycles /. float_of_int r.base_cycles);
          (if r.verified then "yes" else "NO");
        ])
    rows;
  let bftt_speedup = speedups rows (fun r -> r.bftt_cycles) in
  let catt_speedup = speedups rows (fun r -> r.catt_cycles) in
  let chart =
    Gpu_util.Ascii_plot.grouped_bar_chart ~series:[ "BFTT"; "CATT" ]
      (List.map
         (fun r ->
           ( r.app,
             [
               float_of_int r.bftt_cycles /. float_of_int r.base_cycles;
               float_of_int r.catt_cycles /. float_of_int r.base_cycles;
             ] ))
         rows)
  in
  Printf.sprintf
    "%s\n%s\n\n%s\n\nexecution time normalized to baseline (shorter bar = faster):\n%s\n\n\
     geomean improvement over baseline: BFTT %.2f%%, CATT %.2f%%\n"
    title note (Gpu_util.Table.render table) chart
    ((bftt_speedup -. 1.) *. 100.)
    ((catt_speedup -. 1.) *. 100.)

let render_fig7 () =
  render_perf
    ~title:"Figure 7: performance of the CS group, maximum L1D"
    ~note:"(paper: CATT +42.96% geomean, BFTT +31.19%)"
    (Configs.max_l1d ()) Workloads.Registry.cs

let render_fig8 () =
  render_perf
    ~title:"Figure 8: performance of the CI group, maximum L1D"
    ~note:"(paper: CATT must select baseline TLP everywhere; no regression)"
    (Configs.max_l1d ()) Workloads.Registry.ci

let render_fig10 () =
  render_perf
    ~title:"Figure 10: performance of the CS group, reduced L1D"
    ~note:"(paper at 32KB: CATT +89.23%, BFTT +68.17% — gains grow as the L1D shrinks)"
    (Configs.small_l1d ()) Workloads.Registry.cs

(* --------------------------- Fig. 6 ------------------------------- *)

let render_fig6 () =
  let cfg = Configs.max_l1d () in
  let table =
    Gpu_util.Table.create [ "Kernel"; "baseline"; "BFTT"; "CATT" ]
  in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let base = Runner.run cfg w Runner.Baseline in
      let _, bftt = Runner.bftt cfg w in
      let catt = Runner.run cfg w Runner.Catt in
      List.iteri
        (fun i (ks : Runner.kernel_stats) ->
          let rate r =
            match List.nth_opt r.Runner.kernels i with
            | Some k -> Gpu_util.Table.cell_pct (Gpusim.Stats.l1_hit_rate k.Runner.stats)
            | None -> "-"
          in
          Gpu_util.Table.add_row table
            [
              Printf.sprintf "%s#%d" w.Workloads.Workload.name (i + 1);
              Gpu_util.Table.cell_pct (Gpusim.Stats.l1_hit_rate ks.Runner.stats);
              rate bftt;
              rate catt;
            ])
        base.Runner.kernels)
    Workloads.Registry.cs;
  "Figure 6: L1D hit rates per CS kernel, maximum L1D\n"
  ^ Gpu_util.Table.render table
