(** Executes a workload on the simulator under a throttling scheme.

    Schemes:
    - [Baseline] — untouched kernels at full TLP;
    - [Catt] — each kernel goes through the full {!Catt.Driver} pass
      (per-loop decisions, Figs. 4/5 transforms, carveout choice);
    - [Fixed (n, m)] — the BFTT-style uniform transformation: every loop of
      every kernel split by [n] (clamped per kernel to a divisor of its
      warp count) and TB residency reduced by [m].

    Every run re-seeds the workload's inputs identically, executes the full
    launch sequence on a fresh device, and checks the CPU oracle — so a
    miscompiled transformation fails loudly rather than producing a fast
    wrong answer.  Results are memoized per (config, workload, scheme). *)

module Config = Gpusim.Config
module Gpu = Gpusim.Gpu

let seed = 42

type scheme =
  | Baseline
  | Catt
  | Fixed of int * int
  | Dynamic
  | CcwsSched
  | DawsSched
  | Swl of int
  | Bypass

let scheme_label = function
  | Baseline -> "baseline"
  | Catt -> "CATT"
  | Fixed (n, m) -> Printf.sprintf "fixed(N=%d,M=%d)" n m
  | Dynamic -> "dynamic"
  | CcwsSched -> "ccws"
  | DawsSched -> "daws"
  | Swl k -> Printf.sprintf "swl(%d)" k
  | Bypass -> "bypass"

type kernel_stats = {
  kernel_name : string;
  stats : Gpusim.Stats.t;  (** aggregated over repeated launches *)
  tlp : int * int;  (** active (warps per TB, TBs per SM) *)
  trace : Gpusim.Trace.t option;
}

type app_run = {
  workload : string;
  scheme : scheme;
  kernels : kernel_stats list;  (** launch order, deduplicated by name *)
  total_cycles : int;
  verified : (unit, string) result;
  catt_analyses : (string * Catt.Driver.t) list;  (** only for [Catt] *)
}

(* ------------------------------------------------------------------ *)
(* Per-kernel preparation under a scheme                               *)
(* ------------------------------------------------------------------ *)

type prepared = {
  prog : Gpusim.Bytecode.program;
  carveout : int option;
  prepared_tlp : int * int;
  analysis : Catt.Driver.t option;
}

let largest_divisor_leq value cap =
  List.fold_left
    (fun acc d -> if d <= cap then d else acc)
    1
    (Catt.Throttle.divisors value)

let prepare_fixed cfg kernel geo ~n ~m =
  let prog0 = Gpusim.Codegen.compile_kernel kernel in
  let tb_threads = geo.Catt.Analysis.block_x * geo.Catt.Analysis.block_y in
  let grid_tbs = geo.Catt.Analysis.grid_x * geo.Catt.Analysis.grid_y in
  match
    Catt.Occupancy.configure cfg ~grid_tbs ~tb_threads
      ~num_regs:prog0.Gpusim.Bytecode.num_regs
      ~shared_bytes:prog0.Gpusim.Bytecode.shared_bytes ()
  with
  | Error msg -> failwith msg
  | Ok occ ->
    let warps_per_tb = occ.Catt.Occupancy.warps_per_tb in
    let tbs = occ.Catt.Occupancy.tbs_per_sm in
    let n' = largest_divisor_leq warps_per_tb n in
    let m' = min m (tbs - 1) in
    let one_dim_block = geo.Catt.Analysis.block_y = 1 in
    let k =
      if n' > 1 then
        Catt.Transform.warp_throttle_all kernel ~n:n' ~warps_per_tb
          ~warp_size:cfg.Config.warp_size ~one_dim_block
      else kernel
    in
    let k, carveout, tbs' =
      if m' > 0 then
        match
          Catt.Transform.plan_tb_throttle cfg ~tb_threads
            ~num_regs:prog0.Gpusim.Bytecode.num_regs
            ~shared_bytes:prog0.Gpusim.Bytecode.shared_bytes
            ~target_tbs:(tbs - m')
        with
        | Some (c, dummy_bytes) ->
          ( Catt.Transform.tb_throttle k ~dummy_elems:(max 1 (dummy_bytes / 4)),
            Some c,
            tbs - m' )
        | None -> (k, None, tbs)
      else (k, None, tbs)
    in
    {
      prog = Gpusim.Codegen.compile_kernel k;
      carveout;
      prepared_tlp = (warps_per_tb / n', tbs');
      analysis = None;
    }

let prepare_catt cfg kernel geo =
  match Catt.Driver.analyze cfg kernel geo with
  | Error msg -> failwith msg
  | Ok t ->
    let transformed = t.Catt.Driver.transformed in
    (* the kernel-level TLP: the strongest of the per-loop selections *)
    let tlp =
      List.fold_left
        (fun (bw, bt) (l : Catt.Driver.loop_decision) ->
          let d = l.Catt.Driver.decision in
          if d.Catt.Throttle.throttled then
            ( min bw d.Catt.Throttle.active_warps_per_tb,
              min bt d.Catt.Throttle.active_tbs )
          else (bw, bt))
        (fst t.Catt.Driver.baseline_tlp, t.Catt.Driver.resident_tbs)
        t.Catt.Driver.loops
    in
    {
      prog = Gpusim.Codegen.compile_kernel transformed;
      carveout = Some t.Catt.Driver.final_carveout;
      prepared_tlp = tlp;
      analysis = Some t;
    }

let prepare_baseline cfg kernel geo =
  let prog = Gpusim.Codegen.compile_kernel kernel in
  let tb_threads = geo.Catt.Analysis.block_x * geo.Catt.Analysis.block_y in
  let grid_tbs = geo.Catt.Analysis.grid_x * geo.Catt.Analysis.grid_y in
  let tlp =
    match
      Catt.Occupancy.configure cfg ~grid_tbs ~tb_threads
        ~num_regs:prog.Gpusim.Bytecode.num_regs
        ~shared_bytes:prog.Gpusim.Bytecode.shared_bytes ()
    with
    | Ok occ -> (occ.Catt.Occupancy.warps_per_tb, occ.Catt.Occupancy.tbs_per_sm)
    | Error _ -> (0, 0)
  in
  { prog; carveout = None; prepared_tlp = tlp; analysis = None }

(* ------------------------------------------------------------------ *)
(* Whole-application execution                                         *)
(* ------------------------------------------------------------------ *)

let run_uncached ?(trace = false) cfg (w : Workloads.Workload.t) scheme =
  let kernels = Workloads.Workload.kernels w in
  (* geometry per kernel comes from its first launch *)
  let geometry_of_kernel name =
    match
      List.find_opt
        (fun (l : Workloads.Workload.kernel_launch) -> l.kernel_name = name)
        w.Workloads.Workload.launches
    with
    | Some l -> Workloads.Workload.geometry_of l
    | None -> invalid_arg (Printf.sprintf "kernel %s is never launched" name)
  in
  let prepared =
    List.map
      (fun (name, kernel) ->
        let geo = geometry_of_kernel name in
        let p =
          match scheme with
          | Baseline | Dynamic | CcwsSched | DawsSched | Swl _ | Bypass ->
            prepare_baseline cfg kernel geo
          | Catt -> prepare_catt cfg kernel geo
          | Fixed (n, m) -> prepare_fixed cfg kernel geo ~n ~m
        in
        (name, p))
      kernels
  in
  let dev = Gpu.create cfg in
  w.Workloads.Workload.setup dev (Gpu_util.Rng.create seed);
  let acc : (string * kernel_stats) list ref = ref [] in
  List.iter
    (fun (l : Workloads.Workload.kernel_launch) ->
      let p = List.assoc l.kernel_name prepared in
      let launch =
        {
          Gpu.prog = p.prog;
          grid = l.grid;
          block = l.block;
          args = l.args;
          smem_carveout = p.carveout;
          sched = Gpusim.Sm.Gto;
          trace;
          runtime_throttle =
            (match scheme with
            | Dynamic -> `Dyncta
            | CcwsSched -> `Ccws
            | DawsSched -> `Daws
            | Swl k -> `Swl k
            | Baseline | Catt | Fixed _ | Bypass -> `None);
          bypass_arrays =
            (if scheme = Bypass then
               Catt.Bypass.divergent_arrays cfg
                 (Workloads.Workload.find_kernel w l.kernel_name)
                 (Workloads.Workload.geometry_of l)
             else []);
        }
      in
      let stats, tr = Gpu.launch dev launch in
      match List.assoc_opt l.kernel_name !acc with
      | Some ks ->
        ks.stats.Gpusim.Stats.cycles <- ks.stats.Gpusim.Stats.cycles + stats.Gpusim.Stats.cycles;
        let cycles = ks.stats.Gpusim.Stats.cycles in
        Gpusim.Stats.accumulate ~into:ks.stats stats;
        ks.stats.Gpusim.Stats.cycles <- cycles
      | None ->
        acc :=
          !acc
          @ [
              ( l.kernel_name,
                {
                  kernel_name = l.kernel_name;
                  stats;
                  tlp = p.prepared_tlp;
                  trace = (if trace then Some tr else None);
                } );
            ])
    w.Workloads.Workload.launches;
  let kernels_stats = List.map snd !acc in
  {
    workload = w.Workloads.Workload.name;
    scheme;
    kernels = kernels_stats;
    total_cycles =
      List.fold_left (fun t ks -> t + ks.stats.Gpusim.Stats.cycles) 0 kernels_stats;
    verified = w.Workloads.Workload.verify dev;
    catt_analyses =
      List.filter_map
        (fun (name, p) ->
          match p.analysis with Some a -> Some (name, a) | None -> None)
        prepared;
  }

(* ------------------------------------------------------------------ *)
(* Memoization                                                         *)
(* ------------------------------------------------------------------ *)

let memo : (string, app_run) Hashtbl.t = Hashtbl.create 64

let memo_key cfg (w : Workloads.Workload.t) scheme =
  Printf.sprintf "%d/%d/%s/%s" cfg.Config.onchip_bytes cfg.Config.num_sms
    w.Workloads.Workload.name (scheme_label scheme)

let run ?(trace = false) cfg w scheme =
  if trace then run_uncached ~trace cfg w scheme
  else begin
    let key = memo_key cfg w scheme in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
      let r = run_uncached cfg w scheme in
      Hashtbl.replace memo key r;
      r
  end

(* ------------------------------------------------------------------ *)
(* Sweeps and BFTT                                                     *)
(* ------------------------------------------------------------------ *)

(** Throttling-factor candidates for one workload, ordered from maximum to
    minimum TLP — the x-axis of Fig. 9 and BFTT's search space.  Warp
    splitting first, then TB reduction, mirroring Eq. 9's phases. *)
let candidates cfg (w : Workloads.Workload.t) =
  let max_warps, max_tbs =
    List.fold_left
      (fun (mw, mt) (l : Workloads.Workload.kernel_launch) ->
        let geo = Workloads.Workload.geometry_of l in
        let kernel = Workloads.Workload.find_kernel w l.kernel_name in
        let prog = Gpusim.Codegen.compile_kernel kernel in
        match
          Catt.Occupancy.configure cfg
            ~grid_tbs:(geo.Catt.Analysis.grid_x * geo.Catt.Analysis.grid_y)
            ~tb_threads:(geo.Catt.Analysis.block_x * geo.Catt.Analysis.block_y)
            ~num_regs:prog.Gpusim.Bytecode.num_regs
            ~shared_bytes:prog.Gpusim.Bytecode.shared_bytes ()
        with
        | Ok occ ->
          ( max mw occ.Catt.Occupancy.warps_per_tb,
            max mt occ.Catt.Occupancy.tbs_per_sm )
        | Error _ -> (mw, mt))
      (1, 1) w.Workloads.Workload.launches
  in
  let rec warp_factors n acc =
    if n > max_warps then List.rev acc else warp_factors (2 * n) (n :: acc)
  in
  let warp_part = List.map (fun n -> (n, 0)) (warp_factors 1 []) in
  (* TB-level factors matter most for single-warp TBs (where no warp
     splitting is possible), so allow a deeper sweep there *)
  let tb_range = if max_warps = 1 then 12 else 3 in
  let tb_part =
    List.init (min tb_range (max_tbs - 1)) (fun i -> (max_warps, i + 1))
  in
  warp_part @ tb_part

let sweep cfg w =
  List.map
    (fun (n, m) ->
      let scheme = if n = 1 && m = 0 then Baseline else Fixed (n, m) in
      ((n, m), run cfg w scheme))
    (candidates cfg w)

(** Best-SWL (Rogers et al., MICRO-45; discussed in the paper's
    Section 2.2): the best static scheduler-level warp limit, found by
    exhaustive offline search over per-SM warp counts. *)
let best_swl cfg w =
  let max_warps =
    List.fold_left
      (fun acc (l : Workloads.Workload.kernel_launch) ->
        let geo = Workloads.Workload.geometry_of l in
        let kernel = Workloads.Workload.find_kernel w l.kernel_name in
        let prog = Gpusim.Codegen.compile_kernel kernel in
        match
          Catt.Occupancy.configure cfg
            ~grid_tbs:(geo.Catt.Analysis.grid_x * geo.Catt.Analysis.grid_y)
            ~tb_threads:(geo.Catt.Analysis.block_x * geo.Catt.Analysis.block_y)
            ~num_regs:prog.Gpusim.Bytecode.num_regs
            ~shared_bytes:prog.Gpusim.Bytecode.shared_bytes ()
        with
        | Ok occ -> max acc occ.Catt.Occupancy.concurrent_warps
        | Error _ -> acc)
      1 w.Workloads.Workload.launches
  in
  let rec limits k acc = if k > max_warps then List.rev acc else limits (2 * k) (k :: acc) in
  let candidates = limits 1 [] in
  let runs = List.map (fun k -> (k, run cfg w (Swl k))) candidates in
  List.fold_left
    (fun ((_, best) as acc) ((_, r) as cand) ->
      if r.total_cycles < best.total_cycles then cand else acc)
    (List.hd runs) (List.tl runs)

(** BFTT: the best-performing fixed combination, found by exhaustive
    offline search (paper Section 5: "best-fixed thread throttling"). *)
let bftt cfg w =
  match sweep cfg w with
  | [] -> invalid_arg "Runner.bftt: no candidates"
  | first :: rest ->
    List.fold_left
      (fun ((_, best) as acc) ((_, r) as cand) ->
        if r.total_cycles < best.total_cycles then cand else acc)
      first rest
