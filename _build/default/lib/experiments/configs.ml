(** Device configurations for the two evaluation settings.

    The paper evaluates on a Titan V with the L1D at its maximum (up to
    128 KB) and at 32 KB (Fig. 10, "previous-generation" setting).  Our
    scaled device keeps the same line size and associativity with a
    quarter-size on-chip memory, so "max L1D" is 32 KB here; the reduced
    setting halves it to 16 KB — half rather than a quarter because a
    4 KB-per-warp divergent loop (32 lines) must still be resolvable by
    throttling to one warp, as it is in the paper's 32 KB setting. *)

let num_sms = 4

let max_l1d () = Gpusim.Config.scaled ~num_sms ~onchip_bytes:(32 * 1024) ()

let small_l1d () = Gpusim.Config.scaled ~num_sms ~onchip_bytes:(16 * 1024) ()

let label cfg =
  Printf.sprintf "%dKB-L1D" (cfg.Gpusim.Config.onchip_bytes / 1024)
