(** Paper Fig. 3: execution time of the L1D-full-with-{4,8,16}-warps
    microbenchmarks across TLP levels.  Each curve should be U-shaped with
    its minimum where the resident warps' footprints exactly fill the L1D:
    fewer warps under-utilize the machine, more warps thrash the cache. *)

type point = { warps : int; cycles : int }

type curve = { label : string; fill_warps : int; points : point list }

let tlp_levels = [ 1; 2; 4; 8; 16; 32 ]

let measure cfg ~fill_warps ~reps =
  let variant =
    Workloads.Microbench.variant
      ~l1d_bytes:(Gpusim.Config.l1d_bytes cfg ~smem_carveout:0)
      ~line_bytes:cfg.Gpusim.Config.line_bytes
      ~warp_size:cfg.Gpusim.Config.warp_size ~fill_warps ~reps
  in
  let points =
    List.map
      (fun warps ->
        let stats = Workloads.Microbench.run cfg variant ~warps in
        { warps; cycles = stats.Gpusim.Stats.cycles })
      tlp_levels
  in
  { label = variant.Workloads.Microbench.label; fill_warps; points }

let curves ?(reps = 16) cfg =
  List.map (fun fw -> measure cfg ~fill_warps:fw ~reps) [ 4; 8; 16 ]

let best_point c =
  List.fold_left
    (fun acc p -> match acc with
      | Some b when b.cycles <= p.cycles -> acc
      | _ -> Some p)
    None c.points

let render () =
  let cfg = Configs.max_l1d () in
  let cs = curves cfg in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Figure 3: TLP vs execution time, L1D-filling microbenchmarks\n";
  Buffer.add_string buf
    "(normalized to each curve's best point; minimum should sit at the \
     curve's fill warp count)\n\n";
  List.iter
    (fun c ->
      let best =
        match best_point c with Some p -> float_of_int p.cycles | None -> 1.
      in
      Buffer.add_string buf (c.label ^ "\n");
      Buffer.add_string buf
        (Gpu_util.Ascii_plot.bar_chart ~unit_label:"x"
           (List.map
              (fun p ->
                ( Printf.sprintf "%2d warps%s" p.warps
                    (if p.warps = c.fill_warps then " *" else ""),
                  float_of_int p.cycles /. best ))
              c.points));
      Buffer.add_char buf '\n';
      Buffer.add_char buf '\n')
    cs;
  Buffer.contents buf
