(** CUDA-style source emission.

    The printer produces compilable mini-CUDA text; it is the back end of
    the source-to-source transformation (the paper's Figs. 4 and 5 show the
    kind of output CATT emits).  [Parser.parse_program (program p) = p]
    holds for every well-formed program — tested by property tests. *)

val ty : Ast.ty -> string
val expr : Ast.expr -> string
val stmt : ?indent:int -> Ast.stmt -> string
val block : ?indent:int -> Ast.block -> string
val kernel : Ast.kernel -> string
val program : Ast.program -> string
