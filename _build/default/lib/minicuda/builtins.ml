(** Math builtins callable from mini-CUDA kernels.

    GPU kernels in the evaluated suites only call a handful of intrinsics;
    each entry records the arity, the result type and the float
    implementation used by the simulator's functional model. *)

type signature = {
  arity : int;
  returns : Ast.ty;
  (* float semantics; integer callers are converted at the call site *)
  apply : float array -> float;
}

let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

let all : (string * signature) list =
  [
    ("sqrtf", { arity = 1; returns = Ast.Float; apply = (fun a -> sqrt a.(0)) });
    ("expf", { arity = 1; returns = Ast.Float; apply = (fun a -> exp a.(0)) });
    ("logf", { arity = 1; returns = Ast.Float; apply = (fun a -> log a.(0)) });
    ("fabsf", { arity = 1; returns = Ast.Float; apply = (fun a -> abs_float a.(0)) });
    ("sinf", { arity = 1; returns = Ast.Float; apply = (fun a -> sin a.(0)) });
    ("cosf", { arity = 1; returns = Ast.Float; apply = (fun a -> cos a.(0)) });
    ( "powf",
      { arity = 2; returns = Ast.Float; apply = (fun a -> a.(0) ** a.(1)) } );
    ( "fminf",
      { arity = 2; returns = Ast.Float; apply = (fun a -> min a.(0) a.(1)) } );
    ( "fmaxf",
      { arity = 2; returns = Ast.Float; apply = (fun a -> max a.(0) a.(1)) } );
    ( "min",
      { arity = 2; returns = Ast.Int; apply = (fun a -> min a.(0) a.(1)) } );
    ( "max",
      { arity = 2; returns = Ast.Int; apply = (fun a -> max a.(0) a.(1)) } );
    ("abs", { arity = 1; returns = Ast.Int; apply = (fun a -> abs_float a.(0)) });
    ( "saturatef",
      { arity = 1; returns = Ast.Float; apply = (fun a -> clamp01 a.(0)) } );
  ]

let find name = List.assoc_opt name all

let is_builtin name = find name <> None
