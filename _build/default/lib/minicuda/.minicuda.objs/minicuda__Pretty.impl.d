lib/minicuda/pretty.pp.ml: Ast List Printf String
