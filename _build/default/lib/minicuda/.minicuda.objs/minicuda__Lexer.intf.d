lib/minicuda/lexer.pp.mli:
