lib/minicuda/lexer.pp.ml: List Printf String
