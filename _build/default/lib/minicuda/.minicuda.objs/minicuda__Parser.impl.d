lib/minicuda/parser.pp.ml: Ast Builtins Lexer List Printf
