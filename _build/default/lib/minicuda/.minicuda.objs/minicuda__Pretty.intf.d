lib/minicuda/pretty.pp.mli: Ast
