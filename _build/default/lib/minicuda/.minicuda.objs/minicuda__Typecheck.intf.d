lib/minicuda/typecheck.pp.mli: Ast
