lib/minicuda/parser.pp.mli: Ast
