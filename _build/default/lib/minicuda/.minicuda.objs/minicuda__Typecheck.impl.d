lib/minicuda/typecheck.pp.ml: Ast Builtins List Printf
