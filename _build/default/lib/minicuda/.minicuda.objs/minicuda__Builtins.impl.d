lib/minicuda/builtins.pp.ml: Array Ast List
