(** Static semantic checks and symbol-table construction.

    Checking a kernel validates that every variable is declared before use,
    that array indexing is integer-typed, that assignments are
    numerically compatible, and that calls match builtin signatures.  The
    returned {!info} is consumed by the simulator's code generator and by
    the CATT analyzer (which needs to know which names are global arrays,
    the paper's "off-chip" accesses, versus [__shared__] arrays). *)

exception Type_error of string

(** Address space of an array, as the analysis distinguishes them:
    [Global] arrays live in off-chip memory and generate the L1D traffic the
    paper estimates; [Shared] arrays live in on-chip shared memory. *)
type space = Global | Shared

type array_info = {
  elem_ty : Ast.ty;
  space : space;
  shared_size : int option;  (** in elements; [Some] iff [space = Shared] *)
}

type info = {
  arrays : (string * array_info) list;
  scalar_params : (string * Ast.ty) list;
  shared_bytes : int;
      (** total statically declared [__shared__] footprint of the kernel,
          the paper's [USE_shm_TB] numerator before any launch-time extras *)
}

val elem_bytes : Ast.ty -> int
(** Size of one array element; [int] and [float] are both 4 bytes, matching
    the benchmarks (and Eq. 7's "4 bytes per thread request"). *)

val check_kernel : Ast.kernel -> info
(** Raises {!Type_error} with a readable message on the first violation. *)

val check_program : Ast.program -> (string * info) list
(** Checks every kernel; result is keyed by kernel name. *)
