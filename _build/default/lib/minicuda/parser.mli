(** Recursive-descent parser for the mini-CUDA language.

    The grammar is the C expression/statement subset described in
    {!module:Ast}, with standard C precedence.  [#define NAME INT] constants
    are substituted into expressions during parsing (the paper's benchmarks
    use them only for problem sizes), and retained in
    {!Ast.program.defines} for display. *)

exception Error of string * int
(** [Error (message, line)]. *)

val parse_program : string -> Ast.program
(** Parses a whole translation unit: any number of [#define]s followed by
    any number of [__global__ void] kernels. *)

val parse_kernel : string -> Ast.kernel
(** Parses a source containing exactly one kernel.  Raises {!Error} if the
    program has zero or multiple kernels. *)

val parse_expr : string -> Ast.expr
(** Parses a standalone expression — used by tests and the REPL-style
    examples. *)
