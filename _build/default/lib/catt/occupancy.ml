type t = {
  smem_carveout : int;
  l1d_bytes : int;
  tbs_per_sm : int;
  warps_per_tb : int;
  concurrent_warps : int;
}

let configure (cfg : Gpusim.Config.t) ?grid_tbs ~tb_threads ~num_regs
    ~shared_bytes () =
  let options = List.sort compare cfg.Gpusim.Config.smem_carveout_options in
  let largest = List.fold_left max 0 options in
  if shared_bytes > largest then
    Error
      (Printf.sprintf "static shared usage %dB exceeds the largest carveout %dB"
         shared_bytes largest)
  else begin
    let grid_cap =
      match grid_tbs with
      | None -> max_int / 2
      | Some total ->
        (total + cfg.Gpusim.Config.num_sms - 1) / cfg.Gpusim.Config.num_sms
    in
    let tbs_at carveout =
      min grid_cap
        (Gpusim.Cta_scheduler.max_tbs_per_sm cfg ~tb_threads ~num_regs
           ~shared_bytes ~smem_carveout:carveout)
    in
    (* Eq. 3 at the most generous carveout gives the kernel's concurrency
       ceiling; Eq. 4 then sizes the carveout to just sustain it. *)
    let best_tbs = tbs_at largest in
    if best_tbs <= 0 then Error "zero occupancy: a single TB exceeds SM resources"
    else begin
      let need = shared_bytes * best_tbs in
      (* smallest configurable option ≥ need that indeed sustains best_tbs
         (always true by monotonicity, but recompute for safety) *)
      let carveout =
        match List.find_opt (fun o -> o >= need && tbs_at o >= best_tbs) options with
        | Some c -> c
        | None -> largest
      in
      let tbs = tbs_at carveout in
      let warps_per_tb = Gpusim.Cta_scheduler.warps_per_tb cfg ~tb_threads in
      Ok
        {
          smem_carveout = carveout;
          l1d_bytes = Gpusim.Config.l1d_bytes cfg ~smem_carveout:carveout;
          tbs_per_sm = tbs;
          warps_per_tb;
          concurrent_warps = tbs * warps_per_tb;
        }
    end
  end
