module Ast = Minicuda.Ast

type variant = {
  geometries : Analysis.geometry list;
  analysis : Driver.t;
  kernel : Ast.kernel;
}

type t = {
  original : Ast.kernel;
  variants : variant list;
}

let specialize cfg (kernel : Ast.kernel) ~geometries =
  if geometries = [] then Error "Variants.specialize: no candidate geometries"
  else begin
    let analyses =
      List.map (fun g -> (g, Driver.analyze cfg kernel g)) geometries
    in
    match
      List.find_opt (fun (_, r) -> Result.is_error r) analyses
    with
    | Some (_, Error msg) -> Error msg
    | Some (_, Ok _) -> assert false
    | None ->
      let analyses =
        List.map
          (fun (g, r) -> match r with Ok t -> (g, t) | Error _ -> assert false)
          analyses
      in
      (* merge geometries that lead to the same transformed code *)
      let groups : (Ast.kernel * (Analysis.geometry * Driver.t) list ref) list ref =
        ref []
      in
      List.iter
        (fun (g, t) ->
          let key = t.Driver.transformed in
          match
            List.find_opt (fun (k, _) -> Ast.equal_kernel k key) !groups
          with
          | Some (_, members) -> members := (g, t) :: !members
          | None -> groups := !groups @ [ (key, ref [ (g, t) ]) ])
        analyses;
      let variants =
        List.mapi
          (fun i (transformed, members) ->
            let members = List.rev !members in
            let _, representative = List.hd members in
            {
              geometries = List.map fst members;
              analysis = representative;
              kernel =
                {
                  transformed with
                  Ast.kernel_name =
                    Printf.sprintf "%s__catt_v%d" kernel.Ast.kernel_name i;
                };
            })
          !groups
      in
      Ok { original = kernel; variants }
  end

let select t (geometry : Analysis.geometry) =
  match
    List.find_opt
      (fun v -> List.mem geometry v.geometries)
      t.variants
  with
  | Some v -> v
  | None ->
    (* nearest-concurrency fallback for an unanticipated launch *)
    let wanted =
      let tb = geometry.Analysis.block_x * geometry.Analysis.block_y in
      let grid = geometry.Analysis.grid_x * geometry.Analysis.grid_y in
      tb * grid
    in
    let distance v =
      let g = List.hd v.geometries in
      let have =
        g.Analysis.block_x * g.Analysis.block_y * g.Analysis.grid_x
        * g.Analysis.grid_y
      in
      abs (have - wanted)
    in
    (match t.variants with
    | [] -> invalid_arg "Variants.select: empty variant table"
    | first :: rest ->
      List.fold_left
        (fun best v -> if distance v < distance best then v else best)
        first rest)

let program_of t =
  { Ast.defines = []; kernels = List.map (fun v -> v.kernel) t.variants }
