lib/catt/driver.mli: Analysis Footprint Gpusim Minicuda Occupancy Throttle
