lib/catt/analysis.mli: Affine Minicuda
