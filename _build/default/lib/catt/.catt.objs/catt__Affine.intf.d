lib/catt/affine.mli: Format Minicuda
