lib/catt/footprint.ml: Affine Analysis List
