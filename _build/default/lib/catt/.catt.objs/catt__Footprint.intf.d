lib/catt/footprint.mli: Affine Analysis
