lib/catt/bypass.ml: Analysis Footprint Gpusim List
