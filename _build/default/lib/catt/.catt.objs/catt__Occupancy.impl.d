lib/catt/occupancy.ml: Gpusim List Printf
