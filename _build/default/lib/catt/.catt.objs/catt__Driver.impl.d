lib/catt/driver.ml: Analysis Footprint Gpusim List Minicuda Occupancy Throttle Transform Unix
