lib/catt/throttle.mli: Footprint
