lib/catt/report.ml: Affine Analysis Buffer Driver Footprint Gpusim List Minicuda Occupancy Printf Throttle
