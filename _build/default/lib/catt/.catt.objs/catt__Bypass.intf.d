lib/catt/bypass.mli: Analysis Gpusim Minicuda
