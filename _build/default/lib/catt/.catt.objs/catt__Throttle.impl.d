lib/catt/throttle.ml: Footprint List
