lib/catt/variants.mli: Analysis Driver Gpusim Minicuda
