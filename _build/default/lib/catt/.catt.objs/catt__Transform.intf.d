lib/catt/transform.mli: Gpusim Minicuda
