lib/catt/analysis.ml: Affine Hashtbl List Minicuda
