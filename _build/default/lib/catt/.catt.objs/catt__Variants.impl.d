lib/catt/variants.ml: Analysis Driver List Minicuda Printf Result
