lib/catt/transform.ml: Gpusim List Minicuda Printf
