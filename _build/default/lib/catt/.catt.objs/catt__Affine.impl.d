lib/catt/affine.ml: Format List Minicuda Printf String
