lib/catt/occupancy.mli: Gpusim
