(** Thread-throttling factor search — the paper's Eq. 9.

    Starting from the kernel's natural concurrency [(warps_per_tb, tbs)],
    first split the warps of a TB into [n] sequential groups (n ranges over
    the divisors of [warps_per_tb], smallest first, so groups stay even);
    if even one warp per TB still overflows the L1D, additionally reduce
    the number of concurrent TBs by [m].  A loop whose footprint cannot fit
    even at one warp total is left untouched ([resolved = false]) — the
    paper's CORR case. *)

type decision = {
  n : int;  (** warp split factor; 1 = no warp-level throttling *)
  m : int;  (** concurrent-TB reduction; 0 = no TB-level throttling *)
  resolved : bool;
  throttled : bool;
  active_warps_per_tb : int;
  active_tbs : int;
}

val no_throttle : warps_per_tb:int -> tbs:int -> decision

val decide :
  line_bytes:int ->
  l1d_bytes:int ->
  warps_per_tb:int ->
  tbs:int ->
  Footprint.loop_footprint ->
  decision
(** Loops without cross-iteration locality, or whose footprint already
    fits, get {!no_throttle}. *)

val divisors : int -> int list
(** Ascending proper+trivial divisors, e.g. [divisors 8 = \[1;2;4;8\]]. *)
