(** Source-to-source throttling transformations (the paper's Figs. 4 & 5).

    {b Warp-level} ([warp_throttle]): a contended top-level loop is cloned
    into [n] copies, each guarded so only one group of [warps_per_tb / n]
    warps executes it, with [__syncthreads()] barriers sequencing the
    groups.  Warp ids are computed as
    [(threadIdx.y * blockDim.x + threadIdx.x) / warp_size], which reduces
    to the paper's [threadIdx.x / WS] for 1-D blocks.

    {b TB-level} ([tb_throttle]): a dummy [__shared__] array is prepended
    (plus a store that keeps a real compiler from eliminating it) so the
    shared-memory limit (Eq. 1) caps residency at the target TB count. *)

val dummy_array_name : string

val contains_barrier : Minicuda.Ast.stmt -> bool
(** True when the statement's sub-tree reaches a [__syncthreads()] — such
    loops are never warp-split (the groups would rendezvous at different
    barrier sites, undefined behaviour on real hardware too). *)

val warp_throttle_plan :
  Minicuda.Ast.kernel ->
  plan:(int * int) list ->
  warps_per_tb:int ->
  warp_size:int ->
  one_dim_block:bool ->
  Minicuda.Ast.kernel
(** [plan] maps loop ids (pre-order indices among top-level loops of the
    {e original} kernel, matching {!Analysis.loop_report.loop_id}) to their
    split factors; all listed loops are rewritten in one pass — splitting a
    loop renumbers the ones after it, so sequential single-loop rewrites
    would target the wrong statements.  Each factor must divide
    [warps_per_tb].  Raises [Invalid_argument] on unknown loop ids. *)

val warp_throttle :
  Minicuda.Ast.kernel ->
  loop_id:int ->
  n:int ->
  warps_per_tb:int ->
  warp_size:int ->
  one_dim_block:bool ->
  Minicuda.Ast.kernel
(** Single-loop convenience wrapper over {!warp_throttle_plan}. *)

val count_top_loops : Minicuda.Ast.kernel -> int
(** Number of top-level loops, i.e. the valid [loop_id] range. *)

val warp_throttle_all :
  Minicuda.Ast.kernel ->
  n:int ->
  warps_per_tb:int ->
  warp_size:int ->
  one_dim_block:bool ->
  Minicuda.Ast.kernel
(** Splits {e every} top-level loop with the same factor — the uniform
    whole-application throttling that the BFTT baseline applies. *)

val tb_throttle : Minicuda.Ast.kernel -> dummy_elems:int -> Minicuda.Ast.kernel
(** Prepends the dummy shared allocation of [dummy_elems] floats. *)

val plan_tb_throttle :
  Gpusim.Config.t ->
  tb_threads:int ->
  num_regs:int ->
  shared_bytes:int ->
  target_tbs:int ->
  (int * int) option
(** [plan_tb_throttle cfg … ~target_tbs] finds the smallest carveout [c]
    and a dummy size [d] (bytes) such that occupancy under [c] with
    [shared_bytes + d] per TB is exactly [target_tbs], maximizing the
    remaining L1D.  Returns [(carveout, dummy_bytes)]. *)
