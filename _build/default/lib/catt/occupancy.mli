(** L1D / shared-memory configuration — the paper's Section 4.1.

    Given a kernel's resource demands, choose the smallest shared-memory
    carveout that sustains the maximum concurrency (Eqs. 1–4), leaving as
    much on-chip memory as possible to the L1D. *)

type t = {
  smem_carveout : int;  (** bytes given to shared memory *)
  l1d_bytes : int;  (** remainder, the capacity Eq. 9 targets *)
  tbs_per_sm : int;  (** Eq. 3 under the chosen carveout *)
  warps_per_tb : int;
  concurrent_warps : int;  (** [tbs_per_sm * warps_per_tb], Eq. 8's factor *)
}

val configure :
  Gpusim.Config.t ->
  ?grid_tbs:int ->
  tb_threads:int ->
  num_regs:int ->
  shared_bytes:int ->
  unit ->
  (t, string) result
(** [Error] when the kernel's static shared usage exceeds every carveout
    option or occupancy is zero.  [grid_tbs], when given, additionally caps
    residency at [ceil (grid_tbs / num_sms)] — a launch too small to fill
    the device cannot put more TBs on an SM than the grid provides, which
    is what determines the paper's per-kernel baselines in Table 3. *)
