(** Kernel specialization for launch parameters unknown at compile time.

    The paper's Section 4.3 (last paragraph): when grid/block sizes are
    only known at run time, "the modified kernel function is duplicated
    with different thread throttling factors [and] selectively invoked
    according to the dynamically determined values."  This module builds
    that duplication: one {!Driver.t} per candidate geometry, deduplicated
    by the decision they lead to, plus the run-time selector. *)

type variant = {
  geometries : Analysis.geometry list;
      (** every candidate geometry this variant serves *)
  analysis : Driver.t;
  kernel : Minicuda.Ast.kernel;
      (** the transformed kernel, renamed with a [__catt_vN] suffix so the
          duplicates can coexist in one translation unit *)
}

type t = {
  original : Minicuda.Ast.kernel;
  variants : variant list;  (** at least one; in first-geometry order *)
}

val specialize :
  Gpusim.Config.t ->
  Minicuda.Ast.kernel ->
  geometries:Analysis.geometry list ->
  (t, string) result
(** Analyzes the kernel under every candidate geometry; geometries whose
    decisions produce identical transformed code share one variant.
    [Error] if the list is empty or some geometry cannot be configured. *)

val select : t -> Analysis.geometry -> variant
(** Run-time dispatch: the variant whose geometry class contains the
    launch's actual geometry.  Falls back to a fresh analysis-free match on
    the nearest concurrency if the exact geometry was not anticipated —
    i.e. the variant whose baseline concurrent-warp count is closest. *)

val program_of : t -> Minicuda.Ast.program
(** All variants as one translation unit — what the source-to-source
    compiler would emit next to the host-side dispatch table. *)
