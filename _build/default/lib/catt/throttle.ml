type decision = {
  n : int;
  m : int;
  resolved : bool;
  throttled : bool;
  active_warps_per_tb : int;
  active_tbs : int;
}

let no_throttle ~warps_per_tb ~tbs =
  {
    n = 1;
    m = 0;
    resolved = true;
    throttled = false;
    active_warps_per_tb = warps_per_tb;
    active_tbs = tbs;
  }

let divisors n =
  let rec collect d acc =
    if d > n then List.rev acc
    else collect (d + 1) (if n mod d = 0 then d :: acc else acc)
  in
  collect 1 []

let decide ~line_bytes ~l1d_bytes ~warps_per_tb ~tbs fp =
  let fits ~warps =
    Footprint.size_req_bytes ~line_bytes fp ~concurrent_warps:warps <= l1d_bytes
  in
  if (not fp.Footprint.has_locality) || fits ~warps:(warps_per_tb * tbs) then
    no_throttle ~warps_per_tb ~tbs
  else begin
    (* phase 1: warp-level (Fig. 4) — n over divisors, smallest first *)
    let candidate_n =
      List.find_opt
        (fun n -> n > 1 && fits ~warps:(warps_per_tb / n * tbs))
        (divisors warps_per_tb)
    in
    match candidate_n with
    | Some n ->
      {
        n;
        m = 0;
        resolved = true;
        throttled = true;
        active_warps_per_tb = warps_per_tb / n;
        active_tbs = tbs;
      }
    | None ->
      (* phase 2: TB-level (Fig. 5) on top of maximal warp splitting *)
      let n = warps_per_tb in
      let rec search m =
        if m > tbs - 1 then None
        else if fits ~warps:(tbs - m) then Some m
        else search (m + 1)
      in
      (match search 1 with
      | Some m ->
        {
          n;
          m;
          resolved = true;
          throttled = true;
          active_warps_per_tb = 1;
          active_tbs = tbs - m;
        }
      | None ->
        (* even one warp thrashes: leave the kernel alone (CORR) *)
        { (no_throttle ~warps_per_tb ~tbs) with resolved = false })
  end
