(** Selective L1D bypassing — the alternative contention cure the paper's
    Section 2.2 surveys and argues is weaker than throttling for accesses
    that have their own reuse.  Used by the ablation harness. *)

val default_threshold : int
(** Lines per warp at or above which an access counts as divergent (8). *)

val divergent_arrays :
  ?threshold:int ->
  Gpusim.Config.t ->
  Minicuda.Ast.kernel ->
  Analysis.geometry ->
  string list
(** The global arrays a bypassing compiler would route around the L1D:
    those with a loop load whose Eq. 7 request count meets the threshold.
    Sorted, duplicate-free. *)
