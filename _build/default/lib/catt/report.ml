(** Human-readable dumps of a CATT analysis — what the [catt] CLI prints. *)

let access_line (s : Footprint.access_summary) =
  let a = s.Footprint.access in
  let index =
    match a.Analysis.index with
    | Affine.Affine aff -> Affine.to_string aff
    | Affine.Unknown -> "<irregular>"
  in
  let kind =
    match (a.Analysis.is_load, a.Analysis.is_store) with
    | true, true -> "ld/st"
    | true, false -> "ld"
    | false, true -> "st"
    | false, false -> "?"
  in
  Printf.sprintf "    %-5s %s[%s]  req/warp=%d  reuse=%b" kind
    a.Analysis.array index s.Footprint.req_warp s.Footprint.has_reuse

let loop_block (cfg : Gpusim.Config.t) (occ : Occupancy.t)
    (l : Driver.loop_decision) =
  let fp = l.Driver.footprint in
  let d = l.Driver.decision in
  let loop = fp.Footprint.loop in
  let full_warps = occ.Occupancy.concurrent_warps in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "  loop %d (iterator %s):\n" loop.Analysis.loop_id
       loop.Analysis.loop_var);
  List.iter
    (fun s -> Buffer.add_string buf (access_line s ^ "\n"))
    fp.Footprint.summaries;
  Buffer.add_string buf
    (Printf.sprintf
       "    footprint: %d lines/warp x %d warps = %d KB (L1D %d KB)\n"
       fp.Footprint.req_per_warp full_warps
       (Footprint.size_req_bytes ~line_bytes:cfg.Gpusim.Config.line_bytes fp
          ~concurrent_warps:full_warps
       / 1024)
       (occ.Occupancy.l1d_bytes / 1024));
  let verdict =
    if not d.Throttle.resolved then
      "unresolvable: thrashes even at minimum TLP; left untouched"
    else if not d.Throttle.throttled then "fits: no throttling"
    else
      Printf.sprintf "throttle to N=%d, M=%d -> TLP (%d, %d)" d.Throttle.n
        d.Throttle.m d.Throttle.active_warps_per_tb d.Throttle.active_tbs
  in
  Buffer.add_string buf ("    decision: " ^ verdict ^ "\n");
  Buffer.contents buf

let to_string (cfg : Gpusim.Config.t) (t : Driver.t) =
  let occ = t.Driver.occupancy in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "kernel %s  grid (%d,%d) block (%d,%d)\n"
       t.Driver.kernel.Minicuda.Ast.kernel_name t.Driver.geometry.Analysis.grid_x
       t.Driver.geometry.Analysis.grid_y t.Driver.geometry.Analysis.block_x
       t.Driver.geometry.Analysis.block_y);
  Buffer.add_string buf
    (Printf.sprintf
       "  occupancy: %d warps/TB x %d TBs/SM, carveout %d KB -> L1D %d KB\n"
       occ.Occupancy.warps_per_tb occ.Occupancy.tbs_per_sm
       (occ.Occupancy.smem_carveout / 1024)
       (occ.Occupancy.l1d_bytes / 1024));
  List.iter (fun l -> Buffer.add_string buf (loop_block cfg occ l)) t.Driver.loops;
  (match t.Driver.tb_throttle_plan with
  | Some (carveout, dummy) ->
    Buffer.add_string buf
      (Printf.sprintf
         "  TB throttle: +%d B dummy shared, carveout %d KB (L1D %d KB)\n"
         dummy (carveout / 1024)
         ((cfg.Gpusim.Config.onchip_bytes - carveout) / 1024))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "  analysis time: %.1f ms\n" (t.Driver.analysis_seconds *. 1000.));
  Buffer.contents buf

let print cfg t = print_string (to_string cfg t)
