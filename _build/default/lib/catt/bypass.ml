(** Selective L1D bypassing — the alternative contention cure the paper's
    Section 2.2 surveys (Xie et al., MRPB, …) and argues is weaker than
    throttling: routing the divergent accesses around the L1D stops them
    polluting it, but "cannot prevent loss of locality for threads or
    instructions with cache locality that bypass the L1D".

    This module picks the bypass set the way those schemes do: any global
    array whose per-warp request count (Eq. 7) exceeds a divergence
    threshold.  The ablation benches run workloads with this policy in
    place of throttling to reproduce the paper's argument. *)

let default_threshold = 8  (* lines per warp; >= threshold means divergent *)

(** Arrays of [kernel] whose loop accesses are memory-divergent under
    [geometry] — the set a bypassing compiler would route around the L1D. *)
let divergent_arrays ?(threshold = default_threshold) (cfg : Gpusim.Config.t)
    kernel geometry =
  let reports = Analysis.analyze_kernel kernel geometry in
  let line_bytes = cfg.Gpusim.Config.line_bytes in
  let warp_size = cfg.Gpusim.Config.warp_size in
  let block_x = geometry.Analysis.block_x in
  List.sort_uniq compare
    (List.concat_map
       (fun (loop : Analysis.loop_report) ->
         List.filter_map
           (fun (a : Analysis.access) ->
             let req =
               Footprint.req_warp ~line_bytes ~warp_size ~block_x
                 a.Analysis.index
             in
             if a.Analysis.is_load && req >= threshold then
               Some a.Analysis.array
             else None)
           loop.Analysis.accesses)
       reports)
