(** Cache-insensitive Polybench/GPU workloads (paper Table 2, CI group).

    These kernels either coalesce perfectly (GEMM-family: within a warp all
    lanes read the same A element broadcast and consecutive B elements) or
    keep their working set comfortably inside the L1D, so CATT must select
    the baseline TLP for all of them — the paper's Fig. 8 "no regression"
    requirement. *)

let launch ~name ~grid ~block args =
  { Workload.kernel_name = name; grid; block; args }

let arr name = Gpusim.Gpu.Arr name

(* CPU reference: C = A(n×k) · B(k×m) + beta·C *)
let matmul ~n ~k ~m ?(alpha = 1.) ?(beta = 0.) a b c =
  let out = Array.make (n * m) 0. in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      let acc = ref 0. in
      for p = 0 to k - 1 do
        acc := !acc +. (a.((i * k) + p) *. b.((p * m) + j))
      done;
      out.((i * m) + j) <- (alpha *. !acc) +. (beta *. c.((i * m) + j))
    done
  done;
  out

(* ------------------------------------------------------------------ *)
(* GEMM                                                                *)
(* ------------------------------------------------------------------ *)

let gemm_n = 128

let gemm_kernel_source ~name ~size =
  Printf.sprintf
    {|
__global__ void %s(float *A, float *B, float *C) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  int i = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < %d && j < %d) {
    float acc = 0.0;
    for (int k = 0; k < %d; k++) {
      acc += A[i * %d + k] * B[k * %d + j];
    }
    C[i * %d + j] = acc;
  }
}
|}
    name size size size size size size

let gemm_launch ~name ~size args =
  launch ~name ~grid:(size / 32, size / 8) ~block:(32, 8) args

let gemm : Workload.t =
  let n = gemm_n in
  {
    name = "GEMM";
    group = Workload.Ci;
    description = "dense matrix multiplication (coalesced)";
    source = gemm_kernel_source ~name:"gemm_kernel" ~size:n;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "A" (n * n));
        ignore (Workload.upload_random dev rng "B" (n * n));
        Gpusim.Gpu.upload dev "C" (Array.make (n * n) 0.));
    launches = [ gemm_launch ~name:"gemm_kernel" ~size:n [ arr "A"; arr "B"; arr "C" ] ];
    verify =
      (fun dev ->
        let a = Gpusim.Gpu.get dev "A" in
        let b = Gpusim.Gpu.get dev "B" in
        let c_ref = matmul ~n ~k:n ~m:n a b (Array.make (n * n) 0.) in
        Workload.expect_close ~what:"C" c_ref (Gpusim.Gpu.get dev "C"));
  }

(* ------------------------------------------------------------------ *)
(* 2MM: D = A·B, E = D·C                                               *)
(* ------------------------------------------------------------------ *)

let mm2_n = 96

let mm2 : Workload.t =
  let n = mm2_n in
  {
    name = "2MM";
    group = Workload.Ci;
    description = "two chained matrix multiplications";
    source =
      gemm_kernel_source ~name:"mm2_kernel1" ~size:n
      ^ gemm_kernel_source ~name:"mm2_kernel2" ~size:n;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "A" (n * n));
        ignore (Workload.upload_random dev rng "B" (n * n));
        ignore (Workload.upload_random dev rng "Cm" (n * n));
        Gpusim.Gpu.upload dev "D" (Array.make (n * n) 0.);
        Gpusim.Gpu.upload dev "E" (Array.make (n * n) 0.));
    launches =
      [
        gemm_launch ~name:"mm2_kernel1" ~size:n [ arr "A"; arr "B"; arr "D" ];
        gemm_launch ~name:"mm2_kernel2" ~size:n [ arr "D"; arr "Cm"; arr "E" ];
      ];
    verify =
      (fun dev ->
        let a = Gpusim.Gpu.get dev "A" in
        let b = Gpusim.Gpu.get dev "B" in
        let c = Gpusim.Gpu.get dev "Cm" in
        let d_ref = matmul ~n ~k:n ~m:n a b (Array.make (n * n) 0.) in
        let e_ref = matmul ~n ~k:n ~m:n d_ref c (Array.make (n * n) 0.) in
        Workload.expect_close ~what:"E" e_ref (Gpusim.Gpu.get dev "E"));
  }

(* ------------------------------------------------------------------ *)
(* 3MM: E = A·B, F = C·D, G = E·F                                      *)
(* ------------------------------------------------------------------ *)

let mm3_n = 96

let mm3 : Workload.t =
  let n = mm3_n in
  {
    name = "3MM";
    group = Workload.Ci;
    description = "three chained matrix multiplications";
    source =
      gemm_kernel_source ~name:"mm3_kernel1" ~size:n
      ^ gemm_kernel_source ~name:"mm3_kernel2" ~size:n
      ^ gemm_kernel_source ~name:"mm3_kernel3" ~size:n;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "A" (n * n));
        ignore (Workload.upload_random dev rng "B" (n * n));
        ignore (Workload.upload_random dev rng "Cm" (n * n));
        ignore (Workload.upload_random dev rng "D" (n * n));
        Gpusim.Gpu.upload dev "E" (Array.make (n * n) 0.);
        Gpusim.Gpu.upload dev "F" (Array.make (n * n) 0.);
        Gpusim.Gpu.upload dev "G" (Array.make (n * n) 0.));
    launches =
      [
        gemm_launch ~name:"mm3_kernel1" ~size:n [ arr "A"; arr "B"; arr "E" ];
        gemm_launch ~name:"mm3_kernel2" ~size:n [ arr "Cm"; arr "D"; arr "F" ];
        gemm_launch ~name:"mm3_kernel3" ~size:n [ arr "E"; arr "F"; arr "G" ];
      ];
    verify =
      (fun dev ->
        let a = Gpusim.Gpu.get dev "A" in
        let b = Gpusim.Gpu.get dev "B" in
        let c = Gpusim.Gpu.get dev "Cm" in
        let d = Gpusim.Gpu.get dev "D" in
        let e_ref = matmul ~n ~k:n ~m:n a b (Array.make (n * n) 0.) in
        let f_ref = matmul ~n ~k:n ~m:n c d (Array.make (n * n) 0.) in
        let g_ref = matmul ~n ~k:n ~m:n e_ref f_ref (Array.make (n * n) 0.) in
        Workload.expect_close ~eps:1e-3 ~what:"G" g_ref (Gpusim.Gpu.get dev "G"));
  }

(* ------------------------------------------------------------------ *)
(* SYRK: C += A·Aᵀ — some divergence but a resident-set that fits      *)
(* ------------------------------------------------------------------ *)

let syrk_n = 32
let syrk_m = 256

let syrk_source =
  Printf.sprintf
    {|
#define N %d
#define M %d
__global__ void syrk_kernel(float *A, float *C) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  int i = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < N && j < N) {
    for (int k = 0; k < M; k++) {
      C[i * N + j] += A[i * M + k] * A[j * M + k];
    }
  }
}
|}
    syrk_n syrk_m

let syrk : Workload.t =
  let n = syrk_n and m = syrk_m in
  {
    name = "SYRK";
    group = Workload.Ci;
    description = "symmetric rank-k update, small resident set";
    source = syrk_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "A" (n * m));
        Gpusim.Gpu.upload dev "C" (Array.make (n * n) 0.));
    launches =
      [
        launch ~name:"syrk_kernel" ~grid:(n / 16, n / 8) ~block:(16, 8)
          [ arr "A"; arr "C" ];
      ];
    verify =
      (fun dev ->
        let a = Gpusim.Gpu.get dev "A" in
        let c_ref = Array.make (n * n) 0. in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            for k = 0 to m - 1 do
              c_ref.((i * n) + j) <-
                c_ref.((i * n) + j) +. (a.((i * m) + k) *. a.((j * m) + k))
            done
          done
        done;
        Workload.expect_close ~what:"C" c_ref (Gpusim.Gpu.get dev "C"));
  }

(* ------------------------------------------------------------------ *)
(* GRAM: Gram–Schmidt column normalization/projection (coalesced)      *)
(* ------------------------------------------------------------------ *)

let gram_n = 256

let gram_source =
  Printf.sprintf
    {|
#define N %d
__global__ void gram_norms(float *A, float *norms) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  if (j < N) {
    float acc = 0.0;
    for (int i = 0; i < N; i++) {
      acc += A[i * N + j] * A[i * N + j];
    }
    norms[j] = sqrtf(acc);
  }
}
__global__ void gram_normalize(float *A, float *norms, float *Q) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  if (j < N) {
    for (int i = 0; i < N; i++) {
      Q[i * N + j] = A[i * N + j] / norms[j];
    }
  }
}
__global__ void gram_project(float *A, float *Q, float *R) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  if (j < N) {
    float acc = 0.0;
    for (int i = 0; i < N; i++) {
      acc += Q[i * N + 0] * A[i * N + j];
    }
    R[j] = acc;
  }
}
|}
    gram_n

let gram : Workload.t =
  let n = gram_n in
  {
    name = "GRAM";
    group = Workload.Ci;
    description = "Gram-Schmidt process steps (coalesced column ops)";
    source = gram_source;
    setup =
      (fun dev rng ->
        (* offset away from zero so norms are well-conditioned *)
        let a =
          Array.init (n * n) (fun _ -> 0.5 +. Gpu_util.Rng.float rng 1.)
        in
        Gpusim.Gpu.upload dev "A" a;
        Gpusim.Gpu.upload dev "norms" (Array.make n 0.);
        Gpusim.Gpu.upload dev "Q" (Array.make (n * n) 0.);
        Gpusim.Gpu.upload dev "R" (Array.make n 0.));
    launches =
      [
        launch ~name:"gram_norms" ~grid:(n / 128, 1) ~block:(128, 1)
          [ arr "A"; arr "norms" ];
        launch ~name:"gram_normalize" ~grid:(n / 128, 1) ~block:(128, 1)
          [ arr "A"; arr "norms"; arr "Q" ];
        launch ~name:"gram_project" ~grid:(n / 128, 1) ~block:(128, 1)
          [ arr "A"; arr "Q"; arr "R" ];
      ];
    verify =
      (fun dev ->
        let a = Gpusim.Gpu.get dev "A" in
        let norms_ref = Array.make n 0. in
        for j = 0 to n - 1 do
          let acc = ref 0. in
          for i = 0 to n - 1 do
            acc := !acc +. (a.((i * n) + j) *. a.((i * n) + j))
          done;
          norms_ref.(j) <- sqrt !acc
        done;
        let q_ref =
          Array.init (n * n) (fun idx -> a.(idx) /. norms_ref.(idx mod n))
        in
        let r_ref = Array.make n 0. in
        for j = 0 to n - 1 do
          let acc = ref 0. in
          for i = 0 to n - 1 do
            acc := !acc +. (q_ref.(i * n) *. a.((i * n) + j))
          done;
          r_ref.(j) <- !acc
        done;
        Result.bind
          (Workload.expect_close ~what:"norms" norms_ref
             (Gpusim.Gpu.get dev "norms"))
          (fun () ->
            Result.bind
              (Workload.expect_close ~what:"Q" q_ref (Gpusim.Gpu.get dev "Q"))
              (fun () ->
                Workload.expect_close ~eps:1e-3 ~what:"R" r_ref
                  (Gpusim.Gpu.get dev "R"))));
  }

let all = [ gemm; mm2; mm3; syrk; gram ]
