(** Cache-sensitive Polybench/GPU workloads (paper Table 2, CS group).

    Scaling: the paper runs e.g. ATAX at 40K×40K on 80 SMs with a 128 KB
    L1D; we run rectangular/smaller instances on 4 SMs with a 32 KB L1D,
    chosen so each kernel's Eq. 8 footprint : L1D ratio — the contention
    driver — stays in the paper's regime (divergent kernels ~2–4x over
    capacity at full TLP, coalesced kernels well under it). *)

let launch ~name ~grid ~block args =
  { Workload.kernel_name = name; grid; block; args }

let arr name = Gpusim.Gpu.Arr name

(* ------------------------------------------------------------------ *)
(* ATAX: tmp = A·x (divergent), y = Aᵀ·tmp (coalesced)                 *)
(* ------------------------------------------------------------------ *)

let atax_nr = 2048
let atax_nc = 512

let atax_source =
  Printf.sprintf
    {|
#define NR %d
#define NC %d
__global__ void atax_kernel1(float *A, float *x, float *tmp) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < NR) {
    for (int j = 0; j < NC; j++) {
      tmp[i] += A[i * NC + j] * x[j];
    }
  }
}
__global__ void atax_kernel2(float *A, float *tmp, float *y) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  if (j < NC) {
    for (int i = 0; i < NR; i++) {
      y[j] += A[i * NC + j] * tmp[i];
    }
  }
}
|}
    atax_nr atax_nc

let atax : Workload.t =
  let nr = atax_nr and nc = atax_nc in
  {
    name = "ATAX";
    group = Workload.Cs;
    description = "matrix transpose and vector multiplication (y = Aᵀ(Ax))";
    source = atax_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "A" (nr * nc));
        ignore (Workload.upload_random dev rng "x" nc);
        Gpusim.Gpu.upload dev "tmp" (Array.make nr 0.);
        Gpusim.Gpu.upload dev "y" (Array.make nc 0.));
    launches =
      [
        launch ~name:"atax_kernel1" ~grid:(nr / 256, 1) ~block:(256, 1)
          [ arr "A"; arr "x"; arr "tmp" ];
        launch ~name:"atax_kernel2" ~grid:(nc / 256, 1) ~block:(256, 1)
          [ arr "A"; arr "tmp"; arr "y" ];
      ];
    verify =
      (fun dev ->
        let a = Gpusim.Gpu.get dev "A" in
        let x = Gpusim.Gpu.get dev "x" in
        let tmp_ref = Array.make nr 0. in
        for i = 0 to nr - 1 do
          for j = 0 to nc - 1 do
            tmp_ref.(i) <- tmp_ref.(i) +. (a.((i * nc) + j) *. x.(j))
          done
        done;
        let y_ref = Array.make nc 0. in
        for j = 0 to nc - 1 do
          for i = 0 to nr - 1 do
            y_ref.(j) <- y_ref.(j) +. (a.((i * nc) + j) *. tmp_ref.(i))
          done
        done;
        Result.bind
          (Workload.expect_close ~what:"tmp" tmp_ref (Gpusim.Gpu.get dev "tmp"))
          (fun () -> Workload.expect_close ~what:"y" y_ref (Gpusim.Gpu.get dev "y")));
  }

(* ------------------------------------------------------------------ *)
(* BICG: s = Aᵀ·r (coalesced), q = A·p (divergent)                     *)
(* ------------------------------------------------------------------ *)

let bicg_nr = 2048
let bicg_nc = 512

let bicg_source =
  Printf.sprintf
    {|
#define NR %d
#define NC %d
__global__ void bicg_kernel1(float *A, float *r, float *s) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  if (j < NC) {
    for (int i = 0; i < NR; i++) {
      s[j] += r[i] * A[i * NC + j];
    }
  }
}
__global__ void bicg_kernel2(float *A, float *p, float *q) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < NR) {
    for (int j = 0; j < NC; j++) {
      q[i] += A[i * NC + j] * p[j];
    }
  }
}
|}
    bicg_nr bicg_nc

let bicg : Workload.t =
  let nr = bicg_nr and nc = bicg_nc in
  {
    name = "BICG";
    group = Workload.Cs;
    description = "BiCGStab kernel pair (s = Aᵀr, q = Ap)";
    source = bicg_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "A" (nr * nc));
        ignore (Workload.upload_random dev rng "r" nr);
        ignore (Workload.upload_random dev rng "p" nc);
        Gpusim.Gpu.upload dev "s" (Array.make nc 0.);
        Gpusim.Gpu.upload dev "q" (Array.make nr 0.));
    launches =
      [
        launch ~name:"bicg_kernel1" ~grid:(nc / 256, 1) ~block:(256, 1)
          [ arr "A"; arr "r"; arr "s" ];
        launch ~name:"bicg_kernel2" ~grid:(nr / 256, 1) ~block:(256, 1)
          [ arr "A"; arr "p"; arr "q" ];
      ];
    verify =
      (fun dev ->
        let a = Gpusim.Gpu.get dev "A" in
        let r = Gpusim.Gpu.get dev "r" in
        let p = Gpusim.Gpu.get dev "p" in
        let s_ref = Array.make nc 0. in
        for j = 0 to nc - 1 do
          for i = 0 to nr - 1 do
            s_ref.(j) <- s_ref.(j) +. (r.(i) *. a.((i * nc) + j))
          done
        done;
        let q_ref = Array.make nr 0. in
        for i = 0 to nr - 1 do
          for j = 0 to nc - 1 do
            q_ref.(i) <- q_ref.(i) +. (a.((i * nc) + j) *. p.(j))
          done
        done;
        Result.bind
          (Workload.expect_close ~what:"s" s_ref (Gpusim.Gpu.get dev "s"))
          (fun () -> Workload.expect_close ~what:"q" q_ref (Gpusim.Gpu.get dev "q")));
  }

(* ------------------------------------------------------------------ *)
(* MVT: x1 += A·y1 (divergent), x2 += Aᵀ·y2 (coalesced)               *)
(* ------------------------------------------------------------------ *)

let mvt_n = 1024

let mvt_source =
  Printf.sprintf
    {|
#define N %d
__global__ void mvt_kernel1(float *A, float *y1, float *x1) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < N) {
    for (int j = 0; j < N; j++) {
      x1[i] += A[i * N + j] * y1[j];
    }
  }
}
__global__ void mvt_kernel2(float *A, float *y2, float *x2) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < N) {
    for (int j = 0; j < N; j++) {
      x2[i] += A[j * N + i] * y2[j];
    }
  }
}
|}
    mvt_n

let mvt : Workload.t =
  let n = mvt_n in
  {
    name = "MVT";
    group = Workload.Cs;
    description = "matrix-vector product and transpose product";
    source = mvt_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "A" (n * n));
        ignore (Workload.upload_random dev rng "y1" n);
        ignore (Workload.upload_random dev rng "y2" n);
        Gpusim.Gpu.upload dev "x1" (Array.make n 0.);
        Gpusim.Gpu.upload dev "x2" (Array.make n 0.));
    launches =
      [
        launch ~name:"mvt_kernel1" ~grid:(n / 128, 1) ~block:(128, 1)
          [ arr "A"; arr "y1"; arr "x1" ];
        launch ~name:"mvt_kernel2" ~grid:(n / 128, 1) ~block:(128, 1)
          [ arr "A"; arr "y2"; arr "x2" ];
      ];
    verify =
      (fun dev ->
        let a = Gpusim.Gpu.get dev "A" in
        let y1 = Gpusim.Gpu.get dev "y1" in
        let y2 = Gpusim.Gpu.get dev "y2" in
        let x1_ref = Array.make n 0. in
        let x2_ref = Array.make n 0. in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            x1_ref.(i) <- x1_ref.(i) +. (a.((i * n) + j) *. y1.(j));
            x2_ref.(i) <- x2_ref.(i) +. (a.((j * n) + i) *. y2.(j))
          done
        done;
        Result.bind
          (Workload.expect_close ~what:"x1" x1_ref (Gpusim.Gpu.get dev "x1"))
          (fun () ->
            Workload.expect_close ~what:"x2" x2_ref (Gpusim.Gpu.get dev "x2")));
  }

(* ------------------------------------------------------------------ *)
(* GSMV (gesummv): y = α·A·x + β·B·x — two divergent matrices at once  *)
(* ------------------------------------------------------------------ *)

let gsmv_n = 512
let gsmv_alpha = 1.5
let gsmv_beta = 2.5

let gsmv_source =
  Printf.sprintf
    {|
#define N %d
__global__ void gesummv_kernel(float *A, float *B, float *x, float *tmp, float *y) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < N) {
    for (int j = 0; j < N; j++) {
      tmp[i] += A[i * N + j] * x[j];
      y[i] += B[i * N + j] * x[j];
    }
    y[i] = %g * tmp[i] + %g * y[i];
  }
}
|}
    gsmv_n gsmv_alpha gsmv_beta

let gsmv : Workload.t =
  let n = gsmv_n in
  {
    name = "GSMV";
    group = Workload.Cs;
    description = "scalar, vector and matrix multiplication (gesummv)";
    source = gsmv_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "A" (n * n));
        ignore (Workload.upload_random dev rng "B" (n * n));
        ignore (Workload.upload_random dev rng "x" n);
        Gpusim.Gpu.upload dev "tmp" (Array.make n 0.);
        Gpusim.Gpu.upload dev "y" (Array.make n 0.));
    launches =
      [
        launch ~name:"gesummv_kernel" ~grid:(n / 128, 1) ~block:(128, 1)
          [ arr "A"; arr "B"; arr "x"; arr "tmp"; arr "y" ];
      ];
    verify =
      (fun dev ->
        let a = Gpusim.Gpu.get dev "A" in
        let b = Gpusim.Gpu.get dev "B" in
        let x = Gpusim.Gpu.get dev "x" in
        let y_ref = Array.make n 0. in
        for i = 0 to n - 1 do
          let ta = ref 0. and tb = ref 0. in
          for j = 0 to n - 1 do
            ta := !ta +. (a.((i * n) + j) *. x.(j));
            tb := !tb +. (b.((i * n) + j) *. x.(j))
          done;
          y_ref.(i) <- (gsmv_alpha *. !ta) +. (gsmv_beta *. !tb)
        done;
        Workload.expect_close ~what:"y" y_ref (Gpusim.Gpu.get dev "y"));
  }

(* ------------------------------------------------------------------ *)
(* SYR2K: C += α(A·Bᵀ + B·Aᵀ) with a 2-D thread block (the paper's    *)
(* multidimensional-TB case, Section 4.2)                              *)
(* ------------------------------------------------------------------ *)

(* A 16-row band of the rank-2k update over 240 columns.  Geometry notes:
   one warp per (16,2) TB so warps have private row sets (Eq. 8's per-warp
   footprint is then the true resident set), and a grid width of 15 —
   coprime to the 4-SM round-robin CTA stride — so the TBs resident on one
   SM cover disjoint [j] row ranges and genuinely thrash the L1D, as the
   paper's full-size 2K×2K instance does. *)
let syr2k_ni = 16
let syr2k_nj = 240
let syr2k_m = 128

let syr2k_source =
  Printf.sprintf
    {|
#define NI %d
#define NJ %d
#define M %d
__global__ void syr2k_kernel(float *A, float *B, float *C) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  int i = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < NI && j < NJ) {
    for (int k = 0; k < M; k++) {
      C[i * NJ + j] += A[i * M + k] * B[j * M + k] + B[i * M + k] * A[j * M + k];
    }
  }
}
|}
    syr2k_ni syr2k_nj syr2k_m

let syr2k : Workload.t =
  let ni = syr2k_ni and nj = syr2k_nj and m = syr2k_m in
  {
    name = "SYR2K";
    group = Workload.Cs;
    description = "symmetric rank-2k band update (2-D thread blocks)";
    source = syr2k_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "A" (nj * m));
        ignore (Workload.upload_random dev rng "B" (nj * m));
        Gpusim.Gpu.upload dev "C" (Array.make (ni * nj) 0.));
    launches =
      [
        launch ~name:"syr2k_kernel" ~grid:(nj / 16, ni / 2) ~block:(16, 2)
          [ arr "A"; arr "B"; arr "C" ];
      ];
    verify =
      (fun dev ->
        let a = Gpusim.Gpu.get dev "A" in
        let b = Gpusim.Gpu.get dev "B" in
        let c_ref = Array.make (ni * nj) 0. in
        for i = 0 to ni - 1 do
          for j = 0 to nj - 1 do
            for k = 0 to m - 1 do
              c_ref.((i * nj) + j) <-
                c_ref.((i * nj) + j)
                +. (a.((i * m) + k) *. b.((j * m) + k))
                +. (b.((i * m) + k) *. a.((j * m) + k))
            done
          done
        done;
        Workload.expect_close ~what:"C" c_ref (Gpusim.Gpu.get dev "C"));
  }

(* ------------------------------------------------------------------ *)
(* CORR: row-pairwise correlation against 8 distant lags — the paper's *)
(* "cannot fit even at minimum TLP" case (Section 5.1: CORR passes     *)
(* through CATT untouched because Eq. 9 never converges)               *)
(* ------------------------------------------------------------------ *)

let corr_rows = 2048
let corr_cols = 64
let corr_lags = 8
let corr_stride = 64  (* rows between lag partners: no intra-warp overlap *)

let corr_source =
  Printf.sprintf
    {|
#define ROWS %d
#define COLS %d
#define STRIDE %d
__global__ void corr_kernel(float *data, float *sym) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < ROWS - 8 * STRIDE) {
    for (int j = 0; j < COLS; j++) {
      float base = data[i * COLS + j];
      sym[i * 8 + 0] += base * data[(i + STRIDE) * COLS + j];
      sym[i * 8 + 1] += base * data[(i + 2 * STRIDE) * COLS + j];
      sym[i * 8 + 2] += base * data[(i + 3 * STRIDE) * COLS + j];
      sym[i * 8 + 3] += base * data[(i + 4 * STRIDE) * COLS + j];
      sym[i * 8 + 4] += base * data[(i + 5 * STRIDE) * COLS + j];
      sym[i * 8 + 5] += base * data[(i + 6 * STRIDE) * COLS + j];
      sym[i * 8 + 6] += base * data[(i + 7 * STRIDE) * COLS + j];
      sym[i * 8 + 7] += base * data[(i + 8 * STRIDE) * COLS + j];
    }
  }
}
|}
    corr_rows corr_cols corr_stride

let corr : Workload.t =
  let rows = corr_rows and cols = corr_cols in
  let active = rows - (corr_lags * corr_stride) in
  {
    name = "CORR";
    group = Workload.Cs;
    description = "row correlation against 8 lags (unresolvable footprint)";
    source = corr_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "data" (rows * cols));
        Gpusim.Gpu.upload dev "sym" (Array.make (rows * 8) 0.));
    launches =
      [
        launch ~name:"corr_kernel" ~grid:(rows / 256, 1) ~block:(256, 1)
          [ arr "data"; arr "sym" ];
      ];
    verify =
      (fun dev ->
        let data = Gpusim.Gpu.get dev "data" in
        let sym_ref = Array.make (rows * 8) 0. in
        for i = 0 to active - 1 do
          for j = 0 to cols - 1 do
            let base = data.((i * cols) + j) in
            for l = 0 to corr_lags - 1 do
              sym_ref.((i * 8) + l) <-
                sym_ref.((i * 8) + l)
                +. (base *. data.(((i + ((l + 1) * corr_stride)) * cols) + j))
            done
          done
        done;
        Workload.expect_close ~what:"sym" sym_ref (Gpusim.Gpu.get dev "sym"));
  }

let all = [ atax; bicg; mvt; gsmv; syr2k; corr ]
