type group = Cs | Ci

type kernel_launch = {
  kernel_name : string;
  grid : int * int;
  block : int * int;
  args : Gpusim.Gpu.arg list;
}

type t = {
  name : string;
  group : group;
  description : string;
  source : string;
  setup : Gpusim.Gpu.device -> Gpu_util.Rng.t -> unit;
  launches : kernel_launch list;
  verify : Gpusim.Gpu.device -> (unit, string) result;
}

let parse t = Minicuda.Parser.parse_program t.source

let kernels t =
  List.map
    (fun (k : Minicuda.Ast.kernel) -> (k.Minicuda.Ast.kernel_name, k))
    (parse t).Minicuda.Ast.kernels

let find_kernel t name =
  match List.assoc_opt name (kernels t) with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "workload %s has no kernel %s" t.name name)

let geometry_of l =
  let gx, gy = l.grid and bx, by = l.block in
  { Catt.Analysis.grid_x = gx; grid_y = gy; block_x = bx; block_y = by }

let expect_close ?(eps = 1e-4) ~what expected actual =
  if Array.length expected <> Array.length actual then
    Error
      (Printf.sprintf "%s: length mismatch (%d vs %d)" what
         (Array.length expected) (Array.length actual))
  else begin
    let bad = ref None in
    Array.iteri
      (fun i e ->
        if !bad = None then begin
          let a = actual.(i) in
          let scale = max 1. (abs_float e) in
          if abs_float (e -. a) > eps *. scale then bad := Some (i, e, a)
        end)
      expected;
    match !bad with
    | None -> Ok ()
    | Some (i, e, a) ->
      Error (Printf.sprintf "%s[%d]: expected %g, got %g" what i e a)
  end

let upload_random dev rng name len =
  let host = Array.init len (fun _ -> Gpu_util.Rng.float rng 1.) in
  Gpusim.Gpu.upload dev name host;
  host
