(** All benchmark applications, grouped as in the paper's Table 2. *)

let cs : Workload.t list = Polybench_cs.all @ Rodinia_cs.all

let ci : Workload.t list = Polybench_ci.all @ Rodinia_ci.all @ Rodinia_ci2.all

let all : Workload.t list = cs @ ci

let find name =
  match
    List.find_opt
      (fun (w : Workload.t) -> String.lowercase_ascii w.Workload.name = String.lowercase_ascii name)
      all
  with
  | Some w -> w
  | None ->
    invalid_arg
      (Printf.sprintf "unknown workload %s (known: %s)" name
         (String.concat ", " (List.map (fun w -> w.Workload.name) all)))

let names group =
  List.map (fun (w : Workload.t) -> w.Workload.name)
    (match group with `Cs -> cs | `Ci -> ci | `All -> all)
