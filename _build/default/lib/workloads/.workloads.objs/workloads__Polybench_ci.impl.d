lib/workloads/polybench_ci.ml: Array Gpu_util Gpusim Printf Result Workload
