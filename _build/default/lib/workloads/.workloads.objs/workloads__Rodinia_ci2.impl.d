lib/workloads/rodinia_ci2.ml: Array Gpu_util Gpusim Printf Workload
