lib/workloads/rodinia_ci.ml: Array Gpu_util Gpusim Printf Workload
