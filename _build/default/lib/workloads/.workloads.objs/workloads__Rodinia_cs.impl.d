lib/workloads/rodinia_cs.ml: Array Gpu_util Gpusim List Printf Result Workload
