lib/workloads/registry.ml: List Polybench_ci Polybench_cs Printf Rodinia_ci Rodinia_ci2 Rodinia_cs String Workload
