lib/workloads/workload.ml: Array Catt Gpu_util Gpusim List Minicuda Printf
