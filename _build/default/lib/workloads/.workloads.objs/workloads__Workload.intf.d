lib/workloads/workload.mli: Catt Gpu_util Gpusim Minicuda
