lib/workloads/microbench.ml: Array Gpusim Minicuda Printf
