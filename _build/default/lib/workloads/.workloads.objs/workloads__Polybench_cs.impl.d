lib/workloads/polybench_cs.ml: Array Gpusim Printf Result Workload
