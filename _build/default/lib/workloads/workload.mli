(** Common shape of a benchmark application.

    Every workload bundles its mini-CUDA source, the host-side input
    builders (deterministic, seeded through {!Gpu_util.Rng}), the launch
    sequence, and a CPU oracle that checks the simulated device produced
    the right answer.  Sizes are scaled from the paper's inputs so that
    the per-SM footprint/L1D ratio — the quantity that decides cache
    contention — matches the original (see DESIGN.md §6); each module
    documents its scaling. *)

type group = Cs | Ci
(** The paper's cache-sensitive / cache-insensitive split (Table 2). *)

type kernel_launch = {
  kernel_name : string;  (** kernel within {!t.source} *)
  grid : int * int;
  block : int * int;
  args : Gpusim.Gpu.arg list;
}

type t = {
  name : string;  (** paper abbreviation, e.g. "ATAX" *)
  group : group;
  description : string;
  source : string;  (** mini-CUDA translation unit *)
  setup : Gpusim.Gpu.device -> Gpu_util.Rng.t -> unit;
      (** allocates and fills every device array the launches reference *)
  launches : kernel_launch list;  (** executed in order *)
  verify : Gpusim.Gpu.device -> (unit, string) result;
      (** CPU oracle, run after the launch sequence *)
}

val parse : t -> Minicuda.Ast.program
(** Parse-and-cache helper (parsing is cheap; no cache, just a shorthand). *)

val kernels : t -> (string * Minicuda.Ast.kernel) list

val find_kernel : t -> string -> Minicuda.Ast.kernel

val geometry_of : kernel_launch -> Catt.Analysis.geometry

(** {2 Oracle helpers} *)

val expect_close :
  ?eps:float -> what:string -> float array -> float array -> (unit, string) result
(** Element-wise comparison with a relative+absolute tolerance. *)

val upload_random :
  Gpusim.Gpu.device -> Gpu_util.Rng.t -> string -> int -> float array
(** Fills a fresh device array with uniform values in [0, 1) and returns a
    host copy for the oracle. *)
