(** Cache-sensitive Rodinia workloads (paper Table 2, CS group).

    BFS and CFD carry the paper's irregular access patterns (Section 4.2):
    data-dependent indices that static analysis cannot bound, handled with
    the conservative [C_tid = 1] rule, so CATT leaves their TLP alone.
    KM and PF mix divergent regular phases (throttled) with coalesced ones
    (left at full TLP) — the multi-phase behaviour behind Fig. 2. *)

let launch ~name ~grid ~block args =
  { Workload.kernel_name = name; grid; block; args }

let arr name = Gpusim.Gpu.Arr name

(* ------------------------------------------------------------------ *)
(* KM (kmeans): divergent assignment phase + coalesced update phase    *)
(* ------------------------------------------------------------------ *)

let km_points = 2048
let km_features = 32
let km_clusters = 5

let km_source =
  Printf.sprintf
    {|
#define NP %d
#define F %d
#define K %d
__global__ void kmeans_assign(float *features, float *clusters, float *membership) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < NP) {
    float best_dist = 1000000000.0;
    int best = 0;
    for (int c = 0; c < K; c++) {
      float dist = 0.0;
      for (int f = 0; f < F; f++) {
        float diff = features[i * F + f] - clusters[c * F + f];
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    membership[i] = (float)best;
  }
}
__global__ void kmeans_update(float *features, float *membership, float *sums, float *counts) {
  int f = threadIdx.x;
  int c = threadIdx.y;
  for (int i = 0; i < NP; i++) {
    if (membership[i] == (float)c) {
      sums[c * F + f] += features[i * F + f];
      if (f == 0) {
        counts[c] += 1.0;
      }
    }
  }
}
|}
    km_points km_features km_clusters

let km : Workload.t =
  let np = km_points and f = km_features and k = km_clusters in
  {
    name = "KM";
    group = Workload.Cs;
    description = "k-means: divergent assignment, coalesced centroid update";
    source = km_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "features" (np * f));
        ignore (Workload.upload_random dev rng "clusters" (k * f));
        Gpusim.Gpu.upload dev "membership" (Array.make np 0.);
        Gpusim.Gpu.upload dev "sums" (Array.make (k * f) 0.);
        Gpusim.Gpu.upload dev "counts" (Array.make k 0.));
    launches =
      [
        launch ~name:"kmeans_assign" ~grid:(np / 256, 1) ~block:(256, 1)
          [ arr "features"; arr "clusters"; arr "membership" ];
        launch ~name:"kmeans_update" ~grid:(1, 1) ~block:(f, k)
          [ arr "features"; arr "membership"; arr "sums"; arr "counts" ];
      ];
    verify =
      (fun dev ->
        let features = Gpusim.Gpu.get dev "features" in
        let clusters = Gpusim.Gpu.get dev "clusters" in
        let member_ref = Array.make np 0. in
        let sums_ref = Array.make (k * f) 0. in
        let counts_ref = Array.make k 0. in
        for i = 0 to np - 1 do
          let best = ref 0 and best_dist = ref infinity in
          for c = 0 to k - 1 do
            let dist = ref 0. in
            for fi = 0 to f - 1 do
              let d = features.((i * f) + fi) -. clusters.((c * f) + fi) in
              dist := !dist +. (d *. d)
            done;
            if !dist < !best_dist then begin
              best_dist := !dist;
              best := c
            end
          done;
          member_ref.(i) <- float_of_int !best;
          counts_ref.(!best) <- counts_ref.(!best) +. 1.;
          for fi = 0 to f - 1 do
            sums_ref.((!best * f) + fi) <-
              sums_ref.((!best * f) + fi) +. features.((i * f) + fi)
          done
        done;
        Result.bind
          (Workload.expect_close ~what:"membership" member_ref
             (Gpusim.Gpu.get dev "membership"))
          (fun () ->
            Result.bind
              (Workload.expect_close ~what:"sums" sums_ref (Gpusim.Gpu.get dev "sums"))
              (fun () ->
                Workload.expect_close ~what:"counts" counts_ref
                  (Gpusim.Gpu.get dev "counts"))));
  }

(* ------------------------------------------------------------------ *)
(* PF (particle filter): likelihood kernel with two divergent loops    *)
(* and one coalesced loop, plus three coalesced service kernels        *)
(* ------------------------------------------------------------------ *)

let pf_particles = 4096
let pf_obs = 64

let pf_source =
  Printf.sprintf
    {|
#define NP %d
#define OBS %d
__global__ void pf_likelihood(float *frames, float *pattern, float *noise, float *weights) {
  int p = blockIdx.x * blockDim.x + threadIdx.x;
  if (p < NP) {
    float like = 0.0;
    for (int o = 0; o < OBS; o++) {
      float d = frames[p * OBS + o] - pattern[o];
      like += d * d;
    }
    for (int o = 0; o < OBS; o++) {
      like += 0.01 * noise[p * OBS + o];
    }
    float w = weights[p];
    for (int r = 0; r < 8; r++) {
      w = w * 0.96 + 0.04 * like;
    }
    weights[p] = w;
  }
}
__global__ void pf_partial_sums(float *weights, float *partials) {
  int t = blockIdx.x * blockDim.x + threadIdx.x;
  if (t < 256) {
    float acc = 0.0;
    for (int i = 0; i < NP / 256; i++) {
      acc += weights[i * 256 + t];
    }
    partials[t] = acc;
  }
}
__global__ void pf_normalize(float *weights, float *partials) {
  int p = blockIdx.x * blockDim.x + threadIdx.x;
  if (p < NP) {
    float total = 0.0;
    for (int i = 0; i < 256; i++) {
      total += partials[i];
    }
    weights[p] = weights[p] / total;
  }
}
__global__ void pf_cdf(float *weights, float *cdf) {
  int t = blockIdx.x * blockDim.x + threadIdx.x;
  if (t < 256) {
    float acc = 0.0;
    for (int i = 0; i < NP / 256; i++) {
      acc += weights[t * (NP / 256) + i];
      cdf[t * (NP / 256) + i] = acc;
    }
  }
}
|}
    pf_particles pf_obs

let pf : Workload.t =
  let np = pf_particles and obs = pf_obs in
  {
    name = "PF";
    group = Workload.Cs;
    description = "particle filter: divergent likelihood + coalesced service kernels";
    source = pf_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "frames" (np * obs));
        ignore (Workload.upload_random dev rng "pattern" obs);
        ignore (Workload.upload_random dev rng "noise" (np * obs));
        let w = Array.make np (1. /. float_of_int np) in
        Gpusim.Gpu.upload dev "weights" w;
        Gpusim.Gpu.upload dev "partials" (Array.make 256 0.);
        Gpusim.Gpu.upload dev "cdf" (Array.make np 0.));
    launches =
      [
        launch ~name:"pf_likelihood" ~grid:(np / 512, 1) ~block:(512, 1)
          [ arr "frames"; arr "pattern"; arr "noise"; arr "weights" ];
        launch ~name:"pf_partial_sums" ~grid:(1, 1) ~block:(256, 1)
          [ arr "weights"; arr "partials" ];
        launch ~name:"pf_normalize" ~grid:(np / 256, 1) ~block:(256, 1)
          [ arr "weights"; arr "partials" ];
        launch ~name:"pf_cdf" ~grid:(1, 1) ~block:(256, 1)
          [ arr "weights"; arr "cdf" ];
      ];
    verify =
      (fun dev ->
        let frames = Gpusim.Gpu.get dev "frames" in
        let pattern = Gpusim.Gpu.get dev "pattern" in
        let noise = Gpusim.Gpu.get dev "noise" in
        let w0 = 1. /. float_of_int np in
        let weights_ref = Array.make np 0. in
        for p = 0 to np - 1 do
          let like = ref 0. in
          for o = 0 to obs - 1 do
            let d = frames.((p * obs) + o) -. pattern.(o) in
            like := !like +. (d *. d)
          done;
          for o = 0 to obs - 1 do
            like := !like +. (0.01 *. noise.((p * obs) + o))
          done;
          let w = ref w0 in
          for _ = 0 to 7 do
            w := (!w *. 0.96) +. (0.04 *. !like)
          done;
          weights_ref.(p) <- !w
        done;
        let total = Array.fold_left ( +. ) 0. weights_ref in
        let norm_ref = Array.map (fun w -> w /. total) weights_ref in
        let cdf_ref = Array.make np 0. in
        let chunk = np / 256 in
        for t = 0 to 255 do
          let acc = ref 0. in
          for i = 0 to chunk - 1 do
            acc := !acc +. norm_ref.((t * chunk) + i);
            cdf_ref.((t * chunk) + i) <- !acc
          done
        done;
        Result.bind
          (Workload.expect_close ~eps:1e-3 ~what:"weights" norm_ref
             (Gpusim.Gpu.get dev "weights"))
          (fun () ->
            Workload.expect_close ~eps:1e-3 ~what:"cdf" cdf_ref
              (Gpusim.Gpu.get dev "cdf")));
  }

(* ------------------------------------------------------------------ *)
(* BFS: CSR frontier expansion — fully irregular (conservative C_tid)  *)
(* ------------------------------------------------------------------ *)

let bfs_nodes = 2048
let bfs_degree = 8
let bfs_rounds = 6

let bfs_source =
  Printf.sprintf
    {|
#define NV %d
__global__ void bfs_expand(int *row_ptr, int *col, int *frontier, int *visited, int *cost, int *next_frontier) {
  int n = blockIdx.x * blockDim.x + threadIdx.x;
  if (n < NV) {
    if (frontier[n] > 0) {
      for (int e = row_ptr[n]; e < row_ptr[n + 1]; e++) {
        int nb = col[e];
        if (visited[nb] == 0) {
          cost[nb] = cost[n] + 1;
          next_frontier[nb] = 1;
        }
      }
    }
  }
}
__global__ void bfs_advance(int *frontier, int *visited, int *next_frontier) {
  int n = blockIdx.x * blockDim.x + threadIdx.x;
  if (n < NV) {
    frontier[n] = next_frontier[n];
    if (next_frontier[n] > 0) {
      visited[n] = 1;
    }
    next_frontier[n] = 0;
  }
}
|}
    bfs_nodes

(* deterministic random graph in CSR form *)
let bfs_graph rng =
  let nv = bfs_nodes in
  let adj = Array.make nv [] in
  for n = 0 to nv - 1 do
    (* a ring edge keeps the graph connected; the rest are random *)
    adj.(n) <- [ (n + 1) mod nv ];
    for _ = 2 to bfs_degree do
      adj.(n) <- Gpu_util.Rng.int rng nv :: adj.(n)
    done
  done;
  let row_ptr = Array.make (nv + 1) 0. in
  let col = ref [] in
  let total = ref 0 in
  for n = 0 to nv - 1 do
    row_ptr.(n) <- float_of_int !total;
    List.iter
      (fun nb ->
        col := float_of_int nb :: !col;
        incr total)
      (List.rev adj.(n))
  done;
  row_ptr.(nv) <- float_of_int !total;
  (row_ptr, Array.of_list (List.rev !col))

let bfs : Workload.t =
  let nv = bfs_nodes in
  let expand =
    launch ~name:"bfs_expand" ~grid:(nv / 256, 1) ~block:(256, 1)
      [
        arr "row_ptr"; arr "col"; arr "frontier"; arr "visited"; arr "cost";
        arr "next_frontier";
      ]
  in
  let advance =
    launch ~name:"bfs_advance" ~grid:(nv / 256, 1) ~block:(256, 1)
      [ arr "frontier"; arr "visited"; arr "next_frontier" ]
  in
  {
    name = "BFS";
    group = Workload.Cs;
    description = "breadth-first search on a random CSR graph (irregular)";
    source = bfs_source;
    setup =
      (fun dev rng ->
        let row_ptr, col = bfs_graph rng in
        Gpusim.Gpu.upload dev "row_ptr" row_ptr;
        Gpusim.Gpu.upload dev "col" col;
        let frontier = Array.make nv 0. in
        frontier.(0) <- 1.;
        let visited = Array.make nv 0. in
        visited.(0) <- 1.;
        Gpusim.Gpu.upload dev "frontier" frontier;
        Gpusim.Gpu.upload dev "visited" visited;
        Gpusim.Gpu.upload dev "cost" (Array.make nv 0.);
        Gpusim.Gpu.upload dev "next_frontier" (Array.make nv 0.));
    launches =
      List.concat (List.init bfs_rounds (fun _ -> [ expand; advance ]));
    verify =
      (fun dev ->
        (* replay the same fixed-round frontier algorithm on the CPU *)
        let row_ptr = Gpusim.Gpu.get dev "row_ptr" in
        let col = Gpusim.Gpu.get dev "col" in
        let frontier = Array.make nv false in
        let visited = Array.make nv false in
        let cost = Array.make nv 0. in
        frontier.(0) <- true;
        visited.(0) <- true;
        for _ = 1 to bfs_rounds do
          let next = Array.make nv false in
          for n = 0 to nv - 1 do
            if frontier.(n) then
              for e = int_of_float row_ptr.(n) to int_of_float row_ptr.(n + 1) - 1
              do
                let nb = int_of_float col.(e) in
                if not visited.(nb) then begin
                  cost.(nb) <- cost.(n) +. 1.;
                  next.(nb) <- true
                end
              done
          done;
          for n = 0 to nv - 1 do
            frontier.(n) <- next.(n);
            if next.(n) then visited.(n) <- true
          done
        done;
        Workload.expect_close ~what:"cost" cost (Gpusim.Gpu.get dev "cost"));
  }

(* ------------------------------------------------------------------ *)
(* CFD: unstructured-mesh Euler solver — irregular neighbor gathers    *)
(* ------------------------------------------------------------------ *)

let cfd_cells = 1024
let cfd_nnb = 4
let cfd_iters = 3

let cfd_source =
  Printf.sprintf
    {|
#define NEL %d
__global__ void cfd_step_factor(float *variables, float *areas, float *step_factors) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < NEL) {
    float sum = 0.0;
    for (int v = 0; v < 5; v++) {
      sum += variables[i * 5 + v] * variables[i * 5 + v];
    }
    step_factors[i] = 0.5 / (sqrtf(areas[i] * sum) + 0.000001);
  }
}
__global__ void cfd_compute_flux(int *elements, float *normals, float *variables, float *fluxes) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < NEL) {
    float own0 = variables[i * 5 + 0];
    float own1 = variables[i * 5 + 1];
    float flux0 = 0.0;
    float flux1 = 0.0;
    for (int k = 0; k < 4; k++) {
      int nb = elements[i * 4 + k];
      float w = normals[i * 4 + k];
      if (nb >= 0) {
        flux0 += w * (variables[nb * 5 + 0] - own0);
        flux1 += w * (variables[nb * 5 + 1] - own1);
      }
    }
    fluxes[i * 5 + 0] = flux0;
    fluxes[i * 5 + 1] = flux1;
  }
}
__global__ void cfd_time_step(float *variables, float *fluxes, float *step_factors) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < NEL) {
    for (int v = 0; v < 2; v++) {
      variables[i * 5 + v] += step_factors[i] * fluxes[i * 5 + v];
    }
  }
}
|}
    cfd_cells

let cfd : Workload.t =
  let nel = cfd_cells in
  let geom = (nel / 128, 1) in
  let k1 =
    launch ~name:"cfd_step_factor" ~grid:geom ~block:(128, 1)
      [ arr "variables"; arr "areas"; arr "step_factors" ]
  in
  let k2 =
    launch ~name:"cfd_compute_flux" ~grid:geom ~block:(128, 1)
      [ arr "elements"; arr "normals"; arr "variables"; arr "fluxes" ]
  in
  let k3 =
    launch ~name:"cfd_time_step" ~grid:geom ~block:(128, 1)
      [ arr "variables"; arr "fluxes"; arr "step_factors" ]
  in
  {
    name = "CFD";
    group = Workload.Cs;
    description = "unstructured CFD solver (irregular neighbor accesses)";
    source = cfd_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "variables" (nel * 5));
        ignore (Workload.upload_random dev rng "areas" nel);
        ignore (Workload.upload_random dev rng "normals" (nel * cfd_nnb));
        let elements =
          Array.init (nel * cfd_nnb) (fun _ ->
              (* ~10% boundary faces (-1), rest random neighbors *)
              if Gpu_util.Rng.int rng 10 = 0 then -1.
              else float_of_int (Gpu_util.Rng.int rng nel))
        in
        Gpusim.Gpu.upload dev "elements" elements;
        Gpusim.Gpu.upload dev "fluxes" (Array.make (nel * 5) 0.);
        Gpusim.Gpu.upload dev "step_factors" (Array.make nel 0.));
    launches = List.concat (List.init cfd_iters (fun _ -> [ k1; k2; k3 ]));
    verify =
      (fun dev ->
        let elements = Gpusim.Gpu.get dev "elements" in
        let normals = Gpusim.Gpu.get dev "normals" in
        let areas = Gpusim.Gpu.get dev "areas" in
        (* recompute the full iteration sequence from the initial variables,
           which the device overwrote — rebuild them from the same RNG *)
        ignore areas;
        (* cheap structural check instead: flux recomputation from the final
           state must match the device fluxes of the last iteration *)
        let variables = Gpusim.Gpu.get dev "variables" in
        let fluxes = Gpusim.Gpu.get dev "fluxes" in
        (* the final k3 ran after the final flux computation, so recompute
           what the last k2 produced from the pre-k3 variables: undo k3 *)
        let step_factors = Gpusim.Gpu.get dev "step_factors" in
        let pre = Array.copy variables in
        for i = 0 to nel - 1 do
          for v = 0 to 1 do
            pre.((i * 5) + v) <-
              pre.((i * 5) + v) -. (step_factors.(i) *. fluxes.((i * 5) + v))
          done
        done;
        let flux_ref = Array.make (nel * 5) 0. in
        for i = 0 to nel - 1 do
          let own0 = pre.((i * 5) + 0) and own1 = pre.((i * 5) + 1) in
          let f0 = ref 0. and f1 = ref 0. in
          for k = 0 to 3 do
            let nb = int_of_float elements.((i * 4) + k) in
            let w = normals.((i * 4) + k) in
            if nb >= 0 then begin
              f0 := !f0 +. (w *. (pre.((nb * 5) + 0) -. own0));
              f1 := !f1 +. (w *. (pre.((nb * 5) + 1) -. own1))
            end
          done;
          flux_ref.((i * 5) + 0) <- !f0;
          flux_ref.((i * 5) + 1) <- !f1
        done;
        Workload.expect_close ~eps:1e-3 ~what:"fluxes" flux_ref fluxes);
  }

let all = [ km; pf; bfs; cfd ]
