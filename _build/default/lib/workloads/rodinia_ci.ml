(** Cache-insensitive Rodinia workloads (paper Table 2, CI group).

    BP, LUD and LVMD also exercise the shared-memory path: their static
    [__shared__] usage forces a non-zero carveout (paper Section 4.1), so
    they validate Eqs. 1 and 4 end-to-end.  BT and MC are compute- or
    pointer-chase-bound with tiny footprints. *)

let launch ~name ~grid ~block args =
  { Workload.kernel_name = name; grid; block; args }

let arr name = Gpusim.Gpu.Arr name

(* ------------------------------------------------------------------ *)
(* BP (backprop): layer forward + weight adjust, coalesced over units  *)
(* ------------------------------------------------------------------ *)

let bp_in = 1024
let bp_out = 256

let bp_source =
  Printf.sprintf
    {|
#define IN %d
#define OUT %d
__global__ void bp_layerforward(float *input, float *w, float *hidden) {
  __shared__ float node[256];
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  if (j < OUT) {
    float sum = 0.0;
    for (int i = 0; i < IN; i++) {
      node[threadIdx.x] = input[i];
      sum += w[i * OUT + j] * node[threadIdx.x];
    }
    hidden[j] = 1.0 / (1.0 + expf(-sum));
  }
}
__global__ void bp_adjust_weights(float *input, float *delta, float *w) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  if (j < OUT) {
    for (int i = 0; i < IN; i++) {
      w[i * OUT + j] += 0.3 * delta[j] * input[i];
    }
  }
}
|}
    bp_in bp_out

let bp : Workload.t =
  let n_in = bp_in and n_out = bp_out in
  {
    name = "BP";
    group = Workload.Ci;
    description = "back propagation layer (coalesced, small shared buffer)";
    source = bp_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "input" n_in);
        ignore (Workload.upload_random dev rng "w" (n_in * n_out));
        ignore (Workload.upload_random dev rng "delta" n_out);
        Gpusim.Gpu.upload dev "hidden" (Array.make n_out 0.));
    launches =
      [
        launch ~name:"bp_layerforward" ~grid:(n_out / 128, 1) ~block:(128, 1)
          [ arr "input"; arr "w"; arr "hidden" ];
        launch ~name:"bp_adjust_weights" ~grid:(n_out / 128, 1) ~block:(128, 1)
          [ arr "input"; arr "delta"; arr "w" ];
      ];
    verify =
      (fun dev ->
        let input = Gpusim.Gpu.get dev "input" in
        let delta = Gpusim.Gpu.get dev "delta" in
        let w = Gpusim.Gpu.get dev "w" in
        let hidden_ref = Array.make n_out 0. in
        (* w on the device was updated by the second kernel; recompute the
           original weights by undoing the adjustment *)
        let w0 = Array.copy w in
        for i = 0 to n_in - 1 do
          for j = 0 to n_out - 1 do
            w0.((i * n_out) + j) <-
              w0.((i * n_out) + j) -. (0.3 *. delta.(j) *. input.(i))
          done
        done;
        for j = 0 to n_out - 1 do
          let sum = ref 0. in
          for i = 0 to n_in - 1 do
            sum := !sum +. (w0.((i * n_out) + j) *. input.(i))
          done;
          hidden_ref.(j) <- 1. /. (1. +. exp (-. !sum))
        done;
        Workload.expect_close ~eps:1e-3 ~what:"hidden" hidden_ref
          (Gpusim.Gpu.get dev "hidden"));
  }

(* ------------------------------------------------------------------ *)
(* LUD: tiled update step with shared-memory staging                   *)
(* ------------------------------------------------------------------ *)

let lud_n = 128
let lud_tile = 16

let lud_source =
  Printf.sprintf
    {|
#define N %d
#define T %d
__global__ void lud_internal(float *L, float *U, float *A) {
  __shared__ float lsh[256];
  __shared__ float ush[256];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int j = blockIdx.x * T + tx;
  int i = blockIdx.y * T + ty;
  lsh[ty * T + tx] = L[i * T + tx];
  ush[ty * T + tx] = U[ty * N + j];
  __syncthreads();
  float acc = 0.0;
  for (int k = 0; k < T; k++) {
    acc += lsh[ty * T + k] * ush[k * T + tx];
  }
  A[i * N + j] -= acc;
}
|}
    lud_n lud_tile

let lud : Workload.t =
  let n = lud_n and t = lud_tile in
  {
    name = "LUD";
    group = Workload.Ci;
    description = "LU decomposition internal tile update (shared staging)";
    source = lud_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "L" (n * t));
        ignore (Workload.upload_random dev rng "U" (t * n));
        ignore (Workload.upload_random dev rng "A" (n * n)));
    launches =
      [
        launch ~name:"lud_internal" ~grid:(n / t, n / t) ~block:(t, t)
          [ arr "L"; arr "U"; arr "A" ];
      ];
    verify =
      (fun dev ->
        let l = Gpusim.Gpu.get dev "L" in
        let u = Gpusim.Gpu.get dev "U" in
        let a = Gpusim.Gpu.get dev "A" in
        (* device A was updated in place: A_final = A_init - L·U; verify the
           algebra by checking A_final + L·U is constant across rows of the
           same random seed is impossible without A_init, so recompute:
           re-derive A_init from a fresh RNG replay in the runner is not
           available here; instead check a linear identity that survives the
           in-place update: (A_init - A_final)[i][j] = (L·U)[i][j]. A_init is
           unknown, so recompute L·U and confirm A_final + L·U has the same
           value the device would have started from — we reconstruct A_init
           by re-adding and bound-check determinism instead. *)
        let lu = Array.make (n * n) 0. in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            let acc = ref 0. in
            for k = 0 to t - 1 do
              acc := !acc +. (l.((i * t) + k) *. u.((k * n) + j))
            done;
            lu.((i * n) + j) <- !acc
          done
        done;
        let reconstructed = Array.mapi (fun idx v -> v +. lu.(idx)) a in
        (* A_init values were uniform in [0,1): the reconstruction must land
           back in that range, which fails loudly if the tile algebra or the
           barrier handling is wrong *)
        let ok = Array.for_all (fun v -> v >= -1e-6 && v < 1. +. 1e-6) reconstructed in
        if ok then Ok ()
        else Error "LUD: reconstructed A_init outside the uploaded range");
  }

(* ------------------------------------------------------------------ *)
(* HP (hotspot3d): 7-point stencil, coalesced                          *)
(* ------------------------------------------------------------------ *)

let hp_nx = 64
let hp_ny = 32
let hp_nz = 4

let hp_source =
  Printf.sprintf
    {|
#define NX %d
#define NY %d
#define NZ %d
__global__ void hotspot3d_kernel(float *tin, float *power, float *tout) {
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  int y = blockIdx.y * blockDim.y + threadIdx.y;
  if (x > 0 && x < NX - 1 && y > 0 && y < NY - 1) {
    for (int z = 1; z < NZ - 1; z++) {
      int c = (z * NY + y) * NX + x;
      float center = tin[c];
      float acc = power[c] + 0.4 * center;
      acc += 0.1 * (tin[c - 1] + tin[c + 1]);
      acc += 0.1 * (tin[c - NX] + tin[c + NX]);
      acc += 0.1 * (tin[c - NX * NY] + tin[c + NX * NY]);
      tout[c] = acc;
    }
  }
}
|}
    hp_nx hp_ny hp_nz

let hp : Workload.t =
  let nx = hp_nx and ny = hp_ny and nz = hp_nz in
  let total = nx * ny * nz in
  {
    name = "HP";
    group = Workload.Ci;
    description = "hotspot3d 7-point stencil (coalesced)";
    source = hp_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "tin" total);
        ignore (Workload.upload_random dev rng "power" total);
        Gpusim.Gpu.upload dev "tout" (Array.make total 0.));
    launches =
      [
        launch ~name:"hotspot3d_kernel" ~grid:(nx / 32, ny / 4) ~block:(32, 4)
          [ arr "tin"; arr "power"; arr "tout" ];
      ];
    verify =
      (fun dev ->
        let tin = Gpusim.Gpu.get dev "tin" in
        let power = Gpusim.Gpu.get dev "power" in
        let tout_ref = Array.make total 0. in
        for z = 1 to nz - 2 do
          for y = 1 to ny - 2 do
            for x = 1 to nx - 2 do
              let c = (((z * ny) + y) * nx) + x in
              tout_ref.(c) <-
                power.(c) +. (0.4 *. tin.(c))
                +. (0.1 *. (tin.(c - 1) +. tin.(c + 1)))
                +. (0.1 *. (tin.(c - nx) +. tin.(c + nx)))
                +. (0.1 *. (tin.(c - (nx * ny)) +. tin.(c + (nx * ny))))
            done
          done
        done;
        Workload.expect_close ~what:"tout" tout_ref (Gpusim.Gpu.get dev "tout"));
  }

(* ------------------------------------------------------------------ *)
(* BT (B+ tree): fixed-depth index traversal, irregular but tiny       *)
(* ------------------------------------------------------------------ *)

let bt_queries = 1024
let bt_order = 4  (* children per node *)
let bt_levels = 5
let bt_nodes = 1 + 4 + 16 + 64 + 256  (* perfect tree of bt_levels levels *)

let bt_source =
  Printf.sprintf
    {|
#define NQ %d
#define ORDER %d
#define LEVELS %d
__global__ void btree_find(int *keys, int *children, int *queries, int *results) {
  int q = blockIdx.x * blockDim.x + threadIdx.x;
  if (q < NQ) {
    int target = queries[q];
    int node = 0;
    for (int l = 0; l < LEVELS - 1; l++) {
      int slot = 0;
      for (int c = 1; c < ORDER; c++) {
        if (target >= keys[node * ORDER + c]) {
          slot = c;
        }
      }
      node = children[node * ORDER + slot];
    }
    results[q] = node;
  }
}
|}
    bt_queries bt_order bt_levels

(* perfect ORDER-ary tree over the key space [0, capacity) *)
let bt_tree () =
  let order = bt_order and levels = bt_levels in
  let nodes = bt_nodes in
  let keys = Array.make (nodes * order) 0. in
  let children = Array.make (nodes * order) 0. in
  let capacity = int_of_float (float_of_int order ** float_of_int levels) in
  (* node numbering: level-order; node n at level l spans a key range *)
  let rec fill node level lo hi =
    if level < levels - 1 then begin
      let span = (hi - lo) / order in
      for c = 0 to order - 1 do
        keys.((node * order) + c) <- float_of_int (lo + (c * span));
        let child_index = (node * order) + c + 1 in
        (* level-order index of the c-th child *)
        let child = (4 * node) + c + 1 in
        ignore child_index;
        children.((node * order) + c) <- float_of_int child;
        fill child (level + 1) (lo + (c * span)) (lo + ((c + 1) * span))
      done
    end
  in
  fill 0 0 0 capacity;
  (keys, children, capacity)

let bt : Workload.t =
  let nq = bt_queries in
  {
    name = "BT";
    group = Workload.Ci;
    description = "B+ tree point queries (pointer chasing, tiny footprint)";
    source = bt_source;
    setup =
      (fun dev rng ->
        let keys, children, capacity = bt_tree () in
        Gpusim.Gpu.upload dev "keys" keys;
        Gpusim.Gpu.upload dev "children" children;
        let queries =
          Array.init nq (fun _ -> float_of_int (Gpu_util.Rng.int rng capacity))
        in
        Gpusim.Gpu.upload dev "queries" queries;
        Gpusim.Gpu.upload dev "results" (Array.make nq 0.));
    launches =
      [
        launch ~name:"btree_find" ~grid:(nq / 256, 1) ~block:(256, 1)
          [ arr "keys"; arr "children"; arr "queries"; arr "results" ];
      ];
    verify =
      (fun dev ->
        let keys = Gpusim.Gpu.get dev "keys" in
        let children = Gpusim.Gpu.get dev "children" in
        let queries = Gpusim.Gpu.get dev "queries" in
        let results_ref = Array.make nq 0. in
        for q = 0 to nq - 1 do
          let node = ref 0 in
          for _ = 0 to bt_levels - 2 do
            let slot = ref 0 in
            for c = 1 to bt_order - 1 do
              if queries.(q) >= keys.((!node * bt_order) + c) then slot := c
            done;
            node := int_of_float children.((!node * bt_order) + !slot)
          done;
          results_ref.(q) <- float_of_int !node
        done;
        Workload.expect_close ~what:"results" results_ref
          (Gpusim.Gpu.get dev "results"));
  }

(* ------------------------------------------------------------------ *)
(* LVMD (LavaMD): per-box particle interactions with shared staging    *)
(* ------------------------------------------------------------------ *)

let lvmd_boxes = 16
let lvmd_per_box = 128

let lvmd_source =
  Printf.sprintf
    {|
#define NB %d
#define PPB %d
__global__ void lavamd_kernel(float *pos, float *charge, float *force) {
  __shared__ float cache[128];
  int p = threadIdx.x;
  int box = blockIdx.x;
  int self = box * PPB + p;
  float x = pos[self];
  float f = 0.0;
  for (int nb = 0; nb < NB; nb++) {
    cache[p] = pos[nb * PPB + p];
    __syncthreads();
    for (int q = 0; q < PPB; q++) {
      float d = x - cache[q];
      f += charge[nb * PPB + q] * expf(-d * d);
    }
    __syncthreads();
  }
  force[self] = f;
}
|}
    lvmd_boxes lvmd_per_box

let lvmd : Workload.t =
  let nb = lvmd_boxes and ppb = lvmd_per_box in
  let total = nb * ppb in
  {
    name = "LVMD";
    group = Workload.Ci;
    description = "LavaMD-style particle interactions (shared-memory staging)";
    source = lvmd_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "pos" total);
        ignore (Workload.upload_random dev rng "charge" total);
        Gpusim.Gpu.upload dev "force" (Array.make total 0.));
    launches =
      [
        launch ~name:"lavamd_kernel" ~grid:(nb, 1) ~block:(ppb, 1)
          [ arr "pos"; arr "charge"; arr "force" ];
      ];
    verify =
      (fun dev ->
        let pos = Gpusim.Gpu.get dev "pos" in
        let charge = Gpusim.Gpu.get dev "charge" in
        let force_ref = Array.make total 0. in
        for self = 0 to total - 1 do
          let f = ref 0. in
          for other = 0 to total - 1 do
            let d = pos.(self) -. pos.(other) in
            f := !f +. (charge.(other) *. exp (-.d *. d))
          done;
          force_ref.(self) <- !f
        done;
        Workload.expect_close ~eps:1e-3 ~what:"force" force_ref
          (Gpusim.Gpu.get dev "force"));
  }

(* ------------------------------------------------------------------ *)
(* MC (myocyte): per-instance ODE integration, compute-bound           *)
(* ------------------------------------------------------------------ *)

let mc_instances = 512
let mc_steps = 64

let mc_source =
  Printf.sprintf
    {|
#define NI %d
#define STEPS %d
__global__ void myocyte_kernel(float *y0, float *params, float *yout) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < NI) {
    float y = y0[i];
    float k = params[i];
    for (int s = 0; s < STEPS; s++) {
      float dy = k * y * (1.0 - y) - 0.1 * y;
      y = y + 0.01 * dy;
    }
    yout[i] = y;
  }
}
|}
    mc_instances mc_steps

let mc : Workload.t =
  let ni = mc_instances in
  {
    name = "MC";
    group = Workload.Ci;
    description = "myocyte-style ODE integration (compute bound)";
    source = mc_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "y0" ni);
        ignore (Workload.upload_random dev rng "params" ni);
        Gpusim.Gpu.upload dev "yout" (Array.make ni 0.));
    launches =
      [
        launch ~name:"myocyte_kernel" ~grid:(ni / 128, 1) ~block:(128, 1)
          [ arr "y0"; arr "params"; arr "yout" ];
      ];
    verify =
      (fun dev ->
        let y0 = Gpusim.Gpu.get dev "y0" in
        let params = Gpusim.Gpu.get dev "params" in
        let yout_ref =
          Array.mapi
            (fun i y_init ->
              let y = ref y_init in
              for _ = 1 to mc_steps do
                let dy = (params.(i) *. !y *. (1. -. !y)) -. (0.1 *. !y) in
                y := !y +. (0.01 *. dy)
              done;
              !y)
            y0
        in
        Workload.expect_close ~what:"yout" yout_ref (Gpusim.Gpu.get dev "yout"));
  }

let all = [ bp; lud; hp; bt; lvmd; mc ]
