(** The remaining cache-insensitive Rodinia entries of Table 2: HM
    (Huffman) and HW (Heart Wall).  The originals depend on codec/video
    inputs; these keep the behaviourally relevant structure — HM's
    table-driven decode with small-stride segment reads, HW's windowed
    template correlation with coalesced frame accesses — on synthetic
    deterministic inputs (DESIGN.md §2). *)

let launch ~name ~grid ~block args =
  { Workload.kernel_name = name; grid; block; args }

let arr name = Gpusim.Gpu.Arr name

(* ------------------------------------------------------------------ *)
(* HM: table-driven symbol decode, 16 symbols per thread               *)
(* ------------------------------------------------------------------ *)

let hm_symbols = 8192
let hm_per_thread = 16
let hm_table = 256

let hm_source =
  Printf.sprintf
    {|
#define NT %d
#define SPT %d
__global__ void huffman_decode(int *codes, int *table, int *out) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < NT) {
    int acc = 0;
    for (int j = 0; j < SPT; j++) {
      int sym = codes[i * SPT + j];
      acc += table[sym];
    }
    out[i] = acc;
  }
}
|}
    (hm_symbols / hm_per_thread)
    hm_per_thread

let hm : Workload.t =
  let nt = hm_symbols / hm_per_thread in
  {
    name = "HM";
    group = Workload.Ci;
    description = "Huffman-style table-driven decode (small working set)";
    source = hm_source;
    setup =
      (fun dev rng ->
        let codes =
          Array.init hm_symbols (fun _ ->
              float_of_int (Gpu_util.Rng.int rng hm_table))
        in
        let table =
          Array.init hm_table (fun _ -> float_of_int (1 + Gpu_util.Rng.int rng 15))
        in
        Gpusim.Gpu.upload dev "codes" codes;
        Gpusim.Gpu.upload dev "table" table;
        Gpusim.Gpu.upload dev "out" (Array.make nt 0.));
    launches =
      [
        launch ~name:"huffman_decode" ~grid:(nt / 128, 1) ~block:(128, 1)
          [ arr "codes"; arr "table"; arr "out" ];
      ];
    verify =
      (fun dev ->
        let codes = Gpusim.Gpu.get dev "codes" in
        let table = Gpusim.Gpu.get dev "table" in
        let out_ref =
          Array.init nt (fun i ->
              let acc = ref 0. in
              for j = 0 to hm_per_thread - 1 do
                acc := !acc +. table.(int_of_float codes.((i * hm_per_thread) + j))
              done;
              !acc)
        in
        Workload.expect_close ~what:"out" out_ref (Gpusim.Gpu.get dev "out"));
  }

(* ------------------------------------------------------------------ *)
(* HW: 5x5 template correlation over a frame (coalesced windows)       *)
(* ------------------------------------------------------------------ *)

let hw_width = 128
let hw_height = 64
let hw_tpl = 5

let hw_source =
  Printf.sprintf
    {|
#define W %d
#define H %d
#define T %d
__global__ void heartwall_correlate(float *frame, float *tpl, float *response) {
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  int y = blockIdx.y * blockDim.y + threadIdx.y;
  if (x < W - T && y < H - T) {
    float acc = 0.0;
    for (int dy = 0; dy < T; dy++) {
      for (int dx = 0; dx < T; dx++) {
        acc += frame[(y + dy) * W + x + dx] * tpl[dy * T + dx];
      }
    }
    response[y * W + x] = acc;
  }
}
|}
    hw_width hw_height hw_tpl

let hw : Workload.t =
  let w = hw_width and h = hw_height and t = hw_tpl in
  {
    name = "HW";
    group = Workload.Ci;
    description = "Heart Wall-style template correlation (coalesced stencil)";
    source = hw_source;
    setup =
      (fun dev rng ->
        ignore (Workload.upload_random dev rng "frame" (w * h));
        ignore (Workload.upload_random dev rng "tpl" (t * t));
        Gpusim.Gpu.upload dev "response" (Array.make (w * h) 0.));
    launches =
      [
        launch ~name:"heartwall_correlate" ~grid:(w / 32, h / 8) ~block:(32, 8)
          [ arr "frame"; arr "tpl"; arr "response" ];
      ];
    verify =
      (fun dev ->
        let frame = Gpusim.Gpu.get dev "frame" in
        let tpl = Gpusim.Gpu.get dev "tpl" in
        let ref_out = Array.make (w * h) 0. in
        for y = 0 to h - t - 1 do
          for x = 0 to w - t - 1 do
            let acc = ref 0. in
            for dy = 0 to t - 1 do
              for dx = 0 to t - 1 do
                acc :=
                  !acc +. (frame.(((y + dy) * w) + x + dx) *. tpl.((dy * t) + dx))
              done
            done;
            ref_out.((y * w) + x) <- !acc
          done
        done;
        Workload.expect_close ~eps:1e-3 ~what:"response" ref_out
          (Gpusim.Gpu.get dev "response"));
  }

let all = [ hm; hw ]
