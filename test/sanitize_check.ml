(** Entry point for the [@sanitize] dune alias: sweep every registered
    workload kernel — baseline, CATT transform, and each BFTT candidate —
    through the sanitizer and fail if anything is dirty.  [dune runtest]
    depends on this alias, so a kernel or transform regression that mints
    a diagnostic breaks the build even without the unit suite. *)

let () =
  match Experiments.Sanitize_all.violations () with
  | [] -> print_endline "sanitize: all kernel variants clean"
  | dirty ->
    List.iter
      (fun ((label : string), (r : Experiments.Sanitize_all.row)) ->
        Printf.eprintf "sanitize: %s / %s / %s / %s\n%s" label
          r.Experiments.Sanitize_all.workload r.Experiments.Sanitize_all.kernel
          r.Experiments.Sanitize_all.variant
          (Sanitize.Diag.to_report r.Experiments.Sanitize_all.diags))
      dirty;
    exit 1
