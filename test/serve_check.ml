(** End-to-end smoke for the daemon binary, run under the [@serve]
    alias (and hence [dune runtest]): boot [catt_d serve] on a
    Unix-domain socket, send one request of each kind over the socket,
    check every response, then SIGTERM it and insist on a clean exit 0 —
    the no-orphaned-domains guarantee.

    Usage: serve_check CATT_D_BINARY *)

module Json = Gpu_util.Json
module Scheme = Experiments.Scheme
module Protocol = Serve.Protocol

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok   %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL %s\n%!" name
  end

let fatal fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("serve_check: " ^ msg);
      exit 1)
    fmt

(* ------------------------------------------------------------------ *)

let wait_for ?(timeout = 20.0) what cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then fatal "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let requests =
  [
    {|{"schema_version":1,"id":"sim","tenant":"smoke","kind":"simulate","workload":"ATAX","scheme":"baseline"}|};
    {|{"schema_version":1,"id":"co","tenant":"smoke","kind":"simulate","workload":"ATAX","scheme":"baseline","co_resident":{"workload":"MVT","scheme":"baseline"}}|};
    {|{"schema_version":1,"id":"an","tenant":"smoke","kind":"analyze","workload":"ATAX"}|};
    {|{"schema_version":1,"id":"ex","tenant":"smoke","kind":"explain","workload":"MVT"}|};
    {|{"schema_version":1,"id":"st","tenant":"smoke","kind":"stats"}|};
  ]

let read_responses fd n =
  let buf = Buffer.create 8192 in
  let chunk = Bytes.create 8192 in
  let deadline = Unix.gettimeofday () +. 60.0 in
  let lines () =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (Buffer.contents buf))
  in
  let rec go () =
    if List.length (lines ()) >= n then lines ()
    else if Unix.gettimeofday () > deadline then
      fatal "timed out waiting for %d responses (got %d)" n
        (List.length (lines ()))
    else
      match Unix.select [ fd ] [] [] 0.5 with
      | [], _, _ -> go ()
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> fatal "server closed the connection early"
        | got ->
          Buffer.add_subbytes buf chunk 0 got;
          go ())
  in
  go ()

let () =
  if Array.length Sys.argv < 2 then fatal "usage: serve_check CATT_D_BINARY";
  let binary = Sys.argv.(1) in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "catt-serve-smoke-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let sock = Filename.concat dir "catt_d.sock" in
  let pid =
    Unix.create_process binary
      [|
        binary; "serve"; "--socket"; sock; "--jobs"; "2"; "--queue-cap"; "8";
        "--sms"; "2"; "--no-cache";
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      (* belt and braces: if anything above failed, don't leak the daemon *)
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [ Unix.WNOHANG ] pid) with Unix.Unix_error _ -> ());
      (try Unix.unlink sock with Unix.Unix_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      wait_for "the socket to appear" (fun () -> Sys.file_exists sock);
      check "server booted and bound its socket" true;
      let conn = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect conn (Unix.ADDR_UNIX sock);
      let payload = String.concat "\n" requests ^ "\n" in
      let b = Bytes.of_string payload in
      let sent = Unix.write conn b 0 (Bytes.length b) in
      check "all requests written" (sent = Bytes.length b);
      let responses =
        List.map
          (fun line ->
            match Protocol.response_of_json (Result.get_ok (Json.of_string line)) with
            | Ok r -> r
            | Error msg -> fatal "bad response %S: %s" line msg)
          (read_responses conn (List.length requests))
      in
      Unix.close conn;
      check "one response per request"
        (List.length responses = List.length requests);
      List.iter
        (fun id ->
          match
            List.find_opt (fun r -> r.Protocol.resp_id = id) responses
          with
          | Some { Protocol.result = Ok _; _ } -> check ("request " ^ id ^ " ok") true
          | Some { Protocol.result = Error (_, msg); _ } ->
            check (Printf.sprintf "request %s ok (error: %s)" id msg) false
          | None -> check ("request " ^ id ^ " answered") false)
        [ "sim"; "co"; "an"; "ex"; "st" ];
      (* the admin client against the live daemon: `catt_d stats --json`
         must fetch the envelope over the socket and print it whole *)
      let out_r, out_w = Unix.pipe ~cloexec:false () in
      let stats_pid =
        Unix.create_process binary
          [| binary; "stats"; "--socket"; sock; "--json" |]
          Unix.stdin out_w Unix.stderr
      in
      Unix.close out_w;
      let out = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read out_r chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes out chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      Unix.close out_r;
      let _, stats_status = Unix.waitpid [] stats_pid in
      check "catt_d stats exits 0" (stats_status = Unix.WEXITED 0);
      (match Json.of_string (String.trim (Buffer.contents out)) with
      | Error msg -> check (Printf.sprintf "stats --json parses (%s)" msg) false
      | Ok payload ->
        check "stats --json parses" true;
        check "stats envelope is versioned"
          (Json.member_opt "stats_version" payload = Some (Json.Int 1));
        let tenants =
          match Json.member_opt "tenants" payload with
          | Some (Json.List ts) -> ts
          | _ -> []
        in
        check "stats reports the smoke tenant"
          (List.exists
             (fun t -> Json.member_opt "tenant" t = Some (Json.String "smoke"))
             tenants);
        (match Json.member_opt "server" payload with
        | Some srv ->
          check "server block carries the configured queue cap"
            (Json.member_opt "queue_cap" srv = Some (Json.Int 8))
        | None -> check "server block present in live stats" false));
      (* clean shutdown: SIGTERM must drain, join every domain, exit 0 *)
      Unix.kill pid Sys.sigterm;
      let status = ref None in
      wait_for "the daemon to exit" (fun () ->
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> false
          | _, s ->
            status := Some s;
            true);
      (match !status with
      | Some (Unix.WEXITED 0) -> check "SIGTERM exits 0 (no orphaned domains)" true
      | Some (Unix.WEXITED n) ->
        check (Printf.sprintf "SIGTERM exits 0 (got exit %d)" n) false
      | Some (Unix.WSIGNALED n) ->
        check (Printf.sprintf "SIGTERM exits 0 (killed by signal %d)" n) false
      | Some (Unix.WSTOPPED _) | None -> check "SIGTERM exits 0" false);
      check "socket file removed on shutdown" (not (Sys.file_exists sock));
      if !failures > 0 then begin
        Printf.printf "serve_check: %d failure(s)\n%!" !failures;
        exit 1
      end;
      print_endline "serve_check: all checks passed")
