(** Driver for the observability test suite (the [@obs] alias, pulled
    into [dune runtest]).

    With [GOLDEN_REGEN=<absolute dir>] set, rewrites the golden explain
    snapshot into that directory instead of running the suite. *)

let () =
  match Sys.getenv_opt "GOLDEN_REGEN" with
  | Some dir -> Test_obs.regen_goldens dir
  | None -> Alcotest.run "catt-obs" Test_obs.tests
