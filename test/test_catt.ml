(** Tests for the CATT analyzer and transformations: affine index algebra
    (Eq. 5), request estimation (Eq. 7), footprints (Eqs. 6/8), occupancy
    configuration (Eqs. 1-4), the throttling-factor search (Eq. 9), and the
    semantic preservation of both code transformations. *)

module Affine = Catt.Affine
module Analysis = Catt.Analysis
module Footprint = Catt.Footprint
module Occupancy = Catt.Occupancy
module Throttle = Catt.Throttle
module Transform = Catt.Transform
module Driver = Catt.Driver

let cfg = Gpusim.Config.scaled ~num_sms:4 ~onchip_bytes:(32 * 1024) ()
let volta = Gpusim.Config.volta ~num_sms:4 ()

let geo ?(grid = (16, 1)) ?(block = (256, 1)) () =
  {
    Analysis.grid_x = fst grid;
    grid_y = snd grid;
    block_x = fst block;
    block_y = snd block;
  }

(* ---------------------------- Affine ------------------------------- *)

let affine = Alcotest.testable Affine.pp Affine.equal

let test_affine_algebra () =
  let tid = Affine.(Affine { (const 0) with c_tx = 1 }) in
  let j = Affine.(Affine (iter "j")) in
  (* 4096*tid + j : the paper's A[i * NX + j] after i = …tid… *)
  let idx = Affine.add (Affine.mul tid (Affine.Affine (Affine.const 4096))) j in
  match idx with
  | Affine.Affine a ->
    Alcotest.(check int) "C_tid" 4096 a.Affine.c_tx;
    Alcotest.(check int) "C_j" 1 (Affine.coeff_of_iter a "j")
  | Affine.Unknown -> Alcotest.fail "should stay affine"

let test_affine_nonlinear_unknown () =
  let tid = Affine.(Affine { (const 0) with c_tx = 1 }) in
  Alcotest.(check bool) "tid*tid unknown" true (Affine.mul tid tid = Affine.Unknown)

let test_affine_div_exact () =
  let v = Affine.(Affine { (const 8) with c_tx = 4 }) in
  (match Affine.div_exact v 4 with
  | Affine.Affine a ->
    Alcotest.(check int) "const" 2 a.Affine.const;
    Alcotest.(check int) "c_tx" 1 a.Affine.c_tx
  | Affine.Unknown -> Alcotest.fail "exact division");
  Alcotest.(check bool) "inexact is unknown" true (Affine.div_exact v 3 = Affine.Unknown)

let test_affine_eval_lane () =
  (* 2-D block 16 wide: lane 17 is (tx=1, ty=1) *)
  let a = { (Affine.const 5) with Affine.c_tx = 10; c_ty = 100 } in
  Alcotest.(check int) "lane 17" (5 + 10 + 100)
    (Affine.eval_lane a ~bdim_x:16 ~lane:17 ~base_linear_tid:0)

let prop_affine_add_matches_eval =
  QCheck.Test.make ~name:"affine add/scale match pointwise eval" ~count:300
    QCheck.(quad (int_range (-50) 50) (int_range (-50) 50) (int_range (-50) 50) (int_range 0 31))
    (fun (c1, t1, t2, lane) ->
      let a = { (Affine.const c1) with Affine.c_tx = t1 } in
      let b = { (Affine.const 7) with Affine.c_tx = t2 } in
      match Affine.add (Affine.Affine a) (Affine.Affine b) with
      | Affine.Affine sum ->
        Affine.eval_lane sum ~bdim_x:32 ~lane ~base_linear_tid:0
        = Affine.eval_lane a ~bdim_x:32 ~lane ~base_linear_tid:0
          + Affine.eval_lane b ~bdim_x:32 ~lane ~base_linear_tid:0
      | Affine.Unknown -> false)

(* --------------------------- Analysis ------------------------------ *)

let analyze src g = Analysis.analyze_kernel (Minicuda.Parser.parse_kernel src) g

let atax_src =
  "#define NX 4096\n\
   __global__ void atax_kernel1(float *A, float *B, float *tmp) {\n\
   int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
   if (i < NX) { for (int j = 0; j < NX; j++) { tmp[i] += A[i * NX + j] * B[j]; } }\n\
   }"

let test_analysis_atax_accesses () =
  match analyze atax_src (geo ()) with
  | [ loop ] ->
    Alcotest.(check int) "three deduped accesses" 3 (List.length loop.Analysis.accesses);
    let find arr =
      List.find (fun (a : Analysis.access) -> a.Analysis.array = arr) loop.Analysis.accesses
    in
    (match (find "A").Analysis.index with
    | Affine.Affine a -> Alcotest.(check int) "A's C_tid = NX" 4096 a.Affine.c_tx
    | Affine.Unknown -> Alcotest.fail "A affine");
    (match (find "B").Analysis.index with
    | Affine.Affine a ->
      Alcotest.(check int) "B's C_tid = 0" 0 a.Affine.c_tx;
      Alcotest.(check int) "B's C_j = 1" 1 (Affine.coeff_of_iter a "j")
    | Affine.Unknown -> Alcotest.fail "B affine");
    let tmp = find "tmp" in
    Alcotest.(check bool) "tmp merged ld/st" true
      (tmp.Analysis.is_load && tmp.Analysis.is_store)
  | loops -> Alcotest.failf "expected 1 loop, found %d" (List.length loops)

let test_analysis_irregular_index () =
  let src =
    "__global__ void k(int *col, float *x, float *y) {\n\
     int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
     for (int j = 0; j < 8; j++) { y[i] += x[col[i * 8 + j]]; }\n\
     }"
  in
  match analyze src (geo ()) with
  | [ loop ] ->
    let find arr =
      List.find (fun (a : Analysis.access) -> a.Analysis.array = arr) loop.Analysis.accesses
    in
    Alcotest.(check bool) "x is irregular" true ((find "x").Analysis.index = Affine.Unknown);
    Alcotest.(check bool) "col is affine" true ((find "col").Analysis.index <> Affine.Unknown)
  | _ -> Alcotest.fail "one loop"

let test_analysis_accumulator_widening () =
  (* idx = idx + 32 per iteration: a strided accumulator *)
  let src =
    "__global__ void k(float *a, float *out) {\n\
     int i = threadIdx.x;\n\
     int idx = i;\n\
     float acc = 0.0;\n\
     for (int j = 0; j < 16; j++) { acc += a[idx]; idx = idx + 32; }\n\
     out[i] = acc;\n\
     }"
  in
  match analyze src (geo ()) with
  | [ loop ] -> (
    let a = List.find (fun (x : Analysis.access) -> x.Analysis.array = "a") loop.Analysis.accesses in
    match a.Analysis.index with
    | Affine.Affine aff ->
      Alcotest.(check int) "C_tid" 1 aff.Affine.c_tx;
      Alcotest.(check int) "C_j = 32 (widened)" 32 (Affine.coeff_of_iter aff "j")
    | Affine.Unknown -> Alcotest.fail "accumulator should widen to affine")
  | _ -> Alcotest.fail "one loop"

let test_analysis_nested_loops_one_report () =
  let src =
    "__global__ void k(float *a, float *out) {\n\
     int i = threadIdx.x;\n\
     for (int c = 0; c < 4; c++) { for (int f = 0; f < 8; f++) { out[i] += a[c * 8 + f]; } }\n\
     }"
  in
  Alcotest.(check int) "one top-level loop" 1 (List.length (analyze src (geo ())))

let test_analysis_sequential_loops () =
  let src =
    "__global__ void k(float *a, float *out) {\n\
     int i = threadIdx.x;\n\
     for (int j = 0; j < 4; j++) { out[i] += a[j]; }\n\
     for (int j = 0; j < 4; j++) { out[i] += a[j + 4]; }\n\
     }"
  in
  Alcotest.(check int) "two reports" 2 (List.length (analyze src (geo ())))

let test_analysis_shared_excluded () =
  let src =
    "__global__ void k(float *a) {\n\
     __shared__ float s[64];\n\
     int i = threadIdx.x;\n\
     for (int j = 0; j < 4; j++) { s[i] += a[i * 64 + j]; }\n\
     }"
  in
  match analyze src (geo ()) with
  | [ loop ] ->
    Alcotest.(check (list string)) "only the global array" [ "a" ]
      (List.map (fun (x : Analysis.access) -> x.Analysis.array) loop.Analysis.accesses)
  | _ -> Alcotest.fail "one loop"

(* --------------------------- Footprint ----------------------------- *)

let req index =
  Footprint.req_warp ~line_bytes:128 ~warp_size:32 ~block_x:256 index

let test_req_warp_eq7 () =
  let with_ctid c = Affine.Affine { (Affine.const 0) with Affine.c_tx = c } in
  Alcotest.(check int) "C_tid=0 -> 1" 1 (req (with_ctid 0));
  Alcotest.(check int) "C_tid=1 -> 1" 1 (req (with_ctid 1));
  Alcotest.(check int) "C_tid=8 -> 8 (paper example)" 8 (req (with_ctid 8));
  Alcotest.(check int) "C_tid=32 -> 32" 32 (req (with_ctid 32));
  Alcotest.(check int) "C_tid=4096 -> 32 (clamped)" 32 (req (with_ctid 4096));
  (* Section 4.2: irregular accesses are fully uncoalesced — one request
     per *thread*, not per warp (the old value 1 was maximally optimistic
     and let irregular CS kernels escape throttling) *)
  Alcotest.(check int) "irregular -> warp_size (uncoalesced)" 32
    (req Affine.Unknown);
  Alcotest.(check int) "irregular scales with warp_size" 16
    (Footprint.req_warp ~line_bytes:128 ~warp_size:16 ~block_x:256
       Affine.Unknown)

let test_req_warp_2d_block () =
  (* 16-wide block: a warp spans ty∈{0,1}; index c_ty*M reaches 2 rows *)
  let a = { (Affine.const 0) with Affine.c_ty = 4096 } in
  Alcotest.(check int) "2 lines for 2 rows" 2
    (Footprint.req_warp ~line_bytes:128 ~warp_size:32 ~block_x:16 (Affine.Affine a))

(* Negative offsets and strides through the sorted-dedup path.  elem = 4B,
   line = 128B, so 32 elements per line and index -32 is exactly
   byte = -line_bytes — the floor-division edge where truncating division
   would merge or split lines spuriously. *)
let test_req_warp_negative_offsets () =
  let aff ?(const = 0) c = Affine.Affine { (Affine.const const) with Affine.c_tx = c } in
  (* idx -32..-1: bytes -128..-4 all live in line -1 (floor, not truncate:
     truncation maps byte -4 to line 0 and would count 2 lines) *)
  Alcotest.(check int) "[-line_bytes, 0) is one line" 1 (req (aff ~const:(-32) 1));
  (* idx -1..30 straddles byte 0: lines {-1, 0} must stay distinct
     (truncation folds byte -4 into line 0 and undercounts to 1) *)
  Alcotest.(check int) "straddling zero -> 2 lines" 2 (req (aff ~const:(-1) 1));
  (* all lanes at the same negative address *)
  Alcotest.(check int) "uniform negative -> 1 line" 1 (req (aff ~const:(-32) 0));
  (* negative unit stride mirrors the positive one: idx 0..-31 touches
     lines {0, -1} *)
  Alcotest.(check int) "stride -1 from 0 -> 2 lines" 2 (req (aff (-1)));
  (* one line per lane in either direction *)
  Alcotest.(check int) "stride -32 fully diverges" 32 (req (aff (-32)));
  (* bytes 0, -32, ..., -992: one more line than the positive mirror
     because byte 0 sits on a boundary and byte -32 is already line -1 *)
  Alcotest.(check int) "stride -8 -> 9 lines" 9 (req (aff (-8)))

let test_reuse_eq6 () =
  let access coeff =
    {
      Analysis.array = "a";
      index = Affine.Affine { (Affine.const 0) with Affine.iters = [ ("j", coeff) ] };
      is_load = true;
      is_store = false;
      innermost_iter = Some "j";
    }
  in
  Alcotest.(check bool) "C_i=1 reuses" true (Footprint.has_reuse ~line_bytes:128 (access 1));
  Alcotest.(check bool) "C_i=32 reuses (boundary)" true
    (Footprint.has_reuse ~line_bytes:128 (access 32));
  Alcotest.(check bool) "C_i=33 does not" false
    (Footprint.has_reuse ~line_bytes:128 (access 33))

let test_footprint_atax () =
  match analyze atax_src (geo ()) with
  | [ loop ] ->
    let fp = Footprint.of_loop ~line_bytes:128 ~warp_size:32 ~block_x:256 loop in
    Alcotest.(check int) "34 lines per warp (32+1+1)" 34 fp.Footprint.req_per_warp;
    Alcotest.(check bool) "has locality" true fp.Footprint.has_locality;
    Alcotest.(check int) "Eq. 8 at 32 warps" (34 * 32)
      (Footprint.size_req_lines fp ~concurrent_warps:32)
  | _ -> Alcotest.fail "one loop"

(* --------------------------- Occupancy ----------------------------- *)

let test_occupancy_configure_no_shared () =
  match Occupancy.configure volta ~tb_threads:256 ~num_regs:16 ~shared_bytes:0 () with
  | Ok occ ->
    Alcotest.(check int) "carveout 0" 0 occ.Occupancy.smem_carveout;
    Alcotest.(check int) "full L1D" (128 * 1024) occ.Occupancy.l1d_bytes;
    Alcotest.(check int) "8 TBs" 8 occ.Occupancy.tbs_per_sm
  | Error e -> Alcotest.fail e

let test_occupancy_configure_shared_eq4 () =
  (* 4KB per TB, 8 concurrent TBs -> needs 32KB; smallest option is 32KB *)
  match Occupancy.configure volta ~tb_threads:256 ~num_regs:16 ~shared_bytes:4096 () with
  | Ok occ ->
    Alcotest.(check int) "carveout 32KB" (32 * 1024) occ.Occupancy.smem_carveout;
    Alcotest.(check int) "L1D 96KB" (96 * 1024) occ.Occupancy.l1d_bytes
  | Error e -> Alcotest.fail e

let test_occupancy_grid_cap () =
  match
    Occupancy.configure volta ~grid_tbs:8 ~tb_threads:256 ~num_regs:16 ~shared_bytes:0 ()
  with
  | Ok occ -> Alcotest.(check int) "8 TBs / 4 SMs = 2" 2 occ.Occupancy.tbs_per_sm
  | Error e -> Alcotest.fail e

let test_occupancy_oversized_shared () =
  match Occupancy.configure volta ~tb_threads:256 ~num_regs:16 ~shared_bytes:(200 * 1024) () with
  | Ok _ -> Alcotest.fail "should not fit"
  | Error _ -> ()

(* --------------------------- Throttle ------------------------------ *)

let fp_with_req ?(reuse = true) req_per_warp =
  let summary =
    {
      Footprint.access =
        {
          Analysis.array = "a";
          index = Affine.Affine (Affine.const 0);
          is_load = true;
          is_store = false;
          innermost_iter = Some "j";
        };
      req_warp = req_per_warp;
      has_reuse = reuse;
      irregular = false;
    }
  in
  {
    Footprint.loop =
      { Analysis.loop_id = 0; loop_var = "j"; accesses = []; has_barrier = false };
    summaries = [ summary ];
    req_per_warp;
    shared_lines = 0;
    has_locality = reuse;
    any_irregular = false;
  }

let decide ?(l1d = 32 * 1024) ?(warps = 8) ?(tbs = 4) req =
  Throttle.decide ~line_bytes:128 ~l1d_bytes:l1d ~warps_per_tb:warps ~tbs
    (fp_with_req req)

let test_throttle_fits_untouched () =
  let d = decide 2 in
  Alcotest.(check bool) "no throttle" false d.Throttle.throttled

let test_throttle_no_locality_untouched () =
  let d =
    Throttle.decide ~line_bytes:128 ~l1d_bytes:(32 * 1024) ~warps_per_tb:8 ~tbs:4
      (fp_with_req ~reuse:false 1000)
  in
  Alcotest.(check bool) "nothing to preserve" false d.Throttle.throttled

let test_throttle_atax_paper_numbers () =
  (* the paper's ATAX#1: 34 lines/warp, (8,4) baseline.
     max L1D (here 32KB=256 lines): 34*32w=1088 -> N=4 gives 34*8=272 no,
     wait: N=2 -> 16 warps -> 544; N=4 -> 8 warps -> 272; N=8 -> 4 warps ->
     136 <= 256. Under 128KB (1024 lines): N=2 -> 544 <= 1024. *)
  let d32 = decide ~l1d:(32 * 1024) 34 in
  Alcotest.(check int) "N at 32KB" 8 d32.Throttle.n;
  Alcotest.(check int) "TLP warps" 1 d32.Throttle.active_warps_per_tb;
  let d128 = decide ~l1d:(128 * 1024) 34 in
  Alcotest.(check int) "N at 128KB" 2 d128.Throttle.n;
  Alcotest.(check int) "TLP warps" 4 d128.Throttle.active_warps_per_tb

let test_throttle_tb_level () =
  (* even one warp per TB overflows -> reduce TBs *)
  let d = decide ~l1d:(32 * 1024) ~warps:8 ~tbs:4 100 in
  (* 100 lines: 1 warp x 4 TBs = 400 > 256; 1 x 2 = 200 fits -> m = 2 *)
  Alcotest.(check int) "n maxed" 8 d.Throttle.n;
  Alcotest.(check int) "m" 2 d.Throttle.m;
  Alcotest.(check int) "2 TBs" 2 d.Throttle.active_tbs

let test_throttle_unresolvable () =
  (* > 256 lines for a single warp: the CORR case.  The "even one warp
     thrashes" fallback must hand back the exact baseline TLP, not a
     half-applied split. *)
  let d = decide ~l1d:(32 * 1024) 300 in
  Alcotest.(check bool) "unresolved" false d.Throttle.resolved;
  Alcotest.(check bool) "left untouched" false d.Throttle.throttled;
  Alcotest.(check int) "n back to 1" 1 d.Throttle.n;
  Alcotest.(check int) "m back to 0" 0 d.Throttle.m;
  Alcotest.(check int) "baseline warps" 8 d.Throttle.active_warps_per_tb;
  Alcotest.(check int) "baseline TBs" 4 d.Throttle.active_tbs

let test_throttle_single_warp_tbs () =
  (* warps_per_tb = 1: no divisor > 1 exists, so phase 1 can never fire
     and contention goes straight to the TB phase *)
  let d = decide ~l1d:(32 * 1024) ~warps:1 ~tbs:4 100 in
  (* 100 lines x 4 TBs = 400 > 256; 2 TBs = 200 fits -> m = 2 *)
  Alcotest.(check bool) "throttled" true d.Throttle.throttled;
  Alcotest.(check bool) "resolved" true d.Throttle.resolved;
  Alcotest.(check int) "m" 2 d.Throttle.m;
  Alcotest.(check int) "2 TBs" 2 d.Throttle.active_tbs;
  Alcotest.(check int) "1 warp" 1 d.Throttle.active_warps_per_tb;
  (* and a fitting footprint is simply left alone *)
  let d = decide ~l1d:(32 * 1024) ~warps:1 ~tbs:4 10 in
  Alcotest.(check bool) "fits untouched" false d.Throttle.throttled

let test_throttle_single_tb () =
  (* tbs = 1: the TB phase has no room (m ranges over 1..tbs-1 = empty),
     so either a warp split resolves it or nothing does *)
  let d = decide ~l1d:(32 * 1024) ~warps:8 ~tbs:1 100 in
  (* 100 lines: 8 warps = 800 > 256; n=4 -> 2 warps -> 200 fits *)
  Alcotest.(check int) "n" 4 d.Throttle.n;
  Alcotest.(check int) "m" 0 d.Throttle.m;
  Alcotest.(check bool) "resolved" true d.Throttle.resolved;
  (* too big for even one warp: unresolved, baseline kept *)
  let d = decide ~l1d:(32 * 1024) ~warps:8 ~tbs:1 300 in
  Alcotest.(check bool) "unresolved" false d.Throttle.resolved;
  Alcotest.(check bool) "untouched" false d.Throttle.throttled;
  Alcotest.(check int) "baseline TB kept" 1 d.Throttle.active_tbs

let test_throttle_single_warp_single_tb () =
  (* (1,1) is the floor of the search space: any overflow is unresolved *)
  let d = decide ~l1d:(32 * 1024) ~warps:1 ~tbs:1 300 in
  Alcotest.(check bool) "unresolved" false d.Throttle.resolved;
  Alcotest.(check bool) "untouched" false d.Throttle.throttled;
  Alcotest.(check int) "1 warp" 1 d.Throttle.active_warps_per_tb;
  Alcotest.(check int) "1 TB" 1 d.Throttle.active_tbs

let test_throttle_divisors () =
  Alcotest.(check (list int)) "8" [ 1; 2; 4; 8 ] (Throttle.divisors 8);
  Alcotest.(check (list int)) "6" [ 1; 2; 3; 6 ] (Throttle.divisors 6);
  Alcotest.(check (list int)) "1" [ 1 ] (Throttle.divisors 1)

let prop_throttle_result_fits =
  QCheck.Test.make ~name:"Eq. 9 result footprint fits when resolved+throttled"
    ~count:300
    QCheck.(triple (int_range 1 400) (oneofl [ 1; 2; 4; 6; 8; 16 ]) (int_range 1 16))
    (fun (req, warps, tbs) ->
      let d =
        Throttle.decide ~line_bytes:128 ~l1d_bytes:(32 * 1024) ~warps_per_tb:warps
          ~tbs (fp_with_req req)
      in
      if d.Throttle.resolved && d.Throttle.throttled then
        req * d.Throttle.active_warps_per_tb * d.Throttle.active_tbs * 128
        <= 32 * 1024
      else true)

(* -------------------------- Transform ------------------------------ *)

let parse k = Minicuda.Parser.parse_kernel k

let test_transform_warp_split_structure () =
  let k = parse atax_src in
  let t =
    Transform.warp_throttle k ~loop_id:0 ~n:4 ~warps_per_tb:8 ~warp_size:32
      ~one_dim_block:true
  in
  (* 4 guarded copies + 4 barriers *)
  let barriers =
    Minicuda.Ast.fold_block
      (fun acc s -> if s.Minicuda.Ast.sk = Minicuda.Ast.Syncthreads then acc + 1 else acc)
      0 t.Minicuda.Ast.body
  in
  Alcotest.(check int) "4 barriers" 4 barriers;
  Alcotest.(check int) "4 loop copies" 4 (Transform.count_top_loops t)

let test_transform_invalid_loop_id () =
  let k = parse atax_src in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Transform.warp_throttle k ~loop_id:7 ~n:2 ~warps_per_tb:8 ~warp_size:32
            ~one_dim_block:true);
       false
     with Invalid_argument _ -> true)

let test_transform_plan_hits_later_loops () =
  (* two loops; splitting loop 0 must not eat loop 1's id *)
  let src =
    "__global__ void k(float *a, float *b) {\n\
     int i = threadIdx.x;\n\
     for (int j = 0; j < 4; j++) { a[i] += 1.0; }\n\
     for (int j = 0; j < 4; j++) { b[i] += 1.0; }\n\
     }"
  in
  let t =
    Transform.warp_throttle_plan (parse src) ~plan:[ (0, 2); (1, 4) ]
      ~warps_per_tb:8 ~warp_size:32 ~one_dim_block:true
  in
  Alcotest.(check int) "2 + 4 copies" 6 (Transform.count_top_loops t)

let test_transform_tb_throttle_shape () =
  let k = parse atax_src in
  let t = Transform.tb_throttle k ~dummy_elems:512 in
  match List.map (fun s -> s.Minicuda.Ast.sk) t.Minicuda.Ast.body with
  | Minicuda.Ast.Shared_decl (Minicuda.Ast.Float, name, 512) :: Minicuda.Ast.Assign _ :: _ ->
    Alcotest.(check string) "dummy name" Transform.dummy_array_name name
  | _ -> Alcotest.fail "expected dummy shared decl then keep-alive store"

let test_plan_tb_throttle_reaches_target () =
  List.iter
    (fun target ->
      match
        Transform.plan_tb_throttle volta ~tb_threads:256 ~num_regs:16
          ~shared_bytes:0 ~target_tbs:target
      with
      | None -> Alcotest.failf "no plan for target %d" target
      | Some (carveout, dummy_bytes) ->
        let achieved =
          Gpusim.Cta_scheduler.max_tbs_per_sm volta ~tb_threads:256 ~num_regs:16
            ~shared_bytes:dummy_bytes ~smem_carveout:carveout
        in
        Alcotest.(check int) (Printf.sprintf "target %d" target) target achieved)
    [ 1; 2; 3; 4; 6 ]

(* semantic preservation: the throttled kernel computes the same result *)
let run_both kernel transformed ~arrays ~grid ~block =
  let run k =
    let prog = Gpusim.Codegen.compile_kernel k in
    let dev = Gpusim.Gpu.create cfg in
    List.iter (fun (n, d) -> Gpusim.Gpu.upload dev n d) arrays;
    let args = List.map (fun (n, _) -> Gpusim.Gpu.Arr n) arrays in
    ignore (Gpusim.Gpu.launch dev (Gpusim.Gpu.default_launch ~prog ~grid ~block args));
    List.map (fun (n, _) -> Array.copy (Gpusim.Gpu.get dev n)) arrays
  in
  (run kernel, run transformed)

(* a small ATAX so simulation-based tests stay fast *)
let small_atax_src =
  "#define NX 256\n\
   __global__ void atax_small(float *A, float *B, float *tmp) {\n\
   int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
   if (i < NX) { for (int j = 0; j < NX; j++) { tmp[i] += A[i * NX + j] * B[j]; } }\n\
   }"

let small_atax_arrays seed =
  let rng = Gpu_util.Rng.create seed in
  [
    ("A", Array.init (256 * 256) (fun _ -> Gpu_util.Rng.float rng 1.));
    ("B", Array.init 256 (fun _ -> Gpu_util.Rng.float rng 1.));
    ("tmp", Array.make 256 0.);
  ]

let test_transform_preserves_semantics_warp () =
  let k = parse small_atax_src in
  let t =
    Transform.warp_throttle k ~loop_id:0 ~n:4 ~warps_per_tb:8 ~warp_size:32
      ~one_dim_block:true
  in
  let before, after =
    run_both k t ~arrays:(small_atax_arrays 3) ~grid:(1, 1) ~block:(256, 1)
  in
  List.iter2
    (fun b a -> Alcotest.(check bool) "same values" true (b = a))
    before after

let test_transform_preserves_semantics_tb () =
  let k = parse small_atax_src in
  let t = Transform.tb_throttle k ~dummy_elems:1024 in
  let before, after =
    run_both k t ~arrays:(small_atax_arrays 4) ~grid:(1, 1) ~block:(256, 1)
  in
  List.iter2
    (fun b a -> Alcotest.(check bool) "same values" true (b = a))
    before after

(* ---------------------------- Driver ------------------------------- *)

let test_driver_atax_table3 () =
  (* the paper's Table 3 row, at our scale: baseline (8,4); 32KB on-chip
     gives (4,4) at 128KB-equivalent… checked against the Volta preset *)
  let kernel = parse atax_src in
  match Driver.analyze volta kernel (geo ()) with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check (pair int int)) "baseline (8,4)" (8, 4) t.Driver.baseline_tlp;
    Alcotest.(check (pair int int)) "CATT picks (4,4) at max L1D" (4, 4)
      (Driver.selected_tlp t ~loop_id:0)

let test_driver_atax_32kb () =
  let kernel = parse atax_src in
  let small = Gpusim.Config.with_onchip volta (32 * 1024) in
  match Driver.analyze small kernel (geo ()) with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check (pair int int)) "CATT picks (1,4) at 32KB" (1, 4)
      (Driver.selected_tlp t ~loop_id:0)

let test_driver_ci_kernel_untouched () =
  let src =
    "__global__ void gemm(float *A, float *B, float *C) {\n\
     int j = blockIdx.x * blockDim.x + threadIdx.x;\n\
     int i = blockIdx.y * blockDim.y + threadIdx.y;\n\
     float acc = 0.0;\n\
     for (int k = 0; k < 128; k++) { acc += A[i * 128 + k] * B[k * 128 + j]; }\n\
     C[i * 128 + j] = acc;\n\
     }"
  in
  match Driver.analyze cfg (parse src) (geo ~grid:(4, 16) ~block:(32, 8) ()) with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check bool) "no loop throttled" true
      (List.for_all
         (fun (l : Driver.loop_decision) ->
           not l.Driver.decision.Throttle.throttled)
         t.Driver.loops);
    Alcotest.(check bool) "source unchanged" true
      (Minicuda.Ast.equal_kernel (parse src) t.Driver.transformed)

let test_driver_analysis_is_fast () =
  let kernel = parse atax_src in
  match Driver.analyze volta kernel (geo ()) with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check bool) "< 100ms (paper: 1-2s)" true (t.Driver.analysis_seconds < 0.1)

let tests =
  [
    ( "catt.affine",
      [
        Alcotest.test_case "algebra" `Quick test_affine_algebra;
        Alcotest.test_case "nonlinear is unknown" `Quick test_affine_nonlinear_unknown;
        Alcotest.test_case "exact division" `Quick test_affine_div_exact;
        Alcotest.test_case "lane evaluation" `Quick test_affine_eval_lane;
        QCheck_alcotest.to_alcotest prop_affine_add_matches_eval;
      ] );
    ( "catt.analysis",
      [
        Alcotest.test_case "ATAX accesses" `Quick test_analysis_atax_accesses;
        Alcotest.test_case "irregular index" `Quick test_analysis_irregular_index;
        Alcotest.test_case "accumulator widening" `Quick test_analysis_accumulator_widening;
        Alcotest.test_case "nested loops" `Quick test_analysis_nested_loops_one_report;
        Alcotest.test_case "sequential loops" `Quick test_analysis_sequential_loops;
        Alcotest.test_case "shared excluded" `Quick test_analysis_shared_excluded;
      ] );
    ( "catt.footprint",
      [
        Alcotest.test_case "REQ_warp (Eq. 7)" `Quick test_req_warp_eq7;
        Alcotest.test_case "REQ_warp 2-D block" `Quick test_req_warp_2d_block;
        Alcotest.test_case "REQ_warp negative offsets" `Quick
          test_req_warp_negative_offsets;
        Alcotest.test_case "reuse (Eq. 6)" `Quick test_reuse_eq6;
        Alcotest.test_case "ATAX footprint (Eq. 8)" `Quick test_footprint_atax;
      ] );
    ( "catt.occupancy",
      [
        Alcotest.test_case "no shared" `Quick test_occupancy_configure_no_shared;
        Alcotest.test_case "carveout choice (Eq. 4)" `Quick test_occupancy_configure_shared_eq4;
        Alcotest.test_case "grid cap" `Quick test_occupancy_grid_cap;
        Alcotest.test_case "oversized shared" `Quick test_occupancy_oversized_shared;
      ] );
    ( "catt.throttle",
      [
        Alcotest.test_case "fits: untouched" `Quick test_throttle_fits_untouched;
        Alcotest.test_case "no locality: untouched" `Quick test_throttle_no_locality_untouched;
        Alcotest.test_case "ATAX factors" `Quick test_throttle_atax_paper_numbers;
        Alcotest.test_case "TB-level (Eq. 9 phase 2)" `Quick test_throttle_tb_level;
        Alcotest.test_case "unresolvable (CORR)" `Quick test_throttle_unresolvable;
        Alcotest.test_case "single-warp TBs" `Quick test_throttle_single_warp_tbs;
        Alcotest.test_case "single TB" `Quick test_throttle_single_tb;
        Alcotest.test_case "(1,1) floor" `Quick test_throttle_single_warp_single_tb;
        Alcotest.test_case "divisors" `Quick test_throttle_divisors;
        QCheck_alcotest.to_alcotest prop_throttle_result_fits;
      ] );
    ( "catt.transform",
      [
        Alcotest.test_case "warp split structure" `Quick test_transform_warp_split_structure;
        Alcotest.test_case "invalid loop id" `Quick test_transform_invalid_loop_id;
        Alcotest.test_case "plan hits later loops" `Quick test_transform_plan_hits_later_loops;
        Alcotest.test_case "TB throttle shape" `Quick test_transform_tb_throttle_shape;
        Alcotest.test_case "TB plan reaches target" `Quick test_plan_tb_throttle_reaches_target;
        Alcotest.test_case "warp transform preserves semantics" `Quick
          test_transform_preserves_semantics_warp;
        Alcotest.test_case "TB transform preserves semantics" `Quick
          test_transform_preserves_semantics_tb;
      ] );
    ( "catt.driver",
      [
        Alcotest.test_case "ATAX matches Table 3 (max L1D)" `Quick test_driver_atax_table3;
        Alcotest.test_case "ATAX matches Table 3 (32KB)" `Quick test_driver_atax_32kb;
        Alcotest.test_case "CI kernel untouched" `Quick test_driver_ci_kernel_untouched;
        Alcotest.test_case "analysis overhead" `Quick test_driver_analysis_is_fast;
      ] );
  ]
