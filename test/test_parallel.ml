(** Tests for the parallel experiment engine: the domain pool, the
    parallel (workload × scheme) sweep, and the persistent result cache.

    The load-bearing property is that parallelism and caching are pure
    plumbing — a sweep fanned across domains, or reloaded from disk,
    must be element-wise identical to a fresh sequential simulation. *)

module Runner = Experiments.Runner
module Cache = Experiments.Cache
module Json = Gpu_util.Json
module Pool = Gpu_util.Pool

let cfg = Gpusim.Config.scaled ~num_sms:4 ~onchip_bytes:(32 * 1024) ()

(* ------------------------------- pool ------------------------------ *)

let test_pool_preserves_order () =
  let n = 100 in
  let inputs = List.init n (fun i -> i) in
  Pool.with_pool ~jobs:4 (fun pool ->
      let doubled = Pool.map pool (fun i -> 2 * i) inputs in
      Alcotest.(check (list int))
        "results in input order"
        (List.map (fun i -> 2 * i) inputs)
        doubled;
      (* a second batch on the same pool still works *)
      let squared = Pool.map pool (fun i -> i * i) inputs in
      Alcotest.(check (list int))
        "second batch too"
        (List.map (fun i -> i * i) inputs)
        squared)

let test_pool_uses_domains () =
  (* each task records the domain it ran on; 8 tasks that each block
     until all 4 workers have picked one up can only finish if 4 distinct
     domains are serving the queue *)
  let jobs = 4 in
  let barrier = Atomic.make 0 in
  let ids =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map pool
          (fun _ ->
            Atomic.incr barrier;
            while Atomic.get barrier < jobs do
              Domain.cpu_relax ()
            done;
            (Domain.self () :> int))
          (List.init jobs (fun i -> i)))
  in
  let distinct = List.sort_uniq compare ids in
  Alcotest.(check int) "ran on 4 distinct domains" jobs (List.length distinct)

let test_pool_propagates_exceptions () =
  Alcotest.check_raises "first failure re-raised" (Failure "task 3") (fun () ->
      ignore
        (Pool.parallel_map ~jobs:3
           (fun i -> if i = 3 then failwith "task 3" else i)
           [ 0; 1; 2; 3; 4 ]))

(* ----------------------- parallel sweeps --------------------------- *)

let check_run_equal msg (a : Runner.app_run) (b : Runner.app_run) =
  Alcotest.(check string) (msg ^ ": workload") a.Runner.workload b.Runner.workload;
  Alcotest.(check string)
    (msg ^ ": scheme")
    (Runner.scheme_label a.Runner.scheme)
    (Runner.scheme_label b.Runner.scheme);
  Alcotest.(check int) (msg ^ ": total cycles") a.Runner.total_cycles b.Runner.total_cycles;
  Alcotest.(check bool)
    (msg ^ ": verified")
    (a.Runner.verified = Ok ())
    (b.Runner.verified = Ok ());
  Alcotest.(check (list (pair string (pair int int))))
    (msg ^ ": per-kernel stats")
    (List.map
       (fun (ks : Runner.kernel_stats) ->
         ( ks.Runner.kernel_name,
           (ks.Runner.stats.Gpusim.Stats.cycles, ks.Runner.stats.Gpusim.Stats.l1_hits) ))
       a.Runner.kernels)
    (List.map
       (fun (ks : Runner.kernel_stats) ->
         ( ks.Runner.kernel_name,
           (ks.Runner.stats.Gpusim.Stats.cycles, ks.Runner.stats.Gpusim.Stats.l1_hits) ))
       b.Runner.kernels)

let sweep_cells =
  List.concat_map
    (fun name ->
      let w = Workloads.Registry.find name in
      [ (cfg, w, Runner.Baseline); (cfg, w, Runner.Fixed (2, 0)) ])
    [ "ATAX"; "BICG"; "BT" ]

let test_parallel_sweep_matches_sequential () =
  (* ground truth: fresh, memo-free sequential simulations *)
  let sequential =
    List.map
      (fun (cfg, w, s) ->
        match Runner.run_uncached cfg w s with
        | Ok r -> r
        | Error msg -> Alcotest.fail msg)
      sweep_cells
  in
  let parallel = Runner.run_many ~jobs:4 sweep_cells in
  Alcotest.(check int)
    "one result per cell" (List.length sweep_cells) (List.length parallel);
  List.iter2 (fun a b -> check_run_equal "parallel vs sequential" a b)
    sequential parallel

let test_run_many_preserves_order () =
  let results = Runner.run_many ~jobs:4 sweep_cells in
  List.iter2
    (fun (_, (w : Workloads.Workload.t), scheme) (r : Runner.app_run) ->
      Alcotest.(check string) "workload order" w.Workloads.Workload.name r.Runner.workload;
      Alcotest.(check string)
        "scheme order"
        (Runner.scheme_label scheme)
        (Runner.scheme_label r.Runner.scheme))
    sweep_cells results

(* ------------------------------ cache ------------------------------ *)

let test_json_round_trip () =
  let w = Workloads.Registry.find "BT" in
  List.iter
    (fun scheme ->
      let r =
        match Runner.run_uncached cfg w scheme with
        | Ok r -> r
        | Error msg -> Alcotest.fail msg
      in
      match Runner.run_of_json cfg w scheme (Runner.run_to_json r) with
      | Error msg -> Alcotest.failf "decode failed: %s" msg
      | Ok r' -> check_run_equal (Runner.scheme_label scheme) r r')
    [ Runner.Baseline; Runner.Fixed (2, 1) ]

let test_json_round_trip_through_text () =
  (* the same round trip, but through the actual on-disk representation *)
  let w = Workloads.Registry.find "BT" in
  let r =
    match Runner.run_uncached cfg w Runner.Baseline with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  let text = Json.to_string ~pretty:true (Runner.run_to_json r) in
  match Json.of_string text with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok json -> (
    match Runner.run_of_json cfg w Runner.Baseline json with
    | Error msg -> Alcotest.failf "decode failed: %s" msg
    | Ok r' -> check_run_equal "pretty-printed text" r r')

let test_scheme_label_round_trip () =
  List.iter
    (fun scheme ->
      match Runner.scheme_of_string (Runner.scheme_label scheme) with
      | Ok s ->
        Alcotest.(check string)
          "label round-trips"
          (Runner.scheme_label scheme)
          (Runner.scheme_label s)
      | Error msg -> Alcotest.fail msg)
    [
      Runner.Baseline; Runner.Catt; Runner.Fixed (4, 1); Runner.Dynamic;
      Runner.CcwsSched; Runner.DawsSched; Runner.Swl 8; Runner.Bypass;
    ];
  match Runner.scheme_of_string "no-such-scheme" with
  | Ok _ -> Alcotest.fail "junk must not parse"
  | Error _ -> ()

let test_fingerprint_sensitive_to_every_field () =
  let base = Gpusim.Config.volta () in
  let fp = Cache.config_fingerprint base in
  (* one variant per simulation-relevant field; if the fingerprint misses
     a field, its variant aliases the base config and this test fails *)
  let variants =
    [
      ("num_sms", { base with Gpusim.Config.num_sms = base.Gpusim.Config.num_sms + 1 });
      ("warp_size", { base with Gpusim.Config.warp_size = 16 });
      ( "max_warps_per_sm",
        { base with Gpusim.Config.max_warps_per_sm = base.Gpusim.Config.max_warps_per_sm + 1 } );
      ( "max_tbs_per_sm",
        { base with Gpusim.Config.max_tbs_per_sm = base.Gpusim.Config.max_tbs_per_sm + 1 } );
      ( "register_file_bytes",
        { base with Gpusim.Config.register_file_bytes = base.Gpusim.Config.register_file_bytes * 2 } );
      ( "onchip_bytes",
        { base with Gpusim.Config.onchip_bytes = base.Gpusim.Config.onchip_bytes * 2 } );
      ( "smem_carveout_options",
        { base with Gpusim.Config.smem_carveout_options = [ 0 ] } );
      ("line_bytes", { base with Gpusim.Config.line_bytes = 64 });
      ("l1d_assoc", { base with Gpusim.Config.l1d_assoc = base.Gpusim.Config.l1d_assoc * 2 });
      ("l1d_mshrs", { base with Gpusim.Config.l1d_mshrs = base.Gpusim.Config.l1d_mshrs + 1 });
      ("l2_bytes", { base with Gpusim.Config.l2_bytes = base.Gpusim.Config.l2_bytes * 2 });
      ("l2_assoc", { base with Gpusim.Config.l2_assoc = base.Gpusim.Config.l2_assoc * 2 });
      ( "l1d_hit_latency",
        { base with Gpusim.Config.l1d_hit_latency = base.Gpusim.Config.l1d_hit_latency + 1 } );
      ( "l2_hit_latency",
        { base with Gpusim.Config.l2_hit_latency = base.Gpusim.Config.l2_hit_latency + 1 } );
      ( "dram_latency",
        { base with Gpusim.Config.dram_latency = base.Gpusim.Config.dram_latency + 1 } );
      ( "dram_slot_cycles",
        { base with Gpusim.Config.dram_slot_cycles = base.Gpusim.Config.dram_slot_cycles + 1 } );
      ( "alu_latency",
        { base with Gpusim.Config.alu_latency = base.Gpusim.Config.alu_latency + 1 } );
      ( "lsu_throughput",
        { base with Gpusim.Config.lsu_throughput = base.Gpusim.Config.lsu_throughput + 1 } );
      ( "issue_width",
        { base with Gpusim.Config.issue_width = base.Gpusim.Config.issue_width + 1 } );
    ]
  in
  List.iter
    (fun (field, variant) ->
      Alcotest.(check bool)
        (field ^ " changes the fingerprint")
        false
        (String.equal fp (Cache.config_fingerprint variant)))
    variants;
  (* all variants must also be pairwise distinct: a field rendered into
     the wrong slot would collide with another variant, not the base *)
  let fps = fp :: List.map (fun (_, v) -> Cache.config_fingerprint v) variants in
  Alcotest.(check int)
    "fingerprints pairwise distinct" (List.length fps)
    (List.length (List.sort_uniq compare fps));
  (* trace_cap only bounds the (never-cached) trace ring *)
  Alcotest.(check string)
    "trace_cap does not invalidate" fp
    (Cache.config_fingerprint
       { base with Gpusim.Config.trace_cap = base.Gpusim.Config.trace_cap + 1 })

let with_temp_cache f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "catt-cache-test-%d" (Unix.getpid ()))
  in
  let old_dir = !Cache.dir and old_enabled = !Cache.enabled in
  Cache.dir := dir;
  Cache.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Cache.clear ();
      (try Unix.rmdir dir with Unix.Unix_error _ -> ());
      Cache.dir := old_dir;
      Cache.enabled := old_enabled)
    (fun () -> f ())

let test_warm_second_run_hits_cache () =
  with_temp_cache (fun () ->
      (* a config no other test uses, so the memo is genuinely cold *)
      let cfg = Gpusim.Config.scaled ~num_sms:2 ~onchip_bytes:(32 * 1024) () in
      let w = Workloads.Registry.find "BT" in
      let scheme = Runner.Baseline in
      let first = Runner.run cfg w scheme in
      let file =
        Cache.path cfg ~workload:w.Workloads.Workload.name
          ~scheme:(Runner.scheme_label scheme) ~seed:Runner.seed
      in
      Alcotest.(check bool) "entry persisted" true (Sys.file_exists file);
      (* plant a sentinel in the stored entry; if the second (cold-memo)
         run returns it, the result really came from disk *)
      let sentinel = 123456789 in
      let planted =
        match Json.of_string (In_channel.with_open_bin file In_channel.input_all) with
        | Ok (Json.Obj fields) ->
          Json.Obj
            (List.map
               (fun (k, v) ->
                 if k = "total_cycles" then (k, Json.Int sentinel) else (k, v))
               fields)
        | Ok _ | Error _ -> Alcotest.fail "unreadable cache entry"
      in
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc (Json.to_string planted));
      Runner.clear_memo ();
      let second = Runner.run cfg w scheme in
      Alcotest.(check int) "served from disk" sentinel second.Runner.total_cycles;
      (* drop the poisoned entry and memo so later tests recompute *)
      Runner.clear_memo ();
      Cache.clear ();
      let third = Runner.run cfg w scheme in
      check_run_equal "recomputed after clear" first third)

let test_corrupt_cache_entry_is_recomputed () =
  with_temp_cache (fun () ->
      let cfg = Gpusim.Config.scaled ~num_sms:2 ~onchip_bytes:(16 * 1024) () in
      let w = Workloads.Registry.find "BT" in
      let first = Runner.run cfg w Runner.Baseline in
      let file =
        Cache.path cfg ~workload:w.Workloads.Workload.name
          ~scheme:(Runner.scheme_label Runner.Baseline) ~seed:Runner.seed
      in
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc "{ not json");
      Runner.clear_memo ();
      let second = Runner.run cfg w Runner.Baseline in
      check_run_equal "recomputed, not crashed" first second)

let tests =
  [
    ( "parallel.pool",
      [
        Alcotest.test_case "map preserves order" `Quick test_pool_preserves_order;
        Alcotest.test_case "runs on K domains" `Quick test_pool_uses_domains;
        Alcotest.test_case "propagates exceptions" `Quick test_pool_propagates_exceptions;
      ] );
    ( "parallel.sweep",
      [
        Alcotest.test_case "matches sequential" `Quick test_parallel_sweep_matches_sequential;
        Alcotest.test_case "preserves order" `Quick test_run_many_preserves_order;
      ] );
    ( "parallel.cache",
      [
        Alcotest.test_case "JSON round trip" `Quick test_json_round_trip;
        Alcotest.test_case "round trip through text" `Quick test_json_round_trip_through_text;
        Alcotest.test_case "scheme labels round trip" `Quick test_scheme_label_round_trip;
        Alcotest.test_case "fingerprint covers every field" `Quick
          test_fingerprint_sensitive_to_every_field;
        Alcotest.test_case "second run hits cache" `Quick test_warm_second_run_hits_cache;
        Alcotest.test_case "corrupt entry recomputed" `Quick test_corrupt_cache_entry_is_recomputed;
      ] );
  ]
