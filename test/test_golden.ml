(** Golden decision snapshots: the exact TLP our Table 3 reports for every
    CS kernel/loop at the max-L1D configuration.  These pin the whole
    static pipeline (affine analysis → Eq. 7 → Eq. 8 → Eq. 9 → escalation)
    — any change to analyzer behaviour shows up here before it silently
    shifts the experiment tables. *)

let cfg = Experiments.Configs.max_l1d ()

let analysis_of workload kernel_name =
  let w = Workloads.Registry.find workload in
  let run = Experiments.Runner.run cfg w Experiments.Runner.Catt in
  List.assoc kernel_name run.Experiments.Runner.catt_analyses

let check_tlps workload kernel_name expected () =
  let t = analysis_of workload kernel_name in
  let actual =
    List.map
      (fun (l : Catt.Driver.loop_decision) ->
        Catt.Driver.selected_tlp t
          ~loop_id:l.Catt.Driver.footprint.Catt.Footprint.loop.Catt.Analysis.loop_id)
      t.Catt.Driver.loops
  in
  Alcotest.(check (list (pair int int)))
    (workload ^ "/" ^ kernel_name)
    expected actual

let check_baseline workload kernel_name expected () =
  let t = analysis_of workload kernel_name in
  Alcotest.(check (pair int int))
    (workload ^ "/" ^ kernel_name ^ " baseline")
    expected t.Catt.Driver.baseline_tlp

let tests =
  [
    ( "golden.table3",
      [
        (* multi-phase apps: one kernel throttled, the other untouched *)
        Alcotest.test_case "ATAX#1 -> (2,2)" `Quick
          (check_tlps "ATAX" "atax_kernel1" [ (2, 2) ]);
        Alcotest.test_case "ATAX#2 stays (8,1)" `Quick
          (check_tlps "ATAX" "atax_kernel2" [ (8, 1) ]);
        Alcotest.test_case "BICG#1 stays (8,1)" `Quick
          (check_tlps "BICG" "bicg_kernel1" [ (8, 1) ]);
        Alcotest.test_case "BICG#2 -> (2,2)" `Quick
          (check_tlps "BICG" "bicg_kernel2" [ (2, 2) ]);
        Alcotest.test_case "MVT#1 -> (2,2)" `Quick
          (check_tlps "MVT" "mvt_kernel1" [ (2, 2) ]);
        Alcotest.test_case "MVT#2 stays (4,2)" `Quick
          (check_tlps "MVT" "mvt_kernel2" [ (4, 2) ]);
        (* uniform contention *)
        Alcotest.test_case "GSMV -> (2,1)" `Quick
          (check_tlps "GSMV" "gesummv_kernel" [ (2, 1) ]);
        (* TB-level escalation on single-warp TBs *)
        Alcotest.test_case "SYR2K -> (1,6)" `Quick
          (check_tlps "SYR2K" "syr2k_kernel" [ (1, 6) ]);
        (* unresolvable: baseline preserved *)
        Alcotest.test_case "CORR stays (8,2)" `Quick
          (check_tlps "CORR" "corr_kernel" [ (8, 2) ]);
        (* per-loop decisions inside one kernel *)
        Alcotest.test_case "PF#1 loops -> (2,2),(4,2),(16,2)" `Quick
          (check_tlps "PF" "pf_likelihood" [ (2, 2); (4, 2); (16, 2) ]);
        (* irregular: Eq. 7 counts warp_size requests per warp (Sec. 4.2
           uncoalesced model), so these now trigger throttling decisions.
           BFS's warp split is sanitizer-refused (barrier under a
           thread-divergent frontier guard), so only the TB-level phase
           survives; CFD's split is legal and halves its warps. *)
        Alcotest.test_case "BFS#1 -> (8,1) (TB-level only)" `Quick
          (check_tlps "BFS" "bfs_expand" [ (8, 1) ]);
        Alcotest.test_case "CFD flux -> (2,2)" `Quick
          (check_tlps "CFD" "cfd_compute_flux" [ (2, 2) ]);
        (* baselines used by the table's first column *)
        Alcotest.test_case "ATAX#1 baseline (8,2)" `Quick
          (check_baseline "ATAX" "atax_kernel1" (8, 2));
        Alcotest.test_case "PF#1 baseline (16,2)" `Quick
          (check_baseline "PF" "pf_likelihood" (16, 2));
      ] );
  ]
