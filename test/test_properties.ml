(** Cross-layer differential properties: the static estimators checked
    against the executable machinery they model.

    The strongest is Eq. 7 vs the coalescer: for a random affine index the
    analyzer's per-warp request count must equal the number of lines the
    hardware coalescer produces for the same warp's addresses — the static
    model and the simulator share no code on this path. *)

module Affine = Catt.Affine

let warp_size = 32
let line_bytes = 128

(* ------------------ Eq. 7 vs the coalescer ------------------------- *)

let coalescer_ground_truth ~block_x aff =
  (* addresses lane by lane, exactly as the SM computes them at iteration 0
     of block 0, through the real coalescer *)
  let addrs =
    Array.init warp_size (fun lane ->
        let idx = Affine.eval_lane aff ~bdim_x:block_x ~lane ~base_linear_tid:0 in
        idx * 4)
  in
  (* the coalescer counts distinct lines; negative addresses need the same
     floor convention as the analyzer, so shift everything non-negative
     (a uniform shift by whole lines cannot change the count) *)
  let min_addr = Array.fold_left min addrs.(0) addrs in
  let shift = if min_addr < 0 then (-min_addr + line_bytes - 1) / line_bytes * line_bytes else 0 in
  let addrs = Array.map (fun a -> a + shift) addrs in
  Gpusim.Coalescer.count ~line_bytes ~addrs ~mask:0xFFFFFFFF

let prop_eq7_matches_coalescer =
  QCheck.Test.make ~name:"Eq. 7 = coalescer line count" ~count:500
    QCheck.(
      quad
        (int_range (-5000) 5000) (* c_tx *)
        (int_range (-500) 500) (* c_ty *)
        (int_range 0 100000) (* const *)
        (oneofl [ 8; 16; 32; 64; 128; 256 ]) (* block_x *))
    (fun (c_tx, c_ty, const, block_x) ->
      let aff = { (Affine.const const) with Affine.c_tx; c_ty } in
      let estimated =
        Catt.Footprint.req_warp ~line_bytes ~warp_size ~block_x
          (Affine.Affine aff)
      in
      let actual = coalescer_ground_truth ~block_x aff in
      if estimated <> actual then
        QCheck.Test.fail_reportf
          "c_tx=%d c_ty=%d const=%d bdim_x=%d: Eq.7 says %d, coalescer says %d"
          c_tx c_ty const block_x estimated actual
      else true)

(* --------------- analysis vs executed address stream ---------------- *)

(* For a kernel whose index is an affine function of (tid, j), the access
   recorded by the analyzer, evaluated at lane/iteration, must equal the
   address the interpreter actually touches.  We check by writing a
   sentinel at the predicted location and reading it back. *)
let prop_analysis_predicts_addresses =
  QCheck.Test.make ~name:"affine analysis predicts executed indices" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 0 64))
    (fun (c_tid, const) ->
      let trip = 4 in
      let src =
        Printf.sprintf
          "__global__ void k(float *a, float *out) {\n\
           int i = threadIdx.x;\n\
           float acc = 0.0;\n\
           for (int j = 0; j < %d; j++) { acc += a[i * %d + j * 2 + %d]; }\n\
           out[i] = acc;\n\
           }"
          trip c_tid const
      in
      let kernel = Minicuda.Parser.parse_kernel src in
      (* analyzer's view *)
      let geo = { Catt.Analysis.grid_x = 1; grid_y = 1; block_x = 32; block_y = 1 } in
      let reports = Catt.Analysis.analyze_kernel kernel geo in
      let access =
        match reports with
        | [ loop ] ->
          List.find
            (fun (x : Catt.Analysis.access) -> x.Catt.Analysis.array = "a")
            loop.Catt.Analysis.accesses
        | _ -> QCheck.Test.fail_report "expected one loop"
      in
      let aff =
        match access.Catt.Analysis.index with
        | Affine.Affine a -> a
        | Affine.Unknown -> QCheck.Test.fail_report "index should be affine"
      in
      (* executed view: run the kernel with a = identity ramp; each lane's
         accumulated sum must equal the sum of predicted indices *)
      let len = (31 * c_tid) + (trip * 2) + const + 8 in
      let cfg = Gpusim.Config.scaled ~num_sms:1 () in
      let prog = Gpusim.Codegen.compile_kernel kernel in
      let dev = Gpusim.Gpu.create cfg in
      Gpusim.Gpu.upload dev "a" (Array.init len float_of_int);
      Gpusim.Gpu.alloc dev "out" 32;
      ignore
        (Gpusim.Gpu.launch dev
           (Gpusim.Gpu.default_launch ~prog ~grid:(1, 1) ~block:(32, 1)
              [ Gpusim.Gpu.Arr "a"; Gpusim.Gpu.Arr "out" ]));
      let out = Gpusim.Gpu.get dev "out" in
      let ok = ref true in
      for lane = 0 to 31 do
        let predicted = ref 0 in
        for j = 0 to trip - 1 do
          let base =
            Affine.eval_lane
              (Affine.drop_iter aff "j")
              ~bdim_x:32 ~lane ~base_linear_tid:0
          in
          predicted := !predicted + base + (Affine.coeff_of_iter aff "j" * j)
        done;
        if abs_float (float_of_int !predicted -. out.(lane)) > 1e-9 then ok := false
      done;
      !ok)

(* ------------------- Fig. 3 U-shape invariant ----------------------- *)

let test_fig3_u_shape () =
  (* the filling warp count must be the best measured point, and both
     under- and over-subscription must be measurably worse *)
  let cfg = Experiments.Configs.max_l1d () in
  let v =
    Workloads.Microbench.variant
      ~l1d_bytes:(Gpusim.Config.l1d_bytes cfg ~smem_carveout:0)
      ~line_bytes:128 ~warp_size:32 ~fill_warps:8 ~reps:8
  in
  let time warps =
    (Workloads.Microbench.run cfg v ~warps).Gpusim.Stats.cycles
  in
  let at_fill = time 8 in
  Alcotest.(check bool) "1 warp much slower" true (time 1 > 3 * at_fill);
  Alcotest.(check bool) "4 warps slower" true (time 4 > at_fill);
  Alcotest.(check bool) "16 warps slower (thrash)" true (time 16 > at_fill);
  Alcotest.(check bool) "32 warps slower (thrash)" true (time 32 > at_fill)

(* --------------- transformed kernels stay analyzable ----------------- *)

let test_transformed_source_reparses () =
  (* CATT's output is valid mini-CUDA that round-trips and re-typechecks
     for every CS kernel *)
  let cfg = Experiments.Configs.max_l1d () in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      List.iter
        (fun (l : Workloads.Workload.kernel_launch) ->
          let kernel = Workloads.Workload.find_kernel w l.Workloads.Workload.kernel_name in
          match Catt.Driver.analyze cfg kernel (Workloads.Workload.geometry_of l) with
          | Error e -> Alcotest.fail e
          | Ok t ->
            let printed = Minicuda.Pretty.kernel t.Catt.Driver.transformed in
            let reparsed = Minicuda.Parser.parse_kernel printed in
            ignore (Minicuda.Typecheck.check_kernel reparsed);
            Alcotest.(check bool)
              (w.Workloads.Workload.name ^ "/" ^ l.Workloads.Workload.kernel_name)
              true
              (Minicuda.Ast.equal_kernel t.Catt.Driver.transformed reparsed))
        w.Workloads.Workload.launches)
    Workloads.Registry.cs

(* ------------- CATT pipeline preserves semantics (random) ----------- *)

(* random divergent-ish kernels through the full analyze→transform→simulate
   pipeline: the throttled kernel must compute bit-identical results *)
let prop_catt_preserves_semantics =
  QCheck.Test.make ~name:"CATT transform preserves results" ~count:25
    QCheck.(
      triple (oneofl [ 16; 48; 64; 96 ]) (* inter-thread stride *)
        (oneofl [ 8; 16; 32 ]) (* trip count *)
        (int_range 0 3) (* extra vector term *))
    (fun (stride, trip, flavor) ->
      let src =
        Printf.sprintf
          "__global__ void k(float *data, float *vec, float *out) {\n\
           int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
           if (i < 512) {\n\
           float acc = 0.0;\n\
           for (int j = 0; j < %d; j++) { acc += data[i * %d + j] %s; }\n\
           out[i] += acc;\n\
           }\n\
           }"
          trip stride
          (match flavor with
          | 0 -> ""
          | 1 -> "+ vec[j]"
          | 2 -> "* vec[j]"
          | _ -> "- 0.5 * vec[i]")
      in
      let kernel = Minicuda.Parser.parse_kernel src in
      let cfg = Experiments.Configs.max_l1d () in
      let geo = { Catt.Analysis.grid_x = 2; grid_y = 1; block_x = 256; block_y = 1 } in
      let transformed, carveout =
        match Catt.Driver.analyze cfg kernel geo with
        | Ok t -> (t.Catt.Driver.transformed, t.Catt.Driver.final_carveout)
        | Error msg -> QCheck.Test.fail_reportf "analyze failed: %s" msg
      in
      let run k carveout =
        let prog = Gpusim.Codegen.compile_kernel k in
        let dev = Gpusim.Gpu.create cfg in
        let rng = Gpu_util.Rng.create 99 in
        Gpusim.Gpu.upload dev "data"
          (Array.init ((511 * stride) + trip) (fun _ -> Gpu_util.Rng.float rng 1.));
        Gpusim.Gpu.upload dev "vec"
          (Array.init 512 (fun _ -> Gpu_util.Rng.float rng 1.));
        Gpusim.Gpu.alloc dev "out" 512;
        let launch =
          Gpusim.Gpu.default_launch ?smem_carveout:carveout ~prog ~grid:(2, 1)
            ~block:(256, 1)
            [ Gpusim.Gpu.Arr "data"; Gpusim.Gpu.Arr "vec"; Gpusim.Gpu.Arr "out" ]
        in
        ignore (Gpusim.Gpu.launch dev launch);
        Array.copy (Gpusim.Gpu.get dev "out")
      in
      let before = run kernel None in
      let after = run transformed (Some carveout) in
      if before = after then true
      else QCheck.Test.fail_reportf "results differ for:\n%s" src)

let tests =
  [
    ( "properties.differential",
      [
        QCheck_alcotest.to_alcotest prop_eq7_matches_coalescer;
        QCheck_alcotest.to_alcotest prop_analysis_predicts_addresses;
        QCheck_alcotest.to_alcotest prop_catt_preserves_semantics;
      ] );
    ( "properties.shape",
      [
        Alcotest.test_case "Fig. 3 U-shape" `Quick test_fig3_u_shape;
        Alcotest.test_case "transformed kernels reparse" `Quick
          test_transformed_source_reparses;
      ] );
  ]
