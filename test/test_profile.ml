(** Profiler unit + regression tests: ring buffer, rank correlation,
    cache-eviction edge cases, bypassed-array non-allocation, carveout
    resize, trace memory bounding, JSON round-trips and golden profiles.

    Golden snapshots live in [test/golden_profiles/*.json]; regenerate
    after an intentional format change with

      dune build test/profile_check.exe && \
      GOLDEN_REGEN=$PWD/test/golden_profiles _build/default/test/profile_check.exe *)

module Config = Gpusim.Config
module Gpu = Gpusim.Gpu
module Cache = Gpusim.Cache
module Json = Gpu_util.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

let test_ring_basics () =
  let r = Profile.Ring.create ~cap:3 ~dummy:0 in
  check_int "empty" 0 (Profile.Ring.length r);
  Profile.Ring.push r 1;
  Profile.Ring.push r 2;
  Alcotest.(check (array int)) "partial, in order" [| 1; 2 |] (Profile.Ring.to_array r);
  List.iter (Profile.Ring.push r) [ 3; 4; 5 ];
  check_int "length capped" 3 (Profile.Ring.length r);
  check_int "capacity" 3 (Profile.Ring.capacity r);
  check_int "dropped" 2 (Profile.Ring.dropped r);
  Alcotest.(check (array int)) "oldest survivors first" [| 3; 4; 5 |]
    (Profile.Ring.to_array r);
  Profile.Ring.clear r;
  check_int "cleared" 0 (Profile.Ring.length r);
  check_int "dropped reset" 0 (Profile.Ring.dropped r)

let test_ring_bad_capacity () =
  Alcotest.check_raises "cap 0 rejected"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Profile.Ring.create ~cap:0 ~dummy:()))

(* ------------------------------------------------------------------ *)
(* Spearman rank correlation                                           *)
(* ------------------------------------------------------------------ *)

let check_float = Alcotest.(check (float 1e-9))

let test_spearman () =
  let sp xs ys = Gpu_util.Stats.spearman (Array.of_list xs) (Array.of_list ys) in
  check_float "monotone" 1.0 (sp [ 1.; 2.; 3.; 4. ] [ 10.; 20.; 30.; 40. ]);
  check_float "nonlinear monotone" 1.0 (sp [ 1.; 2.; 3. ] [ 1.; 10.; 100. ]);
  check_float "reversed" (-1.0) (sp [ 1.; 2.; 3.; 4. ] [ 9.; 7.; 5.; 3. ]);
  check_float "ties averaged"
    (4.5 /. sqrt 22.5)
    (sp [ 1.; 2.; 2.; 3. ] [ 1.; 2.; 3.; 4. ]);
  check_float "constant side is 0" 0.0 (sp [ 5.; 5.; 5. ] [ 1.; 2.; 3. ]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats.spearman: length mismatch") (fun () ->
      ignore (sp [ 1.; 2. ] [ 1. ]))

(* ------------------------------------------------------------------ *)
(* Cache eviction edge cases                                           *)
(* ------------------------------------------------------------------ *)

(* one set, four ways *)
let tiny_cache () = Cache.create ~bytes:(4 * 128) ~assoc:4 ~line_bytes:128 ~mshrs:8 ()

let test_conflict_eviction () =
  let c = tiny_cache () in
  check_int "single set" 1 (Cache.sets c);
  let evs = ref [] in
  let on_evict ~set ~line = evs := (set, line) :: !evs in
  let access line = snd (Cache.access ~on_evict c ~now:0 ~line ~miss_ready:(fun ~issue -> issue)) in
  List.iter (fun l -> ignore (access l)) [ 0; 1; 2; 3 ];
  check "no eviction while filling" true (!evs = []);
  ignore (access 4);
  check "LRU victim reported" true (!evs = [ (0, 0) ]);
  check "victim gone" false (Cache.contains c ~line:0);
  check "newcomer present" true (Cache.contains c ~line:4);
  ignore (access 0);
  (* line 1 is now least recently used *)
  check "second victim is next LRU" true (List.hd !evs = (0, 1))

let test_pending_merge_no_evict () =
  let c = tiny_cache () in
  let evs = ref [] in
  let on_evict ~set:_ ~line:_ = evs := () :: !evs in
  let access () = snd (Cache.access ~on_evict c ~now:0 ~line:7 ~miss_ready:(fun ~issue -> issue + 100)) in
  check "first access misses" true (access () = Cache.Miss);
  check "second merges into in-flight fill" true (access () = Cache.Pending_hit);
  check "merge evicts nothing" true (!evs = [])

(* ------------------------------------------------------------------ *)
(* Simulator-driven profiler checks                                    *)
(* ------------------------------------------------------------------ *)

let two_array_src =
  "__global__ void k(float *a, float *b, float *out) {\n\
   int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
   for (int j = 0; j < 16; j++) {\n\
   out[i] += a[i * 16 + j] + b[j];\n\
   }\n\
   }"

let run_two_array cfg ~bypass ~carveout ~profile =
  let kernel = Minicuda.Parser.parse_kernel two_array_src in
  let prog = Gpusim.Codegen.compile_kernel kernel in
  let dev = Gpu.create cfg in
  let threads = 128 in
  Gpu.upload dev "a" (Array.init (threads * 16) (fun i -> float_of_int (i land 7)));
  Gpu.upload dev "b" (Array.init 16 float_of_int);
  Gpu.alloc dev "out" threads;
  let launch =
    Gpu.default_launch ?smem_carveout:carveout
      ~bypass_arrays:(if bypass then [ "a" ] else [])
      ?profile ~prog ~grid:(2, 1) ~block:(64, 1)
      [ Gpu.Arr "a"; Gpu.Arr "b"; Gpu.Arr "out" ]
  in
  Gpu.launch dev launch

let find_array_id c name =
  match List.find_opt (fun a -> a.Profile.Collector.name = name) (Profile.Collector.arrays c) with
  | Some a -> a.Profile.Collector.id
  | None -> Alcotest.failf "array %s not registered with the collector" name

let cfg2 = Config.scaled ~num_sms:2 ()

let test_bypassed_array_not_allocated () =
  let c = Profile.Collector.create () in
  let stats, _ = run_two_array cfg2 ~bypass:true ~carveout:None ~profile:(Some c) in
  check "bypass transactions happened" true (stats.Gpusim.Stats.bypass_transactions > 0);
  let a_id = find_array_id c "a" and b_id = find_array_id c "b" in
  let a_loads, _ = Profile.Collector.array_miss_rate c ~arr_id:a_id in
  let b_loads, _ = Profile.Collector.array_miss_rate c ~arr_id:b_id in
  check_int "bypassed array never allocates in L1" 0 a_loads;
  check "cached array still loads through L1" true (b_loads > 0);
  let a_bypassed =
    List.fold_left
      (fun acc ((id, _), cell) -> if id = a_id then acc + cell.Profile.Heatmap.bypassed else acc)
      0
      (Profile.Heatmap.rows (Profile.Collector.heat c))
  in
  check "bypass counted per site" true (a_bypassed > 0);
  (* bypassed loads skip the sets entirely, so set accesses = L1 accesses *)
  check_int "set accesses match L1 accesses"
    stats.Gpusim.Stats.l1_accesses
    (Array.fold_left ( + ) 0 (Profile.Collector.heat c).Profile.Heatmap.set_accesses)

let test_carveout_resize () =
  (* 32 KB on-chip: carveout 0 leaves 64 sets, carveout 16 KB leaves 32 *)
  let sets ~carveout =
    let c = Profile.Collector.create () in
    ignore (run_two_array cfg2 ~bypass:false ~carveout ~profile:(Some c));
    Profile.Heatmap.num_sets (Profile.Collector.heat c)
  in
  check_int "full L1D" 64 (sets ~carveout:None);
  check_int "half carved out" 32 (sets ~carveout:(Some (16 * 1024)));
  (* one collector across both geometries grows to the larger set count
     and the accounting identity still holds *)
  let c = Profile.Collector.create () in
  ignore (run_two_array cfg2 ~bypass:false ~carveout:(Some (16 * 1024)) ~profile:(Some c));
  check_int "starts small" 32 (Profile.Heatmap.num_sets (Profile.Collector.heat c));
  ignore (run_two_array cfg2 ~bypass:false ~carveout:None ~profile:(Some c));
  check_int "grows, never shrinks" 64 (Profile.Heatmap.num_sets (Profile.Collector.heat c));
  check_int "aggregates both launches" 2 (Profile.Collector.launches c);
  check "identity across resize" true (Profile.Collector.check_identity c = Ok ())

let test_trace_bounded () =
  let cap = 64 in
  let cfg = { cfg2 with Config.trace_cap = cap } in
  let kernel = Minicuda.Parser.parse_kernel two_array_src in
  let prog = Gpusim.Codegen.compile_kernel kernel in
  let dev = Gpu.create cfg in
  Gpu.upload dev "a" (Array.make (128 * 16) 1.0);
  Gpu.upload dev "b" (Array.make 16 1.0);
  Gpu.alloc dev "out" 128;
  let launch =
    Gpu.default_launch ~trace:true ~prog ~grid:(2, 1) ~block:(64, 1)
      [ Gpu.Arr "a"; Gpu.Arr "b"; Gpu.Arr "out" ]
  in
  let _, trace = Gpu.launch dev launch in
  check_int "ring capacity honours Config.trace_cap" cap (Gpusim.Trace.capacity trace);
  check_int "stored entries bounded" cap (Gpusim.Trace.length trace);
  check "older entries were dropped, not stored" true (Gpusim.Trace.dropped trace > 0);
  check_int "series matches ring" cap (Array.length (Gpusim.Trace.request_series trace))

let test_json_roundtrip () =
  let c = Profile.Collector.create () in
  ignore (run_two_array cfg2 ~bypass:false ~carveout:None ~profile:(Some c));
  let j = Profile.Collector.to_json c in
  match Profile.Collector.of_json j with
  | Error msg -> Alcotest.failf "of_json: %s" msg
  | Ok c2 ->
    Alcotest.(check string)
      "to_json . of_json . to_json = to_json"
      (Json.to_string j)
      (Json.to_string (Profile.Collector.to_json c2))

(* ------------------------------------------------------------------ *)
(* Golden profiles                                                     *)
(* ------------------------------------------------------------------ *)

let golden_cfg = Config.scaled ~num_sms:2 ()

let workload_bundle name =
  let w = Workloads.Registry.find name in
  let run =
    match
      Experiments.Runner.exec
        (Experiments.Runner.Request.make ~profile:true golden_cfg w
           Experiments.Runner.Baseline)
    with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  let pairs =
    List.filter_map
      (fun k ->
        Option.map
          (fun p -> (k.Experiments.Runner.kernel_name, p))
          k.Experiments.Runner.profile)
      run.Experiments.Runner.kernels
  in
  if pairs = [] then Alcotest.failf "%s produced no profiled kernels" name;
  pairs

let microbench_bundle () =
  let cfg = golden_cfg in
  let t =
    Workloads.Microbench.variant ~l1d_bytes:cfg.Config.onchip_bytes
      ~line_bytes:cfg.Config.line_bytes ~warp_size:cfg.Config.warp_size
      ~fill_warps:8 ~reps:2
  in
  let c = Profile.Collector.create () in
  ignore (Workloads.Microbench.run ~profile:c cfg t ~warps:16);
  [ (t.Workloads.Microbench.label, c) ]

(* one CS workload, one CI workload, one microbenchmark *)
let goldens =
  [
    ("atax", fun () -> workload_bundle "ATAX");
    ("bp", fun () -> workload_bundle "BP");
    ("microbench", microbench_bundle);
  ]

let golden_string pairs =
  Json.to_string ~pretty:true (Experiments.Profile_all.bundle_to_json pairs) ^ "\n"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden name build () =
  let pairs = build () in
  List.iter
    (fun (kernel, c) ->
      match Profile.Collector.check_identity c with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s/%s: %s" name kernel msg)
    pairs;
  let path = Filename.concat "golden_profiles" (name ^ ".json") in
  if not (Sys.file_exists path) then
    Alcotest.failf "missing golden %s — regenerate (see header comment)" path;
  Alcotest.(check string)
    (Printf.sprintf "%s profile matches golden snapshot" name)
    (read_file path) (golden_string pairs)

(** Manual regeneration entry point, driven by profile_check.ml. *)
let regen_goldens dir =
  List.iter
    (fun (name, build) ->
      let path = Filename.concat dir (name ^ ".json") in
      let oc = open_out_bin path in
      output_string oc (golden_string (build ()));
      close_out oc;
      Printf.printf "wrote %s\n%!" path)
    goldens

let tests =
  [
    ( "profile-units",
      [
        Alcotest.test_case "ring basics" `Quick test_ring_basics;
        Alcotest.test_case "ring bad capacity" `Quick test_ring_bad_capacity;
        Alcotest.test_case "spearman" `Quick test_spearman;
        Alcotest.test_case "conflict eviction callback" `Quick test_conflict_eviction;
        Alcotest.test_case "pending merge evicts nothing" `Quick test_pending_merge_no_evict;
      ] );
    ( "profile-sim",
      [
        Alcotest.test_case "bypassed array never allocates" `Quick
          test_bypassed_array_not_allocated;
        Alcotest.test_case "carveout resize" `Quick test_carveout_resize;
        Alcotest.test_case "trace memory bounded" `Quick test_trace_bounded;
        Alcotest.test_case "profile JSON round-trip" `Quick test_json_roundtrip;
      ] );
    ( "golden-profiles",
      List.map
        (fun (name, build) ->
          Alcotest.test_case name `Slow (test_golden name build))
        goldens );
  ]
