(** Differential harness: profiling must be observationally pure.

    Random mini-CUDA kernels (three contention shapes x random geometry x
    random scheduler/throttle/bypass configuration) run twice on fresh
    devices — once bare, once with a {!Profile.Collector} attached.  The
    final {!Gpusim.Stats} (every counter, serialized) and the full final
    device memory must be bit-identical: the profiler hooks sit on the
    simulator's hottest paths and the throttling controllers (CCWS pools,
    DYNCTA epochs) are stateful, so any accidental state read from a hook
    would show up here.  The profiled run additionally must satisfy the
    cycle-accounting identity. *)

module Gpu = Gpusim.Gpu
module Config = Gpusim.Config
module Stats = Gpusim.Stats
module Json = Gpu_util.Json

type case = {
  label : string;
  src : string;
  arrays : (string * int) list;  (* every device array, inputs and outputs *)
  args : Gpu.arg list;
  grid : int * int;
  block : int * int;
  bypassable : string;  (* a global array eligible for --bypass runs *)
}

let divergent_case ~nx ~ny =
  {
    label = Printf.sprintf "divergent-%dx%d" nx ny;
    src =
      Printf.sprintf
        "__global__ void k(float *A, float *x, float *tmp) {\n\
         int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
         if (i < %d) {\n\
         for (int j = 0; j < %d; j++) {\n\
         tmp[i] += A[i * %d + j] * x[j];\n\
         }\n\
         }\n\
         }" nx ny ny;
    arrays = [ ("A", nx * ny); ("x", ny); ("tmp", nx) ];
    args = [ Gpu.Arr "A"; Gpu.Arr "x"; Gpu.Arr "tmp" ];
    grid = (2, 1);
    block = (64, 1);
    bypassable = "A";
  }

let barrier_case ~blocks =
  {
    label = Printf.sprintf "barrier-shared-%d" blocks;
    src =
      "__global__ void k(float *a, float *out) {\n\
       __shared__ float buf[64];\n\
       int t = threadIdx.x;\n\
       int i = blockIdx.x * blockDim.x + t;\n\
       buf[t] = a[i];\n\
       __syncthreads();\n\
       out[i] = buf[63 - t] + buf[t];\n\
       }";
    arrays = [ ("a", blocks * 64); ("out", blocks * 64) ];
    args = [ Gpu.Arr "a"; Gpu.Arr "out" ];
    grid = (blocks, 1);
    block = (64, 1);
    bypassable = "a";
  }

let branchy_case ~cut ~trips =
  let threads = 128 in
  let alen = max threads (trips * 32) in
  {
    label = Printf.sprintf "branchy-%d-%d" cut trips;
    src =
      Printf.sprintf
        "__global__ void k(float *a, float *out) {\n\
         int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
         if (i < %d) {\n\
         for (int j = 0; j < %d; j++) {\n\
         if (j * 2 < i) { out[i] += a[j * 32]; } else { out[i] += a[i]; }\n\
         }\n\
         } else {\n\
         out[i] = a[i];\n\
         }\n\
         }" cut trips;
    arrays = [ ("a", alen); ("out", threads) ];
    args = [ Gpu.Arr "a"; Gpu.Arr "out" ];
    grid = (2, 1);
    block = (64, 1);
    bypassable = "a";
  }

let init_value i = float_of_int ((i * 7 + 3) land 31)

(* small on-chip memory so random kernels actually contend in the L1D *)
let cfg = Config.scaled ~num_sms:2 ~onchip_bytes:(16 * 1024) ()

let run_case ?(timeline = false) case ~sched ~throttle ~bypass ~profile =
  let kernel = Minicuda.Parser.parse_kernel case.src in
  let prog = Gpusim.Codegen.compile_kernel kernel in
  let dev = Gpu.create cfg in
  List.iter
    (fun (name, len) -> Gpu.upload dev name (Array.init len init_value))
    case.arrays;
  let collector = if profile then Some (Profile.Collector.create ()) else None in
  (match collector with
  | Some c when timeline -> Profile.Collector.enable_timeline c
  | _ -> ());
  let launch =
    Gpu.default_launch ~sched ~runtime_throttle:throttle
      ~bypass_arrays:(if bypass then [ case.bypassable ] else [])
      ?profile:collector ~prog ~grid:case.grid ~block:case.block case.args
  in
  let stats, _ = Gpu.launch dev launch in
  let memory =
    List.map (fun (name, _) -> (name, Array.copy (Gpu.get dev name))) case.arrays
  in
  (Json.to_string (Stats.to_json stats), memory, collector)

let gen =
  QCheck.Gen.(
    let shape =
      oneof
        [
          map2
            (fun nx ny -> divergent_case ~nx ~ny)
            (oneofl [ 64; 128 ])
            (oneofl [ 16; 32; 64 ]);
          map (fun blocks -> barrier_case ~blocks) (oneofl [ 1; 2; 3 ]);
          map2
            (fun cut trips -> branchy_case ~cut ~trips)
            (oneofl [ 0; 37; 128 ])
            (oneofl [ 4; 16 ]);
        ]
    in
    let sched = oneofl [ Gpusim.Sm.Gto; Gpusim.Sm.Lrr ] in
    let throttle =
      oneofl [ `None; `Dyncta; `Ccws; `Daws; `Swl 2; `Ciao; `Ata ]
    in
    quad shape sched throttle bool)

let print_cfg (case, sched, throttle, bypass) =
  Printf.sprintf "%s sched=%s throttle=%s bypass=%b" case.label
    (match sched with Gpusim.Sm.Gto -> "gto" | Gpusim.Sm.Lrr -> "lrr")
    (match throttle with
    | `None -> "none"
    | `Dyncta -> "dyncta"
    | `Ccws -> "ccws"
    | `Daws -> "daws"
    | `Swl k -> Printf.sprintf "swl%d" k
    | `Ciao -> "ciao"
    | `Ata -> "ata")
    bypass

let arbitrary = QCheck.make ~print:print_cfg gen

let prop_profiling_pure =
  QCheck.Test.make ~name:"profiled run == unprofiled run (stats + memory)"
    ~count:40 arbitrary (fun (case, sched, throttle, bypass) ->
      let stats_bare, mem_bare, _ =
        run_case case ~sched ~throttle ~bypass ~profile:false
      in
      let stats_prof, mem_prof, collector =
        run_case case ~sched ~throttle ~bypass ~profile:true
      in
      if stats_bare <> stats_prof then
        QCheck.Test.fail_reportf "stats diverged:\nbare: %s\nprof: %s"
          stats_bare stats_prof;
      List.iter2
        (fun (name, a) (_, b) ->
          if a <> b then
            QCheck.Test.fail_reportf "final memory of %s diverged" name)
        mem_bare mem_prof;
      (match collector with
      | None -> QCheck.Test.fail_report "profiled run returned no collector"
      | Some c -> (
        match Profile.Collector.check_identity c with
        | Ok () -> ()
        | Error msg ->
          QCheck.Test.fail_reportf "accounting identity violated: %s" msg));
      true)

(* span tracing and the opt-in per-SM timeline must be observationally
   pure too: a fully instrumented run (spans enabled, timeline attached)
   produces bit-identical stats and final memory to a bare run *)
let prop_tracing_pure =
  QCheck.Test.make ~name:"traced run == untraced run (stats + memory)"
    ~count:20 arbitrary (fun (case, sched, throttle, bypass) ->
      let stats_bare, mem_bare, _ =
        run_case case ~sched ~throttle ~bypass ~profile:false
      in
      let was = !Obs.Span.enabled in
      Obs.Span.enabled := true;
      let stats_traced, mem_traced, collector =
        Fun.protect
          ~finally:(fun () ->
            Obs.Span.enabled := was;
            Obs.Span.reset ())
          (fun () ->
            run_case ~timeline:true case ~sched ~throttle ~bypass ~profile:true)
      in
      if stats_bare <> stats_traced then
        QCheck.Test.fail_reportf
          "stats diverged under tracing:\nbare:   %s\ntraced: %s" stats_bare
          stats_traced;
      List.iter2
        (fun (name, a) (_, b) ->
          if a <> b then
            QCheck.Test.fail_reportf "final memory of %s diverged under tracing"
              name)
        mem_bare mem_traced;
      (match collector with
      | None -> QCheck.Test.fail_report "traced run returned no collector"
      | Some c -> (
        match Profile.Collector.timeline c with
        | None -> QCheck.Test.fail_report "timeline was not enabled"
        | Some tl ->
          if Profile.Timeline.length tl = 0 && Profile.Timeline.dropped tl = 0
          then QCheck.Test.fail_report "timeline attached but recorded nothing"));
      true)

(* repeated profiled runs of the same configuration also agree with each
   other — the collector aggregation itself is deterministic *)
let prop_profiling_deterministic =
  QCheck.Test.make ~name:"profiled run is deterministic" ~count:10 arbitrary
    (fun (case, sched, throttle, bypass) ->
      let run () =
        let _, _, c = run_case case ~sched ~throttle ~bypass ~profile:true in
        match c with
        | Some c -> Json.to_string (Profile.Collector.to_json c)
        | None -> ""
      in
      let a = run () and b = run () in
      if a <> b then QCheck.Test.fail_report "profile JSON diverged";
      true)

(* ------------------------------------------------------------------ *)
(* Golden grid: bit-identity of the full evaluation grid               *)
(* ------------------------------------------------------------------ *)

(* The QCheck properties above prove profiling is pure on random kernels;
   the golden grid pins the absolute semantics of the real evaluation:
   every (workload, scheme) cell's stats, profiles and final memory must
   digest to exactly the committed snapshot.  A hot-path optimization that
   changes any counter, any profile bucket or any output bit fails here. *)

let golden_grid_path = Filename.concat "golden_profiles" "golden_grid.json"
let golden_grid_cfg () = Experiments.Configs.max_l1d ()

let render_grid () =
  Json.to_string ~pretty:true
    (Experiments.Golden_grid.to_json
       (Experiments.Golden_grid.digests (golden_grid_cfg ())))
  ^ "\n"

let test_golden_grid () =
  if not (Sys.file_exists golden_grid_path) then
    Alcotest.failf "missing golden %s — regenerate (see test_profile.ml)"
      golden_grid_path;
  let golden =
    match
      Json.of_string
        (In_channel.with_open_bin golden_grid_path In_channel.input_all)
    with
    | Ok j -> (
      match Experiments.Golden_grid.of_json j with
      | Ok pairs -> pairs
      | Error msg -> Alcotest.failf "unreadable golden grid: %s" msg)
    | Error msg -> Alcotest.failf "unreadable golden grid: %s" msg
  in
  let actual = Experiments.Golden_grid.digests (golden_grid_cfg ()) in
  Alcotest.(check int) "cell count" (List.length golden) (List.length actual);
  List.iter2
    (fun (gk, gd) (ak, ad) ->
      Alcotest.(check string) "cell key order" gk ak;
      Alcotest.(check string) (gk ^ " digest") gd ad)
    golden actual

let regen_golden_grid dir =
  let path = Filename.concat dir "golden_grid.json" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (render_grid ()));
  Printf.printf "wrote %s\n" path

let tests =
  [
    ( "differential",
      [
        QCheck_alcotest.to_alcotest prop_profiling_pure;
        QCheck_alcotest.to_alcotest prop_tracing_pure;
        QCheck_alcotest.to_alcotest prop_profiling_deterministic;
        Alcotest.test_case "golden grid bit-identity" `Slow test_golden_grid;
      ] );
  ]
