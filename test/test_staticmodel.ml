(** Tests for the static cache-behavior analyzer (PR 7): the interval
    domain, the value-range walker ({!Staticmodel.Gaccess}), the
    reuse/working-set model ({!Staticmodel.Reuse}), the sharpened Eq. 8
    footprint ([Footprint.of_loop_sa], scheme [catt-sa]), the
    over-throttling dedupe regression, and the kernel lint.

    Soundness is checked two ways: a QCheck property (the interval bound
    on a warp's lane lines dominates the exact Eq. 7 enumeration) and a
    simulator cross-validation (the catt-sa footprint dominates the
    measured distinct-line count of a microbenchmark whose every line
    misses exactly once). *)

module Interval = Sanitize.Interval
module Affine = Sanitize.Affine
module Gaccess = Staticmodel.Gaccess
module Reuse = Staticmodel.Reuse
module Lint = Staticmodel.Lint
module Analysis = Catt.Analysis
module Footprint = Catt.Footprint
module Throttle = Catt.Throttle

let geo ?(grid = (16, 1)) ?(block = (256, 1)) () =
  {
    Analysis.grid_x = fst grid;
    grid_y = snd grid;
    block_x = fst block;
    block_y = snd block;
  }

let parse src = Minicuda.Parser.parse_kernel src

let itv = Alcotest.testable (Fmt.of_to_string Interval.to_string) ( = )

(* ---------------------------- Interval ----------------------------- *)

let test_interval_meet_count () =
  Alcotest.check itv "meet overlaps" (Interval.make 5 10)
    (Interval.meet (Interval.make 0 10) (Interval.make 5 20));
  Alcotest.check itv "meet with top is identity" (Interval.make 3 7)
    (Interval.meet (Interval.make 3 7) Interval.top);
  Alcotest.(check (option int)) "count [3,7]" (Some 5)
    (Interval.count (Interval.make 3 7));
  Alcotest.(check (option int)) "count of top" None (Interval.count Interval.top);
  Alcotest.(check bool) "empty meet detected" true
    (Interval.is_empty (Interval.meet (Interval.make 0 2) (Interval.make 5 9)))

let test_interval_div_mod () =
  Alcotest.check itv "div by positive" (Interval.make 2 5)
    (Interval.div_const (Interval.make 10 20) 4);
  Alcotest.check itv "div by negative flips ends" (Interval.make (-10) (-5))
    (Interval.div_const (Interval.make 10 20) (-2));
  Alcotest.check itv "already-reduced mod passes through" (Interval.make 0 4)
    (Interval.mod_const (Interval.make 0 4) 8);
  Alcotest.check itv "nonneg dividend lands in [0,k-1]" (Interval.make 0 7)
    (Interval.mod_const (Interval.make 0 100) 8);
  Alcotest.check itv "unknown-sign dividend is symmetric"
    (Interval.make (-7) 7)
    (Interval.mod_const Interval.top 8)

(* ---------------------------- Gaccess ------------------------------ *)

let atax_src =
  "#define NX 4096\n\
   __global__ void atax_kernel1(float *A, float *B, float *tmp) {\n\
   int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
   if (i < NX) { for (int j = 0; j < NX; j++) { tmp[i] += A[i * NX + j] * B[j]; } }\n\
   }"

let test_gaccess_atax () =
  let sa = Gaccess.analyze (parse atax_src) (geo ()) in
  match sa.Gaccess.loops with
  | [ li ] ->
    Alcotest.(check int) "loop id matches Analysis numbering" 0 li.Gaccess.gloop_id;
    Alcotest.(check string) "iterator" "j" li.Gaccess.gloop_var;
    Alcotest.(check int) "three deduped accesses" 3
      (List.length li.Gaccess.gaccesses);
    let find arr =
      List.find (fun (a : Gaccess.gaccess) -> a.Gaccess.garray = arr)
        li.Gaccess.gaccesses
    in
    (match (find "A").Gaccess.gindex with
    | Affine.Affine a -> Alcotest.(check int) "A's C_tid = NX" 4096 a.Affine.c_tx
    | Affine.Unknown -> Alcotest.fail "A affine");
    Alcotest.(check bool) "A's index range is finite (guard + geometry)" true
      (Interval.is_finite (find "A").Gaccess.gitv);
    (match (find "B").Gaccess.gindex with
    | Affine.Affine a -> Alcotest.(check int) "B's C_tid = 0" 0 a.Affine.c_tx
    | Affine.Unknown -> Alcotest.fail "B affine");
    Alcotest.(check (option string)) "B's innermost iterator" (Some "j")
      (find "B").Gaccess.ginnermost;
    let tmp = find "tmp" in
    Alcotest.(check bool) "tmp merged ld/st" true
      (tmp.Gaccess.gload && tmp.Gaccess.gstore)
  | loops -> Alcotest.failf "expected 1 loop, found %d" (List.length loops)

(* a data-dependent index reduced mod a small constant keeps a finite
   interval even though its affine form is lost *)
let mod_src =
  "__global__ void modk(int *idx, float *x, float *y) {\n\
   int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
   for (int j = 0; j < 100; j++) {\n\
   int c = idx[i] % 5;\n\
   y[i] += x[c];\n\
   }\n\
   }"

let test_gaccess_mod_bounded () =
  let sa = Gaccess.analyze (parse mod_src) (geo ()) in
  let li = List.hd sa.Gaccess.loops in
  let x =
    List.find (fun (a : Gaccess.gaccess) -> a.Gaccess.garray = "x")
      li.Gaccess.gaccesses
  in
  Alcotest.(check bool) "x's index is not affine" true
    (x.Gaccess.gindex = Affine.Unknown);
  Alcotest.check itv "x's interval is the mod image" (Interval.make (-4) 4)
    x.Gaccess.gitv;
  Alcotest.(check (option int)) "two lines of span" (Some 2)
    (Reuse.span_lines ~line_bytes:128 x.Gaccess.gitv);
  (match Reuse.classify ~line_bytes:128 x with
  | Reuse.Irregular_bounded 2 -> ()
  | k -> Alcotest.failf "expected irregular(<=2), got %s" (Reuse.kind_to_string k))

(* ----------------------- Reuse / loop_lines ------------------------ *)

let test_reuse_classify () =
  let acc ?(innermost = Some "j") index itv =
    {
      Gaccess.garray = "a";
      gindex = index;
      gitv = itv;
      guniform = false;
      gload = true;
      gstore = false;
      ginnermost = innermost;
      gloc = Minicuda.Ast.dummy_loc;
    }
  in
  let aff ?(c_j = 0) c_tx =
    Affine.Affine
      {
        (Affine.const 0) with
        Affine.c_tx;
        iters = (if c_j = 0 then [] else [ ("j", c_j) ]);
      }
  in
  let k a = Reuse.classify ~line_bytes:128 a in
  Alcotest.(check string) "zero iterator coeff is invariant" "invariant"
    (Reuse.kind_to_string (k (acc (aff 1) Interval.top)));
  Alcotest.(check string) "unit stride is spatial" "spatial(stride=1)"
    (Reuse.kind_to_string (k (acc (aff ~c_j:1 1) Interval.top)));
  Alcotest.(check string) "stride past the line streams"
    "streaming(stride=64)"
    (Reuse.kind_to_string (k (acc (aff ~c_j:64 1) Interval.top)));
  Alcotest.(check string) "unbounded unknown is irregular" "irregular"
    (Reuse.kind_to_string (k (acc Affine.Unknown Interval.top)));
  Alcotest.(check bool) "invariant/spatial/bounded have reuse" true
    (Reuse.has_reuse Reuse.Invariant
    && Reuse.has_reuse (Reuse.Spatial 1)
    && Reuse.has_reuse (Reuse.Irregular_bounded 4));
  Alcotest.(check bool) "streaming/irregular do not" false
    (Reuse.has_reuse (Reuse.Streaming 64) || Reuse.has_reuse Reuse.Irregular)

(* a ±1 stencil on one array shares lines: the union is 2 lines, not 3 *)
let test_reuse_stencil_union () =
  let acc const =
    {
      Gaccess.garray = "a";
      gindex = Affine.Affine { (Affine.const const) with Affine.c_tx = 1 };
      gitv = Interval.top;
      guniform = false;
      gload = true;
      gstore = false;
      ginnermost = None;
      gloc = Minicuda.Ast.dummy_loc;
    }
  in
  let ll =
    Reuse.loop_lines ~line_bytes:128 ~warp_size:32 ~block_x:256 ~tbs:1
      [ acc (-1); acc 0; acc 1 ]
  in
  (* a[tid] is 1 line, a[tid-1] straddles into line -1, a[tid+1] into
     line 1: the union is 3 distinct lines where summing standalone
     counts (1 + 2 + 2) would charge 5 *)
  Alcotest.(check int) "stencil union, not sum" 3 ll.Reuse.per_warp;
  Alcotest.(check int) "nothing shared across warps" 0 ll.Reuse.shared

(* ----------------- Footprint: dedupe + over-throttling -------------- *)

let mk_access ~load ~store index =
  {
    Analysis.array = "a";
    index;
    is_load = load;
    is_store = store;
    innermost_iter = Some "j";
  }

(* a read-modify-write written as separate load and store accesses is ONE
   request stream; double-counting it doubles Eq. 8 and throttles a loop
   that fits.  The second half of the test pins exactly that failure mode:
   the artificially doubled footprint must throttle where the deduped one
   does not. *)
let test_footprint_dedupe_no_overthrottle () =
  let index = Affine.Affine { (Affine.const 0) with Affine.c_tx = 32 } in
  let report =
    {
      Analysis.loop_id = 0;
      loop_var = "j";
      accesses =
        [ mk_access ~load:true ~store:false index;
          mk_access ~load:false ~store:true index ];
      has_barrier = false;
    }
  in
  let fp = Footprint.of_loop ~line_bytes:128 ~warp_size:32 ~block_x:256 report in
  Alcotest.(check int) "load+store merge to one summary" 1
    (List.length fp.Footprint.summaries);
  Alcotest.(check int) "one warp's 32 lines counted once" 32
    fp.Footprint.req_per_warp;
  Alcotest.(check bool) "invariant access has locality" true
    fp.Footprint.has_locality;
  let decide fp =
    Throttle.decide ~line_bytes:128 ~l1d_bytes:(32 * 1024) ~warps_per_tb:8
      ~tbs:1 fp
  in
  (* 32 lines x 8 warps x 128 B = exactly the 32 KB L1D: fits untouched *)
  let d = decide fp in
  Alcotest.(check bool) "deduped footprint fits" false d.Throttle.throttled;
  (* the pre-dedupe double count would have been 64 lines/warp *)
  let d2 = decide { fp with Footprint.req_per_warp = 64 } in
  Alcotest.(check bool) "double-counted footprint over-throttles" true
    d2.Throttle.throttled

(* ------------------------- of_loop_sa ------------------------------ *)

let sa_footprints src g ~tbs =
  let kernel = parse src in
  let reports = Analysis.analyze_kernel kernel g in
  let sa = Gaccess.analyze kernel g in
  List.map
    (fun (r : Analysis.loop_report) ->
      Footprint.of_loop_sa ~line_bytes:128 ~warp_size:32 ~block_x:g.Analysis.block_x
        ~tbs
        (Gaccess.find_loop sa ~loop_id:r.Analysis.loop_id)
        r)
    reports

let test_of_loop_sa_atax () =
  match sa_footprints atax_src (geo ()) ~tbs:2 with
  | [ fp ] ->
    (* A: 32 per-warp lines; tmp: 1; B[j] has no thread or block term, so
       it is one line for the whole SM instead of one more per warp *)
    Alcotest.(check int) "per-warp keeps A and tmp" 33 fp.Footprint.req_per_warp;
    Alcotest.(check int) "B counted once per SM" 1 fp.Footprint.shared_lines;
    let eq8 =
      Footprint.of_loop ~line_bytes:128 ~warp_size:32 ~block_x:256
        (parse atax_src |> fun k -> List.hd (Analysis.analyze_kernel k (geo ())))
    in
    Alcotest.(check int) "Eq. 8 charges B per warp" 34 eq8.Footprint.req_per_warp;
    let cw = 16 in
    Alcotest.(check bool) "catt-sa footprint is strictly sharper" true
      (Footprint.size_req_lines fp ~concurrent_warps:cw
      < Footprint.size_req_lines eq8 ~concurrent_warps:cw)
  | fps -> Alcotest.failf "expected 1 loop, found %d" (List.length fps)

let test_of_loop_sa_mod_bounded () =
  match sa_footprints mod_src (geo ()) ~tbs:1 with
  | [ fp ] ->
    (* idx[i] and y[i] stay per-warp (1 line each); x[c] collapses from a
       full warp of lines to its 2-line interval span, shared SM-wide *)
    Alcotest.(check int) "per-warp lines" 2 fp.Footprint.req_per_warp;
    Alcotest.(check int) "bounded irregular access shared" 2
      fp.Footprint.shared_lines;
    Alcotest.(check int) "Eq. 8' at 8 warps" ((2 * 8) + 2)
      (Footprint.size_req_lines fp ~concurrent_warps:8)
  | fps -> Alcotest.failf "expected 1 loop, found %d" (List.length fps)

(* fallback: without a staticmodel report the constructor is plain Eq. 8 *)
let test_of_loop_sa_fallback () =
  let kernel = parse atax_src in
  let report = List.hd (Analysis.analyze_kernel kernel (geo ())) in
  let fp_sa =
    Footprint.of_loop_sa ~line_bytes:128 ~warp_size:32 ~block_x:256 ~tbs:2 None
      report
  in
  let fp = Footprint.of_loop ~line_bytes:128 ~warp_size:32 ~block_x:256 report in
  Alcotest.(check int) "same per-warp count" fp.Footprint.req_per_warp
    fp_sa.Footprint.req_per_warp;
  Alcotest.(check int) "no shared tier" 0 fp_sa.Footprint.shared_lines

(* ------------------------ QCheck soundness ------------------------- *)

(* the interval bound on one warp's lane lines dominates the exact Eq. 7
   enumeration for every affine index the generator can produce *)
let prop_lane_lines_bound_sound =
  QCheck.Test.make ~name:"interval lane-line bound >= exact Eq. 7 count"
    ~count:500
    QCheck.(
      quad (int_range (-64) 512) (int_range (-8) 8) (int_range (-8) 8)
        (oneofl [ 32; 64; 128; 256 ]))
    (fun (const, c_tx, c_ty, block_x) ->
      let a = { (Affine.const const) with Affine.c_tx; c_ty } in
      Reuse.lane_lines_bound ~line_bytes:128 ~warp_size:32 ~block_x a
      >= Footprint.req_warp ~line_bytes:128 ~warp_size:32 ~block_x
           (Affine.Affine a))

(* --------------- Microbench cross-validation (soundness) ------------ *)

(* With [reps = 1] every element is read exactly once, so every distinct
   line of [data] misses exactly once regardless of evictions: the
   measured miss count IS the distinct-line count.  At [warps = 32] each
   warp owns exactly one slice, so the whole run equals the instantaneous
   working set that Eq. 8 models — the catt-sa footprint must dominate
   it. *)
let test_sa_footprint_covers_measured_lines () =
  let cfg = Gpusim.Config.scaled ~num_sms:2 ~onchip_bytes:(16 * 1024) () in
  let mb =
    Workloads.Microbench.variant ~l1d_bytes:(16 * 1024) ~line_bytes:128
      ~warp_size:32 ~fill_warps:8 ~reps:1
  in
  let warps = 32 in
  let c = Profile.Collector.create () in
  ignore (Workloads.Microbench.run ~profile:c cfg mb ~warps);
  let measured =
    List.fold_left
      (fun acc ((arr_id, _site), cell) ->
        if Profile.Collector.array_name c arr_id = "data" then
          acc + cell.Profile.Heatmap.misses
        else acc)
      0
      (Profile.Heatmap.rows (Profile.Collector.heat c))
  in
  (* slices x span lines per SM, once each *)
  Alcotest.(check int) "every data line misses exactly once"
    (cfg.Gpusim.Config.num_sms * mb.Workloads.Microbench.slices
    * mb.Workloads.Microbench.span)
    measured;
  let g =
    geo
      ~grid:(cfg.Gpusim.Config.num_sms, 1)
      ~block:(warps * 32, 1)
      ()
  in
  let sa_total =
    cfg.Gpusim.Config.num_sms
    * List.fold_left
        (fun acc fp ->
          acc + Footprint.size_req_lines fp ~concurrent_warps:warps)
        0
        (sa_footprints (Workloads.Microbench.source mb ~warps) g ~tbs:1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "catt-sa footprint (%d) covers measured lines (%d)"
       sa_total measured)
    true (sa_total >= measured)

(* ------------------------------ Lint ------------------------------- *)

let machine =
  { Lint.line_bytes = 128; warp_size = 32; banks = Lint.default_banks;
    num_sms = 4 }

let lint ?occupancy ?(g = geo ()) src =
  Lint.run machine ?occupancy g (parse src)

let kinds ds = List.map (fun d -> d.Lint.dkind) ds

let test_lint_uncoalesced () =
  let src =
    "__global__ void colmajor(float *A) {\n\
     int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
     A[i * 64] = 2.0;\n\
     }"
  in
  match lint src with
  | [ d ] ->
    Alcotest.(check bool) "kind" true (d.Lint.dkind = Lint.Uncoalesced);
    Alcotest.(check bool) "fully uncoalesced is high severity" true
      (d.Lint.dsev = Lint.High);
    Alcotest.(check (option string)) "array named" (Some "A") d.Lint.darray;
    Alcotest.(check bool) "located" true (d.Lint.dloc.Minicuda.Ast.line > 0)
  | ds -> Alcotest.failf "expected exactly 1 diagnostic, got %d" (List.length ds)

let test_lint_bank_conflict () =
  let src =
    "__global__ void bank(float *out) {\n\
     __shared__ float s[1024];\n\
     int tid = threadIdx.x;\n\
     s[tid * 16] = 1.0;\n\
     __syncthreads();\n\
     out[tid + blockIdx.x * blockDim.x] = s[tid * 16];\n\
     }"
  in
  let ds = lint ~g:(geo ~grid:(4, 1) ~block:(64, 1) ()) src in
  Alcotest.(check bool) "flags the strided shared access" true
    (List.mem Lint.Bank_conflict (kinds ds));
  Alcotest.(check bool) "32-way conflict is high severity" true
    (List.exists
       (fun d -> d.Lint.dkind = Lint.Bank_conflict && d.Lint.dsev = Lint.High)
       ds);
  Alcotest.(check bool) "nothing else flagged" true
    (List.for_all (fun d -> d.Lint.dkind = Lint.Bank_conflict) ds)

let test_lint_invariant_load () =
  let src =
    "__global__ void invload(float *w, float *out) {\n\
     int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
     float acc = 0.0;\n\
     for (int j = 0; j < 64; j++) { acc = acc + w[i]; }\n\
     out[i] = acc;\n\
     }"
  in
  match lint src with
  | [ d ] ->
    Alcotest.(check bool) "kind" true (d.Lint.dkind = Lint.Invariant_load);
    Alcotest.(check (option string)) "array named" (Some "w") d.Lint.darray
  | ds -> Alcotest.failf "expected exactly 1 diagnostic, got %d" (List.length ds)

let test_lint_occupancy_limits () =
  let src =
    "__global__ void occ(float *out) {\n\
     out[threadIdx.x + blockIdx.x * blockDim.x] = 1.0;\n\
     }"
  in
  let ds = lint ~g:(geo ~grid:(2, 1) ~block:(48, 1) ()) src in
  Alcotest.(check int) "under-filled grid + partial warp" 2 (List.length ds);
  Alcotest.(check bool) "both are occupancy diagnostics" true
    (List.for_all (fun d -> d.Lint.dkind = Lint.Occupancy_limit) ds);
  (* severity order: the idle-SM diagnostic outranks the padded warp *)
  match ds with
  | [ a; b ] ->
    Alcotest.(check bool) "medium before low" true
      (a.Lint.dsev = Lint.Medium && b.Lint.dsev = Lint.Low)
  | _ -> assert false

let test_lint_capacity_hint () =
  (* the ATAX loop at 16 concurrent warps: 33x16+1 lines x 128 B > 16 KB *)
  let hint =
    { Lint.concurrent_warps = 16; tbs_per_sm = 2; l1d_bytes = 16 * 1024 }
  in
  let ds = lint ~occupancy:hint atax_src in
  Alcotest.(check bool) "working set over capacity flagged" true
    (List.mem Lint.Capacity (kinds ds));
  Alcotest.(check bool) "absent without a hint" false
    (List.mem Lint.Capacity (kinds (lint atax_src)))

let test_lint_clean_kernel () =
  let src =
    "__global__ void clean(float *inp, float *out) {\n\
     int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
     out[i] = inp[i] + 1.0;\n\
     }"
  in
  Alcotest.(check int) "coalesced kernel lints clean" 0
    (List.length (lint src))

let test_lint_json_deterministic () =
  let ds = lint atax_src in
  let render () = Gpu_util.Json.to_string (Lint.list_to_json ds) in
  Alcotest.(check string) "json stable across renders" (render ()) (render ());
  Alcotest.(check bool) "kebab-case kinds on the wire" true
    (List.for_all
       (fun d ->
         String.for_all
           (fun ch -> ch = '-' || (ch >= 'a' && ch <= 'z'))
           (Lint.kind_to_string d.Lint.dkind))
       ds)

let tests =
  [
    ( "staticmodel.interval",
      [
        Alcotest.test_case "meet and count" `Quick test_interval_meet_count;
        Alcotest.test_case "div/mod transfer functions" `Quick
          test_interval_div_mod;
      ] );
    ( "staticmodel.gaccess",
      [
        Alcotest.test_case "ATAX accesses with ranges" `Quick test_gaccess_atax;
        Alcotest.test_case "mod keeps a finite range" `Quick
          test_gaccess_mod_bounded;
      ] );
    ( "staticmodel.reuse",
      [
        Alcotest.test_case "reuse classifier" `Quick test_reuse_classify;
        Alcotest.test_case "stencil union shares lines" `Quick
          test_reuse_stencil_union;
        QCheck_alcotest.to_alcotest prop_lane_lines_bound_sound;
      ] );
    ( "staticmodel.footprint",
      [
        Alcotest.test_case "rmw dedupe pins over-throttling" `Quick
          test_footprint_dedupe_no_overthrottle;
        Alcotest.test_case "catt-sa sharpens ATAX" `Quick test_of_loop_sa_atax;
        Alcotest.test_case "catt-sa bounds a mod index" `Quick
          test_of_loop_sa_mod_bounded;
        Alcotest.test_case "no report falls back to Eq. 8" `Quick
          test_of_loop_sa_fallback;
        Alcotest.test_case "catt-sa covers measured microbench lines" `Slow
          test_sa_footprint_covers_measured_lines;
      ] );
    ( "staticmodel.lint",
      [
        Alcotest.test_case "uncoalesced column-major store" `Quick
          test_lint_uncoalesced;
        Alcotest.test_case "shared-memory bank conflict" `Quick
          test_lint_bank_conflict;
        Alcotest.test_case "loop-invariant global load" `Quick
          test_lint_invariant_load;
        Alcotest.test_case "occupancy limiters" `Quick
          test_lint_occupancy_limits;
        Alcotest.test_case "capacity needs the hint" `Quick
          test_lint_capacity_hint;
        Alcotest.test_case "clean kernel stays clean" `Quick
          test_lint_clean_kernel;
        Alcotest.test_case "deterministic kebab-case json" `Quick
          test_lint_json_deterministic;
      ] );
  ]
