(** Tests for the extension features beyond the paper's core pipeline:
    the DYNCTA-style run-time throttle, selective L1D bypassing (the
    Section 2.2 alternative), kernel specialization for runtime-unknown
    launch parameters (Section 4.3), and launch-boundary cache settling. *)

let cfg = Gpusim.Config.scaled ~num_sms:4 ~onchip_bytes:(32 * 1024) ()

let atax_src =
  "#define NX 1024\n\
   #define NY 256\n\
   __global__ void atax_like(float *A, float *x, float *tmp) {\n\
   int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
   if (i < NX) { for (int j = 0; j < NY; j++) { tmp[i] += A[i * NY + j] * x[j]; } }\n\
   }"

let kernel = Minicuda.Parser.parse_kernel atax_src

let geo ~grid =
  { Catt.Analysis.grid_x = grid; grid_y = 1; block_x = 256; block_y = 1 }

let simulate ?(runtime_throttle = `None) ?(bypass_arrays = []) k =
  let prog = Gpusim.Codegen.compile_kernel k in
  let dev = Gpusim.Gpu.create cfg in
  let rng = Gpu_util.Rng.create 11 in
  Gpusim.Gpu.upload dev "A" (Array.init (1024 * 256) (fun _ -> Gpu_util.Rng.float rng 1.));
  Gpusim.Gpu.upload dev "x" (Array.init 1024 (fun _ -> Gpu_util.Rng.float rng 1.));
  Gpusim.Gpu.alloc dev "tmp" 1024;
  let launch =
    Gpusim.Gpu.default_launch ~runtime_throttle ~bypass_arrays ~prog
      ~grid:(4, 1) ~block:(256, 1)
      [ Gpusim.Gpu.Arr "A"; Gpusim.Gpu.Arr "x"; Gpusim.Gpu.Arr "tmp" ]
  in
  let stats, _ = Gpusim.Gpu.launch dev launch in
  (stats, Array.copy (Gpusim.Gpu.get dev "tmp"))

(* --------------------- dynamic throttling -------------------------- *)

let test_dynamic_controller_reverses () =
  let d = Gpusim.Dynamic_throttle.create ~epoch_cycles:100 ~init_cap:8 () in
  Alcotest.(check int) "initial cap" 8 (Gpusim.Dynamic_throttle.cap d);
  (* first epoch: high IPC; probes downward *)
  for _ = 1 to 90 do Gpusim.Dynamic_throttle.on_issue d done;
  Gpusim.Dynamic_throttle.on_cycle d ~now:100 ~max_cap:8;
  Alcotest.(check int) "probed down" 7 (Gpusim.Dynamic_throttle.cap d);
  (* second epoch: IPC collapsed; must reverse direction *)
  Gpusim.Dynamic_throttle.on_cycle d ~now:200 ~max_cap:8;
  Alcotest.(check int) "reversed up" 8 (Gpusim.Dynamic_throttle.cap d)

let test_dynamic_controller_bounds () =
  let d = Gpusim.Dynamic_throttle.create ~epoch_cycles:10 ~init_cap:2 () in
  (* zero-IPC epochs walk the cap around; it must stay within [1, max] *)
  for i = 1 to 20 do
    Gpusim.Dynamic_throttle.on_cycle d ~now:(i * 10) ~max_cap:3;
    let cap = Gpusim.Dynamic_throttle.cap d in
    Alcotest.(check bool) "within bounds" true (cap >= 1 && cap <= 3)
  done

let test_dynamic_launch_correct_and_runs () =
  let base_stats, base_tmp = simulate kernel in
  let dyn_stats, dyn_tmp = simulate ~runtime_throttle:`Dyncta kernel in
  Alcotest.(check bool) "same results" true (base_tmp = dyn_tmp);
  Alcotest.(check bool) "both ran" true
    (base_stats.Gpusim.Stats.cycles > 0 && dyn_stats.Gpusim.Stats.cycles > 0)

let test_dynamic_scheme_verifies () =
  let w = Workloads.Registry.find "GSMV" in
  let r = Experiments.Runner.run cfg w Experiments.Runner.Dynamic in
  (match r.Experiments.Runner.verified with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* the paper's argument: the run-time scheme pays detection lag, so the
     static per-loop decision should beat it on a uniformly contended app *)
  let catt = Experiments.Runner.run cfg w Experiments.Runner.Catt in
  Alcotest.(check bool) "CATT beats dynamic" true
    (catt.Experiments.Runner.total_cycles <= r.Experiments.Runner.total_cycles)

(* ----------------------------- CCWS -------------------------------- *)

let test_ccws_scoring () =
  let c = Gpusim.Ccws.create ~vta_entries:8 ~max_warps:8 () in
  (* first miss on a line: tag installed, no loss *)
  Alcotest.(check bool) "cold miss" false (Gpusim.Ccws.on_miss c ~warp_id:0 ~line:100);
  (* re-missing the same line: the warp lost locality *)
  Alcotest.(check bool) "re-miss detected" true (Gpusim.Ccws.on_miss c ~warp_id:0 ~line:100);
  Alcotest.(check bool) "score grew" true (Gpusim.Ccws.score c ~warp_id:0 > 1.);
  (* another warp's VTA is independent *)
  Alcotest.(check bool) "per-warp VTA" false (Gpusim.Ccws.on_miss c ~warp_id:1 ~line:100)

let test_ccws_allowed_shrinks () =
  let c = Gpusim.Ccws.create ~vta_entries:8 ~gain:32. ~max_warps:4 () in
  let ids = [ 0; 1; 2; 3 ] in
  Alcotest.(check int) "all allowed initially" 4
    (List.length (Gpusim.Ccws.allowed c ids));
  (* warp 2 loses locality hard: its score alone exceeds the cutoff *)
  ignore (Gpusim.Ccws.on_miss c ~warp_id:2 ~line:7);
  ignore (Gpusim.Ccws.on_miss c ~warp_id:2 ~line:7);
  let allowed = Gpusim.Ccws.allowed c ids in
  Alcotest.(check bool) "fewer warps" true (List.length allowed < 4);
  Alcotest.(check bool) "thrasher keeps priority" true (List.mem 2 allowed)

let test_ccws_decay_recovers () =
  let c = Gpusim.Ccws.create ~vta_entries:8 ~gain:32. ~decay:0.5 ~max_warps:4 () in
  ignore (Gpusim.Ccws.on_miss c ~warp_id:0 ~line:1);
  ignore (Gpusim.Ccws.on_miss c ~warp_id:0 ~line:1);
  for _ = 1 to 30 do Gpusim.Ccws.tick c done;
  Alcotest.(check int) "all allowed after decay" 4
    (List.length (Gpusim.Ccws.allowed c [ 0; 1; 2; 3 ]))

let test_ccws_launch_correct () =
  let base_stats, base_tmp = simulate kernel in
  let ccws_stats, ccws_tmp = simulate ~runtime_throttle:`Ccws kernel in
  Alcotest.(check bool) "same results" true (base_tmp = ccws_tmp);
  Alcotest.(check bool) "both ran" true
    (base_stats.Gpusim.Stats.cycles > 0 && ccws_stats.Gpusim.Stats.cycles > 0)

let test_ccws_scheme_verifies () =
  let w = Workloads.Registry.find "KM" in
  let r = Experiments.Runner.run cfg w Experiments.Runner.CcwsSched in
  match r.Experiments.Runner.verified with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ----------------------------- DAWS -------------------------------- *)

let test_daws_loop_extents () =
  let src =
    "__global__ void k(float *a, float *b) {\n\
     int i = threadIdx.x;\n\
     for (int j = 0; j < 4; j++) {\n\
     a[i] += 1.0;\n\
     for (int f = 0; f < 2; f++) { b[i * 32 + f] += 2.0; }\n\
     }\n\
     }"
  in
  let prog = Gpusim.Codegen.compile_kernel (Minicuda.Parser.parse_kernel src) in
  match Gpusim.Bytecode.loop_extents prog with
  | [ (b1, e1, m1); (b2, e2, m2) ] ->
    (* outer loop spans the inner; its count includes the inner's *)
    let (ob, oe, om), (ib, ie, im) =
      if b1 < b2 then ((b1, e1, m1), (b2, e2, m2)) else ((b2, e2, m2), (b1, e1, m1))
    in
    Alcotest.(check bool) "nesting" true (ob < ib && ie < oe);
    (* a[i] ld+st = 2, inner b ld+st = 2 *)
    Alcotest.(check int) "inner mem instrs" 2 im;
    Alcotest.(check int) "outer includes inner" 4 om
  | l -> Alcotest.failf "expected 2 loops, got %d" (List.length l)

let test_daws_admission_and_prediction () =
  let d = Gpusim.Daws.create ~l1_lines:64 ~extents:[ (10, 20, 4) ] in
  (* cold loop: prediction 4 lines/warp, target 16: everyone enters *)
  Alcotest.(check bool) "cold entry" true (Gpusim.Daws.try_enter d ~loop_pc:10 ~age:0);
  Alcotest.(check bool) "second entry" true (Gpusim.Daws.try_enter d ~loop_pc:10 ~age:1);
  (* learn heavy divergence: 32 lines per instruction *)
  for _ = 1 to 20 do Gpusim.Daws.on_mem_instr d ~loop_pc:10 ~requests:32 done;
  Alcotest.(check (float 1.)) "prediction 128" 128.
    (Gpusim.Daws.prediction_per_warp_lines d ~loop_pc:10);
  (* target is now 1: newcomers blocked, oldest insider continues *)
  Alcotest.(check bool) "newcomer blocked" false
    (Gpusim.Daws.try_enter d ~loop_pc:10 ~age:2);
  Alcotest.(check bool) "oldest continues" true
    (Gpusim.Daws.may_continue d ~loop_pc:10 ~age:0);
  Alcotest.(check bool) "younger descheduled" false
    (Gpusim.Daws.may_continue d ~loop_pc:10 ~age:1);
  Alcotest.(check bool) "blocks counted" true (Gpusim.Daws.blocks d > 0);
  (* the oldest leaves: the younger one takes over *)
  Gpusim.Daws.on_loop_exit d ~loop_pc:10 ~age:0;
  Alcotest.(check bool) "promoted after exit" true
    (Gpusim.Daws.may_continue d ~loop_pc:10 ~age:1)

let test_daws_unprofiled_loop_free () =
  let d = Gpusim.Daws.create ~l1_lines:64 ~extents:[] in
  Alcotest.(check bool) "no profile, no gate" true
    (Gpusim.Daws.try_enter d ~loop_pc:99 ~age:5)

let test_daws_launch_correct_and_effective () =
  let base_stats, base_tmp = simulate kernel in
  let daws_stats, daws_tmp = simulate ~runtime_throttle:`Daws kernel in
  Alcotest.(check bool) "same results" true (base_tmp = daws_tmp);
  (* 8 resident warps sit just over the L1D here (34 lines each vs 256),
     so DAWS sheds only one warp: expect an improvement, if a modest one *)
  Alcotest.(check bool) "faster" true
    (daws_stats.Gpusim.Stats.cycles < base_stats.Gpusim.Stats.cycles)

let test_daws_scheme_verifies () =
  let w = Workloads.Registry.find "PF" in
  let r = Experiments.Runner.run cfg w Experiments.Runner.DawsSched in
  match r.Experiments.Runner.verified with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* --------------------------- Best-SWL ------------------------------ *)

let test_swl_launch_correct () =
  let base_stats, base_tmp = simulate kernel in
  let swl_stats, swl_tmp = simulate ~runtime_throttle:(`Swl 4) kernel in
  Alcotest.(check bool) "same results" true (base_tmp = swl_tmp);
  Alcotest.(check bool) "throttled run is faster here" true
    (swl_stats.Gpusim.Stats.cycles < base_stats.Gpusim.Stats.cycles)

let test_swl_limit_one_still_completes () =
  let _, tmp = simulate ~runtime_throttle:(`Swl 1) kernel in
  let _, base_tmp = simulate kernel in
  Alcotest.(check bool) "serial schedule, same results" true (tmp = base_tmp)

let test_best_swl_is_minimum () =
  let w = Workloads.Registry.find "BT" in
  let k, best = Experiments.Runner.best_swl cfg w in
  Alcotest.(check bool) "limit positive" true (k >= 1);
  (* no tried limit may beat it *)
  List.iter
    (fun k' ->
      let r = Experiments.Runner.run cfg w (Experiments.Runner.Swl k') in
      Alcotest.(check bool) "minimum" true
        (best.Experiments.Runner.total_cycles <= r.Experiments.Runner.total_cycles))
    [ 1; 2; 4; 8 ]

let test_swl_invalid_rejected () =
  let prog = Gpusim.Codegen.compile_kernel kernel in
  let dev = Gpusim.Gpu.create cfg in
  Gpusim.Gpu.alloc dev "A" 8;
  Gpusim.Gpu.alloc dev "x" 8;
  Gpusim.Gpu.alloc dev "tmp" 8;
  let launch =
    Gpusim.Gpu.default_launch ~runtime_throttle:(`Swl 0) ~prog ~grid:(1, 1)
      ~block:(32, 1)
      [ Gpusim.Gpu.Arr "A"; Gpusim.Gpu.Arr "x"; Gpusim.Gpu.Arr "tmp" ]
  in
  Alcotest.check_raises "limit 0"
    (Gpusim.Gpu.Launch_error "static warp limit must be >= 1") (fun () ->
      ignore (Gpusim.Gpu.launch dev launch))

(* -------------------------- bypassing ------------------------------ *)

let test_bypass_selection () =
  let arrays = Catt.Bypass.divergent_arrays cfg kernel (geo ~grid:4) in
  Alcotest.(check (list string)) "only the divergent matrix" [ "A" ] arrays

let test_bypass_launch_counts () =
  let stats, tmp = simulate ~bypass_arrays:[ "A" ] kernel in
  let base_stats, base_tmp = simulate kernel in
  Alcotest.(check bool) "same results" true (tmp = base_tmp);
  Alcotest.(check bool) "bypass transactions recorded" true
    (stats.Gpusim.Stats.bypass_transactions > 0);
  Alcotest.(check bool) "fewer L1 accesses" true
    (stats.Gpusim.Stats.l1_accesses < base_stats.Gpusim.Stats.l1_accesses)

let test_bypass_unknown_array_rejected () =
  let prog = Gpusim.Codegen.compile_kernel kernel in
  let dev = Gpusim.Gpu.create cfg in
  Gpusim.Gpu.alloc dev "A" 8;
  Gpusim.Gpu.alloc dev "x" 8;
  Gpusim.Gpu.alloc dev "tmp" 8;
  let launch =
    Gpusim.Gpu.default_launch ~bypass_arrays:[ "nope" ] ~prog ~grid:(1, 1)
      ~block:(32, 1)
      [ Gpusim.Gpu.Arr "A"; Gpusim.Gpu.Arr "x"; Gpusim.Gpu.Arr "tmp" ]
  in
  Alcotest.check_raises "unknown array"
    (Gpusim.Gpu.Launch_error "bypass_arrays: kernel atax_like has no array nope")
    (fun () -> ignore (Gpusim.Gpu.launch dev launch))

let test_bypass_weaker_than_catt () =
  (* Section 2.2: "bypassing cannot prevent loss of locality" — the
     divergent access HAS intra-thread reuse here, so routing it around the
     L1D forfeits that reuse while CATT's throttling keeps it *)
  let w = Workloads.Registry.find "ATAX" in
  let bypass = Experiments.Runner.run cfg w Experiments.Runner.Bypass in
  (match bypass.Experiments.Runner.verified with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let catt = Experiments.Runner.run cfg w Experiments.Runner.Catt in
  Alcotest.(check bool) "CATT beats bypassing" true
    (catt.Experiments.Runner.total_cycles < bypass.Experiments.Runner.total_cycles)

(* --------------------------- variants ------------------------------ *)

let test_variants_dedup_and_split () =
  (* a large grid contends (throttled variant); a tiny grid keeps one TB
     per SM and a smaller footprint (different decision) *)
  match
    Catt.Variants.specialize cfg kernel
      ~geometries:[ geo ~grid:4; geo ~grid:8; geo ~grid:1 ]
  with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check bool) "at least two classes" true
      (List.length t.Catt.Variants.variants >= 2);
    let total_geometries =
      List.fold_left
        (fun acc v -> acc + List.length v.Catt.Variants.geometries)
        0 t.Catt.Variants.variants
    in
    Alcotest.(check int) "all geometries covered" 3 total_geometries

let test_variants_select_exact () =
  match Catt.Variants.specialize cfg kernel ~geometries:[ geo ~grid:4; geo ~grid:1 ] with
  | Error e -> Alcotest.fail e
  | Ok t ->
    let v = Catt.Variants.select t (geo ~grid:4) in
    Alcotest.(check bool) "geometry in class" true
      (List.mem (geo ~grid:4) v.Catt.Variants.geometries)

let test_variants_select_fallback () =
  match Catt.Variants.specialize cfg kernel ~geometries:[ geo ~grid:4; geo ~grid:1 ] with
  | Error e -> Alcotest.fail e
  | Ok t ->
    (* grid 5 was never anticipated: nearest-concurrency variant is grid 4 *)
    let v = Catt.Variants.select t (geo ~grid:5) in
    Alcotest.(check bool) "nearest class chosen" true
      (List.mem (geo ~grid:4) v.Catt.Variants.geometries)

let test_variants_program_names_unique () =
  match Catt.Variants.specialize cfg kernel ~geometries:[ geo ~grid:4; geo ~grid:1 ] with
  | Error e -> Alcotest.fail e
  | Ok t ->
    let names =
      List.map
        (fun (k : Minicuda.Ast.kernel) -> k.Minicuda.Ast.kernel_name)
        (Catt.Variants.program_of t).Minicuda.Ast.kernels
    in
    Alcotest.(check int) "unique names" (List.length names)
      (List.length (List.sort_uniq compare names));
    (* the emitted program must still be parseable source *)
    let printed = Minicuda.Pretty.program (Catt.Variants.program_of t) in
    ignore (Minicuda.Parser.parse_program printed)

let test_variants_empty_rejected () =
  match Catt.Variants.specialize cfg kernel ~geometries:[] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty geometry list must be rejected"

(* ------------------------- cache settle ---------------------------- *)

let test_cache_settle_keeps_contents () =
  let c = Gpusim.Cache.create ~bytes:(4 * 1024) ~assoc:4 ~line_bytes:128 ~mshrs:4 () in
  let miss ~issue = issue + 1000 in
  ignore (Gpusim.Cache.access c ~now:0 ~line:3 ~miss_ready:miss);
  (* in flight until cycle 1000; a new kernel starts its clock at 0 *)
  Gpusim.Cache.settle c;
  let ready, outcome = Gpusim.Cache.access c ~now:0 ~line:3 ~miss_ready:miss in
  Alcotest.(check bool) "hit after settle" true (outcome = Gpusim.Cache.Hit);
  Alcotest.(check int) "available immediately" 0 ready

let test_cache_settle_frees_mshrs () =
  let c = Gpusim.Cache.create ~bytes:(64 * 1024) ~assoc:4 ~line_bytes:128 ~mshrs:2 () in
  let miss ~issue = issue + 1000000 in
  ignore (Gpusim.Cache.access c ~now:0 ~line:1 ~miss_ready:miss);
  ignore (Gpusim.Cache.access c ~now:0 ~line:2 ~miss_ready:miss);
  Gpusim.Cache.settle c;
  (* without settle this third miss would stall until cycle 1000000 *)
  let ready, _ = Gpusim.Cache.access c ~now:0 ~line:3 ~miss_ready:(fun ~issue -> issue + 10) in
  Alcotest.(check int) "no stale stall" 10 ready

let tests =
  [
    ( "ext.dynamic",
      [
        Alcotest.test_case "controller reverses" `Quick test_dynamic_controller_reverses;
        Alcotest.test_case "controller bounds" `Quick test_dynamic_controller_bounds;
        Alcotest.test_case "dynamic launch" `Quick test_dynamic_launch_correct_and_runs;
        Alcotest.test_case "dynamic scheme verifies" `Quick test_dynamic_scheme_verifies;
      ] );
    ( "ext.ccws",
      [
        Alcotest.test_case "VTA scoring" `Quick test_ccws_scoring;
        Alcotest.test_case "allowed set shrinks" `Quick test_ccws_allowed_shrinks;
        Alcotest.test_case "decay recovers" `Quick test_ccws_decay_recovers;
        Alcotest.test_case "launch correctness" `Quick test_ccws_launch_correct;
        Alcotest.test_case "scheme verifies" `Quick test_ccws_scheme_verifies;
      ] );
    ( "ext.daws",
      [
        Alcotest.test_case "loop extents" `Quick test_daws_loop_extents;
        Alcotest.test_case "admission and prediction" `Quick test_daws_admission_and_prediction;
        Alcotest.test_case "unprofiled loops free" `Quick test_daws_unprofiled_loop_free;
        Alcotest.test_case "launch correctness + speedup" `Quick
          test_daws_launch_correct_and_effective;
        Alcotest.test_case "scheme verifies" `Quick test_daws_scheme_verifies;
      ] );
    ( "ext.swl",
      [
        Alcotest.test_case "launch correctness" `Quick test_swl_launch_correct;
        Alcotest.test_case "limit 1 completes" `Quick test_swl_limit_one_still_completes;
        Alcotest.test_case "best-SWL minimizes" `Quick test_best_swl_is_minimum;
        Alcotest.test_case "invalid limit" `Quick test_swl_invalid_rejected;
      ] );
    ( "ext.bypass",
      [
        Alcotest.test_case "selection" `Quick test_bypass_selection;
        Alcotest.test_case "launch counters" `Quick test_bypass_launch_counts;
        Alcotest.test_case "unknown array" `Quick test_bypass_unknown_array_rejected;
        Alcotest.test_case "weaker than CATT (Sec 2.2)" `Quick test_bypass_weaker_than_catt;
      ] );
    ( "ext.variants",
      [
        Alcotest.test_case "dedup and split" `Quick test_variants_dedup_and_split;
        Alcotest.test_case "exact selection" `Quick test_variants_select_exact;
        Alcotest.test_case "nearest fallback" `Quick test_variants_select_fallback;
        Alcotest.test_case "emitted program" `Quick test_variants_program_names_unique;
        Alcotest.test_case "empty rejected" `Quick test_variants_empty_rejected;
      ] );
    ( "ext.settle",
      [
        Alcotest.test_case "keeps contents" `Quick test_cache_settle_keeps_contents;
        Alcotest.test_case "frees MSHRs" `Quick test_cache_settle_frees_mshrs;
      ] );
  ]
