(** Unit and property tests for the gpu_util library. *)

let check_float = Alcotest.(check (float 1e-9))

(* ---------------------------- Rng --------------------------------- *)

let test_rng_determinism () =
  let a = Gpu_util.Rng.create 123 in
  let b = Gpu_util.Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Gpu_util.Rng.int a 1000) (Gpu_util.Rng.int b 1000)
  done

let test_rng_different_seeds () =
  let a = Gpu_util.Rng.create 1 in
  let b = Gpu_util.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Gpu_util.Rng.int a 1000000 = Gpu_util.Rng.int b 1000000 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_split_independent () =
  let parent = Gpu_util.Rng.create 9 in
  let child = Gpu_util.Rng.split parent in
  let child_values = List.init 20 (fun _ -> Gpu_util.Rng.int child 1000) in
  let parent_values = List.init 20 (fun _ -> Gpu_util.Rng.int parent 1000) in
  Alcotest.(check bool) "independent streams" true (child_values <> parent_values)

let test_rng_permutation () =
  let rng = Gpu_util.Rng.create 5 in
  let p = Gpu_util.Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let rng = Gpu_util.Rng.create seed in
      let ok = ref true in
      for _ = 1 to 20 do
        let v = Gpu_util.Rng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float stays in [0, bound)" ~count:200
    QCheck.(pair small_int (float_range 0.001 1000.))
    (fun (seed, bound) ->
      let rng = Gpu_util.Rng.create seed in
      let v = Gpu_util.Rng.float rng bound in
      v >= 0. && v < bound)

(* --------------------------- Stats -------------------------------- *)

let test_mean () = check_float "mean" 2.5 (Gpu_util.Stats.mean [| 1.; 2.; 3.; 4. |])

let test_geomean () =
  check_float "geomean of 1,4" 2. (Gpu_util.Stats.geomean [| 1.; 4. |])

let test_geomean_rejects_nonpositive () =
  Alcotest.check_raises "non-positive sample"
    (Invalid_argument "Stats.geomean: non-positive sample") (fun () ->
      ignore (Gpu_util.Stats.geomean [| 1.; 0. |]))

let test_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty sample array")
    (fun () -> ignore (Gpu_util.Stats.mean [||]))

let test_median_odd () =
  check_float "median" 3. (Gpu_util.Stats.median [| 5.; 1.; 3. |])

let test_percentile_interpolates () =
  check_float "p25" 1.75 (Gpu_util.Stats.percentile [| 1.; 2.; 3.; 4. |] 25.)

let test_percentile_extremes () =
  let samples = [| 7.; 3.; 9. |] in
  check_float "p0 = min" 3. (Gpu_util.Stats.percentile samples 0.);
  check_float "p100 = max" 9. (Gpu_util.Stats.percentile samples 100.)

let test_stddev () =
  check_float "stddev" 2. (Gpu_util.Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_speedup_normalize () =
  check_float "speedup" 2. (Gpu_util.Stats.speedup ~baseline:10. 5.);
  check_float "normalize" 0.5 (Gpu_util.Stats.normalize ~baseline:10. 5.)

let prop_geomean_between_min_max =
  QCheck.Test.make ~name:"geomean within [min, max]" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.01 100.))
    (fun samples ->
      let arr = Array.of_list samples in
      let g = Gpu_util.Stats.geomean arr in
      g >= Gpu_util.Stats.minimum arr -. 1e-9
      && g <= Gpu_util.Stats.maximum arr +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 30) (float_range (-100.) 100.))
    (fun samples ->
      let arr = Array.of_list samples in
      let ps = [ 0.; 10.; 25.; 50.; 75.; 90.; 100. ] in
      let values = List.map (Gpu_util.Stats.percentile arr) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono values)

(* --------------------------- Table -------------------------------- *)

let test_table_rendering () =
  let t = Gpu_util.Table.create [ "a"; "bb" ] in
  Gpu_util.Table.add_row t [ "x"; "1" ];
  Gpu_util.Table.add_row t [ "yyy"; "22" ];
  let rendered = Gpu_util.Table.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  (* all lines same width *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_arity_check () =
  let t = Gpu_util.Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Gpu_util.Table.add_row t [ "only one" ])

let test_table_cells () =
  Alcotest.(check string) "float" "3.14" (Gpu_util.Table.cell_float 3.14159);
  Alcotest.(check string) "pct" "42.96%" (Gpu_util.Table.cell_pct 0.4296)

(* ------------------------- Ascii_plot ----------------------------- *)

let test_bar_chart_scales () =
  let chart = Gpu_util.Ascii_plot.bar_chart ~width:10 [ ("a", 10.); ("b", 5.) ] in
  let lines = String.split_on_char '\n' chart in
  let count_hash s = String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 s in
  match lines with
  | [ a; b ] ->
    Alcotest.(check int) "full bar" 10 (count_hash a);
    Alcotest.(check int) "half bar" 5 (count_hash b)
  | _ -> Alcotest.fail "expected two lines"

let test_sparkline_extremes () =
  let s = Gpu_util.Ascii_plot.sparkline [| 0.; 1. |] in
  Alcotest.(check char) "low is blank" ' ' s.[0];
  Alcotest.(check char) "high is dense" '@' s.[1]

let test_series_nonempty () =
  let s = Gpu_util.Ascii_plot.series ~width:20 ~height:5 (Array.init 100 float_of_int) in
  Alcotest.(check int) "5 rows" 5 (List.length (String.split_on_char '\n' s))

(* ------------------------ Single_flight --------------------------- *)

module Sf = Gpu_util.Single_flight

let test_single_flight_solo () =
  let t = Sf.create () in
  (match Sf.run t "k" (fun () -> 41 + 1) with
  | `Led 42 -> ()
  | `Led n -> Alcotest.failf "leader computed %d" n
  | `Joined _ -> Alcotest.fail "nothing to join without a concurrent leader");
  Alcotest.(check int) "no flight left behind" 0 (Sf.in_flight t)

(* a leader that holds its flight open while [k - 1] more callers arrive:
   the thunk must run exactly once, with every late caller joining *)
let test_single_flight_coalesces () =
  let t = Sf.create () in
  let k = 6 in
  let release = Atomic.make false in
  let evals = Atomic.make 0 in
  let led = Atomic.make 0 and joined = Atomic.make 0 in
  let entered = Atomic.make 0 in
  let body () =
    Atomic.incr entered;
    match
      Sf.run t "cell" (fun () ->
          Atomic.incr evals;
          while not (Atomic.get release) do
            Thread.yield ()
          done;
          7)
    with
    | `Led 7 -> Atomic.incr led
    | `Joined 7 -> Atomic.incr joined
    | `Led n | `Joined n -> Alcotest.failf "wrong value %d" n
  in
  let leader = Thread.create body () in
  (* the flight is provably open before any follower starts *)
  while Sf.in_flight t < 1 do
    Thread.yield ()
  done;
  let followers = List.init (k - 1) (fun _ -> Thread.create body ()) in
  while Atomic.get entered < k do
    Thread.yield ()
  done;
  Unix.sleepf 0.05 (* let the last follower reach the flight table *);
  Atomic.set release true;
  List.iter Thread.join (leader :: followers);
  Alcotest.(check int) "thunk ran exactly once" 1 (Atomic.get evals);
  Alcotest.(check int) "one leader" 1 (Atomic.get led);
  Alcotest.(check int) "the rest joined" (k - 1) (Atomic.get joined);
  Alcotest.(check int) "entry retired" 0 (Sf.in_flight t)

exception Boom of int

(* a raising leader: the exception reaches the leader AND every waiter,
   the entry is removed (no leak), and the next call retries fresh *)
let test_single_flight_error_fanout () =
  let t = Sf.create () in
  let release = Atomic.make false in
  let raised = Atomic.make 0 in
  let body () =
    match
      Sf.run t "cell" (fun () ->
          while not (Atomic.get release) do
            Thread.yield ()
          done;
          raise (Boom 9))
    with
    | exception Boom 9 -> Atomic.incr raised
    | `Led _ | `Joined _ -> Alcotest.fail "the failure must propagate"
  in
  let leader = Thread.create body () in
  while Sf.in_flight t < 1 do
    Thread.yield ()
  done;
  let follower = Thread.create body () in
  Unix.sleepf 0.05;
  Atomic.set release true;
  Thread.join leader;
  Thread.join follower;
  Alcotest.(check int) "both saw the exception" 2 (Atomic.get raised);
  Alcotest.(check int) "failed entry removed, not cached" 0 (Sf.in_flight t);
  match Sf.run t "cell" (fun () -> 3) with
  | `Led 3 -> ()
  | _ -> Alcotest.fail "a later call must lead a fresh flight"

(* flights on distinct keys are independent: key "b" completes while the
   leader of key "a" is still computing *)
let test_single_flight_distinct_keys () =
  let t = Sf.create () in
  let release = Atomic.make false in
  let slow =
    Thread.create
      (fun () ->
        ignore
          (Sf.run t "a" (fun () ->
               while not (Atomic.get release) do
                 Thread.yield ()
               done;
               0)))
      ()
  in
  while Sf.in_flight t < 1 do
    Thread.yield ()
  done;
  (match Sf.run t "b" (fun () -> 5) with
  | `Led 5 -> ()
  | _ -> Alcotest.fail "key b must not serialize behind key a");
  Alcotest.(check int) "a still in flight" 1 (Sf.in_flight t);
  Atomic.set release true;
  Thread.join slow;
  Alcotest.(check int) "quiescent" 0 (Sf.in_flight t)

let tests =
  [
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seeds differ" `Quick test_rng_different_seeds;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "permutation" `Quick test_rng_permutation;
        QCheck_alcotest.to_alcotest prop_rng_int_bounds;
        QCheck_alcotest.to_alcotest prop_rng_float_bounds;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "geomean" `Quick test_geomean;
        Alcotest.test_case "geomean rejects <= 0" `Quick test_geomean_rejects_nonpositive;
        Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
        Alcotest.test_case "median" `Quick test_median_odd;
        Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolates;
        Alcotest.test_case "percentile extremes" `Quick test_percentile_extremes;
        Alcotest.test_case "stddev" `Quick test_stddev;
        Alcotest.test_case "speedup/normalize" `Quick test_speedup_normalize;
        QCheck_alcotest.to_alcotest prop_geomean_between_min_max;
        QCheck_alcotest.to_alcotest prop_percentile_monotone;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "rendering" `Quick test_table_rendering;
        Alcotest.test_case "arity check" `Quick test_table_arity_check;
        Alcotest.test_case "cell formatting" `Quick test_table_cells;
      ] );
    ( "util.plot",
      [
        Alcotest.test_case "bar chart scaling" `Quick test_bar_chart_scales;
        Alcotest.test_case "sparkline extremes" `Quick test_sparkline_extremes;
        Alcotest.test_case "series size" `Quick test_series_nonempty;
      ] );
    ( "util.single_flight",
      [
        Alcotest.test_case "solo caller leads" `Quick test_single_flight_solo;
        Alcotest.test_case "concurrent callers coalesce" `Quick
          test_single_flight_coalesces;
        Alcotest.test_case "errors fan out and don't cache" `Quick
          test_single_flight_error_fanout;
        Alcotest.test_case "distinct keys don't serialize" `Quick
          test_single_flight_distinct_keys;
      ] );
  ]
