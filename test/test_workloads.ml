(** Integration tests over the benchmark suite: every workload must parse,
    typecheck, compile, run on the simulator and satisfy its CPU oracle —
    at baseline, under CATT's transformations, and under a uniform fixed
    throttle (exercising both transformation paths on real kernels).

    Also checks the suite-level guarantees the paper's evaluation rests on:
    cache-insensitive workloads must be left at baseline TLP by CATT, and
    the microbenchmark family must match its closed-form oracle. *)

let cfg = Gpusim.Config.scaled ~num_sms:4 ~onchip_bytes:(32 * 1024) ()

let run_scheme (w : Workloads.Workload.t) scheme =
  Experiments.Runner.run cfg w scheme

let check_verified (w : Workloads.Workload.t) scheme () =
  let r = run_scheme w scheme in
  match r.Experiments.Runner.verified with
  | Ok () -> ()
  | Error msg ->
    Alcotest.failf "%s under %s: %s" w.Workloads.Workload.name
      (Experiments.Runner.scheme_label scheme)
      msg

let per_workload_cases (w : Workloads.Workload.t) =
  [
    Alcotest.test_case (w.Workloads.Workload.name ^ " baseline") `Quick
      (check_verified w Experiments.Runner.Baseline);
    Alcotest.test_case (w.Workloads.Workload.name ^ " CATT") `Quick
      (check_verified w Experiments.Runner.Catt);
    Alcotest.test_case (w.Workloads.Workload.name ^ " fixed(2,1)") `Slow
      (check_verified w (Experiments.Runner.Fixed (2, 1)));
  ]

let test_all_sources_typecheck () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let program = Workloads.Workload.parse w in
      ignore (Minicuda.Typecheck.check_program program))
    Workloads.Registry.all

let test_all_launch_kernels_exist () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      List.iter
        (fun (l : Workloads.Workload.kernel_launch) ->
          ignore (Workloads.Workload.find_kernel w l.Workloads.Workload.kernel_name))
        w.Workloads.Workload.launches)
    Workloads.Registry.all

let test_registry_find () =
  Alcotest.(check string) "case-insensitive" "ATAX"
    (Workloads.Registry.find "atax").Workloads.Workload.name;
  Alcotest.check_raises "unknown"
    (Invalid_argument
       (Printf.sprintf "unknown workload nope (known: %s)"
          (String.concat ", " (Workloads.Registry.names `All))))
    (fun () -> ignore (Workloads.Registry.find "nope"))

let test_groups_disjoint () =
  let cs = Workloads.Registry.names `Cs and ci = Workloads.Registry.names `Ci in
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " not in both") false (List.mem name ci))
    cs

(* CATT must select baseline TLP for every CI workload (paper Fig. 8) *)
let test_catt_leaves_ci_alone () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let base = run_scheme w Experiments.Runner.Baseline in
      let catt = run_scheme w Experiments.Runner.Catt in
      Alcotest.(check int)
        (w.Workloads.Workload.name ^ " cycles unchanged")
        base.Experiments.Runner.total_cycles catt.Experiments.Runner.total_cycles)
    Workloads.Registry.ci

(* the headline direction: CATT strictly helps the contended benchmarks *)
let test_catt_speeds_up_divergent_cs () =
  List.iter
    (fun name ->
      let w = Workloads.Registry.find name in
      let base = run_scheme w Experiments.Runner.Baseline in
      let catt = run_scheme w Experiments.Runner.Catt in
      Alcotest.(check bool)
        (name ^ " faster under CATT")
        true
        (catt.Experiments.Runner.total_cycles < base.Experiments.Runner.total_cycles))
    [ "ATAX"; "BICG"; "GSMV"; "KM"; "PF" ]

(* unresolvable contention keeps baseline TLP: CORR's footprint cannot be
   made to fit even at minimum TLP, so CATT must leave it alone *)
let test_catt_preserves_unresolved () =
  List.iter
    (fun name ->
      let w = Workloads.Registry.find name in
      let base = run_scheme w Experiments.Runner.Baseline in
      let catt = run_scheme w Experiments.Runner.Catt in
      Alcotest.(check int) (name ^ " untouched")
        base.Experiments.Runner.total_cycles catt.Experiments.Runner.total_cycles)
    [ "CORR" ]

(* Regression for the Eq. 7 irregular-access undercount: with irregular
   accesses modeled as one request per *warp* (the old bug), BFS and CFD
   footprints looked tiny and CATT left them at full TLP.  The corrected
   uncoalesced model (warp_size requests per warp) must produce an actual
   throttling decision for these irregular CS kernels. *)
let test_catt_throttles_irregular () =
  List.iter
    (fun (name, kernel_name) ->
      let w = Workloads.Registry.find name in
      let r = run_scheme w Experiments.Runner.Catt in
      let t = List.assoc kernel_name r.Experiments.Runner.catt_analyses in
      let throttled =
        List.exists
          (fun (l : Catt.Driver.loop_decision) ->
            l.Catt.Driver.decision.Catt.Throttle.throttled)
          t.Catt.Driver.loops
      in
      Alcotest.(check bool) (name ^ "/" ^ kernel_name ^ " throttled") true
        throttled;
      Alcotest.(check bool)
        (name ^ " TLP below baseline") true
        (List.exists
           (fun (l : Catt.Driver.loop_decision) ->
             Catt.Driver.selected_tlp t
               ~loop_id:
                 l.Catt.Driver.footprint.Catt.Footprint.loop
                   .Catt.Analysis.loop_id
             < t.Catt.Driver.baseline_tlp)
           t.Catt.Driver.loops))
    [ ("BFS", "bfs_expand"); ("CFD", "cfd_compute_flux") ]

(* --------------------------- Microbench ---------------------------- *)

let test_microbench_matches_oracle () =
  let v =
    Workloads.Microbench.variant ~l1d_bytes:(32 * 1024) ~line_bytes:128
      ~warp_size:32 ~fill_warps:8 ~reps:2
  in
  List.iter
    (fun warps ->
      let stats = Workloads.Microbench.run cfg v ~warps in
      Alcotest.(check bool)
        (Printf.sprintf "ran with %d warps" warps)
        true
        (stats.Gpusim.Stats.cycles > 0))
    [ 1; 4; 32 ]

let test_microbench_output_correct () =
  (* re-run and compare the out vector against the closed-form oracle *)
  let v =
    Workloads.Microbench.variant ~l1d_bytes:(32 * 1024) ~line_bytes:128
      ~warp_size:32 ~fill_warps:8 ~reps:2
  in
  let warps = 4 in
  let kernel =
    Minicuda.Parser.parse_kernel (Workloads.Microbench.source v ~warps)
  in
  let prog = Gpusim.Codegen.compile_kernel kernel in
  let dev = Gpusim.Gpu.create cfg in
  let ws = 32 and num_sms = 4 in
  let data_len = num_sms * v.Workloads.Microbench.slices * ws * v.Workloads.Microbench.span in
  Gpusim.Gpu.upload dev "data" (Array.init data_len (fun i -> float_of_int (i land 15)));
  Gpusim.Gpu.alloc dev "out" (num_sms * warps * ws);
  ignore
    (Gpusim.Gpu.launch dev
       (Gpusim.Gpu.default_launch ~prog ~grid:(num_sms, 1) ~block:(warps * ws, 1)
          [ Gpusim.Gpu.Arr "data"; Gpusim.Gpu.Arr "out" ]));
  let expected = Workloads.Microbench.expected cfg v ~warps in
  let out = Gpusim.Gpu.get dev "out" in
  Alcotest.(check int) "length" (Array.length expected) (Array.length out);
  Array.iteri
    (fun i e ->
      if abs_float (e -. out.(i)) > 1e-6 then
        Alcotest.failf "out[%d]: expected %g, got %g" i e out.(i))
    expected

let test_microbench_fill_point_is_sized_right () =
  List.iter
    (fun fill ->
      let v =
        Workloads.Microbench.variant ~l1d_bytes:(32 * 1024) ~line_bytes:128
          ~warp_size:32 ~fill_warps:fill ~reps:2
      in
      (* fill_warps slices must exactly fill the L1D *)
      Alcotest.(check int)
        (Printf.sprintf "fill %d" fill)
        (32 * 1024)
        (fill * v.Workloads.Microbench.span * 32 * 4))
    [ 4; 8; 16 ]

let tests =
  [
    ( "workloads.static",
      [
        Alcotest.test_case "all sources typecheck" `Quick test_all_sources_typecheck;
        Alcotest.test_case "launch kernels exist" `Quick test_all_launch_kernels_exist;
        Alcotest.test_case "registry find" `Quick test_registry_find;
        Alcotest.test_case "CS/CI disjoint" `Quick test_groups_disjoint;
      ] );
    ("workloads.run", List.concat_map per_workload_cases Workloads.Registry.all);
    ( "workloads.properties",
      [
        Alcotest.test_case "CATT leaves CI alone" `Quick test_catt_leaves_ci_alone;
        Alcotest.test_case "CATT speeds up divergent CS" `Quick test_catt_speeds_up_divergent_cs;
        Alcotest.test_case "unresolved preserved" `Quick test_catt_preserves_unresolved;
        Alcotest.test_case "irregular now throttled" `Quick test_catt_throttles_irregular;
      ] );
    ( "workloads.microbench",
      [
        Alcotest.test_case "runs across TLP" `Quick test_microbench_matches_oracle;
        Alcotest.test_case "output matches oracle" `Quick test_microbench_output_correct;
        Alcotest.test_case "fill sizing" `Quick test_microbench_fill_point_is_sized_right;
      ] );
  ]
