(** Tests for the GPU simulator: cache, coalescer, occupancy, code
    generation and SIMT execution semantics (divergence, loops, barriers,
    early return), plus a differential property checking the simulator
    against direct evaluation on randomly generated kernels. *)

module Cache = Gpusim.Cache
module Coalescer = Gpusim.Coalescer
module Cta = Gpusim.Cta_scheduler
module Config = Gpusim.Config
module Gpu = Gpusim.Gpu

(* ---------------------------- Cache -------------------------------- *)

let no_mem = fun ~issue -> issue + 100

let test_cache_miss_then_hit () =
  let c = Cache.create ~bytes:(4 * 1024) ~assoc:4 ~line_bytes:128 ~mshrs:8 () in
  let _, o1 = Cache.access c ~now:0 ~line:5 ~miss_ready:no_mem in
  Alcotest.(check bool) "first is miss" true (o1 = Cache.Miss);
  let t2, o2 = Cache.access c ~now:200 ~line:5 ~miss_ready:no_mem in
  Alcotest.(check bool) "second is hit" true (o2 = Cache.Hit);
  Alcotest.(check int) "hit at now" 200 t2

let test_cache_pending_hit () =
  let c = Cache.create ~bytes:(4 * 1024) ~assoc:4 ~line_bytes:128 ~mshrs:8 () in
  let ready, _ = Cache.access c ~now:0 ~line:7 ~miss_ready:no_mem in
  Alcotest.(check int) "fill at 100" 100 ready;
  let t, o = Cache.access c ~now:50 ~line:7 ~miss_ready:no_mem in
  Alcotest.(check bool) "pending hit" true (o = Cache.Pending_hit);
  Alcotest.(check int) "waits for fill" 100 t

let test_cache_lru_eviction () =
  (* one-set cache: 2 ways *)
  let c = Cache.create ~bytes:256 ~assoc:2 ~line_bytes:128 ~mshrs:8 () in
  Alcotest.(check int) "single set" 1 (Cache.sets c);
  ignore (Cache.access c ~now:0 ~line:1 ~miss_ready:no_mem);
  ignore (Cache.access c ~now:1 ~line:2 ~miss_ready:no_mem);
  ignore (Cache.access c ~now:2 ~line:1 ~miss_ready:no_mem) |> ignore;
  (* line 1 is MRU; inserting line 3 must evict line 2 *)
  ignore (Cache.access c ~now:3 ~line:3 ~miss_ready:no_mem);
  Alcotest.(check bool) "line 1 kept" true (Cache.contains c ~line:1);
  Alcotest.(check bool) "line 2 evicted" false (Cache.contains c ~line:2)

let test_cache_mshr_stall () =
  let c = Cache.create ~bytes:(64 * 1024) ~assoc:4 ~line_bytes:128 ~mshrs:2 () in
  let r1, _ = Cache.access c ~now:0 ~line:10 ~miss_ready:no_mem in
  let r2, _ = Cache.access c ~now:0 ~line:20 ~miss_ready:no_mem in
  Alcotest.(check int) "r1" 100 r1;
  Alcotest.(check int) "r2" 100 r2;
  (* both MSHRs busy: the third miss's issue is delayed to the earliest fill *)
  let r3, _ = Cache.access c ~now:1 ~line:30 ~miss_ready:no_mem in
  Alcotest.(check int) "r3 delayed" 200 r3

let test_cache_write_no_allocate () =
  let c = Cache.create ~bytes:(4 * 1024) ~assoc:4 ~line_bytes:128 ~mshrs:8 () in
  Alcotest.(check bool) "absent write" false (Cache.write_update c ~now:0 ~line:9);
  Alcotest.(check bool) "still absent" false (Cache.contains c ~line:9);
  ignore (Cache.access c ~now:0 ~line:9 ~miss_ready:no_mem);
  Alcotest.(check bool) "present write" true (Cache.write_update c ~now:1 ~line:9)

let test_cache_flush () =
  let c = Cache.create ~bytes:(4 * 1024) ~assoc:4 ~line_bytes:128 ~mshrs:8 () in
  ignore (Cache.access c ~now:0 ~line:3 ~miss_ready:no_mem);
  Cache.flush c;
  Alcotest.(check bool) "gone after flush" false (Cache.contains c ~line:3)

let prop_cache_capacity =
  QCheck.Test.make ~name:"working set <= ways per set never re-misses" ~count:100
    QCheck.(int_range 0 1000)
    (fun start ->
      let c = Cache.create ~bytes:(8 * 1024) ~assoc:4 ~line_bytes:128 ~mshrs:16 () in
      (* four lines that map to the same set under any hashing still fit *)
      let lines = [ start; start + 1; start + 2; start + 3 ] in
      List.iter (fun l -> ignore (Cache.access c ~now:0 ~line:l ~miss_ready:no_mem)) lines;
      List.for_all
        (fun l -> snd (Cache.access c ~now:500 ~line:l ~miss_ready:no_mem) = Cache.Hit)
        lines)

(* -------------------------- Coalescer ------------------------------ *)

let test_coalescer_broadcast () =
  let addrs = Array.make 32 4096 in
  Alcotest.(check int) "same address -> 1 line" 1
    (Coalescer.count ~line_bytes:128 ~addrs ~mask:0xFFFFFFFF)

let test_coalescer_contiguous () =
  let addrs = Array.init 32 (fun i -> i * 4) in
  Alcotest.(check int) "contiguous floats -> 1 line" 1
    (Coalescer.count ~line_bytes:128 ~addrs ~mask:0xFFFFFFFF)

let test_coalescer_divergent () =
  let addrs = Array.init 32 (fun i -> i * 4096) in
  Alcotest.(check int) "4KB stride -> 32 lines" 32
    (Coalescer.count ~line_bytes:128 ~addrs ~mask:0xFFFFFFFF)

let test_coalescer_stride_8 () =
  (* the paper's example: inter-thread distance of 8 elements (32 B) means
     every four threads share a line: 8 requests per warp *)
  let addrs = Array.init 32 (fun i -> i * 32) in
  Alcotest.(check int) "8 lines" 8
    (Coalescer.count ~line_bytes:128 ~addrs ~mask:0xFFFFFFFF)

let test_coalescer_mask () =
  let addrs = Array.init 32 (fun i -> i * 4096) in
  Alcotest.(check int) "only active lanes" 4
    (Coalescer.count ~line_bytes:128 ~addrs ~mask:0b1111)

let prop_coalescer_bounds =
  QCheck.Test.make ~name:"1 <= requests <= active lanes" ~count:300
    QCheck.(pair (list_of_size (Gen.return 32) (int_range 0 100000)) (int_range 1 0xFFFFFFFF))
    (fun (addr_list, mask) ->
      let addrs = Array.of_list addr_list in
      let active = ref 0 in
      for lane = 0 to 31 do
        if mask land (1 lsl lane) <> 0 then incr active
      done;
      let n = Coalescer.count ~line_bytes:128 ~addrs ~mask in
      n >= min 1 !active && n <= max 1 !active)

(* ------------------------- Occupancy ------------------------------- *)

let cfg = Config.scaled ~num_sms:4 ~onchip_bytes:(32 * 1024) ()

let test_occupancy_warp_limit () =
  (* 256-thread TBs, no shared, few registers: warp slots bind (32/8 = 4) *)
  Alcotest.(check int) "warp-slot bound" 4
    (Cta.max_tbs_per_sm cfg ~tb_threads:256 ~num_regs:8 ~shared_bytes:0 ~smem_carveout:0)

let test_occupancy_register_limit () =
  (* Eq. 2: 64KB regfile / (64 regs * 4B * 256 threads) = 1 *)
  Alcotest.(check int) "register bound" 1
    (Cta.max_tbs_per_sm cfg ~tb_threads:256 ~num_regs:64 ~shared_bytes:0 ~smem_carveout:0)

let test_occupancy_shared_limit () =
  (* Eq. 1: 8KB carveout / 3KB per TB = 2 *)
  Alcotest.(check int) "shared bound" 2
    (Cta.max_tbs_per_sm cfg ~tb_threads:64 ~num_regs:8 ~shared_bytes:3072
       ~smem_carveout:8192)

let test_occupancy_zero_when_oversized () =
  Alcotest.(check int) "impossible TB" 0
    (Cta.max_tbs_per_sm cfg ~tb_threads:256 ~num_regs:128 ~shared_bytes:0 ~smem_carveout:0)

let test_warps_per_tb_rounds_up () =
  Alcotest.(check int) "65 threads = 3 warps" 3 (Cta.warps_per_tb cfg ~tb_threads:65)

(* --------------------------- Codegen ------------------------------- *)

let compile src = Gpusim.Codegen.compile_kernel (Minicuda.Parser.parse_kernel src)

let test_codegen_register_recycling () =
  (* two sibling loops with identical bodies must not double the register
     count: block-scoped locals are recycled *)
  let one = compile
    "__global__ void k(float *a) { for (int i = 0; i < 4; i++) { float t = a[i]; a[i] = t * 2.0; } }" in
  let two = compile
    "__global__ void k(float *a) { for (int i = 0; i < 4; i++) { float t = a[i]; a[i] = t * 2.0; } for (int i = 0; i < 4; i++) { float t = a[i]; a[i] = t * 2.0; } }" in
  Alcotest.(check int) "same register demand"
    one.Gpusim.Bytecode.num_regs two.Gpusim.Bytecode.num_regs

let test_codegen_global_load_ids () =
  let p = compile "__global__ void k(float *a, float *b) { b[0] = a[1] + a[2]; }" in
  Alcotest.(check int) "two global loads" 2 (List.length p.Gpusim.Bytecode.global_load_ids)

let test_codegen_shared_metadata () =
  let p = compile "__global__ void k(float *a) { __shared__ float s[128]; s[0] = a[0]; a[1] = s[0]; }" in
  Alcotest.(check int) "shared bytes" 512 p.Gpusim.Bytecode.shared_bytes;
  Alcotest.(check int) "one shared array" 1 (List.length p.Gpusim.Bytecode.shared_arrays)

let test_codegen_scalar_params () =
  let p = compile "__global__ void k(float *a, int n, float alpha) { if (threadIdx.x < n) { a[threadIdx.x] = alpha; } }" in
  Alcotest.(check int) "two preloaded scalars" 2
    (List.length p.Gpusim.Bytecode.scalar_param_regs)

(* ------------------------ Execution semantics ---------------------- *)

(* run a one-kernel program over given named arrays, return device *)
let run_kernel ?(grid = (1, 1)) ?(block = (32, 1)) ?(config = cfg) src arrays =
  let prog = compile src in
  let dev = Gpu.create config in
  List.iter (fun (name, data) -> Gpu.upload dev name data) arrays;
  let args = List.map (fun (name, _) -> Gpu.Arr name) arrays in
  let stats, _ = Gpu.launch dev (Gpu.default_launch ~prog ~grid ~block args) in
  (dev, stats)

let farray = Alcotest.testable (Fmt.Dump.array Fmt.float) (fun a b ->
    Array.length a = Array.length b
    && Array.for_all2 (fun x y -> abs_float (x -. y) < 1e-9) a b)

let test_exec_if_divergence () =
  let dev, _ =
    run_kernel
      "__global__ void k(float *out) { int i = threadIdx.x; if (i % 2 == 0) { out[i] = 1.0; } else { out[i] = 2.0; } }"
      [ ("out", Array.make 32 0.) ]
  in
  Alcotest.check farray "alternating"
    (Array.init 32 (fun i -> if i mod 2 = 0 then 1. else 2.))
    (Gpu.get dev "out")

let test_exec_nested_divergence () =
  let dev, _ =
    run_kernel
      "__global__ void k(float *out) { int i = threadIdx.x; if (i < 16) { if (i < 8) { out[i] = 1.0; } else { out[i] = 2.0; } } else { out[i] = 3.0; } }"
      [ ("out", Array.make 32 0.) ]
  in
  Alcotest.check farray "three regions"
    (Array.init 32 (fun i -> if i < 8 then 1. else if i < 16 then 2. else 3.))
    (Gpu.get dev "out")

let test_exec_divergent_trip_counts () =
  (* each lane iterates a different number of times *)
  let dev, _ =
    run_kernel
      "__global__ void k(float *out) { int i = threadIdx.x; float acc = 0.0; for (int j = 0; j < i; j++) { acc += 1.0; } out[i] = acc; }"
      [ ("out", Array.make 32 0.) ]
  in
  Alcotest.check farray "lane i counts to i"
    (Array.init 32 float_of_int) (Gpu.get dev "out")

let test_exec_early_return () =
  let dev, _ =
    run_kernel
      "__global__ void k(float *out) { int i = threadIdx.x; if (i >= 10) { return; } out[i] = 5.0; }"
      [ ("out", Array.make 32 1.) ]
  in
  Alcotest.check farray "lanes >= 10 untouched"
    (Array.init 32 (fun i -> if i < 10 then 5. else 1.))
    (Gpu.get dev "out")

let test_exec_barrier_ordering () =
  (* warp 1 reads what warp 0 wrote before the barrier *)
  let dev, _ =
    run_kernel ~block:(64, 1)
      "__global__ void k(float *out) { __shared__ float s[64]; int i = threadIdx.x; s[i] = (float)i * 10.0; __syncthreads(); out[i] = s[63 - i]; }"
      [ ("out", Array.make 64 0.) ]
  in
  Alcotest.check farray "cross-warp exchange"
    (Array.init 64 (fun i -> float_of_int (63 - i) *. 10.))
    (Gpu.get dev "out")

let test_exec_shared_is_per_tb () =
  (* two TBs write different values into "the same" shared slot *)
  let dev, _ =
    run_kernel ~grid:(2, 1) ~block:(32, 1)
      "__global__ void k(float *out) { __shared__ float s[32]; s[threadIdx.x] = (float)blockIdx.x + 1.0; __syncthreads(); out[blockIdx.x * 32 + threadIdx.x] = s[threadIdx.x]; }"
      [ ("out", Array.make 64 0.) ]
  in
  Alcotest.check farray "private shared"
    (Array.init 64 (fun i -> if i < 32 then 1. else 2.))
    (Gpu.get dev "out")

let test_exec_integer_division_truncates () =
  let dev, _ =
    run_kernel
      "__global__ void k(float *out) { int i = threadIdx.x; out[i] = (float)(i / 4) * 100.0 + (float)(i % 4); }"
      [ ("out", Array.make 32 0.) ]
  in
  Alcotest.check farray "div/mod"
    (Array.init 32 (fun i -> (float_of_int (i / 4) *. 100.) +. float_of_int (i mod 4)))
    (Gpu.get dev "out")

let test_exec_2d_block () =
  let dev, _ =
    run_kernel ~block:(8, 4)
      "__global__ void k(float *out) { int x = threadIdx.x; int y = threadIdx.y; out[y * 8 + x] = (float)(y * 100 + x); }"
      [ ("out", Array.make 32 0.) ]
  in
  Alcotest.check farray "2d ids"
    (Array.init 32 (fun i -> float_of_int ((i / 8 * 100) + (i mod 8))))
    (Gpu.get dev "out")

let test_exec_partial_warp () =
  (* 40 threads: the second warp has only 8 active lanes *)
  let dev, _ =
    run_kernel ~block:(40, 1)
      "__global__ void k(float *out) { out[threadIdx.x] = 1.0; }"
      [ ("out", Array.make 64 0.) ]
  in
  Alcotest.check farray "exactly 40 writes"
    (Array.init 64 (fun i -> if i < 40 then 1. else 0.))
    (Gpu.get dev "out")

let test_exec_while_loop () =
  let dev, _ =
    run_kernel
      "__global__ void k(float *out) { int i = threadIdx.x; int v = i; int steps = 0; while (v > 0) { v = v / 2; steps++; } out[i] = (float)steps; }"
      [ ("out", Array.make 32 0.) ]
  in
  let expected =
    Array.init 32 (fun i ->
        let rec count v acc = if v > 0 then count (v / 2) (acc + 1) else acc in
        float_of_int (count i 0))
  in
  Alcotest.check farray "log steps" expected (Gpu.get dev "out")

let test_exec_out_of_bounds_detected () =
  try
    ignore
      (run_kernel "__global__ void k(float *out) { out[threadIdx.x + 100] = 1.0; }"
         [ ("out", Array.make 32 0.) ]);
    Alcotest.fail "expected bounds error"
  with Gpusim.Sm.Sim_error _ -> ()

let test_exec_division_by_zero_detected () =
  try
    ignore
      (run_kernel "__global__ void k(float *out) { int z = 0; out[threadIdx.x / z] = 1.0; }"
         [ ("out", Array.make 32 0.) ]);
    Alcotest.fail "expected division error"
  with Gpusim.Sm.Sim_error _ -> ()

let test_exec_deterministic_cycles () =
  let src =
    "__global__ void k(float *a, float *out) { int i = blockIdx.x * blockDim.x + threadIdx.x; float acc = 0.0; for (int j = 0; j < 64; j++) { acc += a[i * 64 + j]; } out[i] = acc; }"
  in
  let run () =
    let _, stats =
      run_kernel ~grid:(4, 1) ~block:(64, 1) src
        [ ("a", Array.init (256 * 64) float_of_int); ("out", Array.make 256 0.) ]
    in
    stats.Gpusim.Stats.cycles
  in
  Alcotest.(check int) "same cycles" (run ()) (run ())

let test_exec_launch_arg_mismatch () =
  let prog = compile "__global__ void k(float *a, float *b) { b[0] = a[0]; }" in
  let dev = Gpu.create cfg in
  Gpu.upload dev "a" (Array.make 8 0.);
  Alcotest.check_raises "missing argument"
    (Gpu.Launch_error "kernel k expects 2 arguments, got 1") (fun () ->
      ignore (Gpu.launch dev (Gpu.default_launch ~prog ~grid:(1, 1) ~block:(32, 1) [ Gpu.Arr "a" ])))

(* --------------------- Differential property ----------------------- *)

(* random arithmetic kernels: out[i] = f(i, in[i]) with f drawn from a
   small expression grammar; simulator result must equal direct eval *)
type dexpr =
  | D_in  (* in[i] *)
  | D_i  (* thread index as float *)
  | D_const of float
  | D_add of dexpr * dexpr
  | D_sub of dexpr * dexpr
  | D_mul of dexpr * dexpr
  | D_min of dexpr * dexpr
  | D_sqrt_abs of dexpr

let rec dexpr_to_src = function
  | D_in -> "inv[i]"
  | D_i -> "(float)i"
  | D_const f -> Printf.sprintf "%.17g" f
  | D_add (a, b) -> Printf.sprintf "(%s + %s)" (dexpr_to_src a) (dexpr_to_src b)
  | D_sub (a, b) -> Printf.sprintf "(%s - %s)" (dexpr_to_src a) (dexpr_to_src b)
  | D_mul (a, b) -> Printf.sprintf "(%s * %s)" (dexpr_to_src a) (dexpr_to_src b)
  | D_min (a, b) -> Printf.sprintf "fminf(%s, %s)" (dexpr_to_src a) (dexpr_to_src b)
  | D_sqrt_abs a -> Printf.sprintf "sqrtf(fabsf(%s))" (dexpr_to_src a)

let rec dexpr_eval ~i ~input = function
  | D_in -> input
  | D_i -> float_of_int i
  | D_const f -> f
  | D_add (a, b) -> dexpr_eval ~i ~input a +. dexpr_eval ~i ~input b
  | D_sub (a, b) -> dexpr_eval ~i ~input a -. dexpr_eval ~i ~input b
  | D_mul (a, b) -> dexpr_eval ~i ~input a *. dexpr_eval ~i ~input b
  | D_min (a, b) -> min (dexpr_eval ~i ~input a) (dexpr_eval ~i ~input b)
  | D_sqrt_abs a -> sqrt (abs_float (dexpr_eval ~i ~input a))

let gen_dexpr =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n = 0 then
          oneof
            [ return D_in; return D_i; map (fun f -> D_const f) (float_range (-4.) 4.) ]
        else
          oneof
            [
              map2 (fun a b -> D_add (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> D_sub (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> D_mul (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> D_min (a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> D_sqrt_abs a) (self (n - 1));
            ]))

let prop_sim_matches_direct_eval =
  QCheck.Test.make ~name:"simulator = direct evaluation" ~count:60
    (QCheck.make ~print:dexpr_to_src gen_dexpr)
    (fun e ->
      let src =
        Printf.sprintf
          "__global__ void k(float *inv, float *out) { int i = threadIdx.x; out[i] = %s; }"
          (dexpr_to_src e)
      in
      let input = Array.init 32 (fun i -> float_of_int (((i * 13) mod 17) - 8) /. 3.) in
      let dev, _ = run_kernel src [ ("inv", input); ("out", Array.make 32 0.) ] in
      let out = Gpu.get dev "out" in
      let ok = ref true in
      for i = 0 to 31 do
        let expected = dexpr_eval ~i ~input:input.(i) e in
        if abs_float (expected -. out.(i)) > 1e-6 *. max 1. (abs_float expected) then
          ok := false
      done;
      !ok)

let tests =
  [
    ( "gpusim.cache",
      [
        Alcotest.test_case "miss then hit" `Quick test_cache_miss_then_hit;
        Alcotest.test_case "pending hit" `Quick test_cache_pending_hit;
        Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "MSHR stall" `Quick test_cache_mshr_stall;
        Alcotest.test_case "write no-allocate" `Quick test_cache_write_no_allocate;
        Alcotest.test_case "flush" `Quick test_cache_flush;
        QCheck_alcotest.to_alcotest prop_cache_capacity;
      ] );
    ( "gpusim.coalescer",
      [
        Alcotest.test_case "broadcast" `Quick test_coalescer_broadcast;
        Alcotest.test_case "contiguous" `Quick test_coalescer_contiguous;
        Alcotest.test_case "fully divergent" `Quick test_coalescer_divergent;
        Alcotest.test_case "paper's stride-8 example" `Quick test_coalescer_stride_8;
        Alcotest.test_case "respects mask" `Quick test_coalescer_mask;
        QCheck_alcotest.to_alcotest prop_coalescer_bounds;
      ] );
    ( "gpusim.occupancy",
      [
        Alcotest.test_case "warp-slot limit" `Quick test_occupancy_warp_limit;
        Alcotest.test_case "register limit (Eq.2)" `Quick test_occupancy_register_limit;
        Alcotest.test_case "shared limit (Eq.1)" `Quick test_occupancy_shared_limit;
        Alcotest.test_case "zero occupancy" `Quick test_occupancy_zero_when_oversized;
        Alcotest.test_case "warps round up" `Quick test_warps_per_tb_rounds_up;
      ] );
    ( "gpusim.codegen",
      [
        Alcotest.test_case "register recycling" `Quick test_codegen_register_recycling;
        Alcotest.test_case "global load ids" `Quick test_codegen_global_load_ids;
        Alcotest.test_case "shared metadata" `Quick test_codegen_shared_metadata;
        Alcotest.test_case "scalar params" `Quick test_codegen_scalar_params;
      ] );
    ( "gpusim.exec",
      [
        Alcotest.test_case "if divergence" `Quick test_exec_if_divergence;
        Alcotest.test_case "nested divergence" `Quick test_exec_nested_divergence;
        Alcotest.test_case "divergent trip counts" `Quick test_exec_divergent_trip_counts;
        Alcotest.test_case "early return" `Quick test_exec_early_return;
        Alcotest.test_case "barrier ordering" `Quick test_exec_barrier_ordering;
        Alcotest.test_case "shared is per-TB" `Quick test_exec_shared_is_per_tb;
        Alcotest.test_case "integer division" `Quick test_exec_integer_division_truncates;
        Alcotest.test_case "2-D thread block" `Quick test_exec_2d_block;
        Alcotest.test_case "partial warp" `Quick test_exec_partial_warp;
        Alcotest.test_case "while loop" `Quick test_exec_while_loop;
        Alcotest.test_case "bounds checking" `Quick test_exec_out_of_bounds_detected;
        Alcotest.test_case "division by zero" `Quick test_exec_division_by_zero_detected;
        Alcotest.test_case "deterministic timing" `Quick test_exec_deterministic_cycles;
        Alcotest.test_case "argument mismatch" `Quick test_exec_launch_arg_mismatch;
        QCheck_alcotest.to_alcotest prop_sim_matches_direct_eval;
      ] );
  ]
