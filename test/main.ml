let () =
  Alcotest.run "catt-repro"
    (Test_util.tests @ Test_minicuda.tests @ Test_gpusim.tests
   @ Test_catt.tests @ Test_workloads.tests @ Test_experiments.tests
   @ Test_extensions.tests @ Test_more.tests @ Test_properties.tests
   @ Test_golden.tests @ Test_parallel.tests @ Test_sanitize.tests
   @ Test_serve.tests @ Test_staticmodel.tests)
