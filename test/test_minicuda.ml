(** Tests for the mini-CUDA front end: lexer, parser, pretty-printer
    round-trips (including a qcheck generator over the AST) and the
    typechecker's accept/reject behaviour. *)

module Ast = Minicuda.Ast
module Lexer = Minicuda.Lexer
module Parser = Minicuda.Parser
module Pretty = Minicuda.Pretty
module Typecheck = Minicuda.Typecheck

(* --------------------------- Lexer -------------------------------- *)

let tokens_of src = List.map fst (Lexer.tokenize src)

let test_lex_operators () =
  Alcotest.(check int) "token count" 13
    (List.length (tokens_of "+ - * / % <= >= == != && || ++"));
  match tokens_of "a += b" with
  | [ Lexer.Ident "a"; Lexer.Plus_assign; Lexer.Ident "b"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "unexpected tokens for compound assignment"

let test_lex_numbers () =
  (match tokens_of "42 3.5 1e3 2.5f" with
  | [ Lexer.Int_lit 42; Lexer.Float_lit a; Lexer.Float_lit b; Lexer.Float_lit c; Lexer.Eof ] ->
    Alcotest.(check (float 1e-9)) "3.5" 3.5 a;
    Alcotest.(check (float 1e-9)) "1e3" 1000. b;
    Alcotest.(check (float 1e-9)) "2.5f" 2.5 c
  | _ -> Alcotest.fail "unexpected number tokens")

let test_lex_comments () =
  match tokens_of "a // comment\n/* block\ncomment */ b" with
  | [ Lexer.Ident "a"; Lexer.Ident "b"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lex_keywords () =
  match tokens_of "__global__ __shared__ __syncthreads for while if" with
  | [ Lexer.Kw_global; Lexer.Kw_shared; Lexer.Kw_syncthreads; Lexer.Kw_for;
      Lexer.Kw_while; Lexer.Kw_if; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "keyword lexing"

let test_lex_error_position () =
  try
    ignore (Lexer.tokenize "a\nb\n@");
    Alcotest.fail "expected error"
  with Lexer.Error (_, line) -> Alcotest.(check int) "line 3" 3 line

let test_lex_unterminated_comment () =
  Alcotest.check_raises "unterminated" (Lexer.Error ("unterminated comment", 1))
    (fun () -> ignore (Lexer.tokenize "/* never closed"))

(* --------------------------- Parser ------------------------------- *)

let test_parse_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  Alcotest.(check bool) "mul binds tighter" true
    (Ast.equal_expr e
       (Ast.Binop (Ast.Add, Ast.Int_lit 1, Ast.Binop (Ast.Mul, Ast.Int_lit 2, Ast.Int_lit 3))))

let test_parse_associativity () =
  let e = Parser.parse_expr "8 - 4 - 2" in
  Alcotest.(check bool) "left assoc" true
    (Ast.equal_expr e
       (Ast.Binop (Ast.Sub, Ast.Binop (Ast.Sub, Ast.Int_lit 8, Ast.Int_lit 4), Ast.Int_lit 2)))

let test_parse_ternary () =
  match Parser.parse_expr "a < b ? 1 : 2" with
  | Ast.Ternary (Ast.Binop (Ast.Lt, _, _), Ast.Int_lit 1, Ast.Int_lit 2) -> ()
  | _ -> Alcotest.fail "ternary shape"

let test_parse_builtins () =
  match Parser.parse_expr "blockIdx.x * blockDim.x + threadIdx.x" with
  | Ast.Binop
      ( Ast.Add,
        Ast.Binop (Ast.Mul, Ast.Builtin Ast.Block_idx_x, Ast.Builtin Ast.Block_dim_x),
        Ast.Builtin Ast.Thread_idx_x ) -> ()
  | _ -> Alcotest.fail "builtin member access"

let test_parse_negative_literal_folding () =
  Alcotest.(check bool) "int" true
    (Ast.equal_expr (Parser.parse_expr "-5") (Ast.Int_lit (-5)));
  Alcotest.(check bool) "float" true
    (Ast.equal_expr (Parser.parse_expr "-2.5") (Ast.Float_lit (-2.5)))

let test_parse_define_substitution () =
  let p = Parser.parse_program "#define N 7\n__global__ void k(float *a) { a[N] = 1.0; }" in
  match List.map (fun s -> s.Ast.sk) (List.hd p.Ast.kernels).Ast.body with
  | [ Ast.Assign (Ast.Larr ("a", Ast.Int_lit 7), Ast.Assign_eq, _) ] -> ()
  | _ -> Alcotest.fail "define not substituted"

let test_parse_define_chain () =
  let p = Parser.parse_program "#define A 3\n#define B A\n__global__ void k(float *x) { x[B] = 0.0; }" in
  match List.map (fun s -> s.Ast.sk) (List.hd p.Ast.kernels).Ast.body with
  | [ Ast.Assign (Ast.Larr ("x", Ast.Int_lit 3), _, _) ] -> ()
  | _ -> Alcotest.fail "chained define"

let test_parse_for_step_forms () =
  let parse_loop src =
    match
      List.map (fun s -> s.Ast.sk)
        (Parser.parse_kernel ("__global__ void k(float *a) { " ^ src ^ " }")).Ast.body
    with
    | [ Ast.For f ] -> f
    | _ -> Alcotest.fail "expected a single loop"
  in
  let f1 = parse_loop "for (int i = 0; i < 10; i++) { a[i] = 0.0; }" in
  Alcotest.(check bool) "i++" true (Ast.equal_expr f1.Ast.step (Ast.Int_lit 1));
  let f2 = parse_loop "for (int i = 10; i > 0; i--) { a[i] = 0.0; }" in
  Alcotest.(check bool) "i--" true (Ast.equal_expr f2.Ast.step (Ast.Int_lit (-1)));
  let f3 = parse_loop "for (int i = 0; i < 10; i += 2) { a[i] = 0.0; }" in
  Alcotest.(check bool) "i += 2" true (Ast.equal_expr f3.Ast.step (Ast.Int_lit 2));
  let f4 = parse_loop "for (int i = 0; i < 10; i = i + 3) { a[i] = 0.0; }" in
  Alcotest.(check bool) "i = i + 3" true (Ast.equal_expr f4.Ast.step (Ast.Int_lit 3))

let test_parse_dangling_else () =
  let k =
    Parser.parse_kernel
      "__global__ void k(float *a) { if (true) if (false) a[0] = 1.0; else a[1] = 2.0; }"
  in
  (* else binds to the inner if *)
  match List.map (fun s -> s.Ast.sk) k.Ast.body with
  | [ Ast.If (_, { Ast.sk = Ast.If (_, _, [ _ ]); _ } :: [], []) ] -> ()
  | _ -> Alcotest.fail "dangling else resolution"

let test_parse_errors () =
  let expect_error src =
    try
      ignore (Parser.parse_program src);
      Alcotest.fail ("expected parse error for: " ^ src)
    with Parser.Error _ | Lexer.Error _ -> ()
  in
  expect_error "__global__ void k(float *a) { a[0] = ; }";
  expect_error "__global__ void k(float *a) { for (i; ; ) {} }";
  expect_error "__global__ void k(float *a) { unknown_call(1); }";
  expect_error "__global__ int k(float *a) { }";
  expect_error "#define N\n__global__ void k(float *a) { }"

let test_parse_kernel_multiple_rejected () =
  try
    ignore (Parser.parse_kernel "__global__ void a(float *x) { x[0] = 0.0; } __global__ void b(float *x) { x[0] = 0.0; }");
    Alcotest.fail "expected error"
  with Parser.Error _ -> ()

(* ---------------------- Round-trip property ------------------------ *)

(* Generator for well-formed kernels over a fixed set of names. *)
module Gen_ast = struct
  open QCheck.Gen

  let var_names = [ "v0"; "v1"; "v2" ]
  let array_names = [ "arr0"; "arr1" ]

  let builtin =
    oneofl
      [ Ast.Thread_idx_x; Ast.Thread_idx_y; Ast.Block_idx_x; Ast.Block_dim_x; Ast.Grid_dim_x ]

  let int_binop = oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod ]
  let cmp_binop = oneofl [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne ]

  (* integer-typed expressions *)
  let rec int_expr depth =
    if depth = 0 then
      oneof
        [
          map (fun n -> Ast.Int_lit n) (int_range (-100) 100);
          map (fun v -> Ast.Var v) (oneofl var_names);
          map (fun b -> Ast.Builtin b) builtin;
        ]
    else
      frequency
        [
          (3, int_expr 0);
          ( 2,
            map3
              (fun op a b -> Ast.Binop (op, a, b))
              int_binop (int_expr (depth - 1)) (int_expr (depth - 1)) );
          (1, map (fun a -> Ast.Unop (Ast.Neg, Ast.Binop (Ast.Add, a, Ast.Var "v0")))
               (int_expr (depth - 1)));
          (1, map (fun a -> Ast.Cast (Ast.Int, a)) (float_expr (depth - 1)));
        ]

  and float_expr depth =
    if depth = 0 then
      oneof
        [
          map (fun f -> Ast.Float_lit (Float.of_int f /. 4.)) (int_range (-50) 50);
          map (fun a -> Ast.Index (a, Ast.Builtin Ast.Thread_idx_x)) (oneofl array_names);
        ]
    else
      frequency
        [
          (3, float_expr 0);
          ( 2,
            map3
              (fun op a b -> Ast.Binop (op, a, b))
              (oneofl [ Ast.Add; Ast.Sub; Ast.Mul ])
              (float_expr (depth - 1)) (float_expr (depth - 1)) );
          (1, map (fun a -> Ast.Call ("sqrtf", [ a ])) (float_expr (depth - 1)));
          ( 1,
            map3
              (fun c a b -> Ast.Ternary (Ast.Binop (Ast.Lt, c, Ast.Int_lit 5), a, b))
              (int_expr 0) (float_expr (depth - 1)) (float_expr (depth - 1)) );
        ]

  let bool_expr depth =
    map3 (fun op a b -> Ast.Binop (op, a, b)) cmp_binop (int_expr depth) (int_expr depth)

  let rec stmt depth = map (fun sk -> Ast.at sk) (stmt_kind depth)

  and stmt_kind depth =
    if depth = 0 then
      oneof
        [
          map (fun e -> Ast.Assign (Ast.Lvar "v0", Ast.Assign_eq, e)) (int_expr 1);
          map2
            (fun arr e -> Ast.Assign (Ast.Larr (arr, Ast.Builtin Ast.Thread_idx_x), Ast.Assign_add, e))
            (oneofl array_names) (float_expr 1);
          return Ast.Syncthreads;
          return Ast.Return;
          return Ast.Break;
          return Ast.Continue;
        ]
    else
      frequency
        [
          (3, stmt_kind 0);
          ( 1,
            map3
              (fun c then_b else_b -> Ast.If (c, then_b, else_b))
              (bool_expr 1) (block (depth - 1)) (block (depth - 1)) );
          ( 1,
            map2
              (fun c body -> Ast.While (c, body))
              (bool_expr 1) (block (depth - 1)) );
          ( 1,
            map2
              (fun bound body ->
                Ast.For
                  {
                    Ast.loop_var = "it";
                    declares = true;
                    init = Ast.Int_lit 0;
                    cond = Ast.Binop (Ast.Lt, Ast.Var "it", Ast.Int_lit bound);
                    step = Ast.Int_lit 1;
                    body;
                  })
              (int_range 1 8) (block (depth - 1)) );
          (1, map (fun body -> Ast.Block body) (block (depth - 1)));
        ]

  and block depth = list_size (int_range 1 3) (stmt depth)

  let kernel =
    map
      (fun body ->
        {
          Ast.kernel_name = "generated";
          params =
            [
              { Ast.param_ty = Ast.Ptr Ast.Float; param_name = "arr0" };
              { Ast.param_ty = Ast.Ptr Ast.Float; param_name = "arr1" };
            ];
          body =
            Ast.at (Ast.Shared_decl (Ast.Float, "sm0", 64))
            :: Ast.at (Ast.Decl (Ast.Int, "v0", Some (Ast.Int_lit 0)))
            :: Ast.at (Ast.Decl (Ast.Int, "v1", Some (Ast.Builtin Ast.Thread_idx_x)))
            :: Ast.at (Ast.Decl (Ast.Int, "v2", Some (Ast.Int_lit 1)))
            :: body;
        })
      (block 2)
end

let prop_pretty_parse_roundtrip =
  QCheck.Test.make ~name:"parse (pretty k) = k" ~count:200
    (QCheck.make Gen_ast.kernel)
    (fun kernel ->
      let printed = Pretty.kernel kernel in
      try
        let reparsed = Parser.parse_kernel printed in
        if Ast.equal_kernel kernel reparsed then true
        else QCheck.Test.fail_reportf "round-trip mismatch for:\n%s" printed
      with e ->
        QCheck.Test.fail_reportf "reparse failed (%s) for:\n%s"
          (Printexc.to_string e) printed)

let test_roundtrip_paper_example () =
  let src =
    "#define NX 40960\n\
     __global__ void atax_kernel1(float *A, float *B, float *tmp) {\n\
     int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
     if (i < NX) { for (int j = 0; j < NX; j++) { tmp[i] += A[i * NX + j] * B[j]; } }\n\
     }"
  in
  let p = Parser.parse_program src in
  let p2 = Parser.parse_program (Pretty.program p) in
  Alcotest.(check bool) "round trip" true (Ast.equal_program p p2)

(* ------------------------- Typechecker ----------------------------- *)

let check_ok src = ignore (Typecheck.check_kernel (Parser.parse_kernel src))

let check_rejected src =
  try
    ignore (Typecheck.check_kernel (Parser.parse_kernel src));
    Alcotest.fail ("expected type error for: " ^ src)
  with Typecheck.Type_error _ -> ()

let test_typecheck_accepts () =
  check_ok "__global__ void k(float *a, int n) { int i = threadIdx.x; if (i < n) { a[i] = (float)i * 2.0; } }";
  check_ok "__global__ void k(float *a) { __shared__ float s[64]; s[threadIdx.x] = a[threadIdx.x]; __syncthreads(); a[threadIdx.x] = s[0]; }";
  check_ok "__global__ void k(int *a) { int x = a[0] % 3; a[1] = x; }"

let test_typecheck_rejects () =
  check_rejected "__global__ void k(float *a) { a[0] = undeclared; }";
  check_rejected "__global__ void k(float *a) { a[1.5] = 0.0; }";
  check_rejected "__global__ void k(float *a) { int x = 0; int x = 1; a[0] = 0.0; }";
  check_rejected "__global__ void k(float *a) { a[0] = a; }";
  check_rejected "__global__ void k(float *a) { if (a[0]) { a[1] = 0.0; } }";
  check_rejected "__global__ void k(float *a) { a[0] = a[0] % 2.0; }";
  check_rejected "__global__ void k(float *a) { a[0] = sqrtf(1.0, 2.0); }";
  check_rejected "__global__ void k(float *a) { __shared__ float s[0]; a[0] = 0.0; }"

let test_typecheck_shadowing_in_scope () =
  (* shadowing in a nested scope is legal *)
  check_ok "__global__ void k(float *a) { int x = 1; if (x > 0) { float x = 2.0; a[0] = x; } a[1] = (float)x; }"

let test_typecheck_info () =
  let info =
    Typecheck.check_kernel
      (Parser.parse_kernel
         "__global__ void k(float *a, int n, float alpha) { __shared__ float s[100]; s[0] = alpha; a[0] = s[0] + (float)n; }")
  in
  Alcotest.(check int) "shared bytes" 400 info.Typecheck.shared_bytes;
  Alcotest.(check int) "scalar params" 2 (List.length info.Typecheck.scalar_params);
  Alcotest.(check int) "arrays" 2 (List.length info.Typecheck.arrays)

let tests =
  [
    ( "minicuda.lexer",
      [
        Alcotest.test_case "operators" `Quick test_lex_operators;
        Alcotest.test_case "numbers" `Quick test_lex_numbers;
        Alcotest.test_case "comments" `Quick test_lex_comments;
        Alcotest.test_case "keywords" `Quick test_lex_keywords;
        Alcotest.test_case "error line" `Quick test_lex_error_position;
        Alcotest.test_case "unterminated comment" `Quick test_lex_unterminated_comment;
      ] );
    ( "minicuda.parser",
      [
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "associativity" `Quick test_parse_associativity;
        Alcotest.test_case "ternary" `Quick test_parse_ternary;
        Alcotest.test_case "builtins" `Quick test_parse_builtins;
        Alcotest.test_case "negative literals" `Quick test_parse_negative_literal_folding;
        Alcotest.test_case "define substitution" `Quick test_parse_define_substitution;
        Alcotest.test_case "define chain" `Quick test_parse_define_chain;
        Alcotest.test_case "loop step forms" `Quick test_parse_for_step_forms;
        Alcotest.test_case "dangling else" `Quick test_parse_dangling_else;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "single-kernel check" `Quick test_parse_kernel_multiple_rejected;
      ] );
    ( "minicuda.roundtrip",
      [
        Alcotest.test_case "paper example" `Quick test_roundtrip_paper_example;
        QCheck_alcotest.to_alcotest prop_pretty_parse_roundtrip;
      ] );
    ( "minicuda.typecheck",
      [
        Alcotest.test_case "accepts valid kernels" `Quick test_typecheck_accepts;
        Alcotest.test_case "rejects invalid kernels" `Quick test_typecheck_rejects;
        Alcotest.test_case "scoped shadowing" `Quick test_typecheck_shadowing_in_scope;
        Alcotest.test_case "symbol info" `Quick test_typecheck_info;
      ] );
  ]
