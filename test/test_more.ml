(** Second-wave coverage: printer precedence, ISA corner semantics, affine
    algebra edges, footprint arithmetic on negative strides, throttle
    divisor handling, occupancy rounding, and per-workload analysis
    invariants that pin the paper's qualitative claims to the suite. *)

module Ast = Minicuda.Ast
module Affine = Catt.Affine

(* ---------------------- printer precedence ------------------------- *)

let roundtrip_expr src =
  let e = Minicuda.Parser.parse_expr src in
  let printed = Minicuda.Pretty.expr e in
  let e2 = Minicuda.Parser.parse_expr printed in
  Alcotest.(check bool) (src ^ " round-trips as " ^ printed) true (Ast.equal_expr e e2);
  printed

let test_pretty_minimal_parens () =
  Alcotest.(check string) "no spurious parens" "a + b * c" (roundtrip_expr "a + b * c");
  Alcotest.(check string) "needed parens kept" "(a + b) * c" (roundtrip_expr "(a + b) * c");
  Alcotest.(check string) "right-assoc sub" "a - (b - c)" (roundtrip_expr "a - (b - c)");
  Alcotest.(check string) "flat left sub" "a - b - c" (roundtrip_expr "a - b - c")

let test_pretty_unary_and_cast () =
  ignore (roundtrip_expr "-(a + b)");
  ignore (roundtrip_expr "(int)(a / b)");
  ignore (roundtrip_expr "(float)a * 2.0");
  ignore (roundtrip_expr "!(a < b) && c > d")

let test_pretty_ternary_nesting () =
  ignore (roundtrip_expr "a < b ? 1 : c < d ? 2 : 3");
  ignore (roundtrip_expr "(a < b ? 1 : 2) + 5")

let test_pretty_deep_nesting () =
  ignore (roundtrip_expr "((a + b) * (c - d)) / (e % 7 + 1)")

(* ------------------------ ISA semantics ---------------------------- *)

let cfg = Gpusim.Config.scaled ~num_sms:1 ~onchip_bytes:(32 * 1024) ()

let run_lane_kernel body =
  let src =
    Printf.sprintf
      "__global__ void k(float *inv, float *out) { int i = threadIdx.x; %s }" body
  in
  let prog = Gpusim.Codegen.compile_kernel (Minicuda.Parser.parse_kernel src) in
  let dev = Gpusim.Gpu.create cfg in
  Gpusim.Gpu.upload dev "inv"
    (Array.init 32 (fun i -> float_of_int (i - 16) /. 2.));
  Gpusim.Gpu.alloc dev "out" 32;
  ignore
    (Gpusim.Gpu.launch dev
       (Gpusim.Gpu.default_launch ~prog ~grid:(1, 1) ~block:(32, 1)
          [ Gpusim.Gpu.Arr "inv"; Gpusim.Gpu.Arr "out" ]));
  Gpusim.Gpu.get dev "out"

let check_lanes name body expected =
  let out = run_lane_kernel body in
  Array.iteri
    (fun i e ->
      if abs_float (e -. out.(i)) > 1e-9 then
        Alcotest.failf "%s lane %d: expected %g got %g" name i e out.(i))
    (Array.init 32 expected)

let test_isa_ternary_select () =
  check_lanes "sel" "out[i] = i % 2 == 0 ? 10.0 : 20.0;" (fun i ->
      if i mod 2 = 0 then 10. else 20.)

let test_isa_logical_not () =
  check_lanes "not" "out[i] = !(i < 16) ? 1.0 : 0.0;" (fun i ->
      if i < 16 then 0. else 1.)

let test_isa_trunc_toward_zero () =
  (* C casts truncate toward zero, also for negatives *)
  check_lanes "trunc" "out[i] = (float)((int)inv[i]);" (fun i ->
      Float.of_int (int_of_float (float_of_int (i - 16) /. 2.)))

let test_isa_negative_mod () =
  check_lanes "mod" "out[i] = (float)((i - 16) % 5);" (fun i -> float_of_int ((i - 16) mod 5))

let test_isa_negative_div () =
  check_lanes "div" "out[i] = (float)((i - 16) / 3);" (fun i -> float_of_int ((i - 16) / 3))

let test_isa_builtin_calls () =
  check_lanes "fmaxf" "out[i] = fmaxf(inv[i], 0.0);" (fun i ->
      max (float_of_int (i - 16) /. 2.) 0.);
  check_lanes "fabs+sqrt" "out[i] = sqrtf(fabsf(inv[i]));" (fun i ->
      sqrt (abs_float (float_of_int (i - 16) /. 2.)));
  check_lanes "min-int" "out[i] = (float)(min(i, 7));" (fun i -> float_of_int (min i 7))

let test_isa_bool_ops () =
  check_lanes "and-or"
    "out[i] = (i > 4 && i < 10) || i == 20 ? 1.0 : 0.0;"
    (fun i -> if (i > 4 && i < 10) || i = 20 then 1. else 0.)

let test_isa_compound_float_div () =
  check_lanes "divassign" "float v = 16.0; v /= 4.0; out[i] = v;" (fun _ -> 4.)

(* ----------------------- break / continue --------------------------- *)

let run_kernel32 src arrays =
  let prog = Gpusim.Codegen.compile_kernel (Minicuda.Parser.parse_kernel src) in
  let dev = Gpusim.Gpu.create cfg in
  List.iter (fun (n, d) -> Gpusim.Gpu.upload dev n d) arrays;
  ignore
    (Gpusim.Gpu.launch dev
       (Gpusim.Gpu.default_launch ~prog ~grid:(1, 1) ~block:(32, 1)
          (List.map (fun (n, _) -> Gpusim.Gpu.Arr n) arrays)));
  dev

let test_break_divergent () =
  let dev =
    run_kernel32
      "__global__ void k(float *out) { int i = threadIdx.x; float acc = 0.0;\n\
       for (int j = 0; j < 100; j++) { if (j == i) { break; } acc += 1.0; }\n\
       out[i] = acc; }"
      [ ("out", Array.make 32 0.) ]
  in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-9)) "lane count" (float_of_int i) v)
    (Gpusim.Gpu.get dev "out")

let test_continue_skips () =
  let dev =
    run_kernel32
      "__global__ void k(float *out) { int i = threadIdx.x; float acc = 0.0;\n\
       for (int j = 0; j < 10; j++) { if (j % 2 == 0) { continue; } acc += (float)j; }\n\
       out[i] = acc; }"
      [ ("out", Array.make 32 0.) ]
  in
  Array.iter
    (fun v -> Alcotest.(check (float 1e-9)) "sum of odds" 25. v)
    (Gpusim.Gpu.get dev "out")

let test_break_in_while () =
  let dev =
    run_kernel32
      "__global__ void k(float *out) { int i = threadIdx.x; int v = 0;\n\
       while (true) { v++; if (v > i) { break; } }\n\
       out[i] = (float)v; }"
      [ ("out", Array.make 32 0.) ]
  in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-9)) "exit count" (float_of_int (i + 1)) v)
    (Gpusim.Gpu.get dev "out")

let test_break_nested_binds_inner () =
  let dev =
    run_kernel32
      "__global__ void k(float *out) { int i = threadIdx.x; float acc = 0.0;\n\
       for (int a = 0; a < 3; a++) { for (int b = 0; b < 50; b++) {\n\
       if (b >= i) { break; } acc += 1.0; } acc += 100.0; }\n\
       out[i] = acc; }"
      [ ("out", Array.make 32 0.) ]
  in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-9)) "inner-only break"
        (float_of_int ((3 * i) + 300))
        v)
    (Gpusim.Gpu.get dev "out")

let test_break_outside_loop_rejected () =
  (try
     ignore
       (Minicuda.Typecheck.check_kernel
          (Minicuda.Parser.parse_kernel "__global__ void k(float *a) { break; a[0] = 0.0; }"));
     Alcotest.fail "break outside loop must be rejected"
   with Minicuda.Typecheck.Type_error _ -> ());
  try
    ignore
      (Minicuda.Typecheck.check_kernel
         (Minicuda.Parser.parse_kernel
            "__global__ void k(float *a) { if (a[0] > 0.0) { continue; } }"));
    Alcotest.fail "continue outside loop must be rejected"
  with Minicuda.Typecheck.Type_error _ -> ()

let test_break_roundtrip () =
  let src =
    "__global__ void k(float *a) { for (int j = 0; j < 4; j++) { if (a[j] > 1.0) { break; } if (a[j] < 0.0) { continue; } a[j] = 0.0; } }"
  in
  let k = Minicuda.Parser.parse_kernel src in
  let k2 = Minicuda.Parser.parse_kernel (Minicuda.Pretty.kernel k) in
  Alcotest.(check bool) "round trip" true (Minicuda.Ast.equal_kernel k k2)

(* --------------------------- affine edges --------------------------- *)

let test_affine_cancellation () =
  let a = Affine.iter "j" in
  match Affine.sub (Affine.Affine a) (Affine.Affine a) with
  | Affine.Affine z ->
    Alcotest.(check bool) "j - j = 0" true (Affine.is_constant z);
    Alcotest.(check int) "zero" 0 z.Affine.const;
    Alcotest.(check int) "no j term" 0 (Affine.coeff_of_iter z "j")
  | Affine.Unknown -> Alcotest.fail "should be affine"

let test_affine_drop_iter () =
  let a = { (Affine.const 3) with Affine.iters = [ ("i", 2); ("j", 5) ] } in
  let d = Affine.drop_iter a "i" in
  Alcotest.(check int) "i dropped" 0 (Affine.coeff_of_iter d "i");
  Alcotest.(check int) "j kept" 5 (Affine.coeff_of_iter d "j")

let test_affine_to_string () =
  let a = { (Affine.const 7) with Affine.c_tx = 2; iters = [ ("j", -1) ] } in
  Alcotest.(check string) "rendering" "2*tid.x + -j + 7" (Affine.to_string a);
  Alcotest.(check string) "zero" "0" (Affine.to_string (Affine.const 0))

let test_affine_mul_unknown_propagates () =
  Alcotest.(check bool) "unknown * affine" true
    (Affine.mul Affine.Unknown (Affine.Affine (Affine.const 2)) = Affine.Unknown);
  Alcotest.(check bool) "neg unknown" true (Affine.neg Affine.Unknown = Affine.Unknown)

(* -------------------- footprint on negative strides ----------------- *)

let test_req_negative_stride () =
  (* index = -4096 * tid: still one line per lane *)
  let a = { (Affine.const 0) with Affine.c_tx = -4096 } in
  Alcotest.(check int) "negative stride divergent" 32
    (Catt.Footprint.req_warp ~line_bytes:128 ~warp_size:32 ~block_x:256
       (Affine.Affine a));
  (* small negative stride: same sharing as positive *)
  let b = { (Affine.const 0) with Affine.c_tx = -1 } in
  Alcotest.(check int) "adjacent downward" 2
    (Catt.Footprint.req_warp ~line_bytes:128 ~warp_size:32 ~block_x:256
       (Affine.Affine b))

(* -------------------------- throttle edges -------------------------- *)

let test_throttle_non_power_of_two_warps () =
  (* 6 warps per TB: divisors 1,2,3,6 — Eq. 9 must use 3 when it fits *)
  let summary =
    {
      Catt.Footprint.access =
        {
          Catt.Analysis.array = "a";
          index = Affine.Affine (Affine.const 0);
          is_load = true;
          is_store = false;
          innermost_iter = Some "j";
        };
      req_warp = 60;
      has_reuse = true;
      irregular = false;
    }
  in
  let fp =
    {
      Catt.Footprint.loop =
        { Catt.Analysis.loop_id = 0; loop_var = "j"; accesses = []; has_barrier = false };
      summaries = [ summary ];
      req_per_warp = 60;
      shared_lines = 0;
      has_locality = true;
      any_irregular = false;
    }
  in
  (* 60 lines * 6 warps * 2 TBs = 720 > 256; /2 -> 360 > 256; /3 -> 240 ok *)
  let d =
    Catt.Throttle.decide ~line_bytes:128 ~l1d_bytes:(32 * 1024) ~warps_per_tb:6
      ~tbs:2 fp
  in
  Alcotest.(check int) "N = 3" 3 d.Catt.Throttle.n;
  Alcotest.(check int) "2 warps active" 2 d.Catt.Throttle.active_warps_per_tb

(* -------------------------- occupancy edges ------------------------- *)

let test_occupancy_grid_cap_rounds_up () =
  let volta = Gpusim.Config.volta ~num_sms:4 () in
  match
    Catt.Occupancy.configure volta ~grid_tbs:5 ~tb_threads:64 ~num_regs:8
      ~shared_bytes:0 ()
  with
  | Ok occ ->
    (* 5 TBs over 4 SMs: one SM holds 2 *)
    Alcotest.(check int) "ceil(5/4) = 2" 2 occ.Catt.Occupancy.tbs_per_sm
  | Error e -> Alcotest.fail e

(* --------------------- analysis decay behaviours -------------------- *)

let analyze src =
  Catt.Analysis.analyze_kernel
    (Minicuda.Parser.parse_kernel src)
    { Catt.Analysis.grid_x = 4; grid_y = 1; block_x = 256; block_y = 1 }

let index_of loop array =
  (List.find
     (fun (a : Catt.Analysis.access) -> a.Catt.Analysis.array = array)
     loop.Catt.Analysis.accesses)
    .Catt.Analysis.index

let test_analysis_if_join_decays () =
  (* base differs between branches -> Unknown afterwards *)
  let src =
    "__global__ void k(float *a, float *out) {\n\
     int i = threadIdx.x;\n\
     int base = 0;\n\
     if (i < 16) { base = 1; } else { base = 2; }\n\
     for (int j = 0; j < 4; j++) { out[i] += a[base + j]; }\n\
     }"
  in
  match analyze src with
  | [ loop ] ->
    Alcotest.(check bool) "conflicting join is Unknown" true
      (index_of loop "a" = Affine.Unknown)
  | _ -> Alcotest.fail "one loop"

let test_analysis_if_join_agreeing_kept () =
  let src =
    "__global__ void k(float *a, float *out) {\n\
     int i = threadIdx.x;\n\
     int base = 5;\n\
     if (i < 16) { base = 5; }\n\
     for (int j = 0; j < 4; j++) { out[i] += a[base + j]; }\n\
     }"
  in
  match analyze src with
  | [ loop ] -> (
    match index_of loop "a" with
    | Affine.Affine aff -> Alcotest.(check int) "const kept" 5 aff.Affine.const
    | Affine.Unknown -> Alcotest.fail "agreeing join should survive")
  | _ -> Alcotest.fail "one loop"

let test_analysis_mod_is_unknown () =
  let src =
    "__global__ void k(float *a, float *out) {\n\
     int i = threadIdx.x;\n\
     for (int j = 0; j < 4; j++) { out[i] += a[i % 7 + j]; }\n\
     }"
  in
  match analyze src with
  | [ loop ] ->
    Alcotest.(check bool) "modulo index unknown" true
      (index_of loop "a" = Affine.Unknown)
  | _ -> Alcotest.fail "one loop"

let test_analysis_innermost_iter_nested () =
  let src =
    "__global__ void k(float *a, float *out) {\n\
     int i = threadIdx.x;\n\
     for (int c = 0; c < 4; c++) {\n\
     for (int f = 0; f < 8; f++) { out[i] += a[c * 100 + f]; }\n\
     }\n\
     }"
  in
  match analyze src with
  | [ loop ] ->
    let a =
      List.find
        (fun (x : Catt.Analysis.access) -> x.Catt.Analysis.array = "a")
        loop.Catt.Analysis.accesses
    in
    Alcotest.(check (option string)) "innermost is f" (Some "f")
      a.Catt.Analysis.innermost_iter
  | _ -> Alcotest.fail "one loop"

let test_analysis_barrier_flag () =
  let src =
    "__global__ void k(float *a, float *out) {\n\
     __shared__ float s[32];\n\
     int i = threadIdx.x;\n\
     for (int j = 0; j < 4; j++) { s[i] = a[i]; __syncthreads(); out[i] += s[31 - i]; }\n\
     }"
  in
  match analyze src with
  | [ loop ] ->
    Alcotest.(check bool) "barrier detected" true loop.Catt.Analysis.has_barrier
  | _ -> Alcotest.fail "one loop"

(* -------------------- per-workload paper claims --------------------- *)

let exp_cfg = Experiments.Configs.max_l1d ()

let catt_analysis_of name kernel_name =
  let w = Workloads.Registry.find name in
  let run = Experiments.Runner.run exp_cfg w Experiments.Runner.Catt in
  List.assoc kernel_name run.Experiments.Runner.catt_analyses

let throttled (t : Catt.Driver.t) =
  List.exists
    (fun (l : Catt.Driver.loop_decision) -> l.Catt.Driver.decision.Catt.Throttle.throttled)
    t.Catt.Driver.loops

let test_atax_phase_split () =
  (* the paper's headline: kernel 1 throttled, kernel 2 left alone *)
  Alcotest.(check bool) "k1 throttled" true
    (throttled (catt_analysis_of "ATAX" "atax_kernel1"));
  Alcotest.(check bool) "k2 untouched" false
    (throttled (catt_analysis_of "ATAX" "atax_kernel2"))

let test_bicg_phase_split () =
  Alcotest.(check bool) "k1 untouched" false
    (throttled (catt_analysis_of "BICG" "bicg_kernel1"));
  Alcotest.(check bool) "k2 throttled" true
    (throttled (catt_analysis_of "BICG" "bicg_kernel2"))

let test_corr_unresolvable () =
  let t = catt_analysis_of "CORR" "corr_kernel" in
  Alcotest.(check bool) "not resolved" true
    (List.exists
       (fun (l : Catt.Driver.loop_decision) ->
         not l.Catt.Driver.decision.Catt.Throttle.resolved)
       t.Catt.Driver.loops);
  Alcotest.(check bool) "left untouched" false (throttled t)

let test_pf_per_loop_decisions () =
  let t = catt_analysis_of "PF" "pf_likelihood" in
  let decisions =
    List.map
      (fun (l : Catt.Driver.loop_decision) -> l.Catt.Driver.decision.Catt.Throttle.throttled)
      t.Catt.Driver.loops
  in
  (* loops 1 and 2 are divergent, loop 3 is compute-only *)
  Alcotest.(check (list bool)) "per-loop decisions" [ true; true; false ] decisions

let test_syr2k_tb_level () =
  let t = catt_analysis_of "SYR2K" "syr2k_kernel" in
  Alcotest.(check bool) "TB throttle planned" true
    (t.Catt.Driver.tb_throttle_plan <> None)

let tests =
  [
    ( "more.pretty",
      [
        Alcotest.test_case "minimal parens" `Quick test_pretty_minimal_parens;
        Alcotest.test_case "unary and cast" `Quick test_pretty_unary_and_cast;
        Alcotest.test_case "ternary nesting" `Quick test_pretty_ternary_nesting;
        Alcotest.test_case "deep nesting" `Quick test_pretty_deep_nesting;
      ] );
    ( "more.isa",
      [
        Alcotest.test_case "ternary select" `Quick test_isa_ternary_select;
        Alcotest.test_case "logical not" `Quick test_isa_logical_not;
        Alcotest.test_case "trunc toward zero" `Quick test_isa_trunc_toward_zero;
        Alcotest.test_case "negative mod" `Quick test_isa_negative_mod;
        Alcotest.test_case "negative div" `Quick test_isa_negative_div;
        Alcotest.test_case "builtin calls" `Quick test_isa_builtin_calls;
        Alcotest.test_case "bool ops" `Quick test_isa_bool_ops;
        Alcotest.test_case "compound float div" `Quick test_isa_compound_float_div;
      ] );
    ( "more.breakcont",
      [
        Alcotest.test_case "divergent break" `Quick test_break_divergent;
        Alcotest.test_case "continue skips" `Quick test_continue_skips;
        Alcotest.test_case "break in while(true)" `Quick test_break_in_while;
        Alcotest.test_case "nested binds inner" `Quick test_break_nested_binds_inner;
        Alcotest.test_case "rejected outside loops" `Quick test_break_outside_loop_rejected;
        Alcotest.test_case "round trip" `Quick test_break_roundtrip;
      ] );
    ( "more.affine",
      [
        Alcotest.test_case "cancellation" `Quick test_affine_cancellation;
        Alcotest.test_case "drop_iter" `Quick test_affine_drop_iter;
        Alcotest.test_case "to_string" `Quick test_affine_to_string;
        Alcotest.test_case "unknown propagation" `Quick test_affine_mul_unknown_propagates;
      ] );
    ( "more.footprint",
      [ Alcotest.test_case "negative strides" `Quick test_req_negative_stride ] );
    ( "more.throttle",
      [ Alcotest.test_case "non-power-of-two warps" `Quick test_throttle_non_power_of_two_warps ] );
    ( "more.occupancy",
      [ Alcotest.test_case "grid cap rounding" `Quick test_occupancy_grid_cap_rounds_up ] );
    ( "more.analysis",
      [
        Alcotest.test_case "if-join decays" `Quick test_analysis_if_join_decays;
        Alcotest.test_case "if-join agreement kept" `Quick test_analysis_if_join_agreeing_kept;
        Alcotest.test_case "modulo is unknown" `Quick test_analysis_mod_is_unknown;
        Alcotest.test_case "innermost iterator" `Quick test_analysis_innermost_iter_nested;
        Alcotest.test_case "barrier flag" `Quick test_analysis_barrier_flag;
      ] );
    ( "more.paper-claims",
      [
        Alcotest.test_case "ATAX phase split" `Quick test_atax_phase_split;
        Alcotest.test_case "BICG phase split" `Quick test_bicg_phase_split;
        Alcotest.test_case "CORR unresolvable" `Quick test_corr_unresolvable;
        Alcotest.test_case "PF per-loop decisions" `Quick test_pf_per_loop_decisions;
        Alcotest.test_case "SYR2K TB-level plan" `Quick test_syr2k_tb_level;
      ] );
  ]
