(** Driver for the [@lint] alias (pulled into [dune runtest]): pins the
    lint-all artifact against its golden and asserts the coverage floor —
    across the registered workloads the lint must flag at least one
    uncoalesced global access, one shared-memory bank conflict and one
    loop-invariant global load.

    With [GOLDEN_REGEN=<absolute dir>] set, rewrites the golden instead:

      GOLDEN_REGEN=$PWD/test/golden_profiles _build/default/test/lint_check.exe *)

module Lint = Staticmodel.Lint
module Lint_all = Experiments.Lint_all

let golden_name = "lint_all.txt"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden () =
  let path = Filename.concat "golden_profiles" golden_name in
  if not (Sys.file_exists path) then
    Alcotest.failf "missing golden %s — regenerate (see header comment)" path;
  Alcotest.(check string) "lint-all artifact matches golden snapshot"
    (read_file path) (Lint_all.render ())

let check_coverage_floor () =
  let diags =
    List.concat_map
      (fun (_, _, ds) -> ds)
      (Lint_all.diagnostics (Experiments.Configs.max_l1d ()))
  in
  let count k =
    List.length (List.filter (fun d -> d.Lint.dkind = k) diags)
  in
  List.iter
    (fun (kind, label) ->
      Alcotest.(check bool)
        (Printf.sprintf "at least one %s across the workloads" label)
        true (count kind >= 1))
    [
      (Lint.Uncoalesced, "uncoalesced global access");
      (Lint.Bank_conflict, "shared-memory bank conflict");
      (Lint.Invariant_load, "loop-invariant global load");
    ]

let () =
  match Sys.getenv_opt "GOLDEN_REGEN" with
  | Some dir ->
    let path = Filename.concat dir golden_name in
    let oc = open_out_bin path in
    output_string oc (Lint_all.render ());
    close_out oc;
    Printf.printf "wrote %s\n%!" path
  | None ->
    Alcotest.run "catt-lint"
      [
        ( "lint-all",
          [
            Alcotest.test_case "golden pinned" `Quick check_golden;
            Alcotest.test_case "coverage floor" `Quick check_coverage_floor;
          ] );
      ]
