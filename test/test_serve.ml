(** Tests for the [catt_d serve] stack: the versioned wire protocol, the
    admission-controlled dispatch loop, per-tenant cache sharding and
    metrics, the JSON-lines framing, and the co-resident pair mode the
    [simulate] request exposes.

    The subprocess smoke (boot the real binary on a socket, one request
    of each kind, clean SIGTERM shutdown) lives in [serve_check.ml]
    under the [@serve] alias; everything here runs in-process. *)

module Json = Gpu_util.Json
module Scheme = Experiments.Scheme
module Runner = Experiments.Runner
module Cache = Experiments.Cache
module Protocol = Serve.Protocol
module Tenant = Serve.Tenant
module Server = Serve.Server

let small_cfg = Gpusim.Config.scaled ~num_sms:2 ()

(* ------------------------------------------------------------------ *)
(* Protocol: schemes and round-trips                                   *)
(* ------------------------------------------------------------------ *)

let test_scheme_roundtrip () =
  List.iter
    (fun s ->
      match Scheme.of_string (Scheme.label s) with
      | Ok s' ->
        Alcotest.(check string)
          (Scheme.label s ^ " round-trips")
          (Scheme.label s) (Scheme.label s')
      | Error msg -> Alcotest.fail msg)
    (Scheme.samples @ [ Scheme.Fixed (8, 3); Scheme.Swl 17 ])

let request = Alcotest.testable (Fmt.of_to_string Protocol.request_to_line) ( = )

let roundtrip (r : Protocol.request) =
  match Protocol.request_of_line (Protocol.request_to_line r) with
  | Ok r' -> Alcotest.check request (Protocol.request_to_line r) r r'
  | Error msg -> Alcotest.fail msg

let test_request_roundtrip_all_kinds () =
  List.iter
    (fun scheme ->
      List.iter
        (fun kind -> roundtrip { Protocol.id = "r1"; tenant = "acme"; trace_id = None; kind })
        [
          Protocol.Analyze "ATAX";
          Protocol.Explain "MVT";
          Protocol.Stats;
          Protocol.Simulate
            { Protocol.workload = "ATAX"; scheme; co_resident = None };
          Protocol.Simulate
            {
              Protocol.workload = "ATAX";
              scheme;
              co_resident = Some ("MVT", scheme);
            };
        ])
    Scheme.samples

let gen_scheme =
  QCheck.Gen.(
    oneof
      [
        oneofl Scheme.samples;
        map2 (fun n m -> Scheme.Fixed (n, m)) (int_range 1 32) (int_range 0 8);
        map (fun k -> Scheme.Swl k) (int_range 1 64);
      ])

let gen_name = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 12))

let gen_request =
  QCheck.Gen.(
    let gen_kind =
      oneof
        [
          map (fun w -> Protocol.Analyze w) gen_name;
          map (fun w -> Protocol.Explain w) gen_name;
          return Protocol.Stats;
          map3
            (fun w scheme co ->
              Protocol.Simulate { Protocol.workload = w; scheme; co_resident = co })
            gen_name gen_scheme
            (opt (pair gen_name gen_scheme));
        ]
    in
    map3
      (fun id tenant kind -> { Protocol.id; tenant; trace_id = None; kind })
      gen_name gen_name gen_kind)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"wire request round-trips" ~count:300
    (QCheck.make ~print:Protocol.request_to_line gen_request)
    (fun r ->
      match Protocol.request_of_line (Protocol.request_to_line r) with
      | Ok r' -> r = r'
      | Error msg -> QCheck.Test.fail_report msg)

let response = Alcotest.testable (Fmt.of_to_string Protocol.response_to_line) ( = )

let test_response_roundtrip () =
  let roundtrip (r : Protocol.response) =
    match Protocol.response_of_json (Protocol.response_to_json r) with
    | Ok r' -> Alcotest.check response (Protocol.response_to_line r) r r'
    | Error msg -> Alcotest.fail msg
  in
  roundtrip
    {
      Protocol.resp_id = "ok-1";
      resp_tenant = "acme";
      result = Ok (Json.Obj [ ("total_cycles", Json.Int 42) ]);
    };
  List.iter
    (fun code ->
      roundtrip
        {
          Protocol.resp_id = "err-1";
          resp_tenant = Protocol.default_tenant;
          result = Error (code, "because");
        })
    [ Protocol.Bad_request; Protocol.Not_found; Protocol.Overloaded;
      Protocol.Internal ]

let test_unknown_fields_tolerated () =
  let line =
    {|{"schema_version":1,"id":"x","tenant":"t","kind":"simulate",
       "workload":"ATAX","scheme":"CATT","future_flag":true,
       "co_resident":{"workload":"MVT","scheme":"baseline","hint":9}}|}
  in
  match Protocol.request_of_line (String.concat " " (String.split_on_char '\n' line)) with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    Alcotest.check request "extra fields ignored"
      {
        Protocol.id = "x";
        tenant = "t";
        trace_id = None;
        kind =
          Protocol.Simulate
            {
              Protocol.workload = "ATAX";
              scheme = Scheme.Catt;
              co_resident = Some ("MVT", Scheme.Baseline);
            };
      }
      r

let expect_parse_error name line =
  match Protocol.request_of_line line with
  | Ok _ -> Alcotest.failf "%s: expected a parse error" name
  | Error _ -> ()

let test_bad_requests_refused () =
  expect_parse_error "wrong version"
    {|{"schema_version":99,"id":"x","kind":"stats"}|};
  expect_parse_error "missing version" {|{"id":"x","kind":"stats"}|};
  expect_parse_error "missing kind" {|{"schema_version":1,"id":"x"}|};
  expect_parse_error "unknown kind"
    {|{"schema_version":1,"id":"x","kind":"frobnicate"}|};
  expect_parse_error "missing workload"
    {|{"schema_version":1,"id":"x","kind":"simulate"}|};
  expect_parse_error "bad scheme"
    {|{"schema_version":1,"id":"x","kind":"simulate","workload":"ATAX","scheme":"warp9"}|};
  expect_parse_error "not json" {|{"schema_version":1,|}

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let collector () =
  let lock = Mutex.create () in
  let responses = ref [] in
  let respond r =
    Mutex.lock lock;
    responses := r :: !responses;
    Mutex.unlock lock
  in
  let all () =
    Mutex.lock lock;
    let rs = !responses in
    Mutex.unlock lock;
    rs
  in
  (respond, all)

let stats_req ?(tenant = "adm") id =
  { Protocol.id; tenant; trace_id = None; kind = Protocol.Stats }

(* the cap fills deterministically because in_flight counts queued +
   running from post time: no worker needs to have started anything for
   the third post to be refused *)
let test_admission_refuses_at_cap () =
  Tenant.reset ();
  let gate = Atomic.make true in
  let ran = Atomic.make 0 in
  let handler (_ : Protocol.request) : Server.outcome =
    Atomic.incr ran;
    while Atomic.get gate do
      Unix.sleepf 0.001
    done;
    Ok (Json.Null, false)
  in
  let srv = Server.create ~handler ~cfg:small_cfg ~jobs:2 ~queue_cap:2 () in
  let respond, all = collector () in
  let d1 = Server.post srv (stats_req "1") ~respond in
  let d2 = Server.post srv (stats_req "2") ~respond in
  let d3 = Server.post srv (stats_req "3") ~respond in
  Alcotest.(check bool) "first admitted" true (d1 = `Dispatched);
  Alcotest.(check bool) "second admitted" true (d2 = `Dispatched);
  Alcotest.(check bool) "third refused" true (d3 = `Rejected);
  (* the refusal is synchronous: its envelope is already here while the
     admitted two are still gated *)
  (match List.find_opt (fun r -> r.Protocol.resp_id = "3") (all ()) with
  | Some { Protocol.result = Error (Protocol.Overloaded, _); _ } -> ()
  | Some _ -> Alcotest.fail "refusal must carry the overloaded code"
  | None -> Alcotest.fail "refusal must respond synchronously");
  Atomic.set gate false;
  Server.shutdown srv;
  Alcotest.(check int) "handler never saw the refused request" 2
    (Atomic.get ran);
  Alcotest.(check int) "every request answered" 3 (List.length (all ()));
  let s = Tenant.snapshot (Tenant.find_or_create "adm") in
  Alcotest.(check int) "requests" 3 s.Tenant.snap_requests;
  Alcotest.(check int) "misses" 2 s.Tenant.snap_misses;
  Alcotest.(check int) "errors" 1 s.Tenant.snap_errors;
  Alcotest.(check int) "overloaded" 1 s.Tenant.snap_overloaded

(* ------------------------------------------------------------------ *)
(* Tenant isolation: separate shards, bit-equal results                *)
(* ------------------------------------------------------------------ *)

let with_temp_cache name f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "catt-serve-%s-%d" name (Unix.getpid ()))
  in
  let old_dir = !Cache.dir and old_enabled = !Cache.enabled in
  Cache.dir := dir;
  Cache.enabled := true;
  Runner.clear_memo ();
  Fun.protect
    ~finally:(fun () ->
      Runner.clear_memo ();
      Cache.clear ();
      (try Unix.rmdir dir with Unix.Unix_error _ -> ());
      Cache.dir := old_dir;
      Cache.enabled := old_enabled)
    (fun () -> f ())

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* the manifest rides inside the entry but is provenance (wall time,
   metrics snapshot), not payload; the payload must digest identically *)
let payload_of_entry path =
  match Json.of_string (read_file path) with
  | Ok (Json.Obj fields) ->
    Json.to_string (Json.Obj (List.filter (fun (k, _) -> k <> "manifest") fields))
  | Ok _ | Error _ -> Alcotest.failf "unreadable cache entry %s" path

let test_tenant_shards_bit_equal () =
  with_temp_cache "shards" @@ fun () ->
  let cfg = Gpusim.Config.scaled ~num_sms:2 ~onchip_bytes:(16 * 1024) () in
  let w = Workloads.Registry.find "ATAX" in
  let run tenant =
    match Runner.exec (Runner.Request.make ~tenant cfg w Scheme.Baseline) with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  let ra = run "alpha" in
  let rb = run "beta" in
  Alcotest.(check int) "same cycles" ra.Runner.total_cycles rb.Runner.total_cycles;
  Alcotest.(check bool) "same kernel counters" true (ra.Runner.kernels = rb.Runner.kernels);
  let da = Cache.shard_dir ~tenant:"alpha" () in
  let db = Cache.shard_dir ~tenant:"beta" () in
  Alcotest.(check bool) "shards are distinct directories" false (da = db);
  Alcotest.(check bool) "shards live under the cache root" true
    (Filename.dirname da = !Cache.dir && Filename.dirname db = !Cache.dir);
  let path tenant =
    Cache.path ~tenant cfg ~workload:w.Workloads.Workload.name
      ~scheme:(Scheme.label Scheme.Baseline) ~seed:Runner.seed
  in
  let pa = path "alpha" and pb = path "beta" in
  Alcotest.(check bool) "alpha entry exists" true (Sys.file_exists pa);
  Alcotest.(check bool) "beta entry exists" true (Sys.file_exists pb);
  Alcotest.(check string) "content-addressed names agree across shards"
    (Filename.basename pa) (Filename.basename pb);
  Alcotest.(check string) "payloads bit-equal across shards"
    (payload_of_entry pa) (payload_of_entry pb)

(* tenant names are untrusted wire input: whatever the client sends, the
   shard must be a real subdirectory of the cache root — ".." must not
   escape it and "." must not alias the shared top-level cache — and
   distinct raw names must never collapse onto one shard *)
let test_tenant_shard_component_safe () =
  let root = !Cache.dir in
  let safe_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true
    | _ -> false
  in
  List.iter
    (fun tenant ->
      let d = Cache.shard_dir ~tenant () in
      let component = Filename.basename d in
      Alcotest.(check string)
        (Printf.sprintf "%S shards directly under the cache root" tenant)
        root (Filename.dirname d);
      Alcotest.(check bool)
        (Printf.sprintf "%S does not alias the shared cache" tenant)
        true
        (d <> root && component <> "." && component <> "..");
      Alcotest.(check bool)
        (Printf.sprintf "%S maps to [A-Za-z0-9_-]+ only" tenant)
        true
        (component <> "" && String.for_all safe_char component))
    [ ".."; "."; ""; "..."; "a/../../b"; "../../etc/passwd"; "a.b"; "x:y" ];
  let shard t = Cache.shard_dir ~tenant:t () in
  Alcotest.(check bool) "remapped names stay distinct" true
    (shard "a.b" <> shard "a-b"
    && shard "a.b" <> shard "a:b"
    && shard ".." <> shard ".")

(* a second request by the same tenant is served from the memo and the
   server attributes it as a cache hit; the first was a miss *)
let test_simulate_hit_miss_attribution () =
  with_temp_cache "attrib" @@ fun () ->
  Tenant.reset ();
  let cfg = Gpusim.Config.scaled ~num_sms:2 ~onchip_bytes:(16 * 1024) () in
  let srv = Server.create ~cfg ~jobs:1 ~queue_cap:4 () in
  let respond, all = collector () in
  let sim id =
    {
      Protocol.id;
      tenant = "hm";
      trace_id = None;
      kind =
        Protocol.Simulate
          { Protocol.workload = "ATAX"; scheme = Scheme.Baseline; co_resident = None };
    }
  in
  ignore (Server.post srv (sim "cold") ~respond);
  Server.drain srv;
  ignore (Server.post srv (sim "warm") ~respond);
  Server.shutdown srv;
  Alcotest.(check int) "both answered" 2 (List.length (all ()));
  List.iter
    (fun r ->
      match r.Protocol.result with
      | Ok _ -> ()
      | Error (_, msg) -> Alcotest.failf "%s failed: %s" r.Protocol.resp_id msg)
    (all ());
  let s = Tenant.snapshot (Tenant.find_or_create "hm") in
  Alcotest.(check int) "one miss (cold)" 1 s.Tenant.snap_misses;
  Alcotest.(check int) "one hit (warm, memo)" 1 s.Tenant.snap_hits;
  Alcotest.(check int) "no errors" 0 s.Tenant.snap_errors

(* the bucket of the histogram the reported percentile must fall in,
   given the exact nearest-rank answer *)
let bucket_hi v = snd (Obs.Histogram.bounds (Obs.Histogram.bucket_of v))
let bucket_lo v = fst (Obs.Histogram.bounds (Obs.Histogram.bucket_of v))

(* refusals are counted but must not contribute latency samples: a
   throttled tenant's p50/p99 describe the requests that were served,
   not zeros for the ones that were not.  The reported figure is the
   upper bound of the bucket holding the exact nearest-rank answer. *)
let test_latency_excludes_refusals () =
  Tenant.reset ();
  Obs.Metrics.reset ();
  let t = Tenant.find_or_create "lat" in
  Tenant.note t Tenant.Overloaded;
  Tenant.note ~latency_us:100 t Tenant.Miss;
  Tenant.note ~latency_us:200 t Tenant.Hit;
  Tenant.note t Tenant.Overloaded;
  let s = Tenant.snapshot t in
  Alcotest.(check int) "refusals still counted" 2 s.Tenant.snap_overloaded;
  Alcotest.(check int) "requests include refusals" 4 s.Tenant.snap_requests;
  Alcotest.(check int)
    "only handled requests recorded" 2
    s.Tenant.snap_lat.Obs.Histogram.s_count;
  (* exact nearest-rank p50 over {100, 200} is 100; p99 is 200.  The
     histogram reports the containing bucket's upper bound. *)
  Alcotest.(check int) "p50 = bucket bound of 100" (bucket_hi 100)
    s.Tenant.snap_p50_us;
  Alcotest.(check bool) "p50 bucket contains 100" true (bucket_lo 100 <= 100);
  Alcotest.(check int) "p99 = bucket bound of 200" (bucket_hi 200)
    s.Tenant.snap_p99_us;
  Alcotest.(check bool) "p99 bucket contains 200" true (bucket_lo 200 <= 200)

(* the latency store is a fixed-size histogram: a long-running daemon's
   ledger memory is bounded by the bucket count, never by request
   volume, and the percentiles cover the whole history *)
let test_latency_histogram_bounded () =
  Tenant.reset ();
  Obs.Metrics.reset ();
  let t = Tenant.find_or_create "ring" in
  let n = 4096 in
  for _ = 1 to n do
    Tenant.note ~latency_us:1_000_000 t Tenant.Miss
  done;
  for _ = 1 to n do
    Tenant.note ~latency_us:7 t Tenant.Hit
  done;
  let s = Tenant.snapshot t in
  Alcotest.(check int)
    "every sample counted" (2 * n)
    s.Tenant.snap_lat.Obs.Histogram.s_count;
  Alcotest.(check int) "two distinct values, two buckets" 2
    (List.length s.Tenant.snap_lat_buckets);
  (* nearest-rank p50 of (4096 x 7, 4096 x 1e6) sorted is 7 *)
  Alcotest.(check int) "p50 exact (tiny values have exact buckets)" 7
    s.Tenant.snap_p50_us;
  Alcotest.(check int) "p99 = bucket bound of 1e6" (bucket_hi 1_000_000)
    s.Tenant.snap_p99_us;
  Alcotest.(check bool) "p99 bucket contains 1e6" true
    (bucket_lo 1_000_000 <= 1_000_000)

(* ------------------------------------------------------------------ *)
(* Soak: 200 mixed requests, two tenants, jobs 4, cap engaged          *)
(* ------------------------------------------------------------------ *)

let test_soak_mixed_200 () =
  with_temp_cache "soak" @@ fun () ->
  Tenant.reset ();
  let cfg = Gpusim.Config.scaled ~num_sms:2 ~onchip_bytes:(16 * 1024) () in
  let gate = Atomic.make true in
  let handler req : Server.outcome =
    while Atomic.get gate do
      Unix.sleepf 0.001
    done;
    Server.default_handler cfg req
  in
  let queue_cap = 3 in
  let srv = Server.create ~handler ~cfg ~jobs:4 ~queue_cap () in
  let respond, all = collector () in
  let tenants = [| "acme"; "zeta" |] in
  let kind_of i =
    match i mod 8 with
    | 0 | 1 | 2 ->
      Protocol.Simulate
        { Protocol.workload = "ATAX"; scheme = Scheme.Baseline; co_resident = None }
    | 3 ->
      Protocol.Simulate
        { Protocol.workload = "MVT"; scheme = Scheme.Catt; co_resident = None }
    | 4 -> Protocol.Analyze "ATAX"
    | 5 -> Protocol.Explain "MVT"
    | 6 -> Protocol.Stats
    | _ -> Protocol.Analyze "no-such-workload"  (* a counted failure *)
  in
  let total = 200 in
  let posted = ref 0 in
  (* the tenant index must not be correlated with [kind_of]'s period 8,
     or one tenant would receive every failing request; the extra [i / 8]
     term alternates the phase each cycle *)
  let tenant_of i = tenants.((i + (i / 8)) mod Array.length tenants) in
  let post i =
    incr posted;
    ignore
      (Server.post srv
         {
           Protocol.id = string_of_int i;
           tenant = tenant_of i;
           trace_id = None;
           kind = kind_of i;
         }
         ~respond)
  in
  (* phase 1 — handler gated shut: the first [queue_cap] posts fill the
     queue, the next is refused.  Admission provably engaged. *)
  for i = 0 to queue_cap do
    post i
  done;
  let refused =
    List.filter
      (fun r ->
        match r.Protocol.result with
        | Error (Protocol.Overloaded, _) -> true
        | _ -> false)
      (all ())
  in
  Alcotest.(check int) "cap engaged while gated" 1 (List.length refused);
  (* phase 2 — open the gate and pour the rest through the pool.  The
     poster applies backpressure (waits for a free slot) so each of the
     200 logical requests is posted exactly once and the cache actually
     warms up; without it the burst would be refused wholesale. *)
  Atomic.set gate false;
  for i = queue_cap + 1 to total - 1 do
    while Server.in_flight srv >= queue_cap do
      Unix.sleepf 0.001
    done;
    post i
  done;
  Server.drain srv;
  Server.shutdown srv;
  Alcotest.(check int) "posted the full soak" total !posted;
  Alcotest.(check int) "every request answered exactly once" total
    (List.length (all ()));
  let ids = List.sort_uniq compare (List.map (fun r -> r.Protocol.resp_id) (all ())) in
  Alcotest.(check int) "response ids distinct" total (List.length ids);
  (* per-tenant ledger: every request is exactly one of hit/miss/error *)
  let snaps = List.map Tenant.snapshot (Tenant.all ()) in
  Alcotest.(check int) "two tenants seen" (Array.length tenants)
    (List.length snaps);
  List.iter
    (fun s ->
      Alcotest.(check int)
        (s.Tenant.snap_name ^ ": requests = hits + misses + errors")
        s.Tenant.snap_requests
        (s.Tenant.snap_hits + s.Tenant.snap_misses + s.Tenant.snap_errors);
      Alcotest.(check bool)
        (s.Tenant.snap_name ^ ": saw hits")
        true (s.Tenant.snap_hits > 0);
      Alcotest.(check bool)
        (s.Tenant.snap_name ^ ": saw misses")
        true (s.Tenant.snap_misses > 0);
      Alcotest.(check bool)
        (s.Tenant.snap_name ^ ": saw errors")
        true (s.Tenant.snap_errors > 0))
    snaps;
  Alcotest.(check int) "tenant ledgers cover the soak" total
    (List.fold_left (fun acc s -> acc + s.Tenant.snap_requests) 0 snaps);
  Alcotest.(check bool) "overload recorded in a ledger" true
    (List.exists (fun s -> s.Tenant.snap_overloaded > 0) snaps)

(* ------------------------------------------------------------------ *)
(* JSON-lines framing over a pipe                                      *)
(* ------------------------------------------------------------------ *)

let read_lines fd n =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let lines =
      List.filter
        (fun l -> String.trim l <> "")
        (String.split_on_char '\n' (Buffer.contents buf))
    in
    if List.length lines >= n then lines
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> lines
      | got ->
        Buffer.add_subbytes buf chunk 0 got;
        go ()
  in
  go ()

let test_serve_fd_pipe () =
  with_temp_cache "pipe" @@ fun () ->
  Tenant.reset ();
  let cfg = Gpusim.Config.scaled ~num_sms:2 ~onchip_bytes:(16 * 1024) () in
  let srv = Server.create ~cfg ~jobs:2 ~queue_cap:8 () in
  let in_r, in_w = Unix.pipe () in
  let out_r, out_w = Unix.pipe () in
  let lines =
    [
      Protocol.request_to_line
        {
          Protocol.id = "sim";
          tenant = "pipe";
          trace_id = None;
          kind =
            Protocol.Simulate
              {
                Protocol.workload = "ATAX";
                scheme = Scheme.Baseline;
                co_resident = None;
              };
        };
      {|{"schema_version":1,"id":"st","tenant":"pipe","kind":"stats"}|};
      {|{"schema_version":99,"id":"old","tenant":"pipe","kind":"stats"}|};
      "this is not json";
    ]
  in
  let payload = String.concat "\n" lines ^ "\n" in
  let b = Bytes.of_string payload in
  ignore (Unix.write in_w b 0 (Bytes.length b));
  Unix.close in_w;
  (* EOF-terminated: serve_fd drains in-flight work before returning *)
  Server.serve_fd srv ~in_fd:in_r ~out_fd:out_w ~stop:(fun () -> false);
  Server.shutdown srv;
  Unix.close out_w;
  let responses =
    List.map
      (fun l ->
        match Json.of_string l with
        | Ok j -> (
          match Protocol.response_of_json j with
          | Ok r -> r
          | Error msg -> Alcotest.failf "bad response %s: %s" l msg)
        | Error msg -> Alcotest.failf "unparseable line %s: %s" l msg)
      (read_lines out_r 4)
  in
  Unix.close out_r;
  Unix.close in_r;
  Alcotest.(check int) "four responses" 4 (List.length responses);
  let find id = List.find_opt (fun r -> r.Protocol.resp_id = id) responses in
  (match find "sim" with
  | Some { Protocol.result = Ok payload; _ } ->
    Alcotest.(check string) "simulate echoes the workload" "ATAX"
      (Json.to_str (Json.member "workload" payload))
  | _ -> Alcotest.fail "simulate response missing or failed");
  (match find "st" with
  | Some { Protocol.result = Ok payload; _ } ->
    Alcotest.(check bool) "stats lists tenants" true
      (match Json.member "tenants" payload with
      | Json.List _ -> true
      | _ -> false)
  | _ -> Alcotest.fail "stats response missing or failed");
  (match find "old" with
  | Some { Protocol.result = Error (Protocol.Bad_request, _); _ } -> ()
  | _ ->
    Alcotest.fail
      "version refusal must still echo the salvageable request id");
  match find "" with
  | Some { Protocol.result = Error (Protocol.Bad_request, _); _ } -> ()
  | _ -> Alcotest.fail "garbage line must yield a bad_request envelope"

(* ------------------------------------------------------------------ *)
(* Socket: two interleaved clients                                     *)
(* ------------------------------------------------------------------ *)

(* read one response line with a deadline, so a regression to the old
   one-connection-at-a-time accept loop fails the assertion instead of
   hanging the suite *)
let read_line_deadline fd ~seconds =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 256 in
  let deadline = Unix.gettimeofday () +. seconds in
  let rec go () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i -> Some (String.sub (Buffer.contents buf) 0 i)
    | None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then None
      else (
        match Unix.select [ fd ] [] [] left with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | [], _, _ -> None
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> None
          | got ->
            Buffer.add_subbytes buf chunk 0 got;
            go ()))
  in
  go ()

(* an idle client holding its connection open must not starve a later
   client: each accepted connection runs on its own thread (PR 7's
   serve_socket), so the second client's request round-trips while the
   first sits silent, and the first is still served afterwards *)
let test_socket_two_clients () =
  with_temp_cache "two-clients" @@ fun () ->
  Tenant.reset ();
  let cfg = Gpusim.Config.scaled ~num_sms:2 ~onchip_bytes:(16 * 1024) () in
  let srv = Server.create ~cfg ~jobs:2 ~queue_cap:8 () in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "catt-serve-two-%d.sock" (Unix.getpid ()))
  in
  let stop = Atomic.make false in
  let acceptor =
    Thread.create
      (fun () ->
        Server.serve_socket srv ~path ~stop:(fun () -> Atomic.get stop))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join acceptor;
      Server.shutdown srv;
      try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      let rec wait_sock n =
        if n = 0 then Alcotest.fail "socket never appeared"
        else if not (Sys.file_exists path) then (
          Unix.sleepf 0.01;
          wait_sock (n - 1))
      in
      wait_sock 500;
      let connect () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      in
      let send fd id =
        let line =
          Protocol.request_to_line
            { Protocol.id; tenant = "two"; trace_id = None; kind = Protocol.Stats }
          ^ "\n"
        in
        let b = Bytes.of_string line in
        ignore (Unix.write fd b 0 (Bytes.length b))
      in
      let expect_stats fd id =
        match read_line_deadline fd ~seconds:10. with
        | None -> Alcotest.failf "no response for %s within the deadline" id
        | Some line -> (
          match Json.of_string line with
          | Error msg -> Alcotest.failf "unparseable response %s: %s" line msg
          | Ok j -> (
            match Protocol.response_of_json j with
            | Error msg -> Alcotest.failf "bad response envelope: %s" msg
            | Ok r ->
              Alcotest.(check string) (id ^ " correlated") id r.Protocol.resp_id;
              (match r.Protocol.result with
              | Ok _ -> ()
              | Error (_, msg) -> Alcotest.failf "%s failed: %s" id msg)))
      in
      let c1 = connect () in
      let c2 = connect () in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close c1 with Unix.Unix_error (_, _, _) -> ());
          try Unix.close c2 with Unix.Unix_error (_, _, _) -> ())
        (fun () ->
          (* client 1 stays idle; client 2, accepted later, must round-trip *)
          send c2 "second";
          expect_stats c2 "second";
          (* the idle client's connection is still live and served *)
          send c1 "first";
          expect_stats c1 "first"))

(* ------------------------------------------------------------------ *)
(* Co-resident pairs                                                   *)
(* ------------------------------------------------------------------ *)

(* the uncached entry point: these tests are about what the pair
   *simulation* does (attribution, determinism, refusals), so the
   pair-aware cache must not satisfy the second run from the first *)
let co_pair scheme_a scheme_b =
  let wa = Workloads.Registry.find "ATAX" in
  let wb = Workloads.Registry.find "MVT" in
  Runner.run_co_resident_uncached small_cfg wa scheme_a wb scheme_b

(* Co-residency perturbs timing (cycles, hit rates) but must not change
   what each kernel *does*: instruction and L1-access counts stay equal
   to the solo run, and both oracles still pass.  (Hit rates are NOT
   monotone — halving the partition can reduce self-thrashing.) *)
let test_co_resident_attribution () =
  match co_pair Scheme.Baseline Scheme.Baseline with
  | Error msg -> Alcotest.fail msg
  | Ok (ra, rb) ->
    Alcotest.(check bool) "A verified" true (ra.Runner.verified = Ok ());
    Alcotest.(check bool) "B verified" true (rb.Runner.verified = Ok ());
    Alcotest.(check bool) "A progressed" true (ra.Runner.total_cycles > 0);
    Alcotest.(check bool) "B progressed" true (rb.Runner.total_cycles > 0);
    let solo w =
      match
        Runner.exec_uncached
          (Runner.Request.make small_cfg (Workloads.Registry.find w)
             Scheme.Baseline)
      with
      | Ok r -> r
      | Error msg -> Alcotest.fail msg
    in
    let check_counts name (solo : Runner.app_run) (co : Runner.app_run) =
      List.iter2
        (fun (s : Runner.kernel_stats) (c : Runner.kernel_stats) ->
          Alcotest.(check string)
            (name ^ " kernel order preserved")
            s.Runner.kernel_name c.Runner.kernel_name;
          Alcotest.(check int)
            (name ^ "/" ^ s.Runner.kernel_name ^ " instructions attributed")
            s.Runner.stats.Gpusim.Stats.instructions
            c.Runner.stats.Gpusim.Stats.instructions;
          Alcotest.(check int)
            (name ^ "/" ^ s.Runner.kernel_name ^ " l1 accesses attributed")
            s.Runner.stats.Gpusim.Stats.l1_accesses
            c.Runner.stats.Gpusim.Stats.l1_accesses)
        solo.Runner.kernels co.Runner.kernels
    in
    check_counts "ATAX" (solo "ATAX") ra;
    check_counts "MVT" (solo "MVT") rb

let test_co_resident_deterministic () =
  match (co_pair Scheme.Catt Scheme.Baseline, co_pair Scheme.Catt Scheme.Baseline)
  with
  | Ok (a1, b1), Ok (a2, b2) ->
    Alcotest.(check int) "A cycles repeat" a1.Runner.total_cycles
      a2.Runner.total_cycles;
    Alcotest.(check int) "B cycles repeat" b1.Runner.total_cycles
      b2.Runner.total_cycles;
    Alcotest.(check bool) "A counters repeat" true
      (a1.Runner.kernels = a2.Runner.kernels);
    Alcotest.(check bool) "B counters repeat" true
      (b1.Runner.kernels = b2.Runner.kernels)
  | Error msg, _ | _, Error msg -> Alcotest.fail msg

(* unequal launch counts: GEMM has one launch, ATAX two, so ATAX's
   second kernel runs as a solo tail on the still-warm shared L2.  The
   tail keeps the pair phase's disjoint address split — it must never
   collect hits on GEMM's resident lines — so attribution still matches
   the solo run and the whole sequence stays deterministic. *)
let test_co_resident_unequal_tail () =
  let wa = Workloads.Registry.find "GEMM" in
  let wb = Workloads.Registry.find "ATAX" in
  let pair () =
    Runner.run_co_resident_uncached small_cfg wa Scheme.Baseline wb
      Scheme.Baseline
  in
  match (pair (), pair ()) with
  | Error msg, _ | _, Error msg -> Alcotest.fail msg
  | Ok (ra, rb), Ok (ra2, rb2) ->
    Alcotest.(check bool) "A verified" true (ra.Runner.verified = Ok ());
    Alcotest.(check bool) "B verified" true (rb.Runner.verified = Ok ());
    Alcotest.(check bool) "A repeats" true
      (ra.Runner.kernels = ra2.Runner.kernels);
    Alcotest.(check bool) "B repeats" true
      (rb.Runner.kernels = rb2.Runner.kernels);
    Alcotest.(check int) "B ran both kernels" 2 (List.length rb.Runner.kernels);
    let solo =
      match
        Runner.exec_uncached (Runner.Request.make small_cfg wb Scheme.Baseline)
      with
      | Ok r -> r
      | Error msg -> Alcotest.fail msg
    in
    List.iter2
      (fun (s : Runner.kernel_stats) (c : Runner.kernel_stats) ->
        Alcotest.(check string) "kernel order preserved" s.Runner.kernel_name
          c.Runner.kernel_name;
        Alcotest.(check int)
          (s.Runner.kernel_name ^ " instructions attributed")
          s.Runner.stats.Gpusim.Stats.instructions
          c.Runner.stats.Gpusim.Stats.instructions;
        Alcotest.(check int)
          (s.Runner.kernel_name ^ " l1 accesses attributed")
          s.Runner.stats.Gpusim.Stats.l1_accesses
          c.Runner.stats.Gpusim.Stats.l1_accesses)
      solo.Runner.kernels rb.Runner.kernels

let test_co_resident_refuses_runtime_schemes () =
  List.iter
    (fun scheme ->
      match co_pair scheme Scheme.Baseline with
      | Error _ -> ()
      | Ok _ ->
        Alcotest.failf "%s must be refused in co-resident mode"
          (Scheme.label scheme))
    [
      Scheme.Dynamic; Scheme.CcwsSched; Scheme.DawsSched; Scheme.Swl 4;
      (* the interference-aware hardware schemes carry per-SM monitor /
         shadow-tag state that cannot be attributed to one kernel *)
      Scheme.Ciao; Scheme.Ata;
    ]

(* the full handler path: a co-resident simulate request over the wire —
   cold it simulates (a miss), warm it serves from the pair-aware cache
   (a hit), including with the members swapped *)
let test_co_resident_request () =
  with_temp_cache "co-wire" @@ fun () ->
  let req workload other =
    {
      Protocol.id = "co";
      tenant = "pair";
      trace_id = None;
      kind =
        Protocol.Simulate
          {
            Protocol.workload;
            scheme = Scheme.Baseline;
            co_resident = Some (other, Scheme.Baseline);
          };
    }
  in
  let handle r =
    match Server.default_handler small_cfg r with
    | Error (_, msg) -> Alcotest.fail msg
    | Ok (payload, cached) -> (payload, cached)
  in
  let check_payload ~which (payload : Json.t) =
    Alcotest.(check bool) "flagged co-resident" true
      (match Json.member_opt "co_resident" payload with
      | Some (Json.Bool true) -> true
      | _ -> false);
    List.iter
      (fun (side, workload) ->
        match Json.member_opt side payload with
        | Some j ->
          Alcotest.(check string)
            (which ^ ": " ^ side ^ " attributed")
            workload
            (Json.to_str (Json.member "workload" j));
          Alcotest.(check bool)
            (which ^ ": " ^ side ^ " verified")
            true
            (Json.member "verified" j = Json.Bool true)
        | None -> Alcotest.failf "%s: missing %s summary" which side)
      (match which with
      | "swapped" -> [ ("a", "MVT"); ("b", "ATAX") ]
      | _ -> [ ("a", "ATAX"); ("b", "MVT") ])
  in
  let cold, cold_cached = handle (req "ATAX" "MVT") in
  check_payload ~which:"cold" cold;
  Alcotest.(check bool) "cold pair is a miss" false cold_cached;
  let warm, warm_cached = handle (req "ATAX" "MVT") in
  check_payload ~which:"warm" warm;
  Alcotest.(check bool) "repeat pair is a hit" true warm_cached;
  Alcotest.(check string) "warm payload bit-equal" (Json.to_string cold)
    (Json.to_string warm);
  (* the same pair requested in the other order: still a hit, with the
     per-side attribution swapped back to the caller's order *)
  let swapped, swapped_cached = handle (req "MVT" "ATAX") in
  check_payload ~which:"swapped" swapped;
  Alcotest.(check bool) "swapped pair is a hit" true swapped_cached

(* the runner's pair cache end-to-end: a cold pair simulates and persists
   to the tenant's disk shard; warm it serves from memo; a cold process
   (memo cleared) serves it from disk with identical counters; and both
   member orders address the same entry with attribution swapped *)
let test_co_resident_cache_roundtrip () =
  with_temp_cache "pair-cache" @@ fun () ->
  let wa = Workloads.Registry.find "ATAX" in
  let wb = Workloads.Registry.find "MVT" in
  let run ?(swap = false) () =
    let (x, sx), (y, sy) =
      if swap then ((wb, Scheme.Catt), (wa, Scheme.Baseline))
      else ((wa, Scheme.Baseline), (wb, Scheme.Catt))
    in
    match Runner.run_co_resident_with_source ~tenant:"pc" small_cfg x sx y sy with
    | Ok v -> v
    | Error msg -> Alcotest.fail msg
  in
  let sim0 = Runner.simulated_total () in
  let (ra, rb), src = run () in
  Alcotest.(check bool) "cold pair simulates" true (src = Runner.Simulated);
  Alcotest.(check int) "one simulated cell" 1
    (Runner.simulated_total () - sim0);
  (* the entry landed in the tenant's shard under the order-normalized
     pair identity *)
  let (_, _), (_, _), workload_label, scheme_pair_label, swap =
    Runner.pair_identity wa Scheme.Baseline wb Scheme.Catt
  in
  Alcotest.(check bool) "ATAX+baseline sorts first" false swap;
  let entry =
    Cache.path ~tenant:"pc" small_cfg ~workload:workload_label
      ~scheme:scheme_pair_label ~seed:Runner.seed
  in
  Alcotest.(check bool) "pair entry persisted to the shard" true
    (Sys.file_exists entry);
  (* warm: memo, no new simulation *)
  let (ra2, rb2), src2 = run () in
  Alcotest.(check bool) "warm pair from memo" true (src2 = Runner.Memo);
  Alcotest.(check bool) "memo counters bit-equal" true
    (ra.Runner.kernels = ra2.Runner.kernels
    && rb.Runner.kernels = rb2.Runner.kernels);
  (* cold process: memo dropped, disk serves the same bits *)
  Runner.clear_memo ();
  let (ra3, rb3), src3 = run () in
  Alcotest.(check bool) "cold process hits disk" true (src3 = Runner.Disk);
  Alcotest.(check bool) "disk counters bit-equal" true
    (ra.Runner.kernels = ra3.Runner.kernels
    && rb.Runner.kernels = rb3.Runner.kernels);
  (* swapped-order lookup: same entry, attribution swapped back *)
  let (sb, sa), src4 = run ~swap:true () in
  Alcotest.(check bool) "swapped lookup is served, not simulated" true
    (src4 = Runner.Memo || src4 = Runner.Disk);
  Alcotest.(check string) "swapped side a is MVT" "MVT" sb.Runner.workload;
  Alcotest.(check string) "swapped side b is ATAX" "ATAX" sa.Runner.workload;
  Alcotest.(check bool) "swapped counters bit-equal" true
    (sa.Runner.kernels = ra.Runner.kernels
    && sb.Runner.kernels = rb.Runner.kernels);
  Alcotest.(check int) "nothing re-simulated after the cold run" 1
    (Runner.simulated_total () - sim0)

(* ------------------------------------------------------------------ *)
(* Request coalescing (single flight) through the server               *)
(* ------------------------------------------------------------------ *)

(* K concurrent identical simulate requests from K different tenants: a
   countdown gate holds every request inside the handler until all K have
   arrived, so they provably race into the runner together.  Exactly one
   simulation runs (the leader); every other response is fanned out from
   it; per-tenant attribution and per-tenant shard storage survive. *)
let test_coalesced_identical_requests () =
  with_temp_cache "dedup" @@ fun () ->
  Tenant.reset ();
  let cfg = Gpusim.Config.scaled ~num_sms:2 ~onchip_bytes:(16 * 1024) () in
  let k = 4 in
  let inside = Atomic.make 0 in
  let handler req : Server.outcome =
    Atomic.incr inside;
    while Atomic.get inside < k do
      Unix.sleepf 0.001
    done;
    Server.default_handler cfg req
  in
  let srv = Server.create ~handler ~cfg ~jobs:k ~queue_cap:k () in
  let respond, all = collector () in
  let sim0 = Runner.simulated_total () in
  let coal0 = Runner.coalesced_total () in
  for i = 1 to k do
    let d =
      Server.post srv
        {
          Protocol.id = Printf.sprintf "r%d" i;
          tenant = Printf.sprintf "flight%d" i;
          trace_id = None;
          kind =
            Protocol.Simulate
              {
                Protocol.workload = "ATAX";
                scheme = Scheme.Baseline;
                co_resident = None;
              };
        }
        ~respond
    in
    Alcotest.(check bool) "admitted" true (d = `Dispatched)
  done;
  Server.shutdown srv;
  Alcotest.(check int) "all inside the handler together" k (Atomic.get inside);
  Alcotest.(check int) "K responses" k (List.length (all ()));
  List.iter
    (fun r ->
      match r.Protocol.result with
      | Ok payload ->
        Alcotest.(check string)
          (r.Protocol.resp_id ^ " carries the shared result")
          "ATAX"
          (Json.to_str (Json.member "workload" payload))
      | Error (_, msg) -> Alcotest.failf "%s failed: %s" r.Protocol.resp_id msg)
    (all ());
  Alcotest.(check int) "exactly one simulation" 1
    (Runner.simulated_total () - sim0);
  Alcotest.(check int) "the other K-1 coalesced" (k - 1)
    (Runner.coalesced_total () - coal0);
  Alcotest.(check int) "flight table quiescent" 0
    (Runner.flights_in_progress ());
  (* attribution: the leader's tenant took the one miss, every follower
     tenant a hit; each request still counted under its own tenant *)
  let snaps =
    List.filter
      (fun s ->
        String.length s.Tenant.snap_name >= 6
        && String.sub s.Tenant.snap_name 0 6 = "flight")
      (List.map Tenant.snapshot (Tenant.all ()))
  in
  Alcotest.(check int) "K tenants ledgered" k (List.length snaps);
  List.iter
    (fun s ->
      Alcotest.(check int)
        (s.Tenant.snap_name ^ ": one request")
        1 s.Tenant.snap_requests;
      Alcotest.(check int) (s.Tenant.snap_name ^ ": no errors") 0
        s.Tenant.snap_errors)
    snaps;
  Alcotest.(check int) "one miss (the leader)" 1
    (List.fold_left (fun a s -> a + s.Tenant.snap_misses) 0 snaps);
  Alcotest.(check int) "K-1 hits (the followers)" (k - 1)
    (List.fold_left (fun a s -> a + s.Tenant.snap_hits) 0 snaps);
  (* every tenant owns a shard copy — a later cold process for any of
     them hits disk without re-simulating *)
  for i = 1 to k do
    let tenant = Printf.sprintf "flight%d" i in
    Alcotest.(check bool)
      (tenant ^ " has its own shard entry")
      true
      (Sys.file_exists
         (Cache.path ~tenant cfg ~workload:"ATAX"
            ~scheme:(Scheme.label Scheme.Baseline) ~seed:Runner.seed))
  done

(* ------------------------------------------------------------------ *)
(* Per-tenant quotas                                                   *)
(* ------------------------------------------------------------------ *)

(* with [tenant_quota = 2] and a global cap of 8: the noisy tenant's
   third concurrent request is refused deterministically while a second
   tenant still gets in — and the refusal lands in [quota_refusals], not
   [overloaded] *)
let test_tenant_quota_refusal () =
  Tenant.reset ();
  let gate = Atomic.make true in
  let handler (_ : Protocol.request) : Server.outcome =
    while Atomic.get gate do
      Unix.sleepf 0.001
    done;
    Ok (Json.Null, false)
  in
  let srv =
    Server.create ~handler ~cfg:small_cfg ~jobs:4 ~queue_cap:8 ~tenant_quota:2
      ()
  in
  let respond, all = collector () in
  let d1 = Server.post srv (stats_req ~tenant:"noisy" "n1") ~respond in
  let d2 = Server.post srv (stats_req ~tenant:"noisy" "n2") ~respond in
  let d3 = Server.post srv (stats_req ~tenant:"noisy" "n3") ~respond in
  let d4 = Server.post srv (stats_req ~tenant:"quiet" "q1") ~respond in
  Alcotest.(check bool) "noisy #1 admitted" true (d1 = `Dispatched);
  Alcotest.(check bool) "noisy #2 admitted" true (d2 = `Dispatched);
  Alcotest.(check bool) "noisy #3 refused at quota" true (d3 = `Rejected);
  Alcotest.(check bool) "quiet unaffected" true (d4 = `Dispatched);
  Alcotest.(check int) "noisy holds its quota" 2
    (Server.tenant_in_flight srv "noisy");
  (* same wire envelope as a global-cap refusal: one client retry path *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match List.find_opt (fun r -> r.Protocol.resp_id = "n3") (all ()) with
  | Some { Protocol.result = Error (Protocol.Overloaded, msg); _ } ->
    Alcotest.(check bool) "refusal names the quota" true (contains msg "quota")
  | Some _ -> Alcotest.fail "quota refusal must use the overloaded envelope"
  | None -> Alcotest.fail "quota refusal must respond synchronously");
  Atomic.set gate false;
  Server.shutdown srv;
  Alcotest.(check int) "every request answered" 4 (List.length (all ()));
  (* slots released and the table cleaned on completion *)
  Alcotest.(check int) "noisy slots released" 0
    (Server.tenant_in_flight srv "noisy");
  let noisy = Tenant.snapshot (Tenant.find_or_create "noisy") in
  let quiet = Tenant.snapshot (Tenant.find_or_create "quiet") in
  Alcotest.(check int) "noisy requests" 3 noisy.Tenant.snap_requests;
  Alcotest.(check int) "noisy errors" 1 noisy.Tenant.snap_errors;
  Alcotest.(check int) "ledgered as quota refusal" 1
    noisy.Tenant.snap_quota_refusals;
  Alcotest.(check int) "not as global overload" 0 noisy.Tenant.snap_overloaded;
  Alcotest.(check int) "quiet clean" 0 quiet.Tenant.snap_errors

(* ------------------------------------------------------------------ *)
(* serve_fd regression: per-connection drain                           *)
(* ------------------------------------------------------------------ *)

(* one connection's EOF must not block on another connection's backlog:
   connection A holds a gated request in flight; connection B sends one
   fast request and EOF, and its serve_fd must return while A's work is
   still pending.  (The old global [drain t] deadlocked here.) *)
let test_serve_fd_per_connection_drain () =
  Tenant.reset ();
  let gate = Atomic.make true in
  let handler (req : Protocol.request) : Server.outcome =
    (match req.Protocol.kind with
    | Protocol.Analyze _ ->
      while Atomic.get gate do
        Unix.sleepf 0.001
      done
    | _ -> ());
    Ok (Json.Null, false)
  in
  let srv = Server.create ~handler ~cfg:small_cfg ~jobs:2 ~queue_cap:4 () in
  let a_in_r, a_in_w = Unix.pipe () in
  let a_out_r, a_out_w = Unix.pipe () in
  let b_in_r, b_in_w = Unix.pipe () in
  let b_out_r, b_out_w = Unix.pipe () in
  let ta =
    Thread.create
      (fun () ->
        Server.serve_fd srv ~in_fd:a_in_r ~out_fd:a_out_w
          ~stop:(fun () -> false))
      ()
  in
  let line r = Protocol.request_to_line r ^ "\n" in
  let send fd s =
    let b = Bytes.of_string s in
    ignore (Unix.write fd b 0 (Bytes.length b))
  in
  send a_in_w
    (line
       {
         Protocol.id = "slow";
         tenant = "a";
         trace_id = None;
         kind = Protocol.Analyze "x";
       });
  (* A's request is provably admitted before B shows up *)
  let rec wait_inflight n =
    if n = 0 then Alcotest.fail "A's request never got admitted"
    else if Server.in_flight srv < 1 then (
      Unix.sleepf 0.01;
      wait_inflight (n - 1))
  in
  wait_inflight 500;
  send b_in_w
    (line
       {
         Protocol.id = "fast";
         tenant = "b";
         trace_id = None;
         kind = Protocol.Stats;
       });
  Unix.close b_in_w;
  let b_done = Atomic.make false in
  let tb =
    Thread.create
      (fun () ->
        Server.serve_fd srv ~in_fd:b_in_r ~out_fd:b_out_w
          ~stop:(fun () -> false);
        Atomic.set b_done true)
      ()
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Atomic.get b_done)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  Alcotest.(check bool) "B returned on EOF while A still busy" true
    (Atomic.get b_done);
  Alcotest.(check bool) "A's gated request is still in flight" true
    (Server.in_flight srv >= 1);
  (match read_line_deadline b_out_r ~seconds:5. with
  | Some l ->
    Alcotest.(check bool) "B got its response before returning" true
      (match Json.of_string l with
      | Ok j -> (
        match Protocol.response_of_json j with
        | Ok r -> r.Protocol.resp_id = "fast"
        | Error _ -> false)
      | Error _ -> false)
  | None -> Alcotest.fail "B's response missing");
  Atomic.set gate false;
  Unix.close a_in_w;
  Thread.join ta;
  Thread.join tb;
  Server.shutdown srv;
  List.iter Unix.close [ a_in_r; a_out_r; a_out_w; b_in_r; b_out_r; b_out_w ]

(* ------------------------------------------------------------------ *)
(* serve_socket regression: finished connections are reaped            *)
(* ------------------------------------------------------------------ *)

(* a long-lived daemon serving many short-lived clients must not
   accumulate one dead thread per connection ever accepted: after N
   sequential connect/request/close cycles, the tracked set drains back
   to zero as the accept loop turns.  (The old loop held every thread
   until shutdown.) *)
let test_serve_socket_reaps_connections () =
  Tenant.reset ();
  let handler (_ : Protocol.request) : Server.outcome = Ok (Json.Null, false) in
  let srv = Server.create ~handler ~cfg:small_cfg ~jobs:2 ~queue_cap:8 () in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "catt-serve-reap-%d.sock" (Unix.getpid ()))
  in
  let stop = Atomic.make false in
  let acceptor =
    Thread.create
      (fun () ->
        Server.serve_socket srv ~path ~stop:(fun () -> Atomic.get stop))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join acceptor;
      Server.shutdown srv;
      try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      let rec wait_sock n =
        if n = 0 then Alcotest.fail "socket never appeared"
        else if not (Sys.file_exists path) then (
          Unix.sleepf 0.01;
          wait_sock (n - 1))
      in
      wait_sock 500;
      let n = 8 in
      for i = 1 to n do
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        let line =
          Protocol.request_to_line
            {
              Protocol.id = Printf.sprintf "c%d" i;
              tenant = "reap";
              trace_id = None;
              kind = Protocol.Stats;
            }
          ^ "\n"
        in
        let b = Bytes.of_string line in
        ignore (Unix.write fd b 0 (Bytes.length b));
        (match read_line_deadline fd ~seconds:10. with
        | Some _ -> ()
        | None -> Alcotest.failf "no response on connection %d" i);
        Unix.close fd
      done;
      (* every connection thread finishes, and the accept loop's periodic
         reap (each 0.2s select turn) drops them from the tracked set *)
      let wait_zero name read =
        let deadline = Unix.gettimeofday () +. 10. in
        while read () > 0 && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.02
        done;
        Alcotest.(check int) name 0 (read ())
      in
      wait_zero "no live connections remain" (fun () ->
          Server.live_connections srv);
      wait_zero "finished connections reaped, not accumulated" (fun () ->
          Server.tracked_connections srv))

(* ------------------------------------------------------------------ *)
(* Pipelining: many requests, one write                                *)
(* ------------------------------------------------------------------ *)

(* a client that writes a whole burst of requests in ONE write: the
   cursor-based reader must tear every line out of the one buffer (the
   old reader re-materialized the buffer per line — O(n²) across the
   burst) and every request must be answered exactly once *)
let test_pipelined_burst_single_write () =
  Tenant.reset ();
  let handler (_ : Protocol.request) : Server.outcome = Ok (Json.Null, false) in
  let k = 100 in
  let srv = Server.create ~handler ~cfg:small_cfg ~jobs:2 ~queue_cap:k () in
  let in_r, in_w = Unix.pipe () in
  let out_r, out_w = Unix.pipe () in
  let payload =
    String.concat ""
      (List.init k (fun i ->
           Protocol.request_to_line
             {
               Protocol.id = Printf.sprintf "p%d" i;
               tenant = "burst";
               trace_id = None;
               kind = Protocol.Stats;
             }
           ^ "\n"))
  in
  (* the last request arrives with no trailing newline: EOF must still
     flush it as a line *)
  let payload =
    payload
    ^ Protocol.request_to_line
        {
          Protocol.id = "tail";
          tenant = "burst";
          trace_id = None;
          kind = Protocol.Stats;
        }
  in
  let b = Bytes.of_string payload in
  let written = Unix.write in_w b 0 (Bytes.length b) in
  Alcotest.(check int) "burst fits one write" (Bytes.length b) written;
  Unix.close in_w;
  Server.serve_fd srv ~in_fd:in_r ~out_fd:out_w ~stop:(fun () -> false);
  Server.shutdown srv;
  Unix.close out_w;
  let responses = read_lines out_r (k + 1) in
  Unix.close out_r;
  Unix.close in_r;
  Alcotest.(check int) "every request answered" (k + 1)
    (List.length responses);
  let ids =
    List.sort_uniq compare
      (List.map
         (fun l ->
           match Json.of_string l with
           | Ok j -> (
             match Protocol.response_of_json j with
             | Ok r -> r.Protocol.resp_id
             | Error msg -> Alcotest.failf "bad response %s: %s" l msg)
           | Error msg -> Alcotest.failf "unparseable line %s: %s" l msg)
         responses)
  in
  Alcotest.(check int) "ids distinct, none dropped or doubled" (k + 1)
    (List.length ids);
  Alcotest.(check bool) "unterminated tail answered" true
    (List.mem "tail" ids)

(* ------------------------------------------------------------------ *)
(* Live admin plane: the stats envelope                                *)
(* ------------------------------------------------------------------ *)

let test_stats_envelope () =
  Tenant.reset ();
  Obs.Metrics.reset ();
  let srv =
    Server.create ~cfg:small_cfg ~jobs:2 ~queue_cap:5 ~tenant_quota:3 ()
  in
  let respond, all = collector () in
  (* first request seeds the tenant ledger and its latency histogram;
     the second snapshots with that history visible *)
  ignore (Server.post srv (stats_req ~tenant:"envel" "warm") ~respond);
  Server.drain srv;
  ignore (Server.post srv (stats_req ~tenant:"envel" "snap") ~respond);
  Server.shutdown srv;
  let payload =
    match List.find_opt (fun r -> r.Protocol.resp_id = "snap") (all ()) with
    | Some { Protocol.result = Ok p; _ } -> p
    | _ -> Alcotest.fail "stats response missing or failed"
  in
  Alcotest.(check int) "stats_version" Server.stats_version
    (Json.to_int (Json.member "stats_version" payload));
  let tenants = Json.to_list (Json.member "tenants" payload) in
  let envel =
    match
      List.find_opt
        (fun t -> Json.to_str (Json.member "tenant" t) = "envel")
        tenants
    with
    | Some t -> t
    | None -> Alcotest.fail "tenant envel missing from stats"
  in
  let lat = Json.member "latency_us" envel in
  Alcotest.(check bool) "latency histogram counted the warm request" true
    (Json.to_int (Json.member "count" lat) >= 1);
  Alcotest.(check bool) "sparse buckets exported" true
    (match Json.member "buckets" lat with
    | Json.List (_ :: _) -> true
    | _ -> false);
  Alcotest.(check bool) "p99 >= p50" true
    (Json.to_int (Json.member "p99" lat) >= Json.to_int (Json.member "p50" lat));
  (* the whole process metrics registry rides in *)
  let metrics = Json.member "metrics" payload in
  Alcotest.(check int) "serve.requests counted" 2
    (Json.to_int (Json.member "serve.requests" metrics));
  (match Json.member_opt "serve.latency_us.envel" metrics with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "tenant histogram missing from the metrics snapshot");
  (match Json.member_opt "serve.queue_depth" metrics with
  | Some (Json.Float _) -> ()
  | _ -> Alcotest.fail "queue depth gauge missing");
  (match Json.member_opt "serve.live_connections" metrics with
  | Some (Json.Float 0.) -> ()
  | _ -> Alcotest.fail "live connections gauge missing (or nonzero)");
  (* the live server block: present because a running server answered *)
  let server = Json.member "server" payload in
  Alcotest.(check int) "queue_cap" 5
    (Json.to_int (Json.member "queue_cap" server));
  Alcotest.(check int) "tenant_quota" 3
    (Json.to_int (Json.member "tenant_quota" server));
  Alcotest.(check int) "jobs" 2 (Json.to_int (Json.member "jobs" server));
  Alcotest.(check int) "queue_depth sees the stats request itself" 1
    (Json.to_int (Json.member "queue_depth" server));
  Alcotest.(check int) "no flights in progress" 0
    (Json.to_int (Json.member "flights_in_progress" server));
  Alcotest.(check int) "no socket connections" 0
    (Json.to_int (Json.member "live_connections" server));
  (* the bare default handler (no live server) omits the server block *)
  match Server.default_handler small_cfg (stats_req ~tenant:"envel" "bare") with
  | Ok (p, _) ->
    Alcotest.(check bool) "no server block without a live server" true
      (Json.member_opt "server" p = None)
  | Error _ -> Alcotest.fail "bare default handler failed"

(* ------------------------------------------------------------------ *)
(* Tracing: request spans over the serve path, Perfetto export         *)
(* ------------------------------------------------------------------ *)

let with_tracing f =
  let was = !Obs.Span.enabled in
  Obs.Span.reset ();
  Obs.Span.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.enabled := was;
      Obs.Span.reset ())
    f

let str_attr (s : Obs.Span.t) key =
  match List.assoc_opt key (Obs.Span.attrs s) with
  | Some (Obs.Span.Str v) -> Some v
  | _ -> None

let spans_named name spans =
  List.filter (fun (s : Obs.Span.t) -> s.Obs.Span.name = name) spans

(* a pipelined burst of simulate requests, each with a client-supplied
   trace id, served over serve_fd with tracing on: every layer's span —
   serve.request, pool.task, runner.run — carries the id, and the whole
   set exports as one well-formed Perfetto file with per-track monotone
   timestamps *)
let test_serve_trace_export () =
  with_temp_cache "trace" @@ fun () ->
  Tenant.reset ();
  Runner.clear_memo ();
  with_tracing @@ fun () ->
  let cfg = Gpusim.Config.scaled ~num_sms:2 ~onchip_bytes:(16 * 1024) () in
  let srv = Server.create ~cfg ~jobs:2 ~queue_cap:16 () in
  let k = 6 in
  let payload =
    String.concat ""
      (List.init k (fun i ->
           Protocol.request_to_line
             {
               Protocol.id = Printf.sprintf "t%d" i;
               tenant = "traced";
               trace_id = Some (Printf.sprintf "cli-%d" i);
               kind =
                 Protocol.Simulate
                   {
                     Protocol.workload = "ATAX";
                     scheme = Scheme.Baseline;
                     co_resident = None;
                   };
             }
           ^ "\n"))
  in
  let in_r, in_w = Unix.pipe () in
  let out_r, out_w = Unix.pipe () in
  let b = Bytes.of_string payload in
  ignore (Unix.write in_w b 0 (Bytes.length b));
  Unix.close in_w;
  Server.serve_fd srv ~in_fd:in_r ~out_fd:out_w ~stop:(fun () -> false);
  Server.shutdown srv;
  Unix.close out_w;
  let responses = read_lines out_r k in
  Unix.close out_r;
  Unix.close in_r;
  Alcotest.(check int) "every request answered" k (List.length responses);
  let spans = Obs.Span.finished () in
  let expected_ids = List.init k (Printf.sprintf "cli-%d") in
  let reqs = spans_named "serve.request" spans in
  Alcotest.(check int) "one request span per request" k (List.length reqs);
  Alcotest.(check (list string))
    "client trace ids propagate to the request spans" expected_ids
    (List.sort compare (List.filter_map (fun s -> str_attr s "trace_id") reqs));
  Alcotest.(check (list string)) "runner spans correlated by trace id"
    expected_ids
    (List.sort compare
       (List.filter_map
          (fun s -> str_attr s "trace_id")
          (spans_named "runner.run" spans)));
  Alcotest.(check bool) "pool tasks carry the trace id" true
    (List.exists
       (fun s -> str_attr s "trace_id" <> None)
       (spans_named "pool.task" spans));
  (* one cell behind k requests: exactly one simulation (memo/flight) *)
  Alcotest.(check int) "one simulation span" 1
    (List.length (spans_named "runner.simulate" spans));
  let events =
    Obs.Trace_event.process_name ~pid:1 "catt_d host"
    :: Obs.Trace_event.of_spans ~pid:1 spans
  in
  let rendered = Obs.Trace_event.to_string events in
  match Json.of_string rendered with
  | Error msg -> Alcotest.failf "trace JSON does not parse: %s" msg
  | Ok json ->
    let evs = Json.to_list (Json.member "traceEvents" json) in
    Alcotest.(check int) "every span rendered" (List.length events)
      (List.length evs);
    let last_ts = Hashtbl.create 8 in
    let traced = ref 0 in
    List.iter
      (fun e ->
        if Json.to_str (Json.member "ph" e) = "X" then begin
          let key =
            ( Json.to_int (Json.member "pid" e),
              Json.to_int (Json.member "tid" e) )
          in
          let ts = Json.to_int (Json.member "ts" e) in
          (match Hashtbl.find_opt last_ts key with
          | Some prev ->
            Alcotest.(check bool) "ts monotone per track" true (prev <= ts)
          | None -> ());
          Hashtbl.replace last_ts key ts;
          match Json.member_opt "args" e with
          | Some args -> (
            match Json.member_opt "trace_id" args with
            | Some (Json.String _) -> incr traced
            | _ -> ())
          | None -> ()
        end)
      evs;
    (* at least the request and runner layers stamp every slice *)
    Alcotest.(check bool) "slices correlated by trace_id args" true
      (!traced >= 2 * k)

(* K gated identical requests with distinct client trace ids: the flight
   leader deposits its id on the single-flight entry, so each joiner's
   runner.run span records [leader_trace_id] — the linkage that lets a
   trace viewer answer "whose simulation did this request ride?" *)
let test_coalesced_trace_linkage () =
  with_temp_cache "lnk" @@ fun () ->
  Tenant.reset ();
  Runner.clear_memo ();
  with_tracing @@ fun () ->
  let cfg = Gpusim.Config.scaled ~num_sms:2 ~onchip_bytes:(16 * 1024) () in
  let k = 4 in
  let inside = Atomic.make 0 in
  let handler req : Server.outcome =
    Atomic.incr inside;
    while Atomic.get inside < k do
      Unix.sleepf 0.001
    done;
    Server.default_handler cfg req
  in
  let srv = Server.create ~handler ~cfg ~jobs:k ~queue_cap:k () in
  let respond, all = collector () in
  for i = 1 to k do
    let d =
      Server.post srv
        {
          Protocol.id = Printf.sprintf "l%d" i;
          tenant = Printf.sprintf "lnk%d" i;
          trace_id = Some (Printf.sprintf "lnk-%d" i);
          kind =
            Protocol.Simulate
              {
                Protocol.workload = "ATAX";
                scheme = Scheme.Baseline;
                co_resident = None;
              };
        }
        ~respond
    in
    Alcotest.(check bool) "admitted" true (d = `Dispatched)
  done;
  Server.shutdown srv;
  Alcotest.(check int) "K responses" k (List.length (all ()));
  let runs = spans_named "runner.run" (Obs.Span.finished ()) in
  Alcotest.(check int) "K runner.run spans" k (List.length runs);
  let joiners, leaders =
    List.partition
      (fun s -> List.mem_assoc "leader_trace_id" (Obs.Span.attrs s))
      runs
  in
  Alcotest.(check int) "exactly one flight leader" 1 (List.length leaders);
  let leader_id =
    match str_attr (List.hd leaders) "trace_id" with
    | Some tid -> tid
    | None -> Alcotest.fail "leader span lost its trace id"
  in
  Alcotest.(check int) "K-1 joiners" (k - 1) (List.length joiners);
  List.iter
    (fun s ->
      (match str_attr s "leader_trace_id" with
      | Some l ->
        Alcotest.(check string) "joiner linked to the leader's trace" leader_id
          l
      | None -> Alcotest.fail "joiner missing leader_trace_id");
      match str_attr s "trace_id" with
      | Some own ->
        Alcotest.(check bool) "joiner keeps its own trace id" true
          (own <> leader_id)
      | None -> Alcotest.fail "joiner span lost its trace id")
    joiners

let tests =
  [
    ( "serve.protocol",
      [
        Alcotest.test_case "scheme labels round-trip" `Quick
          test_scheme_roundtrip;
        Alcotest.test_case "requests round-trip (all kinds)" `Quick
          test_request_roundtrip_all_kinds;
        QCheck_alcotest.to_alcotest prop_request_roundtrip;
        Alcotest.test_case "responses round-trip" `Quick
          test_response_roundtrip;
        Alcotest.test_case "unknown fields tolerated" `Quick
          test_unknown_fields_tolerated;
        Alcotest.test_case "malformed requests refused" `Quick
          test_bad_requests_refused;
      ] );
    ( "serve.server",
      [
        Alcotest.test_case "admission refuses at cap" `Quick
          test_admission_refuses_at_cap;
        Alcotest.test_case "tenant shards are bit-equal" `Quick
          test_tenant_shards_bit_equal;
        Alcotest.test_case "tenant shard component is traversal-safe" `Quick
          test_tenant_shard_component_safe;
        Alcotest.test_case "hit/miss attribution" `Quick
          test_simulate_hit_miss_attribution;
        Alcotest.test_case "latency excludes refusals" `Quick
          test_latency_excludes_refusals;
        Alcotest.test_case "latency histogram is bounded" `Quick
          test_latency_histogram_bounded;
        Alcotest.test_case "200-request mixed soak" `Slow test_soak_mixed_200;
        Alcotest.test_case "json-lines over a pipe" `Quick test_serve_fd_pipe;
        Alcotest.test_case "two socket clients served concurrently" `Quick
          test_socket_two_clients;
        Alcotest.test_case "concurrent identical requests coalesce" `Quick
          test_coalesced_identical_requests;
        Alcotest.test_case "per-tenant quota refuses deterministically" `Quick
          test_tenant_quota_refusal;
        Alcotest.test_case "EOF drains per connection, not globally" `Quick
          test_serve_fd_per_connection_drain;
        Alcotest.test_case "finished socket connections are reaped" `Quick
          test_serve_socket_reaps_connections;
        Alcotest.test_case "pipelined burst in a single write" `Quick
          test_pipelined_burst_single_write;
        Alcotest.test_case "stats envelope carries the live admin plane"
          `Quick test_stats_envelope;
        Alcotest.test_case "request spans export to Perfetto" `Quick
          test_serve_trace_export;
        Alcotest.test_case "coalesced requests link joiner to leader traces"
          `Quick test_coalesced_trace_linkage;
      ] );
    ( "serve.co_resident",
      [
        Alcotest.test_case "counters attributed per kernel" `Quick
          test_co_resident_attribution;
        Alcotest.test_case "pair runs are deterministic" `Quick
          test_co_resident_deterministic;
        Alcotest.test_case "unequal launch counts keep a disjoint tail" `Quick
          test_co_resident_unequal_tail;
        Alcotest.test_case "runtime schemes refused" `Quick
          test_co_resident_refuses_runtime_schemes;
        Alcotest.test_case "wire request end-to-end" `Quick
          test_co_resident_request;
        Alcotest.test_case "pair cache round-trips (incl. swapped order)"
          `Quick test_co_resident_cache_roundtrip;
      ] );
  ]
