(** The [@obs-serve] alias (pulled into [dune runtest]): the telemetry
    plane's disabled path must be free on the serve loop.

    Runs {!Serve.Bench.obs_overhead} — two interleaved batches of the
    pipelined serve stage with span tracing and structured logging
    disabled (an A/A measurement whose delta bounds the disabled-path
    cost plus noise) against one batch with both enabled — and fails
    when the A/A batches land more than 5% apart.  Noise-tolerant: a
    busy CI scheduler can blow one measurement, so the gate re-measures
    up to 3 times and passes on the first clean attempt. *)

let () =
  let module B = Experiments.Bench_core in
  let attempts = 3 in
  let rec gate attempt =
    let o = Serve.Bench.obs_overhead () in
    Printf.printf
      "obs-serve A/A (attempt %d/%d): disabled %.2f ms (%.1f%% apart), \
       enabled %.2f ms (+%.1f%%)\n\
       %!"
      attempt attempts o.B.disabled_ms o.B.disabled_ab_pct o.B.enabled_ms
      o.B.enabled_pct;
    if o.B.disabled_within_5pct then o
    else if attempt < attempts then gate (attempt + 1)
    else begin
      Printf.eprintf
        "obs-serve: disabled-path A/A overhead above 5%% on every attempt \
         (last: %.1f%%)\n"
        o.B.disabled_ab_pct;
      exit 1
    end
  in
  let o = gate 1 in
  (* the gate must leave no telemetry armed behind it *)
  if !Obs.Span.enabled then begin
    prerr_endline "obs-serve: left span tracing enabled";
    exit 1
  end;
  if !Obs.Log.enabled then begin
    prerr_endline "obs-serve: left the structured log enabled";
    exit 1
  end;
  Printf.printf "obs-serve: OK (disabled A/A %.1f%% apart)\n" o.B.disabled_ab_pct
