(** Driver for the profiler test suite (the [@profile] alias, pulled into
    [dune runtest]): unit tests, simulator-driven checks, golden-profile
    regression tests and the differential purity harness.

    With [GOLDEN_REGEN=<absolute dir>] set, rewrites the golden snapshots
    into that directory instead of running the suite. *)

let () =
  match Sys.getenv_opt "GOLDEN_REGEN" with
  | Some dir ->
    Test_profile.regen_goldens dir;
    Test_differential.regen_golden_grid dir
  | None ->
    Alcotest.run "catt-profile" (Test_profile.tests @ Test_differential.tests)
