(** Tests for the experiment harness: runner memoization, the BFTT search,
    sweep candidate generation, and the report plumbing. *)

let cfg = Gpusim.Config.scaled ~num_sms:4 ~onchip_bytes:(32 * 1024) ()

let fast_workload = Workloads.Registry.find "BT"  (* smallest runtime *)

let test_memoization_returns_same () =
  let a = Experiments.Runner.run cfg fast_workload Experiments.Runner.Baseline in
  let b = Experiments.Runner.run cfg fast_workload Experiments.Runner.Baseline in
  Alcotest.(check bool) "physically equal (memoized)" true (a == b)

let test_memo_distinguishes_configs () =
  let small = Gpusim.Config.scaled ~num_sms:4 ~onchip_bytes:(16 * 1024) () in
  let a = Experiments.Runner.run cfg fast_workload Experiments.Runner.Baseline in
  let b = Experiments.Runner.run small fast_workload Experiments.Runner.Baseline in
  Alcotest.(check bool) "different cache entries" true (a != b)

let test_candidates_ordering () =
  let w = Workloads.Registry.find "ATAX" in
  let cands = Experiments.Runner.candidates cfg w in
  (match cands with
  | (1, 0) :: _ -> ()
  | _ -> Alcotest.fail "first candidate must be the baseline");
  (* warp factors strictly increase before TB factors start *)
  let rec check_phases seen_tb = function
    | [] -> ()
    | (_, m) :: rest ->
      if m > 0 then check_phases true rest
      else if seen_tb then Alcotest.fail "warp candidate after TB candidates"
      else check_phases false rest
  in
  check_phases false cands

let test_bftt_is_minimum_of_sweep () =
  let w = Workloads.Registry.find "BT" in
  let sweep = Experiments.Runner.sweep cfg w in
  let _, best = Experiments.Runner.bftt cfg w in
  List.iter
    (fun (_, (r : Experiments.Runner.app_run)) ->
      Alcotest.(check bool) "bftt <= candidate" true
        (best.Experiments.Runner.total_cycles <= r.Experiments.Runner.total_cycles))
    sweep

let test_scheme_labels () =
  Alcotest.(check string) "baseline" "baseline"
    (Experiments.Runner.scheme_label Experiments.Runner.Baseline);
  Alcotest.(check string) "fixed" "fixed(N=4,M=1)"
    (Experiments.Runner.scheme_label (Experiments.Runner.Fixed (4, 1)))

(* Two distinct schemes must never alias one persistent-cache entry.
   [Cache.key] embeds the scheme label, so this holds iff labels are
   pairwise distinct across the whole [Scheme.samples] corpus — the same
   corpus the round-trip property iterates, so a new constructor lands
   here automatically (via the [sample_of] exhaustiveness guard). *)
let test_cache_keys_distinct () =
  let keys =
    List.map
      (fun s ->
        ( Experiments.Scheme.label s,
          Experiments.Cache.key cfg ~workload:"ATAX"
            ~scheme:(Experiments.Scheme.label s) ~seed:42 ))
      Experiments.Scheme.samples
  in
  List.iteri
    (fun i (li, ki) ->
      List.iteri
        (fun j (lj, kj) ->
          if i < j && ki = kj then
            Alcotest.failf "schemes %s and %s share cache key %s" li lj ki)
        keys)
    keys

let test_report_registry () =
  Alcotest.(check int) "fourteen artifacts" 14 (List.length Experiments.Report.artifacts);
  List.iter
    (fun id ->
      match Experiments.Report.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "artifact %s not found" id)
    [ "table3"; "fig2"; "fig3"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10";
      "overhead"; "sanitize-all"; "profile-all" ]

let test_configs () =
  Alcotest.(check int) "max" (32 * 1024)
    (Experiments.Configs.max_l1d ()).Gpusim.Config.onchip_bytes;
  Alcotest.(check int) "small" (16 * 1024)
    (Experiments.Configs.small_l1d ()).Gpusim.Config.onchip_bytes

let test_trace_runs_are_uncached () =
  let traced () =
    match
      Experiments.Runner.exec
        (Experiments.Runner.Request.make ~trace:true cfg fast_workload
           Experiments.Runner.Baseline)
    with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  let a = traced () in
  let b = traced () in
  Alcotest.(check bool) "not memoized" true (a != b);
  (* trace data must be present *)
  Alcotest.(check bool) "has traces" true
    (List.for_all
       (fun (ks : Experiments.Runner.kernel_stats) -> ks.Experiments.Runner.trace <> None)
       a.Experiments.Runner.kernels)

let test_overhead_measures_all () =
  let entry = Experiments.Overhead.measure cfg (Workloads.Registry.find "ATAX") in
  Alcotest.(check int) "two kernels" 2 entry.Experiments.Overhead.kernels;
  Alcotest.(check bool) "fast" true (entry.Experiments.Overhead.seconds < 1.)

let tests =
  [
    ( "experiments.runner",
      [
        Alcotest.test_case "memoization" `Quick test_memoization_returns_same;
        Alcotest.test_case "memo per config" `Quick test_memo_distinguishes_configs;
        Alcotest.test_case "candidate ordering" `Quick test_candidates_ordering;
        Alcotest.test_case "BFTT minimizes" `Quick test_bftt_is_minimum_of_sweep;
        Alcotest.test_case "scheme labels" `Quick test_scheme_labels;
        Alcotest.test_case "trace runs uncached" `Quick test_trace_runs_are_uncached;
        Alcotest.test_case "cache keys distinct per scheme" `Quick
          test_cache_keys_distinct;
      ] );
    ( "experiments.report",
      [
        Alcotest.test_case "artifact registry" `Quick test_report_registry;
        Alcotest.test_case "configs" `Quick test_configs;
        Alcotest.test_case "overhead measurement" `Quick test_overhead_measures_all;
      ] );
  ]
