(** Observability test suite (the [@obs] alias, pulled into
    [dune runtest]): span nesting/ordering invariants, Perfetto export
    well-formedness, metrics and manifest round-trips, pool task
    attribution, timeline coalescing, cache counters, and the golden
    [explain] provenance snapshot for ATAX.

    Golden snapshots live in [test/golden_profiles/*.json]; regenerate
    after an intentional format change with

      dune build test/obs_check.exe && \
      GOLDEN_REGEN=$PWD/test/golden_profiles _build/default/test/obs_check.exe *)

module Json = Gpu_util.Json
module Span = Obs.Span
module Metrics = Obs.Metrics
module Trace_event = Obs.Trace_event
module Timeline = Profile.Timeline

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* every span test restores the disabled default and drains the sink,
   so suites can run in any order *)
let with_tracing f =
  let was = !Span.enabled in
  Span.enabled := true;
  Span.reset ();
  Fun.protect
    ~finally:(fun () ->
      Span.enabled := was;
      Span.reset ())
    f

let by_name spans name =
  match List.find_opt (fun (s : Span.t) -> s.Span.name = name) spans with
  | Some s -> s
  | None -> Alcotest.failf "no finished span named %s" name

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_disabled () =
  let was = !Span.enabled in
  Span.enabled := false;
  Fun.protect
    ~finally:(fun () -> Span.enabled := was)
    (fun () ->
      Span.reset ();
      check "enter is a no-op while off" true (Span.enter "nope" = None);
      check "with_span passes None while off" true
        (Span.with_span "nope" (fun s -> s = None));
      check_int "sink untouched" 0 (List.length (Span.finished ())))

let test_span_nesting () =
  with_tracing (fun () ->
      Span.with_span "outer" (fun _ ->
          Span.with_span "inner" (fun _ -> ());
          Span.with_span "inner2" (fun _ -> ()));
      Span.with_span "sibling" (fun _ -> ());
      let spans = Span.finished () in
      check_int "all four collected" 4 (List.length spans);
      List.iter
        (fun (s : Span.t) ->
          check ("closed: " ^ s.Span.name) true (s.Span.end_us >= s.Span.start_us))
        spans;
      (* oldest first on start time *)
      ignore
        (List.fold_left
           (fun prev (s : Span.t) ->
             check "ordered oldest first" true (prev <= s.Span.start_us);
             s.Span.start_us)
           min_int spans);
      let outer = by_name spans "outer"
      and inner = by_name spans "inner"
      and inner2 = by_name spans "inner2"
      and sibling = by_name spans "sibling" in
      check "outer is a root" true (outer.Span.parent = None);
      check "sibling is a root" true (sibling.Span.parent = None);
      check "inner nests under outer" true
        (inner.Span.parent = Some outer.Span.id);
      check "inner2 nests under outer" true
        (inner2.Span.parent = Some outer.Span.id);
      check "inner contained in time" true
        (outer.Span.start_us <= inner.Span.start_us
        && inner.Span.end_us <= outer.Span.end_us);
      check "sibling does not nest" true
        (sibling.Span.start_us >= outer.Span.end_us))

let test_span_attrs () =
  with_tracing (fun () ->
      match Span.enter "s" ~attrs:[ ("a", Span.Int 1); ("b", Span.Str "x") ] with
      | None -> Alcotest.fail "enter returned None while enabled"
      | Some s ->
        Span.add_attr s "c" (Span.Bool true);
        Span.add_attr s "d" (Span.Float 2.5);
        Span.finish s;
        Span.finish s (* idempotent *);
        check_int "double finish collects once" 1
          (List.length (Span.finished ()));
        Alcotest.(check (list string))
          "attrs in insertion order" [ "a"; "b"; "c"; "d" ]
          (List.map fst (Span.attrs s)))

let test_span_error () =
  with_tracing (fun () ->
      (match Span.with_span "boom" (fun _ -> failwith "kaput") with
      | () -> Alcotest.fail "exception did not propagate"
      | exception Failure m -> check_string "original exception" "kaput" m);
      match Span.finished () with
      | [ s ] -> (
        check "errored span still closed" true (s.Span.end_us >= s.Span.start_us);
        match List.assoc_opt "error" (Span.attrs s) with
        | Some (Span.Str msg) ->
          check "error attr names the exception" true (contains msg "kaput")
        | _ -> Alcotest.fail "no error attribute on the failed span")
      | l -> Alcotest.failf "expected 1 finished span, got %d" (List.length l))

let test_clock_monotone () =
  let prev = ref (Obs.Clock.now_us ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now_us () in
    if t < !prev then Alcotest.failf "clock stepped back: %d -> %d" !prev t;
    prev := t
  done

(* ------------------------------------------------------------------ *)
(* Perfetto export                                                     *)
(* ------------------------------------------------------------------ *)

let test_perfetto_well_formed () =
  with_tracing (fun () ->
      Span.with_span "a" (fun _ -> Span.with_span "b" (fun _ -> ()));
      Span.with_span "c"
        ~attrs:[ ("k", Span.Str "quotes \" and\nnewlines") ]
        (fun _ -> ());
      let tl = Timeline.create () in
      Timeline.record tl ~sm:0 ~kind:Profile.Stall.Issue ~start:0 ~stop:3;
      Timeline.record tl ~sm:1 ~kind:Profile.Stall.Mem_wait ~start:2 ~stop:9;
      Timeline.record tl ~sm:0 ~kind:Profile.Stall.Barrier_wait ~start:5 ~stop:6;
      let events =
        (Trace_event.process_name ~pid:1 "host"
        :: Trace_event.thread_name ~pid:2 ~tid:0 "sm 0"
        :: Trace_event.of_spans ~pid:1 (Span.finished ()))
        @ Timeline.to_events tl ~pid:2
      in
      let rendered = Trace_event.to_string events in
      match Json.of_string rendered with
      | Error msg -> Alcotest.failf "trace JSON does not parse: %s" msg
      | Ok json ->
        let evs = Json.to_list (Json.member "traceEvents" json) in
        check_int "every event rendered" (List.length events) (List.length evs);
        let last_ts = Hashtbl.create 8 in
        List.iter
          (fun e ->
            ignore (Json.to_str (Json.member "name" e));
            let ph = Json.to_str (Json.member "ph" e) in
            check "ph is M or X" true (ph = "M" || ph = "X");
            let pid = Json.to_int (Json.member "pid" e) in
            let tid = Json.to_int (Json.member "tid" e) in
            if ph = "X" then begin
              let ts = Json.to_int (Json.member "ts" e) in
              check "ts >= 0" true (ts >= 0);
              check "dur >= 0" true (Json.to_int (Json.member "dur" e) >= 0);
              (match Hashtbl.find_opt last_ts (pid, tid) with
              | Some prev -> check "ts monotone per (pid,tid) track" true (prev <= ts)
              | None -> ());
              Hashtbl.replace last_ts (pid, tid) ts
            end)
          evs)

(* ------------------------------------------------------------------ *)
(* Metrics + manifest                                                  *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  let c = Metrics.counter "test.obs.counter" in
  let before = Metrics.value c in
  Metrics.incr c;
  Metrics.add c 41;
  check_int "incr + add" (before + 42) (Metrics.value c);
  check_int "find-or-register returns the same counter" (before + 42)
    (Metrics.value (Metrics.counter "test.obs.counter"));
  Metrics.set_gauge "test.obs.gauge" 2.5;
  Metrics.set_gauge "test.obs.gauge" 1.5;
  Metrics.max_gauge "test.obs.peak" 3.;
  Metrics.max_gauge "test.obs.peak" 2.;
  let snap = Metrics.snapshot () in
  ignore
    (List.fold_left
       (fun prev (name, _) ->
         check "snapshot sorted by name" true (prev <= name);
         name)
       "" snap);
  check "set_gauge: last write wins" true
    (List.assoc_opt "test.obs.gauge" snap = Some (Metrics.Gauge 1.5));
  check "max_gauge keeps the maximum" true
    (List.assoc_opt "test.obs.peak" snap = Some (Metrics.Gauge 3.));
  (match List.assoc_opt "process.uptime_us" snap with
  | Some (Metrics.Count us) -> check "uptime positive" true (us > 0)
  | _ -> Alcotest.fail "snapshot missing process.uptime_us");
  (* the two PR-10 value kinds: registered histograms and live gauge
     callbacks, both sampled at snapshot time *)
  let h = Metrics.histogram "test.obs.hist" in
  Obs.Histogram.record h 100;
  Metrics.gauge_fn "test.obs.live" (fun () -> 7.5);
  let snap = Metrics.snapshot () in
  check "gauge_fn sampled at snapshot time" true
    (List.assoc_opt "test.obs.live" snap = Some (Metrics.Gauge 7.5));
  (match List.assoc_opt "test.obs.hist" snap with
  | Some (Metrics.Hist s) ->
    check "histogram summary in snapshot" true (s.Obs.Histogram.s_count >= 1)
  | _ -> Alcotest.fail "snapshot missing the registered histogram");
  check "histogram handle is find-or-register" true
    (Metrics.histogram "test.obs.hist" == h)

let explain_cfg () = Gpusim.Config.scaled ~num_sms:2 ~onchip_bytes:(32 * 1024) ()

let test_manifest_roundtrip () =
  let m =
    Experiments.Manifest.make (explain_cfg ()) ~workload:"ATAX" ~scheme:"CATT"
      ~seed:7 ~wall_seconds:0.25
  in
  let rendered = Json.to_string (Experiments.Manifest.to_json m) in
  let reparsed =
    match Json.of_string rendered with
    | Ok j -> j
    | Error msg -> Alcotest.failf "manifest JSON does not parse: %s" msg
  in
  match Experiments.Manifest.of_json reparsed with
  | Error msg -> Alcotest.failf "manifest does not decode: %s" msg
  | Ok m' ->
    check_string "workload" m.Experiments.Manifest.workload
      m'.Experiments.Manifest.workload;
    check_string "scheme" m.Experiments.Manifest.scheme
      m'.Experiments.Manifest.scheme;
    check_int "seed" m.Experiments.Manifest.seed m'.Experiments.Manifest.seed;
    check_string "fingerprint" m.Experiments.Manifest.fingerprint
      m'.Experiments.Manifest.fingerprint;
    (* reserialization is byte-stable, so the metric floats survived *)
    check_string "round-trip is lossless" rendered
      (Json.to_string (Experiments.Manifest.to_json m'))

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Histogram = Obs.Histogram

let test_histogram_buckets () =
  List.iter
    (fun (v, lo, hi) ->
      let lo', hi' = Histogram.bounds (Histogram.bucket_of v) in
      check_int (Printf.sprintf "%d lower bound" v) lo lo';
      check_int (Printf.sprintf "%d upper bound" v) hi hi')
    [
      (0, 0, 0);
      (7, 7, 7);
      (8, 8, 8);
      (100, 96, 103);
      (200, 192, 207);
      (1_000_000, 983_040, 1_048_575);
    ];
  check_int "negative clamps to bucket 0" 0 (Histogram.bucket_of (-5))

let test_histogram_quantiles () =
  let h = Histogram.create () in
  check_int "empty quantile" 0 (Histogram.quantile h 50.);
  check "empty bounds" true (Histogram.quantile_bounds h 50. = None);
  check_int "empty max" 0 (Histogram.max_value h);
  for _ = 1 to 90 do
    Histogram.record h 100
  done;
  for _ = 1 to 10 do
    Histogram.record h 1_000_000
  done;
  check_int "count" 100 (Histogram.count h);
  let _, hi100 = Histogram.bounds (Histogram.bucket_of 100) in
  let _, hi1m = Histogram.bounds (Histogram.bucket_of 1_000_000) in
  check_int "p50 reports the low mode's bucket" hi100 (Histogram.quantile h 50.);
  check_int "p90 is still the low mode" hi100 (Histogram.quantile h 90.);
  check_int "p99 lands in the tail" hi1m (Histogram.quantile h 99.);
  check_int "max is the tail bucket's bound" hi1m (Histogram.max_value h);
  let s = Histogram.summary h in
  check_int "summary count" 100 s.Histogram.s_count;
  check_int "summary p99" hi1m s.Histogram.s_p99;
  Histogram.clear h;
  check_int "cleared" 0 (Histogram.count h)

let hist_of_list vs =
  let h = Histogram.create () in
  List.iter (Histogram.record h) vs;
  h

let sample = QCheck.(list (int_bound 2_000_000))

let prop_bucket_contains =
  QCheck.Test.make ~count:500
    ~name:"histogram: bucket contains its value, width <= 1/sub"
    QCheck.(int_bound 2_000_000_000)
    (fun v ->
      let lo, hi = Histogram.bounds (Histogram.bucket_of v) in
      lo <= v && v <= hi && hi - lo <= max 0 (lo / Histogram.sub))

let prop_merge =
  QCheck.Test.make ~count:200
    ~name:"histogram: merge is associative, commutative, count-preserving"
    (QCheck.triple sample sample sample)
    (fun (a, b, c) ->
      let ha = hist_of_list a
      and hb = hist_of_list b
      and hc = hist_of_list c in
      let ab = Histogram.merge ha hb in
      Histogram.export ab = Histogram.export (Histogram.merge hb ha)
      && Histogram.export (Histogram.merge ab hc)
         = Histogram.export (Histogram.merge ha (Histogram.merge hb hc))
      && Histogram.count ab = List.length a + List.length b)

let prop_quantile_bounds =
  QCheck.Test.make ~count:300
    ~name:"histogram: quantile bounds contain the exact nearest-rank value"
    QCheck.(
      pair (list_of_size Gen.(1 -- 300) (int_bound 5_000_000)) (int_bound 99))
    (fun (vs, p) ->
      let p = float_of_int (p + 1) in
      let h = hist_of_list vs in
      let sorted = Array.of_list vs in
      Array.sort compare sorted;
      let n = Array.length sorted in
      let rank =
        max 1 (min n (int_of_float (ceil (p /. 100. *. float_of_int n))))
      in
      let exact = sorted.(rank - 1) in
      match Histogram.quantile_bounds h p with
      | None -> false
      | Some (lo, hi) -> lo <= exact && exact <= hi)

let prop_export_json_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"histogram: export survives a JSON round-trip into import" sample
    (fun vs ->
      let h = hist_of_list vs in
      let json =
        Json.List
          (List.map
             (fun (b, c) -> Json.List [ Json.Int b; Json.Int c ])
             (Histogram.export h))
      in
      match Json.of_string (Json.to_string json) with
      | Error _ -> false
      | Ok j ->
        let pairs =
          List.map
            (fun e ->
              match Json.to_list e with
              | [ b; c ] -> (Json.to_int b, Json.to_int c)
              | _ -> (-1, -1))
            (Json.to_list j)
        in
        Histogram.export (Histogram.import pairs) = Histogram.export h)

(* ------------------------------------------------------------------ *)
(* Structured log                                                      *)
(* ------------------------------------------------------------------ *)

let test_log_writer () =
  let was_enabled = !Obs.Log.enabled and was_threshold = !Obs.Log.threshold in
  Obs.Log.close ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.close ();
      Obs.Log.enabled := was_enabled;
      Obs.Log.threshold := was_threshold)
    (fun () ->
      check "disabled with no sink" false !Obs.Log.enabled;
      Obs.Log.event "inert" [ ("k", Span.Int 1) ] (* must be a no-op *);
      let path = Filename.temp_file "obs-log" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Obs.Log.open_path path;
          check "open_path enables" true !Obs.Log.enabled;
          Obs.Log.event "first"
            [
              ("i", Span.Int 42);
              ("f", Span.Float 1.5);
              ("s", Span.Str "quotes \" and\nnewlines");
              ("b", Span.Bool true);
            ];
          Obs.Log.event ~level:Obs.Log.Debug "below-threshold" [];
          Obs.Log.event ~level:Obs.Log.Warn "second"
            [ ("tenant", Span.Str "t") ];
          Obs.Log.close ();
          check "close disables" false !Obs.Log.enabled;
          let lines =
            List.filter
              (fun l -> String.trim l <> "")
              (String.split_on_char '\n'
                 (In_channel.with_open_bin path In_channel.input_all))
          in
          match
            List.map
              (fun l ->
                match Json.of_string l with
                | Ok j -> j
                | Error msg ->
                  Alcotest.failf "log line does not parse: %s (%s)" l msg)
              lines
          with
          | [ a; b ] ->
            check_string "event name" "first"
              (Json.to_str (Json.member "event" a));
            check_string "default level" "info"
              (Json.to_str (Json.member "level" a));
            check "ts_us positive" true
              (Json.to_int (Json.member "ts_us" a) > 0);
            check_int "int attr" 42 (Json.to_int (Json.member "i" a));
            check "bool attr" true (Json.to_bool (Json.member "b" a));
            check_string "string attr escapes round-trip"
              "quotes \" and\nnewlines"
              (Json.to_str (Json.member "s" a));
            check_string "warn level" "warn"
              (Json.to_str (Json.member "level" b));
            check_string "second event's attr" "t"
              (Json.to_str (Json.member "tenant" b))
          | l ->
            Alcotest.failf "expected 2 lines (Debug filtered), got %d"
              (List.length l)))

(* ------------------------------------------------------------------ *)
(* Trace-id context                                                    *)
(* ------------------------------------------------------------------ *)

let test_trace_context () =
  check "no ambient trace id" true (Span.current_trace_id () = None);
  let seen =
    Span.with_trace_id "outer-id" (fun () ->
        let a = Span.current_trace_id () in
        let b =
          Span.with_trace_id "inner-id" (fun () -> Span.current_trace_id ())
        in
        (a, b, Span.current_trace_id ()))
  in
  check "nested contexts set and restore" true
    (seen = (Some "outer-id", Some "inner-id", Some "outer-id"));
  check "restored outside" true (Span.current_trace_id () = None);
  (try Span.with_trace_id "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  check "restored after an exception" true (Span.current_trace_id () = None);
  with_tracing (fun () ->
      Span.with_trace_id "tid-1" (fun () ->
          Span.with_span "auto" (fun _ -> ());
          Span.with_span "explicit"
            ~attrs:[ ("trace_id", Span.Str "already") ]
            (fun _ -> ()));
      let spans = Span.finished () in
      check "span inherits the ambient trace id" true
        (List.assoc_opt "trace_id" (Span.attrs (by_name spans "auto"))
        = Some (Span.Str "tid-1"));
      check "an explicit trace_id attr wins" true
        (List.assoc_opt "trace_id" (Span.attrs (by_name spans "explicit"))
        = Some (Span.Str "already")))

(* ------------------------------------------------------------------ *)
(* Pool attribution                                                    *)
(* ------------------------------------------------------------------ *)

let task_spans () =
  List.filter (fun (s : Span.t) -> s.Span.name = "pool.task") (Span.finished ())

let int_attr (s : Span.t) key =
  match List.assoc_opt key (Span.attrs s) with
  | Some (Span.Int i) -> i
  | _ -> Alcotest.failf "pool.task span without %s attr" key

let test_pool_attribution () =
  with_tracing (fun () ->
      let res =
        Gpu_util.Pool.parallel_map ~jobs:2 (fun x -> x * x) [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list int)) "results in order" [ 1; 4; 9; 16 ] res;
      let tasks = task_spans () in
      check_int "one span per task" 4 (List.length tasks);
      Alcotest.(check (list int))
        "task indices cover the batch" [ 0; 1; 2; 3 ]
        (List.sort compare (List.map (fun s -> int_attr s "task") tasks));
      List.iter
        (fun s ->
          let w = int_attr s "worker" in
          check "worker id in range" true (w >= 0 && w < 2);
          check "wall time recorded" true (int_attr s "wall_us" >= 0))
        tasks)

let test_pool_error_attribution () =
  with_tracing (fun () ->
      let errors_before = Metrics.value (Metrics.counter "pool.errors") in
      (try
         ignore
           (Gpu_util.Pool.parallel_map ~jobs:2
              (fun x -> if x = 2 then failwith "task boom" else x)
              [ 1; 2; 3 ]);
         Alcotest.fail "exception did not propagate"
       with Failure m ->
         check_string "original exception re-raised unchanged" "task boom" m);
      let errored =
        List.filter (fun s -> List.mem_assoc "error" (Span.attrs s)) (task_spans ())
      in
      check_int "exactly the failing task errored" 1 (List.length errored);
      check_int "its index is attributed" 1 (int_attr (List.hd errored) "task");
      check "pool.errors counted" true
        (Metrics.value (Metrics.counter "pool.errors") > errors_before))

(* ------------------------------------------------------------------ *)
(* Timeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_timeline_coalescing () =
  let tl = Timeline.create () in
  let mem = Profile.Stall.Mem_wait in
  Timeline.record tl ~sm:0 ~kind:mem ~start:0 ~stop:4;
  Timeline.record tl ~sm:0 ~kind:mem ~start:4 ~stop:7;
  check_int "back-to-back same kind coalesces" 1 (Timeline.length tl);
  Timeline.record tl ~sm:0 ~kind:Profile.Stall.Issue ~start:7 ~stop:8;
  check_int "kind change breaks the run" 2 (Timeline.length tl);
  Timeline.record tl ~sm:0 ~kind:Profile.Stall.Issue ~start:9 ~stop:9;
  check_int "empty interval ignored" 2 (Timeline.length tl);
  Timeline.record tl ~sm:1 ~kind:mem ~start:7 ~stop:9;
  check_int "each SM has its own run" 3 (Timeline.length tl);
  let coalesced = ref None in
  Timeline.iter tl (fun iv ->
      if iv.Timeline.sm = 0 && iv.Timeline.kind = mem then coalesced := Some iv);
  (match !coalesced with
  | Some iv ->
    check_int "coalesced start" 0 iv.Timeline.start;
    check_int "coalesced stop" 7 iv.Timeline.stop
  | None -> Alcotest.fail "coalesced interval not stored");
  let events = Timeline.to_events tl ~pid:3 in
  check_int "one slice per interval" 3 (List.length events);
  List.iter
    (fun (e : Trace_event.event) ->
      check_string "slice phase" "X" e.Trace_event.ph;
      check_int "slice pid" 3 e.Trace_event.pid;
      check "tid is the SM id" true (e.Trace_event.tid = 0 || e.Trace_event.tid = 1);
      check "cycles map to positive dur" true (e.Trace_event.dur > 0))
    events

let test_timeline_cap () =
  let tl = Timeline.create ~cap:2 () in
  let mem = Profile.Stall.Mem_wait in
  Timeline.record tl ~sm:0 ~kind:mem ~start:0 ~stop:1;
  Timeline.record tl ~sm:0 ~kind:Profile.Stall.Issue ~start:2 ~stop:3;
  Timeline.record tl ~sm:0 ~kind:mem ~start:4 ~stop:5;
  check_int "stored intervals capped" 2 (Timeline.length tl);
  check_int "overflow counted, not stored" 1 (Timeline.dropped tl)

(* ------------------------------------------------------------------ *)
(* Cache counters                                                      *)
(* ------------------------------------------------------------------ *)

let test_cache_counters () =
  let module Cache = Experiments.Cache in
  let tmp = Filename.temp_file "obs-cache" "" in
  Sys.remove tmp;
  let old_dir = !Cache.dir and old_enabled = !Cache.enabled in
  Cache.dir := tmp;
  Cache.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Cache.clear ();
      (try Unix.rmdir tmp with Unix.Unix_error _ | Sys_error _ -> ());
      Cache.dir := old_dir;
      Cache.enabled := old_enabled)
    (fun () ->
      let cfg = explain_cfg () in
      let before = Cache.stats () in
      check "absent entry is a miss" true
        (Cache.load cfg ~workload:"W" ~scheme:"S" ~seed:1 = None);
      Cache.store cfg ~workload:"W" ~scheme:"S" ~seed:1
        (Json.Obj [ ("x", Json.Int 1) ]);
      (match Cache.load cfg ~workload:"W" ~scheme:"S" ~seed:1 with
      | Some (Json.Obj [ ("x", Json.Int 1) ]) -> ()
      | _ -> Alcotest.fail "stored entry did not load back");
      let file = Cache.path cfg ~workload:"W" ~scheme:"S" ~seed:1 in
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc "{not json");
      check "corrupt entry is a miss" true
        (Cache.load cfg ~workload:"W" ~scheme:"S" ~seed:1 = None);
      let after = Cache.stats () in
      check_int "hits" (before.Cache.hits + 1) after.Cache.hits;
      check_int "misses" (before.Cache.misses + 2) after.Cache.misses;
      check_int "stores" (before.Cache.stores + 1) after.Cache.stores;
      check_int "evictions" (before.Cache.evictions + 1) after.Cache.evictions)

(* ------------------------------------------------------------------ *)
(* Decision provenance (explain)                                       *)
(* ------------------------------------------------------------------ *)

let golden_dir = "golden_profiles"
let explain_atax_path = Filename.concat golden_dir "explain_atax.json"

let render_explain_atax () =
  Json.to_string ~pretty:true
    (Experiments.Explain.workload_to_json (explain_cfg ())
       (Workloads.Registry.find "ATAX"))
  ^ "\n"

let test_golden_explain () =
  if not (Sys.file_exists explain_atax_path) then
    Alcotest.failf "missing golden %s — regenerate (see header)"
      explain_atax_path;
  let golden =
    In_channel.with_open_bin explain_atax_path In_channel.input_all
  in
  check_string "explain ATAX provenance" golden (render_explain_atax ())

(* [catt_cli explain] must report, for every CS kernel, exactly the
   (N, M) the driver decided — and the recorded candidate sequence must
   be the real Eq. 9 search: every candidate before the chosen one
   overflowed the L1D, the chosen one fits. *)
let test_explain_matches_driver () =
  let cfg = explain_cfg () in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      List.iter
        (fun (name, (t : Catt.Driver.t)) ->
          let ctx = w.Workloads.Workload.name ^ "/" ^ name in
          let json = Catt.Explain.to_json cfg t in
          let loops = Json.to_list (Json.member "loops" json) in
          check_int (ctx ^ " loop count") (List.length t.Catt.Driver.loops)
            (List.length loops);
          List.iter2
            (fun (l : Catt.Driver.loop_decision) lj ->
              let d = l.Catt.Driver.decision in
              let dj = Json.member "decision" lj in
              check_int (ctx ^ " N") d.Catt.Throttle.n
                (Json.to_int (Json.member "n" dj));
              check_int (ctx ^ " M") d.Catt.Throttle.m
                (Json.to_int (Json.member "m" dj));
              check (ctx ^ " throttled") d.Catt.Throttle.throttled
                (Json.to_bool (Json.member "throttled" dj));
              check (ctx ^ " resolved") d.Catt.Throttle.resolved
                (Json.to_bool (Json.member "resolved" dj));
              check_int (ctx ^ " candidates serialized")
                (List.length d.Catt.Throttle.trials)
                (List.length (Json.to_list (Json.member "candidates" lj)));
              if d.Catt.Throttle.resolved && d.Catt.Throttle.throttled then
                match List.rev d.Catt.Throttle.trials with
                | [] -> Alcotest.failf "%s: throttled with no recorded trials" ctx
                | chosen :: earlier ->
                  check (ctx ^ " chosen candidate fits") true
                    chosen.Catt.Throttle.cand_fits;
                  check_int (ctx ^ " chosen N is the decision")
                    d.Catt.Throttle.n chosen.Catt.Throttle.cand_n;
                  check_int (ctx ^ " chosen M is the decision")
                    d.Catt.Throttle.m chosen.Catt.Throttle.cand_m;
                  List.iter
                    (fun (tr : Catt.Throttle.trial) ->
                      check (ctx ^ " earlier candidate overflowed") false
                        tr.Catt.Throttle.cand_fits)
                    earlier)
            t.Catt.Driver.loops loops)
        (Experiments.Explain.analyses cfg w))
    Workloads.Registry.cs

(* ------------------------------------------------------------------ *)
(* Suite + regen                                                       *)
(* ------------------------------------------------------------------ *)

let regen_goldens dir =
  let path = Filename.concat dir "explain_atax.json" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (render_explain_atax ()));
  Printf.printf "wrote %s\n" path

let tc = Alcotest.test_case

let tests =
  [
    ( "span",
      [
        tc "disabled path is inert" `Quick test_span_disabled;
        tc "nesting and ordering" `Quick test_span_nesting;
        tc "attrs and idempotent finish" `Quick test_span_attrs;
        tc "error capture" `Quick test_span_error;
        tc "clock monotone" `Quick test_clock_monotone;
        tc "trace-id context" `Quick test_trace_context;
      ] );
    ("perfetto", [ tc "export well-formed" `Quick test_perfetto_well_formed ]);
    ( "metrics",
      [
        tc "registry" `Quick test_metrics_registry;
        tc "manifest round-trip" `Quick test_manifest_roundtrip;
      ] );
    ( "histogram",
      [
        tc "fixed bucket boundaries" `Quick test_histogram_buckets;
        tc "quantiles and summary" `Quick test_histogram_quantiles;
        QCheck_alcotest.to_alcotest prop_bucket_contains;
        QCheck_alcotest.to_alcotest prop_merge;
        QCheck_alcotest.to_alcotest prop_quantile_bounds;
        QCheck_alcotest.to_alcotest prop_export_json_roundtrip;
      ] );
    ("log", [ tc "writer, levels, escaping" `Quick test_log_writer ]);
    ( "pool",
      [
        tc "task attribution" `Quick test_pool_attribution;
        tc "error attribution" `Quick test_pool_error_attribution;
      ] );
    ( "timeline",
      [
        tc "coalescing" `Quick test_timeline_coalescing;
        tc "cap" `Quick test_timeline_cap;
      ] );
    ("cache", [ tc "counters" `Quick test_cache_counters ]);
    ( "explain",
      [
        tc "golden ATAX provenance" `Quick test_golden_explain;
        tc "matches driver over all CS kernels" `Slow
          test_explain_matches_driver;
      ] );
  ]
