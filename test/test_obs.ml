(** Observability test suite (the [@obs] alias, pulled into
    [dune runtest]): span nesting/ordering invariants, Perfetto export
    well-formedness, metrics and manifest round-trips, pool task
    attribution, timeline coalescing, cache counters, and the golden
    [explain] provenance snapshot for ATAX.

    Golden snapshots live in [test/golden_profiles/*.json]; regenerate
    after an intentional format change with

      dune build test/obs_check.exe && \
      GOLDEN_REGEN=$PWD/test/golden_profiles _build/default/test/obs_check.exe *)

module Json = Gpu_util.Json
module Span = Obs.Span
module Metrics = Obs.Metrics
module Trace_event = Obs.Trace_event
module Timeline = Profile.Timeline

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* every span test restores the disabled default and drains the sink,
   so suites can run in any order *)
let with_tracing f =
  let was = !Span.enabled in
  Span.enabled := true;
  Span.reset ();
  Fun.protect
    ~finally:(fun () ->
      Span.enabled := was;
      Span.reset ())
    f

let by_name spans name =
  match List.find_opt (fun (s : Span.t) -> s.Span.name = name) spans with
  | Some s -> s
  | None -> Alcotest.failf "no finished span named %s" name

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_disabled () =
  let was = !Span.enabled in
  Span.enabled := false;
  Fun.protect
    ~finally:(fun () -> Span.enabled := was)
    (fun () ->
      Span.reset ();
      check "enter is a no-op while off" true (Span.enter "nope" = None);
      check "with_span passes None while off" true
        (Span.with_span "nope" (fun s -> s = None));
      check_int "sink untouched" 0 (List.length (Span.finished ())))

let test_span_nesting () =
  with_tracing (fun () ->
      Span.with_span "outer" (fun _ ->
          Span.with_span "inner" (fun _ -> ());
          Span.with_span "inner2" (fun _ -> ()));
      Span.with_span "sibling" (fun _ -> ());
      let spans = Span.finished () in
      check_int "all four collected" 4 (List.length spans);
      List.iter
        (fun (s : Span.t) ->
          check ("closed: " ^ s.Span.name) true (s.Span.end_us >= s.Span.start_us))
        spans;
      (* oldest first on start time *)
      ignore
        (List.fold_left
           (fun prev (s : Span.t) ->
             check "ordered oldest first" true (prev <= s.Span.start_us);
             s.Span.start_us)
           min_int spans);
      let outer = by_name spans "outer"
      and inner = by_name spans "inner"
      and inner2 = by_name spans "inner2"
      and sibling = by_name spans "sibling" in
      check "outer is a root" true (outer.Span.parent = None);
      check "sibling is a root" true (sibling.Span.parent = None);
      check "inner nests under outer" true
        (inner.Span.parent = Some outer.Span.id);
      check "inner2 nests under outer" true
        (inner2.Span.parent = Some outer.Span.id);
      check "inner contained in time" true
        (outer.Span.start_us <= inner.Span.start_us
        && inner.Span.end_us <= outer.Span.end_us);
      check "sibling does not nest" true
        (sibling.Span.start_us >= outer.Span.end_us))

let test_span_attrs () =
  with_tracing (fun () ->
      match Span.enter "s" ~attrs:[ ("a", Span.Int 1); ("b", Span.Str "x") ] with
      | None -> Alcotest.fail "enter returned None while enabled"
      | Some s ->
        Span.add_attr s "c" (Span.Bool true);
        Span.add_attr s "d" (Span.Float 2.5);
        Span.finish s;
        Span.finish s (* idempotent *);
        check_int "double finish collects once" 1
          (List.length (Span.finished ()));
        Alcotest.(check (list string))
          "attrs in insertion order" [ "a"; "b"; "c"; "d" ]
          (List.map fst (Span.attrs s)))

let test_span_error () =
  with_tracing (fun () ->
      (match Span.with_span "boom" (fun _ -> failwith "kaput") with
      | () -> Alcotest.fail "exception did not propagate"
      | exception Failure m -> check_string "original exception" "kaput" m);
      match Span.finished () with
      | [ s ] -> (
        check "errored span still closed" true (s.Span.end_us >= s.Span.start_us);
        match List.assoc_opt "error" (Span.attrs s) with
        | Some (Span.Str msg) ->
          check "error attr names the exception" true (contains msg "kaput")
        | _ -> Alcotest.fail "no error attribute on the failed span")
      | l -> Alcotest.failf "expected 1 finished span, got %d" (List.length l))

let test_clock_monotone () =
  let prev = ref (Obs.Clock.now_us ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now_us () in
    if t < !prev then Alcotest.failf "clock stepped back: %d -> %d" !prev t;
    prev := t
  done

(* ------------------------------------------------------------------ *)
(* Perfetto export                                                     *)
(* ------------------------------------------------------------------ *)

let test_perfetto_well_formed () =
  with_tracing (fun () ->
      Span.with_span "a" (fun _ -> Span.with_span "b" (fun _ -> ()));
      Span.with_span "c"
        ~attrs:[ ("k", Span.Str "quotes \" and\nnewlines") ]
        (fun _ -> ());
      let tl = Timeline.create () in
      Timeline.record tl ~sm:0 ~kind:Profile.Stall.Issue ~start:0 ~stop:3;
      Timeline.record tl ~sm:1 ~kind:Profile.Stall.Mem_wait ~start:2 ~stop:9;
      Timeline.record tl ~sm:0 ~kind:Profile.Stall.Barrier_wait ~start:5 ~stop:6;
      let events =
        (Trace_event.process_name ~pid:1 "host"
        :: Trace_event.thread_name ~pid:2 ~tid:0 "sm 0"
        :: Trace_event.of_spans ~pid:1 (Span.finished ()))
        @ Timeline.to_events tl ~pid:2
      in
      let rendered = Trace_event.to_string events in
      match Json.of_string rendered with
      | Error msg -> Alcotest.failf "trace JSON does not parse: %s" msg
      | Ok json ->
        let evs = Json.to_list (Json.member "traceEvents" json) in
        check_int "every event rendered" (List.length events) (List.length evs);
        let last_ts = Hashtbl.create 8 in
        List.iter
          (fun e ->
            ignore (Json.to_str (Json.member "name" e));
            let ph = Json.to_str (Json.member "ph" e) in
            check "ph is M or X" true (ph = "M" || ph = "X");
            let pid = Json.to_int (Json.member "pid" e) in
            let tid = Json.to_int (Json.member "tid" e) in
            if ph = "X" then begin
              let ts = Json.to_int (Json.member "ts" e) in
              check "ts >= 0" true (ts >= 0);
              check "dur >= 0" true (Json.to_int (Json.member "dur" e) >= 0);
              (match Hashtbl.find_opt last_ts (pid, tid) with
              | Some prev -> check "ts monotone per (pid,tid) track" true (prev <= ts)
              | None -> ());
              Hashtbl.replace last_ts (pid, tid) ts
            end)
          evs)

(* ------------------------------------------------------------------ *)
(* Metrics + manifest                                                  *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  let c = Metrics.counter "test.obs.counter" in
  let before = Metrics.value c in
  Metrics.incr c;
  Metrics.add c 41;
  check_int "incr + add" (before + 42) (Metrics.value c);
  check_int "find-or-register returns the same counter" (before + 42)
    (Metrics.value (Metrics.counter "test.obs.counter"));
  Metrics.set_gauge "test.obs.gauge" 2.5;
  Metrics.set_gauge "test.obs.gauge" 1.5;
  Metrics.max_gauge "test.obs.peak" 3.;
  Metrics.max_gauge "test.obs.peak" 2.;
  let snap = Metrics.snapshot () in
  ignore
    (List.fold_left
       (fun prev (name, _) ->
         check "snapshot sorted by name" true (prev <= name);
         name)
       "" snap);
  check "set_gauge: last write wins" true
    (List.assoc_opt "test.obs.gauge" snap = Some (Metrics.Gauge 1.5));
  check "max_gauge keeps the maximum" true
    (List.assoc_opt "test.obs.peak" snap = Some (Metrics.Gauge 3.));
  match List.assoc_opt "process.uptime_us" snap with
  | Some (Metrics.Count us) -> check "uptime positive" true (us > 0)
  | _ -> Alcotest.fail "snapshot missing process.uptime_us"

let explain_cfg () = Gpusim.Config.scaled ~num_sms:2 ~onchip_bytes:(32 * 1024) ()

let test_manifest_roundtrip () =
  let m =
    Experiments.Manifest.make (explain_cfg ()) ~workload:"ATAX" ~scheme:"CATT"
      ~seed:7 ~wall_seconds:0.25
  in
  let rendered = Json.to_string (Experiments.Manifest.to_json m) in
  let reparsed =
    match Json.of_string rendered with
    | Ok j -> j
    | Error msg -> Alcotest.failf "manifest JSON does not parse: %s" msg
  in
  match Experiments.Manifest.of_json reparsed with
  | Error msg -> Alcotest.failf "manifest does not decode: %s" msg
  | Ok m' ->
    check_string "workload" m.Experiments.Manifest.workload
      m'.Experiments.Manifest.workload;
    check_string "scheme" m.Experiments.Manifest.scheme
      m'.Experiments.Manifest.scheme;
    check_int "seed" m.Experiments.Manifest.seed m'.Experiments.Manifest.seed;
    check_string "fingerprint" m.Experiments.Manifest.fingerprint
      m'.Experiments.Manifest.fingerprint;
    (* reserialization is byte-stable, so the metric floats survived *)
    check_string "round-trip is lossless" rendered
      (Json.to_string (Experiments.Manifest.to_json m'))

(* ------------------------------------------------------------------ *)
(* Pool attribution                                                    *)
(* ------------------------------------------------------------------ *)

let task_spans () =
  List.filter (fun (s : Span.t) -> s.Span.name = "pool.task") (Span.finished ())

let int_attr (s : Span.t) key =
  match List.assoc_opt key (Span.attrs s) with
  | Some (Span.Int i) -> i
  | _ -> Alcotest.failf "pool.task span without %s attr" key

let test_pool_attribution () =
  with_tracing (fun () ->
      let res =
        Gpu_util.Pool.parallel_map ~jobs:2 (fun x -> x * x) [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list int)) "results in order" [ 1; 4; 9; 16 ] res;
      let tasks = task_spans () in
      check_int "one span per task" 4 (List.length tasks);
      Alcotest.(check (list int))
        "task indices cover the batch" [ 0; 1; 2; 3 ]
        (List.sort compare (List.map (fun s -> int_attr s "task") tasks));
      List.iter
        (fun s ->
          let w = int_attr s "worker" in
          check "worker id in range" true (w >= 0 && w < 2);
          check "wall time recorded" true (int_attr s "wall_us" >= 0))
        tasks)

let test_pool_error_attribution () =
  with_tracing (fun () ->
      let errors_before = Metrics.value (Metrics.counter "pool.errors") in
      (try
         ignore
           (Gpu_util.Pool.parallel_map ~jobs:2
              (fun x -> if x = 2 then failwith "task boom" else x)
              [ 1; 2; 3 ]);
         Alcotest.fail "exception did not propagate"
       with Failure m ->
         check_string "original exception re-raised unchanged" "task boom" m);
      let errored =
        List.filter (fun s -> List.mem_assoc "error" (Span.attrs s)) (task_spans ())
      in
      check_int "exactly the failing task errored" 1 (List.length errored);
      check_int "its index is attributed" 1 (int_attr (List.hd errored) "task");
      check "pool.errors counted" true
        (Metrics.value (Metrics.counter "pool.errors") > errors_before))

(* ------------------------------------------------------------------ *)
(* Timeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_timeline_coalescing () =
  let tl = Timeline.create () in
  let mem = Profile.Stall.Mem_wait in
  Timeline.record tl ~sm:0 ~kind:mem ~start:0 ~stop:4;
  Timeline.record tl ~sm:0 ~kind:mem ~start:4 ~stop:7;
  check_int "back-to-back same kind coalesces" 1 (Timeline.length tl);
  Timeline.record tl ~sm:0 ~kind:Profile.Stall.Issue ~start:7 ~stop:8;
  check_int "kind change breaks the run" 2 (Timeline.length tl);
  Timeline.record tl ~sm:0 ~kind:Profile.Stall.Issue ~start:9 ~stop:9;
  check_int "empty interval ignored" 2 (Timeline.length tl);
  Timeline.record tl ~sm:1 ~kind:mem ~start:7 ~stop:9;
  check_int "each SM has its own run" 3 (Timeline.length tl);
  let coalesced = ref None in
  Timeline.iter tl (fun iv ->
      if iv.Timeline.sm = 0 && iv.Timeline.kind = mem then coalesced := Some iv);
  (match !coalesced with
  | Some iv ->
    check_int "coalesced start" 0 iv.Timeline.start;
    check_int "coalesced stop" 7 iv.Timeline.stop
  | None -> Alcotest.fail "coalesced interval not stored");
  let events = Timeline.to_events tl ~pid:3 in
  check_int "one slice per interval" 3 (List.length events);
  List.iter
    (fun (e : Trace_event.event) ->
      check_string "slice phase" "X" e.Trace_event.ph;
      check_int "slice pid" 3 e.Trace_event.pid;
      check "tid is the SM id" true (e.Trace_event.tid = 0 || e.Trace_event.tid = 1);
      check "cycles map to positive dur" true (e.Trace_event.dur > 0))
    events

let test_timeline_cap () =
  let tl = Timeline.create ~cap:2 () in
  let mem = Profile.Stall.Mem_wait in
  Timeline.record tl ~sm:0 ~kind:mem ~start:0 ~stop:1;
  Timeline.record tl ~sm:0 ~kind:Profile.Stall.Issue ~start:2 ~stop:3;
  Timeline.record tl ~sm:0 ~kind:mem ~start:4 ~stop:5;
  check_int "stored intervals capped" 2 (Timeline.length tl);
  check_int "overflow counted, not stored" 1 (Timeline.dropped tl)

(* ------------------------------------------------------------------ *)
(* Cache counters                                                      *)
(* ------------------------------------------------------------------ *)

let test_cache_counters () =
  let module Cache = Experiments.Cache in
  let tmp = Filename.temp_file "obs-cache" "" in
  Sys.remove tmp;
  let old_dir = !Cache.dir and old_enabled = !Cache.enabled in
  Cache.dir := tmp;
  Cache.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Cache.clear ();
      (try Unix.rmdir tmp with Unix.Unix_error _ | Sys_error _ -> ());
      Cache.dir := old_dir;
      Cache.enabled := old_enabled)
    (fun () ->
      let cfg = explain_cfg () in
      let before = Cache.stats () in
      check "absent entry is a miss" true
        (Cache.load cfg ~workload:"W" ~scheme:"S" ~seed:1 = None);
      Cache.store cfg ~workload:"W" ~scheme:"S" ~seed:1
        (Json.Obj [ ("x", Json.Int 1) ]);
      (match Cache.load cfg ~workload:"W" ~scheme:"S" ~seed:1 with
      | Some (Json.Obj [ ("x", Json.Int 1) ]) -> ()
      | _ -> Alcotest.fail "stored entry did not load back");
      let file = Cache.path cfg ~workload:"W" ~scheme:"S" ~seed:1 in
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc "{not json");
      check "corrupt entry is a miss" true
        (Cache.load cfg ~workload:"W" ~scheme:"S" ~seed:1 = None);
      let after = Cache.stats () in
      check_int "hits" (before.Cache.hits + 1) after.Cache.hits;
      check_int "misses" (before.Cache.misses + 2) after.Cache.misses;
      check_int "stores" (before.Cache.stores + 1) after.Cache.stores;
      check_int "evictions" (before.Cache.evictions + 1) after.Cache.evictions)

(* ------------------------------------------------------------------ *)
(* Decision provenance (explain)                                       *)
(* ------------------------------------------------------------------ *)

let golden_dir = "golden_profiles"
let explain_atax_path = Filename.concat golden_dir "explain_atax.json"

let render_explain_atax () =
  Json.to_string ~pretty:true
    (Experiments.Explain.workload_to_json (explain_cfg ())
       (Workloads.Registry.find "ATAX"))
  ^ "\n"

let test_golden_explain () =
  if not (Sys.file_exists explain_atax_path) then
    Alcotest.failf "missing golden %s — regenerate (see header)"
      explain_atax_path;
  let golden =
    In_channel.with_open_bin explain_atax_path In_channel.input_all
  in
  check_string "explain ATAX provenance" golden (render_explain_atax ())

(* [catt_cli explain] must report, for every CS kernel, exactly the
   (N, M) the driver decided — and the recorded candidate sequence must
   be the real Eq. 9 search: every candidate before the chosen one
   overflowed the L1D, the chosen one fits. *)
let test_explain_matches_driver () =
  let cfg = explain_cfg () in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      List.iter
        (fun (name, (t : Catt.Driver.t)) ->
          let ctx = w.Workloads.Workload.name ^ "/" ^ name in
          let json = Catt.Explain.to_json cfg t in
          let loops = Json.to_list (Json.member "loops" json) in
          check_int (ctx ^ " loop count") (List.length t.Catt.Driver.loops)
            (List.length loops);
          List.iter2
            (fun (l : Catt.Driver.loop_decision) lj ->
              let d = l.Catt.Driver.decision in
              let dj = Json.member "decision" lj in
              check_int (ctx ^ " N") d.Catt.Throttle.n
                (Json.to_int (Json.member "n" dj));
              check_int (ctx ^ " M") d.Catt.Throttle.m
                (Json.to_int (Json.member "m" dj));
              check (ctx ^ " throttled") d.Catt.Throttle.throttled
                (Json.to_bool (Json.member "throttled" dj));
              check (ctx ^ " resolved") d.Catt.Throttle.resolved
                (Json.to_bool (Json.member "resolved" dj));
              check_int (ctx ^ " candidates serialized")
                (List.length d.Catt.Throttle.trials)
                (List.length (Json.to_list (Json.member "candidates" lj)));
              if d.Catt.Throttle.resolved && d.Catt.Throttle.throttled then
                match List.rev d.Catt.Throttle.trials with
                | [] -> Alcotest.failf "%s: throttled with no recorded trials" ctx
                | chosen :: earlier ->
                  check (ctx ^ " chosen candidate fits") true
                    chosen.Catt.Throttle.cand_fits;
                  check_int (ctx ^ " chosen N is the decision")
                    d.Catt.Throttle.n chosen.Catt.Throttle.cand_n;
                  check_int (ctx ^ " chosen M is the decision")
                    d.Catt.Throttle.m chosen.Catt.Throttle.cand_m;
                  List.iter
                    (fun (tr : Catt.Throttle.trial) ->
                      check (ctx ^ " earlier candidate overflowed") false
                        tr.Catt.Throttle.cand_fits)
                    earlier)
            t.Catt.Driver.loops loops)
        (Experiments.Explain.analyses cfg w))
    Workloads.Registry.cs

(* ------------------------------------------------------------------ *)
(* Suite + regen                                                       *)
(* ------------------------------------------------------------------ *)

let regen_goldens dir =
  let path = Filename.concat dir "explain_atax.json" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (render_explain_atax ()));
  Printf.printf "wrote %s\n" path

let tc = Alcotest.test_case

let tests =
  [
    ( "span",
      [
        tc "disabled path is inert" `Quick test_span_disabled;
        tc "nesting and ordering" `Quick test_span_nesting;
        tc "attrs and idempotent finish" `Quick test_span_attrs;
        tc "error capture" `Quick test_span_error;
        tc "clock monotone" `Quick test_clock_monotone;
      ] );
    ("perfetto", [ tc "export well-formed" `Quick test_perfetto_well_formed ]);
    ( "metrics",
      [
        tc "registry" `Quick test_metrics_registry;
        tc "manifest round-trip" `Quick test_manifest_roundtrip;
      ] );
    ( "pool",
      [
        tc "task attribution" `Quick test_pool_attribution;
        tc "error attribution" `Quick test_pool_error_attribution;
      ] );
    ( "timeline",
      [
        tc "coalescing" `Quick test_timeline_coalescing;
        tc "cap" `Quick test_timeline_cap;
      ] );
    ("cache", [ tc "counters" `Quick test_cache_counters ]);
    ( "explain",
      [
        tc "golden ATAX provenance" `Quick test_golden_explain;
        tc "matches driver over all CS kernels" `Slow
          test_explain_matches_driver;
      ] );
  ]
