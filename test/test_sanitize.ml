(** Tests for the kernel sanitizer: seeded-bad kernels must produce the
    expected located diagnostics, clean kernels (including every CATT /
    BFTT rewrite of every registered workload) must stay silent, and the
    transform gate must refuse exactly the rewrites that mint new
    diagnostics.  Also covers the {!Catt.Transform.warp_throttle_plan}
    edge cases the gate leans on. *)

module Ast = Minicuda.Ast
module Parser = Minicuda.Parser
module Diag = Sanitize.Diag
module Check = Sanitize.Check
module Transform = Catt.Transform

let geo ?(grid = (4, 1)) ?(block = (32, 1)) () =
  {
    Sanitize.Geom.grid_x = fst grid;
    grid_y = snd grid;
    block_x = fst block;
    block_y = snd block;
  }

let check ?grid ?block src =
  Check.check_kernel (geo ?grid ?block ()) (Parser.parse_kernel src)

let kinds = List.map (fun (d : Diag.t) -> (d.Diag.severity, d.Diag.kind))

(* ---------------------- barrier divergence ------------------------- *)

let test_divergent_barrier () =
  let diags =
    check
      "__global__ void k(float* out) {\n\
      \  int t = threadIdx.x;\n\
      \  if (t < 16) {\n\
      \    __syncthreads();\n\
      \  }\n\
      \  out[t] = 1.0;\n\
       }"
  in
  match diags with
  | [ d ] ->
    Alcotest.(check bool) "is error" true (d.Diag.severity = Diag.Error);
    Alcotest.(check bool) "is barrier kind" true
      (d.Diag.kind = Diag.Barrier_divergence);
    Alcotest.(check int) "line of the barrier" 4 d.Diag.loc.Ast.line;
    Alcotest.(check string) "kernel" "k" d.Diag.kernel
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let test_barrier_after_divergent_return () =
  let diags =
    check
      "__global__ void k(float* out) {\n\
      \  int t = threadIdx.x;\n\
      \  if (t < 16) {\n\
      \    return;\n\
      \  }\n\
      \  __syncthreads();\n\
      \  out[t] = 1.0;\n\
       }"
  in
  match kinds diags with
  | [ (Diag.Error, Diag.Barrier_divergence) ] ->
    let d = List.hd diags in
    Alcotest.(check int) "barrier line" 6 d.Diag.loc.Ast.line
  | _ -> Alcotest.failf "expected escape error:\n%s" (Diag.to_report diags)

let test_divergent_loop_trip_barrier () =
  let diags =
    check
      "__global__ void k(float* out) {\n\
      \  int t = threadIdx.x;\n\
      \  for (int i = 0; i < t; i++) {\n\
      \    __syncthreads();\n\
      \  }\n\
      \  out[t] = 1.0;\n\
       }"
  in
  Alcotest.(check bool) "flags the loop barrier" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.kind = Diag.Barrier_divergence)
       diags)

let test_uniform_guard_barrier_clean () =
  (* a launch-constant guard and a block-index guard are both uniform
     within a block: every thread takes the same side *)
  Alcotest.(check int) "param guard" 0
    (List.length
       (check
          "__global__ void k(float* out, int n) {\n\
          \  if (n > 5) {\n\
          \    __syncthreads();\n\
          \  }\n\
          \  out[threadIdx.x] = 1.0;\n\
           }"));
  Alcotest.(check int) "blockIdx guard" 0
    (List.length
       (check
          "__global__ void k(float* out) {\n\
          \  if (blockIdx.x < 2) {\n\
          \    __syncthreads();\n\
          \  }\n\
          \  out[threadIdx.x] = 1.0;\n\
           }"))

let test_block_uniform_proof () =
  (* 32 threads per block: tid < 32 cuts exactly on a block boundary, so
     `blockIdx.x * 32 + threadIdx.x < 32` is true of every thread of block
     0 and false of every thread of blocks 1..3 — uniform, not divergent *)
  Alcotest.(check int) "block-aligned guard is uniform" 0
    (List.length
       (check
          "__global__ void k(float* out) {\n\
          \  int tid = blockIdx.x * 32 + threadIdx.x;\n\
          \  if (tid < 32) {\n\
          \    __syncthreads();\n\
          \  }\n\
          \  out[tid] = 1.0;\n\
           }"));
  (* shift the cut mid-block and the same shape must be flagged *)
  Alcotest.(check bool) "mid-block guard is divergent" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.kind = Diag.Barrier_divergence)
       (check
          "__global__ void k(float* out) {\n\
          \  int tid = blockIdx.x * 32 + threadIdx.x;\n\
          \  if (tid < 48) {\n\
          \    __syncthreads();\n\
          \  }\n\
          \  out[tid] = 1.0;\n\
           }"))

(* ------------------------- shared races ---------------------------- *)

let race_src =
  "__global__ void k(float* out) {\n\
  \  __shared__ float s[32];\n\
  \  int t = threadIdx.x;\n\
  \  s[0] = t;\n\
  \  out[t] = s[t];\n\
   }"

let test_shared_race () =
  (* two races hide here: thread 0's s[0] store against every other
     thread's store, and against every thread's s[t] read of slot 0 *)
  let diags = check race_src in
  match kinds diags with
  | [ (Diag.Error, Diag.Shared_race); (Diag.Error, Diag.Shared_race) ] ->
    Alcotest.(check (list int))
      "store line, then read line" [ 4; 5 ]
      (List.map (fun (d : Diag.t) -> d.Diag.loc.Ast.line) diags)
  | _ -> Alcotest.failf "expected two races:\n%s" (Diag.to_report diags)

let test_race_write_then_unsynced_read () =
  let diags =
    check
      "__global__ void k(float* out) {\n\
      \  __shared__ float s[32];\n\
      \  int t = threadIdx.x;\n\
      \  s[t] = 1.0;\n\
      \  out[t] = s[31 - t];\n\
       }"
  in
  Alcotest.(check bool) "write/read race" true
    (List.exists (fun (d : Diag.t) -> d.Diag.kind = Diag.Shared_race) diags)

let test_barrier_separates_race () =
  Alcotest.(check int) "barrier orders the accesses" 0
    (List.length
       (check
          "__global__ void k(float* out) {\n\
          \  __shared__ float s[32];\n\
          \  int t = threadIdx.x;\n\
          \  s[t] = 1.0;\n\
          \  __syncthreads();\n\
          \  out[t] = s[31 - t];\n\
           }"))

let test_disjoint_indices_no_race () =
  (* each thread owns its own slot: never a race, no barrier needed *)
  Alcotest.(check int) "per-thread slots" 0
    (List.length
       (check
          "__global__ void k(float* out) {\n\
          \  __shared__ float s[32];\n\
          \  int t = threadIdx.x;\n\
          \  s[t] = 1.0;\n\
          \  out[t] = s[t];\n\
           }"))

let test_broadcast_store_benign () =
  (* every thread stores the same value at the same place — the idiom
     tb_throttle's pad write uses; flagged as a write/write race it would
     gate every TB-throttled rewrite.  A later read still needs a barrier:
     a reader could otherwise see the pre-store contents. *)
  Alcotest.(check int) "uniform broadcast stores" 0
    (List.length
       (check
          "__global__ void k(float* out) {\n\
          \  __shared__ float s[32];\n\
          \  s[0] = 0.0;\n\
          \  s[0] = 0.0;\n\
          \  out[threadIdx.x] = 1.0;\n\
           }"));
  Alcotest.(check bool) "unsynced read of a broadcast still races" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.kind = Diag.Shared_race)
       (check
          "__global__ void k(float* out) {\n\
          \  __shared__ float s[32];\n\
          \  s[0] = 0.0;\n\
          \  out[threadIdx.x] = s[0];\n\
           }"))

let test_loop_carried_race_needs_wrap_barrier () =
  (* one barrier inside the loop orders iteration i with itself, but not
     iteration i with i+1: writes of the next trip race with reads of the
     previous one unless a second barrier closes the loop *)
  let racy =
    check
      "__global__ void k(float* out) {\n\
      \  __shared__ float s[32];\n\
      \  int t = threadIdx.x;\n\
      \  for (int i = 0; i < 8; i++) {\n\
      \    s[t] = i;\n\
      \    __syncthreads();\n\
      \    out[t] = s[31 - t];\n\
      \  }\n\
       }"
  in
  Alcotest.(check bool) "loop-carried race" true
    (List.exists (fun (d : Diag.t) -> d.Diag.kind = Diag.Shared_race) racy);
  let closed =
    check
      "__global__ void k(float* out) {\n\
      \  __shared__ float s[32];\n\
      \  int t = threadIdx.x;\n\
      \  for (int i = 0; i < 8; i++) {\n\
      \    s[t] = i;\n\
      \    __syncthreads();\n\
      \    out[t] = s[31 - t];\n\
      \    __syncthreads();\n\
      \  }\n\
       }"
  in
  Alcotest.(check int) "wrap barrier closes it" 0 (List.length closed)

(* --------------------------- bounds -------------------------------- *)

let test_oob_read_warning () =
  let diags =
    check ~block:(16, 1)
      "__global__ void k(float* out) {\n\
      \  __shared__ float s[16];\n\
      \  int t = threadIdx.x;\n\
      \  s[t] = 1.0;\n\
      \  __syncthreads();\n\
      \  out[t] = s[t + 2];\n\
       }"
  in
  match kinds diags with
  | [ (Diag.Warning, Diag.Out_of_bounds) ] ->
    let d = List.hd diags in
    Alcotest.(check int) "at the read" 6 d.Diag.loc.Ast.line
  | _ -> Alcotest.failf "expected one bounds warning:\n%s" (Diag.to_report diags)

let test_oob_negative_index () =
  let diags =
    check ~block:(16, 1)
      "__global__ void k(float* out) {\n\
      \  __shared__ float s[16];\n\
      \  int t = threadIdx.x;\n\
      \  s[t - 2] = 1.0;\n\
      \  __syncthreads();\n\
      \  out[t] = s[t];\n\
       }"
  in
  Alcotest.(check bool) "negative extent warned" true
    (List.exists (fun (d : Diag.t) -> d.Diag.kind = Diag.Out_of_bounds) diags)

let test_in_bounds_silent () =
  Alcotest.(check int) "exact fit" 0
    (List.length
       (check ~block:(16, 1)
          "__global__ void k(float* out) {\n\
          \  __shared__ float s[16];\n\
          \  int t = threadIdx.x;\n\
          \  s[t] = 1.0;\n\
          \  __syncthreads();\n\
          \  out[t] = s[15 - t];\n\
           }"))

(* ------------------------ diagnostics ------------------------------ *)

let test_diag_to_string () =
  let d =
    {
      Diag.severity = Diag.Error;
      kind = Diag.Barrier_divergence;
      kernel = "k";
      loc = { Ast.line = 4; col = 5 };
      message = "boom";
    }
  in
  Alcotest.(check string) "located, with file"
    "a.cu:4:5: error: [barrier-divergence] k: boom"
    (Diag.to_string ~file:"a.cu" d);
  Alcotest.(check string) "no file prefix" "4:5: error: [barrier-divergence] k: boom"
    (Diag.to_string d)

(* --------------------------- the gate ------------------------------ *)

let clean_src =
  "__global__ void k(float* out) {\n\
  \  int t = blockIdx.x * blockDim.x + threadIdx.x;\n\
  \  for (int i = 0; i < 64; i++) {\n\
  \    out[t] = out[t] + 1.0;\n\
  \  }\n\
   }"

let test_gate_identity () =
  let k = Parser.parse_kernel race_src in
  (* same value: nothing to compare, even though the kernel is dirty *)
  Alcotest.(check bool) "identity is Ok" true
    (Check.gate (geo ()) ~original:k ~transformed:k = Ok ())

let test_gate_rejects_fresh_divergence () =
  let original = Parser.parse_kernel clean_src in
  let transformed =
    Parser.parse_kernel
      "__global__ void k(float* out) {\n\
      \  int t = blockIdx.x * blockDim.x + threadIdx.x;\n\
      \  for (int i = 0; i < 64; i++) {\n\
      \    if (threadIdx.x < 16) {\n\
      \      __syncthreads();\n\
      \    }\n\
      \    out[t] = out[t] + 1.0;\n\
      \  }\n\
       }"
  in
  match Check.gate (geo ()) ~original ~transformed with
  | Ok () -> Alcotest.fail "gate must refuse a freshly divergent barrier"
  | Error diags ->
    Alcotest.(check bool) "reports the barrier" true
      (List.exists
         (fun (d : Diag.t) -> d.Diag.kind = Diag.Barrier_divergence)
         diags)

let test_gate_keeps_preexisting_diags () =
  (* the original's own diagnostics belong to the programmer; a rewrite
     that merely preserves them (fresh parse = distinct value) passes *)
  let original = Parser.parse_kernel race_src in
  let transformed = Parser.parse_kernel race_src in
  Alcotest.(check bool) "same diagnostics pass" true
    (Check.gate (geo ()) ~original ~transformed = Ok ())

let test_gate_accepts_warp_split () =
  (* the guarded-phase pattern the CATT transform emits must be PROVED
     safe, not special-cased: the phase guard is thread-dependent, but the
     rendezvous barrier sits after the guarded body, where every thread of
     the block arrives again *)
  let k = Parser.parse_kernel clean_src in
  let split =
    Transform.warp_throttle k ~loop_id:0 ~n:2 ~warps_per_tb:8 ~warp_size:32
      ~one_dim_block:true
  in
  Alcotest.(check bool) "split differs" false (Ast.equal_kernel k split);
  (match Check.gate (geo ~block:(256, 1) ()) ~original:k ~transformed:split with
  | Ok () -> ()
  | Error diags ->
    Alcotest.failf "gate refused a sound warp split:\n%s" (Diag.to_report diags));
  Alcotest.(check int) "split checks clean outright" 0
    (List.length (Check.check_kernel (geo ~block:(256, 1) ()) split))

let test_driver_gates_transform () =
  (* end-to-end: Driver.analyze re-checks its own output and would error
     out rather than ship a rewrite that mints a diagnostic *)
  let cfg = Gpusim.Config.scaled ~num_sms:4 ~onchip_bytes:(32 * 1024) () in
  let w = Workloads.Registry.find "ATAX" in
  List.iter
    (fun (l : Workloads.Workload.kernel_launch) ->
      let kernel = Workloads.Workload.find_kernel w l.Workloads.Workload.kernel_name in
      let g = Workloads.Workload.geometry_of l in
      match Catt.Driver.analyze cfg kernel g with
      | Ok t ->
        Alcotest.(check int)
          (l.Workloads.Workload.kernel_name ^ " transformed clean") 0
          (List.length (Check.check_kernel g t.Catt.Driver.transformed))
      | Error msg -> Alcotest.fail msg)
    w.Workloads.Workload.launches

let test_sanitize_all_clean () =
  Alcotest.(check int) "registered kernels and variants all clean" 0
    (List.length (Experiments.Sanitize_all.violations ()))

(* ----------------- warp_throttle_plan edge cases ------------------- *)

let barrier_loop_src =
  "__global__ void k(float* out) {\n\
  \  __shared__ float s[256];\n\
  \  int t = threadIdx.x;\n\
  \  for (int i = 0; i < 8; i++) {\n\
  \    s[t] = out[t];\n\
  \    __syncthreads();\n\
  \    out[t] = s[255 - t] + 1.0;\n\
  \    __syncthreads();\n\
  \  }\n\
   }"

let test_split_refuses_barrier_loop () =
  let k = Parser.parse_kernel barrier_loop_src in
  let split =
    Transform.warp_throttle k ~loop_id:0 ~n:2 ~warps_per_tb:8 ~warp_size:32
      ~one_dim_block:true
  in
  (* the loop is kept whole rather than split into phases that would
     rendezvous at different barrier sites *)
  Alcotest.(check bool) "barrier loop left intact" true (Ast.equal_kernel k split)

let three_loops_src =
  "__global__ void k(float* out) {\n\
  \  int t = blockIdx.x * blockDim.x + threadIdx.x;\n\
  \  for (int i = 0; i < 4; i++) {\n\
  \    out[t] = out[t] + 1.0;\n\
  \  }\n\
  \  for (int j = 0; j < 4; j++) {\n\
  \    out[t] = out[t] * 2.0;\n\
  \  }\n\
  \  for (int l = 0; l < 4; l++) {\n\
  \    out[t] = out[t] - 3.0;\n\
  \  }\n\
   }"

let test_plan_renumbering_multiple_splits () =
  (* ids refer to the ORIGINAL kernel even though splitting loop 0 inserts
     new top-level loops before loop 2's rewrite site *)
  let k = Parser.parse_kernel three_loops_src in
  let split =
    Transform.warp_throttle_plan k
      ~plan:[ (0, 2); (2, 4) ]
      ~warps_per_tb:8 ~warp_size:32 ~one_dim_block:true
  in
  Alcotest.(check int) "2 + 1 + 4 loops" 7 (Transform.count_top_loops split);
  (* the middle loop must survive untouched: its body still multiplies *)
  let still_has_mul =
    Ast.fold_block
      (fun acc (s : Ast.stmt) ->
        acc
        ||
        match s.Ast.sk with
        | Ast.For { Ast.loop_var = "j"; body; _ } ->
          List.exists
            (fun (b : Ast.stmt) ->
              match b.Ast.sk with
              | Ast.Assign (_, Ast.Assign_eq, Ast.Binop (Ast.Mul, _, _)) -> true
              | _ -> false)
            body
        | _ -> false)
      false split.Ast.body
  in
  Alcotest.(check bool) "loop j intact" true still_has_mul;
  (* and the whole plan still passes the sanitizer *)
  Alcotest.(check int) "split plan clean" 0
    (List.length (Check.check_kernel (geo ~block:(256, 1) ()) split))

let test_split_nondividing_factor_rejected () =
  let k = Parser.parse_kernel three_loops_src in
  Alcotest.check_raises "n must divide warps_per_tb"
    (Invalid_argument "Transform.warp_throttle: n must divide warps_per_tb")
    (fun () ->
      ignore
        (Transform.warp_throttle k ~loop_id:0 ~n:3 ~warps_per_tb:8
           ~warp_size:32 ~one_dim_block:true))

let test_plan_unknown_loop_id_rejected () =
  let k = Parser.parse_kernel three_loops_src in
  Alcotest.check_raises "no loop 7"
    (Invalid_argument "Transform.warp_throttle: kernel k has no loop 7")
    (fun () ->
      ignore
        (Transform.warp_throttle k ~loop_id:7 ~n:2 ~warps_per_tb:8
           ~warp_size:32 ~one_dim_block:true))

let tests =
  [
    ( "sanitize.barrier",
      [
        Alcotest.test_case "divergent guard" `Quick test_divergent_barrier;
        Alcotest.test_case "divergent return escape" `Quick
          test_barrier_after_divergent_return;
        Alcotest.test_case "divergent loop trip" `Quick
          test_divergent_loop_trip_barrier;
        Alcotest.test_case "uniform guards clean" `Quick
          test_uniform_guard_barrier_clean;
        Alcotest.test_case "block-uniform proof" `Quick test_block_uniform_proof;
      ] );
    ( "sanitize.races",
      [
        Alcotest.test_case "write/write race" `Quick test_shared_race;
        Alcotest.test_case "write/read race" `Quick
          test_race_write_then_unsynced_read;
        Alcotest.test_case "barrier separates" `Quick test_barrier_separates_race;
        Alcotest.test_case "disjoint slots" `Quick test_disjoint_indices_no_race;
        Alcotest.test_case "broadcast store benign" `Quick
          test_broadcast_store_benign;
        Alcotest.test_case "loop-carried race" `Quick
          test_loop_carried_race_needs_wrap_barrier;
      ] );
    ( "sanitize.bounds",
      [
        Alcotest.test_case "overflow read" `Quick test_oob_read_warning;
        Alcotest.test_case "negative index" `Quick test_oob_negative_index;
        Alcotest.test_case "exact fit silent" `Quick test_in_bounds_silent;
      ] );
    ( "sanitize.gate",
      [
        Alcotest.test_case "diag rendering" `Quick test_diag_to_string;
        Alcotest.test_case "identity" `Quick test_gate_identity;
        Alcotest.test_case "fresh divergence refused" `Quick
          test_gate_rejects_fresh_divergence;
        Alcotest.test_case "pre-existing diags pass" `Quick
          test_gate_keeps_preexisting_diags;
        Alcotest.test_case "warp split proved safe" `Quick
          test_gate_accepts_warp_split;
        Alcotest.test_case "driver gates its output" `Quick
          test_driver_gates_transform;
        Alcotest.test_case "all workload variants clean" `Quick
          test_sanitize_all_clean;
      ] );
    ( "sanitize.transform-edges",
      [
        Alcotest.test_case "barrier loop unsplit" `Quick
          test_split_refuses_barrier_loop;
        Alcotest.test_case "renumbering across splits" `Quick
          test_plan_renumbering_multiple_splits;
        Alcotest.test_case "non-dividing factor" `Quick
          test_split_nondividing_factor_rejected;
        Alcotest.test_case "unknown loop id" `Quick
          test_plan_unknown_loop_id_rejected;
      ] );
  ]
