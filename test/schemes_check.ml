(** Lockdown suite for the interference-aware hardware schemes (the
    [@schemes] alias): CIAO selective bypassing and the ATA-Cache.

    Three layers:

    1. Differential: for EVERY registered workload x both L1D settings,
       each new scheme runs twice on fresh devices — once bare, once with
       the profiler attached.  The two runs' serialized {!Gpusim.Stats}
       must be bit-identical, which pins run-to-run determinism (two
       independent simulations of the same seed) and profiling purity in
       one pass.  At the max-L1D setting the profiled run is additionally
       reduced to its golden-grid digest and checked against the
       committed snapshot, so the new schemes' cells are pinned by the
       same bit-identity regime as the rest of the grid.

    2. Scheme semantics (QCheck over fixture parameters, see
       {!Workloads.Fixtures}): an aggregated tag array never increases
       the L1D miss count on a pure-reuse walk, and CIAO's
       bypassed-by-policy counter stays exactly zero on single-warp
       launches (no cross-warp interference can accrue).

    3. Interference: on the two-array contention fixture CIAO must
       actually flag and bypass the streaming warps, and the ATA shadow
       tags must see hits and promote on the thrashing re-walk. *)

module Runner = Experiments.Runner
module Json = Gpu_util.Json

let new_schemes = [ Runner.Ciao; Runner.Ata ]

let configs () =
  [ Experiments.Configs.max_l1d (); Experiments.Configs.small_l1d () ]

let stats_of_run (r : Runner.app_run) =
  String.concat "\n"
    (List.map
       (fun (ks : Runner.kernel_stats) ->
         ks.Runner.kernel_name ^ ":"
         ^ Json.to_string (Gpusim.Stats.to_json ks.Runner.stats))
       r.Runner.kernels)

let golden_grid_path = Filename.concat "golden_profiles" "golden_grid.json"

let committed_digests () =
  match
    Json.of_string
      (In_channel.with_open_bin golden_grid_path In_channel.input_all)
  with
  | Ok j -> (
    match Experiments.Golden_grid.of_json j with
    | Ok pairs -> pairs
    | Error msg -> Alcotest.failf "unreadable golden grid: %s" msg)
  | Error msg -> Alcotest.failf "unreadable golden grid: %s" msg

(* one bare + one profiled run per (workload, config, scheme) cell; the
   profiled run at max L1D doubles as the golden-grid cell recomputation *)
let test_differential () =
  let golden = committed_digests () in
  let max_cfg = Experiments.Configs.max_l1d () in
  List.iter
    (fun cfg ->
      List.iter
        (fun (w : Workloads.Workload.t) ->
          List.iter
            (fun scheme ->
              let name =
                Printf.sprintf "%s/%s/%s"
                  (Experiments.Configs.label cfg)
                  w.Workloads.Workload.name
                  (Runner.scheme_label scheme)
              in
              let bare =
                match
                  Runner.exec_uncached (Runner.Request.make cfg w scheme)
                with
                | Ok r -> r
                | Error msg -> Alcotest.failf "%s: bare run failed: %s" name msg
              in
              let mem = ref "" in
              let profiled =
                match
                  Runner.exec_uncached
                    (Runner.Request.make ~profile:true
                       ~on_device:(fun dev ->
                         mem :=
                           Digest.to_hex
                             (Experiments.Golden_grid.digest_memory dev))
                       cfg w scheme)
                with
                | Ok r -> r
                | Error msg ->
                  Alcotest.failf "%s: profiled run failed: %s" name msg
              in
              Alcotest.(check string)
                (name ^ " profiled == bare stats")
                (stats_of_run bare) (stats_of_run profiled);
              if cfg = max_cfg then begin
                let key = Experiments.Golden_grid.cell_key w scheme in
                match List.assoc_opt key golden with
                | None ->
                  Alcotest.failf "golden grid has no cell %s — regenerate" key
                | Some committed ->
                  Alcotest.(check string)
                    (name ^ " golden digest")
                    committed
                    (Experiments.Golden_grid.digest_of_run ~mem:!mem profiled)
              end)
            new_schemes)
        Workloads.Registry.all)
    (configs ())

(* ------------------------------------------------------------------ *)
(* Scheme semantics on the fixtures                                    *)
(* ------------------------------------------------------------------ *)

let fixture_cfg () = Experiments.Configs.max_l1d ()

(* ATA on pure reuse: promoting only proven-reuse lines can delay a cold
   fill but never evict a live line earlier than plain LRU — the miss
   count must not rise, whether the footprint fits (warps * span <= 256
   lines here) or thrashes *)
let prop_ata_pure_reuse =
  let params =
    QCheck.Gen.(
      triple (oneofl [ 1; 2; 4; 8 ]) (oneofl [ 8; 16; 40; 96 ])
        (oneofl [ 2; 4; 8 ]))
  in
  let print (warps, span, reps) =
    Printf.sprintf "warps=%d span=%d reps=%d" warps span reps
  in
  QCheck.Test.make ~name:"ATA never increases misses on pure reuse" ~count:20
    (QCheck.make ~print params) (fun (warps, span, reps) ->
      let p = { Workloads.Fixtures.warps; span; reps } in
      let cfg = fixture_cfg () in
      let base = Workloads.Fixtures.run_reuse cfg p in
      let ata = Workloads.Fixtures.run_reuse ~throttle:`Ata cfg p in
      if ata.Gpusim.Stats.l1_accesses <> base.Gpusim.Stats.l1_accesses then
        QCheck.Test.fail_reportf "access counts diverged: %d vs %d"
          base.Gpusim.Stats.l1_accesses ata.Gpusim.Stats.l1_accesses;
      if ata.Gpusim.Stats.l1_misses > base.Gpusim.Stats.l1_misses then
        QCheck.Test.fail_reportf "ATA raised misses: %d -> %d (%s)"
          base.Gpusim.Stats.l1_misses ata.Gpusim.Stats.l1_misses
          (print (warps, span, reps));
      true)

(* CIAO quiescence: one warp per SM cannot interfere with anyone, so no
   warp is ever flagged and the bypassed-by-policy counter stays zero no
   matter how long the kernel runs (warm-up alone already covers the
   short-run case) *)
let prop_ciao_quiescent =
  let params =
    QCheck.Gen.(pair (oneofl [ 8; 64; 128 ]) (oneofl [ 2; 8; 32 ]))
  in
  let print (span, reps) = Printf.sprintf "span=%d reps=%d" span reps in
  QCheck.Test.make ~name:"CIAO bypasses nothing on single-warp launches"
    ~count:9 (QCheck.make ~print params) (fun (span, reps) ->
      let p = { Workloads.Fixtures.warps = 1; span; reps } in
      let stats =
        Workloads.Fixtures.run_reuse ~throttle:`Ciao (fixture_cfg ()) p
      in
      if stats.Gpusim.Stats.bypass_transactions <> 0 then
        QCheck.Test.fail_reportf "bypassed %d accesses on %s"
          stats.Gpusim.Stats.bypass_transactions (print (span, reps));
      true)

let interference_params =
  {
    Workloads.Fixtures.streamers = 7;
    hot_span = 32;
    stream_span = 512;
    hot_reps = 64;
  }

(* the contention shape CIAO is for: streaming warps keep evicting the
   hot warp's lines, so past warm-up they get flagged and their loads
   take the bypass path *)
let test_ciao_flags_streamers () =
  let stats =
    Workloads.Fixtures.run_interference ~throttle:`Ciao (fixture_cfg ())
      interference_params
  in
  Alcotest.(check bool)
    "some accesses bypassed by policy" true
    (stats.Gpusim.Stats.bypass_transactions > 0);
  Alcotest.(check int) "ATA counters untouched" 0
    (stats.Gpusim.Stats.ata_tag_hits + stats.Gpusim.Stats.ata_promotions);
  (* bypassing the streamers must help the hot warp's reuse: fewer L1D
     misses than the unprotected baseline *)
  let base =
    Workloads.Fixtures.run_interference (fixture_cfg ()) interference_params
  in
  Alcotest.(check bool)
    (Printf.sprintf "fewer misses than baseline (%d vs %d)"
       stats.Gpusim.Stats.l1_misses base.Gpusim.Stats.l1_misses)
    true
    (stats.Gpusim.Stats.l1_misses < base.Gpusim.Stats.l1_misses)

(* the ATA shadow must actually engage on a thrashing re-walk: deferred
   first touches leave tags behind, re-touches hit them and promote.  The
   overflow is kept shallow (~5 lines per 4-way set against the 2-way
   shadow) — a reuse distance beyond data+shadow ways would rotate
   through the shadow without ever re-touching a still-shadowed tag *)
let test_ata_shadow_engages () =
  let p = { Workloads.Fixtures.warps = 4; span = 80; reps = 4 } in
  let stats = Workloads.Fixtures.run_reuse ~throttle:`Ata (fixture_cfg ()) p in
  Alcotest.(check bool)
    "shadow tag hits recorded" true
    (stats.Gpusim.Stats.ata_tag_hits > 0);
  Alcotest.(check bool)
    "promotions recorded" true
    (stats.Gpusim.Stats.ata_promotions > 0);
  Alcotest.(check int) "tag hits == promotions (every hit promotes)"
    stats.Gpusim.Stats.ata_tag_hits stats.Gpusim.Stats.ata_promotions

let () =
  Alcotest.run "catt-schemes"
    [
      ( "schemes",
        [
          Alcotest.test_case
            "ciao/ata: determinism, purity, golden cells (all workloads, \
             both L1D configs)"
            `Slow test_differential;
          QCheck_alcotest.to_alcotest prop_ata_pure_reuse;
          QCheck_alcotest.to_alcotest prop_ciao_quiescent;
          Alcotest.test_case "CIAO flags the streaming warps" `Quick
            test_ciao_flags_streamers;
          Alcotest.test_case "ATA shadow engages under thrash" `Quick
            test_ata_shadow_engages;
        ] );
    ]
