(** [experiments] — regenerate any of the paper's tables and figures.

    Usage: experiments [ARTIFACT…] [--jobs N] [--onchip KB] [--sms N]
                       [--no-cache] [--quiet]
    Artifacts: table2 table3 fig2 fig3 fig6 fig7 fig8 fig9 fig10
               overhead ablations sanitize-all profile-all   (default: all)

    The (workload × scheme) grid behind the requested artifacts is
    precomputed on a pool of [--jobs] domains, and every completed cell
    is persisted under results/cache/ — a second invocation reports a
    cache hit per cell and renders from disk.  Rendering itself is
    sequential, so the artifact output is identical for any job count. *)

open Cmdliner

let artifact_args =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"ARTIFACT" ~doc:"artifacts to regenerate (default: all)")

let quiet =
  Arg.(value & flag & info [ "quiet" ] ~doc:"suppress per-run progress lines")

let run artifact_ids jobs onchip_kb sms no_cache quiet =
  Experiments.Configs.onchip_kb := onchip_kb;
  Experiments.Configs.num_sms := sms;
  Experiments.Cache.enabled := not no_cache;
  Experiments.Runner.progress := not quiet;
  let targets =
    match artifact_ids with
    | [] | [ "all" ] -> Experiments.Report.artifacts
    | ids ->
      List.map
        (fun id ->
          match Experiments.Report.find id with
          | Some a -> a
          | None ->
            Printf.eprintf "unknown artifact %s (known: %s)\n" id
              (String.concat " " Experiments.Report.ids);
            exit 2)
        ids
  in
  ignore
    (Experiments.Report.warm ~jobs
       (List.map (fun (a : Experiments.Report.artifact) -> a.id) targets));
  List.iter
    (fun (a : Experiments.Report.artifact) ->
      Printf.printf "==== %s ====\n\n%s\n\n%!" a.title (a.render ()))
    targets

let () =
  let cmd =
    Cmd.v
      (Cmd.info "experiments" ~doc:"regenerate the paper's tables and figures")
      Term.(
        const run $ artifact_args $ Cli_common.jobs $ Cli_common.onchip
        $ Cli_common.sms $ Cli_common.no_cache $ quiet)
  in
  exit (Cmd.eval cmd)
