(** [experiments] — regenerate any of the paper's tables and figures.

    Usage: experiments [ARTIFACT…] [--jobs N] [--onchip KB] [--sms N]
                       [--no-cache] [--quiet]
    Artifacts: table2 table3 fig2 fig3 fig6 fig7 fig8 fig9 fig10
               overhead ablations sanitize-all profile-all   (default: all)

    The (workload × scheme) grid behind the requested artifacts is
    precomputed on a pool of [--jobs] domains, and every completed cell
    is persisted under results/cache/ — a second invocation reports a
    cache hit per cell and renders from disk.  Rendering itself is
    sequential, so the artifact output is identical for any job count. *)

open Cmdliner

let artifact_args =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"ARTIFACT" ~doc:"artifacts to regenerate (default: all)")

let quiet =
  Arg.(value & flag & info [ "quiet" ] ~doc:"suppress per-run progress lines")

let run artifact_ids jobs onchip_kb sms no_cache quiet =
  Experiments.Configs.onchip_kb := onchip_kb;
  Experiments.Configs.num_sms := sms;
  Experiments.Cache.enabled := not no_cache;
  Experiments.Runner.progress := not quiet;
  let targets =
    match artifact_ids with
    | [] | [ "all" ] -> Experiments.Report.artifacts
    | ids ->
      List.map
        (fun id ->
          match Experiments.Report.find id with
          | Some a -> a
          | None ->
            Printf.eprintf "unknown artifact %s (known: %s)\n" id
              (String.concat " " Experiments.Report.ids);
            exit 2)
        ids
  in
  ignore
    (Experiments.Report.warm ~jobs
       (List.map (fun (a : Experiments.Report.artifact) -> a.id) targets));
  List.iter
    (fun (a : Experiments.Report.artifact) ->
      Printf.printf "==== %s ====\n\n%s\n\n%!" a.title (a.render ()))
    targets;
  let cs = Experiments.Cache.stats () in
  Printf.printf
    "summary: cache %d hits / %d misses / %d evicted / %d stored; %d cells \
     simulated (%.2f cells/sec)\n"
    cs.Experiments.Cache.hits cs.Experiments.Cache.misses
    cs.Experiments.Cache.evictions cs.Experiments.Cache.stores
    (Obs.Metrics.value (Obs.Metrics.counter "sim.cells"))
    (let uptime_us =
       match List.assoc_opt "process.uptime_us" (Obs.Metrics.snapshot ()) with
       | Some (Obs.Metrics.Count us) -> float_of_int us
       | _ -> 0.
     in
     if uptime_us <= 0. then 0.
     else
       float_of_int (Obs.Metrics.value (Obs.Metrics.counter "sim.cells"))
       /. (uptime_us /. 1e6))

let () =
  let cmd =
    Cmd.v
      (Cmd.info "experiments" ~doc:"regenerate the paper's tables and figures")
      Term.(
        const run $ artifact_args $ Cli_common.jobs $ Cli_common.onchip
        $ Cli_common.sms $ Cli_common.no_cache $ quiet)
  in
  exit (Cmd.eval cmd)
