(** [simulate] — run one benchmark application on the simulator under a
    chosen scheme and print per-kernel counters.

    Usage: simulate WORKLOAD [--scheme baseline|catt|NxM] [--onchip KB]
                    [--sms N] [--jobs N] [--no-cache] [--list] [--sweep] *)

open Cmdliner

let scheme_conv : Experiments.Scheme.t Arg.conv =
  let parse s =
    match Experiments.Scheme.of_string s with
    | Ok scheme -> Ok scheme
    | Error msg -> (
      (* also accept the bare NxM / N,M shorthand for fixed factors *)
      match Cli_common.pair_of_string s with
      | Ok (n, m) -> Ok (Experiments.Scheme.Fixed (n, m))
      | Error _ -> Error (`Msg msg))
  in
  let print fmt s = Format.pp_print_string fmt (Experiments.Scheme.label s) in
  Arg.conv (parse, print)

let print_sweep ~jobs cfg w =
  Printf.printf "throttling-factor sweep for %s (N = warp split, M = TB cut):\n"
    w.Workloads.Workload.name;
  (* precompute every cell of the sweep (plus best-SWL and CATT) across
     the pool; the prints below then read from the memo in order *)
  let open Experiments.Runner in
  let cells =
    List.map
      (fun (n, m) ->
        (cfg, w, if n = 1 && m = 0 then Baseline else Fixed (n, m)))
      (candidates cfg w)
    @ List.map (fun k -> (cfg, w, Swl k)) (swl_candidates cfg w)
    @ [ (cfg, w, Catt) ]
  in
  ignore (run_many ~jobs cells);
  let sweep = Experiments.Runner.sweep cfg w in
  let base =
    match sweep with ((1, 0), r) :: _ -> r.Experiments.Runner.total_cycles | _ -> 1
  in
  List.iter
    (fun ((n, m), (r : Experiments.Runner.app_run)) ->
      Printf.printf "  N=%2d M=%2d  %10d cycles  %.2fx\n" n m
        r.Experiments.Runner.total_cycles
        (float_of_int r.Experiments.Runner.total_cycles /. float_of_int base))
    sweep;
  let k, swl = Experiments.Runner.best_swl cfg w in
  Printf.printf "  best-SWL (k=%d warps): %d cycles\n" k
    swl.Experiments.Runner.total_cycles;
  let catt = Experiments.Runner.run cfg w Experiments.Runner.Catt in
  Printf.printf "  CATT:                  %d cycles\n" catt.Experiments.Runner.total_cycles

let find_workload name =
  try Workloads.Registry.find name
  with Invalid_argument msg ->
    prerr_endline msg;
    exit 2

let run name scheme cfg jobs no_cache list_only sweep =
  Experiments.Cache.enabled := not no_cache;
  if list_only then
    List.iter print_endline (Workloads.Registry.names `All)
  else if sweep then
    print_sweep ~jobs cfg (find_workload name)
  else begin
    let w = find_workload name in
    let r = Experiments.Runner.run cfg w scheme in
    Printf.printf "%s under %s: %d cycles total\n" w.Workloads.Workload.name
      (Experiments.Runner.scheme_label scheme)
      r.Experiments.Runner.total_cycles;
    List.iter
      (fun (ks : Experiments.Runner.kernel_stats) ->
        Printf.printf "  %-20s TLP (%2d,%2d)  %s\n" ks.kernel_name
          (fst ks.Experiments.Runner.tlp) (snd ks.Experiments.Runner.tlp)
          (Format.asprintf "%a" Gpusim.Stats.pp ks.Experiments.Runner.stats))
      r.Experiments.Runner.kernels;
    match r.Experiments.Runner.verified with
    | Ok () -> print_endline "verification: OK"
    | Error msg ->
      Printf.printf "verification: FAILED (%s)\n" msg;
      exit 1
  end

let () =
  let name_arg =
    Arg.(value & pos 0 string "ATAX" & info [] ~docv:"WORKLOAD" ~doc:"benchmark name")
  in
  let scheme =
    Arg.(
      value
      & opt scheme_conv Experiments.Runner.Baseline
      & info [ "scheme" ] ~docv:"S"
          ~doc:
            "baseline, catt, dynamic, ccws, daws, bypass, catt-sa, ciao, \
             ata, swl(K), or NxM")
  in
  let list_only = Arg.(value & flag & info [ "list" ] ~doc:"list workloads and exit") in
  let sweep =
    Arg.(value & flag & info [ "sweep" ] ~doc:"print the full throttling-factor sweep (Fig. 9 axis) plus best-SWL and CATT")
  in
  let cmd =
    Cmd.v (Cmd.info "simulate" ~doc:"run a workload on the GPU simulator")
      Term.(
        const run $ name_arg $ scheme $ Cli_common.config $ Cli_common.jobs
        $ Cli_common.no_cache $ list_only $ sweep)
  in
  exit (Cmd.eval cmd)
