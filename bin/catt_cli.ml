(** [catt] — the compiler CLI: analyze a mini-CUDA kernel and emit the
    throttled source, mirroring how the paper's tool wraps its ANTLR pass.

    Usage:
      catt_cli analyze  FILE --grid GX[,GY] --block BX[,BY] [--onchip KB] [--sms N] [--jobs N]
      catt_cli transform FILE --grid … --block …   (prints transformed source)
      catt_cli check    FILE --grid … --block … [--strict]   (kernel sanitizer)
      catt_cli disasm   FILE                       (SASS-lite dump)
      catt_cli run      WORKLOAD [--scheme S] [--onchip KB] [--sms N]
                                                   (simulate under a scheme and print
                                                    per-kernel counters + verification)
      catt_cli profile  WORKLOAD [--scheme S] [--onchip KB] [--sms N]
                        [--trace-out trace.json]
                                                   (cycle accounting + L1D heat maps,
                                                    optional Perfetto timeline export)
      catt_cli explain  WORKLOAD [--json] [--onchip KB] [--sms N]
                                                   (CATT decision provenance)
      catt_cli lint     TARGET [--json] [--grid ...] [--block ...]
                        [--onchip KB] [--sms N]
                                                   (static cache-behavior lint;
                                                    TARGET is a source file or a
                                                    registered workload)
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"mini-CUDA source file")

let grid_arg =
  Arg.(
    value
    & opt Cli_common.pair (4, 1)
    & info [ "grid" ] ~docv:"GX[,GY]" ~doc:"grid dimensions")

let block_arg =
  Arg.(
    value
    & opt Cli_common.pair (256, 1)
    & info [ "block" ] ~docv:"BX[,BY]" ~doc:"thread-block dimensions")

let config ~onchip_kb ~sms =
  Gpusim.Config.scaled ~num_sms:sms ~onchip_bytes:(onchip_kb * 1024) ()

let kernels_of path =
  (Minicuda.Parser.parse_program (read_file path)).Minicuda.Ast.kernels

let analyses path (gx, gy) (bx, by) onchip sms jobs =
  let geo = { Catt.Analysis.grid_x = gx; grid_y = gy; block_x = bx; block_y = by } in
  let cfg = config ~onchip_kb:onchip ~sms in
  let results =
    (* independent per-kernel passes; order is preserved by Pool.map *)
    Gpu_util.Pool.parallel_map ~jobs
      (fun kernel -> (kernel, Catt.Driver.analyze cfg kernel geo))
      (kernels_of path)
  in
  let ok =
    List.filter_map
      (fun (kernel, r) ->
        match r with
        | Ok t -> Some (kernel, t)
        | Error msg ->
          Printf.eprintf "%s: %s\n" kernel.Minicuda.Ast.kernel_name msg;
          None)
      results
  in
  (cfg, ok)

let analyze_cmd =
  let run path grid block onchip sms jobs =
    let cfg, results = analyses path grid block onchip sms jobs in
    List.iter (fun (_, t) -> Catt.Report.print cfg t) results
  in
  Cmd.v (Cmd.info "analyze" ~doc:"print the per-loop contention analysis")
    Term.(
      const run $ file_arg $ grid_arg $ block_arg $ Cli_common.onchip
      $ Cli_common.sms $ Cli_common.jobs)

let transform_cmd =
  let run path grid block onchip sms jobs =
    let _, results = analyses path grid block onchip sms jobs in
    List.iter
      (fun (_, (t : Catt.Driver.t)) ->
        print_endline (Minicuda.Pretty.kernel t.Catt.Driver.transformed);
        print_newline ())
      results
  in
  Cmd.v (Cmd.info "transform" ~doc:"print the throttled source")
    Term.(
      const run $ file_arg $ grid_arg $ block_arg $ Cli_common.onchip
      $ Cli_common.sms $ Cli_common.jobs)

let check_cmd =
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"treat warnings (e.g. possible out-of-bounds) as fatal")
  in
  let run path (gx, gy) (bx, by) strict =
    let geo =
      { Sanitize.Geom.grid_x = gx; grid_y = gy; block_x = bx; block_y = by }
    in
    let diags =
      List.concat_map
        (fun kernel -> Sanitize.Check.check_kernel geo kernel)
        (kernels_of path)
    in
    List.iter
      (fun d -> print_endline (Sanitize.Diag.to_string ~file:path d))
      diags;
    let fatal =
      if strict then diags <> [] else Sanitize.Diag.has_errors diags
    in
    if fatal then exit 1
    else if diags = [] then print_endline "no diagnostics"
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "run the kernel sanitizer (barrier divergence, shared-memory races, \
          bounds); exits non-zero on errors")
    Term.(const run $ file_arg $ grid_arg $ block_arg $ strict_arg)

let disasm_cmd =
  let file0 =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"source file")
  in
  let run path =
    List.iter
      (fun kernel ->
        print_string (Gpusim.Bytecode.disassemble (Gpusim.Codegen.compile_kernel kernel)))
      (kernels_of path)
  in
  Cmd.v (Cmd.info "disasm" ~doc:"dump SASS-lite bytecode") Term.(const run $ file0)

let workload_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD"
        ~doc:"registered workload name (e.g. ATAX, GEMM); case-insensitive")

let find_workload name =
  match Workloads.Registry.find name with
  | exception Invalid_argument msg ->
    prerr_endline msg;
    exit 2
  | w -> w

(* Perfetto/Chrome trace-event export: host spans on pid 1, each profiled
   kernel's per-SM cycle timeline on its own pid (simulated cycles render
   as microseconds). *)
let write_trace ~path (r : Experiments.Runner.app_run) =
  let host =
    Obs.Trace_event.process_name ~pid:1 "host"
    :: Obs.Trace_event.of_spans ~pid:1 (Obs.Span.finished ())
  in
  let sim =
    List.concat
      (List.mapi
         (fun i (ks : Experiments.Runner.kernel_stats) ->
           match ks.Experiments.Runner.profile with
           | None -> []
           | Some p -> (
             match Profile.Collector.timeline p with
             | None -> []
             | Some tl ->
               let pid = 2 + i in
               Obs.Trace_event.process_name ~pid
                 (Printf.sprintf "sim:%s (cycles as us)"
                    ks.Experiments.Runner.kernel_name)
               :: Profile.Timeline.to_events tl ~pid))
         r.Experiments.Runner.kernels)
  in
  Obs.Trace_event.write ~path (host @ sim);
  Printf.printf "wrote %s (open in chrome://tracing or ui.perfetto.dev)\n" path

let scheme_arg ~doing =
  Arg.(
    value & opt string "baseline"
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:
          (Printf.sprintf
             "execution scheme to %s: baseline, CATT, fixed(N=..,M=..), \
              dynamic, ccws, daws, swl(..), bypass, catt-sa, ciao or ata"
             doing))

(* simulate-and-verify from the same Runner path the experiment grids
   use: the counters printed here are the ones the golden grid digests *)
let run_cmd =
  let run name scheme_str onchip sms =
    let cfg = config ~onchip_kb:onchip ~sms in
    match Experiments.Scheme.of_string scheme_str with
    | Error msg ->
      prerr_endline msg;
      exit 2
    | Ok scheme -> (
      let w = find_workload name in
      match Experiments.Runner.exec (Experiments.Runner.Request.make cfg w scheme) with
      | Error msg ->
        prerr_endline msg;
        exit 1
      | Ok r ->
        Printf.printf "%s under %s (%s): %d cycles total\n"
          r.Experiments.Runner.workload
          (Experiments.Runner.scheme_label scheme)
          (Experiments.Configs.label cfg)
          r.Experiments.Runner.total_cycles;
        List.iter
          (fun (ks : Experiments.Runner.kernel_stats) ->
            Printf.printf "  %-20s TLP (%2d,%2d)  %s\n"
              ks.Experiments.Runner.kernel_name
              (fst ks.Experiments.Runner.tlp)
              (snd ks.Experiments.Runner.tlp)
              (Format.asprintf "%a" Gpusim.Stats.pp ks.Experiments.Runner.stats);
            let s = ks.Experiments.Runner.stats in
            if s.Gpusim.Stats.bypass_transactions > 0 then
              Printf.printf "  %-20s bypassed-by-policy=%d\n" ""
                s.Gpusim.Stats.bypass_transactions;
            if s.Gpusim.Stats.ata_tag_hits > 0 then
              Printf.printf "  %-20s ata-tag-hits=%d ata-promotions=%d\n" ""
                s.Gpusim.Stats.ata_tag_hits s.Gpusim.Stats.ata_promotions)
          r.Experiments.Runner.kernels;
        match r.Experiments.Runner.verified with
        | Ok () -> print_endline "verification: OK"
        | Error msg ->
          Printf.printf "verification: FAILED (%s)\n" msg;
          exit 1)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "simulate a registered workload under a scheme and print per-kernel \
          counters (including the CIAO bypassed-by-policy and ATA tag-array \
          counters when non-zero), then check the CPU oracle")
    Term.(
      const run $ workload_arg $ scheme_arg ~doing:"run" $ Cli_common.onchip
      $ Cli_common.sms)

let profile_cmd =
  let scheme_arg = scheme_arg ~doing:"profile" in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"PATH"
          ~doc:
            "also record host spans and the per-SM warp issue/stall \
             timeline, and write them as Chrome trace-event JSON loadable \
             in chrome://tracing or Perfetto")
  in
  let run name scheme_str trace_out onchip sms =
    let cfg = config ~onchip_kb:onchip ~sms in
    match Experiments.Scheme.of_string scheme_str with
    | Error msg ->
      prerr_endline msg;
      exit 2
    | Ok scheme -> (
      let w = find_workload name in
      let timeline = trace_out <> None in
      if timeline then Obs.Span.enabled := true;
      match
        Experiments.Runner.exec
          (Experiments.Runner.Request.make ~profile:true ~timeline cfg w
             scheme)
      with
      | Error msg ->
        prerr_endline msg;
        exit 1
      | Ok r ->
        Printf.printf "%s, %s scheme, %d total cycles\n"
          r.Experiments.Runner.workload
          (Experiments.Runner.scheme_label scheme)
          r.Experiments.Runner.total_cycles;
        List.iter
          (fun (ks : Experiments.Runner.kernel_stats) ->
            match ks.Experiments.Runner.profile with
            | Some p ->
              Printf.printf "\n==== kernel %s ====\n\n%s"
                ks.Experiments.Runner.kernel_name
                (Profile.Collector.render p)
            | None -> ())
          r.Experiments.Runner.kernels;
        match trace_out with
        | Some path -> write_trace ~path r
        | None -> ())
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "simulate a registered workload with the profiler attached and \
          render per-SM cycle accounting plus per-array L1D heat maps; \
          $(b,--trace-out) additionally exports a Perfetto timeline")
    Term.(
      const run $ workload_arg $ scheme_arg $ trace_out_arg $ Cli_common.onchip
      $ Cli_common.sms)

let explain_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"emit the provenance record as JSON instead of rendering it")
  in
  let run name as_json onchip sms =
    let cfg = config ~onchip_kb:onchip ~sms in
    let w = find_workload name in
    if as_json then
      print_endline
        (Gpu_util.Json.to_string ~pretty:true
           (Experiments.Explain.workload_to_json cfg w))
    else print_string (Experiments.Explain.render cfg w)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "show the provenance of every CATT decision for a registered \
          workload: per-loop Eq. 8 footprints, the candidate (N, M) \
          sequence tried against the L1D capacity, and the sanitizer \
          gate outcome")
    Term.(
      const run $ workload_arg $ json_arg $ Cli_common.onchip $ Cli_common.sms)

let lint_cmd =
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:
            "mini-CUDA source file, or a registered workload name (each \
             kernel linted under its recorded launch geometry)")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"emit the diagnostics as deterministic JSON instead of text")
  in
  let run target as_json (gx, gy) (bx, by) onchip sms =
    let cfg = config ~onchip_kb:onchip ~sms in
    let targets =
      if Sys.file_exists target then
        let geo =
          { Catt.Analysis.grid_x = gx; grid_y = gy; block_x = bx; block_y = by }
        in
        List.map (fun k -> (geo, k)) (kernels_of target)
      else
        let w = find_workload target in
        List.map
          (fun (name, k) ->
            (Experiments.Runner.geometry_of_kernel w name, k))
          (Workloads.Workload.kernels w)
    in
    let diags =
      List.concat_map
        (fun (geo, kernel) ->
          Staticmodel.Lint.run
            (Experiments.Lint_all.machine_of cfg)
            ?occupancy:(Experiments.Lint_all.hint_of cfg geo kernel)
            geo kernel)
        targets
    in
    if as_json then
      print_endline
        (Gpu_util.Json.to_string ~pretty:true
           (Staticmodel.Lint.list_to_json diags))
    else if diags = [] then print_endline "no diagnostics"
    else List.iter (fun d -> print_endline (Staticmodel.Lint.to_string d)) diags
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "run the static cache-behavior lint: uncoalesced global accesses, \
          shared-memory bank conflicts, loop-invariant global loads, \
          occupancy limiters and over-capacity working sets, ranked by \
          severity with source positions")
    Term.(
      const run $ target_arg $ json_arg $ grid_arg $ block_arg
      $ Cli_common.onchip $ Cli_common.sms)

let bench_cmd =
  let module Bench = Experiments.Bench_core in
  let baseline_arg =
    Arg.(
      value
      & opt string "BENCH_gpusim.json"
      & info [ "baseline" ] ~docv:"PATH"
          ~doc:"committed throughput report to compare against")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "re-measure the gated stages and exit non-zero when any stage \
             regresses more than 10% below the committed cells/sec")
  in
  (* the serve stage lives above Bench_core in the dependency order, so
     it is composed into both the measurement and the retry path here *)
  let extra = [ (fun () -> Serve.Bench.stage ()) ] in
  let run baseline check jobs =
    if not check then begin
      (* without --check, just measure and print (no gate, no file write) *)
      let r = Bench.collect ~jobs ~extra () in
      List.iter
        (fun (s : Bench.stage) ->
          Printf.printf "  %-16s %8.2f cells/sec  %12.0f minor words/cell\n"
            s.Bench.name s.Bench.cells_per_sec s.Bench.minor_words_per_cell)
        (r.Bench.gated @ r.Bench.pool)
    end
    else if not (Sys.file_exists baseline) then begin
      Printf.eprintf
        "no committed baseline at %s — generate one with `bench --json %s`\n"
        baseline baseline;
      exit 2
    end
    else
      let committed =
        match
          Gpu_util.Json.of_string
            (In_channel.with_open_bin baseline In_channel.input_all)
        with
        | Error msg ->
          Printf.eprintf "%s: %s\n" baseline msg;
          exit 2
        | Ok json -> (
          match Bench.baseline_of_json json with
          | Ok stages -> stages
          | Error msg ->
            Printf.eprintf "%s: %s\n" baseline msg;
            exit 2)
      in
      let measured = Bench.stages () @ List.map (fun f -> f ()) extra in
      let remeasure name =
        Printf.printf "  %-16s re-measuring (ruling out timing noise)\n%!"
          name;
        if name = Serve.Bench.stage_name then Some (Serve.Bench.stage ())
        else Bench.remeasure_gated name
      in
      let verdicts =
        Bench.check_with_retry ~committed ~measured ~remeasure ()
      in
      print_string (Bench.render_verdicts verdicts);
      if not (List.for_all (fun v -> v.Bench.ok) verdicts) then begin
        print_endline "throughput gate: FAIL (>10% below committed baseline)";
        exit 1
      end;
      print_endline "throughput gate: PASS";
      (* the telemetry plane's disabled path must stay free on the serve
         loop too: the same A/A protocol, re-measured up to 3 times so a
         noisy scheduler slice cannot fail the gate on its own *)
      let rec serve_obs_gate attempt =
        let o = Serve.Bench.obs_overhead () in
        Printf.printf
          "  serve/obs A/A: disabled %.2f ms (%.1f%% apart), enabled %.2f ms \
           (+%.1f%%)\n\
           %!"
          o.Bench.disabled_ms o.Bench.disabled_ab_pct o.Bench.enabled_ms
          o.Bench.enabled_pct;
        if o.Bench.disabled_within_5pct then true
        else if attempt < 3 then begin
          Printf.printf
            "  serve/obs A/A above 5%% — re-measuring (attempt %d of 3)\n%!"
            (attempt + 1);
          serve_obs_gate (attempt + 1)
        end
        else false
      in
      if serve_obs_gate 1 then
        print_endline "serve obs-overhead gate: PASS"
      else begin
        print_endline "serve obs-overhead gate: FAIL (disabled A/A > 5%)";
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "measure grid-simulation throughput; with $(b,--check), gate it \
          against the committed BENCH_gpusim.json")
    Term.(const run $ baseline_arg $ check_arg $ Cli_common.jobs)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "catt_cli" ~doc:"compiler-assisted GPU thread throttling" in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            analyze_cmd; transform_cmd; check_cmd; disasm_cmd; run_cmd;
            profile_cmd; explain_cmd; lint_cmd; bench_cmd;
          ]))
