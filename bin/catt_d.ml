(** The CATT daemon: a long-running multi-tenant throttling service.

    [catt_d serve] reads JSON-lines requests ({!Serve.Protocol}) from
    stdin — or accepts connections on a Unix-domain socket with
    [--socket] — dispatches them across a domain pool with bounded
    admission control, and answers on stdout / the connection.

    The telemetry plane is opt-in per flag: [--trace-out] arms span
    tracing and writes one Perfetto file at shutdown (request spans
    correlated by trace id across server, flight, pool and runner
    layers), [--access-log] streams one structured JSON line per
    request, and [--slow-ms] arms a sampled slow-request log.

    [catt_d stats] is the matching admin client: it connects to a
    serving socket, issues one [stats] request and renders the live
    envelope — queue gauges, per-tenant ledgers with histogram
    latency quantiles — as a top-style table ([--watch] refreshes it
    in place, [--json] emits the raw payload).

    SIGTERM and SIGINT flip a stop flag: the request loop drains every
    in-flight request, joins all worker domains and exits 0 — no
    orphaned domains, no half-written cache entries (stores are atomic
    temp-file renames). *)

open Cmdliner
module Json = Gpu_util.Json

let stop_flag = Atomic.make false

let install_signal_handlers () =
  let note _ = Atomic.set stop_flag true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle note);
  Sys.set_signal Sys.sigint (Sys.Signal_handle note);
  (* a client hanging up mid-response must not kill the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* one Perfetto file for the whole run: the host process row carries a
   named thread track per domain, so request spans from the acceptor and
   the worker domains stack under one roof, correlated by the trace_id
   argument each slice carries *)
let write_trace path =
  let spans = Obs.Span.finished () in
  let tracks =
    List.sort_uniq compare (List.map (fun s -> s.Obs.Span.track) spans)
  in
  let events =
    (Obs.Trace_event.process_name ~pid:1 "catt_d host"
    :: List.map
         (fun tid ->
           Obs.Trace_event.thread_name ~pid:1 ~tid
             (Printf.sprintf "domain %d" tid))
         tracks)
    @ Obs.Trace_event.of_spans ~pid:1 spans
  in
  Obs.Trace_event.write ~path events;
  prerr_endline
    (Printf.sprintf "catt_d: wrote %d spans to %s" (List.length spans) path)

let serve socket jobs queue_cap tenant_quota cfg no_cache cache_dir trace_out
    access_log slow_ms slow_sample =
  Experiments.Cache.enabled := not no_cache;
  (match cache_dir with
  | Some d -> Experiments.Cache.dir := d
  | None -> ());
  if trace_out <> None then Obs.Span.enabled := true;
  (match access_log with
  | Some path -> Obs.Log.open_path path
  | None -> ());
  install_signal_handlers ();
  let server =
    Serve.Server.create ~cfg ~jobs ~queue_cap ~tenant_quota ?slow_ms
      ~slow_sample ()
  in
  let stop () = Atomic.get stop_flag in
  (match socket with
  | Some path ->
    prerr_endline
      (Printf.sprintf "catt_d: serving on %s (queue cap %d)" path queue_cap);
    Serve.Server.serve_socket server ~path ~stop
  | None -> Serve.Server.serve_stdio server ~stop);
  Serve.Server.shutdown server;
  (match trace_out with Some path -> write_trace path | None -> ());
  Obs.Log.close ();
  0

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"serve connections on a Unix-domain socket instead of stdio")

let queue_cap =
  Arg.(
    value & opt int 16
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:
          "admission-control cap on in-flight requests; beyond it requests \
           are refused with an $(i,overloaded) response")

let tenant_quota =
  Arg.(
    value & opt int 0
    & info [ "tenant-quota" ] ~docv:"N"
        ~doc:
          "max in-flight requests per tenant, under the global queue cap; \
           beyond it a tenant's requests are refused with an \
           $(i,overloaded) response and ledgered as $(i,quota_refusals) \
           (0 = unlimited)")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"root of the persistent result cache (tenants shard below it)")

let jobs =
  Arg.(
    value & opt int 4
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"worker domains handling requests (0 = one per core)")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"PATH"
        ~doc:
          "enable span tracing and write a Perfetto (Chrome trace-event) \
           file at shutdown; request spans carry their trace_id so the \
           server, single-flight, pool and runner layers correlate")

let access_log =
  Arg.(
    value
    & opt (some string) None
    & info [ "access-log" ] ~docv:"PATH"
        ~doc:
          "append one structured JSON line per request (tenant, kind, \
           scheme, source, outcome, queue depth, latency, trace_id)")

let slow_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "arm the slow-request log: requests at or over this latency are \
           counted and (sampled) written at warn level to the access log")

let slow_sample =
  Arg.(
    value & opt int 1
    & info [ "slow-sample" ] ~docv:"N"
        ~doc:"write 1 of every N slow requests (with $(b,--slow-ms))")

let serve_cmd =
  let doc = "serve analyze/explain/simulate/stats requests as JSON lines" in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const serve $ socket $ jobs $ queue_cap $ tenant_quota
      $ Cli_common.config $ Cli_common.no_cache $ cache_dir $ trace_out
      $ access_log $ slow_ms $ slow_sample)

(* ------------------------------------------------------------------ *)
(* stats: the admin client                                             *)
(* ------------------------------------------------------------------ *)

(* one connection per snapshot: connect, one request line, one response
   line — stateless, so --watch survives server restarts *)
let fetch_stats path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    Fun.protect
      ~finally:(fun () ->
        try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    @@ fun () ->
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
    | () -> (
      let line =
        Serve.Protocol.request_to_line
          {
            Serve.Protocol.id = "stats";
            tenant = "admin";
            trace_id = None;
            kind = Serve.Protocol.Stats;
          }
        ^ "\n"
      in
      let b = Bytes.of_string line in
      let len = Bytes.length b in
      let pos = ref 0 in
      while !pos < len do
        match Unix.write fd b !pos (len - !pos) with
        | n -> pos := !pos + n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec read_line () =
        match String.index_opt (Buffer.contents buf) '\n' with
        | Some i -> Ok (String.sub (Buffer.contents buf) 0 i)
        | None -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line ()
          | exception Unix.Unix_error (e, _, _) ->
            Error (Unix.error_message e)
          | 0 -> Error "connection closed before a response arrived"
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            read_line ())
      in
      match read_line () with
      | Error _ as e -> e
      | Ok line -> (
        match Json.of_string line with
        | Error msg -> Error (Printf.sprintf "unparseable response: %s" msg)
        | Ok j -> (
          match Serve.Protocol.response_of_json j with
          | Error msg -> Error msg
          | Ok { Serve.Protocol.result = Ok payload; _ } -> Ok payload
          | Ok { Serve.Protocol.result = Error (code, msg); _ } ->
            Error
              (Printf.sprintf "%s: %s"
                 (Serve.Protocol.error_code_label code)
                 msg)))))

(* top-style view of the stats envelope: a one-line server header, then
   one row per tenant with hit rate and histogram latency quantiles *)
let render_stats payload =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  (match Json.member_opt "server" payload with
  | Some srv ->
    let i name = Json.to_int (Json.member name srv) in
    add "queue %d/%d  flights %d  connections %d  jobs %d" (i "queue_depth")
      (i "queue_cap")
      (i "flights_in_progress")
      (i "live_connections") (i "jobs")
  | None -> add "(no live server block)");
  (match Json.member_opt "metrics" payload with
  | Some metrics -> (
    match Json.member_opt "process.uptime_us" metrics with
    | Some (Json.Int us) -> add "  up %.0fs" (float_of_int us /. 1e6)
    | _ -> ())
  | None -> ());
  add "\n\n";
  add "%-16s %8s %6s %6s %6s %6s %9s %9s\n" "TENANT" "REQ" "HIT%" "ERR"
    "OVER" "QUOTA" "P50us" "P99us";
  List.iter
    (fun t ->
      let cache = Json.member "cache" t in
      let lat = Json.member "latency_us" t in
      add "%-16s %8d %5.1f%% %6d %6d %6d %9d %9d\n"
        (Json.to_str (Json.member "tenant" t))
        (Json.to_int (Json.member "requests" t))
        (100. *. Json.to_float (Json.member "hit_rate" cache))
        (Json.to_int (Json.member "errors" t))
        (Json.to_int (Json.member "overloaded" t))
        (Json.to_int (Json.member "quota_refusals" t))
        (Json.to_int (Json.member "p50" lat))
        (Json.to_int (Json.member "p99" lat)))
    (Json.to_list (Json.member "tenants" payload));
  Buffer.contents b

let stats socket as_json watch interval =
  let snapshot () =
    match fetch_stats socket with
    | Ok payload ->
      if as_json then print_endline (Json.to_string payload)
      else print_string (render_stats payload);
      true
    | Error msg ->
      Printf.printf "catt_d stats: %s\n" msg;
      false
  in
  if not watch then begin
    if snapshot () then 0
    else begin
      flush stdout;
      1
    end
  end
  else begin
    install_signal_handlers ();
    let rec loop () =
      if Atomic.get stop_flag then 0
      else begin
        print_string "\027[2J\027[H";
        ignore (snapshot () : bool) (* keep watching through restarts *);
        flush stdout;
        (try Unix.sleepf interval
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        loop ()
      end
    in
    loop ()
  end

let stats_socket =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket of the serving daemon")

let stats_json =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"emit the raw stats payload instead of the table")

let stats_watch =
  Arg.(
    value & flag
    & info [ "watch" ]
        ~doc:"refresh the table in place until interrupted (top-style)")

let stats_interval =
  Arg.(
    value & opt float 2.
    & info [ "interval" ] ~docv:"SECONDS"
        ~doc:"refresh period with $(b,--watch)")

let stats_cmd =
  let doc =
    "query a serving daemon's live stats (tenants, queue, latency \
     histograms) and render them as a table"
  in
  Cmd.v
    (Cmd.info "stats" ~doc)
    Term.(
      const stats $ stats_socket $ stats_json $ stats_watch $ stats_interval)

let () =
  let doc = "CATT throttling daemon" in
  let info = Cmd.info "catt_d" ~doc in
  exit (Cmd.eval' (Cmd.group info [ serve_cmd; stats_cmd ]))
