(** The CATT daemon: a long-running multi-tenant throttling service.

    [catt_d serve] reads JSON-lines requests ({!Serve.Protocol}) from
    stdin — or accepts connections on a Unix-domain socket with
    [--socket] — dispatches them across a domain pool with bounded
    admission control, and answers on stdout / the connection.

    SIGTERM and SIGINT flip a stop flag: the request loop drains every
    in-flight request, joins all worker domains and exits 0 — no
    orphaned domains, no half-written cache entries (stores are atomic
    temp-file renames). *)

open Cmdliner

let stop_flag = Atomic.make false

let install_signal_handlers () =
  let note _ = Atomic.set stop_flag true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle note);
  Sys.set_signal Sys.sigint (Sys.Signal_handle note);
  (* a client hanging up mid-response must not kill the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let serve socket jobs queue_cap tenant_quota cfg no_cache cache_dir =
  Experiments.Cache.enabled := not no_cache;
  (match cache_dir with
  | Some d -> Experiments.Cache.dir := d
  | None -> ());
  install_signal_handlers ();
  let server = Serve.Server.create ~cfg ~jobs ~queue_cap ~tenant_quota () in
  let stop () = Atomic.get stop_flag in
  (match socket with
  | Some path ->
    prerr_endline
      (Printf.sprintf "catt_d: serving on %s (queue cap %d)" path queue_cap);
    Serve.Server.serve_socket server ~path ~stop
  | None -> Serve.Server.serve_stdio server ~stop);
  Serve.Server.shutdown server;
  0

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"serve connections on a Unix-domain socket instead of stdio")

let queue_cap =
  Arg.(
    value & opt int 16
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:
          "admission-control cap on in-flight requests; beyond it requests \
           are refused with an $(i,overloaded) response")

let tenant_quota =
  Arg.(
    value & opt int 0
    & info [ "tenant-quota" ] ~docv:"N"
        ~doc:
          "max in-flight requests per tenant, under the global queue cap; \
           beyond it a tenant's requests are refused with an \
           $(i,overloaded) response and ledgered as $(i,quota_refusals) \
           (0 = unlimited)")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"root of the persistent result cache (tenants shard below it)")

let jobs =
  Arg.(
    value & opt int 4
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"worker domains handling requests (0 = one per core)")

let serve_cmd =
  let doc = "serve analyze/explain/simulate/stats requests as JSON lines" in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const serve $ socket $ jobs $ queue_cap $ tenant_quota
      $ Cli_common.config $ Cli_common.no_cache $ cache_dir)

let () =
  let doc = "CATT throttling daemon" in
  let info = Cmd.info "catt_d" ~doc in
  exit (Cmd.eval' (Cmd.group info [ serve_cmd ]))
