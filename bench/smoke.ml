(** Smoke test for the throughput-measurement machinery (the [@bench-smoke]
    alias, pulled into [dune runtest]).

    Runs the gated stages over a 2-workload grid, writes the JSON report,
    reads it back and passes it through the gate against itself.  Asserts
    the plumbing — stage measurement, serialization, gate comparison —
    not any throughput number: absolute cells/sec belongs to the full
    [bench --json] run and the [catt_cli bench --check] gate. *)

module Bench = Experiments.Bench_core

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let workloads = List.map Workloads.Registry.find [ "ATAX"; "BT" ] in
  let r =
    (* a small pipelined-serve batch rides along so the serve stage's
       plumbing (pipe feeding, response draining, memo warm-up) is
       exercised on every `dune runtest`, not only in full bench runs *)
    Bench.collect ~workloads ~jobs:1
      ~extra:[ Serve.Bench.stage ~requests:64 ]
      ()
  in
  if r.Bench.gated = [] then fail "no gated stages measured";
  List.iter
    (fun (s : Bench.stage) ->
      if not (Float.is_finite s.Bench.cells_per_sec && s.Bench.cells_per_sec > 0.)
      then fail "stage %s: bad cells/sec %f" s.Bench.name s.Bench.cells_per_sec;
      if s.Bench.minor_words_per_cell <= 0. then
        fail "stage %s: implausible allocation rate" s.Bench.name)
    (r.Bench.gated @ r.Bench.pool);
  let tmp = Filename.temp_file "bench-smoke" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      Bench.write_json tmp r;
      let json =
        match
          Gpu_util.Json.of_string
            (In_channel.with_open_bin tmp In_channel.input_all)
        with
        | Ok j -> j
        | Error msg -> fail "report does not reparse: %s" msg
      in
      let committed =
        match Bench.baseline_of_json json with
        | Ok stages -> stages
        | Error msg -> fail "report does not decode: %s" msg
      in
      let verdicts = Bench.check ~committed ~measured:r.Bench.gated in
      if List.length verdicts <> List.length r.Bench.gated then
        fail "gate dropped stages: %d of %d" (List.length verdicts)
          (List.length r.Bench.gated);
      List.iter
        (fun v ->
          if not v.Bench.ok then
            fail "self-comparison regressed at %s" v.Bench.stage_name)
        verdicts;
      (* the obs A/A stage must ride along in the report the bench gate
         reads: spans disabled twice (A/A, <= 5% apart) vs enabled once *)
      let module J = Gpu_util.Json in
      let obs = J.member "obs" json in
      List.iter
        (fun field ->
          match J.member_opt field obs with
          | Some (J.Float _) -> ()
          | _ -> fail "obs section missing float field %s" field)
        [ "disabled_ms"; "disabled_ab_pct"; "enabled_ms"; "enabled_pct" ];
      if not (J.to_bool (J.member "disabled_within_5pct" obs)) then
        fail "obs disabled-path A/A overhead above 5%%: %.1f%% apart"
          r.Bench.obs.Bench.disabled_ab_pct;
      if not r.Bench.obs.Bench.disabled_within_5pct then
        fail "obs report/JSON verdict mismatch");
  if !Obs.Span.enabled then fail "bench left span tracing enabled";
  if Obs.Span.finished () <> [] then fail "bench left spans in the sink";
  Printf.printf
    "bench-smoke: OK (%d gated stages, %d pool stages, obs A/A %.1f%%)\n"
    (List.length r.Bench.gated)
    (List.length r.Bench.pool)
    r.Bench.obs.Bench.disabled_ab_pct
