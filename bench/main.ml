(** Bechamel benchmarks — one per reproduced table/figure, plus the
    ablations DESIGN.md §5 calls out.

    Each bench measures a representative, fixed-size slice of the artifact's
    pipeline (a full regeneration takes minutes and belongs to
    [bin/experiments]); the figures themselves compare the reported
    estimates: e.g. the fig7 pair shows CATT's simulated kernel completing
    in a fraction of the baseline's wall-clock, because simulated cycles
    dominate simulation time. *)

open Bechamel
open Toolkit

let cfg_max = Gpusim.Config.scaled ~num_sms:2 ~onchip_bytes:(32 * 1024) ()
let cfg_small = Gpusim.Config.scaled ~num_sms:2 ~onchip_bytes:(16 * 1024) ()

(* a small contended kernel (divergent ATAX row) and a small coalesced one *)
let divergent_src =
  {|
#define NX 512
#define NY 256
__global__ void div_kernel(float *A, float *x, float *tmp) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < NX) {
    for (int j = 0; j < NY; j++) {
      tmp[i] += A[i * NY + j] * x[j];
    }
  }
}
|}

let coalesced_src =
  {|
#define NX 512
#define NY 256
__global__ void coal_kernel(float *A, float *x, float *tmp) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  if (j < NY) {
    for (int i = 0; i < NX; i++) {
      tmp[j] += A[i * NY + j] * x[i];
    }
  }
}
|}

let geo = { Catt.Analysis.grid_x = 2; grid_y = 1; block_x = 256; block_y = 1 }

let parse = Minicuda.Parser.parse_kernel

let divergent_kernel = parse divergent_src
let coalesced_kernel = parse coalesced_src

let catt_transformed cfg kernel =
  match Catt.Driver.analyze cfg kernel geo with
  | Ok t -> t.Catt.Driver.transformed
  | Error msg -> failwith msg

(* simulate one small kernel launch end to end *)
let simulate ?profile ?(runtime_throttle = `None) ?(sched = Gpusim.Sm.Gto) cfg
    kernel =
  let prog = Gpusim.Codegen.compile_kernel kernel in
  let dev = Gpusim.Gpu.create cfg in
  let nx = 512 and ny = 256 in
  Gpusim.Gpu.upload dev "A" (Array.init (nx * ny) (fun i -> float_of_int (i land 7)));
  Gpusim.Gpu.upload dev "x" (Array.init nx (fun i -> float_of_int (i land 3)));
  Gpusim.Gpu.alloc dev "tmp" nx;
  let launch =
    Gpusim.Gpu.default_launch ?profile ~runtime_throttle ~sched ~prog
      ~grid:(2, 1) ~block:(256, 1)
      [ Gpusim.Gpu.Arr "A"; Gpusim.Gpu.Arr "x"; Gpusim.Gpu.Arr "tmp" ]
  in
  let stats, _ = Gpusim.Gpu.launch dev launch in
  stats.Gpusim.Stats.cycles

let all_cs_kernels =
  List.concat_map
    (fun (w : Workloads.Workload.t) -> List.map snd (Workloads.Workload.kernels w))
    Workloads.Registry.cs

let stage name f = Test.make ~name (Staged.stage f)

(* --------------------- per-artifact benches ------------------------ *)

let bench_table3 =
  (* the static side of Table 3: the full CATT pass over every CS kernel *)
  stage "table3/analyze-all-CS-kernels" (fun () ->
      List.iter
        (fun kernel ->
          ignore (Catt.Driver.analyze cfg_max kernel geo))
        all_cs_kernels)

let bench_fig2 =
  stage "fig2/traced-divergent-run" (fun () ->
      let prog = Gpusim.Codegen.compile_kernel divergent_kernel in
      let dev = Gpusim.Gpu.create cfg_max in
      Gpusim.Gpu.upload dev "A" (Array.make (512 * 256) 1.);
      Gpusim.Gpu.upload dev "x" (Array.make 512 1.);
      Gpusim.Gpu.alloc dev "tmp" 512;
      let launch =
        Gpusim.Gpu.default_launch ~trace:true ~prog ~grid:(2, 1) ~block:(256, 1)
          [ Gpusim.Gpu.Arr "A"; Gpusim.Gpu.Arr "x"; Gpusim.Gpu.Arr "tmp" ]
      in
      let _, trace = Gpusim.Gpu.launch dev launch in
      ignore (Gpusim.Trace.length trace))

let bench_fig3 =
  let variant =
    Workloads.Microbench.variant ~l1d_bytes:(32 * 1024) ~line_bytes:128
      ~warp_size:32 ~fill_warps:8 ~reps:2
  in
  stage "fig3/microbench-point" (fun () ->
      ignore (Workloads.Microbench.run cfg_max variant ~warps:8))

let bench_fig6 =
  stage "fig6/hit-rate-catt" (fun () ->
      ignore (simulate cfg_max (catt_transformed cfg_max divergent_kernel)))

let bench_fig7_baseline =
  stage "fig7/cs-baseline" (fun () -> ignore (simulate cfg_max divergent_kernel))

let bench_fig7_catt =
  let transformed = catt_transformed cfg_max divergent_kernel in
  stage "fig7/cs-catt" (fun () -> ignore (simulate cfg_max transformed))

let bench_fig8_ci =
  (* CI representative: CATT leaves it alone, so one run stands for both *)
  stage "fig8/ci-coalesced" (fun () -> ignore (simulate cfg_max coalesced_kernel))

let bench_fig9_sweep_point =
  let split =
    Catt.Transform.warp_throttle_all divergent_kernel ~n:4 ~warps_per_tb:8
      ~warp_size:32 ~one_dim_block:true
  in
  stage "fig9/fixed-factor-point" (fun () -> ignore (simulate cfg_max split))

let bench_fig10_small_l1d =
  let transformed = catt_transformed cfg_small divergent_kernel in
  stage "fig10/small-l1d-catt" (fun () -> ignore (simulate cfg_small transformed))

let bench_overhead =
  stage "overhead/single-kernel-analysis" (fun () ->
      ignore (Catt.Driver.analyze cfg_max divergent_kernel geo))

(* ------------------------- ablations ------------------------------- *)

let bench_ablation_gto =
  stage "ablation-scheduler/gto" (fun () ->
      ignore (simulate ~sched:Gpusim.Sm.Gto cfg_max divergent_kernel))

let bench_ablation_lrr =
  stage "ablation-scheduler/lrr" (fun () ->
      ignore (simulate ~sched:Gpusim.Sm.Lrr cfg_max divergent_kernel))

let bench_ablation_dynamic =
  stage "ablation-dynamic/dyncta-like" (fun () ->
      ignore (simulate ~runtime_throttle:`Dyncta cfg_max divergent_kernel))

let bench_ablation_ccws =
  stage "ablation-dynamic/ccws-like" (fun () ->
      ignore (simulate ~runtime_throttle:`Ccws cfg_max divergent_kernel))

let bench_ablation_order =
  (* TB-first instead of the paper's warp-first ordering: force a pure
     TB-level plan on the divergent kernel and run it *)
  let tb_only =
    match
      Catt.Transform.plan_tb_throttle cfg_max ~tb_threads:256
        ~num_regs:
          (Gpusim.Codegen.compile_kernel divergent_kernel).Gpusim.Bytecode.num_regs
        ~shared_bytes:0 ~target_tbs:1
    with
    | Some (_, dummy) ->
      Catt.Transform.tb_throttle divergent_kernel ~dummy_elems:(max 1 (dummy / 4))
    | None -> divergent_kernel
  in
  stage "ablation-order/tb-first" (fun () -> ignore (simulate cfg_max tb_only))

let bench_profiler_disabled =
  (* the hot paths now carry [match job.prof with None -> ...] guards;
     this is the same simulation as fig7/cs-baseline, named so the table
     shows the disabled-profiler cost side by side with the enabled one *)
  stage "profiler/disabled" (fun () -> ignore (simulate cfg_max divergent_kernel))

let bench_profiler_enabled =
  stage "profiler/enabled" (fun () ->
      let p = Profile.Collector.create () in
      ignore (simulate ~profile:p cfg_max divergent_kernel))

let bench_parser =
  stage "frontend/parse-all-workloads" (fun () ->
      List.iter
        (fun (w : Workloads.Workload.t) -> ignore (Workloads.Workload.parse w))
        Workloads.Registry.all)

(* the parallel engine: the same four independent simulations fanned out
   across a pool of [jobs] domains — at --jobs 1 this is the sequential
   baseline the speedup is measured against *)
let bench_pool_fanout ~jobs =
  let kernels =
    [ divergent_kernel; coalesced_kernel; divergent_kernel; coalesced_kernel ]
  in
  stage
    (Printf.sprintf "engine/pool-fanout-x%d" jobs)
    (fun () ->
      ignore (Gpu_util.Pool.parallel_map ~jobs (simulate cfg_max) kernels))

let tests ~jobs =
  Test.make_grouped ~name:"catt"
    [
      bench_table3;
      bench_fig2;
      bench_fig3;
      bench_fig6;
      bench_fig7_baseline;
      bench_fig7_catt;
      bench_fig8_ci;
      bench_fig9_sweep_point;
      bench_fig10_small_l1d;
      bench_overhead;
      bench_ablation_gto;
      bench_ablation_lrr;
      bench_ablation_dynamic;
      bench_ablation_ccws;
      bench_ablation_order;
      bench_profiler_disabled;
      bench_profiler_enabled;
      bench_parser;
      bench_pool_fanout ~jobs;
    ]

(* ---------------------- profiler overhead -------------------------- *)

(* Direct median-of-runs timing, printed after the bechamel table with an
   explicit <= 5% verdict.  Two batches of the *disabled* configuration
   are interleaved and compared (an A/A measurement): the disabled path
   differs from a profiler-free build only by per-event [None] branches,
   so its overhead is bounded by the A/A delta plus measurement noise.
   The enabled run is reported alongside for context — it is allowed to
   cost more; only disabled-at-config must stay within 5%. *)
let profiler_overhead_report () =
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let reps = 7 in
  let a = Array.make reps 0. and b = Array.make reps 0. and en = Array.make reps 0. in
  ignore (simulate cfg_max divergent_kernel);
  (* warm-up *)
  for i = 0 to reps - 1 do
    a.(i) <- time (fun () -> simulate cfg_max divergent_kernel);
    b.(i) <- time (fun () -> simulate cfg_max divergent_kernel);
    en.(i) <-
      time (fun () ->
          let p = Profile.Collector.create () in
          simulate ~profile:p cfg_max divergent_kernel)
  done;
  let med = Gpu_util.Stats.median in
  let ma = med a and mb = med b and me = med en in
  let disabled_overhead = 100. *. (abs_float (ma -. mb) /. min ma mb) in
  let enabled_overhead = 100. *. ((me -. min ma mb) /. min ma mb) in
  Printf.printf
    "\nprofiler overhead (div_kernel, median of %d runs per batch):\n" reps;
  Printf.printf "  disabled A/B batches: %.2f ms vs %.2f ms -> %.1f%% apart\n"
    (1000. *. ma) (1000. *. mb) disabled_overhead;
  Printf.printf "  enabled collection:   %.2f ms -> +%.1f%% vs disabled\n"
    (1000. *. me) enabled_overhead;
  Printf.printf "  disabled-profiler overhead <= 5%%: %s\n"
    (if disabled_overhead <= 5. then "PASS" else "FAIL")

(* Same A/A protocol for the obs span-tracing subsystem: the guarded
   hooks threaded through the driver, runner and simulator must cost
   nothing measurable while [Obs.Span.enabled] is false. *)
let obs_overhead_report () =
  let module B = Experiments.Bench_core in
  let o = B.obs_overhead () in
  Printf.printf "\nobs (span tracing) overhead (bench_div, A/A batches):\n";
  Printf.printf "  disabled A/B batches: %.2f ms -> %.1f%% apart\n"
    o.B.disabled_ms o.B.disabled_ab_pct;
  Printf.printf "  tracing enabled:      %.2f ms -> +%.1f%% vs disabled\n"
    o.B.enabled_ms o.B.enabled_pct;
  Printf.printf "  disabled-obs overhead <= 5%%: %s\n"
    (if o.B.disabled_within_5pct then "PASS" else "FAIL")

(* The same A/A protocol once more, over the pipelined serve loop: the
   telemetry plane threaded through catt_d (trace-id minting, the
   access/slow-log guards, per-tenant histogram recording) must cost
   nothing measurable while tracing and logging are off. *)
let serve_obs_overhead_report () =
  let module B = Experiments.Bench_core in
  let o = Serve.Bench.obs_overhead () in
  Printf.printf
    "\nserve obs (tracing + logging) overhead (serve/pipelined, A/A batches):\n";
  Printf.printf "  disabled A/B batches: %.2f ms -> %.1f%% apart\n"
    o.B.disabled_ms o.B.disabled_ab_pct;
  Printf.printf "  tracing + logging on: %.2f ms -> +%.1f%% vs disabled\n"
    o.B.enabled_ms o.B.enabled_pct;
  Printf.printf "  disabled-telemetry overhead <= 5%%: %s\n"
    (if o.B.disabled_within_5pct then "PASS" else "FAIL")

let run_benchmarks jobs =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances (tests ~jobs) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  print_endline "benchmark                                    ns/run";
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%14.0f" e
        | _ -> "            n/a"
      in
      Printf.printf "%-42s %s\n" name estimate)
    rows;
  print_endline
    "\n(ns of host wall-clock per run of each artifact's representative slice;\n\
     simulated-cycle comparisons between schemes are what bin/experiments\n\
     reports — wall-clock here tracks simulator work, i.e. memory\n\
     transactions, not simulated time)";
  profiler_overhead_report ();
  obs_overhead_report ();
  serve_obs_overhead_report ()

(* --json: skip the bechamel table and emit the machine-readable
   throughput report (cells/sec + allocation rates per stage) that
   `catt_cli bench --check` gates future changes against.  The stages are
   measured by {!Experiments.Bench_core} — the same code the gate runs. *)
let run jobs json =
  match json with
  | None -> run_benchmarks jobs
  | Some path ->
    let r =
      Experiments.Bench_core.collect ~jobs
        ~extra:[ (fun () -> Serve.Bench.stage ()) ]
        ()
    in
    Experiments.Bench_core.write_json path r;
    List.iter
      (fun (s : Experiments.Bench_core.stage) ->
        Printf.printf "  %-16s %8.2f cells/sec  %12.0f minor words/cell\n"
          s.Experiments.Bench_core.name s.Experiments.Bench_core.cells_per_sec
          s.Experiments.Bench_core.minor_words_per_cell)
      (r.Experiments.Bench_core.gated @ r.Experiments.Bench_core.pool);
    Printf.printf "wrote %s\n" path

let () =
  let open Cmdliner in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "write the BENCH_gpusim.json throughput report to $(docv) \
             instead of running the bechamel table")
  in
  let cmd =
    Cmd.v
      (Cmd.info "bench" ~doc:"bechamel micro-benchmarks of the artifact slices")
      Term.(const run $ Cli_common.jobs $ json)
  in
  exit (Cmd.eval cmd)
