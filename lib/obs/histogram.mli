(** Log-bucketed (HDR-style) histogram of non-negative integers —
    latencies in microseconds, typically.

    Bucket boundaries are fixed (a pure function of the value, no
    per-instance configuration): values below {!sub} get one exact
    bucket each, and every octave above is split into {!sub} linear
    sub-buckets, bounding any bucket's relative width by [1/sub]
    (12.5%).  Consequences the tests pin down:

    - two histograms (from different domains, processes, windows) merge
      by adding bucket counts — associative, commutative, lossless;
    - a quantile is answered as the exact [(lower, upper)] value bounds
      of the bucket holding the nearest-rank sample, so the true
      nearest-rank answer provably lies within the returned bounds;
    - memory is a fixed {!bucket_count} cells regardless of sample
      count — a long-running daemon's ledgers stay flat.

    Recording is lock-light (two [Atomic.fetch_and_add]s) and safe from
    any domain; readers never block writers. *)

type t

val sub : int
(** Sub-buckets per octave (8). *)

val bucket_count : int
(** Number of fixed buckets (same for every histogram). *)

val bucket_of : int -> int
(** Bucket index for a value; negative values clamp to 0. *)

val bounds : int -> int * int
(** Inclusive [(lower, upper)] value bounds of a bucket index. *)

val create : unit -> t
val record : t -> int -> unit
val count : t -> int

val clear : t -> unit
(** Zero every bucket (tests / {!Metrics.reset}). *)

val merge : t -> t -> t
(** Fresh histogram holding the bucket-wise sum; both inputs are left
    untouched. *)

val quantile_bounds : t -> float -> (int * int) option
(** [quantile_bounds t p] (with [p] in percent, e.g. [99.]) returns the
    value bounds of the bucket containing the nearest-rank [p]-th
    percentile sample, or [None] when empty. *)

val quantile : t -> float -> int
(** The upper bound of {!quantile_bounds} — a conservative single-value
    answer, at most one bucket width above the exact nearest-rank
    value.  [0] when empty. *)

val max_value : t -> int
(** Upper bound of the highest non-empty bucket; [0] when empty. *)

type summary = {
  s_count : int;
  s_p50 : int;
  s_p90 : int;
  s_p99 : int;
  s_max : int;
}

val summary : t -> summary

val export : t -> (int * int) list
(** Sparse [(bucket, count)] pairs, ascending, non-zero only — the
    serialization currency (obs sits below the JSON codec, so callers
    encode this list).  [import (export t)] is an exact copy. *)

val import : (int * int) list -> t
(** Inverse of {!export}; out-of-range buckets and non-positive counts
    are ignored. *)
