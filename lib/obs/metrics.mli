(** Process-wide metrics: named monotonic counters, gauges, sampled
    gauge callbacks, and log-bucketed histograms.
    Always on (not gated by {!Span.enabled}). *)

type value =
  | Count of int
  | Gauge of float
  | Hist of Histogram.summary
      (** Registered histograms appear in snapshots as their quantile
          summary; hold the {!Histogram.t} handle for exact bounds. *)

type counter
(** Handle to a registered counter; cache it at module init and use the
    lock-free [incr]/[add] on hot paths. *)

val counter : string -> counter
(** Find-or-register the counter with this name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set_gauge : string -> float -> unit
(** Last write wins. *)

val max_gauge : string -> float -> unit
(** Keep the maximum of all writes (e.g. peak queue depth). *)

val gauge_fn : string -> (unit -> float) -> unit
(** Register (replacing any previous holder of the name) a callback
    sampled at {!snapshot} time — for live values that already exist as
    program state (in-flight counts, connection counts) and would drift
    if mirrored into a stored gauge.  Callbacks run outside the
    registry lock and must be cheap and non-raising. *)

val histogram : string -> Histogram.t
(** Find-or-register a histogram; record into the returned handle with
    {!Histogram.record}. *)

val snapshot : unit -> (string * value) list
(** All registered metrics sorted by name, plus a computed
    ["process.uptime_us"] counter.  Callback gauges are sampled at this
    moment. *)

val reset : unit -> unit
(** Zero every registered counter, gauge and histogram (tests).
    Callback gauges are left registered — they reflect live state. *)
