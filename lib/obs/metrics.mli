(** Process-wide metrics: named monotonic counters and gauges.
    Always on (not gated by {!Span.enabled}). *)

type value =
  | Count of int
  | Gauge of float

type counter
(** Handle to a registered counter; cache it at module init and use the
    lock-free [incr]/[add] on hot paths. *)

val counter : string -> counter
(** Find-or-register the counter with this name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set_gauge : string -> float -> unit
(** Last write wins. *)

val max_gauge : string -> float -> unit
(** Keep the maximum of all writes (e.g. peak queue depth). *)

val snapshot : unit -> (string * value) list
(** All registered metrics sorted by name, plus a computed
    ["process.uptime_us"] counter. *)

val reset : unit -> unit
(** Zero every registered counter and gauge (tests). *)
