(** Monotone process clock (microseconds since first use). *)

val now_us : unit -> int
(** Microseconds elapsed since the process epoch.  Non-decreasing across
    all domains, even if the wall clock steps backwards. *)
