(** Structured JSON event log (see log.mli).

    Self-contained JSON emission — obs sits below the Gpu_util.Json
    codec, so the writer renders lines itself, like Trace_event. *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_label = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let enabled = ref false
let threshold = ref Info

let lock = Mutex.create ()
let sink : out_channel option ref = ref None
let owns_sink = ref false

let set_channel ?(close_on_reset = false) oc =
  Mutex.lock lock;
  (match !sink with
  | Some old when !owns_sink -> ( try close_out old with Sys_error _ -> ())
  | _ -> ());
  sink := Some oc;
  owns_sink := close_on_reset;
  Mutex.unlock lock;
  enabled := true

let open_path path =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  set_channel ~close_on_reset:true oc

let close () =
  enabled := false;
  Mutex.lock lock;
  (match !sink with
  | Some oc ->
      (try flush oc with Sys_error _ -> ());
      if !owns_sink then ( try close_out oc with Sys_error _ -> ())
  | None -> ());
  sink := None;
  owns_sink := false;
  Mutex.unlock lock

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_attr buf (k, v) =
  Buffer.add_string buf ",\"";
  add_escaped buf k;
  Buffer.add_string buf "\":";
  match (v : Span.attr) with
  | Span.Int i -> Buffer.add_string buf (string_of_int i)
  | Span.Float f -> Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | Span.Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Span.Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'

let event ?(level = Info) name attrs =
  if !enabled && level_rank level >= level_rank !threshold then begin
    let buf = Buffer.create 192 in
    Buffer.add_string buf "{\"ts_us\":";
    Buffer.add_string buf (string_of_int (Clock.now_us ()));
    Buffer.add_string buf ",\"level\":\"";
    Buffer.add_string buf (level_label level);
    Buffer.add_string buf "\",\"event\":\"";
    add_escaped buf name;
    Buffer.add_char buf '"';
    List.iter (add_attr buf) attrs;
    Buffer.add_string buf "}\n";
    Mutex.lock lock;
    (match !sink with
    | Some oc -> (
        try
          output_string oc (Buffer.contents buf);
          flush oc
        with Sys_error _ -> ())
    | None -> ());
    Mutex.unlock lock
  end
