(** Process-wide metrics registry: named monotonic counters,
    last-write-wins gauges, sampled gauge callbacks, and log-bucketed
    histograms.

    Counters are lock-free [Atomic.t]s once registered; registration
    itself takes a mutex (rare).  Unlike spans, metrics are always on —
    an atomic increment is cheap enough for every hot path that wants
    one, and keeping them unconditional means a snapshot is meaningful
    whether or not tracing was enabled for the run. *)

type value =
  | Count of int
  | Gauge of float
  | Hist of Histogram.summary

type counter = int Atomic.t

let registry_lock = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32

let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 8

(* live gauges sampled at snapshot time; replace-on-register so a
   re-created server simply takes over its name *)
let gauge_fns : (string, unit -> float) Hashtbl.t = Hashtbl.create 8

let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 8

let counter name =
  Mutex.lock registry_lock;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
      let c = Atomic.make 0 in
      Hashtbl.add counters name c;
      c
  in
  Mutex.unlock registry_lock;
  c

let incr c = ignore (Atomic.fetch_and_add c 1)

let add c n = ignore (Atomic.fetch_and_add c n)

let value c = Atomic.get c

let set_gauge name v =
  Mutex.lock registry_lock;
  (match Hashtbl.find_opt gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add gauges name (ref v));
  Mutex.unlock registry_lock

let max_gauge name v =
  Mutex.lock registry_lock;
  (match Hashtbl.find_opt gauges name with
  | Some r -> if v > !r then r := v
  | None -> Hashtbl.add gauges name (ref v));
  Mutex.unlock registry_lock

let gauge_fn name f =
  Mutex.lock registry_lock;
  Hashtbl.replace gauge_fns name f;
  Mutex.unlock registry_lock

let histogram name =
  Mutex.lock registry_lock;
  let h =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
      let h = Histogram.create () in
      Hashtbl.add histograms name h;
      h
  in
  Mutex.unlock registry_lock;
  h

let snapshot () =
  Mutex.lock registry_lock;
  let entries =
    Hashtbl.fold (fun name c acc -> (name, Count (Atomic.get c)) :: acc) counters []
  in
  let entries =
    Hashtbl.fold (fun name r acc -> (name, Gauge !r) :: acc) gauges entries
  in
  let entries =
    Hashtbl.fold
      (fun name h acc -> (name, Hist (Histogram.summary h)) :: acc)
      histograms entries
  in
  (* collect callbacks under the lock, sample them outside it so a
     callback touching the registry cannot deadlock *)
  let fns = Hashtbl.fold (fun name f acc -> (name, f) :: acc) gauge_fns [] in
  Mutex.unlock registry_lock;
  let entries =
    List.fold_left (fun acc (name, f) -> (name, Gauge (f ())) :: acc) entries fns
  in
  let entries = ("process.uptime_us", Count (Clock.now_us ())) :: entries in
  List.sort (fun (a, _) (b, _) -> compare a b) entries

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
  Hashtbl.iter (fun _ r -> r := 0.) gauges;
  Hashtbl.iter (fun _ h -> Histogram.clear h) histograms;
  Mutex.unlock registry_lock
