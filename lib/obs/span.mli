(** Structured tracing spans (off by default, nesting via a per-domain
    stack, finished spans collected in a process-wide sink). *)

type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = private {
  id : int;
  parent : int option;
  name : string;
  track : int;
  start_us : int;
  mutable end_us : int;
  mutable attrs : (string * attr) list;
}

val enabled : bool ref
(** Master switch; [false] by default.  While off, [enter] returns
    [None] and [with_span] calls its body with [None]. *)

val current_trace_id : unit -> string option
(** Trace-id context of the calling domain (set by {!with_trace_id}).
    Works whether or not tracing is enabled, so request-correlation
    side channels (logs, single-flight tags) stay live when spans are
    off. *)

val with_trace_id : string -> (unit -> 'a) -> 'a
(** [with_trace_id id f] runs [f] with the calling domain's trace-id
    context set to [id]; every span entered inside automatically gains
    a ["trace_id"] attribute (unless one was passed explicitly).  The
    previous context is restored on exit, normal or exceptional. *)

val enter : ?attrs:(string * attr) list -> string -> t option
(** Open a span on the current domain's stack.  Its parent is the
    innermost span still open on this domain. *)

val add_attr : t -> string -> attr -> unit

val finish : t -> unit
(** Stamp [end_us], pop the span from its domain stack and move it to
    the finished sink.  Idempotent. *)

val with_span : ?attrs:(string * attr) list -> string -> (t option -> 'a) -> 'a
(** [with_span name f] brackets [f] in a span.  The callback receives
    the open span (for late attributes) or [None] when tracing is off.
    On exception the span is finished with an ["error"] attribute and
    the exception is re-raised with its backtrace. *)

val attrs : t -> (string * attr) list
(** Attributes in insertion order. *)

val finished : unit -> t list
(** Snapshot of finished spans, oldest first (stable on start time). *)

val reset : unit -> unit
(** Drop finished spans and clear the calling domain's open stack. *)
