(** Log-bucketed latency histogram (HDR-style, see histogram.mli).

    Fixed bucket boundaries: values [0, sub) get one exact bucket each;
    above that, every octave [2^e, 2^(e+1)) is split into [sub] linear
    sub-buckets, so the relative width of any bucket is at most
    [1/sub] (12.5% with [sub_bits = 3]).  Because the boundaries are a
    pure function of the value — no per-instance state — two histograms
    merge by adding bucket counts, exactly.

    Recording is lock-light: one [Atomic.fetch_and_add] on the bucket,
    one on the total.  The bucket is bumped *before* the total, so a
    concurrent reader that snapshots the total first always finds at
    least that many samples when it walks the buckets — quantile walks
    terminate without locking writers out. *)

let sub_bits = 3
let sub = 1 lsl sub_bits  (* 8 linear sub-buckets per octave *)

(* OCaml ints are 63-bit, so the highest set bit of a non-negative value
   is at position <= 61; 62 leaves headroom *)
let max_exp = 62

let bucket_count = (sub * (max_exp - sub_bits)) + (2 * sub)

(* position of the highest set bit of [v >= sub] *)
let msb v =
  let e = ref 0 and x = ref v in
  while !x > 1 do
    x := !x lsr 1;
    incr e
  done;
  !e

let bucket_of v =
  let v = if v < 0 then 0 else v in
  if v < sub then v
  else
    let e = msb v in
    (sub * (e - sub_bits)) + (v lsr (e - sub_bits))

(** Inclusive [(lower, upper)] value bounds of bucket [b]. *)
let bounds b =
  if b < sub then (b, b)
  else begin
    let shift = (b / sub) - 1 in
    let lo = ((b mod sub) + sub) lsl shift in
    (lo, lo + (1 lsl shift) - 1)
  end

type t = {
  counts : int Atomic.t array;  (** one cell per fixed bucket *)
  total : int Atomic.t;
}

let create () =
  { counts = Array.init bucket_count (fun _ -> Atomic.make 0);
    total = Atomic.make 0 }

let record t v =
  ignore (Atomic.fetch_and_add t.counts.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add t.total 1)

let count t = Atomic.get t.total

let clear t =
  Array.iter (fun c -> Atomic.set c 0) t.counts;
  Atomic.set t.total 0

let merge a b =
  let m = create () in
  for i = 0 to bucket_count - 1 do
    Atomic.set m.counts.(i) (Atomic.get a.counts.(i) + Atomic.get b.counts.(i))
  done;
  Atomic.set m.total (Atomic.get a.total + Atomic.get b.total);
  m

let quantile_bounds t p =
  let n = count t in
  if n = 0 then None
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    let cum = ref 0 and i = ref 0 and found = ref None in
    while !found = None && !i < bucket_count do
      cum := !cum + Atomic.get t.counts.(!i);
      if !cum >= rank then found := Some (bounds !i);
      incr i
    done;
    !found
  end

let quantile t p =
  match quantile_bounds t p with None -> 0 | Some (_, hi) -> hi

let max_value t =
  let rec go i =
    if i < 0 then 0
    else if Atomic.get t.counts.(i) > 0 then snd (bounds i)
    else go (i - 1)
  in
  go (bucket_count - 1)

type summary = {
  s_count : int;
  s_p50 : int;
  s_p90 : int;
  s_p99 : int;
  s_max : int;
}

let summary t =
  {
    s_count = count t;
    s_p50 = quantile t 50.;
    s_p90 = quantile t 90.;
    s_p99 = quantile t 99.;
    s_max = max_value t;
  }

let export t =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    let c = Atomic.get t.counts.(i) in
    if c > 0 then acc := (i, c) :: !acc
  done;
  !acc

let import pairs =
  let t = create () in
  List.iter
    (fun (i, c) ->
      if i >= 0 && i < bucket_count && c > 0 then begin
        Atomic.set t.counts.(i) (Atomic.get t.counts.(i) + c);
        Atomic.set t.total (Atomic.get t.total + c)
      end)
    pairs;
  t
