(** Chrome/Perfetto trace-event JSON export (self-contained printer). *)

type event = {
  name : string;
  cat : string;
  ph : string;
  ts : int;
  dur : int;
  pid : int;
  tid : int;
  args : (string * Span.attr) list;
}

val complete :
  ?cat:string ->
  ?args:(string * Span.attr) list ->
  name:string -> ts:int -> dur:int -> pid:int -> tid:int -> unit -> event
(** A [ph = "X"] complete slice; [ts]/[dur] in microseconds. *)

val process_name : pid:int -> string -> event
(** [ph = "M"] metadata naming a process row in the viewer. *)

val thread_name : pid:int -> tid:int -> string -> event
(** [ph = "M"] metadata naming a thread track. *)

val of_spans : ?pid:int -> Span.t list -> event list
(** One complete slice per span; [tid] is the span's track. *)

val to_string : event list -> string
(** Render the [{"traceEvents": [...]}] object.  Metadata events come
    first; slices are sorted by (pid, tid, ts). *)

val write : path:string -> event list -> unit
