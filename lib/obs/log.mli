(** Leveled, structured JSON event log.

    Off by default: {!enabled} is a single [ref] read on the fast path,
    so an un-configured daemon pays one branch per call site.  When a
    sink is attached, each {!event} renders one self-contained JSON
    line — [{"ts_us":..,"level":"info","event":"serve.access",...}] —
    and writes it under a process-wide mutex (lines from concurrent
    domains never interleave), flushing per line so tail -f works.

    Attribute values reuse {!Span.attr}, making span attributes and log
    fields the same currency. *)

type level = Debug | Info | Warn | Error

val level_label : level -> string

val enabled : bool ref
(** Off by default; flipped on by {!set_channel} / {!open_path} and off
    by {!close}.  Callers may also toggle it directly to mute a
    configured sink. *)

val threshold : level ref
(** Minimum level actually written (default [Info]). *)

val set_channel : ?close_on_reset:bool -> out_channel -> unit
(** Attach a sink and enable logging.  [close_on_reset] (default
    false): the writer owns the channel and closes it on {!close} or
    when replaced. *)

val open_path : string -> unit
(** Append-open [path] (0644, created if missing) and attach it as an
    owned sink. *)

val close : unit -> unit
(** Flush, detach (closing owned channels), and disable. *)

val event : ?level:level -> string -> (string * Span.attr) list -> unit
(** [event name attrs] writes one JSON line; no-op when disabled or
    below {!threshold}.  Write errors are swallowed — telemetry must
    never take the server down. *)
