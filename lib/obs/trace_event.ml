(** Chrome/Perfetto trace-event JSON export.

    Emits the JSON-object flavour ({["traceEvents": [...]]}) with
    complete events ([ph = "X"], [ts]/[dur] in microseconds) and
    metadata events ([ph = "M"]) naming processes and threads — the
    subset both [chrome://tracing] and https://ui.perfetto.dev load.

    The printer is self-contained (obs sits below [Gpu_util] in the
    dependency order, so it cannot use [Gpu_util.Json]). *)

type event = {
  name : string;
  cat : string;
  ph : string;  (** "X" complete slice, "M" metadata *)
  ts : int;  (** microseconds *)
  dur : int;  (** microseconds; ignored unless [ph = "X"] *)
  pid : int;
  tid : int;
  args : (string * Span.attr) list;
}

let complete ?(cat = "span") ?(args = []) ~name ~ts ~dur ~pid ~tid () =
  { name; cat; ph = "X"; ts; dur; pid; tid; args }

let process_name ~pid name =
  { name = "process_name"; cat = "__metadata"; ph = "M"; ts = 0; dur = 0;
    pid; tid = 0; args = [ ("name", Span.Str name) ] }

let thread_name ~pid ~tid name =
  { name = "thread_name"; cat = "__metadata"; ph = "M"; ts = 0; dur = 0;
    pid; tid; args = [ ("name", Span.Str name) ] }

let of_spans ?(pid = 1) spans =
  List.map
    (fun (s : Span.t) ->
      let stop = if s.end_us < 0 then s.start_us else s.end_us in
      complete ~name:s.name ~ts:s.start_us
        ~dur:(stop - s.start_us)
        ~pid ~tid:s.track ~args:(Span.attrs s) ())
    spans

(* --- printing --- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  escape buf s;
  Buffer.add_char buf '"'

let add_attr buf = function
  | Span.Int n -> Buffer.add_string buf (string_of_int n)
  | Span.Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Span.Str s -> add_str buf s
  | Span.Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else add_str buf (Float.to_string f)

let add_event buf e =
  Buffer.add_string buf "{\"name\":";
  add_str buf e.name;
  Buffer.add_string buf ",\"cat\":";
  add_str buf e.cat;
  Buffer.add_string buf ",\"ph\":";
  add_str buf e.ph;
  Buffer.add_string buf (Printf.sprintf ",\"ts\":%d" e.ts);
  if e.ph = "X" then Buffer.add_string buf (Printf.sprintf ",\"dur\":%d" e.dur);
  Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d" e.pid e.tid);
  if e.args <> [] then begin
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_str buf k;
        Buffer.add_char buf ':';
        add_attr buf v)
      e.args
  end;
  if e.args <> [] then Buffer.add_string buf "}}" else Buffer.add_char buf '}'

let to_string events =
  (* metadata first; slices ordered by (pid, tid, ts) so each track's
     timestamps read monotonically *)
  let meta, slices = List.partition (fun e -> e.ph = "M") events in
  let slices =
    List.stable_sort
      (fun a b -> compare (a.pid, a.tid, a.ts) (b.pid, b.tid, b.ts))
      slices
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      add_event buf e)
    (meta @ slices);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let write ~path events =
  Out_channel.with_open_bin path (fun oc ->
    Out_channel.output_string oc (to_string events))
