(** Structured tracing spans.

    A span is a named interval with attributes, a monotonic [start_us] /
    [end_us] pair from {!Clock}, and a parent link inferred from a
    per-domain stack of open spans (so nesting falls out of call
    structure, no plumbing required).  Tracing is off by default; every
    entry point returns [None] / does nothing until [enabled] is set, so
    the disabled path costs one [ref] read.

    Finished spans accumulate in a process-wide sink (mutex-protected,
    append-only) until [reset] or [drain].  The sink is intended for
    short tool runs — a CLI invocation, a test — not an unbounded
    server; callers that trace long sweeps should drain periodically. *)

type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = {
  id : int;
  parent : int option;  (** id of the enclosing open span on this track *)
  name : string;
  track : int;  (** trace track; defaults to the domain id *)
  start_us : int;
  mutable end_us : int;  (** -1 while the span is still open *)
  mutable attrs : (string * attr) list;  (** reverse insertion order *)
}

let enabled = ref false

let next_id = Atomic.make 1

(* finished spans, newest first *)
let sink : t list ref = ref []

let sink_lock = Mutex.create ()

(* open-span stack of the current domain, innermost first *)
let stack_key : t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* trace-id context of the current domain; spans opened while it is set
   automatically carry a ["trace_id"] attribute *)
let trace_key : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_trace_id () = !(Domain.DLS.get trace_key)

let with_trace_id id f =
  let ctx = Domain.DLS.get trace_key in
  let saved = !ctx in
  ctx := Some id;
  Fun.protect ~finally:(fun () -> ctx := saved) f

let enter ?(attrs = []) name =
  if not !enabled then None
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> None | s :: _ -> Some s.id in
    let attrs =
      match current_trace_id () with
      | Some tid when not (List.mem_assoc "trace_id" attrs) ->
          ("trace_id", Str tid) :: attrs
      | _ -> attrs
    in
    let span =
      {
        id = Atomic.fetch_and_add next_id 1;
        parent;
        name;
        track = (Domain.self () :> int);
        start_us = Clock.now_us ();
        end_us = -1;
        attrs = List.rev attrs;
      }
    in
    stack := span :: !stack;
    Some span
  end

let add_attr span key value = span.attrs <- (key, value) :: span.attrs

let finish span =
  if span.end_us < 0 then begin
    span.end_us <- Clock.now_us ();
    let stack = Domain.DLS.get stack_key in
    (* pop this span (and, defensively, anything left open above it) *)
    let rec pop = function
      | s :: rest when s.id = span.id -> rest
      | _ :: rest -> pop rest
      | [] -> []
    in
    stack := pop !stack;
    Mutex.lock sink_lock;
    sink := span :: !sink;
    Mutex.unlock sink_lock
  end

let with_span ?attrs name f =
  if not !enabled then f None
  else
    let span = enter ?attrs name in
    match f span with
    | result ->
      Option.iter finish span;
      result
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Option.iter
        (fun s ->
          add_attr s "error" (Str (Printexc.to_string e));
          finish s)
        span;
      Printexc.raise_with_backtrace e bt

let attrs span = List.rev span.attrs

let finished () =
  Mutex.lock sink_lock;
  let spans = !sink in
  Mutex.unlock sink_lock;
  (* oldest first, stable on start time *)
  List.stable_sort (fun a b -> compare a.start_us b.start_us) (List.rev spans)

let reset () =
  Mutex.lock sink_lock;
  sink := [];
  Mutex.unlock sink_lock;
  Domain.DLS.get stack_key := []
