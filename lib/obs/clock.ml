(** Monotone process clock, microseconds since the first use in this
    process.  [Unix.gettimeofday] can step backwards under NTP; spans and
    trace events need a timestamp that never does, so successive reads are
    clamped to be non-decreasing across all domains. *)

let epoch = Unix.gettimeofday ()

(* last value handed out, in us; CAS-clamped so the clock is globally
   monotone even when the wall clock steps back *)
let last : int Atomic.t = Atomic.make 0

let rec clamp raw =
  let prev = Atomic.get last in
  if raw <= prev then prev
  else if Atomic.compare_and_set last prev raw then raw
  else clamp raw

let now_us () =
  let raw = int_of_float ((Unix.gettimeofday () -. epoch) *. 1e6) in
  clamp raw
