(** Static kernel lint: located, severity-ranked diagnostics for the
    memory-system anti-patterns the static model can prove from the AST
    and launch geometry alone.

    Catalog (see DESIGN.md §14 for one minicuda example per entry):

    - {b uncoalesced global access} — an affine index whose lane
      enumeration touches more than half a warp's worth of lines;
    - {b shared-memory bank conflict} — a warp's lanes hit more distinct
      words in one bank than an even spread would require (the
      "avoidable" test), under a conservative [banks = 16] model: two
      addresses congruent mod 32 are congruent mod 16, so any conflict
      reported here also serializes on 32-bank hardware;
    - {b loop-invariant global load} — a load whose address has a zero
      coefficient on its innermost enclosing iterator: hoistable to a
      register;
    - {b occupancy limiter} — a launch that cannot fill the device (fewer
      blocks than SMs) or pads warps (block size not a multiple of the
      warp size);
    - {b working set over capacity} — only when an occupancy hint is
      supplied: a loop whose sharpened Eq. 8 footprint exceeds the L1D at
      full TLP, i.e. a throttling candidate.

    The lint deliberately has no dependency on [Catt]; callers that want
    the capacity check pass the configured occupancy in. *)

module Ast = Minicuda.Ast
module Geom = Sanitize.Geom
module Walk = Sanitize.Walk
module Affine = Sanitize.Affine
module Json = Gpu_util.Json

type severity = High | Medium | Low

type kind =
  | Uncoalesced
  | Bank_conflict
  | Invariant_load
  | Occupancy_limit
  | Capacity

type diag = {
  dkind : kind;
  dsev : severity;
  dkernel : string;
  dloc : Ast.loc;
  darray : string option;
  dmsg : string;
}

(** Device description needed by the purely static checks. *)
type machine = {
  line_bytes : int;
  warp_size : int;
  banks : int;  (** shared-memory banks; 16 is the conservative default *)
  num_sms : int;
}

let default_banks = 16

(** Configured occupancy, for the capacity check. *)
type occupancy_hint = {
  concurrent_warps : int;
  tbs_per_sm : int;
  l1d_bytes : int;
}

let severity_to_string = function
  | High -> "high"
  | Medium -> "medium"
  | Low -> "low"

let kind_to_string = function
  | Uncoalesced -> "uncoalesced-global-access"
  | Bank_conflict -> "shared-memory-bank-conflict"
  | Invariant_load -> "loop-invariant-global-load"
  | Occupancy_limit -> "occupancy-limiter"
  | Capacity -> "working-set-over-capacity"

(* ------------------------------------------------------------------ *)
(* Checks                                                              *)
(* ------------------------------------------------------------------ *)

let uncoalesced m ~block_x kname (accs : Gaccess.gaccess list) =
  List.filter_map
    (fun (acc : Gaccess.gaccess) ->
      match acc.Gaccess.gindex with
      | Affine.Unknown -> None
      | Affine.Affine a ->
        let lines =
          List.length
            (Reuse.lane_lines ~line_bytes:m.line_bytes ~warp_size:m.warp_size
               ~block_x a)
        in
        if lines * 2 > m.warp_size then
          let sev = if lines >= m.warp_size then High else Medium in
          Some
            {
              dkind = Uncoalesced;
              dsev = sev;
              dkernel = kname;
              dloc = acc.Gaccess.gloc;
              darray = Some acc.Gaccess.garray;
              dmsg =
                Printf.sprintf
                  "one warp's load of %s[%s] touches %d cache lines (ideal \
                   %d): threads with consecutive ids should access \
                   consecutive elements"
                  acc.Gaccess.garray
                  (Affine.to_string a)
                  lines
                  (((m.warp_size * Reuse.elem_bytes) + m.line_bytes - 1)
                  / m.line_bytes);
            }
        else None)
    accs

let invariant_loads kname (sa : Gaccess.t) =
  List.concat_map
    (fun (li : Gaccess.loop_info) ->
      List.filter_map
        (fun (acc : Gaccess.gaccess) ->
          match (acc.Gaccess.gindex, acc.Gaccess.ginnermost) with
          | Affine.Affine a, Some it
            when acc.Gaccess.gload && (not acc.Gaccess.gstore)
                 && Affine.coeff_of_iter a it = 0 ->
            Some
              {
                dkind = Invariant_load;
                dsev = Medium;
                dkernel = kname;
                dloc = acc.Gaccess.gloc;
                darray = Some acc.Gaccess.garray;
                dmsg =
                  Printf.sprintf
                    "load of %s[%s] does not depend on loop variable `%s`: \
                     hoist it into a register above the loop"
                    acc.Gaccess.garray (Affine.to_string a) it;
              }
          | _ -> None)
        li.Gaccess.gaccesses)
    sa.Gaccess.loops

(* Exact per-warp enumeration of shared-memory bank usage.  Same-word
   lanes broadcast for free, so conflicts count distinct words per bank;
   a warp asking for [w] distinct words cannot do better than
   [ceil(w / banks)] cycles, and only a spread worse than that is
   "avoidable" and worth flagging. *)
let bank_conflicts m (geo : Geom.t) kname (walk : Walk.result) =
  let threads = Geom.threads_per_block geo in
  let warps = (threads + m.warp_size - 1) / m.warp_size in
  let worst (a : Affine.t) =
    let worst_factor = ref 0 and worst_unavoid = ref 0 in
    for w = 0 to warps - 1 do
      let base = w * m.warp_size in
      let lanes = min m.warp_size (threads - base) in
      let words =
        List.sort_uniq compare
          (List.init lanes (fun lane ->
               Affine.eval_lane a ~bdim_x:geo.Geom.block_x ~lane
                 ~base_linear_tid:base))
      in
      let per_bank = Hashtbl.create 16 in
      List.iter
        (fun word ->
          let b = ((word mod m.banks) + m.banks) mod m.banks in
          Hashtbl.replace per_bank b
            (1 + try Hashtbl.find per_bank b with Not_found -> 0))
        words;
      let factor = Hashtbl.fold (fun _ n acc -> max n acc) per_bank 0 in
      let unavoidable = (List.length words + m.banks - 1) / m.banks in
      if factor - unavoidable > !worst_factor - !worst_unavoid then begin
        worst_factor := factor;
        worst_unavoid := unavoidable
      end
    done;
    (!worst_factor, !worst_unavoid)
  in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (acc : Walk.access) ->
      match acc.Walk.idx with
      | Affine.Unknown -> None
      | Affine.Affine a ->
        let factor, unavoidable = worst a in
        if factor > unavoidable && not (Hashtbl.mem seen (acc.Walk.arr, acc.Walk.aloc))
        then begin
          Hashtbl.replace seen (acc.Walk.arr, acc.Walk.aloc) ();
          Some
            {
              dkind = Bank_conflict;
              dsev = (if factor >= 2 * unavoidable then High else Medium);
              dkernel = kname;
              dloc = acc.Walk.aloc;
              darray = Some acc.Walk.arr;
              dmsg =
                Printf.sprintf
                  "%d-way bank conflict on %s[%s] (%d would be unavoidable \
                   for this warp): pad the leading dimension by one element"
                  factor acc.Walk.arr (Affine.to_string a) unavoidable;
            }
        end
        else None)
    walk.Walk.accesses

let occupancy_limits m (geo : Geom.t) kname =
  let blocks = Geom.blocks geo in
  let threads = Geom.threads_per_block geo in
  let under_grid =
    if blocks < m.num_sms then
      [
        {
          dkind = Occupancy_limit;
          dsev = Medium;
          dkernel = kname;
          dloc = Ast.dummy_loc;
          darray = None;
          dmsg =
            Printf.sprintf
              "grid launches %d block(s) on a %d-SM device: %d SM(s) stay \
               idle for the whole kernel"
              blocks m.num_sms (m.num_sms - blocks);
        };
      ]
    else []
  in
  let partial_warp =
    if threads mod m.warp_size <> 0 then
      [
        {
          dkind = Occupancy_limit;
          dsev = Low;
          dkernel = kname;
          dloc = Ast.dummy_loc;
          darray = None;
          dmsg =
            Printf.sprintf
              "block of %d threads is not a multiple of the warp size %d: \
               the last warp runs %d empty lane(s)"
              threads m.warp_size
              (m.warp_size - (threads mod m.warp_size));
        };
      ]
    else []
  in
  under_grid @ partial_warp

let capacity m ~block_x (hint : occupancy_hint) kname (sa : Gaccess.t) =
  List.filter_map
    (fun (li : Gaccess.loop_info) ->
      if li.Gaccess.gaccesses = [] then None
      else
        let ll =
          Reuse.loop_lines ~line_bytes:m.line_bytes ~warp_size:m.warp_size
            ~block_x ~tbs:hint.tbs_per_sm li.Gaccess.gaccesses
        in
        let lines =
          (ll.Reuse.per_warp * hint.concurrent_warps) + ll.Reuse.shared
        in
        let bytes = lines * m.line_bytes in
        if bytes > hint.l1d_bytes then
          Some
            {
              dkind = Capacity;
              dsev = Low;
              dkernel = kname;
              dloc = Ast.dummy_loc;
              darray = None;
              dmsg =
                Printf.sprintf
                  "loop %d (over `%s`) has a ~%d KB working set at full \
                   occupancy (%d warps) vs %d KB of L1D: a thread-throttling \
                   candidate"
                  li.Gaccess.gloop_id li.Gaccess.gloop_var
                  ((bytes + 1023) / 1024)
                  hint.concurrent_warps
                  (hint.l1d_bytes / 1024);
            }
        else None)
    sa.Gaccess.loops

(* ------------------------------------------------------------------ *)
(* Entry point + rendering                                             *)
(* ------------------------------------------------------------------ *)

let severity_rank = function High -> 0 | Medium -> 1 | Low -> 2

let kind_rank = function
  | Uncoalesced -> 0
  | Bank_conflict -> 1
  | Invariant_load -> 2
  | Occupancy_limit -> 3
  | Capacity -> 4

let compare_diag a b =
  let c = compare (severity_rank a.dsev) (severity_rank b.dsev) in
  if c <> 0 then c
  else
    let c = compare (kind_rank a.dkind) (kind_rank b.dkind) in
    if c <> 0 then c
    else
      let c = compare (a.dloc.Ast.line, a.dloc.Ast.col) (b.dloc.Ast.line, b.dloc.Ast.col) in
      if c <> 0 then c else compare a.dmsg b.dmsg

(** Run every check on one kernel under one launch geometry.  Results are
    deduplicated and sorted by severity, then kind, then source
    position. *)
let run (m : machine) ?occupancy (geo : Geom.t) (k : Ast.kernel) : diag list =
  let kname = k.Ast.kernel_name in
  let sa = Gaccess.analyze k geo in
  let all_globals =
    sa.Gaccess.straight
    @ List.concat_map (fun li -> li.Gaccess.gaccesses) sa.Gaccess.loops
  in
  let walk = Walk.run geo k in
  let diags =
    uncoalesced m ~block_x:geo.Geom.block_x kname all_globals
    @ bank_conflicts m geo kname walk
    @ invariant_loads kname sa
    @ occupancy_limits m geo kname
    @ (match occupancy with
      | Some hint -> capacity m ~block_x:geo.Geom.block_x hint kname sa
      | None -> [])
  in
  (* two accesses merged by the walker can still yield textually equal
     diagnostics (e.g. a load and a store at one site); keep one *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun d ->
      let key = (d.dkind, d.dloc, d.darray, d.dmsg) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    (List.sort compare_diag diags)

let to_string d =
  let pos =
    if d.dloc = Ast.dummy_loc then "" else Printf.sprintf ":%d:%d" d.dloc.Ast.line d.dloc.Ast.col
  in
  Printf.sprintf "%s%s: %s %s: %s" d.dkernel pos
    (severity_to_string d.dsev)
    (kind_to_string d.dkind)
    d.dmsg

let to_json d : Json.t =
  Json.Obj
    ([
       ("kernel", Json.String d.dkernel);
       ("line", Json.Int d.dloc.Ast.line);
       ("col", Json.Int d.dloc.Ast.col);
       ("severity", Json.String (severity_to_string d.dsev));
       ("kind", Json.String (kind_to_string d.dkind));
     ]
    @ (match d.darray with
      | Some a -> [ ("array", Json.String a) ]
      | None -> [])
    @ [ ("message", Json.String d.dmsg) ])

let list_to_json diags = Json.List (List.map to_json diags)
