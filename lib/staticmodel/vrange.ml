(** Value-range (interval) evaluation of minicuda expressions.

    The affine domain ({!Sanitize.Affine}) is exact but partial: modulo,
    non-constant division, loads and joins all collapse to [Unknown], and
    [Unknown] costs the footprint model a full warp of lines per access.
    This module layers an interval environment on top of the
    affine/uniformity context so that data-dependent-but-bounded values —
    [x % 8], [n / 32], a guarded table index — keep a finite range even
    after their affine form is lost.

    The lattice per variable is the product (affine form option ×
    interval); the affine half is handled by {!Sanitize.Uniformity} (its
    interval is derived on demand from launch geometry and live iterator
    ranges via [range_of_affine]), and [ranges] below only tracks
    variables whose affine form is [Unknown].  Joins hull, loops kill
    assigned variables (a one-step widening to top — ranges here never
    grow along a chain longer than the program, so termination is by
    construction), and guards refine by interval meet. *)

module Ast = Minicuda.Ast
module U = Sanitize.Uniformity
module Interval = Sanitize.Interval
module Affine = Sanitize.Affine

type ctx = {
  u : U.ctx;  (** affine + uniformity environment, live iterator ranges *)
  ranges : (string * Interval.t) list;
      (** intervals for variables whose affine form is [Unknown]; absence
          means top *)
}

let init geo = { u = U.init geo; ranges = [] }
let with_u ctx u = { ctx with u }

let drop_range ctx name =
  if List.mem_assoc name ctx.ranges then
    { ctx with ranges = List.remove_assoc name ctx.ranges }
  else ctx

let bind_range ctx name (r : Interval.t) =
  if r = Interval.top then drop_range ctx name
  else { ctx with ranges = (name, r) :: List.remove_assoc name ctx.ranges }

let point_of (i : Interval.t) =
  match (i.Interval.lo, i.Interval.hi) with
  | Some l, Some h when l = h -> Some l
  | _ -> None

(** Interval of [e] in [ctx]: affine forms go through the geometry-aware
    [range_of_affine]; everything else by structural interval arithmetic
    over the [ranges] environment. *)
let rec range ctx (e : Ast.expr) : Interval.t =
  match (U.eval ctx.u e).U.value with
  | Affine.Affine a -> U.range_of_affine ctx.u a
  | Affine.Unknown -> range_raw ctx e

and range_raw ctx (e : Ast.expr) : Interval.t =
  match e with
  | Ast.Int_lit n -> Interval.point n
  | Ast.Var name -> (
    match List.assoc_opt name ctx.ranges with
    | Some r -> r
    | None -> Interval.top)
  | Ast.Binop (Ast.Add, a, b) -> Interval.add (range ctx a) (range ctx b)
  | Ast.Binop (Ast.Sub, a, b) ->
    Interval.add (range ctx a) (Interval.scale (-1) (range ctx b))
  | Ast.Binop (Ast.Mul, a, b) -> (
    let ra = range ctx a and rb = range ctx b in
    match (point_of ra, point_of rb) with
    | Some k, _ -> Interval.scale k rb
    | _, Some k -> Interval.scale k ra
    | None, None -> Interval.top)
  | Ast.Binop (Ast.Div, a, b) -> (
    match point_of (range ctx b) with
    | Some k when k <> 0 -> Interval.div_const (range ctx a) k
    | _ -> Interval.top)
  | Ast.Binop (Ast.Mod, a, b) -> (
    match point_of (range ctx b) with
    | Some k when k <> 0 -> Interval.mod_const (range ctx a) k
    | _ -> Interval.top)
  | Ast.Unop (Ast.Neg, a) -> Interval.scale (-1) (range ctx a)
  | Ast.Cast (Ast.Int, a) -> range ctx a
  | Ast.Ternary (_, a, b) -> Interval.hull (range ctx a) (range ctx b)
  | _ -> Interval.top

(* ------------------------------------------------------------------ *)
(* Guard refinement                                                    *)
(* ------------------------------------------------------------------ *)

(* Refinement only applies to variables whose affine form is Unknown: an
   affine variable's range is derived from the affine form, and narrowing
   it independently could disagree with later affine evaluation. *)
let refinable ctx name =
  match (U.lookup ctx.u name).U.value with
  | Affine.Unknown -> true
  | Affine.Affine _ -> false

let refine_var ctx name op (bound : Interval.t) =
  if not (refinable ctx name) then ctx
  else
    let cur =
      match List.assoc_opt name ctx.ranges with
      | Some r -> r
      | None -> Interval.top
    in
    let constrain =
      match op with
      (* name < bound  ⇒  name ≤ max(bound) - 1 *)
      | Ast.Lt ->
        { Interval.lo = None; hi = Option.map (fun h -> h - 1) bound.Interval.hi }
      | Ast.Le -> { Interval.lo = None; hi = bound.Interval.hi }
      | Ast.Gt ->
        { Interval.lo = Option.map (fun l -> l + 1) bound.Interval.lo; hi = None }
      | Ast.Ge -> { Interval.lo = bound.Interval.lo; hi = None }
      | Ast.Eq -> bound
      | _ -> Interval.top
    in
    let met = Interval.meet cur constrain in
    (* an empty meet means the branch is dead; keep the last sound value *)
    if Interval.is_empty met then ctx else bind_range ctx name met

let flip = function
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le
  | op -> op

let negate = function
  | Ast.Lt -> Some Ast.Ge
  | Ast.Le -> Some Ast.Gt
  | Ast.Gt -> Some Ast.Le
  | Ast.Ge -> Some Ast.Lt
  | Ast.Eq -> Some Ast.Ne
  | Ast.Ne -> Some Ast.Eq
  | _ -> None

(** Refine [ctx] under the assumption that [cond] holds. *)
let rec assume ctx (cond : Ast.expr) : ctx =
  match cond with
  | Ast.Binop (Ast.And, a, b) -> assume (assume ctx a) b
  | Ast.Unop (Ast.Not, a) -> assume_not ctx a
  | Ast.Binop (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq) as op), Ast.Var x, e2)
    ->
    refine_var ctx x op (range ctx e2)
  | Ast.Binop (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq) as op), e1, Ast.Var x)
    ->
    refine_var ctx x (flip op) (range ctx e1)
  | _ -> ctx

(** Refine [ctx] under the assumption that [cond] is false. *)
and assume_not ctx (cond : Ast.expr) : ctx =
  match cond with
  | Ast.Binop (Ast.Or, a, b) -> assume_not (assume_not ctx a) b
  | Ast.Unop (Ast.Not, a) -> assume ctx a
  | Ast.Binop (op, a, b) -> (
    match negate op with Some op' -> assume ctx (Ast.Binop (op', a, b)) | None -> ctx)
  | _ -> ctx

(* ------------------------------------------------------------------ *)
(* Joins and kills                                                     *)
(* ------------------------------------------------------------------ *)

(** Join the interval halves of two branch exits.  Only names known on
    both sides survive (hulled); a name refined or assigned in a single
    arm decays to top at the join. *)
let join_ranges (a : ctx) (b : ctx) : (string * Interval.t) list =
  List.filter_map
    (fun (name, ra) ->
      match List.assoc_opt name b.ranges with
      | Some rb ->
        let h = Interval.hull ra rb in
        if h = Interval.top then None else Some (name, h)
      | None -> None)
    a.ranges

(** Variables assigned anywhere in [body] lose their interval (one-step
    widening to top), mirroring {!Sanitize.Walk.kill_assigned}. *)
let kill_ranges ranges body =
  let assigned =
    Ast.fold_block
      (fun acc s ->
        match s.Ast.sk with
        | Ast.Assign (Ast.Lvar name, _, _) -> name :: acc
        | Ast.For { loop_var; declares = false; _ } -> loop_var :: acc
        | _ -> acc)
      [] body
  in
  List.filter (fun (name, _) -> not (List.mem name assigned)) ranges
