(** Static reuse / working-set analysis over {!Gaccess} reports.

    Three refinements over the single-coefficient Eq. 7 model:

    + {b cross-access aliasing}: accesses to the same array whose affine
      forms differ only in the constant (a stencil's [A[i-1]]/[A[i]]/
      [A[i+1]], a packed struct's [s[8i+0..7]]) share lines, so their
      lane line sets are unioned instead of summed;
    + {b inter-warp sharing tiers}: an index with no [threadIdx] term is
      the same for every warp of a thread block (counted once per TB, not
      once per warp), and with no [blockIdx] term either it is the same
      for every TB on the SM (counted once);
    + {b interval sharpening of Unknown}: a data-dependent index with a
      finite range can only ever touch the lines spanned by that range —
      an SM-wide bound, far below [warp_size × concurrent_warps] for
      small tables — and a block-uniform Unknown index is one line per TB
      at any instant, not [warp_size] lines per warp.

    All counts are per-iteration (instantaneous working set), matching
    Eq. 8's footprint-at-a-moment reading; the classifier below covers
    the across-iteration axis. *)

module Affine = Sanitize.Affine
module Interval = Sanitize.Interval

let elem_bytes = 4

(* floor toward -inf so negative offsets don't merge spuriously *)
let fdiv a b = if a >= 0 || a mod b = 0 then a / b else (a / b) - 1
let line_of ~line_bytes byte = fdiv byte line_bytes

(** Number of cache lines the byte image of an index interval can span;
    [None] when either end is unbounded. *)
let span_lines ~line_bytes (itv : Interval.t) : int option =
  match (itv.Interval.lo, itv.Interval.hi) with
  | Some lo, Some hi when lo <= hi ->
    Some
      (line_of ~line_bytes ((hi * elem_bytes) + elem_bytes - 1)
       - line_of ~line_bytes (lo * elem_bytes)
       + 1)
  | Some _, Some _ -> Some 0
  | _ -> None

(** The distinct lines one warp (warp 0 of block 0, iteration 0) touches
    through an affine index — the sorted line list, so cross-access unions
    can share entries.  Only lane-to-lane distances matter, as in
    {!Catt.Footprint.req_warp}. *)
let lane_lines ~line_bytes ~warp_size ~block_x (a : Affine.t) : int list =
  List.sort_uniq compare
    (List.init warp_size (fun lane ->
         line_of ~line_bytes
           (Affine.eval_lane a ~bdim_x:block_x ~lane ~base_linear_tid:0
            * elem_bytes)))

(** Conservative interval bound on [lane_lines]: the index range of one
    warp's lanes, mapped to a line span.  Always ≥ the exact enumeration
    (every lane address lies inside the interval), which is the QCheck
    soundness property. *)
let lane_lines_bound ~line_bytes ~warp_size ~block_x (a : Affine.t) : int =
  let lanes_x = min block_x warp_size in
  let lanes_y = (warp_size - 1) / block_x in
  let itv =
    Interval.add
      (Interval.point a.Affine.const)
      (Interval.add
         (Interval.scale a.Affine.c_tx (Interval.make 0 (lanes_x - 1)))
         (Interval.scale a.Affine.c_ty (Interval.make 0 lanes_y)))
  in
  match span_lines ~line_bytes itv with Some n -> n | None -> warp_size

(* ------------------------------------------------------------------ *)
(* Reuse-distance classification                                       *)
(* ------------------------------------------------------------------ *)

(** Symbolic reuse class of one access with respect to its innermost
    enclosing iterator — the replacement for the single-coefficient
    [has_reuse] test. *)
type kind =
  | Invariant  (** same address every iteration: register-level reuse *)
  | Spatial of int
      (** stride ≤ line: consecutive iterations hit the fetched line *)
  | Streaming of int  (** stride > line: a new line every iteration *)
  | Irregular_bounded of int
      (** data-dependent but confined to [n] lines: revisits by pigeonhole *)
  | Irregular  (** data-dependent, unbounded *)

let classify ~line_bytes (acc : Gaccess.gaccess) : kind =
  match acc.Gaccess.gindex with
  | Affine.Unknown -> (
    match span_lines ~line_bytes acc.Gaccess.gitv with
    | Some n -> Irregular_bounded n
    | None -> Irregular)
  | Affine.Affine a -> (
    let c =
      match acc.Gaccess.ginnermost with
      | None -> 0
      | Some it -> Affine.coeff_of_iter a it
    in
    if c = 0 then Invariant
    else if abs c * elem_bytes <= line_bytes then Spatial c
    else Streaming c)

(** Whether a fetched line is worth keeping: invariant and spatial
    accesses reuse it on the next iteration, and a bounded irregular
    access revisits its (finite) working set.  Streaming beyond a line
    and unbounded irregular accesses never come back. *)
let has_reuse kind =
  match kind with
  | Invariant | Spatial _ | Irregular_bounded _ -> true
  | Streaming _ | Irregular -> false

let kind_to_string = function
  | Invariant -> "invariant"
  | Spatial c -> Printf.sprintf "spatial(stride=%d)" c
  | Streaming c -> Printf.sprintf "streaming(stride=%d)" c
  | Irregular_bounded n -> Printf.sprintf "irregular(<=%d lines)" n
  | Irregular -> "irregular"

(* ------------------------------------------------------------------ *)
(* Loop working sets                                                   *)
(* ------------------------------------------------------------------ *)

(** Which residency level multiplies an access's line count in Eq. 8. *)
type tier = Per_warp | Tb_shared | Sm_shared

let tier_of (a : Affine.t) =
  if a.Affine.c_tx <> 0 || a.Affine.c_ty <> 0 then Per_warp
  else if a.Affine.c_bx <> 0 || a.Affine.c_by <> 0 then Tb_shared
  else Sm_shared

(** Per-access sharpened standalone line count (for reports): the exact
    per-warp enumeration for affine indices; for Unknown, the interval
    bound capped at a full warp, or one line when block-uniform. *)
let standalone_lines ~line_bytes ~warp_size ~block_x (acc : Gaccess.gaccess) =
  match acc.Gaccess.gindex with
  | Affine.Affine a -> List.length (lane_lines ~line_bytes ~warp_size ~block_x a)
  | Affine.Unknown ->
    if acc.Gaccess.guniform then 1
    else (
      match span_lines ~line_bytes acc.Gaccess.gitv with
      | Some n -> min warp_size (max 1 n)
      | None -> warp_size)

type loop_lines = {
  per_warp : int;  (** lines multiplied by concurrent warps in Eq. 8 *)
  shared : int;
      (** lines counted once per SM (TB-tier entries already folded in at
          [tbs] residency — slightly conservative under TB throttling,
          which only shrinks the true count) *)
}

(** Instantaneous distinct-line working set of one loop:
    [per_warp × concurrent_warps + shared]. *)
let loop_lines ~line_bytes ~warp_size ~block_x ~tbs
    (accs : Gaccess.gaccess list) : loop_lines =
  let tbs = max 1 tbs in
  (* group affine accesses that differ only modulo the constant *)
  let shape (a : Affine.t) = { a with Affine.const = 0 } in
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  let unknowns = ref [] in
  List.iter
    (fun (acc : Gaccess.gaccess) ->
      match acc.Gaccess.gindex with
      | Affine.Affine a ->
        let key = (acc.Gaccess.garray, shape a) in
        if not (Hashtbl.mem groups key) then order := key :: !order;
        Hashtbl.replace groups key
          (a :: (try Hashtbl.find groups key with Not_found -> []))
      | Affine.Unknown -> unknowns := acc :: !unknowns)
    accs;
  let per_warp = ref 0 and shared = ref 0 in
  List.iter
    (fun ((_, shp) as key) ->
      let members = Hashtbl.find groups key in
      (* union of the member lane line sets: the cross-access aliasing *)
      let union =
        List.length
          (List.sort_uniq compare
             (List.concat_map (lane_lines ~line_bytes ~warp_size ~block_x)
                members))
      in
      match tier_of shp with
      | Per_warp -> per_warp := !per_warp + union
      | Tb_shared -> shared := !shared + (union * tbs)
      | Sm_shared -> shared := !shared + union)
    (List.rev !order);
  List.iter
    (fun (acc : Gaccess.gaccess) ->
      let span = span_lines ~line_bytes acc.Gaccess.gitv in
      if acc.Gaccess.guniform then
        (* one line per TB at any instant; the span is an SM-wide cap *)
        shared := !shared + (match span with Some s -> min (max 1 s) tbs | None -> tbs)
      else
        match span with
        | Some s when s <= warp_size ->
          (* the whole access is confined to s lines SM-wide *)
          shared := !shared + max 1 s
        | _ -> per_warp := !per_warp + warp_size)
    (List.rev !unknowns);
  { per_warp = !per_warp; shared = !shared }
