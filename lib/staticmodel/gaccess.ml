(** Global-memory access collection under the interval/uniformity domain.

    This is {!Catt.Analysis} re-run with a richer abstract state: every
    recorded access carries, besides its affine form, the index's interval
    (over all blocks, threads and iterations, seeded from loop bounds,
    guards and the launch geometry via {!Vrange}) and a block-uniformity
    bit.  Loop numbering and access merging replicate [Analysis] exactly —
    the paper's model treats each top-level loop (recursing through [if]
    arms and blocks) as one throttling region — so a report here can be
    joined to an [Analysis.loop_report] by [loop_id].

    Unlike [Analysis], accesses in straight-line code outside every
    top-level loop are also collected ([straight]); the lint pass wants
    those too. *)

module Ast = Minicuda.Ast
module Typecheck = Minicuda.Typecheck
module U = Sanitize.Uniformity
module Walk = Sanitize.Walk
module Interval = Sanitize.Interval
module Affine = Sanitize.Affine
module Geom = Sanitize.Geom

type gaccess = {
  garray : string;
  gindex : Affine.value;
  gitv : Interval.t;
      (** index range over all blocks, threads and iterations *)
  guniform : bool;  (** all threads of a block see the same index *)
  gload : bool;
  gstore : bool;
  ginnermost : string option;  (** innermost enclosing iterator *)
  gloc : Ast.loc;
}

type loop_info = {
  gloop_id : int;  (** matches [Analysis.loop_report.loop_id] *)
  gloop_var : string;
  gaccesses : gaccess list;
}

type t = {
  loops : loop_info list;
  straight : gaccess list;  (** accesses outside every top-level loop *)
}

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

type rec_ = {
  globals : (string, unit) Hashtbl.t;
  mutable current : gaccess list;  (* reversed *)
  mutable iter_stack : string list;  (* innermost first *)
}

let same_index a b =
  match (a, b) with
  | Affine.Affine x, Affine.Affine y -> Affine.equal x y
  | Affine.Unknown, Affine.Unknown -> true
  | _ -> false

let record rc (ctx : Vrange.ctx) ~array ~idx_expr ~store ~loc =
  if Hashtbl.mem rc.globals array then begin
    let b = U.eval ctx.Vrange.u idx_expr in
    let itv =
      match b.U.value with
      | Affine.Affine a -> U.range_of_affine ctx.Vrange.u a
      | Affine.Unknown -> Vrange.range_raw ctx idx_expr
    in
    let acc =
      {
        garray = array;
        gindex = b.U.value;
        gitv = itv;
        guniform = b.U.uniform;
        gload = not store;
        gstore = store;
        ginnermost =
          (match rc.iter_stack with [] -> None | it :: _ -> Some it);
        gloc = loc;
      }
    in
    (* merge same-(array, index) duplicates the way [Analysis.record]
       does; hull the intervals so the merge stays an over-approximation *)
    let rec merge = function
      | [] -> [ acc ]
      | a :: rest ->
        if a.garray = array && same_index a.gindex acc.gindex then
          {
            a with
            gload = a.gload || acc.gload;
            gstore = a.gstore || acc.gstore;
            gitv = Interval.hull a.gitv acc.gitv;
            guniform = a.guniform && acc.guniform;
          }
          :: rest
        else a :: merge rest
    in
    rc.current <- merge rc.current
  end

let rec record_expr rc ctx ~loc (e : Ast.expr) =
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Var _ | Ast.Builtin _
    ->
    ()
  | Ast.Index (array, idx) ->
    record_expr rc ctx ~loc idx;
    record rc ctx ~array ~idx_expr:idx ~store:false ~loc
  | Ast.Binop (_, a, b) ->
    record_expr rc ctx ~loc a;
    record_expr rc ctx ~loc b
  | Ast.Unop (_, a) | Ast.Cast (_, a) -> record_expr rc ctx ~loc a
  | Ast.Call (_, args) -> List.iter (record_expr rc ctx ~loc) args
  | Ast.Ternary (c, a, b) ->
    record_expr rc ctx ~loc c;
    record_expr rc ctx ~loc a;
    record_expr rc ctx ~loc b

(* ------------------------------------------------------------------ *)
(* Statement interpretation                                            *)
(* ------------------------------------------------------------------ *)

(* interval of an assignment's right-hand side combined per operator *)
let assign_range ctx op target_range (e : Ast.expr) =
  let rhs = Vrange.range ctx e in
  match op with
  | Ast.Assign_eq -> rhs
  | Ast.Assign_add -> Interval.add target_range rhs
  | Ast.Assign_sub -> Interval.add target_range (Interval.scale (-1) rhs)
  | Ast.Assign_mul | Ast.Assign_div -> Interval.top

let rec walk_stmt rc (ctx : Vrange.ctx) (s : Ast.stmt) : Vrange.ctx =
  let loc = s.Ast.sloc in
  match s.Ast.sk with
  | Ast.Decl (_, name, None) ->
    Vrange.drop_range (Vrange.with_u ctx (U.bind ctx.Vrange.u name U.unknown_varying)) name
  | Ast.Decl (ty, name, Some e) ->
    record_expr rc ctx ~loc e;
    let b = Walk.decl_binding ctx.Vrange.u ty e in
    let r =
      match b.U.value with
      | Affine.Unknown when ty = Ast.Int -> Vrange.range ctx e
      | _ -> Interval.top
    in
    Vrange.bind_range
      (Vrange.with_u ctx (U.bind ctx.Vrange.u name b))
      name r
  | Ast.Shared_decl _ -> ctx
  | Ast.Assign (Ast.Lvar name, op, e) ->
    record_expr rc ctx ~loc e;
    let b = Walk.assign_binding ctx.Vrange.u op (U.lookup ctx.Vrange.u name) e in
    let r =
      match b.U.value with
      | Affine.Unknown ->
        let target_range =
          match (U.lookup ctx.Vrange.u name).U.value with
          | Affine.Affine a -> U.range_of_affine ctx.Vrange.u a
          | Affine.Unknown -> (
            match List.assoc_opt name ctx.Vrange.ranges with
            | Some r -> r
            | None -> Interval.top)
        in
        assign_range ctx op target_range e
      | Affine.Affine _ -> Interval.top
    in
    Vrange.bind_range (Vrange.with_u ctx (U.bind ctx.Vrange.u name b)) name r
  | Ast.Assign (Ast.Larr (array, idx), op, e) ->
    record_expr rc ctx ~loc idx;
    record_expr rc ctx ~loc e;
    (* compound ops read-modify-write: both a load and a store *)
    if op <> Ast.Assign_eq then
      record rc ctx ~array ~idx_expr:idx ~store:false ~loc;
    record rc ctx ~array ~idx_expr:idx ~store:true ~loc;
    ctx
  | Ast.If (cond, then_b, else_b) ->
    record_expr rc ctx ~loc cond;
    let ct = walk_block rc (Vrange.assume ctx cond) then_b in
    let ce = walk_block rc (Vrange.assume_not ctx cond) else_b in
    let divergent = U.truth ctx.Vrange.u cond = U.Divergent in
    {
      Vrange.u = Walk.join_if ~divergent ctx.Vrange.u ct.Vrange.u ce.Vrange.u;
      ranges = Vrange.join_ranges ct ce;
    }
  | Ast.While (cond, body) ->
    let ctx_in =
      {
        Vrange.u = Walk.kill_assigned ctx.Vrange.u body;
        ranges = Vrange.kill_ranges ctx.Vrange.ranges body;
      }
    in
    record_expr rc ctx_in ~loc cond;
    rc.iter_stack <- "<while>" :: rc.iter_stack;
    let _ = walk_block rc (Vrange.assume ctx_in cond) body in
    rc.iter_stack <- List.tl rc.iter_stack;
    ctx_in
  | Ast.For ({ loop_var; init; cond; step; body; _ } as loop) ->
    record_expr rc ctx ~loc init;
    (* widen accumulators, probe the trip count, then bind the iterator's
       range — the same three steps as [Sanitize.Walk] *)
    let widened = Walk.widen_body_ctx ctx.Vrange.u loop in
    let probe_ctx = U.push_iter widened loop_var Interval.top in
    let iter_range = Walk.iter_bound probe_ctx ~loop_var cond in
    let body_ctx =
      {
        Vrange.u = U.push_iter widened loop_var iter_range;
        ranges = Vrange.kill_ranges ctx.Vrange.ranges body;
      }
    in
    record_expr rc body_ctx ~loc cond;
    record_expr rc body_ctx ~loc step;
    rc.iter_stack <- loop_var :: rc.iter_stack;
    let _ = walk_block rc body_ctx body in
    rc.iter_stack <- List.tl rc.iter_stack;
    {
      Vrange.u =
        U.bind (Walk.kill_assigned ctx.Vrange.u body) loop_var U.unknown_varying;
      ranges = Vrange.kill_ranges ctx.Vrange.ranges body;
    }
  | Ast.Syncthreads | Ast.Return | Ast.Break | Ast.Continue -> ctx
  | Ast.Block body -> walk_block rc ctx body

and walk_block rc ctx b = List.fold_left (walk_stmt rc) ctx b

(* ------------------------------------------------------------------ *)
(* Kernel driver                                                       *)
(* ------------------------------------------------------------------ *)

let analyze (k : Ast.kernel) (geo : Geom.t) : t =
  let info = Typecheck.check_kernel k in
  let globals = Hashtbl.create 8 in
  List.iter
    (fun (name, (a : Typecheck.array_info)) ->
      if a.Typecheck.space = Typecheck.Global then Hashtbl.replace globals name ())
    info.Typecheck.arrays;
  let rc = { globals; current = []; iter_stack = [] } in
  let loops = ref [] in
  let next_id = ref 0 in
  (* top-level loop numbering identical to [Analysis.analyze_kernel] *)
  let rec top ctx (s : Ast.stmt) : Vrange.ctx =
    match s.Ast.sk with
    | Ast.For _ | Ast.While (_, _) ->
      let loop_var =
        match s.Ast.sk with Ast.For { loop_var; _ } -> loop_var | _ -> "<while>"
      in
      let id = !next_id in
      incr next_id;
      let saved = rc.current in
      rc.current <- [];
      let ctx' = walk_stmt rc ctx s in
      loops :=
        { gloop_id = id; gloop_var = loop_var; gaccesses = List.rev rc.current }
        :: !loops;
      rc.current <- saved;
      ctx'
    | Ast.If (cond, then_b, else_b) ->
      let ct = List.fold_left top (Vrange.assume ctx cond) then_b in
      let ce = List.fold_left top (Vrange.assume_not ctx cond) else_b in
      let divergent = U.truth ctx.Vrange.u cond = U.Divergent in
      {
        Vrange.u = Walk.join_if ~divergent ctx.Vrange.u ct.Vrange.u ce.Vrange.u;
        ranges = Vrange.join_ranges ct ce;
      }
    | Ast.Block body -> List.fold_left top ctx body
    | _ -> walk_stmt rc ctx s
  in
  let ctx0 =
    (* scalar parameters are launch constants: unknown but uniform *)
    List.fold_left
      (fun ctx p ->
        match p.Ast.param_ty with
        | Ast.Ptr _ -> ctx
        | _ ->
          Vrange.with_u ctx (U.bind ctx.Vrange.u p.Ast.param_name U.unknown_uniform))
      (Vrange.init geo) k.Ast.params
  in
  let _ = List.fold_left top ctx0 k.Ast.body in
  { loops = List.rev !loops; straight = List.rev rc.current }

let find_loop t ~loop_id =
  List.find_opt (fun li -> li.gloop_id = loop_id) t.loops
