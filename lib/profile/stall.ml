(** Cycle accounting: where each SM cycle went.

    The simulator's scheduler loop ({!Gpusim.Sm.step}) alternates between
    forwarded idle gaps and single issue cycles.  We classify every cycle
    into exactly one of four buckets so the per-SM sums obey the identity

      issue + barrier + mem_pending + throttled_idle = sm cycles

    which the golden-profile tests assert.  [Throttle_wait] covers cycles
    where some resident warp was data-ready but excluded by a throttling
    pool (SWL / DYNCTA / CCWS / DAWS draining) — the quantity the paper's
    TLP selection trades against L1D misses. *)

type kind = Issue | Mem_wait | Barrier_wait | Throttle_wait

let num_kinds = 4
let index = function Issue -> 0 | Mem_wait -> 1 | Barrier_wait -> 2 | Throttle_wait -> 3
let of_index = function
  | 0 -> Issue
  | 1 -> Mem_wait
  | 2 -> Barrier_wait
  | 3 -> Throttle_wait
  | _ -> invalid_arg "Stall.of_index"

let label = function
  | Issue -> "issue"
  | Mem_wait -> "mem-pending"
  | Barrier_wait -> "barrier"
  | Throttle_wait -> "throttled-idle"

type t = {
  mutable per_sm : int array array; (* sm -> kind-indexed counters *)
  mutable sm_cycles : int array;    (* sm -> simulated cycles covered *)
  warps : (int * int, int array) Hashtbl.t;
      (* (sm, warp age) -> [issued instrs; mem; barrier; throttled] cycles.
         Slot 0 counts instructions, not cycles: several warps can issue in
         the same cycle under a dual-issue config, so per-warp "issue
         cycles" are not well defined — issued-instruction counts are. *)
}

let create () = { per_sm = [||]; sm_cycles = [||]; warps = Hashtbl.create 64 }

let grow arr n ~zero =
  if Array.length arr >= n then arr
  else begin
    let fresh = Array.init n (fun i -> if i < Array.length arr then arr.(i) else zero ()) in
    fresh
  end

let ensure_sm t sm =
  let n = sm + 1 in
  if Array.length t.per_sm < n then
    t.per_sm <- grow t.per_sm n ~zero:(fun () -> Array.make num_kinds 0);
  if Array.length t.sm_cycles < n then t.sm_cycles <- grow t.sm_cycles n ~zero:(fun () -> 0)

let add t ~sm ~kind ~cycles =
  ensure_sm t sm;
  let row = t.per_sm.(sm) in
  row.(index kind) <- row.(index kind) + cycles

let add_sm_cycles t ~sm ~cycles =
  ensure_sm t sm;
  t.sm_cycles.(sm) <- t.sm_cycles.(sm) + cycles

let warp_row t ~sm ~warp =
  match Hashtbl.find_opt t.warps (sm, warp) with
  | Some row -> row
  | None ->
    let row = Array.make num_kinds 0 in
    Hashtbl.add t.warps (sm, warp) row;
    row

let warp_issue t ~sm ~warp =
  let row = warp_row t ~sm ~warp in
  row.(index Issue) <- row.(index Issue) + 1

let warp_wait t ~sm ~warp ~kind ~cycles =
  let row = warp_row t ~sm ~warp in
  row.(index kind) <- row.(index kind) + cycles

(* ---- read side ---- *)

let num_sms t = Array.length t.per_sm

let get t ~sm ~kind =
  if sm < Array.length t.per_sm then t.per_sm.(sm).(index kind) else 0

let cycles t ~sm = if sm < Array.length t.sm_cycles then t.sm_cycles.(sm) else 0

let total t ~kind =
  Array.fold_left (fun acc row -> acc + row.(index kind)) 0 t.per_sm

let total_cycles t = Array.fold_left ( + ) 0 t.sm_cycles

(** Sorted [(sm, warp), counters] rows for deterministic export. *)
let warp_rows t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.warps []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
