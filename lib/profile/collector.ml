(** The profiler facade the simulator talks to.

    A collector is created by the caller (CLI, runner, tests) and handed to
    {!Gpusim.Gpu.default_launch} via [?profile]; the simulator calls the
    record hooks below from its hot paths.  Every hook is guarded at the
    call site by a [match job.prof with None -> ()] so an unprofiled run
    pays only a branch — the differential tests assert the observable
    simulation state is bit-identical either way.

    One collector may span several launches (the experiment runner re-runs
    a kernel's launch list and sums cycles): [init] refreshes the metadata
    but keeps all counters, so repeated launches aggregate for free. *)

module Json = Gpu_util.Json

type array_info = { name : string; id : int; base : int; bytes : int }

type t = {
  stall : Stall.t;
  heat : Heatmap.t;
  mutable arrays : array_info list; (* sorted by base *)
  mutable line_bytes : int;
  mutable locs : (int * int) array; (* pc -> (line, col); (0,0) = synthetic *)
  mutable launches : int;
  mutable timeline : Timeline.t option;
      (* opt-in per-SM interval timeline for the Perfetto export; never
         part of [to_json] (the golden grid digests that output) *)
}

let create () =
  {
    stall = Stall.create ();
    heat = Heatmap.create ();
    arrays = [];
    line_bytes = 0;
    locs = [||];
    launches = 0;
    timeline = None;
  }

let enable_timeline ?cap t =
  if t.timeline = None then t.timeline <- Some (Timeline.create ?cap ())

let timeline t = t.timeline

let init t ~num_sms ~l1_sets ~line_bytes ~arrays ~locs =
  ignore num_sms;
  t.arrays <- List.sort (fun a b -> compare a.base b.base) arrays;
  t.line_bytes <- line_bytes;
  t.locs <- locs;
  t.launches <- t.launches + 1;
  Heatmap.ensure_sets t.heat l1_sets

let site t pc = if pc >= 0 && pc < Array.length t.locs then t.locs.(pc) else (0, 0)

(* Which array owns a cache line?  Bases are line-aligned with a one-line
   gap between consecutive arrays (see [Gpu.bind_args_from]), so the line's
   first byte falls inside exactly one array's [base, base+bytes) span. *)
let array_of_line t line =
  let byte = line * t.line_bytes in
  let rec find = function
    | [] -> None
    | a :: rest ->
      if byte >= a.base && byte < a.base + a.bytes then Some a.id else find rest
  in
  find t.arrays

(* ---- hooks called from the simulator ---- *)

let record_l1 t ~arr_id ~pc ~set ~outcome =
  Heatmap.record_access t.heat ~arr_id ~site:(site t pc) ~set ~outcome

let record_evict t ~arr_id ~pc ~set ~victim_line =
  Heatmap.record_evict t.heat ~arr_id ~site:(site t pc) ~set
    ~victim_arr:(array_of_line t victim_line)

let record_store t ~arr_id ~pc = Heatmap.record_store t.heat ~arr_id ~site:(site t pc)
let record_bypass t ~arr_id ~pc = Heatmap.record_bypass t.heat ~arr_id ~site:(site t pc)
let add_issue_cycle t ~sm = Stall.add t.stall ~sm ~kind:Stall.Issue ~cycles:1
let add_idle t ~sm ~kind ~cycles = Stall.add t.stall ~sm ~kind ~cycles
let add_warp_wait t ~sm ~warp ~kind ~cycles = Stall.warp_wait t.stall ~sm ~warp ~kind ~cycles
let record_warp_issue t ~sm ~warp = Stall.warp_issue t.stall ~sm ~warp
let add_sm_cycles t ~sm ~cycles = Stall.add_sm_cycles t.stall ~sm ~cycles

let record_issue_interval t ~sm ~now =
  match t.timeline with
  | None -> ()
  | Some tl -> Timeline.record tl ~sm ~kind:Stall.Issue ~start:now ~stop:(now + 1)

let record_gap_interval t ~sm ~kind ~start ~stop =
  match t.timeline with
  | None -> ()
  | Some tl -> Timeline.record tl ~sm ~kind ~start ~stop

(* ---- read side ---- *)

let launches t = t.launches
let stall t = t.stall
let heat t = t.heat
let arrays t = t.arrays

let array_name t id =
  match List.find_opt (fun a -> a.id = id) t.arrays with
  | Some a -> a.name
  | None -> Printf.sprintf "arr%d" id

(** Per-array load miss rate over all sites: (loads, miss_rate). *)
let array_miss_rate t ~arr_id =
  List.fold_left
    (fun (loads, misses) ((id, _), c) ->
      if id = arr_id then (loads + Heatmap.cell_loads c, misses + c.Heatmap.misses)
      else (loads, misses))
    (0, 0) (Heatmap.rows t.heat)
  |> fun (loads, misses) ->
  (loads, if loads = 0 then 0.0 else float_of_int misses /. float_of_int loads)

(** The accounting identity: per SM, issue + barrier + mem + throttled
    cycles must equal the SM's simulated cycles.  The golden tests assert
    this; [render] flags a violation loudly. *)
let check_identity t =
  let bad = ref [] in
  for sm = 0 to Stall.num_sms t.stall - 1 do
    let sum =
      Stall.get t.stall ~sm ~kind:Stall.Issue
      + Stall.get t.stall ~sm ~kind:Stall.Mem_wait
      + Stall.get t.stall ~sm ~kind:Stall.Barrier_wait
      + Stall.get t.stall ~sm ~kind:Stall.Throttle_wait
    and cyc = Stall.cycles t.stall ~sm in
    if sum <> cyc then bad := Printf.sprintf "SM%d: accounted %d <> cycles %d" sm sum cyc :: !bad
  done;
  match !bad with [] -> Ok () | msgs -> Error (String.concat "; " (List.rev msgs))

(* ---- JSON export ---- *)

let profile_format_version = 1

let kind_fields = [ Stall.Issue; Stall.Mem_wait; Stall.Barrier_wait; Stall.Throttle_wait ]

let to_json t =
  let sms =
    List.init (Stall.num_sms t.stall) (fun sm ->
        Json.Obj
          (("sm", Json.Int sm)
           :: ("cycles", Json.Int (Stall.cycles t.stall ~sm))
           :: List.map
                (fun k -> (Stall.label k, Json.Int (Stall.get t.stall ~sm ~kind:k)))
                kind_fields))
  in
  let warps =
    List.map
      (fun ((sm, warp), row) ->
        Json.Obj
          [
            ("sm", Json.Int sm);
            ("warp", Json.Int warp);
            ("issued", Json.Int row.(Stall.index Stall.Issue));
            ("mem", Json.Int row.(Stall.index Stall.Mem_wait));
            ("barrier", Json.Int row.(Stall.index Stall.Barrier_wait));
            ("throttled", Json.Int row.(Stall.index Stall.Throttle_wait));
          ])
      (Stall.warp_rows t.stall)
  in
  let cells =
    List.map
      (fun ((arr_id, (line, col)), c) ->
        Json.Obj
          [
            ("array", Json.String (array_name t arr_id));
            ("array_id", Json.Int arr_id);
            ("line", Json.Int line);
            ("col", Json.Int col);
            ("hits", Json.Int c.Heatmap.hits);
            ("pending_hits", Json.Int c.Heatmap.pending_hits);
            ("misses", Json.Int c.Heatmap.misses);
            ("evictions", Json.Int c.Heatmap.evictions);
            ("stores", Json.Int c.Heatmap.stores);
            ("bypassed", Json.Int c.Heatmap.bypassed);
          ])
      (Heatmap.rows t.heat)
  in
  let int_list a = Json.List (Array.to_list (Array.map (fun n -> Json.Int n) a)) in
  let victims =
    List.filter_map
      (fun a ->
        let n = Heatmap.victim_count t.heat ~arr_id:a.id in
        if n = 0 then None
        else Some (Json.Obj [ ("array", Json.String a.name); ("lines_evicted", Json.Int n) ]))
      t.arrays
  in
  Json.Obj
    [
      ("version", Json.Int profile_format_version);
      ("line_bytes", Json.Int t.line_bytes);
      ("launches", Json.Int t.launches);
      ( "arrays",
        Json.List
          (List.map
             (fun a ->
               Json.Obj
                 [
                   ("name", Json.String a.name);
                   ("id", Json.Int a.id);
                   ("base", Json.Int a.base);
                   ("bytes", Json.Int a.bytes);
                 ])
             t.arrays) );
      ("sms", Json.List sms);
      ("warps", Json.List warps);
      ("cells", Json.List cells);
      ( "sets",
        Json.Obj
          [
            ("accesses", int_list t.heat.Heatmap.set_accesses);
            ("misses", int_list t.heat.Heatmap.set_misses);
            ("evictions", int_list t.heat.Heatmap.set_evictions);
          ] );
      ("victims", Json.List victims);
    ]

let of_json json =
  Json.decode
    (fun j ->
      if Json.to_int (Json.member "version" j) <> profile_format_version then
        raise (Json.Type_error "profile version mismatch");
      let t = create () in
      t.line_bytes <- Json.to_int (Json.member "line_bytes" j);
      t.launches <- Json.to_int (Json.member "launches" j);
      t.arrays <-
        List.map
          (fun a ->
            {
              name = Json.to_str (Json.member "name" a);
              id = Json.to_int (Json.member "id" a);
              base = Json.to_int (Json.member "base" a);
              bytes = Json.to_int (Json.member "bytes" a);
            })
          (Json.to_list (Json.member "arrays" j));
      List.iter
        (fun s ->
          let sm = Json.to_int (Json.member "sm" s) in
          Stall.add_sm_cycles t.stall ~sm ~cycles:(Json.to_int (Json.member "cycles" s));
          List.iter
            (fun k ->
              Stall.add t.stall ~sm ~kind:k
                ~cycles:(Json.to_int (Json.member (Stall.label k) s)))
            kind_fields)
        (Json.to_list (Json.member "sms" j));
      List.iter
        (fun w ->
          let sm = Json.to_int (Json.member "sm" w)
          and warp = Json.to_int (Json.member "warp" w) in
          let row = Stall.warp_row t.stall ~sm ~warp in
          row.(Stall.index Stall.Issue) <- Json.to_int (Json.member "issued" w);
          row.(Stall.index Stall.Mem_wait) <- Json.to_int (Json.member "mem" w);
          row.(Stall.index Stall.Barrier_wait) <- Json.to_int (Json.member "barrier" w);
          row.(Stall.index Stall.Throttle_wait) <- Json.to_int (Json.member "throttled" w))
        (Json.to_list (Json.member "warps" j));
      List.iter
        (fun cj ->
          let arr_id = Json.to_int (Json.member "array_id" cj)
          and site =
            (Json.to_int (Json.member "line" cj), Json.to_int (Json.member "col" cj))
          in
          let c = Heatmap.cell t.heat ~arr_id ~site in
          c.Heatmap.hits <- Json.to_int (Json.member "hits" cj);
          c.Heatmap.pending_hits <- Json.to_int (Json.member "pending_hits" cj);
          c.Heatmap.misses <- Json.to_int (Json.member "misses" cj);
          c.Heatmap.evictions <- Json.to_int (Json.member "evictions" cj);
          c.Heatmap.stores <- Json.to_int (Json.member "stores" cj);
          c.Heatmap.bypassed <- Json.to_int (Json.member "bypassed" cj))
        (Json.to_list (Json.member "cells" j));
      let int_array j = Array.of_list (List.map Json.to_int (Json.to_list j)) in
      let sets = Json.member "sets" j in
      let acc = int_array (Json.member "accesses" sets) in
      Heatmap.ensure_sets t.heat (Array.length acc);
      Array.blit acc 0 t.heat.Heatmap.set_accesses 0 (Array.length acc);
      let m = int_array (Json.member "misses" sets) in
      Array.blit m 0 t.heat.Heatmap.set_misses 0 (Array.length m);
      let e = int_array (Json.member "evictions" sets) in
      Array.blit e 0 t.heat.Heatmap.set_evictions 0 (Array.length e);
      t)
    json

(* ---- ASCII rendering ---- *)

let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let site_label (line, col) =
  if line = 0 && col = 0 then "<synth>" else Printf.sprintf "%d:%d" line col

let render t =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "-- cycle accounting (per SM) --\n";
  out "%-5s %12s %10s %12s %10s %14s\n" "SM" "cycles" "issue" "mem-pending" "barrier"
    "throttled-idle";
  for sm = 0 to Stall.num_sms t.stall - 1 do
    out "%-5d %12d %10d %12d %10d %14d\n" sm
      (Stall.cycles t.stall ~sm)
      (Stall.get t.stall ~sm ~kind:Stall.Issue)
      (Stall.get t.stall ~sm ~kind:Stall.Mem_wait)
      (Stall.get t.stall ~sm ~kind:Stall.Barrier_wait)
      (Stall.get t.stall ~sm ~kind:Stall.Throttle_wait)
  done;
  (match check_identity t with
  | Ok () -> ()
  | Error msg -> out "!! accounting identity VIOLATED: %s\n" msg);
  let total = Stall.total_cycles t.stall in
  if total > 0 then begin
    out "\n";
    out "%s\n"
      (Gpu_util.Ascii_plot.bar_chart ~unit_label:"% of cycles"
         (List.map
            (fun k -> (Stall.label k, pct (Stall.total t.stall ~kind:k) total))
            kind_fields))
  end;
  let rows = Heatmap.rows t.heat in
  if rows <> [] then begin
    out "\n-- L1D heat map (per array x source site) --\n";
    out "%-12s %-8s %10s %8s %8s %9s %8s %8s\n" "array" "site" "loads" "hit%" "miss%"
      "evictions" "stores" "bypassed";
    List.iter
      (fun ((arr_id, site), c) ->
        let loads = Heatmap.cell_loads c in
        out "%-12s %-8s %10d %8.1f %8.1f %9d %8d %8d\n" (array_name t arr_id)
          (site_label site) loads
          (pct (c.Heatmap.hits + c.Heatmap.pending_hits) loads)
          (pct c.Heatmap.misses loads)
          c.Heatmap.evictions c.Heatmap.stores c.Heatmap.bypassed)
      rows;
    let per_array =
      List.filter_map
        (fun a ->
          let loads, rate = array_miss_rate t ~arr_id:a.id in
          if loads = 0 then None else Some (a.name, 100.0 *. rate))
        t.arrays
    in
    if per_array <> [] then begin
      out "\n%s\n" (Gpu_util.Ascii_plot.bar_chart ~unit_label:"% load misses" per_array)
    end;
    let victims =
      List.filter_map
        (fun a ->
          let n = Heatmap.victim_count t.heat ~arr_id:a.id in
          if n = 0 then None else Some (Printf.sprintf "%s:%d" a.name n))
        t.arrays
    in
    if victims <> [] then out "victim lines evicted by array: %s\n" (String.concat " " victims)
  end;
  if Heatmap.num_sets t.heat > 0 then begin
    let f a = Array.map float_of_int a in
    out "\n-- L1D set occupancy (one column per set) --\n";
    out "accesses  %s\n" (Gpu_util.Ascii_plot.sparkline (f t.heat.Heatmap.set_accesses));
    out "misses    %s\n" (Gpu_util.Ascii_plot.sparkline (f t.heat.Heatmap.set_misses));
    out "evictions %s\n" (Gpu_util.Ascii_plot.sparkline (f t.heat.Heatmap.set_evictions))
  end;
  Buffer.contents buf
