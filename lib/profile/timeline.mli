(** Opt-in per-SM activity timeline (coalesced cycle intervals) feeding
    the Perfetto export. *)

type interval = {
  sm : int;
  kind : Stall.kind;
  start : int;
  mutable stop : int;  (** exclusive *)
}

type t

val default_cap : int

val create : ?cap:int -> unit -> t

val record : t -> sm:int -> kind:Stall.kind -> start:int -> stop:int -> unit
(** Append the interval [start, stop) on [sm]'s track; empty intervals
    are ignored and back-to-back same-kind intervals coalesce.  Past
    [cap] stored intervals, new ones only bump {!dropped}. *)

val length : t -> int
val dropped : t -> int
val iter : t -> (interval -> unit) -> unit

val to_events : t -> pid:int -> Obs.Trace_event.event list
(** One complete slice per interval: [tid] = SM id, [ts]/[dur] =
    simulated cycles rendered as trace microseconds. *)
