(** Bounded ring buffer — the streaming sink under {!Gpusim.Trace} and the
    profiler's event streams.

    Once full, each push overwrites the oldest element and bumps [dropped],
    so memory stays bounded no matter how long the simulated kernel runs.
    The seed's trace grew an unbounded (doubling) array; long-running CS
    workloads made that the dominant allocation of a traced run. *)

type 'a t = {
  data : 'a array;
  mutable len : int;  (* elements currently stored, <= capacity *)
  mutable next : int; (* slot the next push writes *)
  mutable dropped : int;
}

let create ~cap ~dummy =
  if cap <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Array.make cap dummy; len = 0; next = 0; dropped = 0 }

let capacity t = Array.length t.data
let length t = t.len
let dropped t = t.dropped

let push t x =
  let cap = Array.length t.data in
  t.data.(t.next) <- x;
  t.next <- (t.next + 1) mod cap;
  if t.len < cap then t.len <- t.len + 1 else t.dropped <- t.dropped + 1

(** Stored elements, oldest surviving push first. *)
let to_array t =
  let cap = Array.length t.data in
  let start = (t.next - t.len + cap) mod cap in
  Array.init t.len (fun i -> t.data.((start + i) mod cap))

let clear t =
  t.len <- 0;
  t.next <- 0;
  t.dropped <- 0
