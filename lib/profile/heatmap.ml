(** L1D heat maps: hit/miss/eviction counters keyed by (array, source site),
    plus set-level occupancy histograms.

    A "site" is the (line, col) AST location of the statement the access was
    lowered from — PR 2's source positions, threaded through codegen into
    [Bytecode.src_locs].  Heat per (array x site) is the lens CUTHERMO uses
    for GPU memory inefficiency; the per-set histograms expose conflict hot
    sets that a byte-level footprint (Eq. 8) cannot distinguish. *)

type outcome = Hit | Pending_hit | Miss

type cell = {
  mutable hits : int;
  mutable pending_hits : int;
  mutable misses : int;
  mutable evictions : int; (* evictions *caused by* accesses at this cell *)
  mutable stores : int;    (* write-through stores issued from this cell *)
  mutable bypassed : int;  (* loads routed around L1 from this cell *)
}

let fresh_cell () =
  { hits = 0; pending_hits = 0; misses = 0; evictions = 0; stores = 0; bypassed = 0 }

let cell_loads c = c.hits + c.pending_hits + c.misses

type t = {
  cells : (int * (int * int), cell) Hashtbl.t; (* (arr_id, site) -> cell *)
  mutable set_accesses : int array;
  mutable set_misses : int array;
  mutable set_evictions : int array;
  victims : (int, int ref) Hashtbl.t; (* arr_id -> lines of it evicted *)
}

let create () =
  {
    cells = Hashtbl.create 64;
    set_accesses = [||];
    set_misses = [||];
    set_evictions = [||];
    victims = Hashtbl.create 8;
  }

(* A carveout resize between launches changes the number of L1D sets; keep
   whatever was already counted and widen the histograms to the max seen. *)
let grow arr n =
  if Array.length arr >= n then arr
  else begin
    let fresh = Array.make n 0 in
    Array.blit arr 0 fresh 0 (Array.length arr);
    fresh
  end

let ensure_sets t n =
  if Array.length t.set_accesses < n then begin
    t.set_accesses <- grow t.set_accesses n;
    t.set_misses <- grow t.set_misses n;
    t.set_evictions <- grow t.set_evictions n
  end

let cell t ~arr_id ~site =
  let key = (arr_id, site) in
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
    let c = fresh_cell () in
    Hashtbl.add t.cells key c;
    c

let record_access t ~arr_id ~site ~set ~outcome =
  ensure_sets t (set + 1);
  t.set_accesses.(set) <- t.set_accesses.(set) + 1;
  let c = cell t ~arr_id ~site in
  match outcome with
  | Hit -> c.hits <- c.hits + 1
  | Pending_hit -> c.pending_hits <- c.pending_hits + 1
  | Miss ->
    c.misses <- c.misses + 1;
    t.set_misses.(set) <- t.set_misses.(set) + 1

let record_evict t ~arr_id ~site ~set ~victim_arr =
  ensure_sets t (set + 1);
  t.set_evictions.(set) <- t.set_evictions.(set) + 1;
  (cell t ~arr_id ~site).evictions <- (cell t ~arr_id ~site).evictions + 1;
  match victim_arr with
  | None -> ()
  | Some v -> (
    match Hashtbl.find_opt t.victims v with
    | Some r -> incr r
    | None -> Hashtbl.add t.victims v (ref 1))

let record_store t ~arr_id ~site = (cell t ~arr_id ~site).stores <- (cell t ~arr_id ~site).stores + 1
let record_bypass t ~arr_id ~site =
  (cell t ~arr_id ~site).bypassed <- (cell t ~arr_id ~site).bypassed + 1

(* ---- read side ---- *)

let num_sets t = Array.length t.set_accesses

let victim_count t ~arr_id =
  match Hashtbl.find_opt t.victims arr_id with Some r -> !r | None -> 0

(** Sorted [(arr_id, site), cell] rows for deterministic export. *)
let rows t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.cells []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let totals t =
  Hashtbl.fold
    (fun _ c (h, p, m) -> (h + c.hits, p + c.pending_hits, m + c.misses))
    t.cells (0, 0, 0)
