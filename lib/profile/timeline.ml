(** Opt-in per-SM activity timeline: what each SM was doing on every
    simulated cycle, as coalesced [(start, stop)] intervals tagged with a
    {!Stall.kind}.  Feeds the Perfetto export ([catt_cli profile
    --trace-out]): one track per SM, one slice per interval, simulated
    cycles mapped 1:1 to trace microseconds.

    The recorder coalesces back-to-back intervals of the same kind on
    the same SM (the common case — long mem-pending gaps are reported
    cycle-range at a time, issue slots cycle by cycle), so a kernel's
    timeline stays proportional to its phase changes, not its cycles.
    A hard cap bounds memory on pathological kernels; past it, new
    intervals are counted in [dropped] instead of stored. *)

type interval = {
  sm : int;
  kind : Stall.kind;
  start : int;
  mutable stop : int;  (** exclusive *)
}

type t = {
  cap : int;
  mutable items : interval array;
  mutable len : int;
  mutable dropped : int;
  last : (int, interval) Hashtbl.t;  (** sm -> most recent interval *)
}

let default_cap = 1 lsl 20

let create ?(cap = default_cap) () =
  { cap; items = [||]; len = 0; dropped = 0; last = Hashtbl.create 8 }

let length t = t.len

let dropped t = t.dropped

let push t iv =
  if t.len >= t.cap then t.dropped <- t.dropped + 1
  else begin
    if t.len >= Array.length t.items then begin
      let cap = min t.cap (max 256 (2 * Array.length t.items)) in
      let items = Array.make cap iv in
      Array.blit t.items 0 items 0 t.len;
      t.items <- items
    end;
    t.items.(t.len) <- iv;
    t.len <- t.len + 1;
    Hashtbl.replace t.last iv.sm iv
  end

let record t ~sm ~kind ~start ~stop =
  if stop > start then
    match Hashtbl.find_opt t.last sm with
    | Some last when last.kind = kind && last.stop = start ->
      last.stop <- stop  (* coalesce with the adjacent same-kind interval *)
    | _ -> push t { sm; kind; start; stop }

let iter t f =
  for i = 0 to t.len - 1 do
    f t.items.(i)
  done

(* Cycles map 1:1 to microseconds: Perfetto renders integer us, and the
   absolute scale of a simulated timeline is meaningless anyway. *)
let to_events t ~pid =
  let events = ref [] in
  for i = t.len - 1 downto 0 do
    let iv = t.items.(i) in
    events :=
      Obs.Trace_event.complete ~cat:"sim" ~name:(Stall.label iv.kind)
        ~ts:iv.start ~dur:(iv.stop - iv.start) ~pid ~tid:iv.sm ()
      :: !events
  done;
  !events
