(** Per-tenant accounting for the serve loop.

    Every admitted request is classified into exactly one of
    {hit, miss, failed} — [requests = hits + misses + errors] holds as an
    invariant (the soak test checks it), with [overloaded] (global-cap
    refusals) and [quota_refusals] (per-tenant quota refusals) disjoint
    sub-counts of [errors].  "Hit" means served from the runner's memo or disk shard;
    non-simulate requests (analyze/explain/stats) recompute every time
    and count as misses.  Latencies are recorded only for requests that
    were actually handled (admission refusals carry no latency — a zero
    sample would drag the percentiles down exactly when service is
    degraded), into a per-tenant {!Obs.Histogram} — log-bucketed, fixed
    memory regardless of request volume, and covering the tenant's
    whole history rather than a sliding ring.  p50/p99 are the
    histogram's conservative bucket upper bounds, so the exact
    nearest-rank answer is never more than one bucket width (≤12.5%)
    below the reported figure.  Each histogram is also registered in
    the {!Obs.Metrics} registry as [serve.latency_us.<tenant>], so a
    plain metrics snapshot carries the same summaries.

    All mutation of the counters goes through one mutex per tenant plus
    one for the registry; histogram recording is atomic on its own. *)

module Json = Gpu_util.Json

type t = {
  name : string;
  lock : Mutex.t;
  mutable requests : int;
  mutable hits : int;
  mutable misses : int;
  mutable errors : int;
  mutable overloaded : int;  (** subset of [errors]: global-cap refusals *)
  mutable quota_refusals : int;
      (** subset of [errors]: refused by this tenant's own in-flight
          quota, disjoint from [overloaded] *)
  lat : Obs.Histogram.t;
      (** handled-request latencies; shared with the metrics registry
          entry [serve.latency_us.<name>] *)
}

type outcome =
  | Hit  (** served from the runner's memo or this tenant's disk shard *)
  | Miss  (** computed fresh (simulated, analyzed, …) *)
  | Failed  (** any error envelope except the admission refusals *)
  | Overloaded  (** refused by the global admission cap *)
  | Quota_refused  (** refused by this tenant's own in-flight quota *)

let create name =
  {
    name;
    lock = Mutex.create ();
    requests = 0;
    hits = 0;
    misses = 0;
    errors = 0;
    overloaded = 0;
    quota_refusals = 0;
    lat = Obs.Metrics.histogram ("serve.latency_us." ^ name);
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(** Record one request.  Pass [latency_us] only for requests that were
    actually handled; refusals (e.g. {!Overloaded}) are counted but
    leave the latency series untouched. *)
let note ?latency_us t outcome =
  with_lock t @@ fun () ->
  t.requests <- t.requests + 1;
  (match outcome with
  | Hit -> t.hits <- t.hits + 1
  | Miss -> t.misses <- t.misses + 1
  | Failed -> t.errors <- t.errors + 1
  | Overloaded ->
    t.errors <- t.errors + 1;
    t.overloaded <- t.overloaded + 1
  | Quota_refused ->
    t.errors <- t.errors + 1;
    t.quota_refusals <- t.quota_refusals + 1);
  match latency_us with
  | None -> ()
  | Some us -> Obs.Histogram.record t.lat us

(* Nearest-rank percentile over a sorted sample array — the exact
   reference the histogram's bucket bounds are checked against in the
   tests; not used on the serve path itself. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

type snapshot = {
  snap_name : string;
  snap_requests : int;
  snap_hits : int;
  snap_misses : int;
  snap_errors : int;
  snap_overloaded : int;
  snap_quota_refusals : int;
  snap_hit_rate : float;  (** hits / (hits + misses) *)
  snap_p50_us : int;  (** bucket upper bound (conservative) *)
  snap_p99_us : int;  (** bucket upper bound (conservative) *)
  snap_lat : Obs.Histogram.summary;
  snap_lat_buckets : (int * int) list;
      (** sparse (bucket, count) export — lets a client recompute any
          quantile with exact bucket bounds *)
}

let snapshot t =
  with_lock t @@ fun () ->
  let lookups = t.hits + t.misses in
  let summary = Obs.Histogram.summary t.lat in
  {
    snap_name = t.name;
    snap_requests = t.requests;
    snap_hits = t.hits;
    snap_misses = t.misses;
    snap_errors = t.errors;
    snap_overloaded = t.overloaded;
    snap_quota_refusals = t.quota_refusals;
    snap_hit_rate =
      (if lookups = 0 then 0. else float_of_int t.hits /. float_of_int lookups);
    snap_p50_us = summary.Obs.Histogram.s_p50;
    snap_p99_us = summary.Obs.Histogram.s_p99;
    snap_lat = summary;
    snap_lat_buckets = Obs.Histogram.export t.lat;
  }

let snapshot_to_json s =
  Json.Obj
    [
      ("tenant", Json.String s.snap_name);
      ("requests", Json.Int s.snap_requests);
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int s.snap_hits);
            ("misses", Json.Int s.snap_misses);
            ("hit_rate", Json.Float s.snap_hit_rate);
          ] );
      ("errors", Json.Int s.snap_errors);
      ("overloaded", Json.Int s.snap_overloaded);
      ("quota_refusals", Json.Int s.snap_quota_refusals);
      ( "latency_us",
        Json.Obj
          [
            ("count", Json.Int s.snap_lat.Obs.Histogram.s_count);
            ("p50", Json.Int s.snap_p50_us);
            ("p90", Json.Int s.snap_lat.Obs.Histogram.s_p90);
            ("p99", Json.Int s.snap_p99_us);
            ("max", Json.Int s.snap_lat.Obs.Histogram.s_max);
            ( "buckets",
              Json.List
                (List.map
                   (fun (b, c) -> Json.List [ Json.Int b; Json.Int c ])
                   s.snap_lat_buckets) );
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 8
let registry_lock = Mutex.create ()

let find_or_create name =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some t -> t
      | None ->
        let t = create name in
        Hashtbl.add registry name t;
        t)

let all () =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      List.sort
        (fun a b -> String.compare a.name b.name)
        (Hashtbl.fold (fun _ t acc -> t :: acc) registry []))

let all_to_json () =
  Json.List (List.map (fun t -> snapshot_to_json (snapshot t)) (all ()))

(** Drop every tenant — test isolation only.  The latency histograms
    live in the metrics registry (find-or-register by name), so they are
    cleared here too: a re-created tenant starts from an empty series. *)
let reset () =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      Hashtbl.iter (fun _ t -> Obs.Histogram.clear t.lat) registry;
      Hashtbl.reset registry)
