(** Per-tenant accounting for the serve loop.

    Every admitted request is classified into exactly one of
    {hit, miss, failed} — [requests = hits + misses + errors] holds as an
    invariant (the soak test checks it), with [overloaded] (global-cap
    refusals) and [quota_refusals] (per-tenant quota refusals) disjoint
    sub-counts of [errors].  "Hit" means served from the runner's memo or disk shard;
    non-simulate requests (analyze/explain/stats) recompute every time
    and count as misses.  Latencies are recorded only for requests that
    were actually handled (admission refusals carry no latency — a zero
    sample would drag the percentiles down exactly when service is
    degraded), kept in a bounded ring of the most recent {!lat_window}
    samples, and summarized as nearest-rank p50/p99 over that window —
    so a long-running daemon's memory and stats cost stay flat.

    All mutation goes through one mutex per tenant plus one for the
    registry — request volumes are tiny next to simulation work, so
    contention is irrelevant. *)

module Json = Gpu_util.Json

let lat_window = 4096
(** Size of the per-tenant latency ring: percentiles describe the most
    recent [lat_window] handled requests, not all history. *)

type t = {
  name : string;
  lock : Mutex.t;
  mutable requests : int;
  mutable hits : int;
  mutable misses : int;
  mutable errors : int;
  mutable overloaded : int;  (** subset of [errors]: global-cap refusals *)
  mutable quota_refusals : int;
      (** subset of [errors]: refused by this tenant's own in-flight
          quota, disjoint from [overloaded] *)
  lat_us : int array;  (** ring of [lat_window] entries *)
  mutable n_lat : int;  (** latencies ever recorded; [min n_lat lat_window]
                            entries of [lat_us] are live *)
}

type outcome =
  | Hit  (** served from the runner's memo or this tenant's disk shard *)
  | Miss  (** computed fresh (simulated, analyzed, …) *)
  | Failed  (** any error envelope except the admission refusals *)
  | Overloaded  (** refused by the global admission cap *)
  | Quota_refused  (** refused by this tenant's own in-flight quota *)

let create name =
  {
    name;
    lock = Mutex.create ();
    requests = 0;
    hits = 0;
    misses = 0;
    errors = 0;
    overloaded = 0;
    quota_refusals = 0;
    lat_us = Array.make lat_window 0;
    n_lat = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(** Record one request.  Pass [latency_us] only for requests that were
    actually handled; refusals (e.g. {!Overloaded}) are counted but
    leave the latency series untouched. *)
let note ?latency_us t outcome =
  with_lock t @@ fun () ->
  t.requests <- t.requests + 1;
  (match outcome with
  | Hit -> t.hits <- t.hits + 1
  | Miss -> t.misses <- t.misses + 1
  | Failed -> t.errors <- t.errors + 1
  | Overloaded ->
    t.errors <- t.errors + 1;
    t.overloaded <- t.overloaded + 1
  | Quota_refused ->
    t.errors <- t.errors + 1;
    t.quota_refusals <- t.quota_refusals + 1);
  match latency_us with
  | None -> ()
  | Some us ->
    t.lat_us.(t.n_lat mod lat_window) <- us;
    t.n_lat <- t.n_lat + 1

(* nearest-rank percentile over the recorded latencies *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

type snapshot = {
  snap_name : string;
  snap_requests : int;
  snap_hits : int;
  snap_misses : int;
  snap_errors : int;
  snap_overloaded : int;
  snap_quota_refusals : int;
  snap_hit_rate : float;  (** hits / (hits + misses) *)
  snap_p50_us : int;
  snap_p99_us : int;
}

let snapshot t =
  with_lock t @@ fun () ->
  (* before the ring wraps, entries [0, n_lat) are live in write order;
     after, every slot is — order is irrelevant to a percentile *)
  let sorted = Array.sub t.lat_us 0 (min t.n_lat lat_window) in
  Array.sort compare sorted;
  let lookups = t.hits + t.misses in
  {
    snap_name = t.name;
    snap_requests = t.requests;
    snap_hits = t.hits;
    snap_misses = t.misses;
    snap_errors = t.errors;
    snap_overloaded = t.overloaded;
    snap_quota_refusals = t.quota_refusals;
    snap_hit_rate =
      (if lookups = 0 then 0. else float_of_int t.hits /. float_of_int lookups);
    snap_p50_us = percentile sorted 50.;
    snap_p99_us = percentile sorted 99.;
  }

let snapshot_to_json s =
  Json.Obj
    [
      ("tenant", Json.String s.snap_name);
      ("requests", Json.Int s.snap_requests);
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int s.snap_hits);
            ("misses", Json.Int s.snap_misses);
            ("hit_rate", Json.Float s.snap_hit_rate);
          ] );
      ("errors", Json.Int s.snap_errors);
      ("overloaded", Json.Int s.snap_overloaded);
      ("quota_refusals", Json.Int s.snap_quota_refusals);
      ( "latency_us",
        Json.Obj
          [
            ("p50", Json.Int s.snap_p50_us);
            ("p99", Json.Int s.snap_p99_us);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 8
let registry_lock = Mutex.create ()

let find_or_create name =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some t -> t
      | None ->
        let t = create name in
        Hashtbl.add registry name t;
        t)

let all () =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      List.sort
        (fun a b -> String.compare a.name b.name)
        (Hashtbl.fold (fun _ t acc -> t :: acc) registry []))

let all_to_json () =
  Json.List (List.map (fun t -> snapshot_to_json (snapshot t)) (all ()))

(** Drop every tenant — test isolation only. *)
let reset () =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () -> Hashtbl.reset registry)
