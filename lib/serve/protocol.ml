(** The versioned wire schema of [catt_d serve]: JSON-lines requests and
    responses, one object per line, over stdin/stdout or a Unix-domain
    socket.

    Design rules:
    - every message carries [schema_version]; a server refuses versions
      it does not speak with a [bad_request] envelope rather than
      guessing;
    - decoding is unknown-field-tolerant — clients may add fields, the
      server looks up only what it knows (and vice versa for responses),
      so the schema can grow without breaking old peers;
    - errors are a typed envelope [{code; message}], never free text, so
      clients can switch on [code] (e.g. retry-on-[overloaded]);
    - scheme strings are {!Experiments.Scheme.of_string} — the same
      parser the CLI flags and cache keys use.

    Everything reuses {!Gpu_util.Json}; this module is codecs only and
    does no I/O. *)

module Json = Gpu_util.Json
module Scheme = Experiments.Scheme

let schema_version = 1

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type simulate_body = {
  workload : string;
  scheme : Scheme.t;
  co_resident : (string * Scheme.t) option;
      (** co-schedule a second (workload, scheme) on the same SM
          partition ({!Gpusim.Gpu.launch_pair}) *)
}

type kind =
  | Analyze of string  (** workload name *)
  | Explain of string
  | Simulate of simulate_body
  | Stats

let kind_label = function
  | Analyze _ -> "analyze"
  | Explain _ -> "explain"
  | Simulate _ -> "simulate"
  | Stats -> "stats"

type request = {
  id : string;  (** echoed verbatim in the response; responses may be
                    delivered out of order under concurrency *)
  tenant : string;
  trace_id : string option;
      (** optional client-supplied correlation id; when absent the
          server mints one, so every request is traceable either way *)
  kind : kind;
}

let default_tenant = "default"

(* ------------------------------------------------------------------ *)
(* Error envelope                                                      *)
(* ------------------------------------------------------------------ *)

type error_code =
  | Bad_request  (** unparseable or unsupported request *)
  | Not_found  (** unknown workload *)
  | Overloaded  (** admission control refused; retry later *)
  | Internal  (** handler raised; the message is diagnostic only *)

let error_code_label = function
  | Bad_request -> "bad_request"
  | Not_found -> "not_found"
  | Overloaded -> "overloaded"
  | Internal -> "internal"

let error_code_of_string = function
  | "bad_request" -> Ok Bad_request
  | "not_found" -> Ok Not_found
  | "overloaded" -> Ok Overloaded
  | "internal" -> Ok Internal
  | s -> Error (Printf.sprintf "unknown error code %S" s)

type response = {
  resp_id : string;
  resp_tenant : string;
  result : (Json.t, error_code * string) result;
}

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let request_to_json (r : request) =
  let base =
    [
      ("schema_version", Json.Int schema_version);
      ("id", Json.String r.id);
      ("tenant", Json.String r.tenant);
      ("kind", Json.String (kind_label r.kind));
    ]
    @
    match r.trace_id with
    | None -> []
    | Some tid -> [ ("trace_id", Json.String tid) ]
  in
  let params =
    match r.kind with
    | Analyze w | Explain w -> [ ("workload", Json.String w) ]
    | Stats -> []
    | Simulate b ->
      [
        ("workload", Json.String b.workload);
        ("scheme", Json.String (Scheme.label b.scheme));
      ]
      @ (match b.co_resident with
        | None -> []
        | Some (w2, s2) ->
          [
            ( "co_resident",
              Json.Obj
                [
                  ("workload", Json.String w2);
                  ("scheme", Json.String (Scheme.label s2));
                ] );
          ])
  in
  Json.Obj (base @ params)

let response_to_json (r : response) =
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("id", Json.String r.resp_id);
       ("tenant", Json.String r.resp_tenant);
     ]
    @
    match r.result with
    | Ok payload -> [ ("ok", Json.Bool true); ("result", payload) ]
    | Error (code, message) ->
      [
        ("ok", Json.Bool false);
        ( "error",
          Json.Obj
            [
              ("code", Json.String (error_code_label code));
              ("message", Json.String message);
            ] );
      ])

(* ------------------------------------------------------------------ *)
(* Decoding (unknown-field tolerant: only known members are looked up) *)
(* ------------------------------------------------------------------ *)

let member_str_opt name j =
  match Json.member_opt name j with
  | None | Some Json.Null -> None
  | Some v -> Some (Json.to_str v)

let check_version j =
  match Json.member_opt "schema_version" j with
  | None -> Error "missing schema_version"
  | Some v ->
    let v = Json.to_int v in
    if v <> schema_version then
      Error
        (Printf.sprintf "unsupported schema_version %d (this server speaks %d)"
           v schema_version)
    else Ok ()

let scheme_of_member name j =
  match member_str_opt name j with
  | None -> Ok Scheme.Baseline
  | Some s -> Scheme.of_string s

let request_of_json j : (request, string) result =
  try
    match check_version j with
    | Error _ as e -> e
    | Ok () -> (
      let id = Option.value ~default:"" (member_str_opt "id" j) in
      let tenant =
        Option.value ~default:default_tenant (member_str_opt "tenant" j)
      in
      let require_workload k =
        match member_str_opt "workload" j with
        | Some w -> Ok (k w)
        | None -> Error "missing workload"
      in
      let kind =
        match member_str_opt "kind" j with
        | None -> Error "missing kind"
        | Some "analyze" -> require_workload (fun w -> Analyze w)
        | Some "explain" -> require_workload (fun w -> Explain w)
        | Some "stats" -> Ok Stats
        | Some "simulate" -> (
          match member_str_opt "workload" j with
          | None -> Error "missing workload"
          | Some workload -> (
            match scheme_of_member "scheme" j with
            | Error msg -> Error msg
            | Ok scheme -> (
              match Json.member_opt "co_resident" j with
              | None | Some Json.Null ->
                Ok (Simulate { workload; scheme; co_resident = None })
              | Some co -> (
                match member_str_opt "workload" co with
                | None -> Error "co_resident: missing workload"
                | Some w2 -> (
                  match scheme_of_member "scheme" co with
                  | Error msg -> Error msg
                  | Ok s2 ->
                    Ok
                      (Simulate
                         {
                           workload;
                           scheme;
                           co_resident = Some (w2, s2);
                         }))))))
        | Some other -> Error (Printf.sprintf "unknown kind %S" other)
      in
      match kind with
      | Error _ as e -> e
      | Ok kind ->
        Ok { id; tenant; trace_id = member_str_opt "trace_id" j; kind })
  with Json.Type_error msg -> Error msg

let response_of_json j : (response, string) result =
  try
    match check_version j with
    | Error _ as e -> e
    | Ok () ->
      let resp_id = Option.value ~default:"" (member_str_opt "id" j) in
      let resp_tenant =
        Option.value ~default:default_tenant (member_str_opt "tenant" j)
      in
      if Json.to_bool (Json.member "ok" j) then
        Ok { resp_id; resp_tenant; result = Ok (Json.member "result" j) }
      else
        let e = Json.member "error" j in
        let code_str = Json.to_str (Json.member "code" e) in
        let message = Json.to_str (Json.member "message" e) in
        (match error_code_of_string code_str with
        | Error msg -> Error msg
        | Ok code ->
          Ok { resp_id; resp_tenant; result = Error (code, message) })
  with Json.Type_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Lines                                                               *)
(* ------------------------------------------------------------------ *)

let request_of_line line : (request, string) result =
  match Json.of_string line with
  | Error msg -> Error (Printf.sprintf "invalid JSON: %s" msg)
  | Ok j -> request_of_json j

(** Best-effort [id] (and tenant) recovery from a line whose decode
    failed — e.g. an unsupported [schema_version].  Lets the error
    envelope still correlate with the request; both default to
    unknown/[default_tenant] when even that much is unreadable. *)
let salvage_identity line =
  match Json.of_string line with
  | Error _ -> ("", default_tenant)
  | Ok j -> (
    try
      ( Option.value ~default:"" (member_str_opt "id" j),
        Option.value ~default:default_tenant (member_str_opt "tenant" j) )
    with Json.Type_error _ -> ("", default_tenant))

let request_to_line r = Json.to_string (request_to_json r)
let response_to_line r = Json.to_string (response_to_json r)
