(** The long-running request loop behind [catt_d serve].

    Architecture (DESIGN.md §13): one acceptor thread (the caller of
    {!serve_stdio} / {!serve_socket}) reads JSON-lines requests and
    {!post}s them onto the shared {!Gpu_util.Pool}; worker domains run
    the handler and write each response line under a writer mutex, so
    responses may be delivered out of order — clients correlate by the
    echoed [id].

    Admission control is two nested caps, both checked at post time and
    both refusing with an [overloaded] envelope that never reaches the
    pool and costs no simulation work.  The global cap is a queue-depth
    bound on in-flight requests (queued + running), which bounds memory
    and tail latency: the deepest backlog a request can sit behind is
    [queue_cap - 1] others.  Under it, an optional per-tenant quota
    ([~tenant_quota]) bounds any one tenant's in-flight share, so a
    burst from one tenant cannot occupy the whole queue; quota refusals
    are ledgered separately ([quota_refusals]) from global-cap refusals
    ([overloaded]).

    Identical concurrent [simulate] cells coalesce in the runner's
    single-flight table: one simulation, every response fanned out from
    the one result, with each tenant still attributed its own hit/miss
    and its own cache-shard entry.

    Tenancy: the [tenant] request field selects the {!Experiments.Cache}
    shard results persist to and the {!Tenant} metrics bucket surfaced
    by the [stats] request.  Tenants share the process-wide workload
    registry and pool — isolation is of results and accounting, not
    performance.

    Connections on the socket are concurrent: the acceptor spawns one
    thread per accepted connection, each running its own {!serve_fd}
    read loop, so a slow client cannot starve another.  Requests from
    every connection still fan out across the one shared pool, under the
    one process-wide admission cap. *)

module Json = Gpu_util.Json
module Runner = Experiments.Runner
module Scheme = Experiments.Scheme
module Pool = Gpu_util.Pool

(** [Ok (payload, cached)]: [cached] marks results served from the
    runner's memo or a disk shard — it decides hit/miss attribution. *)
type outcome = (Json.t * bool, Protocol.error_code * string) result

type handler = Protocol.request -> outcome

type t = {
  cfg : Gpusim.Config.t;
  queue_cap : int;
  tenant_quota : int option;
      (** max in-flight requests per tenant, under the global cap *)
  pool : Pool.t;
  in_flight : int Atomic.t;
  tenant_lock : Mutex.t;
  tenant_inflight : (string, int ref) Hashtbl.t;
      (** live in-flight count per tenant; entries are removed at zero so
          the table stays bounded by currently-active tenants *)
  live_conns : int Atomic.t;
      (** connection threads currently serving (socket mode) *)
  tracked_conns : int Atomic.t;
      (** connection threads held for the shutdown join — live ones plus
          finished ones not yet reaped; the reap test pins this *)
  slow_ms : float option;
      (** slow-request log threshold; [None] disables the slow log *)
  slow_sample : int;  (** log 1 of every [slow_sample] slow requests *)
  slow_count : int Atomic.t;
  mutable handler : handler;
      (** mutable only so [create] can install the default handler with
          a reference back to the server (the stats plane reports live
          queue/connection gauges); never reassigned afterwards *)
}

(* ------------------------------------------------------------------ *)
(* Default request handler (the business logic)                        *)
(* ------------------------------------------------------------------ *)

let find_workload name =
  try Ok (Workloads.Registry.find name)
  with Invalid_argument msg -> Error (Protocol.Not_found, msg)

let run_summary (r : Runner.app_run) =
  Json.Obj
    [
      ("workload", Json.String r.Runner.workload);
      ("scheme", Json.String (Scheme.label r.Runner.scheme));
      ("total_cycles", Json.Int r.Runner.total_cycles);
      ( "verified",
        match r.Runner.verified with
        | Ok () -> Json.Bool true
        | Error _ -> Json.Bool false );
      ( "kernels",
        Json.List
          (List.map
             (fun (ks : Runner.kernel_stats) ->
               Json.Obj
                 [
                   ("kernel", Json.String ks.Runner.kernel_name);
                   ("cycles", Json.Int ks.Runner.stats.Gpusim.Stats.cycles);
                   ( "instructions",
                     Json.Int ks.Runner.stats.Gpusim.Stats.instructions );
                   ( "l1_hit_rate",
                     Json.Float (Gpusim.Stats.l1_hit_rate ks.Runner.stats) );
                   ( "tlp",
                     Json.List
                       [
                         Json.Int (fst ks.Runner.tlp);
                         Json.Int (snd ks.Runner.tlp);
                       ] );
                 ])
             r.Runner.kernels) );
    ]

let analysis_to_json (name, (a : Catt.Driver.t)) =
  Json.Obj
    [
      ("kernel", Json.String name);
      ("final_carveout", Json.Int a.Catt.Driver.final_carveout);
      ( "baseline_tlp",
        Json.List
          [
            Json.Int (fst a.Catt.Driver.baseline_tlp);
            Json.Int (snd a.Catt.Driver.baseline_tlp);
          ] );
      ("resident_tbs", Json.Int a.Catt.Driver.resident_tbs);
      ("gate_degraded", Json.Bool a.Catt.Driver.gate_degraded);
      ("analysis_seconds", Json.Float a.Catt.Driver.analysis_seconds);
      ( "loops",
        Json.List
          (List.map
             (fun (l : Catt.Driver.loop_decision) ->
               let d = l.Catt.Driver.decision in
               Json.Obj
                 [
                   ( "req_per_warp",
                     Json.Int l.Catt.Driver.footprint.Catt.Footprint.req_per_warp
                   );
                   ( "has_locality",
                     Json.Bool
                       l.Catt.Driver.footprint.Catt.Footprint.has_locality );
                   ("throttled", Json.Bool d.Catt.Throttle.throttled);
                   ("n", Json.Int d.Catt.Throttle.n);
                   ("m", Json.Int d.Catt.Throttle.m);
                   ( "active_warps_per_tb",
                     Json.Int d.Catt.Throttle.active_warps_per_tb );
                   ("active_tbs", Json.Int d.Catt.Throttle.active_tbs);
                 ])
             a.Catt.Driver.loops) );
    ]

let handle_analyze cfg name : outcome =
  match find_workload name with
  | Error _ as e -> e
  | Ok w -> (
    match Runner.analyses_for cfg w Scheme.Catt with
    | [] -> Error (Protocol.Internal, "no kernel could be analyzed")
    | analyses ->
      Ok
        ( Json.Obj
            [
              ("workload", Json.String w.Workloads.Workload.name);
              ("kernels", Json.List (List.map analysis_to_json analyses));
            ],
          false ))

let handle_explain cfg name : outcome =
  match find_workload name with
  | Error _ as e -> e
  | Ok w ->
    Ok
      ( Json.Obj
          [
            ("report", Experiments.Explain.workload_to_json cfg w);
            ("rendered", Json.String (Experiments.Explain.render cfg w));
          ],
        false )

(* where the result came from (memo / cache hit / cache miss /
   coalesced), noted in a domain-local slot as the handler runs: the
   access log wants the ladder's outcome, but stamping it into the
   payload would break the bit-equality of cached responses (a warm
   answer must stay byte-identical to the cold one), so it rides beside
   the payload instead of inside it.  Wrapping handlers inherit it for
   free — the slot is set on whichever domain runs the request. *)
let request_source : string option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let note_source source =
  Domain.DLS.set request_source (Some (Runner.source_label source))

let take_source () =
  let s = Domain.DLS.get request_source in
  Domain.DLS.set request_source None;
  s

let handle_simulate cfg tenant (b : Protocol.simulate_body) : outcome =
  match find_workload b.Protocol.workload with
  | Error _ as e -> e
  | Ok w -> (
    match b.Protocol.co_resident with
    | None -> (
      match
        Runner.exec_with_source (Runner.Request.make ~tenant cfg w b.Protocol.scheme)
      with
      | Error msg -> Error (Protocol.Bad_request, msg)
      | Ok (r, source) ->
        let cached =
          match source with
          | Runner.Memo | Runner.Disk | Runner.Coalesced -> true
          | Runner.Simulated -> false
        in
        note_source source;
        Ok (run_summary r, cached))
    | Some (name_b, scheme_b) -> (
      match find_workload name_b with
      | Error _ as e -> e
      | Ok wb -> (
        match
          Runner.run_co_resident_with_source ~tenant cfg w b.Protocol.scheme wb
            scheme_b
        with
        | Error msg -> Error (Protocol.Bad_request, msg)
        | Ok ((ra, rb), source) ->
          (* pair results are cached under an order-normalized key, so a
             repeat — even with the members swapped — is a hit *)
          let cached =
            match source with
            | Runner.Memo | Runner.Disk | Runner.Coalesced -> true
            | Runner.Simulated -> false
          in
          note_source source;
          Ok
            ( Json.Obj
                [
                  ("co_resident", Json.Bool true);
                  ("a", run_summary ra);
                  ("b", run_summary rb);
                ],
              cached ))))

let stats_version = 1
(** Version of the [stats] response envelope (independent of the wire
    [schema_version]: the envelope can grow fields without a protocol
    bump, and clients switch on this to know which ones to expect). *)

let metric_value_to_json = function
  | Obs.Metrics.Count n -> Json.Int n
  | Obs.Metrics.Gauge g -> Json.Float g
  | Obs.Metrics.Hist s ->
    Json.Obj
      [
        ("count", Json.Int s.Obs.Histogram.s_count);
        ("p50", Json.Int s.Obs.Histogram.s_p50);
        ("p90", Json.Int s.Obs.Histogram.s_p90);
        ("p99", Json.Int s.Obs.Histogram.s_p99);
        ("max", Json.Int s.Obs.Histogram.s_max);
      ]

(** The live admin payload: versioned envelope with per-tenant ledger
    snapshots (histogram summaries included), process cache counters,
    the full metrics snapshot, and — when answered by a running server
    rather than the bare default handler — the server's live gauges. *)
let handle_stats ?server () : outcome =
  let c = Experiments.Cache.stats () in
  let server_fields =
    match server with
    | None -> []
    | Some t ->
      [
        ( "server",
          Json.Obj
            [
              ("queue_depth", Json.Int (max 0 (Atomic.get t.in_flight)));
              ("queue_cap", Json.Int t.queue_cap);
              ( "tenant_quota",
                Json.Int (Option.value t.tenant_quota ~default:0) );
              ("jobs", Json.Int (Pool.jobs t.pool));
              ("flights_in_progress", Json.Int (Runner.flights_in_progress ()));
              ("live_connections", Json.Int (Atomic.get t.live_conns));
            ] );
      ]
  in
  Ok
    ( Json.Obj
        ([
           ("stats_version", Json.Int stats_version);
           ("tenants", Tenant.all_to_json ());
           ( "cache",
             Json.Obj
               [
                 ("hits", Json.Int c.Experiments.Cache.hits);
                 ("misses", Json.Int c.Experiments.Cache.misses);
                 ("stores", Json.Int c.Experiments.Cache.stores);
                 ("evictions", Json.Int c.Experiments.Cache.evictions);
               ] );
           ( "metrics",
             Json.Obj
               (List.map
                  (fun (name, v) -> (name, metric_value_to_json v))
                  (Obs.Metrics.snapshot ())) );
         ]
        @ server_fields),
      false )

let default_handler ?server cfg (req : Protocol.request) : outcome =
  match req.Protocol.kind with
  | Protocol.Analyze name -> handle_analyze cfg name
  | Protocol.Explain name -> handle_explain cfg name
  | Protocol.Simulate body -> handle_simulate cfg req.Protocol.tenant body
  | Protocol.Stats -> handle_stats ?server ()

(* ------------------------------------------------------------------ *)
(* Lifecycle and dispatch                                              *)
(* ------------------------------------------------------------------ *)

(** [tenant_quota] is the max in-flight requests any one tenant may hold
    under the global cap; [0] (the default) means unlimited.  [slow_ms]
    arms the slow-request log; 1 of every [slow_sample] requests over
    the threshold is written (sampling keeps a pathological workload
    from turning the log into the bottleneck). *)
let create ?handler ?(tenant_quota = 0) ?slow_ms ?(slow_sample = 1) ~cfg ~jobs
    ~queue_cap () =
  if queue_cap < 1 then invalid_arg "Server.create: queue_cap must be >= 1";
  if tenant_quota < 0 then
    invalid_arg "Server.create: tenant_quota must be >= 0";
  if slow_sample < 1 then invalid_arg "Server.create: slow_sample must be >= 1";
  let t =
    {
      cfg;
      queue_cap;
      tenant_quota = (if tenant_quota = 0 then None else Some tenant_quota);
      pool = Pool.create ~jobs;
      in_flight = Atomic.make 0;
      tenant_lock = Mutex.create ();
      tenant_inflight = Hashtbl.create 8;
      live_conns = Atomic.make 0;
      tracked_conns = Atomic.make 0;
      slow_ms;
      slow_sample;
      slow_count = Atomic.make 0;
      handler = (fun _ -> Error (Protocol.Internal, "handler not installed"));
    }
  in
  t.handler <-
    (match handler with Some h -> h | None -> default_handler ~server:t cfg);
  (* live gauges, sampled at snapshot time (a stored mirror would drift) *)
  Obs.Metrics.gauge_fn "serve.live_connections" (fun () ->
      float_of_int (Atomic.get t.live_conns));
  t

let config t = t.cfg
let in_flight t = Atomic.get t.in_flight

let live_connections t = Atomic.get t.live_conns
let tracked_connections t = Atomic.get t.tracked_conns

let m_requests = Obs.Metrics.counter "serve.requests"
let m_overloaded = Obs.Metrics.counter "serve.overloaded"
let m_quota_refused = Obs.Metrics.counter "serve.quota_refused"
let m_slow = Obs.Metrics.counter "serve.slow_requests"

(* current depth, not just the peak the pool gauge keeps: bumped on
   admission and restored on completion *and* on both refusal paths *)
let note_queue_depth t =
  Obs.Metrics.set_gauge "serve.queue_depth"
    (float_of_int (max 0 (Atomic.get t.in_flight)))

let trace_counter = Atomic.make 0

(* pid-qualified so ids from a client and a server (or two servers
   behind one trace file) cannot collide *)
let mint_trace_id () =
  Printf.sprintf "req-%d-%d" (Unix.getpid ())
    (Atomic.fetch_and_add trace_counter 1)

let scheme_of_req (req : Protocol.request) =
  match req.Protocol.kind with
  | Protocol.Simulate b -> Scheme.label b.Protocol.scheme
  | _ -> "-"

let access_log t (req : Protocol.request) ~trace_id ~outcome ~source
    ~latency_us =
  if !Obs.Log.enabled then
    Obs.Log.event "serve.access"
      [
        ("id", Obs.Span.Str req.Protocol.id);
        ("tenant", Obs.Span.Str req.Protocol.tenant);
        ("kind", Obs.Span.Str (Protocol.kind_label req.Protocol.kind));
        ("scheme", Obs.Span.Str (scheme_of_req req));
        ("source", Obs.Span.Str source);
        ("outcome", Obs.Span.Str outcome);
        ("queue_depth", Obs.Span.Int (max 0 (Atomic.get t.in_flight)));
        ("latency_us", Obs.Span.Int latency_us);
        ("trace_id", Obs.Span.Str trace_id);
      ]

(* every slow request is counted; 1 in [slow_sample] is written *)
let slow_log t (req : Protocol.request) ~trace_id ~latency_us =
  match t.slow_ms with
  | None -> ()
  | Some thresh ->
    if float_of_int latency_us >= thresh *. 1000. then begin
      let n = Atomic.fetch_and_add t.slow_count 1 in
      Obs.Metrics.incr m_slow;
      if n mod t.slow_sample = 0 then
        Obs.Log.event ~level:Obs.Log.Warn "serve.slow"
          [
            ("id", Obs.Span.Str req.Protocol.id);
            ("tenant", Obs.Span.Str req.Protocol.tenant);
            ("kind", Obs.Span.Str (Protocol.kind_label req.Protocol.kind));
            ("scheme", Obs.Span.Str (scheme_of_req req));
            ("latency_us", Obs.Span.Int latency_us);
            ("threshold_ms", Obs.Span.Float thresh);
            ("trace_id", Obs.Span.Str trace_id);
          ]
    end

(* Claim an in-flight slot for [name] under the per-tenant quota.
   Returns [false] when the tenant is already at its quota.  Entries are
   created on first use and removed at zero by {!tenant_release}, so the
   table stays bounded by currently-active tenants, not by every tenant
   name ever seen. *)
let tenant_acquire t name =
  match t.tenant_quota with
  | None -> true
  | Some quota ->
    Mutex.lock t.tenant_lock;
    let r =
      match Hashtbl.find_opt t.tenant_inflight name with
      | Some r -> r
      | None ->
        let r = ref 0 in
        Hashtbl.add t.tenant_inflight name r;
        r
    in
    let ok = !r < quota in
    if ok then incr r;
    Mutex.unlock t.tenant_lock;
    ok

let tenant_release t name =
  match t.tenant_quota with
  | None -> ()
  | Some _ ->
    Mutex.lock t.tenant_lock;
    (match Hashtbl.find_opt t.tenant_inflight name with
    | None -> ()
    | Some r ->
      decr r;
      if !r <= 0 then Hashtbl.remove t.tenant_inflight name);
    Mutex.unlock t.tenant_lock

(** Live in-flight count for [name] — test visibility. *)
let tenant_in_flight t name =
  Mutex.lock t.tenant_lock;
  let n =
    match Hashtbl.find_opt t.tenant_inflight name with
    | Some r -> !r
    | None -> 0
  in
  Mutex.unlock t.tenant_lock;
  n

(** Dispatch one request.  [respond] runs on a worker domain for
    admitted requests and synchronously on the caller for refused ones;
    it must be safe to call from any domain. *)
let post t (req : Protocol.request) ~respond =
  Obs.Metrics.incr m_requests;
  (* correlate from the first touch: client-supplied id or a minted one *)
  let trace_id =
    match req.Protocol.trace_id with
    | Some s when s <> "" -> s
    | _ -> mint_trace_id ()
  in
  let n = Atomic.fetch_and_add t.in_flight 1 in
  note_queue_depth t;
  if n >= t.queue_cap then begin
    ignore (Atomic.fetch_and_add t.in_flight (-1));
    note_queue_depth t;
    Obs.Metrics.incr m_overloaded;
    (* counted, but no latency sample: a refusal is not a served request,
       and a zero would drag p50/p99 down exactly when service degrades *)
    Tenant.note (Tenant.find_or_create req.Protocol.tenant) Tenant.Overloaded;
    access_log t req ~trace_id ~outcome:"overloaded" ~source:"refused"
      ~latency_us:0;
    respond
      {
        Protocol.resp_id = req.Protocol.id;
        resp_tenant = req.Protocol.tenant;
        result =
          Error
            ( Protocol.Overloaded,
              Printf.sprintf "%d requests in flight at cap %d; retry later" n
                t.queue_cap );
      };
    `Rejected
  end
  else if not (tenant_acquire t req.Protocol.tenant) then begin
    (* under the global cap but over this tenant's own share: refuse with
       the same wire envelope (clients need one retry path), ledgered
       separately so operators can tell noisy-tenant pushback from
       genuine saturation *)
    ignore (Atomic.fetch_and_add t.in_flight (-1));
    note_queue_depth t;
    Obs.Metrics.incr m_quota_refused;
    Tenant.note
      (Tenant.find_or_create req.Protocol.tenant)
      Tenant.Quota_refused;
    access_log t req ~trace_id ~outcome:"quota_refused" ~source:"refused"
      ~latency_us:0;
    respond
      {
        Protocol.resp_id = req.Protocol.id;
        resp_tenant = req.Protocol.tenant;
        result =
          Error
            ( Protocol.Overloaded,
              Printf.sprintf
                "tenant %S at its in-flight quota (%d); retry later"
                req.Protocol.tenant
                (Option.value t.tenant_quota ~default:0) );
      };
    `Rejected
  end
  else begin
    (* the pool.task span opens on the worker before the body runs, so
       the trace id rides in as a submit attribute; the body then sets
       the domain's trace context, and every span below — serve.request,
       runner.run, runner.simulate — inherits it *)
    Pool.submit
      ~attrs:[ ("trace_id", Obs.Span.Str trace_id) ]
      t.pool
      (fun () ->
        Fun.protect
          ~finally:(fun () ->
            tenant_release t req.Protocol.tenant;
            ignore (Atomic.fetch_and_add t.in_flight (-1));
            note_queue_depth t)
          (fun () ->
            Obs.Span.with_trace_id trace_id @@ fun () ->
            Obs.Span.with_span "serve.request"
              ~attrs:
                [
                  ("id", Obs.Span.Str req.Protocol.id);
                  ("tenant", Obs.Span.Str req.Protocol.tenant);
                  ("kind", Obs.Span.Str (Protocol.kind_label req.Protocol.kind));
                ]
            @@ fun _span ->
            let start = Obs.Clock.now_us () in
            let result =
              try t.handler req
              with e -> Error (Protocol.Internal, Printexc.to_string e)
            in
            (* always drained, logging or not — a stale note from this
               request must not leak into the worker's next one *)
            let noted_source = take_source () in
            let latency_us = Obs.Clock.now_us () - start in
            let tenant = Tenant.find_or_create req.Protocol.tenant in
            (match result with
            | Ok (_, cached) ->
              Tenant.note ~latency_us tenant
                (if cached then Tenant.Hit else Tenant.Miss)
            | Error _ -> Tenant.note ~latency_us tenant Tenant.Failed);
            (if !Obs.Log.enabled then
               let outcome, source =
                 match result with
                 | Ok (_, cached) ->
                   let source =
                     match noted_source with
                     | Some s -> s
                     | None -> if cached then "cached" else "computed"
                   in
                   ("ok", source)
                 | Error (code, _) ->
                   (Protocol.error_code_label code, "error")
               in
               access_log t req ~trace_id ~outcome ~source ~latency_us);
            slow_log t req ~trace_id ~latency_us;
            respond
              {
                Protocol.resp_id = req.Protocol.id;
                resp_tenant = req.Protocol.tenant;
                result = Result.map fst result;
              }));
    `Dispatched
  end

(** Block until no request is queued or running. *)
let drain t =
  while Atomic.get t.in_flight > 0 do
    Unix.sleepf 0.002
  done

(** Drain, then join every worker domain.  After this returns the
    process holds no domains and no queued work — exiting cleanly is the
    no-orphaned-domains guarantee the smoke test asserts. *)
let shutdown t =
  drain t;
  Pool.shutdown t.pool

(* ------------------------------------------------------------------ *)
(* JSON-lines serving                                                  *)
(* ------------------------------------------------------------------ *)

(* A line reader over a raw fd.  Buffered channels would block through
   signals (OCaml retries EINTR internally); reading via [select] with a
   short timeout keeps the [stop] flag responsive, which is how SIGTERM
   turns into a clean drain instead of a killed process. *)
type reader = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;  (** bytes [\[pos, len)] are buffered input *)
  mutable pos : int;  (** start of the unconsumed region *)
  mutable len : int;  (** end of the valid region *)
  mutable scanned : int;
      (** bytes [\[pos, scanned)] are known newline-free, so each byte is
          scanned once across the reader's lifetime — a pipelined burst
          of K requests in one buffer costs O(bytes), where re-scanning
          (or re-materializing the buffer as a string per line) would be
          O(bytes * K) *)
  mutable eof : bool;
}

let reader fd =
  { fd; buf = Bytes.create 4096; pos = 0; len = 0; scanned = 0; eof = false }

let take_line r =
  let i = ref r.scanned in
  while !i < r.len && Bytes.get r.buf !i <> '\n' do
    incr i
  done;
  if !i >= r.len then begin
    r.scanned <- r.len;
    None
  end
  else begin
    let line = Bytes.sub_string r.buf r.pos (!i - r.pos) in
    r.pos <- !i + 1;
    r.scanned <- r.pos;
    if r.pos = r.len then begin
      (* buffer fully consumed: rewind so it never grows just because
         lines keep arriving *)
      r.pos <- 0;
      r.len <- 0;
      r.scanned <- 0
    end;
    Some line
  end

(* make room to read: compact the consumed prefix away, or — only when a
   single line overflows the whole buffer — double it *)
let make_room r =
  if r.len = Bytes.length r.buf then
    if r.pos > 0 then begin
      Bytes.blit r.buf r.pos r.buf 0 (r.len - r.pos);
      r.len <- r.len - r.pos;
      r.scanned <- r.scanned - r.pos;
      r.pos <- 0
    end
    else begin
      let bigger = Bytes.create (2 * Bytes.length r.buf) in
      Bytes.blit r.buf 0 bigger 0 r.len;
      r.buf <- bigger
    end

let rec next_line r ~stop =
  if stop () then `Stopped
  else
    match take_line r with
    | Some l -> `Line l
    | None ->
      if r.eof then
        if r.len > r.pos then begin
          (* unterminated final line *)
          let l = Bytes.sub_string r.buf r.pos (r.len - r.pos) in
          r.pos <- 0;
          r.len <- 0;
          r.scanned <- 0;
          `Line l
        end
        else `Eof
      else (
        match Unix.select [ r.fd ] [] [] 0.2 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_line r ~stop
        | [], _, _ -> next_line r ~stop
        | _ -> (
          make_room r;
          match Unix.read r.fd r.buf r.len (Bytes.length r.buf - r.len) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_line r ~stop
          | 0 ->
            r.eof <- true;
            next_line r ~stop
          | n ->
            r.len <- r.len + n;
            next_line r ~stop))

(* responses from different worker domains interleave line-atomically *)
let write_line lock fd line =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      try
        let b = Bytes.of_string (line ^ "\n") in
        let len = Bytes.length b in
        let pos = ref 0 in
        while !pos < len do
          match Unix.write fd b !pos (len - !pos) with
          | n -> pos := !pos + n
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done
      with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
        (* client went away; the response has nowhere to go *)
        ())

(** Serve JSON-lines requests from [in_fd], answering on [out_fd], until
    EOF or [stop ()].  This connection's in-flight work — and only this
    connection's — is drained before returning, so every admitted
    request gets its response written (unless the client disconnected)
    without one client's EOF blocking on every other connection's
    backlog. *)
let serve_fd t ~in_fd ~out_fd ~stop =
  let r = reader in_fd in
  let out_lock = Mutex.create () in
  let respond resp = write_line out_lock out_fd (Protocol.response_to_line resp) in
  (* responses this connection still owes; posted requests respond
     exactly once (refusals synchronously, admissions from a worker), and
     the decrement rides the respond call itself so it survives a failed
     write *)
  let outstanding = Atomic.make 0 in
  let respond_counted resp =
    Fun.protect
      ~finally:(fun () -> ignore (Atomic.fetch_and_add outstanding (-1)))
      (fun () -> respond resp)
  in
  let rec loop () =
    match next_line r ~stop with
    | `Stopped | `Eof -> ()
    | `Line line ->
      (if String.trim line <> "" then
         match Protocol.request_of_line line with
         | Error msg ->
           (* still correlate when the id is salvageable (e.g. a request
              refused only for its schema_version) *)
           let resp_id, resp_tenant = Protocol.salvage_identity line in
           respond
             {
               Protocol.resp_id;
               resp_tenant;
               result = Error (Protocol.Bad_request, msg);
             }
         | Ok req ->
           Atomic.incr outstanding;
           ignore (post t req ~respond:respond_counted));
      loop ()
  in
  loop ();
  while Atomic.get outstanding > 0 do
    Unix.sleepf 0.002
  done

let serve_stdio t ~stop =
  serve_fd t ~in_fd:Unix.stdin ~out_fd:Unix.stdout ~stop

(** Accept loop on a Unix-domain socket at [path] (replacing any stale
    socket file).  Each accepted connection is served on its own thread,
    so a slow or idle client never blocks another client's requests; the
    per-connection requests still fan out across the shared pool, and
    the admission cap bounds total in-flight work across all
    connections.  Finished connection threads are reaped (joined and
    dropped) as the accept loop turns, so a long-lived daemon's memory is
    bounded by *concurrent* connections, not by every connection ever
    accepted; the stragglers are joined before returning, so in-flight
    responses drain, and the socket file is removed on return. *)
let serve_socket t ~path ~stop =
  (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 8;
  (* each entry pairs the thread with a finished flag its connection sets
     on the way out: a set flag means join will not block.  Only the
     accept thread touches the list itself. *)
  let conns : (Thread.t * bool Atomic.t) list ref = ref [] in
  let note_tracked () = Atomic.set t.tracked_conns (List.length !conns) in
  let reap () =
    let live, finished =
      List.partition (fun (_, fin) -> not (Atomic.get fin)) !conns
    in
    List.iter (fun (th, _) -> Thread.join th) finished;
    conns := live;
    note_tracked ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close srv with Unix.Unix_error (_, _, _) -> ());
      (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
      List.iter (fun (th, _) -> Thread.join th) !conns;
      conns := [];
      note_tracked ())
    (fun () ->
      let serve_conn (conn, fin) =
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close conn with Unix.Unix_error (_, _, _) -> ());
            ignore (Atomic.fetch_and_add t.live_conns (-1));
            Atomic.set fin true)
          (fun () -> serve_fd t ~in_fd:conn ~out_fd:conn ~stop)
      in
      let rec accept_loop () =
        if stop () then ()
        else
          match Unix.select [ srv ] [] [] 0.2 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | [], _, _ ->
            reap ();
            accept_loop ()
          | _ -> (
            match Unix.accept srv with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
            | conn, _ ->
              reap ();
              let fin = Atomic.make false in
              Atomic.incr t.live_conns;
              conns := (Thread.create serve_conn (conn, fin), fin) :: !conns;
              note_tracked ();
              accept_loop ())
      in
      accept_loop ())
