(** The long-running request loop behind [catt_d serve].

    Architecture (DESIGN.md §13): one acceptor thread (the caller of
    {!serve_stdio} / {!serve_socket}) reads JSON-lines requests and
    {!post}s them onto the shared {!Gpu_util.Pool}; worker domains run
    the handler and write each response line under a writer mutex, so
    responses may be delivered out of order — clients correlate by the
    echoed [id].

    Admission control is two nested caps, both checked at post time and
    both refusing with an [overloaded] envelope that never reaches the
    pool and costs no simulation work.  The global cap is a queue-depth
    bound on in-flight requests (queued + running), which bounds memory
    and tail latency: the deepest backlog a request can sit behind is
    [queue_cap - 1] others.  Under it, an optional per-tenant quota
    ([~tenant_quota]) bounds any one tenant's in-flight share, so a
    burst from one tenant cannot occupy the whole queue; quota refusals
    are ledgered separately ([quota_refusals]) from global-cap refusals
    ([overloaded]).

    Identical concurrent [simulate] cells coalesce in the runner's
    single-flight table: one simulation, every response fanned out from
    the one result, with each tenant still attributed its own hit/miss
    and its own cache-shard entry.

    Tenancy: the [tenant] request field selects the {!Experiments.Cache}
    shard results persist to and the {!Tenant} metrics bucket surfaced
    by the [stats] request.  Tenants share the process-wide workload
    registry and pool — isolation is of results and accounting, not
    performance.

    Connections on the socket are concurrent: the acceptor spawns one
    thread per accepted connection, each running its own {!serve_fd}
    read loop, so a slow client cannot starve another.  Requests from
    every connection still fan out across the one shared pool, under the
    one process-wide admission cap. *)

module Json = Gpu_util.Json
module Runner = Experiments.Runner
module Scheme = Experiments.Scheme
module Pool = Gpu_util.Pool

(** [Ok (payload, cached)]: [cached] marks results served from the
    runner's memo or a disk shard — it decides hit/miss attribution. *)
type outcome = (Json.t * bool, Protocol.error_code * string) result

type handler = Protocol.request -> outcome

type t = {
  cfg : Gpusim.Config.t;
  queue_cap : int;
  tenant_quota : int option;
      (** max in-flight requests per tenant, under the global cap *)
  pool : Pool.t;
  in_flight : int Atomic.t;
  tenant_lock : Mutex.t;
  tenant_inflight : (string, int ref) Hashtbl.t;
      (** live in-flight count per tenant; entries are removed at zero so
          the table stays bounded by currently-active tenants *)
  live_conns : int Atomic.t;
      (** connection threads currently serving (socket mode) *)
  tracked_conns : int Atomic.t;
      (** connection threads held for the shutdown join — live ones plus
          finished ones not yet reaped; the reap test pins this *)
  handler : handler;
}

(* ------------------------------------------------------------------ *)
(* Default request handler (the business logic)                        *)
(* ------------------------------------------------------------------ *)

let find_workload name =
  try Ok (Workloads.Registry.find name)
  with Invalid_argument msg -> Error (Protocol.Not_found, msg)

let run_summary (r : Runner.app_run) =
  Json.Obj
    [
      ("workload", Json.String r.Runner.workload);
      ("scheme", Json.String (Scheme.label r.Runner.scheme));
      ("total_cycles", Json.Int r.Runner.total_cycles);
      ( "verified",
        match r.Runner.verified with
        | Ok () -> Json.Bool true
        | Error _ -> Json.Bool false );
      ( "kernels",
        Json.List
          (List.map
             (fun (ks : Runner.kernel_stats) ->
               Json.Obj
                 [
                   ("kernel", Json.String ks.Runner.kernel_name);
                   ("cycles", Json.Int ks.Runner.stats.Gpusim.Stats.cycles);
                   ( "instructions",
                     Json.Int ks.Runner.stats.Gpusim.Stats.instructions );
                   ( "l1_hit_rate",
                     Json.Float (Gpusim.Stats.l1_hit_rate ks.Runner.stats) );
                   ( "tlp",
                     Json.List
                       [
                         Json.Int (fst ks.Runner.tlp);
                         Json.Int (snd ks.Runner.tlp);
                       ] );
                 ])
             r.Runner.kernels) );
    ]

let analysis_to_json (name, (a : Catt.Driver.t)) =
  Json.Obj
    [
      ("kernel", Json.String name);
      ("final_carveout", Json.Int a.Catt.Driver.final_carveout);
      ( "baseline_tlp",
        Json.List
          [
            Json.Int (fst a.Catt.Driver.baseline_tlp);
            Json.Int (snd a.Catt.Driver.baseline_tlp);
          ] );
      ("resident_tbs", Json.Int a.Catt.Driver.resident_tbs);
      ("gate_degraded", Json.Bool a.Catt.Driver.gate_degraded);
      ("analysis_seconds", Json.Float a.Catt.Driver.analysis_seconds);
      ( "loops",
        Json.List
          (List.map
             (fun (l : Catt.Driver.loop_decision) ->
               let d = l.Catt.Driver.decision in
               Json.Obj
                 [
                   ( "req_per_warp",
                     Json.Int l.Catt.Driver.footprint.Catt.Footprint.req_per_warp
                   );
                   ( "has_locality",
                     Json.Bool
                       l.Catt.Driver.footprint.Catt.Footprint.has_locality );
                   ("throttled", Json.Bool d.Catt.Throttle.throttled);
                   ("n", Json.Int d.Catt.Throttle.n);
                   ("m", Json.Int d.Catt.Throttle.m);
                   ( "active_warps_per_tb",
                     Json.Int d.Catt.Throttle.active_warps_per_tb );
                   ("active_tbs", Json.Int d.Catt.Throttle.active_tbs);
                 ])
             a.Catt.Driver.loops) );
    ]

let handle_analyze cfg name : outcome =
  match find_workload name with
  | Error _ as e -> e
  | Ok w -> (
    match Runner.analyses_for cfg w Scheme.Catt with
    | [] -> Error (Protocol.Internal, "no kernel could be analyzed")
    | analyses ->
      Ok
        ( Json.Obj
            [
              ("workload", Json.String w.Workloads.Workload.name);
              ("kernels", Json.List (List.map analysis_to_json analyses));
            ],
          false ))

let handle_explain cfg name : outcome =
  match find_workload name with
  | Error _ as e -> e
  | Ok w ->
    Ok
      ( Json.Obj
          [
            ("report", Experiments.Explain.workload_to_json cfg w);
            ("rendered", Json.String (Experiments.Explain.render cfg w));
          ],
        false )

let handle_simulate cfg tenant (b : Protocol.simulate_body) : outcome =
  match find_workload b.Protocol.workload with
  | Error _ as e -> e
  | Ok w -> (
    match b.Protocol.co_resident with
    | None -> (
      match
        Runner.exec_with_source (Runner.Request.make ~tenant cfg w b.Protocol.scheme)
      with
      | Error msg -> Error (Protocol.Bad_request, msg)
      | Ok (r, source) ->
        let cached =
          match source with
          | Runner.Memo | Runner.Disk | Runner.Coalesced -> true
          | Runner.Simulated -> false
        in
        Ok (run_summary r, cached))
    | Some (name_b, scheme_b) -> (
      match find_workload name_b with
      | Error _ as e -> e
      | Ok wb -> (
        match
          Runner.run_co_resident_with_source ~tenant cfg w b.Protocol.scheme wb
            scheme_b
        with
        | Error msg -> Error (Protocol.Bad_request, msg)
        | Ok ((ra, rb), source) ->
          (* pair results are cached under an order-normalized key, so a
             repeat — even with the members swapped — is a hit *)
          let cached =
            match source with
            | Runner.Memo | Runner.Disk | Runner.Coalesced -> true
            | Runner.Simulated -> false
          in
          Ok
            ( Json.Obj
                [
                  ("co_resident", Json.Bool true);
                  ("a", run_summary ra);
                  ("b", run_summary rb);
                ],
              cached ))))

let handle_stats () : outcome =
  let c = Experiments.Cache.stats () in
  Ok
    ( Json.Obj
        [
          ("tenants", Tenant.all_to_json ());
          ( "cache",
            Json.Obj
              [
                ("hits", Json.Int c.Experiments.Cache.hits);
                ("misses", Json.Int c.Experiments.Cache.misses);
                ("stores", Json.Int c.Experiments.Cache.stores);
                ("evictions", Json.Int c.Experiments.Cache.evictions);
              ] );
        ],
      false )

let default_handler cfg (req : Protocol.request) : outcome =
  match req.Protocol.kind with
  | Protocol.Analyze name -> handle_analyze cfg name
  | Protocol.Explain name -> handle_explain cfg name
  | Protocol.Simulate body -> handle_simulate cfg req.Protocol.tenant body
  | Protocol.Stats -> handle_stats ()

(* ------------------------------------------------------------------ *)
(* Lifecycle and dispatch                                              *)
(* ------------------------------------------------------------------ *)

(** [tenant_quota] is the max in-flight requests any one tenant may hold
    under the global cap; [0] (the default) means unlimited. *)
let create ?handler ?(tenant_quota = 0) ~cfg ~jobs ~queue_cap () =
  if queue_cap < 1 then invalid_arg "Server.create: queue_cap must be >= 1";
  if tenant_quota < 0 then
    invalid_arg "Server.create: tenant_quota must be >= 0";
  let handler =
    match handler with Some h -> h | None -> default_handler cfg
  in
  {
    cfg;
    queue_cap;
    tenant_quota = (if tenant_quota = 0 then None else Some tenant_quota);
    pool = Pool.create ~jobs;
    in_flight = Atomic.make 0;
    tenant_lock = Mutex.create ();
    tenant_inflight = Hashtbl.create 8;
    live_conns = Atomic.make 0;
    tracked_conns = Atomic.make 0;
    handler;
  }

let config t = t.cfg
let in_flight t = Atomic.get t.in_flight

let live_connections t = Atomic.get t.live_conns
let tracked_connections t = Atomic.get t.tracked_conns

let m_requests = Obs.Metrics.counter "serve.requests"
let m_overloaded = Obs.Metrics.counter "serve.overloaded"
let m_quota_refused = Obs.Metrics.counter "serve.quota_refused"

(* Claim an in-flight slot for [name] under the per-tenant quota.
   Returns [false] when the tenant is already at its quota.  Entries are
   created on first use and removed at zero by {!tenant_release}, so the
   table stays bounded by currently-active tenants, not by every tenant
   name ever seen. *)
let tenant_acquire t name =
  match t.tenant_quota with
  | None -> true
  | Some quota ->
    Mutex.lock t.tenant_lock;
    let r =
      match Hashtbl.find_opt t.tenant_inflight name with
      | Some r -> r
      | None ->
        let r = ref 0 in
        Hashtbl.add t.tenant_inflight name r;
        r
    in
    let ok = !r < quota in
    if ok then incr r;
    Mutex.unlock t.tenant_lock;
    ok

let tenant_release t name =
  match t.tenant_quota with
  | None -> ()
  | Some _ ->
    Mutex.lock t.tenant_lock;
    (match Hashtbl.find_opt t.tenant_inflight name with
    | None -> ()
    | Some r ->
      decr r;
      if !r <= 0 then Hashtbl.remove t.tenant_inflight name);
    Mutex.unlock t.tenant_lock

(** Live in-flight count for [name] — test visibility. *)
let tenant_in_flight t name =
  Mutex.lock t.tenant_lock;
  let n =
    match Hashtbl.find_opt t.tenant_inflight name with
    | Some r -> !r
    | None -> 0
  in
  Mutex.unlock t.tenant_lock;
  n

(** Dispatch one request.  [respond] runs on a worker domain for
    admitted requests and synchronously on the caller for refused ones;
    it must be safe to call from any domain. *)
let post t (req : Protocol.request) ~respond =
  Obs.Metrics.incr m_requests;
  let n = Atomic.fetch_and_add t.in_flight 1 in
  if n >= t.queue_cap then begin
    ignore (Atomic.fetch_and_add t.in_flight (-1));
    Obs.Metrics.incr m_overloaded;
    (* counted, but no latency sample: a refusal is not a served request,
       and a zero would drag p50/p99 down exactly when service degrades *)
    Tenant.note (Tenant.find_or_create req.Protocol.tenant) Tenant.Overloaded;
    respond
      {
        Protocol.resp_id = req.Protocol.id;
        resp_tenant = req.Protocol.tenant;
        result =
          Error
            ( Protocol.Overloaded,
              Printf.sprintf "%d requests in flight at cap %d; retry later" n
                t.queue_cap );
      };
    `Rejected
  end
  else if not (tenant_acquire t req.Protocol.tenant) then begin
    (* under the global cap but over this tenant's own share: refuse with
       the same wire envelope (clients need one retry path), ledgered
       separately so operators can tell noisy-tenant pushback from
       genuine saturation *)
    ignore (Atomic.fetch_and_add t.in_flight (-1));
    Obs.Metrics.incr m_quota_refused;
    Tenant.note
      (Tenant.find_or_create req.Protocol.tenant)
      Tenant.Quota_refused;
    respond
      {
        Protocol.resp_id = req.Protocol.id;
        resp_tenant = req.Protocol.tenant;
        result =
          Error
            ( Protocol.Overloaded,
              Printf.sprintf
                "tenant %S at its in-flight quota (%d); retry later"
                req.Protocol.tenant
                (Option.value t.tenant_quota ~default:0) );
      };
    `Rejected
  end
  else begin
    Pool.submit t.pool (fun () ->
        Fun.protect
          ~finally:(fun () ->
            tenant_release t req.Protocol.tenant;
            ignore (Atomic.fetch_and_add t.in_flight (-1)))
          (fun () ->
            let start = Obs.Clock.now_us () in
            let result =
              try t.handler req
              with e -> Error (Protocol.Internal, Printexc.to_string e)
            in
            let latency_us = Obs.Clock.now_us () - start in
            let tenant = Tenant.find_or_create req.Protocol.tenant in
            (match result with
            | Ok (_, cached) ->
              Tenant.note ~latency_us tenant
                (if cached then Tenant.Hit else Tenant.Miss)
            | Error _ -> Tenant.note ~latency_us tenant Tenant.Failed);
            respond
              {
                Protocol.resp_id = req.Protocol.id;
                resp_tenant = req.Protocol.tenant;
                result = Result.map fst result;
              }));
    `Dispatched
  end

(** Block until no request is queued or running. *)
let drain t =
  while Atomic.get t.in_flight > 0 do
    Unix.sleepf 0.002
  done

(** Drain, then join every worker domain.  After this returns the
    process holds no domains and no queued work — exiting cleanly is the
    no-orphaned-domains guarantee the smoke test asserts. *)
let shutdown t =
  drain t;
  Pool.shutdown t.pool

(* ------------------------------------------------------------------ *)
(* JSON-lines serving                                                  *)
(* ------------------------------------------------------------------ *)

(* A line reader over a raw fd.  Buffered channels would block through
   signals (OCaml retries EINTR internally); reading via [select] with a
   short timeout keeps the [stop] flag responsive, which is how SIGTERM
   turns into a clean drain instead of a killed process. *)
type reader = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;  (** bytes [\[pos, len)] are buffered input *)
  mutable pos : int;  (** start of the unconsumed region *)
  mutable len : int;  (** end of the valid region *)
  mutable scanned : int;
      (** bytes [\[pos, scanned)] are known newline-free, so each byte is
          scanned once across the reader's lifetime — a pipelined burst
          of K requests in one buffer costs O(bytes), where re-scanning
          (or re-materializing the buffer as a string per line) would be
          O(bytes * K) *)
  mutable eof : bool;
}

let reader fd =
  { fd; buf = Bytes.create 4096; pos = 0; len = 0; scanned = 0; eof = false }

let take_line r =
  let i = ref r.scanned in
  while !i < r.len && Bytes.get r.buf !i <> '\n' do
    incr i
  done;
  if !i >= r.len then begin
    r.scanned <- r.len;
    None
  end
  else begin
    let line = Bytes.sub_string r.buf r.pos (!i - r.pos) in
    r.pos <- !i + 1;
    r.scanned <- r.pos;
    if r.pos = r.len then begin
      (* buffer fully consumed: rewind so it never grows just because
         lines keep arriving *)
      r.pos <- 0;
      r.len <- 0;
      r.scanned <- 0
    end;
    Some line
  end

(* make room to read: compact the consumed prefix away, or — only when a
   single line overflows the whole buffer — double it *)
let make_room r =
  if r.len = Bytes.length r.buf then
    if r.pos > 0 then begin
      Bytes.blit r.buf r.pos r.buf 0 (r.len - r.pos);
      r.len <- r.len - r.pos;
      r.scanned <- r.scanned - r.pos;
      r.pos <- 0
    end
    else begin
      let bigger = Bytes.create (2 * Bytes.length r.buf) in
      Bytes.blit r.buf 0 bigger 0 r.len;
      r.buf <- bigger
    end

let rec next_line r ~stop =
  if stop () then `Stopped
  else
    match take_line r with
    | Some l -> `Line l
    | None ->
      if r.eof then
        if r.len > r.pos then begin
          (* unterminated final line *)
          let l = Bytes.sub_string r.buf r.pos (r.len - r.pos) in
          r.pos <- 0;
          r.len <- 0;
          r.scanned <- 0;
          `Line l
        end
        else `Eof
      else (
        match Unix.select [ r.fd ] [] [] 0.2 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_line r ~stop
        | [], _, _ -> next_line r ~stop
        | _ -> (
          make_room r;
          match Unix.read r.fd r.buf r.len (Bytes.length r.buf - r.len) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_line r ~stop
          | 0 ->
            r.eof <- true;
            next_line r ~stop
          | n ->
            r.len <- r.len + n;
            next_line r ~stop))

(* responses from different worker domains interleave line-atomically *)
let write_line lock fd line =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      try
        let b = Bytes.of_string (line ^ "\n") in
        let len = Bytes.length b in
        let pos = ref 0 in
        while !pos < len do
          match Unix.write fd b !pos (len - !pos) with
          | n -> pos := !pos + n
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done
      with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
        (* client went away; the response has nowhere to go *)
        ())

(** Serve JSON-lines requests from [in_fd], answering on [out_fd], until
    EOF or [stop ()].  This connection's in-flight work — and only this
    connection's — is drained before returning, so every admitted
    request gets its response written (unless the client disconnected)
    without one client's EOF blocking on every other connection's
    backlog. *)
let serve_fd t ~in_fd ~out_fd ~stop =
  let r = reader in_fd in
  let out_lock = Mutex.create () in
  let respond resp = write_line out_lock out_fd (Protocol.response_to_line resp) in
  (* responses this connection still owes; posted requests respond
     exactly once (refusals synchronously, admissions from a worker), and
     the decrement rides the respond call itself so it survives a failed
     write *)
  let outstanding = Atomic.make 0 in
  let respond_counted resp =
    Fun.protect
      ~finally:(fun () -> ignore (Atomic.fetch_and_add outstanding (-1)))
      (fun () -> respond resp)
  in
  let rec loop () =
    match next_line r ~stop with
    | `Stopped | `Eof -> ()
    | `Line line ->
      (if String.trim line <> "" then
         match Protocol.request_of_line line with
         | Error msg ->
           (* still correlate when the id is salvageable (e.g. a request
              refused only for its schema_version) *)
           let resp_id, resp_tenant = Protocol.salvage_identity line in
           respond
             {
               Protocol.resp_id;
               resp_tenant;
               result = Error (Protocol.Bad_request, msg);
             }
         | Ok req ->
           Atomic.incr outstanding;
           ignore (post t req ~respond:respond_counted));
      loop ()
  in
  loop ();
  while Atomic.get outstanding > 0 do
    Unix.sleepf 0.002
  done

let serve_stdio t ~stop =
  serve_fd t ~in_fd:Unix.stdin ~out_fd:Unix.stdout ~stop

(** Accept loop on a Unix-domain socket at [path] (replacing any stale
    socket file).  Each accepted connection is served on its own thread,
    so a slow or idle client never blocks another client's requests; the
    per-connection requests still fan out across the shared pool, and
    the admission cap bounds total in-flight work across all
    connections.  Finished connection threads are reaped (joined and
    dropped) as the accept loop turns, so a long-lived daemon's memory is
    bounded by *concurrent* connections, not by every connection ever
    accepted; the stragglers are joined before returning, so in-flight
    responses drain, and the socket file is removed on return. *)
let serve_socket t ~path ~stop =
  (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 8;
  (* each entry pairs the thread with a finished flag its connection sets
     on the way out: a set flag means join will not block.  Only the
     accept thread touches the list itself. *)
  let conns : (Thread.t * bool Atomic.t) list ref = ref [] in
  let note_tracked () = Atomic.set t.tracked_conns (List.length !conns) in
  let reap () =
    let live, finished =
      List.partition (fun (_, fin) -> not (Atomic.get fin)) !conns
    in
    List.iter (fun (th, _) -> Thread.join th) finished;
    conns := live;
    note_tracked ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close srv with Unix.Unix_error (_, _, _) -> ());
      (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
      List.iter (fun (th, _) -> Thread.join th) !conns;
      conns := [];
      note_tracked ())
    (fun () ->
      let serve_conn (conn, fin) =
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close conn with Unix.Unix_error (_, _, _) -> ());
            ignore (Atomic.fetch_and_add t.live_conns (-1));
            Atomic.set fin true)
          (fun () -> serve_fd t ~in_fd:conn ~out_fd:conn ~stop)
      in
      let rec accept_loop () =
        if stop () then ()
        else
          match Unix.select [ srv ] [] [] 0.2 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | [], _, _ ->
            reap ();
            accept_loop ()
          | _ -> (
            match Unix.accept srv with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
            | conn, _ ->
              reap ();
              let fin = Atomic.make false in
              Atomic.incr t.live_conns;
              conns := (Thread.create serve_conn (conn, fin), fin) :: !conns;
              note_tracked ();
              accept_loop ())
      in
      accept_loop ())
