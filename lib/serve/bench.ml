(** The [serve/pipelined] throughput stage: requests/sec through
    {!Server.serve_fd} over a pipe, on a warm cache.

    The feeder writes a whole batch of identical [simulate] requests as
    one buffer — the pipelined shape — so the timed region measures the
    serve loop itself: line scanning, JSON parsing, admission, pool
    dispatch, tenant accounting and response writing.  It does not
    measure simulation: the single cell every request names is simulated
    once in an untimed warm-up batch, so the timed batch is all memo
    hits.  Gated next to the grid stages, so a serve-loop regression
    (say, a read buffer that goes quadratic in the batch size) fails
    [catt_cli bench --check] exactly like a simulator one.

    Lives here rather than in {!Experiments.Bench_core} because the
    dependency points the other way — serve is built on experiments —
    so callers (the CLI gate, [bench/main], the smoke test) compose this
    stage into the gated list via [Bench_core.collect ~extra]. *)

module Json = Gpu_util.Json

let stage_name = "serve/pipelined"

let request_line i =
  Json.to_string
    (Protocol.request_to_json
       {
         Protocol.id = Printf.sprintf "bench-%d" i;
         tenant = "bench";
         trace_id = None;
         kind =
           Protocol.Simulate
             {
               Protocol.workload = "ATAX";
               scheme = Experiments.Scheme.Baseline;
               co_resident = None;
             };
       })

(* write [payload] in one stream from a feeder thread, then close —
   serve_fd's EOF signal *)
let feed fd payload =
  let b = Bytes.of_string payload in
  let len = Bytes.length b in
  let pos = ref 0 in
  (try
     while !pos < len do
       match Unix.write fd b !pos (len - !pos) with
       | n -> pos := !pos + n
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     done
   with Unix.Unix_error (Unix.EPIPE, _, _) -> ());
  Unix.close fd

(** Push [requests] pipelined requests through [server] over a pipe pair
    and wait for every response.  Raises if any response goes missing —
    a bench that silently under-counts would gate on garbage. *)
let run_batch server ~requests =
  let in_r, in_w = Unix.pipe ~cloexec:false () in
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let payload =
    String.concat "" (List.init requests (fun i -> request_line i ^ "\n"))
  in
  let feeder = Thread.create (fun () -> feed in_w payload) () in
  let seen = ref 0 in
  let drainer =
    Thread.create
      (fun () ->
        let ic = Unix.in_channel_of_descr out_r in
        (try
           while !seen < requests do
             ignore (input_line ic);
             incr seen
           done
         with End_of_file -> ());
        close_in ic)
      ()
  in
  Server.serve_fd server ~in_fd:in_r ~out_fd:out_w ~stop:(fun () -> false);
  Thread.join feeder;
  (* serve_fd drained this connection, so every response is written; EOF
     unblocks the drainer if any went missing *)
  Unix.close out_w;
  Thread.join drainer;
  Unix.close in_r;
  if !seen <> requests then
    failwith
      (Printf.sprintf "serve bench: %d responses for %d requests" !seen
         requests)

let stage ?(requests = 1024) ?(reps = 3) () =
  let cfg = Experiments.Configs.max_l1d () in
  (* keep the bench free of disk-cache side effects; the in-process memo
     is what makes the timed batch warm *)
  let was_enabled = !Experiments.Cache.enabled in
  Experiments.Cache.enabled := false;
  Fun.protect
    ~finally:(fun () -> Experiments.Cache.enabled := was_enabled)
    (fun () ->
      let server = Server.create ~cfg ~jobs:2 ~queue_cap:requests () in
      run_batch server ~requests:4 (* warm-up: simulate the cell once *);
      (* best of [reps] batches: a millisecond-scale stage is at the
         mercy of the scheduler, and noise only ever slows it down *)
      let best = ref None in
      for _ = 1 to max 1 reps do
        let st =
          Experiments.Bench_core.measure ~name:stage_name ~cells:requests
            (fun () -> run_batch server ~requests)
        in
        match !best with
        | Some (b : Experiments.Bench_core.stage)
          when b.Experiments.Bench_core.cells_per_sec
               >= st.Experiments.Bench_core.cells_per_sec ->
          ()
        | _ -> best := Some st
      done;
      Server.shutdown server;
      Option.get !best)

(* ------------------------------------------------------------------ *)
(* Obs overhead on the serve path (A/A)                                *)
(* ------------------------------------------------------------------ *)

(** {!Experiments.Bench_core.obs_overhead}, but over the pipelined serve
    stage instead of a bare kernel: two interleaved batch families with
    span tracing *and* structured logging disabled (their median delta
    bounds the telemetry plane's disabled-path cost — the trace-id
    minting, the [enabled] guards in the access/slow-log hooks, the
    histogram records — plus residual noise, the same ≤5% envelope)
    against batches with tracing on and the access log writing to
    [/dev/null].  The serve batch runs threads, pipes and a domain pool
    — far noisier than the single-threaded kernel batch of
    {!Experiments.Bench_core.obs_overhead} — so the batches are long
    (2048 requests), GC debt is drained before each timed region, and
    the A/A order alternates per rep to cancel drift.
    Span sink and log state are restored afterwards. *)
let obs_overhead ?(reps = 7) ?(requests = 2048) () =
  let cfg = Experiments.Configs.max_l1d () in
  let was_cache = !Experiments.Cache.enabled in
  let was_spans = !Obs.Span.enabled in
  let was_log = !Obs.Log.enabled in
  Experiments.Cache.enabled := false;
  Fun.protect
    ~finally:(fun () ->
      Experiments.Cache.enabled := was_cache;
      Obs.Log.close ();
      Obs.Span.enabled := was_spans;
      Obs.Log.enabled := was_log)
    (fun () ->
      (* a real (discarding) sink, so the enabled batch pays the full
         render-and-write cost per request *)
      Obs.Log.set_channel ~close_on_reset:true (open_out "/dev/null");
      Obs.Log.enabled := false;
      Obs.Span.enabled := false;
      let server = Server.create ~cfg ~jobs:2 ~queue_cap:requests () in
      run_batch server ~requests:4 (* warm-up: simulate the cell once *);
      let time f =
        (* drain the previous batch's GC debt first: an enabled batch's
           garbage collected *during* the next disabled batch would bias
           whichever A/A batch runs first *)
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0
      in
      let reps = max 1 reps in
      let a = Array.make reps 0. in
      let b = Array.make reps 0. in
      let en = Array.make reps 0. in
      for i = 0 to reps - 1 do
        Obs.Span.enabled := false;
        Obs.Log.enabled := false;
        (* alternate A/B order per rep so any residual first-batch bias
           cancels in the medians *)
        if i land 1 = 0 then begin
          a.(i) <- time (fun () -> run_batch server ~requests);
          b.(i) <- time (fun () -> run_batch server ~requests)
        end
        else begin
          b.(i) <- time (fun () -> run_batch server ~requests);
          a.(i) <- time (fun () -> run_batch server ~requests)
        end;
        Obs.Span.enabled := true;
        Obs.Log.enabled := true;
        en.(i) <- time (fun () -> run_batch server ~requests);
        Obs.Span.enabled := false;
        Obs.Log.enabled := false;
        Obs.Span.reset ()
      done;
      Server.shutdown server;
      let med = Gpu_util.Stats.median in
      let ma = med a and mb = med b and me = med en in
      let disabled_ab_pct = 100. *. (abs_float (ma -. mb) /. min ma mb) in
      {
        Experiments.Bench_core.disabled_ms = 1000. *. min ma mb;
        disabled_ab_pct;
        enabled_ms = 1000. *. me;
        enabled_pct = 100. *. ((me -. min ma mb) /. min ma mb);
        disabled_within_5pct = disabled_ab_pct <= 5.;
      })
