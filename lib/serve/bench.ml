(** The [serve/pipelined] throughput stage: requests/sec through
    {!Server.serve_fd} over a pipe, on a warm cache.

    The feeder writes a whole batch of identical [simulate] requests as
    one buffer — the pipelined shape — so the timed region measures the
    serve loop itself: line scanning, JSON parsing, admission, pool
    dispatch, tenant accounting and response writing.  It does not
    measure simulation: the single cell every request names is simulated
    once in an untimed warm-up batch, so the timed batch is all memo
    hits.  Gated next to the grid stages, so a serve-loop regression
    (say, a read buffer that goes quadratic in the batch size) fails
    [catt_cli bench --check] exactly like a simulator one.

    Lives here rather than in {!Experiments.Bench_core} because the
    dependency points the other way — serve is built on experiments —
    so callers (the CLI gate, [bench/main], the smoke test) compose this
    stage into the gated list via [Bench_core.collect ~extra]. *)

module Json = Gpu_util.Json

let stage_name = "serve/pipelined"

let request_line i =
  Json.to_string
    (Protocol.request_to_json
       {
         Protocol.id = Printf.sprintf "bench-%d" i;
         tenant = "bench";
         kind =
           Protocol.Simulate
             {
               Protocol.workload = "ATAX";
               scheme = Experiments.Scheme.Baseline;
               co_resident = None;
             };
       })

(* write [payload] in one stream from a feeder thread, then close —
   serve_fd's EOF signal *)
let feed fd payload =
  let b = Bytes.of_string payload in
  let len = Bytes.length b in
  let pos = ref 0 in
  (try
     while !pos < len do
       match Unix.write fd b !pos (len - !pos) with
       | n -> pos := !pos + n
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     done
   with Unix.Unix_error (Unix.EPIPE, _, _) -> ());
  Unix.close fd

(** Push [requests] pipelined requests through [server] over a pipe pair
    and wait for every response.  Raises if any response goes missing —
    a bench that silently under-counts would gate on garbage. *)
let run_batch server ~requests =
  let in_r, in_w = Unix.pipe ~cloexec:false () in
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let payload =
    String.concat "" (List.init requests (fun i -> request_line i ^ "\n"))
  in
  let feeder = Thread.create (fun () -> feed in_w payload) () in
  let seen = ref 0 in
  let drainer =
    Thread.create
      (fun () ->
        let ic = Unix.in_channel_of_descr out_r in
        (try
           while !seen < requests do
             ignore (input_line ic);
             incr seen
           done
         with End_of_file -> ());
        close_in ic)
      ()
  in
  Server.serve_fd server ~in_fd:in_r ~out_fd:out_w ~stop:(fun () -> false);
  Thread.join feeder;
  (* serve_fd drained this connection, so every response is written; EOF
     unblocks the drainer if any went missing *)
  Unix.close out_w;
  Thread.join drainer;
  Unix.close in_r;
  if !seen <> requests then
    failwith
      (Printf.sprintf "serve bench: %d responses for %d requests" !seen
         requests)

let stage ?(requests = 1024) ?(reps = 3) () =
  let cfg = Experiments.Configs.max_l1d () in
  (* keep the bench free of disk-cache side effects; the in-process memo
     is what makes the timed batch warm *)
  let was_enabled = !Experiments.Cache.enabled in
  Experiments.Cache.enabled := false;
  Fun.protect
    ~finally:(fun () -> Experiments.Cache.enabled := was_enabled)
    (fun () ->
      let server = Server.create ~cfg ~jobs:2 ~queue_cap:requests () in
      run_batch server ~requests:4 (* warm-up: simulate the cell once *);
      (* best of [reps] batches: a millisecond-scale stage is at the
         mercy of the scheduler, and noise only ever slows it down *)
      let best = ref None in
      for _ = 1 to max 1 reps do
        let st =
          Experiments.Bench_core.measure ~name:stage_name ~cells:requests
            (fun () -> run_batch server ~requests)
        in
        match !best with
        | Some (b : Experiments.Bench_core.stage)
          when b.Experiments.Bench_core.cells_per_sec
               >= st.Experiments.Bench_core.cells_per_sec ->
          ()
        | _ -> best := Some st
      done;
      Server.shutdown server;
      Option.get !best)
