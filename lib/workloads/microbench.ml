(** "L1D-full-with-N-warps" microbenchmarks (paper Fig. 3).

    Fixed total work, variable TLP.  The per-SM dataset is a fixed number
    of {e slices}; each slice is one warp's reusable working set — [span]
    cache lines walked coalesced (lane [l] reads element [j·32 + l], one
    line per instruction) — sized so that [fill_warps] concurrent slices
    exactly fill the L1D.  A run with [w] warps gives each warp
    [slices / w] slices to re-walk [reps] times:

    - [w < fill_warps]: everything fits but latency hiding is poor;
    - [w = fill_warps]: resident footprint = L1D, maximal useful TLP;
    - [w > fill_warps]: resident footprint exceeds the L1D and the re-walks
      thrash — the paper's contention regime.

    The result is the U-shaped execution-time curve of Fig. 3. *)

type t = {
  label : string;
  fill_warps : int;
  span : int;  (** elements per lane per slice *)
  slices : int;  (** per SM; total work is [slices * reps * span * warp_size] *)
  reps : int;
}

let variant ~l1d_bytes ~line_bytes ~warp_size ~fill_warps ~reps =
  let lines_total = l1d_bytes / line_bytes in
  let lines_per_slice = lines_total / fill_warps in
  let span = lines_per_slice * line_bytes / (warp_size * 4) in
  if span < 1 then
    invalid_arg "Microbench.variant: L1D too small for this warp count";
  {
    label = Printf.sprintf "L1D-full-with-%d-warps" fill_warps;
    fill_warps;
    span;
    slices = 32;
    reps;
  }

let warp_size = 32

let source t ~warps =
  let slices_per_warp = t.slices / warps in
  (* warp w re-walks slices w, w+WARPS, w+2·WARPS, … so the concurrently
     active slices are consecutive in memory and spread evenly over the
     cache sets (a strided assignment would alias them onto one half) *)
  Printf.sprintf
    {|
#define SPAN %d
#define SLICES %d
#define SPW %d
#define WARPS %d
#define REPS %d
#define WS %d
__global__ void l1full_kernel(float *data, float *out) {
  int lin = threadIdx.x;
  int warp = lin / WS;
  int lane = lin - warp * WS;
  float acc = 0.0;
  for (int s = 0; s < SPW; s++) {
    int base = (blockIdx.x * SLICES + s * WARPS + warp) * (WS * SPAN) + lane;
    for (int r = 0; r < REPS; r++) {
      for (int j = 0; j < SPAN; j++) {
        acc += data[base + j * WS];
      }
    }
  }
  out[blockIdx.x * blockDim.x + lin] = acc;
}
|}
    t.span t.slices slices_per_warp warps t.reps warp_size

(** Run [t] with [warps] warps per SM (one TB per SM, so the count is
    exact).  [warps] must divide [t.slices].  [?profile] attaches a
    profiler collector to the launch. *)
let run ?profile (cfg : Gpusim.Config.t) t ~warps =
  if warps < 1 || warps * cfg.Gpusim.Config.warp_size > 1024 then
    invalid_arg "Microbench.run: warps out of range";
  if t.slices mod warps <> 0 then
    invalid_arg "Microbench.run: warps must divide the slice count";
  let ws = cfg.Gpusim.Config.warp_size in
  let block_threads = warps * ws in
  let num_sms = cfg.Gpusim.Config.num_sms in
  let kernel = Minicuda.Parser.parse_kernel (source t ~warps) in
  let prog = Gpusim.Codegen.compile_kernel kernel in
  let dev = Gpusim.Gpu.create cfg in
  let data_len = num_sms * t.slices * ws * t.span in
  Gpusim.Gpu.upload dev "data"
    (Array.init data_len (fun i -> float_of_int (i land 15)));
  Gpusim.Gpu.alloc dev "out" (num_sms * block_threads);
  let launch =
    Gpusim.Gpu.default_launch ?profile ~prog ~grid:(num_sms, 1)
      ~block:(block_threads, 1)
      [ Gpusim.Gpu.Arr "data"; Gpusim.Gpu.Arr "out" ]
  in
  let stats, _ = Gpusim.Gpu.launch dev launch in
  stats

(** CPU oracle for the kernel's reduction, for tests. *)
let expected cfg t ~warps =
  let ws = cfg.Gpusim.Config.warp_size in
  let num_sms = cfg.Gpusim.Config.num_sms in
  let data_len = num_sms * t.slices * ws * t.span in
  let data = Array.init data_len (fun i -> float_of_int (i land 15)) in
  let spw = t.slices / warps in
  let block_threads = warps * ws in
  Array.init (num_sms * block_threads) (fun gid ->
      let sm = gid / block_threads and lin = gid mod block_threads in
      let warp = lin / ws and lane = lin mod ws in
      let acc = ref 0. in
      for s = 0 to spw - 1 do
        let base = (((sm * t.slices) + (s * warps) + warp) * (ws * t.span)) + lane in
        for _ = 1 to t.reps do
          for j = 0 to t.span - 1 do
            acc := !acc +. data.(base + (j * ws))
          done
        done
      done;
      !acc)
