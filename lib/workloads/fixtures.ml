(** Microbench fixtures for the scheme-semantics property tests.

    Two tiny kernels with *designed* cache behaviour, used by the
    [@schemes] test alias to pin the semantics of the interference-aware
    hardware schemes (CIAO bypassing, ATA-Cache).  They are deliberately
    NOT in {!Registry.all}: they are test instruments with free
    parameters, not benchmark applications with oracles.

    - {!run_reuse}: a pure-reuse walk — every warp re-walks its own
      [span]-line slice [reps] times, coalesced.  With
      [warps * span <= L1D lines] the footprint fits; above that the
      re-walks thrash.  Either way every access after the first walk is
      a reuse, which is exactly the regime where an aggregated tag array
      must never *lose* hits: promoting only proven-reuse lines can drop
      the odd cold fill but never evict a live line earlier than plain
      LRU would.

    - {!run_interference}: the two-array contention shape CIAO targets —
      warp 0 keeps re-walking a small [hot] array that fits comfortably,
      while the remaining warps stream once through a large [stream]
      array, evicting the hot warp's lines as they go.  The streamers'
      fills keep victimizing another warp's lines, so the interference
      monitor attributes score to them and (past warm-up) flags them. *)

type reuse = { warps : int; span : int; reps : int }
(** [span] is in cache lines per warp (one line per lane-coalesced
    access at 32 lanes x 4 bytes = 128-byte lines). *)

let warp_size = 32

let reuse_source { warps; span; reps } =
  Printf.sprintf
    {|
#define SPAN %d
#define WARPS %d
#define REPS %d
#define WS %d
__global__ void reuse_kernel(float *data, float *out) {
  int lin = threadIdx.x;
  int warp = lin / WS;
  int lane = lin - warp * WS;
  float acc = 0.0;
  int base = (blockIdx.x * WARPS + warp) * (WS * SPAN) + lane;
  for (int r = 0; r < REPS; r++) {
    for (int j = 0; j < SPAN; j++) {
      acc += data[base + j * WS];
    }
  }
  out[blockIdx.x * blockDim.x + lin] = acc;
}
|}
    span warps reps warp_size

let run_reuse ?(throttle = `None) (cfg : Gpusim.Config.t) p =
  if p.warps < 1 || p.warps * cfg.Gpusim.Config.warp_size > 1024 then
    invalid_arg "Fixtures.run_reuse: warps out of range";
  let ws = cfg.Gpusim.Config.warp_size in
  let num_sms = cfg.Gpusim.Config.num_sms in
  let kernel = Minicuda.Parser.parse_kernel (reuse_source p) in
  let prog = Gpusim.Codegen.compile_kernel kernel in
  let dev = Gpusim.Gpu.create cfg in
  let data_len = num_sms * p.warps * ws * p.span in
  Gpusim.Gpu.upload dev "data"
    (Array.init data_len (fun i -> float_of_int (i land 15)));
  Gpusim.Gpu.alloc dev "out" (num_sms * p.warps * ws);
  let launch =
    Gpusim.Gpu.default_launch ~runtime_throttle:throttle ~prog
      ~grid:(num_sms, 1)
      ~block:(p.warps * ws, 1)
      [ Gpusim.Gpu.Arr "data"; Gpusim.Gpu.Arr "out" ]
  in
  let stats, _ = Gpusim.Gpu.launch dev launch in
  stats

type interference = {
  streamers : int;  (** streaming warps besides the one hot warp *)
  hot_span : int;  (** lines the hot warp re-walks *)
  stream_span : int;  (** lines each streamer walks once *)
  hot_reps : int;
}

let interference_source { streamers; hot_span; stream_span; hot_reps } =
  Printf.sprintf
    {|
#define HOTSPAN %d
#define BIGSPAN %d
#define HOTREPS %d
#define WARPS %d
#define WS %d
__global__ void interfere_kernel(float *hot, float *stream, float *out) {
  int lin = threadIdx.x;
  int warp = lin / WS;
  int lane = lin - warp * WS;
  float acc = 0.0;
  if (warp == 0) {
    for (int r = 0; r < HOTREPS; r++) {
      for (int j = 0; j < HOTSPAN; j++) {
        acc += hot[blockIdx.x * (WS * HOTSPAN) + j * WS + lane];
      }
    }
  } else {
    int base = (blockIdx.x * (WARPS - 1) + (warp - 1)) * (WS * BIGSPAN) + lane;
    for (int j = 0; j < BIGSPAN; j++) {
      acc += stream[base + j * WS];
    }
  }
  out[blockIdx.x * blockDim.x + lin] = acc;
}
|}
    hot_span stream_span hot_reps (streamers + 1) warp_size

let run_interference ?(throttle = `None) (cfg : Gpusim.Config.t) p =
  let warps = p.streamers + 1 in
  if p.streamers < 1 || warps * cfg.Gpusim.Config.warp_size > 1024 then
    invalid_arg "Fixtures.run_interference: streamers out of range";
  let ws = cfg.Gpusim.Config.warp_size in
  let num_sms = cfg.Gpusim.Config.num_sms in
  let kernel = Minicuda.Parser.parse_kernel (interference_source p) in
  let prog = Gpusim.Codegen.compile_kernel kernel in
  let dev = Gpusim.Gpu.create cfg in
  let hot_len = num_sms * ws * p.hot_span in
  let stream_len = num_sms * p.streamers * ws * p.stream_span in
  Gpusim.Gpu.upload dev "hot"
    (Array.init hot_len (fun i -> float_of_int (i land 7)));
  Gpusim.Gpu.upload dev "stream"
    (Array.init stream_len (fun i -> float_of_int (i land 3)));
  Gpusim.Gpu.alloc dev "out" (num_sms * warps * ws);
  let launch =
    Gpusim.Gpu.default_launch ~runtime_throttle:throttle ~prog
      ~grid:(num_sms, 1)
      ~block:(warps * ws, 1)
      [ Gpusim.Gpu.Arr "hot"; Gpusim.Gpu.Arr "stream"; Gpusim.Gpu.Arr "out" ]
  in
  let stats, _ = Gpusim.Gpu.launch dev launch in
  stats
