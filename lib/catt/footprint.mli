(** L1D footprint estimation — the paper's Eqs. 6, 7 and 8.

    For every access collected by {!Analysis}, [req_warp] counts the cache
    lines one warp's execution of the instruction touches.  Regular
    accesses are counted exactly by enumerating the 32 lane addresses
    (which reduces to Eq. 7's [min(C_tid, warp_size)] for 1-D thread
    blocks and handles multidimensional TBs the way the paper's Section 4.2
    fallback does); irregular (data-dependent) accesses are modeled as
    fully uncoalesced, one request per thread — [warp_size] lines per
    warp, Section 4.2's treatment of accesses the affine analysis cannot
    bound. *)

type access_summary = {
  access : Analysis.access;
  req_warp : int;  (** Eq. 7: lines requested by one warp *)
  has_reuse : bool;  (** Eq. 6: the fetched line is re-accessed next iteration *)
  irregular : bool;
}

type loop_footprint = {
  loop : Analysis.loop_report;
  summaries : access_summary list;
  req_per_warp : int;  (** Σ over off-chip instructions of [req_warp] *)
  shared_lines : int;
      (** lines counted once per SM regardless of warp count — inter-warp
          shared tiers of the sharpened model; always [0] under the plain
          Eq. 8 constructor {!of_loop} *)
  has_locality : bool;  (** some access has cross-iteration reuse *)
  any_irregular : bool;
}

val req_warp :
  line_bytes:int -> warp_size:int -> block_x:int -> Affine.value -> int
(** Lines per warp for one access (Eq. 7; exact lane enumeration). *)

val has_reuse : line_bytes:int -> Analysis.access -> bool
(** Eq. 6 on the access's innermost enclosing iterator. *)

val dedupe_accesses : Analysis.access list -> Analysis.access list
(** Merge accesses with equal (array, index) — a read-modify-write is one
    request stream — before summing Eq. 8.  First-occurrence order. *)

val of_loop :
  line_bytes:int ->
  warp_size:int ->
  block_x:int ->
  Analysis.loop_report ->
  loop_footprint

val of_loop_sa :
  line_bytes:int ->
  warp_size:int ->
  block_x:int ->
  tbs:int ->
  Staticmodel.Gaccess.loop_info option ->
  Analysis.loop_report ->
  loop_footprint
(** The sharpened (catt-sa) footprint: cross-access line unions,
    inter-warp sharing tiers (TB-tier folded in at [tbs] residency) and
    interval-bounded irregular accesses, built from the {!Staticmodel}
    report for the same loop.  [None] falls back to {!of_loop}. *)

val size_req_lines : loop_footprint -> concurrent_warps:int -> int
(** Eq. 8: lines touched by all concurrently active warps on an SM, plus
    the once-per-SM [shared_lines] tier. *)

val size_req_bytes :
  line_bytes:int -> loop_footprint -> concurrent_warps:int -> int
