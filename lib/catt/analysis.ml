module Ast = Minicuda.Ast
module Typecheck = Minicuda.Typecheck

(* same record as the sanitizer's, re-exported so analysis results and
   sanitizer calls share geometry values without conversion *)
type geometry = Sanitize.Geom.t = {
  grid_x : int;
  grid_y : int;
  block_x : int;
  block_y : int;
}

type access = {
  array : string;
  index : Affine.value;
  is_load : bool;
  is_store : bool;
  innermost_iter : string option;
}

type loop_report = {
  loop_id : int;
  loop_var : string;
  accesses : access list;
  has_barrier : bool;
}

(* ------------------------------------------------------------------ *)
(* Abstract environment                                               *)
(* ------------------------------------------------------------------ *)

type env = (string * Affine.value) list

let lookup (env : env) name =
  match List.assoc_opt name env with Some v -> v | None -> Affine.Unknown

let bind (env : env) name value : env = (name, value) :: env

(* ------------------------------------------------------------------ *)
(* Expression evaluation over the affine domain                        *)
(* ------------------------------------------------------------------ *)

let rec eval geo (env : env) (e : Ast.expr) : Affine.value =
  match e with
  | Ast.Int_lit n -> Affine.Affine (Affine.const n)
  | Ast.Float_lit _ | Ast.Bool_lit _ -> Affine.Unknown
  | Ast.Var name -> lookup env name
  | Ast.Builtin b -> (
    match
      Affine.of_builtin b ~bdim_x:geo.block_x ~bdim_y:geo.block_y
        ~grid_x:geo.grid_x
    with
    | Some a -> Affine.Affine a
    | None -> Affine.Unknown)
  | Ast.Binop (Ast.Add, a, b) -> Affine.add (eval geo env a) (eval geo env b)
  | Ast.Binop (Ast.Sub, a, b) -> Affine.sub (eval geo env a) (eval geo env b)
  | Ast.Binop (Ast.Mul, a, b) -> Affine.mul (eval geo env a) (eval geo env b)
  | Ast.Binop (Ast.Div, a, b) -> (
    match eval geo env b with
    | Affine.Affine k when Affine.is_constant k ->
      Affine.div_exact (eval geo env a) k.Affine.const
    | _ -> Affine.Unknown)
  | Ast.Binop (_, _, _) -> Affine.Unknown
  | Ast.Unop (Ast.Neg, a) -> Affine.neg (eval geo env a)
  | Ast.Unop (Ast.Not, _) -> Affine.Unknown
  | Ast.Index (_, _) -> Affine.Unknown  (* data-dependent *)
  | Ast.Call (_, _) -> Affine.Unknown
  | Ast.Cast (Ast.Int, a) -> eval geo env a
  | Ast.Cast (_, _) -> Affine.Unknown
  | Ast.Ternary (_, _, _) -> Affine.Unknown

(* ------------------------------------------------------------------ *)
(* Access recording                                                    *)
(* ------------------------------------------------------------------ *)

type recorder = {
  globals : (string, Typecheck.array_info) Hashtbl.t;
  mutable current : access list;  (* reversed; only while inside a loop *)
  mutable recording : bool;
  mutable iter_stack : string list;  (* innermost first *)
}

let same_index a b =
  match (a, b) with
  | Affine.Affine x, Affine.Affine y -> Affine.equal x y
  | Affine.Unknown, Affine.Unknown -> true
  | _ -> false

let record rec_ ~array ~index ~store =
  if rec_.recording then begin
    match Hashtbl.find_opt rec_.globals array with
    | None -> ()  (* shared-memory array: on-chip, not part of Eq. 8 *)
    | Some _ ->
      let innermost_iter =
        match rec_.iter_stack with [] -> None | it :: _ -> Some it
      in
      let rec merge = function
        | [] ->
          [
            {
              array;
              index;
              is_load = not store;
              is_store = store;
              innermost_iter;
            };
          ]
        | a :: rest ->
          if a.array = array && same_index a.index index then
            {
              a with
              is_load = a.is_load || not store;
              is_store = a.is_store || store;
            }
            :: rest
          else a :: merge rest
      in
      rec_.current <- merge rec_.current
  end

(* every array read inside an expression, including nested ones *)
let rec record_expr geo rec_ env (e : Ast.expr) =
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Var _ | Ast.Builtin _
    ->
    ()
  | Ast.Index (array, idx) ->
    record_expr geo rec_ env idx;
    record rec_ ~array ~index:(eval geo env idx) ~store:false
  | Ast.Binop (_, a, b) ->
    record_expr geo rec_ env a;
    record_expr geo rec_ env b
  | Ast.Unop (_, a) | Ast.Cast (_, a) -> record_expr geo rec_ env a
  | Ast.Call (_, args) -> List.iter (record_expr geo rec_ env) args
  | Ast.Ternary (c, a, b) ->
    record_expr geo rec_ env c;
    record_expr geo rec_ env a;
    record_expr geo rec_ env b

(* ------------------------------------------------------------------ *)
(* Statement interpretation                                            *)
(* ------------------------------------------------------------------ *)

let join_env (a : env) (b : env) : env =
  (* keep bindings that agree; anything else decays to Unknown *)
  List.map
    (fun (name, va) ->
      let vb = lookup b name in
      if same_index va vb then (name, va) else (name, Affine.Unknown))
    a

let assign_value geo env op target_value (e : Ast.expr) =
  let rhs = eval geo env e in
  match op with
  | Ast.Assign_eq -> rhs
  | Ast.Assign_add -> Affine.add target_value rhs
  | Ast.Assign_sub -> Affine.sub target_value rhs
  | Ast.Assign_mul -> Affine.mul target_value rhs
  | Ast.Assign_div -> (
    match rhs with
    | Affine.Affine k when Affine.is_constant k ->
      Affine.div_exact target_value k.Affine.const
    | _ -> Affine.Unknown)

let rec walk_stmt geo rec_ (env : env) (s : Ast.stmt) : env =
  match s.Ast.sk with
  | Ast.Decl (_, name, None) -> bind env name Affine.Unknown
  | Ast.Decl (ty, name, Some e) ->
    record_expr geo rec_ env e;
    let v = if ty = Ast.Int then eval geo env e else Affine.Unknown in
    bind env name v
  | Ast.Shared_decl (_, _, _) -> env
  | Ast.Assign (Ast.Lvar name, op, e) ->
    record_expr geo rec_ env e;
    bind env name (assign_value geo env op (lookup env name) e)
  | Ast.Assign (Ast.Larr (array, idx), op, e) ->
    record_expr geo rec_ env idx;
    record_expr geo rec_ env e;
    let index = eval geo env idx in
    (* compound ops read-modify-write: both a load and a store *)
    if op <> Ast.Assign_eq then record rec_ ~array ~index ~store:false;
    record rec_ ~array ~index ~store:true;
    env
  | Ast.If (cond, then_b, else_b) ->
    record_expr geo rec_ env cond;
    let env_then = walk_block geo rec_ env then_b in
    let env_else = walk_block geo rec_ env else_b in
    join_env (join_env env env_then) env_else
  | Ast.While (cond, body) ->
    (* a loop with an anonymous iterator and unknown trip count: variables
       assigned in the body decay to Unknown, accesses are still collected *)
    let env_in = kill_assigned env body in
    record_expr geo rec_ env_in cond;
    rec_.iter_stack <- "<while>" :: rec_.iter_stack;
    let _ = walk_block geo rec_ env_in body in
    rec_.iter_stack <- List.tl rec_.iter_stack;
    env_in
  | Ast.For ({ loop_var; init; cond; step; body; _ } as loop) ->
    record_expr geo rec_ env init;
    let env_in = loop_body_env geo env loop in
    (* condition and step re-execute every iteration *)
    record_expr geo rec_ env_in cond;
    record_expr geo rec_ env_in step;
    rec_.iter_stack <- loop_var :: rec_.iter_stack;
    let _ = walk_block geo rec_ env_in body in
    rec_.iter_stack <- List.tl rec_.iter_stack;
    bind (kill_assigned env body) loop_var Affine.Unknown
  | Ast.Syncthreads | Ast.Return | Ast.Break | Ast.Continue -> env
  | Ast.Block body -> walk_block geo rec_ env body

and walk_block geo rec_ env b = List.fold_left (walk_stmt geo rec_) env b

(* variables assigned anywhere in [body] become Unknown *)
and kill_assigned (env : env) body : env =
  let assigned =
    Ast.fold_block
      (fun acc s ->
        match s.Ast.sk with
        | Ast.Assign (Ast.Lvar name, _, _) -> name :: acc
        | Ast.For { loop_var; declares = false; _ } -> loop_var :: acc
        | _ -> acc)
      [] body
  in
  List.map
    (fun (name, v) ->
      if List.mem name assigned then (name, Affine.Unknown) else (name, v))
    env

(* Widen accumulators: run the body abstractly once (without recording)
   and detect v_out = v_in + δ with δ a loop-invariant constant, giving
   v = v_in + δ·iter. *)
and loop_body_env geo (env : env) { Ast.loop_var; init; step; body; _ } : env =
  let init_v = eval geo env init in
  let step_v = eval geo env step in
  let iter = Affine.Affine (Affine.iter loop_var) in
  let loop_var_value =
    (* loop_var = init + step·iter when the step is a constant *)
    match step_v with
    | Affine.Affine k when Affine.is_constant k ->
      Affine.add init_v (Affine.mul step_v iter)
    | _ -> Affine.Unknown
  in
  let env = bind env loop_var loop_var_value in
  (* widen accumulators over this iterator *)
  let silent =
    { globals = Hashtbl.create 0; current = []; recording = false; iter_stack = [] }
  in
  let env_out = walk_block geo silent env body in
  List.map
    (fun (name, v_in) ->
      if name = loop_var then (name, v_in)
      else
        let v_out = lookup env_out name in
        if same_index v_in v_out then (name, v_in)
        else
          match (Affine.sub v_out v_in, v_in) with
          | Affine.Affine delta, Affine.Affine base
            when Affine.is_constant delta
                 && Affine.coeff_of_iter base loop_var = 0 ->
            (* v = v + δ each iteration → v = v_in + δ·iter *)
            ( name,
              Affine.add (Affine.Affine base)
                (Affine.mul (Affine.Affine delta) iter) )
          | _ -> (name, Affine.Unknown))
    env

(* ------------------------------------------------------------------ *)
(* Kernel driver                                                       *)
(* ------------------------------------------------------------------ *)

let barrier_in stmt =
  Ast.fold_stmt (fun acc s -> acc || s.Ast.sk = Ast.Syncthreads) false stmt

let analyze_kernel (k : Ast.kernel) geo =
  let info = Typecheck.check_kernel k in
  let globals = Hashtbl.create 8 in
  List.iter
    (fun (name, (a : Typecheck.array_info)) ->
      if a.space = Typecheck.Global then Hashtbl.replace globals name a)
    info.arrays;
  let rec_ = { globals; current = []; recording = false; iter_stack = [] } in
  (* initial env: scalar int params are launch constants we cannot see, so
     Unknown; the benchmark kernels use #define sizes, which the parser
     already folded *)
  let env0 =
    List.map (fun (name, _) -> (name, Affine.Unknown)) info.scalar_params
  in
  let reports = ref [] in
  let next_id = ref 0 in
  let rec top geo env (s : Ast.stmt) : env =
    match s.Ast.sk with
    | Ast.For { loop_var; _ } ->
      let id = !next_id in
      incr next_id;
      rec_.current <- [];
      rec_.recording <- true;
      let env' = walk_stmt geo rec_ env s in
      rec_.recording <- false;
      reports :=
        {
          loop_id = id;
          loop_var;
          accesses = List.rev rec_.current;
          has_barrier = barrier_in s;
        }
        :: !reports;
      env'
    | Ast.While (_, _) ->
      let id = !next_id in
      incr next_id;
      rec_.current <- [];
      rec_.recording <- true;
      let env' = walk_stmt geo rec_ env s in
      rec_.recording <- false;
      reports :=
        {
          loop_id = id;
          loop_var = "<while>";
          accesses = List.rev rec_.current;
          has_barrier = barrier_in s;
        }
        :: !reports;
      env'
    | Ast.If (cond, then_b, else_b) ->
      ignore cond;
      let env_then = List.fold_left (top geo) env then_b in
      let env_else = List.fold_left (top geo) env else_b in
      join_env (join_env env env_then) env_else
    | Ast.Block body -> List.fold_left (top geo) env body
    | _ -> walk_stmt geo rec_ env s
  in
  let _ = List.fold_left (top geo) env0 k.Ast.body in
  List.rev !reports
