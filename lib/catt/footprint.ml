type access_summary = {
  access : Analysis.access;
  req_warp : int;
  has_reuse : bool;
  irregular : bool;
}

type loop_footprint = {
  loop : Analysis.loop_report;
  summaries : access_summary list;
  req_per_warp : int;
  shared_lines : int;
  has_locality : bool;
  any_irregular : bool;
}

let elem_bytes = 4

let req_warp ~line_bytes ~warp_size ~block_x index =
  match index with
  | Affine.Unknown ->
    (* Section 4.2: an irregular (data-dependent) index is modeled as fully
       uncoalesced — one request per thread, i.e. [warp_size] lines per
       warp.  This is the conservative direction for a capacity bound: the
       lanes could land anywhere, so assume no line sharing. *)
    warp_size
  | Affine.Affine a ->
    (* enumerate the addresses of warp 0 of block 0 at iteration 0; only
       lane-to-lane distances matter, so this is representative of every
       aligned warp *)
    let lines = Array.make warp_size 0 in
    for lane = 0 to warp_size - 1 do
      let idx = Affine.eval_lane a ~bdim_x:block_x ~lane ~base_linear_tid:0 in
      let byte = idx * elem_bytes in
      (* floor toward -inf so negative offsets don't merge spuriously *)
      lines.(lane) <-
        (if byte >= 0 then byte / line_bytes else ((byte + 1) / line_bytes) - 1)
    done;
    (* distinct-count by sorting: O(WS log WS) instead of the former
       List.mem scan's O(WS^2) *)
    Array.sort compare lines;
    let distinct = ref 1 in
    for i = 1 to warp_size - 1 do
      if lines.(i) <> lines.(i - 1) then incr distinct
    done;
    !distinct

let has_reuse ~line_bytes (access : Analysis.access) =
  match access.Analysis.index with
  | Affine.Unknown -> false
  | Affine.Affine a ->
    let coeff =
      match access.Analysis.innermost_iter with
      | None -> 0  (* no enclosing iterator: address invariant in the loop *)
      | Some it -> Affine.coeff_of_iter a it
    in
    abs coeff * elem_bytes <= line_bytes

(* One loop body touching the same (array, index) several times — a
   read-modify-write, or a value used twice — is one request stream, not
   several: Eq. 8 must count those lines once.  [Analysis.record] already
   merges duplicates while collecting, so this is a safety net for
   reports built by other producers (tests, external tools). *)
let dedupe_accesses (accesses : Analysis.access list) =
  let same (a : Analysis.access) (b : Analysis.access) =
    a.Analysis.array = b.Analysis.array
    && Analysis.same_index a.Analysis.index b.Analysis.index
  in
  let rec merge seen = function
    | [] -> List.rev seen
    | (a : Analysis.access) :: rest ->
      let seen =
        match List.partition (same a) seen with
        | [], _ -> a :: seen
        | dup :: _, others ->
          {
            dup with
            Analysis.is_load = dup.Analysis.is_load || a.Analysis.is_load;
            is_store = dup.Analysis.is_store || a.Analysis.is_store;
          }
          :: others
      in
      merge seen rest
  in
  merge [] accesses

let of_loop ~line_bytes ~warp_size ~block_x (loop : Analysis.loop_report) =
  let summaries =
    List.map
      (fun (access : Analysis.access) ->
        {
          access;
          req_warp = req_warp ~line_bytes ~warp_size ~block_x access.Analysis.index;
          has_reuse = has_reuse ~line_bytes access;
          irregular = access.Analysis.index = Affine.Unknown;
        })
      (dedupe_accesses loop.Analysis.accesses)
  in
  {
    loop;
    summaries;
    req_per_warp = List.fold_left (fun acc s -> acc + s.req_warp) 0 summaries;
    shared_lines = 0;
    has_locality = List.exists (fun s -> s.has_reuse) summaries;
    any_irregular = List.exists (fun s -> s.irregular) summaries;
  }

(* ------------------------------------------------------------------ *)
(* Sharpened footprints (catt-sa)                                      *)
(* ------------------------------------------------------------------ *)

(* Bridge a staticmodel access record back into the [Analysis.access]
   shape so downstream consumers (explain, reports) need no new cases. *)
let access_of_gaccess (g : Staticmodel.Gaccess.gaccess) : Analysis.access =
  {
    Analysis.array = g.Staticmodel.Gaccess.garray;
    index = g.Staticmodel.Gaccess.gindex;
    is_load = g.Staticmodel.Gaccess.gload;
    is_store = g.Staticmodel.Gaccess.gstore;
    innermost_iter = g.Staticmodel.Gaccess.ginnermost;
  }

(** Eq. 8 with the {!Staticmodel.Reuse} refinements: cross-access line
    unions, inter-warp sharing tiers and interval-bounded irregular
    accesses.  [shared_lines] holds the once-per-SM tier (TB-tier entries
    folded in at [tbs] residency); [req_per_warp] only the truly per-warp
    lines.  Falls back to {!of_loop} when [sa] carries no matching data.

    [has_locality] comes from the symbolic reuse classifier: invariant
    and intra-line-stride accesses reuse their lines, and so does an
    irregular access confined to a finite interval (pigeonhole). *)
let of_loop_sa ~line_bytes ~warp_size ~block_x ~tbs
    (sa : Staticmodel.Gaccess.loop_info option) (loop : Analysis.loop_report) =
  match sa with
  | None -> of_loop ~line_bytes ~warp_size ~block_x loop
  | Some li ->
    let gaccs = li.Staticmodel.Gaccess.gaccesses in
    let summaries =
      List.map
        (fun (g : Staticmodel.Gaccess.gaccess) ->
          let kind = Staticmodel.Reuse.classify ~line_bytes g in
          {
            access = access_of_gaccess g;
            req_warp =
              Staticmodel.Reuse.standalone_lines ~line_bytes ~warp_size
                ~block_x g;
            has_reuse = Staticmodel.Reuse.has_reuse kind;
            irregular = g.Staticmodel.Gaccess.gindex = Affine.Unknown;
          })
        gaccs
    in
    let ll =
      Staticmodel.Reuse.loop_lines ~line_bytes ~warp_size ~block_x ~tbs gaccs
    in
    {
      loop;
      summaries;
      req_per_warp = ll.Staticmodel.Reuse.per_warp;
      shared_lines = ll.Staticmodel.Reuse.shared;
      has_locality = List.exists (fun s -> s.has_reuse) summaries;
      any_irregular = List.exists (fun s -> s.irregular) summaries;
    }

let size_req_lines fp ~concurrent_warps =
  (fp.req_per_warp * concurrent_warps) + fp.shared_lines

let size_req_bytes ~line_bytes fp ~concurrent_warps =
  size_req_lines fp ~concurrent_warps * line_bytes
