type access_summary = {
  access : Analysis.access;
  req_warp : int;
  has_reuse : bool;
  irregular : bool;
}

type loop_footprint = {
  loop : Analysis.loop_report;
  summaries : access_summary list;
  req_per_warp : int;
  has_locality : bool;
  any_irregular : bool;
}

let elem_bytes = 4

let req_warp ~line_bytes ~warp_size ~block_x index =
  match index with
  | Affine.Unknown ->
    (* Section 4.2: an irregular (data-dependent) index is modeled as fully
       uncoalesced — one request per thread, i.e. [warp_size] lines per
       warp.  This is the conservative direction for a capacity bound: the
       lanes could land anywhere, so assume no line sharing. *)
    warp_size
  | Affine.Affine a ->
    (* enumerate the addresses of warp 0 of block 0 at iteration 0; only
       lane-to-lane distances matter, so this is representative of every
       aligned warp *)
    let lines = Array.make warp_size 0 in
    for lane = 0 to warp_size - 1 do
      let idx = Affine.eval_lane a ~bdim_x:block_x ~lane ~base_linear_tid:0 in
      let byte = idx * elem_bytes in
      (* floor toward -inf so negative offsets don't merge spuriously *)
      lines.(lane) <-
        (if byte >= 0 then byte / line_bytes else ((byte + 1) / line_bytes) - 1)
    done;
    (* distinct-count by sorting: O(WS log WS) instead of the former
       List.mem scan's O(WS^2) *)
    Array.sort compare lines;
    let distinct = ref 1 in
    for i = 1 to warp_size - 1 do
      if lines.(i) <> lines.(i - 1) then incr distinct
    done;
    !distinct

let has_reuse ~line_bytes (access : Analysis.access) =
  match access.Analysis.index with
  | Affine.Unknown -> false
  | Affine.Affine a ->
    let coeff =
      match access.Analysis.innermost_iter with
      | None -> 0  (* no enclosing iterator: address invariant in the loop *)
      | Some it -> Affine.coeff_of_iter a it
    in
    abs coeff * elem_bytes <= line_bytes

let of_loop ~line_bytes ~warp_size ~block_x (loop : Analysis.loop_report) =
  let summaries =
    List.map
      (fun (access : Analysis.access) ->
        {
          access;
          req_warp = req_warp ~line_bytes ~warp_size ~block_x access.Analysis.index;
          has_reuse = has_reuse ~line_bytes access;
          irregular = access.Analysis.index = Affine.Unknown;
        })
      loop.Analysis.accesses
  in
  {
    loop;
    summaries;
    req_per_warp = List.fold_left (fun acc s -> acc + s.req_warp) 0 summaries;
    has_locality = List.exists (fun s -> s.has_reuse) summaries;
    any_irregular = List.exists (fun s -> s.irregular) summaries;
  }

let size_req_lines fp ~concurrent_warps = fp.req_per_warp * concurrent_warps

let size_req_bytes ~line_bytes fp ~concurrent_warps =
  size_req_lines fp ~concurrent_warps * line_bytes
