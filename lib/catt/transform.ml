module Ast = Minicuda.Ast

let dummy_array_name = "catt_throttle_pad"

(* (threadIdx.y * blockDim.x + threadIdx.x) / warp_size, or the paper's
   simpler threadIdx.x / WS when the block is one-dimensional *)
let warp_id_expr ~warp_size ~one_dim_block =
  let lin =
    if one_dim_block then Ast.Builtin Ast.Thread_idx_x
    else
      Ast.Binop
        ( Ast.Add,
          Ast.Binop
            ( Ast.Mul,
              Ast.Builtin Ast.Thread_idx_y,
              Ast.Builtin Ast.Block_dim_x ),
          Ast.Builtin Ast.Thread_idx_x )
  in
  Ast.Binop (Ast.Div, lin, Ast.Int_lit warp_size)

let guarded_copy ~warp_size ~one_dim_block ~group_size ~group stmt =
  let wid = warp_id_expr ~warp_size ~one_dim_block in
  let lo = group * group_size and hi = (group + 1) * group_size in
  let cond =
    Ast.Binop
      ( Ast.And,
        Ast.Binop (Ast.Ge, wid, Ast.Int_lit lo),
        Ast.Binop (Ast.Lt, wid, Ast.Int_lit hi) )
  in
  (* synthesized statements inherit the split loop's position so any
     diagnostic on a phase points back at the source loop *)
  let loc = stmt.Ast.sloc in
  [ Ast.at ~loc (Ast.If (cond, [ stmt ], [])); Ast.at ~loc Ast.Syncthreads ]

(* A loop whose body reaches a barrier cannot be split into warp-group
   phases: the groups would rendezvous at different barrier sites, which is
   undefined on real hardware and wrong in any model. *)
let contains_barrier stmt =
  Ast.fold_stmt (fun acc s -> acc || s.Ast.sk = Ast.Syncthreads) false stmt

let split_loop ~n ~warps_per_tb ~warp_size ~one_dim_block stmt =
  if warps_per_tb mod n <> 0 then
    invalid_arg "Transform.warp_throttle: n must divide warps_per_tb";
  if contains_barrier stmt then [ stmt ]
  else
    let group_size = warps_per_tb / n in
    List.concat
      (List.init n (fun group ->
           guarded_copy ~warp_size ~one_dim_block ~group_size ~group stmt))

(* Walk the kernel body, numbering top-level loops in pre-order exactly as
   Analysis does, and replace each loop listed in [plan] by its split
   copies.  All loops are rewritten in one pass: splitting loop 0 inserts
   new top-level loops, so per-loop ids are only meaningful against the
   ORIGINAL kernel. *)
let warp_throttle_plan (k : Ast.kernel) ~plan ~warps_per_tb ~warp_size
    ~one_dim_block =
  let counter = ref 0 in
  let seen = Hashtbl.create 16 in
  let rec rewrite_block (b : Ast.block) : Ast.block =
    List.concat_map rewrite_stmt b
  and rewrite_stmt (s : Ast.stmt) : Ast.stmt list =
    match s.Ast.sk with
    | Ast.For _ | Ast.While _ -> (
      let id = !counter in
      incr counter;
      Hashtbl.replace seen id ();
      match List.assoc_opt id plan with
      | Some n when n > 1 ->
        split_loop ~n ~warps_per_tb ~warp_size ~one_dim_block s
      | _ -> [ s ])
    | Ast.If (cond, then_b, else_b) ->
      [ { s with Ast.sk = Ast.If (cond, rewrite_block then_b, rewrite_block else_b) } ]
    | Ast.Block body -> [ { s with Ast.sk = Ast.Block (rewrite_block body) } ]
    | _ -> [ s ]
  in
  let body = rewrite_block k.Ast.body in
  List.iter
    (fun (loop_id, _) ->
      if not (Hashtbl.mem seen loop_id) then
        invalid_arg
          (Printf.sprintf "Transform.warp_throttle: kernel %s has no loop %d"
             k.Ast.kernel_name loop_id))
    plan;
  { k with Ast.body }

let warp_throttle k ~loop_id ~n ~warps_per_tb ~warp_size ~one_dim_block =
  warp_throttle_plan k ~plan:[ (loop_id, n) ] ~warps_per_tb ~warp_size
    ~one_dim_block

let count_top_loops (k : Ast.kernel) =
  let rec count_block acc (b : Ast.block) = List.fold_left count_stmt acc b
  and count_stmt acc (s : Ast.stmt) =
    match s.Ast.sk with
    | Ast.For _ | Ast.While _ -> acc + 1
    | Ast.If (_, then_b, else_b) -> count_block (count_block acc then_b) else_b
    | Ast.Block body -> count_block acc body
    | _ -> acc
  in
  count_block 0 k.Ast.body

(* One pass splitting every top-level loop — the uniform whole-kernel
   throttling that the BFTT baseline applies. *)
let warp_throttle_all (k : Ast.kernel) ~n ~warps_per_tb ~warp_size
    ~one_dim_block =
  let rec rewrite_block (b : Ast.block) : Ast.block =
    List.concat_map rewrite_stmt b
  and rewrite_stmt (s : Ast.stmt) : Ast.stmt list =
    match s.Ast.sk with
    | Ast.For _ | Ast.While _ ->
      split_loop ~n ~warps_per_tb ~warp_size ~one_dim_block s
    | Ast.If (cond, then_b, else_b) ->
      [ { s with Ast.sk = Ast.If (cond, rewrite_block then_b, rewrite_block else_b) } ]
    | Ast.Block body -> [ { s with Ast.sk = Ast.Block (rewrite_block body) } ]
    | _ -> [ s ]
  in
  { k with Ast.body = rewrite_block k.Ast.body }

let tb_throttle (k : Ast.kernel) ~dummy_elems =
  if dummy_elems <= 0 then
    invalid_arg "Transform.tb_throttle: dummy_elems must be positive";
  let decl = Ast.at (Ast.Shared_decl (Ast.Float, dummy_array_name, dummy_elems)) in
  (* one store keeps the allocation observable; all threads hit the same
     address, a single broadcastable shared transaction *)
  let keep_alive =
    Ast.at
      (Ast.Assign
         (Ast.Larr (dummy_array_name, Ast.Int_lit 0), Ast.Assign_eq, Ast.Float_lit 0.))
  in
  { k with Ast.body = decl :: keep_alive :: k.Ast.body }

let plan_tb_throttle (cfg : Gpusim.Config.t) ~tb_threads ~num_regs
    ~shared_bytes ~target_tbs =
  if target_tbs <= 0 then None
  else begin
    let options = List.sort compare cfg.Gpusim.Config.smem_carveout_options in
    let tbs_with ~carveout ~per_tb =
      Gpusim.Cta_scheduler.max_tbs_per_sm cfg ~tb_threads ~num_regs
        ~shared_bytes:per_tb ~smem_carveout:carveout
    in
    let try_carveout carveout =
      if carveout < shared_bytes + 4 then None
      else begin
        (* per-TB usage that yields exactly target_tbs under this carveout *)
        let rec adjust per_tb =
          if per_tb > carveout then None
          else begin
            let tbs = tbs_with ~carveout ~per_tb in
            if tbs = target_tbs then Some per_tb
            else if tbs > target_tbs then adjust (per_tb + 4)
            else None  (* overshot: another resource caps below the target *)
          end
        in
        match adjust (max (carveout / target_tbs) (shared_bytes + 4)) with
        | Some per_tb when per_tb > shared_bytes ->
          Some (carveout, per_tb - shared_bytes)
        | _ -> None
      end
    in
    (* smallest carveout wins: it leaves the most L1D *)
    List.fold_left
      (fun acc carveout ->
        match acc with Some _ -> acc | None -> try_carveout carveout)
      None options
  end
