(** Thread-throttling factor search — the paper's Eq. 9.

    Starting from the kernel's natural concurrency [(warps_per_tb, tbs)],
    first split the warps of a TB into [n] sequential groups (n ranges over
    the divisors of [warps_per_tb], smallest first, so groups stay even);
    if even one warp per TB still overflows the L1D, additionally reduce
    the number of concurrent TBs by [m].  A loop whose footprint cannot fit
    even at one warp total is left untouched ([resolved = false]) — the
    paper's CORR case. *)

type trial = {
  cand_n : int;  (** warp split factor under test *)
  cand_m : int;  (** TB reduction under test *)
  cand_warps : int;  (** concurrent warps implied by the candidate *)
  cand_bytes : int;  (** Eq. 8 footprint at that concurrency *)
  cand_fits : bool;  (** [cand_bytes <= l1d_bytes] *)
}
(** One capacity test evaluated during {!decide} — decision provenance
    for [catt_cli explain]. *)

type decision = {
  n : int;  (** warp split factor; 1 = no warp-level throttling *)
  m : int;  (** concurrent-TB reduction; 0 = no TB-level throttling *)
  resolved : bool;
  throttled : bool;
  active_warps_per_tb : int;
  active_tbs : int;
  trials : trial list;
      (** every candidate tried, in evaluation order: the full-TLP
          check first, then phase-1 divisors, then phase-2 TB counts.
          Empty for loops without locality (no test was needed). *)
}

val no_throttle : warps_per_tb:int -> tbs:int -> decision

val decide :
  line_bytes:int ->
  l1d_bytes:int ->
  warps_per_tb:int ->
  tbs:int ->
  Footprint.loop_footprint ->
  decision
(** Loops without cross-iteration locality, or whose footprint already
    fits, get {!no_throttle}. *)

val divisors : int -> int list
(** Ascending proper+trivial divisors, e.g. [divisors 8 = \[1;2;4;8\]]. *)
