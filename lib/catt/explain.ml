(** Decision provenance for one CATT analysis: every number behind the
    (N, M) verdict — per-loop Eq. 8 footprints, the L1D capacity they
    were compared against, the exact candidate sequence {!Throttle}
    evaluated, and the sanitizer gate outcome — as deterministic JSON
    (no wall-clock fields) plus a human rendering for
    [catt_cli explain]. *)

module Json = Gpu_util.Json

let explain_format_version = 1

let access_json (s : Footprint.access_summary) =
  let a = s.Footprint.access in
  let index =
    match a.Analysis.index with
    | Affine.Affine aff -> Affine.to_string aff
    | Affine.Unknown -> "<irregular>"
  in
  let kind =
    match (a.Analysis.is_load, a.Analysis.is_store) with
    | true, true -> "ld/st"
    | true, false -> "ld"
    | false, true -> "st"
    | false, false -> "?"
  in
  Json.Obj
    [
      ("array", Json.String a.Analysis.array);
      ("index", Json.String index);
      ("kind", Json.String kind);
      ("req_warp_lines", Json.Int s.Footprint.req_warp);
      ("reuse", Json.Bool s.Footprint.has_reuse);
      ("irregular", Json.Bool s.Footprint.irregular);
    ]

let trial_json (tr : Throttle.trial) =
  Json.Obj
    [
      ("n", Json.Int tr.Throttle.cand_n);
      ("m", Json.Int tr.Throttle.cand_m);
      ("concurrent_warps", Json.Int tr.Throttle.cand_warps);
      ("footprint_bytes", Json.Int tr.Throttle.cand_bytes);
      ("fits", Json.Bool tr.Throttle.cand_fits);
    ]

let loop_json (cfg : Gpusim.Config.t) (t : Driver.t) (l : Driver.loop_decision)
    =
  let fp = l.Driver.footprint in
  let d = l.Driver.decision in
  let loop = fp.Footprint.loop in
  let line_bytes = cfg.Gpusim.Config.line_bytes in
  let full_warps = t.Driver.occupancy.Occupancy.concurrent_warps in
  let sel_w, sel_t =
    Driver.selected_tlp t ~loop_id:loop.Analysis.loop_id
  in
  (* only the sharpened (catt-sa) model produces a shared tier; the field
     stays out of plain Eq. 8 output so pinned explains remain stable *)
  let shared =
    if fp.Footprint.shared_lines > 0 then
      [ ("shared_lines", Json.Int fp.Footprint.shared_lines) ]
    else []
  in
  Json.Obj
    ([
       ("loop_id", Json.Int loop.Analysis.loop_id);
       ("iterator", Json.String loop.Analysis.loop_var);
       ("has_barrier", Json.Bool loop.Analysis.has_barrier);
       ("accesses", Json.List (List.map access_json fp.Footprint.summaries));
       ("req_lines_per_warp", Json.Int fp.Footprint.req_per_warp);
     ]
    @ shared
    @ [
      ("has_locality", Json.Bool fp.Footprint.has_locality);
      ("any_irregular", Json.Bool fp.Footprint.any_irregular);
      ( "footprint_full_tlp_bytes",
        Json.Int
          (Footprint.size_req_bytes ~line_bytes fp ~concurrent_warps:full_warps)
      );
      ("candidates", Json.List (List.map trial_json d.Throttle.trials));
      ( "decision",
        Json.Obj
          [
            ("n", Json.Int d.Throttle.n);
            ("m", Json.Int d.Throttle.m);
            ("resolved", Json.Bool d.Throttle.resolved);
            ("throttled", Json.Bool d.Throttle.throttled);
            ("active_warps_per_tb", Json.Int d.Throttle.active_warps_per_tb);
            ("active_tbs", Json.Int d.Throttle.active_tbs);
          ] );
      ("selected_tlp", Json.List [ Json.Int sel_w; Json.Int sel_t ]);
    ])

let to_json (cfg : Gpusim.Config.t) (t : Driver.t) =
  let occ = t.Driver.occupancy in
  let w, tbs = t.Driver.baseline_tlp in
  Json.Obj
    [
      ("explain_format_version", Json.Int explain_format_version);
      ("kernel", Json.String t.Driver.kernel.Minicuda.Ast.kernel_name);
      ( "geometry",
        Json.Obj
          [
            ("grid_x", Json.Int t.Driver.geometry.Analysis.grid_x);
            ("grid_y", Json.Int t.Driver.geometry.Analysis.grid_y);
            ("block_x", Json.Int t.Driver.geometry.Analysis.block_x);
            ("block_y", Json.Int t.Driver.geometry.Analysis.block_y);
          ] );
      ( "config",
        Json.Obj
          [
            ("line_bytes", Json.Int cfg.Gpusim.Config.line_bytes);
            ("warp_size", Json.Int cfg.Gpusim.Config.warp_size);
            ("onchip_bytes", Json.Int cfg.Gpusim.Config.onchip_bytes);
            ("num_sms", Json.Int cfg.Gpusim.Config.num_sms);
          ] );
      ( "occupancy",
        Json.Obj
          [
            ("warps_per_tb", Json.Int occ.Occupancy.warps_per_tb);
            ("tbs_per_sm", Json.Int occ.Occupancy.tbs_per_sm);
            ("concurrent_warps", Json.Int occ.Occupancy.concurrent_warps);
            ("smem_carveout_bytes", Json.Int occ.Occupancy.smem_carveout);
            ("l1d_bytes", Json.Int occ.Occupancy.l1d_bytes);
          ] );
      ( "final_l1d_bytes",
        Json.Int (cfg.Gpusim.Config.onchip_bytes - t.Driver.final_carveout) );
      ("loops", Json.List (List.map (loop_json cfg t) t.Driver.loops));
      ( "tb_throttle",
        match t.Driver.tb_throttle_plan with
        | None -> Json.Null
        | Some (carveout, dummy) ->
          Json.Obj
            [
              ("carveout_bytes", Json.Int carveout);
              ("dummy_shared_bytes", Json.Int dummy);
            ] );
      ("final_carveout_bytes", Json.Int t.Driver.final_carveout);
      ("baseline_tlp", Json.List [ Json.Int w; Json.Int tbs ]);
      ("resident_tbs", Json.Int t.Driver.resident_tbs);
      ( "sanitizer",
        Json.Obj [ ("gate_degraded", Json.Bool t.Driver.gate_degraded) ] );
    ]

(* --- human rendering --- *)

let kb bytes = Printf.sprintf "%.1f KB" (float_of_int bytes /. 1024.)

let render_loop (cfg : Gpusim.Config.t) (t : Driver.t)
    (l : Driver.loop_decision) buf =
  let fp = l.Driver.footprint in
  let d = l.Driver.decision in
  let loop = fp.Footprint.loop in
  let line_bytes = cfg.Gpusim.Config.line_bytes in
  let occ = t.Driver.occupancy in
  let full_warps = occ.Occupancy.concurrent_warps in
  Buffer.add_string buf
    (Printf.sprintf "  loop %d (iterator %s)%s:\n" loop.Analysis.loop_id
       loop.Analysis.loop_var
       (if loop.Analysis.has_barrier then "  [barrier: warp split forbidden]"
        else ""));
  List.iter
    (fun s -> Buffer.add_string buf (Report.access_line s ^ "\n"))
    fp.Footprint.summaries;
  Buffer.add_string buf
    (Printf.sprintf
       "    Eq.8 @ full TLP: %d lines/warp x %d warps x %d B = %s\n"
       fp.Footprint.req_per_warp full_warps line_bytes
       (kb (Footprint.size_req_bytes ~line_bytes fp ~concurrent_warps:full_warps)));
  if fp.Footprint.shared_lines > 0 then
    Buffer.add_string buf
      (Printf.sprintf "    + shared tier (once per SM): %d lines = %s\n"
         fp.Footprint.shared_lines
         (kb (fp.Footprint.shared_lines * line_bytes)));
  if d.Throttle.trials = [] then
    Buffer.add_string buf
      (if not fp.Footprint.has_locality then
         "    no cross-iteration locality: throttling cannot help, skipped\n"
       else if loop.Analysis.has_barrier then
         "    left at full TLP (barrier)\n"
       else "    no capacity test recorded\n")
  else begin
    Buffer.add_string buf "    candidates tried:\n";
    List.iter
      (fun (tr : Throttle.trial) ->
        Buffer.add_string buf
          (Printf.sprintf "      N=%-3d M=%-3d warps=%-4d %10s %2s %s\n"
             tr.Throttle.cand_n tr.Throttle.cand_m tr.Throttle.cand_warps
             (kb tr.Throttle.cand_bytes)
             (if tr.Throttle.cand_fits then "<=" else ">")
             (kb (cfg.Gpusim.Config.onchip_bytes - t.Driver.final_carveout))))
      d.Throttle.trials
  end;
  let verdict =
    if not d.Throttle.resolved then
      "unresolvable: thrashes even at minimum TLP; left untouched"
    else if not d.Throttle.throttled then "fits: no throttling"
    else
      Printf.sprintf "throttle to N=%d, M=%d" d.Throttle.n d.Throttle.m
  in
  let sel_w, sel_t = Driver.selected_tlp t ~loop_id:loop.Analysis.loop_id in
  Buffer.add_string buf
    (Printf.sprintf "    decision: %s -> TLP (%d, %d)\n" verdict sel_w sel_t)

let render (cfg : Gpusim.Config.t) (t : Driver.t) =
  let occ = t.Driver.occupancy in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "kernel %s  grid (%d,%d) block (%d,%d)\n"
       t.Driver.kernel.Minicuda.Ast.kernel_name
       t.Driver.geometry.Analysis.grid_x t.Driver.geometry.Analysis.grid_y
       t.Driver.geometry.Analysis.block_x t.Driver.geometry.Analysis.block_y);
  Buffer.add_string buf
    (Printf.sprintf
       "  occupancy: %d warps/TB x %d TBs/SM, carveout %s -> L1D %s\n"
       occ.Occupancy.warps_per_tb occ.Occupancy.tbs_per_sm
       (kb occ.Occupancy.smem_carveout)
       (kb occ.Occupancy.l1d_bytes));
  List.iter (fun l -> render_loop cfg t l buf) t.Driver.loops;
  (match t.Driver.tb_throttle_plan with
  | Some (carveout, dummy) ->
    Buffer.add_string buf
      (Printf.sprintf "  TB throttle: +%d B dummy shared, carveout %s (L1D %s)\n"
         dummy (kb carveout)
         (kb (cfg.Gpusim.Config.onchip_bytes - carveout)))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "  sanitizer gate: %s\n"
       (if t.Driver.gate_degraded then "DEGRADED (part of the plan refused)"
        else "clean"));
  Buffer.contents buf
