module Ast = Minicuda.Ast

type loop_decision = {
  footprint : Footprint.loop_footprint;
  decision : Throttle.decision;
}

type t = {
  kernel : Ast.kernel;
  geometry : Analysis.geometry;
  occupancy : Occupancy.t;
  loops : loop_decision list;
  transformed : Ast.kernel;
  tb_throttle_plan : (int * int) option;
  final_carveout : int;
  baseline_tlp : int * int;
  resident_tbs : int;  (* TBs per SM after any TB-level throttling *)
  gate_degraded : bool;
  analysis_seconds : float;
}

let decide_all ~line_bytes ~l1d_bytes ~warps_per_tb ~tbs footprints =
  Obs.Span.with_span "catt.decide"
    ~attrs:
      [
        ("l1d_bytes", Obs.Span.Int l1d_bytes);
        ("warps_per_tb", Obs.Span.Int warps_per_tb);
        ("tbs", Obs.Span.Int tbs);
      ]
    (fun _ ->
      List.map
        (fun footprint ->
          let decision =
            (* loops that rendezvous at a barrier cannot be split into warp
               groups; leave them at full TLP *)
            if footprint.Footprint.loop.Analysis.has_barrier then
              Throttle.no_throttle ~warps_per_tb ~tbs
            else
              Throttle.decide ~line_bytes ~l1d_bytes ~warps_per_tb ~tbs
                footprint
          in
          { footprint; decision })
        footprints)

let max_m loops =
  List.fold_left (fun acc l -> max acc l.decision.Throttle.m) 0 loops

(* When some loop needs TB-level throttling, the dummy shared allocation
   changes the carveout and thus shrinks the L1D, so every decision has to
   be re-taken under the new capacity and TB count; escalate [m] until a
   consistent configuration is found. *)
let escalate cfg ~tb_threads ~num_regs ~shared_bytes ~line_bytes ~warps_per_tb
    ~tbs footprints ~first_m =
  let onchip = cfg.Gpusim.Config.onchip_bytes in
  let rec attempt m =
    if m > tbs - 1 then None
    else
      let target = tbs - m in
      match
        Transform.plan_tb_throttle cfg ~tb_threads ~num_regs ~shared_bytes
          ~target_tbs:target
      with
      | None -> attempt (m + 1)
      | Some (carveout, dummy_bytes) ->
        let l1d_bytes = onchip - carveout in
        let loops =
          decide_all ~line_bytes ~l1d_bytes ~warps_per_tb ~tbs:target
            footprints
        in
        if max_m loops = 0 then Some (loops, (carveout, dummy_bytes), target)
        else attempt (m + 1)
  in
  attempt first_m

let analyze ?(model = `Eq8) (cfg : Gpusim.Config.t) (kernel : Ast.kernel)
    (geometry : Analysis.geometry) =
  Obs.Span.with_span "catt.analyze"
    ~attrs:[ ("kernel", Obs.Span.Str kernel.Ast.kernel_name) ]
  @@ fun analyze_span ->
  let started = Unix.gettimeofday () in
  let prog = Gpusim.Codegen.compile_kernel kernel in
  let tb_threads = geometry.Analysis.block_x * geometry.Analysis.block_y in
  let grid_tbs = geometry.Analysis.grid_x * geometry.Analysis.grid_y in
  let num_regs = prog.Gpusim.Bytecode.num_regs in
  let shared_bytes = prog.Gpusim.Bytecode.shared_bytes in
  match
    Occupancy.configure cfg ~grid_tbs ~tb_threads ~num_regs ~shared_bytes ()
  with
  | Error msg -> Error msg
  | Ok occ ->
    let line_bytes = cfg.Gpusim.Config.line_bytes in
    let warp_size = cfg.Gpusim.Config.warp_size in
    let warps_per_tb = occ.Occupancy.warps_per_tb in
    let tbs = occ.Occupancy.tbs_per_sm in
    let footprints =
      Obs.Span.with_span "catt.footprint" (fun fp_span ->
        let block_x = geometry.Analysis.block_x in
        let reports = Analysis.analyze_kernel kernel geometry in
        let fps =
          match model with
          | `Eq8 ->
            List.map (Footprint.of_loop ~line_bytes ~warp_size ~block_x) reports
          | `Sa ->
            (* one interval/reuse pass per kernel; loops joined by id *)
            let sa = Staticmodel.Gaccess.analyze kernel geometry in
            List.map
              (fun (r : Analysis.loop_report) ->
                Footprint.of_loop_sa ~line_bytes ~warp_size ~block_x
                  ~tbs:occ.Occupancy.tbs_per_sm
                  (Staticmodel.Gaccess.find_loop sa ~loop_id:r.Analysis.loop_id)
                  r)
              reports
        in
        Option.iter
          (fun s -> Obs.Span.add_attr s "loops" (Obs.Span.Int (List.length fps)))
          fp_span;
        fps)
    in
    let initial =
      decide_all ~line_bytes ~l1d_bytes:occ.Occupancy.l1d_bytes ~warps_per_tb
        ~tbs footprints
    in
    let loops, tb_throttle_plan, final_carveout, resident_tbs =
      let m = max_m initial in
      if m = 0 then (initial, None, occ.Occupancy.smem_carveout, tbs)
      else
        match
          escalate cfg ~tb_threads ~num_regs ~shared_bytes ~line_bytes
            ~warps_per_tb ~tbs footprints ~first_m:m
        with
        | Some (loops, plan, target) -> (loops, Some plan, fst plan, target)
        | None ->
          (* TB throttling cannot resolve the contention: fall back to the
             strongest warp-level throttling and mark the rest unresolved *)
          let demoted =
            List.map
              (fun l ->
                if l.decision.Throttle.m > 0 then
                  {
                    l with
                    decision =
                      {
                        l.decision with
                        Throttle.m = 0;
                        resolved = false;
                        throttled = l.decision.Throttle.n > 1;
                        active_tbs = tbs;
                      };
                  }
                else l)
              initial
          in
          (demoted, None, occ.Occupancy.smem_carveout, tbs)
    in
    let one_dim_block = geometry.Analysis.block_y = 1 in
    let plan =
      List.filter_map
        (fun l ->
          if l.decision.Throttle.throttled && l.decision.Throttle.n > 1 then
            Some
              ( l.footprint.Footprint.loop.Analysis.loop_id,
                l.decision.Throttle.n )
          else None)
        loops
    in
    let build plan =
      let t =
        if plan = [] then kernel
        else
          Transform.warp_throttle_plan kernel ~plan ~warps_per_tb ~warp_size
            ~one_dim_block
      in
      match tb_throttle_plan with
      | Some (_, dummy_bytes) ->
        Transform.tb_throttle t ~dummy_elems:(max 1 (dummy_bytes / 4))
      | None -> t
    in
    let gate t = Sanitize.Check.gate geometry ~original:kernel ~transformed:t in
    (* The sanitizer has the last word.  A warp split plants barriers, and
       a loop sitting under thread-divergent control flow (common in
       irregular kernels, whose Eq. 7 footprint is now large enough to ask
       for throttling) cannot legally take one.  Degrade like the BFTT
       path: whole plan -> per-loop-gated plan -> no splits, and demote the
       decisions of every dropped loop to unresolved-at-full-TLP so Table 3
       reports what actually runs. *)
    let plan, transformed, gate_failed =
      let full = build plan in
      match gate full with
      | Ok () -> (plan, full, false)
      | Error _ ->
        let kept =
          List.filter
            (fun (loop_id, n) ->
              match
                gate
                  (Transform.warp_throttle kernel ~loop_id ~n ~warps_per_tb
                     ~warp_size ~one_dim_block)
              with
              | Ok () -> true
              | Error _ -> false)
            plan
        in
        let combined = build kept in
        (match gate combined with
        | Ok () -> (kept, combined, true)
        | Error _ -> (
          (* even the accepted single-loop splits interact badly together:
             keep only the TB-level pad, or nothing *)
          let pad_only = build [] in
          match gate pad_only with
          | Ok () -> ([], pad_only, true)
          | Error _ -> ([], kernel, true)))
    in
    let loops =
      if not gate_failed then loops
      else
        List.map
          (fun l ->
            let loop_id = l.footprint.Footprint.loop.Analysis.loop_id in
            let d = l.decision in
            if
              d.Throttle.throttled && d.Throttle.n > 1
              && not (List.mem_assoc loop_id plan)
            then
              (* the warp split was refused, but a TB-level pad (if any)
                 still throttles this loop; without the split the footprint
                 is no longer proven to fit, so it is unresolved *)
              {
                l with
                decision =
                  {
                    d with
                    Throttle.n = 1;
                    throttled = tb_throttle_plan <> None || d.Throttle.m > 0;
                    resolved = false;
                    active_warps_per_tb = warps_per_tb;
                  };
              }
            else l)
          loops
    in
    Option.iter
      (fun s ->
        Obs.Span.add_attr s "throttled_loops"
          (Obs.Span.Int
             (List.length
                (List.filter (fun l -> l.decision.Throttle.throttled) loops)));
        Obs.Span.add_attr s "gate_degraded" (Obs.Span.Bool gate_failed))
      analyze_span;
    Ok
      {
        kernel;
        geometry;
        occupancy = occ;
        loops;
        transformed;
        tb_throttle_plan;
        final_carveout;
        baseline_tlp = (warps_per_tb, tbs);
        resident_tbs;
        gate_degraded = gate_failed;
        analysis_seconds = Unix.gettimeofday () -. started;
      }

let selected_tlp t ~loop_id =
  match
    List.find_opt
      (fun l -> l.footprint.Footprint.loop.Analysis.loop_id = loop_id)
      t.loops
  with
  | None -> t.baseline_tlp
  | Some l ->
    let d = l.decision in
    if d.Throttle.throttled then
      (d.Throttle.active_warps_per_tb, min d.Throttle.active_tbs t.resident_tbs)
    else
      let warps, _ = t.baseline_tlp in
      (warps, t.resident_tbs)
