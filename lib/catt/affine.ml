(** Re-export of the affine index machinery (Eq. 5), which now lives in
    [Sanitize] so the sanitizer can reason about indices without depending
    on the transform layer it gates. *)

include Sanitize.Affine
