(** Static collection of per-loop off-chip access patterns.

    For every top-level loop of a kernel (the granularity at which CATT
    makes throttling decisions and transforms code), this pass gathers the
    global-memory accesses lexically inside it — including those in nested
    loops — with their {!Affine} index expressions, by abstract
    interpretation of the kernel body over the affine domain.

    Loop accumulators ([acc += stride] patterns) are widened to
    [init + stride·iter]; any variable mutated in a non-affine way becomes
    {!Affine.Unknown}, which downstream analysis treats with the paper's
    conservative irregular-access rule. *)

(** Launch geometry, shared with the sanitizer (same record type). *)
type geometry = Sanitize.Geom.t = {
  grid_x : int;
  grid_y : int;
  block_x : int;
  block_y : int;
}

type access = {
  array : string;
  index : Affine.value;
  is_load : bool;
  is_store : bool;
  innermost_iter : string option;
      (** iterator of the innermost loop containing the access — the [i]
          whose coefficient Eq. 6 tests *)
}

type loop_report = {
  loop_id : int;  (** pre-order index among the kernel's top-level loops *)
  loop_var : string;
  accesses : access list;  (** deduplicated, in first-occurrence order *)
  has_barrier : bool;
      (** body reaches [__syncthreads()]: such loops are never warp-split *)
}

val same_index : Affine.value -> Affine.value -> bool
(** Equality on the affine domain: two [Unknown]s compare equal (one
    irregular request stream per array), affine forms structurally. *)

val analyze_kernel :
  Minicuda.Ast.kernel -> geometry -> loop_report list
(** Reports for each top-level loop, in source order.  The kernel must
    typecheck (shared arrays are recognized and excluded from off-chip
    accesses). *)
