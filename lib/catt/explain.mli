(** Decision provenance for one CATT analysis ([catt_cli explain]). *)

val explain_format_version : int

val to_json : Gpusim.Config.t -> Driver.t -> Gpu_util.Json.t
(** Deterministic (no wall-clock fields): per-loop Eq. 8 footprints,
    the candidate (N, M) sequence {!Throttle.decide} evaluated with
    each candidate's footprint bytes, the occupancy / L1D capacity
    inputs, and the sanitizer gate outcome. *)

val render : Gpusim.Config.t -> Driver.t -> string
(** Human-readable rendering of the same record. *)
