type trial = {
  cand_n : int;
  cand_m : int;
  cand_warps : int;
  cand_bytes : int;
  cand_fits : bool;
}

type decision = {
  n : int;
  m : int;
  resolved : bool;
  throttled : bool;
  active_warps_per_tb : int;
  active_tbs : int;
  trials : trial list;
}

let no_throttle ~warps_per_tb ~tbs =
  {
    n = 1;
    m = 0;
    resolved = true;
    throttled = false;
    active_warps_per_tb = warps_per_tb;
    active_tbs = tbs;
    trials = [];
  }

let divisors n =
  let rec collect d acc =
    if d > n then List.rev acc
    else collect (d + 1) (if n mod d = 0 then d :: acc else acc)
  in
  collect 1 []

let decide ~line_bytes ~l1d_bytes ~warps_per_tb ~tbs fp =
  (* every capacity test is recorded, in evaluation order, as decision
     provenance (rendered by `catt_cli explain`) *)
  let tried = ref [] in
  let fits ~n ~m ~warps =
    let bytes = Footprint.size_req_bytes ~line_bytes fp ~concurrent_warps:warps in
    let ok = bytes <= l1d_bytes in
    tried :=
      { cand_n = n; cand_m = m; cand_warps = warps; cand_bytes = bytes;
        cand_fits = ok }
      :: !tried;
    ok
  in
  let conclude d = { d with trials = List.rev !tried } in
  if
    (not fp.Footprint.has_locality)
    || fits ~n:1 ~m:0 ~warps:(warps_per_tb * tbs)
  then conclude (no_throttle ~warps_per_tb ~tbs)
  else begin
    (* phase 1: warp-level (Fig. 4) — n over divisors, smallest first *)
    let candidate_n =
      List.find_opt
        (fun n -> n > 1 && fits ~n ~m:0 ~warps:(warps_per_tb / n * tbs))
        (divisors warps_per_tb)
    in
    match candidate_n with
    | Some n ->
      conclude
        {
          n;
          m = 0;
          resolved = true;
          throttled = true;
          active_warps_per_tb = warps_per_tb / n;
          active_tbs = tbs;
          trials = [];
        }
    | None ->
      (* phase 2: TB-level (Fig. 5) on top of maximal warp splitting *)
      let n = warps_per_tb in
      let rec search m =
        if m > tbs - 1 then None
        else if fits ~n ~m ~warps:(tbs - m) then Some m
        else search (m + 1)
      in
      (match search 1 with
      | Some m ->
        conclude
          {
            n;
            m;
            resolved = true;
            throttled = true;
            active_warps_per_tb = 1;
            active_tbs = tbs - m;
            trials = [];
          }
      | None ->
        (* even one warp thrashes: leave the kernel alone (CORR) *)
        conclude { (no_throttle ~warps_per_tb ~tbs) with resolved = false })
  end
