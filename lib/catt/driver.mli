(** The whole CATT compiler pass: analyze → decide → transform.

    [analyze] performs the paper's full Section 4 pipeline on one kernel
    under a fixed launch geometry and device configuration:

    + compile (for the per-thread register count, Eq. 2's input) and
      configure the L1D/shared split (Section 4.1, via {!Occupancy});
    + statically collect per-loop off-chip accesses ({!Analysis}) and
      their footprints ({!Footprint}, Eqs. 5–8);
    + search throttling factors per loop ({!Throttle}, Eq. 9);
    + emit the transformed kernel ({!Transform}, Figs. 4–5).

    The result carries everything the experiment harness needs: per-loop
    decisions (Table 3), the transformed source, the carveout to launch
    with, and the analysis wall-clock time (Section 5.1.4). *)

type loop_decision = {
  footprint : Footprint.loop_footprint;
  decision : Throttle.decision;
}

type t = {
  kernel : Minicuda.Ast.kernel;
  geometry : Analysis.geometry;
  occupancy : Occupancy.t;
  loops : loop_decision list;
  transformed : Minicuda.Ast.kernel;
  tb_throttle_plan : (int * int) option;  (** (carveout, dummy bytes) *)
  final_carveout : int;  (** pass as [smem_carveout] at launch *)
  baseline_tlp : int * int;  (** (warps per TB, TBs per SM) *)
  resident_tbs : int;  (** TBs per SM after any TB-level throttling *)
  gate_degraded : bool;
      (** the sanitizer refused part of the plan and [analyze] fell back
          (whole plan → per-loop → pad only → untouched) *)
  analysis_seconds : float;
}

val analyze :
  ?model:[ `Eq8 | `Sa ] ->
  Gpusim.Config.t ->
  Minicuda.Ast.kernel ->
  Analysis.geometry ->
  (t, string) result
(** [Error] on kernels that cannot be configured at all (zero occupancy,
    oversized shared memory).  [?model] selects the footprint estimator:
    [`Eq8] (default) is the paper's plain per-warp model,
    [`Sa] the sharpened interval/reuse model ({!Footprint.of_loop_sa},
    scheme [catt-sa]); the Eq. 9 search and the transform are shared. *)

val selected_tlp : t -> loop_id:int -> int * int
(** The Table 3 entry for one loop: [(active warps per TB, concurrent TBs)]
    — the baseline TLP when the loop was not throttled. *)
