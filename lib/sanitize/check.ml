(** Kernel sanitizer entry points: run all analyses, and gate rewrites.

    [check_kernel] runs the three analyses — barrier divergence, shared
    races, shared bounds — under one launch geometry and returns the
    located diagnostics sorted by position.

    [gate] is the contract every CATT/BFTT transform must honor: a rewrite
    may keep the diagnostics the original kernel already had (they are the
    programmer's, not the transform's), but it must not mint new ones.
    Comparison is by {!Diag.key}, which ignores source positions, because a
    rewrite duplicates statements into guarded phases and moves them
    around. *)

module Ast = Minicuda.Ast

(* transforms the gate refused, across all kernels this process checked *)
let gate_rejections = Obs.Metrics.counter "sanitize.gate_rejections"

let check_kernel (geo : Geom.t) (k : Ast.kernel) : Diag.t list =
  let r = Walk.run geo k in
  Diag.sort
    (r.Walk.diags
    @ Races.check geo k.Ast.kernel_name r
    @ Bounds.check k.Ast.kernel_name r)

(** All kernels of a program under one geometry. *)
let check_program (geo : Geom.t) (p : Ast.program) : Diag.t list =
  List.concat_map (check_kernel geo) p.Ast.kernels

let gate (geo : Geom.t) ~(original : Ast.kernel) ~(transformed : Ast.kernel) :
    (unit, Diag.t list) result =
  if original == transformed then Ok ()  (* identity rewrite: nothing to gate *)
  else begin
    let before = check_kernel geo original in
    let after = check_kernel geo transformed in
    (* membership by hash set, not List.mem: rewrites duplicate statements
       into guarded phases, so [after] can be quadratically larger than the
       original's diagnostic set *)
    let seen = Hashtbl.create 16 in
    List.iter (fun d -> Hashtbl.replace seen (Diag.key d) ()) before;
    match
      List.filter (fun d -> not (Hashtbl.mem seen (Diag.key d))) after
    with
    | [] -> Ok ()
    | fresh ->
      Obs.Metrics.incr gate_rejections;
      Error (Diag.sort fresh)
  end
