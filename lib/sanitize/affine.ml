type t = {
  const : int;
  c_tx : int;
  c_ty : int;
  c_bx : int;
  c_by : int;
  iters : (string * int) list;  (* sorted by name, no zero coefficients *)
}

type value = Affine of t | Unknown

let const n = { const = n; c_tx = 0; c_ty = 0; c_bx = 0; c_by = 0; iters = [] }

let iter name =
  { const = 0; c_tx = 0; c_ty = 0; c_bx = 0; c_by = 0; iters = [ (name, 1) ] }

let of_builtin b ~bdim_x ~bdim_y ~grid_x =
  let basis ~tx ~ty ~bx ~by =
    Some { const = 0; c_tx = tx; c_ty = ty; c_bx = bx; c_by = by; iters = [] }
  in
  match b with
  | Minicuda.Ast.Thread_idx_x -> basis ~tx:1 ~ty:0 ~bx:0 ~by:0
  | Minicuda.Ast.Thread_idx_y -> basis ~tx:0 ~ty:1 ~bx:0 ~by:0
  | Minicuda.Ast.Block_idx_x -> basis ~tx:0 ~ty:0 ~bx:1 ~by:0
  | Minicuda.Ast.Block_idx_y -> basis ~tx:0 ~ty:0 ~bx:0 ~by:1
  | Minicuda.Ast.Block_dim_x -> Some (const bdim_x)
  | Minicuda.Ast.Block_dim_y -> Some (const bdim_y)
  | Minicuda.Ast.Grid_dim_x -> Some (const grid_x)
  | Minicuda.Ast.Grid_dim_y -> None

let merge_iters f a b =
  let rec go a b =
    match (a, b) with
    | [], rest -> List.filter_map (fun (n, c) -> let c' = f 0 c in if c' = 0 then None else Some (n, c')) rest
    | rest, [] -> List.filter_map (fun (n, c) -> let c' = f c 0 in if c' = 0 then None else Some (n, c')) rest
    | (na, ca) :: ta, (nb, cb) :: tb ->
      if na = nb then
        let c = f ca cb in
        if c = 0 then go ta tb else (na, c) :: go ta tb
      else if na < nb then
        let c = f ca 0 in
        if c = 0 then go ta b else (na, c) :: go ta b
      else
        let c = f 0 cb in
        if c = 0 then go a tb else (nb, c) :: go a tb
  in
  go a b

let add2 a b =
  {
    const = a.const + b.const;
    c_tx = a.c_tx + b.c_tx;
    c_ty = a.c_ty + b.c_ty;
    c_bx = a.c_bx + b.c_bx;
    c_by = a.c_by + b.c_by;
    iters = merge_iters ( + ) a.iters b.iters;
  }

let scale k a =
  if k = 0 then const 0
  else
    {
      const = k * a.const;
      c_tx = k * a.c_tx;
      c_ty = k * a.c_ty;
      c_bx = k * a.c_bx;
      c_by = k * a.c_by;
      iters = List.map (fun (n, c) -> (n, k * c)) a.iters;
    }

let is_constant a =
  a.c_tx = 0 && a.c_ty = 0 && a.c_bx = 0 && a.c_by = 0 && a.iters = []

let lift2 f a b =
  match (a, b) with Affine x, Affine y -> f x y | _ -> Unknown

let add = lift2 (fun x y -> Affine (add2 x y))
let sub = lift2 (fun x y -> Affine (add2 x (scale (-1) y)))

let neg = function Affine x -> Affine (scale (-1) x) | Unknown -> Unknown

let mul =
  lift2 (fun x y ->
      if is_constant x then Affine (scale x.const y)
      else if is_constant y then Affine (scale y.const x)
      else Unknown)

let div_exact v k =
  match v with
  | Unknown -> Unknown
  | Affine a ->
    if k = 0 then Unknown
    else
      let divides n = n mod k = 0 in
      if
        divides a.const && divides a.c_tx && divides a.c_ty && divides a.c_bx
        && divides a.c_by
        && List.for_all (fun (_, c) -> divides c) a.iters
      then
        Affine
          {
            const = a.const / k;
            c_tx = a.c_tx / k;
            c_ty = a.c_ty / k;
            c_bx = a.c_bx / k;
            c_by = a.c_by / k;
            iters = List.map (fun (n, c) -> (n, c / k)) a.iters;
          }
      else Unknown

let coeff_of_iter a name =
  match List.assoc_opt name a.iters with Some c -> c | None -> 0

let drop_iter a name =
  { a with iters = List.filter (fun (n, _) -> n <> name) a.iters }

let eval_lane a ~bdim_x ~lane ~base_linear_tid =
  let lin = base_linear_tid + lane in
  let tx = lin mod bdim_x and ty = lin / bdim_x in
  a.const + (a.c_tx * tx) + (a.c_ty * ty)

let equal a b =
  a.const = b.const && a.c_tx = b.c_tx && a.c_ty = b.c_ty && a.c_bx = b.c_bx
  && a.c_by = b.c_by && a.iters = b.iters

let to_string a =
  let term coeff name acc =
    if coeff = 0 then acc
    else
      let t =
        if coeff = 1 then name
        else if coeff = -1 then "-" ^ name
        else Printf.sprintf "%d*%s" coeff name
      in
      t :: acc
  in
  let terms =
    term a.c_tx "tid.x"
      (term a.c_ty "tid.y"
         (term a.c_bx "bid.x"
            (term a.c_by "bid.y"
               (List.fold_right (fun (n, c) acc -> term c n acc) a.iters []))))
  in
  let terms = if a.const <> 0 || terms = [] then terms @ [ string_of_int a.const ] else terms in
  String.concat " + " terms

let pp fmt a = Format.pp_print_string fmt (to_string a)
