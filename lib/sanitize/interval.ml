(** Integer intervals with open ends, the numeric half of the sanitizer's
    abstract domain.  [None] bounds mean minus/plus infinity; all operations
    are over-approximating. *)

type t = { lo : int option; hi : int option }

let top = { lo = None; hi = None }
let point n = { lo = Some n; hi = Some n }
let make lo hi = { lo = Some lo; hi = Some hi }
let is_finite i = i.lo <> None && i.hi <> None
let is_empty i = match (i.lo, i.hi) with Some l, Some h -> l > h | _ -> false

let opt2 f a b = match (a, b) with Some a, Some b -> Some (f a b) | _ -> None

let add a b = { lo = opt2 ( + ) a.lo b.lo; hi = opt2 ( + ) a.hi b.hi }

(* scale by an integer constant; a negative factor flips the ends *)
let scale c i =
  if c = 0 then point 0
  else if c > 0 then
    { lo = Option.map (fun v -> c * v) i.lo; hi = Option.map (fun v -> c * v) i.hi }
  else
    { lo = Option.map (fun v -> c * v) i.hi; hi = Option.map (fun v -> c * v) i.lo }

let hull a b =
  {
    lo = (match (a.lo, b.lo) with Some x, Some y -> Some (min x y) | _ -> None);
    hi = (match (a.hi, b.hi) with Some x, Some y -> Some (max x y) | _ -> None);
  }

(* do two (possibly unbounded) intervals share a point? *)
let intersects a b =
  (not (is_empty a)) && (not (is_empty b))
  && (match (a.hi, b.lo) with Some h, Some l -> h >= l | _ -> true)
  && match (b.hi, a.lo) with Some h, Some l -> h >= l | _ -> true

let contains i n =
  (match i.lo with Some l -> l <= n | None -> true)
  && match i.hi with Some h -> n <= h | None -> true

(* entirely below/above a threshold (strict) *)
let all_lt i n = match i.hi with Some h -> h < n | None -> false
let all_ge i n = match i.lo with Some l -> l >= n | None -> false

let meet a b =
  {
    lo = (match (a.lo, b.lo) with
         | Some x, Some y -> Some (max x y)
         | (Some _ as l), None | None, (Some _ as l) -> l
         | None, None -> None);
    hi = (match (a.hi, b.hi) with
         | Some x, Some y -> Some (min x y)
         | (Some _ as h), None | None, (Some _ as h) -> h
         | None, None -> None);
  }

(* number of integer points, when both ends are known *)
let count i =
  match (i.lo, i.hi) with
  | Some l, Some h -> Some (max 0 (h - l + 1))
  | _ -> None

(* Division by a non-zero constant with C/OCaml truncation-toward-zero
   semantics.  For a fixed divisor sign, [fun v -> v / k] is monotone
   (non-decreasing for k > 0, non-increasing for k < 0), so mapping the
   ends is exact on the endpoints and sound inside. *)
let div_const i k =
  if k = 0 then top
  else if k > 0 then
    { lo = Option.map (fun v -> v / k) i.lo; hi = Option.map (fun v -> v / k) i.hi }
  else
    { lo = Option.map (fun v -> v / k) i.hi; hi = Option.map (fun v -> v / k) i.lo }

(* Remainder by a non-zero constant (C semantics: sign of the dividend).
   When the interval is already reduced it passes through unchanged; a
   provably non-negative dividend lands in [0, |k|-1], anything else in
   [-(|k|-1), |k|-1]. *)
let mod_const i k =
  if k = 0 then top
  else
    let k = abs k in
    match (i.lo, i.hi) with
    | Some l, Some h when l >= 0 && h < k -> i
    | _ ->
      let nonneg = match i.lo with Some l -> l >= 0 | None -> false in
      if nonneg then make 0 (k - 1) else make (-(k - 1)) (k - 1)

let to_string i =
  let b = function Some n -> string_of_int n | None -> "inf" in
  Printf.sprintf "[%s, %s]" (b i.lo) (b i.hi)
