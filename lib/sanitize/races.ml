(** Shared-memory race detection over the event trace of {!Walk}.

    Two accesses to the same [__shared__] array race when (1) at least one
    writes, (2) they may happen in parallel, and (3) their affine index sets
    can overlap across two *distinct* threads of a block.

    May-happen-in-parallel is a barrier-interval argument on the trace
    coordinates: a pair is ordered only if some full-block barrier sits
    between the two events in program order at the nesting depth of their
    common loops — a barrier buried in a deeper loop may execute zero times
    — and, when the pair shares a loop, a second barrier must also cover the
    wrap-around path from the end of one iteration back to the start of the
    next.  Guarded barriers (under any condition not proved always-true)
    never order anything.

    Overlap is decided exactly on the thread part by enumerating pairs of
    distinct threads of one block — blocks are at most ~1k threads — and
    conservatively on the rest: block-index and iterator terms contribute an
    interval (iterators of the two accesses are independent, since distinct
    iterations run concurrently across threads).  The one deliberate
    exception: two plain stores of the same block-uniform value at the same
    block-uniform index are a benign broadcast (the idiom the TB-throttling
    transform emits) and are not reported. *)

module Ast = Minicuda.Ast

let rec is_prefix p l =
  match (p, l) with
  | [], _ -> true
  | x :: p', y :: l' -> x = y && is_prefix p' l'
  | _ :: _, [] -> false

let rec common_prefix a b =
  match (a, b) with
  | x :: a', y :: b' when x = y -> x :: common_prefix a' b'
  | _ -> []

(* is the pair (a, b), a before b in the trace, separated by barriers on
   every path? *)
let ordered (barriers : Walk.barrier list) (a : Walk.access) (b : Walk.access)
    =
  let common = common_prefix a.Walk.aloops b.Walk.aloops in
  let between bar =
    (not bar.Walk.guarded)
    && bar.Walk.bseq > a.Walk.aseq
    && bar.Walk.bseq < b.Walk.aseq
    && is_prefix bar.Walk.bloops common
  in
  let sep_linear = List.exists between barriers in
  if common = [] then sep_linear
  else
    (* the wrap-around path of the innermost common loop needs a barrier
       directly at that loop's level, outside the a..b span *)
    sep_linear
    && List.exists
         (fun bar ->
           (not bar.Walk.guarded)
           && bar.Walk.bloops = common
           && (bar.Walk.bseq < a.Walk.aseq || bar.Walk.bseq > b.Walk.aseq))
         barriers

let thread_enum_cap = 1024

let iter_range iters name =
  match List.assoc_opt name iters with Some r -> r | None -> Interval.top

let overlap (geo : Geom.t) (a : Walk.access) (b : Walk.access) =
  match (a.Walk.idx, b.Walk.idx) with
  | Affine.Affine fa, Affine.Affine fb ->
    let bx = geo.Geom.block_x and by = geo.Geom.block_y in
    if bx * by > thread_enum_cap then true
    else begin
      (* residual = everything except the thread terms; the block indices
         are shared (shared memory is per block), iterators range
         independently per access *)
      let iters_part sign f iters =
        List.fold_left
          (fun acc (name, c) ->
            Interval.add acc (Interval.scale (sign * c) (iter_range iters name)))
          (Interval.point 0) f.Affine.iters
      in
      let res =
        List.fold_left Interval.add
          (Interval.point (fa.Affine.const - fb.Affine.const))
          [
            Interval.scale
              (fa.Affine.c_bx - fb.Affine.c_bx)
              (Interval.make 0 (geo.Geom.grid_x - 1));
            Interval.scale
              (fa.Affine.c_by - fb.Affine.c_by)
              (Interval.make 0 (geo.Geom.grid_y - 1));
            iters_part 1 fa a.Walk.aiters;
            iters_part (-1) fb b.Walk.aiters;
          ]
      in
      (* ∃ pa ≠ pb with tid(pa) − tid(pb) + res ∋ 0 *)
      let hit = ref false in
      for txa = 0 to bx - 1 do
        for tya = 0 to by - 1 do
          for txb = 0 to bx - 1 do
            for tyb = 0 to by - 1 do
              if
                (not !hit)
                && (txa <> txb || tya <> tyb)
                && Interval.contains res
                     (-((fa.Affine.c_tx * txa) + (fa.Affine.c_ty * tya)
                        - (fb.Affine.c_tx * txb)
                        - (fb.Affine.c_ty * tyb)))
              then hit := true
            done
          done
        done
      done;
      !hit
    end
  | _ -> true  (* a data-dependent index can point anywhere *)

let benign_broadcast (a : Walk.access) (b : Walk.access) =
  a.Walk.is_write && b.Walk.is_write && a.Walk.broadcast && b.Walk.broadcast
  && (match (a.Walk.rhs, b.Walk.rhs) with
     | Some x, Some y -> Ast.equal_expr x y
     | _ -> false)
  && match (a.Walk.idx, b.Walk.idx) with
     | Affine.Affine x, Affine.Affine y -> Affine.equal x y
     | _ -> false

let check (geo : Geom.t) kname (r : Walk.result) : Diag.t list =
  let accs = Array.of_list r.Walk.accesses in
  let n = Array.length accs in
  let diags = ref [] in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let a = accs.(i) and b = accs.(j) in
      if
        a.Walk.arr = b.Walk.arr
        && (a.Walk.is_write || b.Walk.is_write)
        && (not (benign_broadcast a b))
        (* a thread is ordered against itself by program order, so the pair
           needs barriers only when two distinct threads can collide — which
           [overlap] requires — and i = j is never barrier-separated *)
        && (i = j || not (ordered r.Walk.barriers a b))
        && overlap geo a b
      then begin
        let kinds =
          if a.Walk.is_write && b.Walk.is_write then "two writes"
          else "a write and a read"
        in
        let d =
          {
            Diag.severity = Diag.Error;
            kind = Diag.Shared_race;
            kernel = kname;
            loc = b.Walk.aloc;
            message =
              Printf.sprintf
                "possible race on __shared__ `%s`: %s may touch the same \
                 element from different threads with no separating barrier"
                a.Walk.arr kinds;
          }
        in
        if
          not
            (List.exists
               (fun d' -> Diag.key d' = Diag.key d && d'.Diag.loc = d.Diag.loc)
               !diags)
        then diags := d :: !diags
      end
    done
  done;
  List.rev !diags
