(** Affine index expressions — the paper's Eq. 5 generalized.

    The paper models an array index as [C_tid * tid + C_i * i].  To handle
    2-D grids and 2-D thread blocks (e.g. SYR2K) we track one coefficient
    per builtin axis plus one per enclosing loop iterator:

    [const + c_tx·threadIdx.x + c_ty·threadIdx.y
           + c_bx·blockIdx.x  + c_by·blockIdx.y  + Σ c_ℓ·iter_ℓ]

    Coefficients are exact integers; any expression outside this form
    (modulo, data-dependent indices like [col[j]], float arithmetic) is
    {!Unknown} — the analyzer then falls back to the paper's conservative
    [C_tid = 1] rule (Section 4.2). *)

type t = {
  const : int;
  c_tx : int;
  c_ty : int;
  c_bx : int;
  c_by : int;
  iters : (string * int) list;  (** loop variable → coefficient, sorted *)
}

type value = Affine of t | Unknown

val const : int -> t
val of_builtin : Minicuda.Ast.builtin_var -> bdim_x:int -> bdim_y:int -> grid_x:int -> t option
(** Builtins with statically known values ([blockDim]/[gridDim] under a
    fixed launch geometry) become constants; index builtins become basis
    vectors.  [None] for [gridDim.y] appearing in an index (unused by every
    workload; kept conservative). *)

val iter : string -> t
(** The basis vector of a loop iterator. *)

val add : value -> value -> value
val sub : value -> value -> value
val neg : value -> value
val mul : value -> value -> value
(** Product is affine only when one side is a constant. *)

val div_exact : value -> int -> value
(** Division by a constant that exactly divides every coefficient —
    anything else is {!Unknown} (integer division does not distribute). *)

val coeff_of_iter : t -> string -> int
(** 0 when the iterator does not appear. *)

val drop_iter : t -> string -> t

val is_constant : t -> bool

val eval_lane :
  t -> bdim_x:int -> lane:int -> base_linear_tid:int -> int
(** Element index touched by [lane] of a warp whose first thread has
    intra-block linear id [base_linear_tid], with all loop iterators and
    block indices at 0 — the per-warp address shape used to count
    coalesced requests (Eq. 7). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
