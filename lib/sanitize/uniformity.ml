(** Block-uniformity analysis over the affine domain.

    The sanitizer must decide, for every condition guarding a barrier,
    whether all threads of a block agree on it.  Plain taint analysis is far
    too coarse: every benchmark kernel guards its body with [if (i < N)]
    where [i = blockIdx.x * blockDim.x + threadIdx.x], which is
    tid-dependent yet block-uniform whenever [N] falls on a block boundary
    (and always-true when the grid exactly covers [N]).  So for affine
    comparisons we prove uniformity per block: split the difference
    [d = lhs - rhs] into its thread part [T] (the [c_tx]/[c_ty] terms) and
    its block-uniform part [u] (constant, block indices, loop iterators),
    then enumerate blocks and check whether any block admits a [u] for which
    [u + T] straddles the comparison threshold.  Grids are small (a few
    thousand blocks), so enumeration is exact and cheap; absurd grids fall
    back to one conservative interval. *)

module Ast = Minicuda.Ast

(* Abstract value of a scalar: its affine form (when expressible) plus a
   block-uniformity bit.  [uniform] means "all threads of a block that are
   executing this program point together see the same value"; loop
   iterators are uniform among active threads even when the trip count is
   not, which is why trip divergence is tracked separately by the walker. *)
type binding = { value : Affine.value; uniform : bool }

let unknown_uniform = { value = Affine.Unknown; uniform = true }
let unknown_varying = { value = Affine.Unknown; uniform = false }

type ctx = {
  geo : Geom.t;
  env : (string * binding) list;
  iters : (string * Interval.t) list;  (** live iterator ranges, innermost first *)
}

let init geo = { geo; env = []; iters = [] }

let lookup ctx name =
  (* unbound names are scalar kernel parameters: launch constants, hence
     uniform but with unknown value *)
  match List.assoc_opt name ctx.env with
  | Some b -> b
  | None -> unknown_uniform

let bind ctx name b = { ctx with env = (name, b) :: ctx.env }

let iter_range ctx name =
  match List.assoc_opt name ctx.iters with
  | Some r -> r
  | None -> Interval.top

let push_iter ctx name range = { ctx with iters = (name, range) :: ctx.iters }

(* width of the thread-dependent part of an affine form within one block;
   zero means every thread of a block computes the same value *)
let tid_width geo (a : Affine.t) =
  (abs a.Affine.c_tx * (geo.Geom.block_x - 1))
  + (abs a.Affine.c_ty * (geo.Geom.block_y - 1))

(* the affine form knows better than operand taint: [tid - tid] is uniform,
   [threadIdx.x] under a one-thread-wide block too *)
let refine geo b =
  match b.value with
  | Affine.Affine a -> { b with uniform = tid_width geo a = 0 }
  | Affine.Unknown -> b

let rec eval ctx (e : Ast.expr) : binding =
  let geo = ctx.geo in
  match e with
  | Ast.Int_lit n -> { value = Affine.Affine (Affine.const n); uniform = true }
  | Ast.Float_lit _ | Ast.Bool_lit _ -> unknown_uniform
  | Ast.Var name -> lookup ctx name
  | Ast.Builtin b ->
    let value =
      match
        Affine.of_builtin b ~bdim_x:geo.Geom.block_x ~bdim_y:geo.Geom.block_y
          ~grid_x:geo.Geom.grid_x
      with
      | Some a -> Affine.Affine a
      | None -> Affine.Unknown
    in
    let uniform =
      match b with Ast.Thread_idx_x | Ast.Thread_idx_y -> false | _ -> true
    in
    refine geo { value; uniform }
  | Ast.Binop (op, a, b) ->
    let ba = eval ctx a and bb = eval ctx b in
    let value =
      match op with
      | Ast.Add -> Affine.add ba.value bb.value
      | Ast.Sub -> Affine.sub ba.value bb.value
      | Ast.Mul -> Affine.mul ba.value bb.value
      | Ast.Div -> (
        match bb.value with
        | Affine.Affine k when Affine.is_constant k ->
          Affine.div_exact ba.value k.Affine.const
        | _ -> Affine.Unknown)
      | _ -> Affine.Unknown
    in
    refine geo { value; uniform = ba.uniform && bb.uniform }
  | Ast.Unop (Ast.Neg, a) ->
    let b = eval ctx a in
    refine geo { b with value = Affine.neg b.value }
  | Ast.Unop (Ast.Not, a) -> { value = Affine.Unknown; uniform = (eval ctx a).uniform }
  | Ast.Index (_, idx) ->
    (* the loaded value is data: nothing guarantees two threads read the
       same thing, even from the same address *)
    ignore (eval ctx idx);
    unknown_varying
  | Ast.Call (_, args) ->
    { value = Affine.Unknown;
      uniform = List.for_all (fun a -> (eval ctx a).uniform) args }
  | Ast.Cast (Ast.Int, a) -> eval ctx a
  | Ast.Cast (_, a) -> { value = Affine.Unknown; uniform = (eval ctx a).uniform }
  | Ast.Ternary (c, a, b) ->
    { value = Affine.Unknown;
      uniform =
        (eval ctx c).uniform && (eval ctx a).uniform && (eval ctx b).uniform }

(* interval of an affine form; block indices fixed when given, otherwise
   ranging over the whole grid *)
let range_of_affine ?bx ?by ctx (a : Affine.t) : Interval.t =
  let geo = ctx.geo in
  let axis fixed coeff extent =
    match fixed with
    | Some v -> Interval.point (coeff * v)
    | None -> Interval.scale coeff (Interval.make 0 (extent - 1))
  in
  List.fold_left
    (fun acc (name, c) ->
      Interval.add acc (Interval.scale c (iter_range ctx name)))
    (Interval.add
       (Interval.add
          (Interval.add
             (Interval.add
                (Interval.point a.Affine.const)
                (Interval.scale a.Affine.c_tx
                   (Interval.make 0 (geo.Geom.block_x - 1))))
             (Interval.scale a.Affine.c_ty
                (Interval.make 0 (geo.Geom.block_y - 1))))
          (axis bx a.Affine.c_bx geo.Geom.grid_x))
       (axis by a.Affine.c_by geo.Geom.grid_y))
    a.Affine.iters

let range_of_value ctx = function
  | Affine.Affine a -> range_of_affine ctx a
  | Affine.Unknown -> Interval.top

(* ------------------------------------------------------------------ *)
(* Truth of conditions                                                 *)
(* ------------------------------------------------------------------ *)

type truth = Always_true | Always_false | Uniform | Divergent

let not_t = function
  | Always_true -> Always_false
  | Always_false -> Always_true
  | t -> t

let and_t a b =
  match (a, b) with
  | Always_false, _ | _, Always_false -> Always_false
  | Always_true, t | t, Always_true -> t
  | Divergent, _ | _, Divergent -> Divergent
  | Uniform, Uniform -> Uniform

let or_t a b = not_t (and_t (not_t a) (not_t b))

(* verdict for one interval of d values: all satisfy the comparison, none
   do, or we cannot tell *)
let verdict_of_interval op (v : Interval.t) =
  match op with
  | Ast.Lt ->
    if Interval.all_lt v 0 then `True
    else if Interval.all_ge v 0 then `False
    else `Varies
  | Ast.Le ->
    if Interval.all_lt v 1 then `True
    else if Interval.all_ge v 1 then `False
    else `Varies
  | Ast.Gt ->
    if Interval.all_ge v 1 then `True
    else if Interval.all_lt v 1 then `False
    else `Varies
  | Ast.Ge ->
    if Interval.all_ge v 0 then `True
    else if Interval.all_lt v 0 then `False
    else `Varies
  | Ast.Eq ->
    if v = Interval.point 0 then `True
    else if not (Interval.contains v 0) then `False
    else `Varies
  | Ast.Ne ->
    if v = Interval.point 0 then `False
    else if not (Interval.contains v 0) then `True
    else `Varies
  | _ -> `Varies

(* u-values for which [u + T] straddles the threshold of [op]: when the
   block-uniform part lands in this window, threads of the block disagree *)
let mixed_window op ~tmin ~tmax =
  if tmin = tmax then None
  else
    match op with
    | Ast.Lt | Ast.Ge -> Some (Interval.make (-tmax) (-1 - tmin))
    | Ast.Le | Ast.Gt -> Some (Interval.make (1 - tmax) (-tmin))
    | Ast.Eq | Ast.Ne -> Some (Interval.make (-tmax) (-tmin))
    | _ -> None

(* enumerating more blocks than this gains nothing; fall back to a single
   conservative interval over the whole grid *)
let block_enumeration_cap = 65536

let classify_cmp ctx op (d : Affine.t) : truth =
  let geo = ctx.geo in
  let tmin, tmax =
    let span c extent = Interval.scale c (Interval.make 0 (extent - 1)) in
    let t =
      Interval.add
        (span d.Affine.c_tx geo.Geom.block_x)
        (span d.Affine.c_ty geo.Geom.block_y)
    in
    (Option.get t.Interval.lo, Option.get t.Interval.hi)
  in
  let mixed = mixed_window op ~tmin ~tmax in
  (* block-uniform residue without the thread terms *)
  let uniform_part = { d with Affine.c_tx = 0; c_ty = 0 } in
  let block_result ?bx ?by () =
    let u = range_of_affine ?bx ?by ctx uniform_part in
    let straddles =
      match mixed with Some m -> Interval.intersects u m | None -> false
    in
    if straddles then `Divergent
    else verdict_of_interval op (Interval.add u (Interval.make tmin tmax))
  in
  if Geom.blocks geo <= block_enumeration_cap then begin
    let saw_true = ref false and saw_false = ref false and varies = ref false in
    let divergent = ref false in
    for bx = 0 to geo.Geom.grid_x - 1 do
      for by = 0 to geo.Geom.grid_y - 1 do
        if not !divergent then
          match block_result ~bx ~by () with
          | `Divergent -> divergent := true
          | `Varies -> varies := true
          | `True -> saw_true := true
          | `False -> saw_false := true
      done
    done;
    if !divergent then Divergent
    else if !varies then Uniform
    else
      match (!saw_true, !saw_false) with
      | true, false -> Always_true
      | false, true -> Always_false
      | _ -> Uniform
  end
  else
    match block_result () with
    | `Divergent -> Divergent
    | `Varies -> Uniform
    | `True -> Always_true
    | `False -> Always_false

let is_cmp = function
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> true
  | _ -> false

(* an iterator of divergent trip count still holds equal values across the
   active threads, so affine machinery applies; an iterator we lost track of
   ranges over top and the interval tests stay sound *)
let cmp_truth ctx op a b =
  let ba = eval ctx a and bb = eval ctx b in
  match (ba.value, bb.value) with
  | Affine.Affine fa, Affine.Affine fb -> (
    match Affine.sub (Affine.Affine fa) (Affine.Affine fb) with
    | Affine.Affine d -> classify_cmp ctx op d
    | Affine.Unknown -> if ba.uniform && bb.uniform then Uniform else Divergent)
  | _ -> if ba.uniform && bb.uniform then Uniform else Divergent

let rec truth ctx (e : Ast.expr) : truth =
  match e with
  | Ast.Bool_lit true -> Always_true
  | Ast.Bool_lit false -> Always_false
  | Ast.Unop (Ast.Not, a) -> not_t (truth ctx a)
  | Ast.Binop (Ast.And, a, b) -> and_t (truth ctx a) (truth ctx b)
  | Ast.Binop (Ast.Or, a, b) -> or_t (truth ctx a) (truth ctx b)
  | Ast.Binop (op, a, b) when is_cmp op -> cmp_truth ctx op a b
  | e ->
    (* C truthiness: any other expression is compared against zero *)
    cmp_truth ctx Ast.Ne e (Ast.Int_lit 0)
