(** Structured, source-located diagnostics emitted by the sanitizer.

    A diagnostic's identity for gating purposes is {!key}: everything except
    the source position.  The transform gate compares the diagnostic sets of
    the original and the rewritten kernel, and rewrites move statements
    around, so two reports of the same defect at different positions must
    count as the same diagnostic. *)

module Ast = Minicuda.Ast

type severity = Error | Warning

type kind = Barrier_divergence | Shared_race | Out_of_bounds

type t = {
  severity : severity;
  kind : kind;
  kernel : string;  (** kernel the diagnostic is about *)
  loc : Ast.loc;
  message : string;  (** free of positions, so {!key} stays stable *)
}

let severity_label = function Error -> "error" | Warning -> "warning"

let kind_label = function
  | Barrier_divergence -> "barrier-divergence"
  | Shared_race -> "shared-race"
  | Out_of_bounds -> "out-of-bounds"

let key d = (d.severity, d.kind, d.kernel, d.message)

let compare_locs a b =
  match compare a.Ast.line b.Ast.line with
  | 0 -> compare a.Ast.col b.Ast.col
  | c -> c

let sort ds =
  List.sort
    (fun a b ->
      match compare_locs a.loc b.loc with 0 -> compare (key a) (key b) | c -> c)
    ds

(** "file:line:col: error: [kind] kernel: message"; the file prefix is
    omitted when [?file] is not given, the position when it is unknown. *)
let to_string ?file d =
  let file_part = match file with Some f -> f ^ ":" | None -> "" in
  let loc_part =
    if d.loc = Ast.dummy_loc then ""
    else Printf.sprintf "%d:%d:" d.loc.Ast.line d.loc.Ast.col
  in
  Printf.sprintf "%s%s %s: [%s] %s: %s" file_part loc_part
    (severity_label d.severity) (kind_label d.kind) d.kernel d.message

let to_report ?file ds =
  String.concat "\n" (List.map (to_string ?file) (sort ds))

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
