(** Single abstract-interpretation pass over a kernel body.

    The walk does three jobs at once: it maintains the affine/uniformity
    environment (mirroring the transfer functions of [Catt.Analysis], with a
    block-uniformity bit on every binding), it emits barrier-divergence
    diagnostics on the spot — a [__syncthreads()] is only legal when every
    enclosing condition is block-uniform and no thread-dependent early exit
    is in flight — and it records shared-memory accesses and barriers as a
    sequenced event trace.  [Races] and [Bounds] consume the trace
    afterwards; the may-happen-in-parallel approximation lives in the
    [aseq]/[aloops] coordinates recorded here. *)

module Ast = Minicuda.Ast
module U = Uniformity

type access = {
  arr : string;
  asize : int;  (** declared element count of the shared array *)
  idx : Affine.value;
  idx_itv : Interval.t;  (** index range over all blocks, threads, iterations *)
  aiters : (string * Interval.t) list;  (** iterator ranges at the access *)
  is_write : bool;
  broadcast : bool;  (** plain store of a block-uniform value at a block-uniform index *)
  rhs : Ast.expr option;  (** stored value, for the broadcast-write exemption *)
  aseq : int;
  aloops : int list;  (** enclosing loop ids, outermost first *)
  aloc : Ast.loc;
}

type barrier = {
  bseq : int;
  bloops : int list;
  guarded : bool;
      (** under a condition not proved always-true, or after a
          thread-dependent early exit: does not reliably rendezvous the
          whole block, so it never counts as a separator *)
}

type result = {
  accesses : access list;  (** in walk order *)
  barriers : barrier list;
  diags : Diag.t list;
}

type st = {
  kname : string;
  shared : (string, int) Hashtbl.t;
  mutable seq : int;
  mutable next_loop : int;
  mutable accs : access list;  (* reversed *)
  mutable bars : barrier list;  (* reversed *)
  mutable diags : Diag.t list;  (* reversed *)
  mutable ret_escape : bool;  (* a thread-dependent return has happened *)
  mutable brk_escape : bool;  (* …or a break/continue, scoped to the loop *)
}

let next_seq st =
  st.seq <- st.seq + 1;
  st.seq

(* ------------------------------------------------------------------ *)
(* Environment transfer (shared by the real walk and the widening
   pre-pass)                                                           *)
(* ------------------------------------------------------------------ *)

let decl_binding ctx ty e =
  let b = U.eval ctx e in
  if ty = Ast.Int then b else { b with U.value = Affine.Unknown }

let assign_binding ctx op (target : U.binding) e =
  let rhs = U.eval ctx e in
  let value =
    match op with
    | Ast.Assign_eq -> rhs.U.value
    | Ast.Assign_add -> Affine.add target.U.value rhs.U.value
    | Ast.Assign_sub -> Affine.sub target.U.value rhs.U.value
    | Ast.Assign_mul -> Affine.mul target.U.value rhs.U.value
    | Ast.Assign_div -> (
      match rhs.U.value with
      | Affine.Affine k when Affine.is_constant k ->
        Affine.div_exact target.U.value k.Affine.const
      | _ -> Affine.Unknown)
  in
  let uniform =
    match op with
    | Ast.Assign_eq -> rhs.U.uniform
    | _ -> target.U.uniform && rhs.U.uniform
  in
  U.refine ctx.U.geo { U.value; uniform }

let same_value a b =
  match (a.U.value, b.U.value) with
  | Affine.Affine x, Affine.Affine y -> Affine.equal x y
  | Affine.Unknown, Affine.Unknown -> true
  | _ -> false

(* merge a variable across the two arms of an [if]; under a divergent
   condition different threads took different arms, so uniformity survives
   only when the variable provably holds the same value on both *)
let join_binding ~divergent (b0 : U.binding) bt be =
  let value = if same_value bt be then bt.U.value else Affine.Unknown in
  let untouched = bt == b0 && be == b0 in
  let agree =
    match (bt.U.value, be.U.value) with
    | Affine.Affine x, Affine.Affine y -> Affine.equal x y
    | _ -> false
  in
  let uniform =
    bt.U.uniform && be.U.uniform && ((not divergent) || untouched || agree)
  in
  { U.value; uniform }

let join_if ~divergent (ctx : U.ctx) ctx_then ctx_else =
  {
    ctx with
    U.env =
      List.map
        (fun (name, b0) ->
          ( name,
            join_binding ~divergent b0 (U.lookup ctx_then name)
              (U.lookup ctx_else name) ))
        ctx.U.env;
  }

(* variables assigned anywhere in a loop body are unknown — and, since the
   number of executed assignments can differ per thread, no longer provably
   uniform — once the loop is left *)
let kill_assigned (ctx : U.ctx) body =
  let assigned =
    Ast.fold_block
      (fun acc s ->
        match s.Ast.sk with
        | Ast.Assign (Ast.Lvar name, _, _) -> name :: acc
        | Ast.For { loop_var; declares = false; _ } -> loop_var :: acc
        | _ -> acc)
      [] body
  in
  {
    ctx with
    U.env =
      List.map
        (fun (name, b) ->
          if List.mem name assigned then (name, U.unknown_varying)
          else (name, b))
        ctx.U.env;
  }

(* silent pre-pass for accumulator widening: only the env effects, no
   events, no diagnostics *)
let rec abstract_stmt (ctx : U.ctx) (s : Ast.stmt) : U.ctx =
  match s.Ast.sk with
  | Ast.Decl (_, name, None) -> U.bind ctx name U.unknown_varying
  | Ast.Decl (ty, name, Some e) -> U.bind ctx name (decl_binding ctx ty e)
  | Ast.Shared_decl _ | Ast.Assign (Ast.Larr _, _, _) -> ctx
  | Ast.Assign (Ast.Lvar name, op, e) ->
    U.bind ctx name (assign_binding ctx op (U.lookup ctx name) e)
  | Ast.If (cond, then_b, else_b) ->
    let divergent = U.truth ctx cond = U.Divergent in
    join_if ~divergent ctx
      (abstract_block ctx then_b)
      (abstract_block ctx else_b)
  | Ast.While (_, body) -> kill_assigned ctx body
  | Ast.For { loop_var; body; _ } ->
    U.bind (kill_assigned ctx body) loop_var U.unknown_varying
  | Ast.Syncthreads | Ast.Return | Ast.Break | Ast.Continue -> ctx
  | Ast.Block body -> abstract_block ctx body

and abstract_block ctx b = List.fold_left abstract_stmt ctx b

(* Widen accumulators exactly as [Catt.Analysis.loop_body_env] does:
   v_out = v_in + δ with a constant δ becomes v_in + δ·iter. *)
let widen_body_ctx (ctx : U.ctx) { Ast.loop_var; init; step; body; _ } : U.ctx
    =
  let init_b = U.eval ctx init in
  let step_b = U.eval ctx step in
  let iterv = Affine.Affine (Affine.iter loop_var) in
  let loop_var_value =
    match step_b.U.value with
    | Affine.Affine k when Affine.is_constant k ->
      Affine.add init_b.U.value (Affine.mul step_b.U.value iterv)
    | _ -> Affine.Unknown
  in
  let loop_var_b =
    U.refine ctx.U.geo
      { U.value = loop_var_value;
        uniform = init_b.U.uniform && step_b.U.uniform }
  in
  let ctx1 = U.bind ctx loop_var loop_var_b in
  let out = abstract_block ctx1 body in
  {
    ctx1 with
    U.env =
      List.map
        (fun (name, b_in) ->
          if name = loop_var then (name, b_in)
          else
            let b_out = U.lookup out name in
            if same_value b_in b_out && b_in.U.uniform = b_out.U.uniform then
              (name, b_in)
            else
              match (Affine.sub b_out.U.value b_in.U.value, b_in.U.value) with
              | Affine.Affine delta, Affine.Affine base
                when Affine.is_constant delta
                     && Affine.coeff_of_iter base loop_var = 0 ->
                let widened =
                  Affine.add (Affine.Affine base)
                    (Affine.mul (Affine.Affine delta) iterv)
                in
                ( name,
                  U.refine ctx.U.geo
                    { U.value = widened;
                      uniform = b_in.U.uniform && b_out.U.uniform } )
              | _ -> (name, U.unknown_varying))
        ctx1.U.env;
  }

(* ------------------------------------------------------------------ *)
(* Loop trip counts                                                    *)
(* ------------------------------------------------------------------ *)

(* floor division for a positive divisor *)
let fdiv a b = if a >= 0 || a mod b = 0 then a / b else (a / b) - 1

(* Range of the iteration counter of a [for] loop: normalize the condition
   to [rest + c·iter < 0] (or ≤) and bound the largest iter for which it
   can still hold, minimizing [rest] over everything else. *)
let iter_bound (body_ctx : U.ctx) ~loop_var (cond : Ast.expr) : Interval.t =
  let unbounded = { Interval.lo = Some 0; hi = None } in
  match cond with
  | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, lhs, rhs) -> (
    let d =
      Affine.sub (U.eval body_ctx lhs).U.value (U.eval body_ctx rhs).U.value
    in
    match d with
    | Affine.Unknown -> unbounded
    | Affine.Affine d ->
      let strict, d =
        match op with
        | Ast.Lt -> (true, Affine.Affine d)
        | Ast.Le -> (false, Affine.Affine d)
        | Ast.Gt -> (true, Affine.neg (Affine.Affine d))
        | Ast.Ge -> (false, Affine.neg (Affine.Affine d))
        | _ -> assert false
      in
      (match d with
       | Affine.Affine d ->
         let c = Affine.coeff_of_iter d loop_var in
         if c <= 0 then unbounded
         else begin
           let rest = Affine.drop_iter d loop_var in
           match (U.range_of_affine body_ctx rest).Interval.lo with
           | None -> unbounded
           | Some lo ->
             let hi = if strict then fdiv (-lo - 1) c else fdiv (-lo) c in
             Interval.make 0 (max hi 0)
         end
       | Affine.Unknown -> unbounded))
  | _ -> unbounded

(* ------------------------------------------------------------------ *)
(* The walk proper                                                     *)
(* ------------------------------------------------------------------ *)

(* [div] carries the reason the current context is thread-divergent, [guard]
   counts enclosing conditions not proved always-true, [loops] is the stack
   of enclosing loop ids. *)
type flow = { div : string option; guard : int; loops : int list }

let record_access st ctx flow ~arr ~idx_expr ~is_write ~rhs ~loc =
  match Hashtbl.find_opt st.shared arr with
  | None -> ()  (* global memory: out of scope for the shared-memory checks *)
  | Some asize ->
    let idx_b = U.eval ctx idx_expr in
    let broadcast =
      is_write && rhs <> None && idx_b.U.uniform
      && match rhs with Some e -> (U.eval ctx e).U.uniform | None -> false
    in
    st.accs <-
      {
        arr;
        asize;
        idx = idx_b.U.value;
        idx_itv = U.range_of_value ctx idx_b.U.value;
        aiters = ctx.U.iters;
        is_write;
        broadcast;
        rhs;
        aseq = next_seq st;
        aloops = List.rev flow.loops;
        aloc = loc;
      }
      :: st.accs

(* every shared-array read inside an expression, nested index first *)
let rec record_expr st ctx flow ~loc (e : Ast.expr) =
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Var _
  | Ast.Builtin _ ->
    ()
  | Ast.Index (arr, idx) ->
    record_expr st ctx flow ~loc idx;
    record_access st ctx flow ~arr ~idx_expr:idx ~is_write:false ~rhs:None ~loc
  | Ast.Binop (_, a, b) ->
    record_expr st ctx flow ~loc a;
    record_expr st ctx flow ~loc b
  | Ast.Unop (_, a) | Ast.Cast (_, a) -> record_expr st ctx flow ~loc a
  | Ast.Call (_, args) -> List.iter (record_expr st ctx flow ~loc) args
  | Ast.Ternary (c, a, b) ->
    record_expr st ctx flow ~loc c;
    record_expr st ctx flow ~loc a;
    record_expr st ctx flow ~loc b

let diag st ~loc msg =
  st.diags <-
    {
      Diag.severity = Diag.Error;
      kind = Diag.Barrier_divergence;
      kernel = st.kname;
      loc;
      message = msg;
    }
    :: st.diags

let describe_cond cond = Minicuda.Pretty.expr cond

let rec walk_stmt st (ctx : U.ctx) (flow : flow) (s : Ast.stmt) : U.ctx =
  let loc = s.Ast.sloc in
  match s.Ast.sk with
  | Ast.Decl (_, name, None) -> U.bind ctx name U.unknown_varying
  | Ast.Decl (ty, name, Some e) ->
    record_expr st ctx flow ~loc e;
    U.bind ctx name (decl_binding ctx ty e)
  | Ast.Shared_decl _ -> ctx  (* sizes were pre-scanned *)
  | Ast.Assign (Ast.Lvar name, op, e) ->
    record_expr st ctx flow ~loc e;
    U.bind ctx name (assign_binding ctx op (U.lookup ctx name) e)
  | Ast.Assign (Ast.Larr (arr, idx), op, e) ->
    record_expr st ctx flow ~loc idx;
    record_expr st ctx flow ~loc e;
    (* compound ops read-modify-write: both a load and a store, and the
       load makes even a uniform store non-benign *)
    if op <> Ast.Assign_eq then
      record_access st ctx flow ~arr ~idx_expr:idx ~is_write:false ~rhs:None
        ~loc;
    let rhs = if op = Ast.Assign_eq then Some e else None in
    record_access st ctx flow ~arr ~idx_expr:idx ~is_write:true ~rhs ~loc;
    ctx
  | Ast.Syncthreads ->
    (if st.ret_escape || st.brk_escape then
       diag st ~loc
         "barrier reachable after a thread-dependent return, break or \
          continue: threads that left can never arrive"
     else
       match flow.div with
       | Some reason ->
         diag st ~loc
           (Printf.sprintf
              "barrier under thread-divergent control flow (%s): threads of \
               a block may not all reach it"
              reason)
       | None -> ());
    st.bars <-
      {
        bseq = next_seq st;
        bloops = List.rev flow.loops;
        guarded =
          flow.guard > 0 || flow.div <> None || st.ret_escape || st.brk_escape;
      }
      :: st.bars;
    ctx
  | Ast.Return ->
    if flow.div <> None then st.ret_escape <- true;
    ctx
  | Ast.Break | Ast.Continue ->
    if flow.div <> None then st.brk_escape <- true;
    ctx
  | Ast.If (cond, then_b, else_b) ->
    record_expr st ctx flow ~loc cond;
    let t = U.truth ctx cond in
    let guarded = { flow with guard = flow.guard + 1 } in
    let divergent_flow =
      {
        guarded with
        div =
          (match flow.div with
          | Some _ as d -> d
          | None ->
            Some
              (Printf.sprintf "guard `%s` is thread-dependent"
                 (describe_cond cond)));
      }
    in
    (* a decided condition leaves one arm running unconditionally and the
       other dead; the dead arm is still walked (guarded) so egregious code
       there surfaces, but it cannot relax the live arm *)
    let then_flow, else_flow =
      match t with
      | U.Always_true -> (flow, guarded)
      | U.Always_false -> (guarded, flow)
      | U.Uniform -> (guarded, guarded)
      | U.Divergent -> (divergent_flow, divergent_flow)
    in
    let ctx_then = walk_block st ctx then_flow then_b in
    let ctx_else = walk_block st ctx else_flow else_b in
    join_if ~divergent:(t = U.Divergent) ctx ctx_then ctx_else
  | Ast.While (cond, body) ->
    let ctx_in = kill_assigned ctx body in
    record_expr st ctx_in flow ~loc cond;
    let id = st.next_loop in
    st.next_loop <- id + 1;
    let iter_name = Printf.sprintf "<while:%d>" id in
    let body_ctx =
      U.push_iter ctx_in iter_name { Interval.lo = Some 0; hi = None }
    in
    let t = U.truth ctx_in cond in
    let body_flow =
      {
        flow with
        loops = id :: flow.loops;
        div =
          (if t = U.Divergent && flow.div = None then
             Some
               (Printf.sprintf "loop condition `%s` is thread-dependent"
                  (describe_cond cond))
           else flow.div);
      }
    in
    let saved_brk = st.brk_escape in
    let _ = walk_block st body_ctx body_flow body in
    st.brk_escape <- saved_brk;
    ctx_in
  | Ast.For ({ loop_var; init; cond; step; body; _ } as loop) ->
    record_expr st ctx flow ~loc init;
    let id = st.next_loop in
    st.next_loop <- id + 1;
    let widened = widen_body_ctx ctx loop in
    let probe_ctx = U.push_iter widened loop_var Interval.top in
    let range = iter_bound probe_ctx ~loop_var cond in
    let body_ctx = U.push_iter widened loop_var range in
    let t = U.truth body_ctx cond in
    let body_flow =
      {
        flow with
        loops = id :: flow.loops;
        div =
          (if t = U.Divergent && flow.div = None then
             Some
               (Printf.sprintf
                  "loop trip count depends on the thread (condition `%s`)"
                  (describe_cond cond))
           else flow.div);
      }
    in
    (* condition and step re-execute every iteration *)
    record_expr st body_ctx body_flow ~loc cond;
    record_expr st body_ctx body_flow ~loc step;
    let saved_brk = st.brk_escape in
    let _ = walk_block st body_ctx body_flow body in
    st.brk_escape <- saved_brk;
    U.bind (kill_assigned ctx body) loop_var U.unknown_varying
  | Ast.Block body -> walk_block st ctx flow body

and walk_block st ctx flow b = List.fold_left (fun c s -> walk_stmt st c flow s) ctx b

let run (geo : Geom.t) (k : Ast.kernel) : result =
  let shared = Hashtbl.create 4 in
  Ast.fold_block
    (fun () s ->
      match s.Ast.sk with
      | Ast.Shared_decl (_, name, size) -> Hashtbl.replace shared name size
      | _ -> ())
    () k.Ast.body;
  let st =
    {
      kname = k.Ast.kernel_name;
      shared;
      seq = 0;
      next_loop = 0;
      accs = [];
      bars = [];
      diags = [];
      ret_escape = false;
      brk_escape = false;
    }
  in
  (* scalar parameters are launch constants: unknown but uniform *)
  let ctx0 =
    List.fold_left
      (fun ctx p ->
        match p.Ast.param_ty with
        | Ast.Ptr _ -> ctx
        | _ -> U.bind ctx p.Ast.param_name U.unknown_uniform)
      (U.init geo) k.Ast.params
  in
  let _ =
    walk_block st ctx0 { div = None; guard = 0; loops = [] } k.Ast.body
  in
  {
    accesses = List.rev st.accs;
    barriers = List.rev st.bars;
    diags = List.rev st.diags;
  }
