(** Out-of-bounds analysis for [__shared__] arrays.

    The walker already computed, for every shared access, the interval of
    its affine index over all blocks, threads and loop iterations.  When a
    finite end of that interval provably escapes [0, size) the access *may*
    overflow — a warning, not an error, because the interval is an
    over-approximation (a guard the affine domain cannot see may exclude
    the offending lanes).  Unknown or unbounded indices stay silent:
    warning on every lost index would bury the real findings.  Global
    arrays have no declared extent in the kernel language, so only shared
    arrays are checked. *)

let check kname (r : Walk.result) : Diag.t list =
  let diags = ref [] in
  List.iter
    (fun (a : Walk.access) ->
      let itv = a.Walk.idx_itv in
      let low = match itv.Interval.lo with Some l -> l < 0 | None -> false in
      let high =
        match itv.Interval.hi with Some h -> h >= a.Walk.asize | None -> false
      in
      if a.Walk.asize > 0 && (low || high) then begin
        let d =
          {
            Diag.severity = Diag.Warning;
            kind = Diag.Out_of_bounds;
            kernel = kname;
            loc = a.Walk.aloc;
            message =
              Printf.sprintf
                "index of __shared__ `%s` (%d elements) may reach %s"
                a.Walk.arr a.Walk.asize
                (Interval.to_string itv);
          }
        in
        if
          not
            (List.exists
               (fun d' -> Diag.key d' = Diag.key d && d'.Diag.loc = d.Diag.loc)
               !diags)
        then diags := d :: !diags
      end)
    r.Walk.accesses;
  List.rev !diags
