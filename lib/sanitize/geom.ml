(** Launch geometry: grid and block extents in x/y.  The same shape as the
    analysis layer's geometry record upstream ([Catt.Analysis.geometry]
    re-exports this type), so values flow between the two without
    conversion. *)

type t = { grid_x : int; grid_y : int; block_x : int; block_y : int }

let threads_per_block g = g.block_x * g.block_y
let blocks g = g.grid_x * g.grid_y
