exception Type_error of string

type space = Global | Shared

type array_info = {
  elem_ty : Ast.ty;
  space : space;
  shared_size : int option;
}

type info = {
  arrays : (string * array_info) list;
  scalar_params : (string * Ast.ty) list;
  shared_bytes : int;
}

let fail fmt = Printf.ksprintf (fun msg -> raise (Type_error msg)) fmt

let elem_bytes = function
  | Ast.Int | Ast.Float -> 4
  | Ast.Bool -> 1
  | Ast.Ptr _ -> 8

type env = {
  mutable arrays_acc : (string * array_info) list;
  mutable scalars : (string * Ast.ty) list list;  (* scope stack *)
  mutable loop_depth : int;
}

let push_scope env = env.scalars <- [] :: env.scalars
let pop_scope env =
  match env.scalars with
  | [] -> assert false
  | _ :: rest -> env.scalars <- rest

let declare env name ty =
  match env.scalars with
  | [] -> assert false
  | scope :: rest ->
    if List.mem_assoc name scope then fail "redeclaration of %s" name;
    if List.mem_assoc name env.arrays_acc then
      fail "%s already names an array" name;
    env.scalars <- ((name, ty) :: scope) :: rest

let lookup_scalar env name =
  let rec search = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some ty -> Some ty
      | None -> search rest)
  in
  search env.scalars

let lookup_array env name = List.assoc_opt name env.arrays_acc

let is_numeric = function Ast.Int | Ast.Float -> true | Ast.Bool | Ast.Ptr _ -> false

let join a b =
  match (a, b) with
  | Ast.Float, _ | _, Ast.Float -> Ast.Float
  | Ast.Int, Ast.Int -> Ast.Int
  | _ -> fail "cannot join types %s and %s" (Ast.show_ty a) (Ast.show_ty b)

let rec type_of env e =
  match e with
  | Ast.Int_lit _ -> Ast.Int
  | Ast.Float_lit _ -> Ast.Float
  | Ast.Bool_lit _ -> Ast.Bool
  | Ast.Builtin _ -> Ast.Int
  | Ast.Var name -> (
    match lookup_scalar env name with
    | Some ty -> ty
    | None ->
      if lookup_array env name <> None then
        fail "array %s used without an index" name
      else fail "undeclared variable %s" name)
  | Ast.Index (arr, idx) -> (
    (match type_of env idx with
    | Ast.Int -> ()
    | ty -> fail "index of %s has type %s, expected int" arr (Ast.show_ty ty));
    match lookup_array env arr with
    | Some { elem_ty; _ } -> elem_ty
    | None -> fail "indexing unknown array %s" arr)
  | Ast.Unop (Ast.Neg, a) ->
    let ty = type_of env a in
    if is_numeric ty then ty else fail "negation of non-numeric value"
  | Ast.Unop (Ast.Not, a) -> (
    match type_of env a with
    | Ast.Bool -> Ast.Bool
    | ty -> fail "! applied to %s, expected bool" (Ast.show_ty ty))
  | Ast.Binop ((Ast.And | Ast.Or), a, b) ->
    let check side e =
      match type_of env e with
      | Ast.Bool -> ()
      | ty -> fail "%s operand of &&/|| has type %s" side (Ast.show_ty ty)
    in
    check "left" a;
    check "right" b;
    Ast.Bool
  | Ast.Binop (Ast.Mod, a, b) ->
    let ta = type_of env a and tb = type_of env b in
    if ta = Ast.Int && tb = Ast.Int then Ast.Int
    else fail "%% requires int operands"
  | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne), a, b) ->
    let ta = type_of env a and tb = type_of env b in
    if is_numeric ta && is_numeric tb then Ast.Bool
    else fail "comparison of non-numeric values"
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), a, b) ->
    let ta = type_of env a and tb = type_of env b in
    if is_numeric ta && is_numeric tb then join ta tb
    else fail "arithmetic on non-numeric values"
  | Ast.Call (name, args) -> (
    match Builtins.find name with
    | None -> fail "call to unknown function %s" name
    | Some { Builtins.arity; returns; _ } ->
      if List.length args <> arity then
        fail "%s expects %d arguments, got %d" name arity (List.length args);
      List.iter
        (fun arg ->
          if not (is_numeric (type_of env arg)) then
            fail "non-numeric argument to %s" name)
        args;
      returns)
  | Ast.Cast (ty, a) ->
    if not (is_numeric ty) then fail "cast to non-numeric type";
    if not (is_numeric (type_of env a)) then fail "cast of non-numeric value";
    ty
  | Ast.Ternary (c, a, b) ->
    (match type_of env c with
    | Ast.Bool -> ()
    | ty -> fail "ternary condition has type %s" (Ast.show_ty ty));
    join (type_of env a) (type_of env b)

let check_condition env e =
  match type_of env e with
  | Ast.Bool -> ()
  | Ast.Int -> () (* C-style truthiness, used by a few Rodinia kernels *)
  | ty -> fail "condition has type %s" (Ast.show_ty ty)

let check_numeric_assign env target_ty e =
  let ty = type_of env e in
  if not (is_numeric ty && is_numeric target_ty) then
    fail "assignment between non-numeric types"

(* The innermost statement wins: a message that already carries a
   "line:col:" prefix (it starts with a digit) is passed through. *)
let relocate loc msg =
  if loc = Ast.dummy_loc || (msg <> "" && msg.[0] >= '0' && msg.[0] <= '9')
  then msg
  else Printf.sprintf "%d:%d: %s" loc.Ast.line loc.Ast.col msg

let rec check_stmt env s =
  try check_stmt_kind env s.Ast.sk
  with Type_error msg -> raise (Type_error (relocate s.Ast.sloc msg))

and check_stmt_kind env sk =
  match sk with
  | Ast.Decl (ty, name, init) ->
    if not (is_numeric ty) then fail "local %s must be int or float" name;
    (match init with Some e -> check_numeric_assign env ty e | None -> ());
    declare env name ty
  | Ast.Shared_decl (ty, name, size) ->
    if not (is_numeric ty) then fail "shared array %s must be int or float" name;
    if size <= 0 then fail "shared array %s has non-positive size" name;
    if List.mem_assoc name env.arrays_acc then fail "redeclaration of array %s" name;
    env.arrays_acc <-
      (name, { elem_ty = ty; space = Shared; shared_size = Some size })
      :: env.arrays_acc
  | Ast.Assign (Ast.Lvar name, _, e) -> (
    match lookup_scalar env name with
    | Some ty -> check_numeric_assign env ty e
    | None -> fail "assignment to undeclared variable %s" name)
  | Ast.Assign (Ast.Larr (arr, idx), _, e) -> (
    (match type_of env idx with
    | Ast.Int -> ()
    | ty -> fail "index of %s has type %s, expected int" arr (Ast.show_ty ty));
    match lookup_array env arr with
    | Some { elem_ty; _ } -> check_numeric_assign env elem_ty e
    | None -> fail "assignment to unknown array %s" arr)
  | Ast.If (cond, then_b, else_b) ->
    check_condition env cond;
    check_block env then_b;
    check_block env else_b
  | Ast.For { loop_var; declares; init; cond; step; body } ->
    push_scope env;
    if declares then declare env loop_var Ast.Int
    else (
      match lookup_scalar env loop_var with
      | Some Ast.Int -> ()
      | Some ty -> fail "loop variable %s has type %s" loop_var (Ast.show_ty ty)
      | None -> fail "loop variable %s is undeclared" loop_var);
    (match type_of env init with
    | Ast.Int -> ()
    | ty -> fail "loop init has type %s" (Ast.show_ty ty));
    check_condition env cond;
    (match type_of env step with
    | Ast.Int -> ()
    | ty -> fail "loop step has type %s" (Ast.show_ty ty));
    env.loop_depth <- env.loop_depth + 1;
    check_block env body;
    env.loop_depth <- env.loop_depth - 1;
    pop_scope env
  | Ast.While (cond, body) ->
    check_condition env cond;
    env.loop_depth <- env.loop_depth + 1;
    check_block env body;
    env.loop_depth <- env.loop_depth - 1
  | Ast.Break | Ast.Continue ->
    if env.loop_depth = 0 then fail "break/continue outside a loop"
  | Ast.Syncthreads | Ast.Return -> ()
  | Ast.Block body ->
    push_scope env;
    List.iter (check_stmt env) body;
    pop_scope env

and check_block env b : unit =
  push_scope env;
  List.iter (check_stmt env) b;
  pop_scope env

let check_kernel (k : Ast.kernel) =
  let env = { arrays_acc = []; scalars = [ [] ]; loop_depth = 0 } in
  let scalar_params = ref [] in
  List.iter
    (fun { Ast.param_ty; param_name } ->
      match param_ty with
      | Ast.Ptr elem_ty ->
        if not (is_numeric elem_ty) then
          fail "parameter %s: only int*/float* arrays are supported" param_name;
        if List.mem_assoc param_name env.arrays_acc then
          fail "duplicate parameter %s" param_name;
        env.arrays_acc <-
          (param_name, { elem_ty; space = Global; shared_size = None })
          :: env.arrays_acc
      | ty ->
        if not (is_numeric ty) then
          fail "parameter %s: unsupported scalar type" param_name;
        declare env param_name ty;
        scalar_params := (param_name, ty) :: !scalar_params)
    k.Ast.params;
  List.iter (check_stmt env) k.Ast.body;
  let shared_bytes =
    List.fold_left
      (fun acc (_, { elem_ty; shared_size; _ }) ->
        match shared_size with
        | Some n -> acc + (n * elem_bytes elem_ty)
        | None -> acc)
      0 env.arrays_acc
  in
  {
    arrays = List.rev env.arrays_acc;
    scalar_params = List.rev !scalar_params;
    shared_bytes;
  }

let check_program (p : Ast.program) =
  List.map (fun k -> (k.Ast.kernel_name, check_kernel k)) p.Ast.kernels
