(** Abstract syntax for the mini-CUDA kernel language.

    The language covers the constructs that the paper's analysis (and every
    evaluated Polybench/Rodinia kernel) actually uses: scalar [int]/[float]
    locals, global-memory arrays received as pointer parameters,
    [__shared__] arrays, structured control flow ([if]/[for]/[while]),
    thread/block builtins and [__syncthreads()].  Function calls are limited
    to a fixed set of math builtins — GPU kernels in the benchmark suites
    are fully inlined, as the paper assumes. *)

(** Source position of a statement, 1-based.  Synthesized statements (for
    example the guarded phases emitted by the CATT transform) carry
    {!dummy_loc}.  Locations are deliberately invisible to the derived
    equalities: two ASTs that differ only in positions are [equal], which is
    what every structural test and the transform gate want. *)
type loc = { line : int; col : int }

let dummy_loc = { line = 0; col = 0 }
let equal_loc (_ : loc) (_ : loc) = true

let pp_loc fmt l =
  if l = dummy_loc then Format.pp_print_string fmt "<synth>"
  else Format.fprintf fmt "%d:%d" l.line l.col

let show_loc l = Format.asprintf "%a" pp_loc l

type ty =
  | Int
  | Float
  | Bool
  | Ptr of ty  (** pointer parameter, i.e. a global-memory array *)
[@@deriving show { with_path = false }, eq]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
[@@deriving show { with_path = false }, eq]

type unop = Neg | Not [@@deriving show { with_path = false }, eq]

(** Thread-grid builtins.  Only [x]/[y] dimensions are modeled; none of the
    evaluated workloads use [z]. *)
type builtin_var =
  | Thread_idx_x
  | Thread_idx_y
  | Block_idx_x
  | Block_idx_y
  | Block_dim_x
  | Block_dim_y
  | Grid_dim_x
  | Grid_dim_y
[@@deriving show { with_path = false }, eq]

type expr =
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Var of string
  | Builtin of builtin_var
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Index of string * expr  (** [a\[e\]] read; [a] global or shared array *)
  | Call of string * expr list  (** math builtin, see {!Builtins} *)
  | Cast of ty * expr
  | Ternary of expr * expr * expr
[@@deriving show { with_path = false }, eq]

type lvalue =
  | Lvar of string
  | Larr of string * expr
[@@deriving show { with_path = false }, eq]

(** Compound-assignment operators; [Assign_eq] is plain [=]. *)
type assign_op =
  | Assign_eq
  | Assign_add
  | Assign_sub
  | Assign_mul
  | Assign_div
[@@deriving show { with_path = false }, eq]

type for_loop = {
  loop_var : string;
  declares : bool;  (** [for (int j = …)] vs. reuse of an outer variable *)
  init : expr;
  cond : expr;
  step : expr;  (** additive increment per iteration; [j++] is [1] *)
  body : block;
}
[@@deriving show { with_path = false }, eq]

and stmt = {
  sk : stmt_kind;
  sloc : loc;  (** where the statement starts; {!dummy_loc} if synthesized *)
}
[@@deriving show { with_path = false }, eq]

and stmt_kind =
  | Decl of ty * string * expr option
  | Shared_decl of ty * string * int  (** [__shared__ float s\[256\];] *)
  | Assign of lvalue * assign_op * expr
  | If of expr * block * block
  | For of for_loop
  | While of expr * block
  | Syncthreads
  | Return
  | Break  (** exit the innermost loop *)
  | Continue  (** skip to the next iteration of the innermost loop *)
  | Block of block
[@@deriving show { with_path = false }, eq]

and block = stmt list [@@deriving show { with_path = false }, eq]

type param = { param_ty : ty; param_name : string }
[@@deriving show { with_path = false }, eq]

type kernel = {
  kernel_name : string;
  params : param list;
  body : block;
}
[@@deriving show { with_path = false }, eq]

type program = {
  defines : (string * int) list;  (** [#define NX 40960] constants *)
  kernels : kernel list;
}
[@@deriving show { with_path = false }, eq]

(** {2 Construction helpers} *)

(** [at ?loc kind] wraps a statement kind with a position; synthesized code
    omits [?loc] and gets {!dummy_loc}. *)
let at ?(loc = dummy_loc) sk = { sk; sloc = loc }

(** {2 Traversal helpers} *)

(** [fold_expr f acc e] folds [f] over [e] and all sub-expressions,
    parents before children. *)
let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ | Builtin _ -> acc
  | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Unop (_, a) | Index (_, a) | Cast (_, a) -> fold_expr f acc a
  | Call (_, args) -> List.fold_left (fold_expr f) acc args
  | Ternary (c, a, b) -> fold_expr f (fold_expr f (fold_expr f acc c) a) b

(** [fold_stmt f acc s] folds [f] over [s] and all nested statements,
    parents before children. *)
let rec fold_stmt f acc s =
  let acc = f acc s in
  match s.sk with
  | Decl _ | Shared_decl _ | Assign _ | Syncthreads | Return | Break
  | Continue ->
    acc
  | If (_, then_b, else_b) ->
    fold_block f (fold_block f acc then_b) else_b
  | For { body; _ } | While (_, body) | Block body -> fold_block f acc body

and fold_block f acc b = List.fold_left (fold_stmt f) acc b

(** All expressions appearing directly in a statement (not in nested
    statements): declaration initializers, assignment sources and targets,
    conditions, loop bounds. *)
let stmt_exprs s =
  match s.sk with
  | Decl (_, _, None) | Shared_decl _ | Syncthreads | Return | Break
  | Continue | Block _ ->
    []
  | Decl (_, _, Some e) -> [ e ]
  | Assign (Lvar _, _, e) -> [ e ]
  | Assign (Larr (_, idx), _, e) -> [ idx; e ]
  | If (c, _, _) -> [ c ]
  | For { init; cond; step; _ } -> [ init; cond; step ]
  | While (c, _) -> [ c ]

(** Every array name read or written anywhere in a block. *)
let arrays_of_block block =
  let add acc name = if List.mem name acc then acc else name :: acc in
  let of_expr acc e =
    fold_expr
      (fun acc e -> match e with Index (a, _) -> add acc a | _ -> acc)
      acc e
  in
  let of_stmt acc s =
    let acc =
      match s.sk with Assign (Larr (a, _), _, _) -> add acc a | _ -> acc
    in
    List.fold_left of_expr acc (stmt_exprs s)
  in
  List.rev (fold_block of_stmt [] block)
