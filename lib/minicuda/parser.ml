exception Error of string * int

type state = {
  mutable tokens : (Lexer.token * Ast.loc) list;
  mutable defines : (string * int) list;
}

let current st =
  match st.tokens with
  | [] -> (Lexer.Eof, Ast.dummy_loc)
  | tok :: _ -> tok

let peek st = fst (current st)

let peek_snd st =
  match st.tokens with _ :: (tok, _) :: _ -> tok | _ -> Lexer.Eof

let loc st = snd (current st)
let line st = (loc st).Ast.line

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let fail st msg = raise (Error (msg, line st))

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Lexer.show_token tok)
         (Lexer.show_token (peek st)))

let expect_ident st =
  match peek st with
  | Lexer.Ident name ->
    advance st;
    name
  | tok -> fail st (Printf.sprintf "expected identifier, found %s" (Lexer.show_token tok))

let expect_int st =
  match peek st with
  | Lexer.Int_lit n ->
    advance st;
    n
  | Lexer.Ident name -> (
    match List.assoc_opt name st.defines with
    | Some n ->
      advance st;
      n
    | None -> fail st (Printf.sprintf "expected integer constant, found %s" name))
  | tok -> fail st (Printf.sprintf "expected integer constant, found %s" (Lexer.show_token tok))

(* ------------------------------------------------------------------ *)
(* Types                                                              *)
(* ------------------------------------------------------------------ *)

let base_ty st =
  match peek st with
  | Lexer.Kw_int ->
    advance st;
    Ast.Int
  | Lexer.Kw_float ->
    advance st;
    Ast.Float
  | Lexer.Kw_bool ->
    advance st;
    Ast.Bool
  | tok -> fail st (Printf.sprintf "expected a type, found %s" (Lexer.show_token tok))

let is_type_start = function
  | Lexer.Kw_int | Lexer.Kw_float | Lexer.Kw_bool -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing                                   *)
(* ------------------------------------------------------------------ *)

let builtin_member st base =
  expect st Lexer.Dot;
  let field = expect_ident st in
  let pick x y =
    match field with
    | "x" -> x
    | "y" -> y
    | _ -> fail st (Printf.sprintf "unsupported builtin member .%s" field)
  in
  match base with
  | "threadIdx" -> Ast.Builtin (pick Ast.Thread_idx_x Ast.Thread_idx_y)
  | "blockIdx" -> Ast.Builtin (pick Ast.Block_idx_x Ast.Block_idx_y)
  | "blockDim" -> Ast.Builtin (pick Ast.Block_dim_x Ast.Block_dim_y)
  | "gridDim" -> Ast.Builtin (pick Ast.Grid_dim_x Ast.Grid_dim_y)
  | _ -> fail st (Printf.sprintf "unknown builtin struct %s" base)

let is_builtin_struct = function
  | "threadIdx" | "blockIdx" | "blockDim" | "gridDim" -> true
  | _ -> false

let rec expr st = ternary st

and ternary st =
  let cond = logical_or st in
  if peek st = Lexer.Question then begin
    advance st;
    let then_e = expr st in
    expect st Lexer.Colon;
    let else_e = ternary st in
    Ast.Ternary (cond, then_e, else_e)
  end
  else cond

and logical_or st =
  let rec loop lhs =
    if peek st = Lexer.Bar_bar then begin
      advance st;
      let rhs = logical_and st in
      loop (Ast.Binop (Ast.Or, lhs, rhs))
    end
    else lhs
  in
  loop (logical_and st)

and logical_and st =
  let rec loop lhs =
    if peek st = Lexer.Amp_amp then begin
      advance st;
      let rhs = equality st in
      loop (Ast.Binop (Ast.And, lhs, rhs))
    end
    else lhs
  in
  loop (equality st)

and equality st =
  let rec loop lhs =
    match peek st with
    | Lexer.Eq_eq ->
      advance st;
      loop (Ast.Binop (Ast.Eq, lhs, relational st))
    | Lexer.Bang_eq ->
      advance st;
      loop (Ast.Binop (Ast.Ne, lhs, relational st))
    | _ -> lhs
  in
  loop (relational st)

and relational st =
  let rec loop lhs =
    match peek st with
    | Lexer.Lt ->
      advance st;
      loop (Ast.Binop (Ast.Lt, lhs, additive st))
    | Lexer.Le ->
      advance st;
      loop (Ast.Binop (Ast.Le, lhs, additive st))
    | Lexer.Gt ->
      advance st;
      loop (Ast.Binop (Ast.Gt, lhs, additive st))
    | Lexer.Ge ->
      advance st;
      loop (Ast.Binop (Ast.Ge, lhs, additive st))
    | _ -> lhs
  in
  loop (additive st)

and additive st =
  let rec loop lhs =
    match peek st with
    | Lexer.Plus ->
      advance st;
      loop (Ast.Binop (Ast.Add, lhs, multiplicative st))
    | Lexer.Minus ->
      advance st;
      loop (Ast.Binop (Ast.Sub, lhs, multiplicative st))
    | _ -> lhs
  in
  loop (multiplicative st)

and multiplicative st =
  let rec loop lhs =
    match peek st with
    | Lexer.Star ->
      advance st;
      loop (Ast.Binop (Ast.Mul, lhs, unary st))
    | Lexer.Slash ->
      advance st;
      loop (Ast.Binop (Ast.Div, lhs, unary st))
    | Lexer.Percent ->
      advance st;
      loop (Ast.Binop (Ast.Mod, lhs, unary st))
    | _ -> lhs
  in
  loop (unary st)

and unary st =
  match peek st with
  | Lexer.Minus -> (
    advance st;
    (* fold the sign into literals so negative constants round-trip *)
    match unary st with
    | Ast.Int_lit n -> Ast.Int_lit (-n)
    | Ast.Float_lit f -> Ast.Float_lit (-.f)
    | e -> Ast.Unop (Ast.Neg, e))
  | Lexer.Bang ->
    advance st;
    Ast.Unop (Ast.Not, unary st)
  | Lexer.Lparen when is_type_start (peek_snd st) ->
    (* cast: (float)expr or (int)expr *)
    advance st;
    let ty = base_ty st in
    expect st Lexer.Rparen;
    Ast.Cast (ty, unary st)
  | _ -> postfix st

and postfix st =
  match peek st with
  | Lexer.Int_lit n ->
    advance st;
    Ast.Int_lit n
  | Lexer.Float_lit f ->
    advance st;
    Ast.Float_lit f
  | Lexer.Kw_true ->
    advance st;
    Ast.Bool_lit true
  | Lexer.Kw_false ->
    advance st;
    Ast.Bool_lit false
  | Lexer.Lparen ->
    advance st;
    let e = expr st in
    expect st Lexer.Rparen;
    e
  | Lexer.Ident name when is_builtin_struct name ->
    advance st;
    builtin_member st name
  | Lexer.Ident name -> (
    advance st;
    match peek st with
    | Lexer.Lbracket ->
      advance st;
      let idx = expr st in
      expect st Lexer.Rbracket;
      Ast.Index (name, idx)
    | Lexer.Lparen ->
      if not (Builtins.is_builtin name) then
        fail st (Printf.sprintf "call to unknown function %s" name);
      advance st;
      let args = call_args st in
      Ast.Call (name, args)
    | _ -> (
      match List.assoc_opt name st.defines with
      | Some n -> Ast.Int_lit n
      | None -> Ast.Var name))
  | tok -> fail st (Printf.sprintf "unexpected token %s in expression" (Lexer.show_token tok))

and call_args st =
  if peek st = Lexer.Rparen then begin
    advance st;
    []
  end
  else
    let rec loop acc =
      let e = expr st in
      match peek st with
      | Lexer.Comma ->
        advance st;
        loop (e :: acc)
      | Lexer.Rparen ->
        advance st;
        List.rev (e :: acc)
      | tok ->
        fail st (Printf.sprintf "expected ',' or ')' in call, found %s" (Lexer.show_token tok))
    in
    loop []

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let assign_op_of_token = function
  | Lexer.Assign -> Some Ast.Assign_eq
  | Lexer.Plus_assign -> Some Ast.Assign_add
  | Lexer.Minus_assign -> Some Ast.Assign_sub
  | Lexer.Star_assign -> Some Ast.Assign_mul
  | Lexer.Slash_assign -> Some Ast.Assign_div
  | _ -> None

let rec stmt st =
  let sloc = loc st in
  let sk =
    match peek st with
    | Lexer.Lbrace -> Ast.Block (block st)
    | Lexer.Kw_shared -> shared_decl st
    | tok when is_type_start tok -> decl st
    | Lexer.Kw_if -> if_stmt st
    | Lexer.Kw_for -> Ast.For (for_stmt st)
    | Lexer.Kw_while -> while_stmt st
    | Lexer.Kw_return ->
      advance st;
      expect st Lexer.Semi;
      Ast.Return
    | Lexer.Kw_break ->
      advance st;
      expect st Lexer.Semi;
      Ast.Break
    | Lexer.Kw_continue ->
      advance st;
      expect st Lexer.Semi;
      Ast.Continue
    | Lexer.Kw_syncthreads ->
      advance st;
      expect st Lexer.Lparen;
      expect st Lexer.Rparen;
      expect st Lexer.Semi;
      Ast.Syncthreads
    | Lexer.Ident _ ->
      let s = assign_stmt st in
      expect st Lexer.Semi;
      s
    | tok ->
      fail st (Printf.sprintf "unexpected token %s at statement start" (Lexer.show_token tok))
  in
  Ast.at ~loc:sloc sk

and shared_decl st =
  expect st Lexer.Kw_shared;
  let ty = base_ty st in
  let name = expect_ident st in
  expect st Lexer.Lbracket;
  let size = expect_int st in
  expect st Lexer.Rbracket;
  expect st Lexer.Semi;
  Ast.Shared_decl (ty, name, size)

and decl st =
  let ty = base_ty st in
  let name = expect_ident st in
  let init =
    if peek st = Lexer.Assign then begin
      advance st;
      Some (expr st)
    end
    else None
  in
  expect st Lexer.Semi;
  Ast.Decl (ty, name, init)

and if_stmt st =
  expect st Lexer.Kw_if;
  expect st Lexer.Lparen;
  let cond = expr st in
  expect st Lexer.Rparen;
  let then_b = stmt_as_block st in
  let else_b =
    if peek st = Lexer.Kw_else then begin
      advance st;
      stmt_as_block st
    end
    else []
  in
  Ast.If (cond, then_b, else_b)

and stmt_as_block st =
  match peek st with
  | Lexer.Lbrace -> block st
  | _ -> [ stmt st ]

and while_stmt st =
  expect st Lexer.Kw_while;
  expect st Lexer.Lparen;
  let cond = expr st in
  expect st Lexer.Rparen;
  Ast.While (cond, stmt_as_block st)

(* Loop step: j++, j--, j += e, j -= e, j = j + e, j = j - e.
   Normalized to the additive increment. *)
and loop_step st loop_var =
  let var = expect_ident st in
  if var <> loop_var then
    fail st
      (Printf.sprintf "loop step must update loop variable %s, found %s" loop_var var);
  match peek st with
  | Lexer.Plus_plus ->
    advance st;
    Ast.Int_lit 1
  | Lexer.Minus_minus ->
    advance st;
    Ast.Int_lit (-1)
  | Lexer.Plus_assign ->
    advance st;
    expr st
  | Lexer.Minus_assign ->
    advance st;
    Ast.Unop (Ast.Neg, expr st)
  | Lexer.Assign -> (
    advance st;
    let e = expr st in
    match e with
    | Ast.Binop (Ast.Add, Ast.Var v, step) when v = loop_var -> step
    | Ast.Binop (Ast.Add, step, Ast.Var v) when v = loop_var -> step
    | Ast.Binop (Ast.Sub, Ast.Var v, step) when v = loop_var ->
      Ast.Unop (Ast.Neg, step)
    | _ -> fail st "unsupported loop step form")
  | tok -> fail st (Printf.sprintf "unsupported loop step, found %s" (Lexer.show_token tok))

and for_stmt st =
  expect st Lexer.Kw_for;
  expect st Lexer.Lparen;
  let declares = is_type_start (peek st) in
  if declares then ignore (base_ty st);
  let loop_var = expect_ident st in
  expect st Lexer.Assign;
  let init = expr st in
  expect st Lexer.Semi;
  let cond = expr st in
  expect st Lexer.Semi;
  let step = loop_step st loop_var in
  expect st Lexer.Rparen;
  let body = stmt_as_block st in
  { Ast.loop_var; declares; init; cond; step; body }

and assign_stmt st =
  let name = expect_ident st in
  let lvalue =
    if peek st = Lexer.Lbracket then begin
      advance st;
      let idx = expr st in
      expect st Lexer.Rbracket;
      Ast.Larr (name, idx)
    end
    else Ast.Lvar name
  in
  match peek st with
  | Lexer.Plus_plus ->
    advance st;
    Ast.Assign (lvalue, Ast.Assign_add, Ast.Int_lit 1)
  | Lexer.Minus_minus ->
    advance st;
    Ast.Assign (lvalue, Ast.Assign_sub, Ast.Int_lit 1)
  | tok -> (
    match assign_op_of_token tok with
    | Some op ->
      advance st;
      Ast.Assign (lvalue, op, expr st)
    | None ->
      fail st (Printf.sprintf "expected assignment operator, found %s" (Lexer.show_token tok)))

and block st =
  expect st Lexer.Lbrace;
  let rec loop acc =
    if peek st = Lexer.Rbrace then begin
      advance st;
      List.rev acc
    end
    else loop (stmt st :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Top level                                                          *)
(* ------------------------------------------------------------------ *)

let param st =
  let ty = base_ty st in
  let ty = if peek st = Lexer.Star then (advance st; Ast.Ptr ty) else ty in
  let name = expect_ident st in
  { Ast.param_ty = ty; param_name = name }

let params st =
  expect st Lexer.Lparen;
  if peek st = Lexer.Rparen then begin
    advance st;
    []
  end
  else
    let rec loop acc =
      let p = param st in
      match peek st with
      | Lexer.Comma ->
        advance st;
        loop (p :: acc)
      | Lexer.Rparen ->
        advance st;
        List.rev (p :: acc)
      | tok ->
        fail st
          (Printf.sprintf "expected ',' or ')' in parameter list, found %s"
             (Lexer.show_token tok))
    in
    loop []

let kernel st =
  expect st Lexer.Kw_global;
  expect st Lexer.Kw_void;
  let kernel_name = expect_ident st in
  let params = params st in
  let body = block st in
  { Ast.kernel_name; params; body }

let define st =
  expect st Lexer.Kw_define;
  let name = expect_ident st in
  let value =
    match peek st with
    | Lexer.Int_lit n ->
      advance st;
      n
    | Lexer.Minus ->
      advance st;
      -expect_int st
    | Lexer.Ident other -> (
      match List.assoc_opt other st.defines with
      | Some n ->
        advance st;
        n
      | None -> fail st (Printf.sprintf "#define references unknown constant %s" other))
    | tok ->
      fail st (Printf.sprintf "expected integer in #define, found %s" (Lexer.show_token tok))
  in
  st.defines <- (name, value) :: st.defines;
  (name, value)

let parse_program src =
  let st = { tokens = Lexer.tokenize src; defines = [] } in
  let rec loop defines kernels =
    match peek st with
    | Lexer.Eof -> { Ast.defines = List.rev defines; kernels = List.rev kernels }
    | Lexer.Kw_define -> loop (define st :: defines) kernels
    | Lexer.Kw_global -> loop defines (kernel st :: kernels)
    | tok ->
      fail st
        (Printf.sprintf "expected #define or __global__ at top level, found %s"
           (Lexer.show_token tok))
  in
  loop [] []

let parse_kernel src =
  match (parse_program src).kernels with
  | [ k ] -> k
  | ks ->
    raise (Error (Printf.sprintf "expected exactly one kernel, found %d" (List.length ks), 1))

let parse_expr src =
  let st = { tokens = Lexer.tokenize src; defines = [] } in
  let e = expr st in
  (match peek st with
  | Lexer.Eof -> ()
  | tok -> fail st (Printf.sprintf "trailing tokens after expression: %s" (Lexer.show_token tok)));
  e
