let rec ty = function
  | Ast.Int -> "int"
  | Ast.Float -> "float"
  | Ast.Bool -> "bool"
  | Ast.Ptr t -> ty t ^ " *"

let binop_text = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.And -> "&&"
  | Ast.Or -> "||"

(* Precedence levels matching the parser, used to parenthesize minimally. *)
let binop_prec = function
  | Ast.Mul | Ast.Div | Ast.Mod -> 7
  | Ast.Add | Ast.Sub -> 6
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 5
  | Ast.Eq | Ast.Ne -> 4
  | Ast.And -> 3
  | Ast.Or -> 2

let builtin_text = function
  | Ast.Thread_idx_x -> "threadIdx.x"
  | Ast.Thread_idx_y -> "threadIdx.y"
  | Ast.Block_idx_x -> "blockIdx.x"
  | Ast.Block_idx_y -> "blockIdx.y"
  | Ast.Block_dim_x -> "blockDim.x"
  | Ast.Block_dim_y -> "blockDim.y"
  | Ast.Grid_dim_x -> "gridDim.x"
  | Ast.Grid_dim_y -> "gridDim.y"

let float_text f =
  (* keep a decimal point so the lexer reads it back as a float *)
  let s = Printf.sprintf "%.17g" f in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
  then s
  else s ^ ".0"

let rec expr_prec level e =
  let text, prec =
    match e with
    (* negative literals print at unary precedence; the parser folds the
       minus sign back into the literal *)
    | Ast.Int_lit n -> (string_of_int n, if n < 0 then 8 else 10)
    | Ast.Float_lit f -> (float_text f, if f < 0. then 8 else 10)
    | Ast.Bool_lit true -> ("true", 10)
    | Ast.Bool_lit false -> ("false", 10)
    | Ast.Var name -> (name, 10)
    | Ast.Builtin b -> (builtin_text b, 10)
    | Ast.Index (arr, idx) ->
      (Printf.sprintf "%s[%s]" arr (expr_prec 0 idx), 10)
    | Ast.Call (name, args) ->
      ( Printf.sprintf "%s(%s)" name
          (String.concat ", " (List.map (expr_prec 0) args)),
        10 )
    | Ast.Unop (Ast.Neg, a) -> ("-" ^ expr_prec 8 a, 8)
    | Ast.Unop (Ast.Not, a) -> ("!" ^ expr_prec 8 a, 8)
    | Ast.Cast (t, a) -> (Printf.sprintf "(%s)%s" (ty t) (expr_prec 8 a), 8)
    | Ast.Binop (op, a, b) ->
      let p = binop_prec op in
      (* left associative: right child needs strictly higher precedence *)
      ( Printf.sprintf "%s %s %s" (expr_prec p a) (binop_text op)
          (expr_prec (p + 1) b),
        p )
    | Ast.Ternary (c, a, b) ->
      ( Printf.sprintf "%s ? %s : %s" (expr_prec 2 c) (expr_prec 0 a)
          (expr_prec 1 b),
        1 )
  in
  if prec < level then "(" ^ text ^ ")" else text

let expr e = expr_prec 0 e

let assign_op_text = function
  | Ast.Assign_eq -> "="
  | Ast.Assign_add -> "+="
  | Ast.Assign_sub -> "-="
  | Ast.Assign_mul -> "*="
  | Ast.Assign_div -> "/="

let lvalue = function
  | Ast.Lvar name -> name
  | Ast.Larr (arr, idx) -> Printf.sprintf "%s[%s]" arr (expr idx)

let pad indent = String.make (indent * 2) ' '

let rec stmt ?(indent = 0) s =
  let p = pad indent in
  match s.Ast.sk with
  | Ast.Decl (t, name, None) -> Printf.sprintf "%s%s %s;" p (ty t) name
  | Ast.Decl (t, name, Some e) ->
    Printf.sprintf "%s%s %s = %s;" p (ty t) name (expr e)
  | Ast.Shared_decl (t, name, size) ->
    Printf.sprintf "%s__shared__ %s %s[%d];" p (ty t) name size
  | Ast.Assign (lv, op, e) ->
    Printf.sprintf "%s%s %s %s;" p (lvalue lv) (assign_op_text op) (expr e)
  | Ast.If (cond, then_b, []) ->
    Printf.sprintf "%sif (%s) {\n%s\n%s}" p (expr cond)
      (block ~indent:(indent + 1) then_b)
      p
  | Ast.If (cond, then_b, else_b) ->
    Printf.sprintf "%sif (%s) {\n%s\n%s} else {\n%s\n%s}" p (expr cond)
      (block ~indent:(indent + 1) then_b)
      p
      (block ~indent:(indent + 1) else_b)
      p
  | Ast.For { loop_var; declares; init; cond; step; body } ->
    let decl = if declares then "int " else "" in
    let step_text =
      match step with
      | Ast.Int_lit 1 -> loop_var ^ "++"
      | Ast.Int_lit n when n = -1 -> loop_var ^ "--"
      | Ast.Unop (Ast.Neg, e) -> Printf.sprintf "%s -= %s" loop_var (expr e)
      | e -> Printf.sprintf "%s += %s" loop_var (expr e)
    in
    Printf.sprintf "%sfor (%s%s = %s; %s; %s) {\n%s\n%s}" p decl loop_var
      (expr init) (expr cond) step_text
      (block ~indent:(indent + 1) body)
      p
  | Ast.While (cond, body) ->
    Printf.sprintf "%swhile (%s) {\n%s\n%s}" p (expr cond)
      (block ~indent:(indent + 1) body)
      p
  | Ast.Syncthreads -> p ^ "__syncthreads();"
  | Ast.Return -> p ^ "return;"
  | Ast.Break -> p ^ "break;"
  | Ast.Continue -> p ^ "continue;"
  | Ast.Block body ->
    Printf.sprintf "%s{\n%s\n%s}" p (block ~indent:(indent + 1) body) p

and block ?(indent = 0) b =
  String.concat "\n" (List.map (stmt ~indent) b)

let param { Ast.param_ty; param_name } =
  match param_ty with
  | Ast.Ptr t -> Printf.sprintf "%s *%s" (ty t) param_name
  | t -> Printf.sprintf "%s %s" (ty t) param_name

let kernel k =
  Printf.sprintf "__global__ void %s(%s) {\n%s\n}" k.Ast.kernel_name
    (String.concat ", " (List.map param k.Ast.params))
    (block ~indent:1 k.Ast.body)

let program p =
  let defines =
    List.map
      (fun (name, value) -> Printf.sprintf "#define %s %d" name value)
      p.Ast.defines
  in
  let kernels = List.map kernel p.Ast.kernels in
  String.concat "\n\n" (defines @ kernels) ^ "\n"
