type token =
  | Int_lit of int
  | Float_lit of float
  | Ident of string
  | Kw_global
  | Kw_shared
  | Kw_void
  | Kw_int
  | Kw_float
  | Kw_bool
  | Kw_if
  | Kw_else
  | Kw_for
  | Kw_while
  | Kw_return
  | Kw_break
  | Kw_continue
  | Kw_true
  | Kw_false
  | Kw_define
  | Kw_syncthreads
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Question
  | Colon
  | Star
  | Plus
  | Minus
  | Slash
  | Percent
  | Amp_amp
  | Bar_bar
  | Bang
  | Lt
  | Le
  | Gt
  | Ge
  | Eq_eq
  | Bang_eq
  | Assign
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Slash_assign
  | Plus_plus
  | Minus_minus
  | Dot
  | Eof

exception Error of string * int

let show_token = function
  | Int_lit n -> string_of_int n
  | Float_lit f -> string_of_float f
  | Ident s -> Printf.sprintf "identifier %S" s
  | Kw_global -> "__global__"
  | Kw_shared -> "__shared__"
  | Kw_void -> "void"
  | Kw_int -> "int"
  | Kw_float -> "float"
  | Kw_bool -> "bool"
  | Kw_if -> "if"
  | Kw_else -> "else"
  | Kw_for -> "for"
  | Kw_while -> "while"
  | Kw_return -> "return"
  | Kw_break -> "break"
  | Kw_continue -> "continue"
  | Kw_true -> "true"
  | Kw_false -> "false"
  | Kw_define -> "#define"
  | Kw_syncthreads -> "__syncthreads"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Semi -> ";"
  | Comma -> ","
  | Question -> "?"
  | Colon -> ":"
  | Star -> "*"
  | Plus -> "+"
  | Minus -> "-"
  | Slash -> "/"
  | Percent -> "%"
  | Amp_amp -> "&&"
  | Bar_bar -> "||"
  | Bang -> "!"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq_eq -> "=="
  | Bang_eq -> "!="
  | Assign -> "="
  | Plus_assign -> "+="
  | Minus_assign -> "-="
  | Star_assign -> "*="
  | Slash_assign -> "/="
  | Plus_plus -> "++"
  | Minus_minus -> "--"
  | Dot -> "."
  | Eof -> "<eof>"

let keyword_of_string = function
  | "__global__" -> Some Kw_global
  | "__shared__" -> Some Kw_shared
  | "void" -> Some Kw_void
  | "int" -> Some Kw_int
  | "float" -> Some Kw_float
  | "bool" -> Some Kw_bool
  | "if" -> Some Kw_if
  | "else" -> Some Kw_else
  | "for" -> Some Kw_for
  | "while" -> Some Kw_while
  | "return" -> Some Kw_return
  | "break" -> Some Kw_break
  | "continue" -> Some Kw_continue
  | "true" -> Some Kw_true
  | "false" -> Some Kw_false
  | "__syncthreads" -> Some Kw_syncthreads
  | _ -> None

type cursor = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the first character of the current line *)
}

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let peek2 c =
  if c.pos + 1 < String.length c.src then Some c.src.[c.pos + 1] else None

let advance c =
  (match peek c with
  | Some '\n' ->
    c.line <- c.line + 1;
    c.bol <- c.pos + 1
  | _ -> ());
  c.pos <- c.pos + 1

let is_ident_start ch = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'
let is_digit ch = ch >= '0' && ch <= '9'
let is_ident_char ch = is_ident_start ch || is_digit ch

let rec skip_trivia c =
  match peek c with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance c;
    skip_trivia c
  | Some '/' when peek2 c = Some '/' ->
    let rec to_eol () =
      match peek c with
      | Some '\n' | None -> ()
      | Some _ ->
        advance c;
        to_eol ()
    in
    to_eol ();
    skip_trivia c
  | Some '/' when peek2 c = Some '*' ->
    let start_line = c.line in
    advance c;
    advance c;
    let rec to_close () =
      match (peek c, peek2 c) with
      | Some '*', Some '/' ->
        advance c;
        advance c
      | Some _, _ ->
        advance c;
        to_close ()
      | None, _ -> raise (Error ("unterminated comment", start_line))
    in
    to_close ();
    skip_trivia c
  | _ -> ()

let lex_number c =
  let start = c.pos in
  while (match peek c with Some ch -> is_digit ch | None -> false) do
    advance c
  done;
  let is_float =
    match (peek c, peek2 c) with
    | Some '.', Some ch when is_digit ch -> true
    | Some '.', (Some _ | None) -> true
    | Some ('e' | 'E' | 'f'), _ -> true
    | _ -> false
  in
  if not is_float then Int_lit (int_of_string (String.sub c.src start (c.pos - start)))
  else begin
    (match peek c with
    | Some '.' ->
      advance c;
      while (match peek c with Some ch -> is_digit ch | None -> false) do
        advance c
      done
    | _ -> ());
    (match peek c with
    | Some ('e' | 'E') ->
      advance c;
      (match peek c with Some ('+' | '-') -> advance c | _ -> ());
      while (match peek c with Some ch -> is_digit ch | None -> false) do
        advance c
      done
    | _ -> ());
    let text = String.sub c.src start (c.pos - start) in
    (* trailing 'f' suffix as in 0.5f *)
    (match peek c with Some 'f' -> advance c | _ -> ());
    Float_lit (float_of_string text)
  end

let lex_ident c =
  let start = c.pos in
  while (match peek c with Some ch -> is_ident_char ch | None -> false) do
    advance c
  done;
  let text = String.sub c.src start (c.pos - start) in
  match keyword_of_string text with Some kw -> kw | None -> Ident text

let lex_hash c =
  (* only #define is supported *)
  let line = c.line in
  advance c;
  let start = c.pos in
  while (match peek c with Some ch -> is_ident_char ch | None -> false) do
    advance c
  done;
  let word = String.sub c.src start (c.pos - start) in
  if word = "define" then Kw_define
  else raise (Error (Printf.sprintf "unsupported preprocessor directive #%s" word, line))

let two_char c first single combos =
  advance c;
  match peek c with
  | Some ch -> (
    match List.assoc_opt ch combos with
    | Some tok ->
      advance c;
      tok
    | None -> single)
  | None ->
    ignore first;
    single

let next_token c =
  skip_trivia c;
  let line = c.line in
  let loc = { Ast.line; col = c.pos - c.bol + 1 } in
  let tok =
    match peek c with
    | None -> Eof
    | Some ch when is_digit ch -> lex_number c
    | Some ch when is_ident_start ch -> lex_ident c
    | Some '#' -> lex_hash c
    | Some '(' -> advance c; Lparen
    | Some ')' -> advance c; Rparen
    | Some '{' -> advance c; Lbrace
    | Some '}' -> advance c; Rbrace
    | Some '[' -> advance c; Lbracket
    | Some ']' -> advance c; Rbracket
    | Some ';' -> advance c; Semi
    | Some ',' -> advance c; Comma
    | Some '?' -> advance c; Question
    | Some '.' -> advance c; Dot
    | Some ':' -> advance c; Colon
    | Some '%' -> advance c; Percent
    | Some '+' -> two_char c '+' Plus [ ('=', Plus_assign); ('+', Plus_plus) ]
    | Some '-' -> two_char c '-' Minus [ ('=', Minus_assign); ('-', Minus_minus) ]
    | Some '*' -> two_char c '*' Star [ ('=', Star_assign) ]
    | Some '/' -> two_char c '/' Slash [ ('=', Slash_assign) ]
    | Some '<' -> two_char c '<' Lt [ ('=', Le) ]
    | Some '>' -> two_char c '>' Gt [ ('=', Ge) ]
    | Some '=' -> two_char c '=' Assign [ ('=', Eq_eq) ]
    | Some '!' -> two_char c '!' Bang [ ('=', Bang_eq) ]
    | Some '&' ->
      advance c;
      (match peek c with
      | Some '&' ->
        advance c;
        Amp_amp
      | _ -> raise (Error ("expected '&&'", line)))
    | Some '|' ->
      advance c;
      (match peek c with
      | Some '|' ->
        advance c;
        Bar_bar
      | _ -> raise (Error ("expected '||'", line)))
    | Some ch -> raise (Error (Printf.sprintf "unexpected character %C" ch, line))
  in
  (tok, loc)

let tokenize src =
  let c = { src; pos = 0; line = 1; bol = 0 } in
  let rec loop acc =
    let ((tok, _) as entry) = next_token c in
    let acc = entry :: acc in
    match tok with Eof -> List.rev acc | _ -> loop acc
  in
  loop []
