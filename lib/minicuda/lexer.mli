(** Hand-written lexer for the mini-CUDA surface syntax.

    Tokens carry the source position ({!Ast.loc}, 1-based line and column)
    they started on so the parser can attach locations to statements and
    report readable errors.  Comments ([//…] and [/*…*/]) and whitespace
    are skipped; the preprocessor subset ([#define NAME INT]) is tokenized
    as ordinary tokens and interpreted by the parser. *)

type token =
  | Int_lit of int
  | Float_lit of float
  | Ident of string
  | Kw_global  (** [__global__] *)
  | Kw_shared  (** [__shared__] *)
  | Kw_void
  | Kw_int
  | Kw_float
  | Kw_bool
  | Kw_if
  | Kw_else
  | Kw_for
  | Kw_while
  | Kw_return
  | Kw_break
  | Kw_continue
  | Kw_true
  | Kw_false
  | Kw_define  (** [#define] *)
  | Kw_syncthreads  (** [__syncthreads] *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Question
  | Colon
  | Star
  | Plus
  | Minus
  | Slash
  | Percent
  | Amp_amp
  | Bar_bar
  | Bang
  | Lt
  | Le
  | Gt
  | Ge
  | Eq_eq
  | Bang_eq
  | Assign
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Slash_assign
  | Plus_plus
  | Minus_minus
  | Dot
  | Eof

exception Error of string * int
(** [Error (message, line)]. *)

val show_token : token -> string

val tokenize : string -> (token * Ast.loc) list
(** [tokenize source] lexes the whole input; the result ends with [Eof].
    Raises {!Error} on an unrecognized character or unterminated comment. *)
