(** Memory-request coalescing.

    A warp's memory instruction produces one byte address per active lane;
    the coalescer reduces them to the set of distinct cache lines, which is
    the unit of L1D traffic.  The per-warp request count it produces is
    exactly the quantity the paper's Eq. 7 estimates statically — perfectly
    coalesced accesses give 1 line, fully divergent ones give up to
    [warp_size] lines. *)

val into : line_bytes:int -> addrs:int array -> mask:int -> buf:int array -> int
(** [into ~line_bytes ~addrs ~mask ~buf] writes the distinct line indices
    touched by lanes whose bit is set in [mask] into [buf] (which must hold
    at least [Array.length addrs] entries) in first-touch order and returns
    how many were written.  Allocation-free; affine (lane-monotone) address
    patterns dedup in O(lanes).  [addrs.(lane)] is a byte address and is
    ignored for inactive lanes. *)

val lines : line_bytes:int -> addrs:int array -> mask:int -> int list
(** [into] against a fresh buffer, as a list (tests, static analysis). *)

val count : line_bytes:int -> addrs:int array -> mask:int -> int
(** Number of distinct lines, without keeping them. *)
