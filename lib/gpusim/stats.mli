(** Per-launch performance counters — the simulator's [nvprof].

    One record is filled per kernel launch; the experiment harness reads
    cycles (execution time), the L1D hit rate (paper Fig. 6) and the
    coalescing counters.  All fields are mutable and updated by the SMs
    during simulation. *)

type t = {
  mutable cycles : int;  (** makespan over all SMs *)
  mutable instructions : int;
  mutable global_load_instrs : int;  (** off-chip load instructions (warp-level) *)
  mutable global_store_instrs : int;
  mutable shared_instrs : int;
  mutable l1_accesses : int;  (** line transactions after coalescing *)
  mutable l1_hits : int;
  mutable l1_pending_hits : int;  (** hits on in-flight lines (MSHR merges) *)
  mutable l1_misses : int;
  mutable l2_accesses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  mutable store_transactions : int;
  mutable bypass_transactions : int;  (** L1-bypassed load lines (ablation) *)
  mutable barriers : int;
  mutable tbs_launched : int;
  mutable max_resident_warps : int;
  mutable issued_instructions : int;
  mutable mem_idle_cycles : int;
      (** cycles an SM had no issuable warp and none at a barrier: pure
          memory-latency exposure *)
  mutable barrier_idle_cycles : int;
      (** cycles an SM idled with a warp parked at a barrier — the price
          the warp-level throttling transform pays *)
  mutable ata_tag_hits : int;
      (** L1D misses whose tag was found in the aggregated tag array
          (ATA-Cache scheme only; zero everywhere else) *)
  mutable ata_promotions : int;
      (** shadow-tagged lines promoted into data storage on proven reuse *)
}

val create : unit -> t

val l1_hit_rate : t -> float
(** Over load transactions; pending hits count as hits (the data was found
    on chip, which is what the paper's hit-rate metric reflects). *)

val l2_hit_rate : t -> float

val accumulate : into:t -> t -> unit
(** Sums counters; [cycles] takes the max (it is a makespan). *)

val to_json : t -> Gpu_util.Json.t
(** Flat object of every counter — the persistent result cache's wire
    format.  Scheme-specific counters (the [ata_*] fields) are emitted
    only when non-zero, so the JSON text of every other scheme's run is
    unchanged from before they existed. *)

val of_json : Gpu_util.Json.t -> (t, string) result
(** Inverse of {!to_json}; [Error] names the first missing or mistyped
    field.  Absent scheme-specific counters decode as zero. *)

val pp : Format.formatter -> t -> unit
